#include "xml/xmark.h"

#include <array>

#include "util/random.h"
#include "util/status.h"

namespace boxes::xml {

namespace {

/// Builds XMark-shaped entities. Counts and optional-part probabilities
/// follow the XMark DTD and its published factor-1 entity ratios
/// (items : persons : open auctions : closed auctions ≈ 21750 : 25500 :
/// 12000 : 9750, categories 1000).
class XmarkBuilder {
 public:
  XmarkBuilder(Document* doc, Random* rng) : doc_(doc), rng_(rng) {}

  void BuildSkeleton() {
    const ElementId site = doc_->AddRoot("site");
    regions_ = doc_->AddChild(site, "regions");
    static constexpr std::array<const char*, 6> kRegions = {
        "africa", "asia", "australia", "europe", "namerica", "samerica"};
    for (const char* name : kRegions) {
      region_ids_[num_regions_++] = doc_->AddChild(regions_, name);
    }
    categories_ = doc_->AddChild(site, "categories");
    catgraph_ = doc_->AddChild(site, "catgraph");
    people_ = doc_->AddChild(site, "people");
    open_auctions_ = doc_->AddChild(site, "open_auctions");
    closed_auctions_ = doc_->AddChild(site, "closed_auctions");
  }

  void AddCategory() {
    const ElementId cat = doc_->AddChild(categories_, "category");
    doc_->AddChild(cat, "name");
    AddDescription(cat, /*allow_nesting=*/true);
  }

  void AddEdge() { doc_->AddChild(catgraph_, "edge"); }

  void AddItem() {
    const ElementId region = region_ids_[rng_->Uniform(num_regions_)];
    const ElementId item = doc_->AddChild(region, "item");
    doc_->AddChild(item, "location");
    doc_->AddChild(item, "quantity");
    doc_->AddChild(item, "name");
    doc_->AddChild(item, "payment");
    AddDescription(item, /*allow_nesting=*/true);
    doc_->AddChild(item, "shipping");
    const uint64_t incategories = 1 + rng_->Uniform(5);
    for (uint64_t i = 0; i < incategories; ++i) {
      doc_->AddChild(item, "incategory");
    }
    const ElementId mailbox = doc_->AddChild(item, "mailbox");
    const uint64_t mails = rng_->Uniform(4);
    for (uint64_t i = 0; i < mails; ++i) {
      const ElementId mail = doc_->AddChild(mailbox, "mail");
      doc_->AddChild(mail, "from");
      doc_->AddChild(mail, "to");
      doc_->AddChild(mail, "date");
      AddText(mail);
    }
  }

  void AddPerson() {
    const ElementId person = doc_->AddChild(people_, "person");
    doc_->AddChild(person, "name");
    doc_->AddChild(person, "emailaddress");
    if (rng_->Bernoulli(0.5)) {
      doc_->AddChild(person, "phone");
    }
    if (rng_->Bernoulli(0.5)) {
      const ElementId address = doc_->AddChild(person, "address");
      doc_->AddChild(address, "street");
      doc_->AddChild(address, "city");
      doc_->AddChild(address, "country");
      doc_->AddChild(address, "zipcode");
    }
    if (rng_->Bernoulli(0.3)) {
      doc_->AddChild(person, "homepage");
    }
    if (rng_->Bernoulli(0.4)) {
      doc_->AddChild(person, "creditcard");
    }
    if (rng_->Bernoulli(0.6)) {
      const ElementId profile = doc_->AddChild(person, "profile");
      const uint64_t interests = rng_->Uniform(5);
      for (uint64_t i = 0; i < interests; ++i) {
        doc_->AddChild(profile, "interest");
      }
      if (rng_->Bernoulli(0.4)) {
        doc_->AddChild(profile, "education");
      }
      if (rng_->Bernoulli(0.8)) {
        doc_->AddChild(profile, "gender");
      }
      doc_->AddChild(profile, "business");
      if (rng_->Bernoulli(0.6)) {
        doc_->AddChild(profile, "age");
      }
    }
    if (rng_->Bernoulli(0.4)) {
      const ElementId watches = doc_->AddChild(person, "watches");
      const uint64_t n = rng_->Uniform(5);
      for (uint64_t i = 0; i < n; ++i) {
        doc_->AddChild(watches, "watch");
      }
    }
  }

  void AddOpenAuction() {
    const ElementId auction = doc_->AddChild(open_auctions_, "open_auction");
    doc_->AddChild(auction, "initial");
    if (rng_->Bernoulli(0.4)) {
      doc_->AddChild(auction, "reserve");
    }
    const uint64_t bidders = rng_->Uniform(6);
    for (uint64_t i = 0; i < bidders; ++i) {
      const ElementId bidder = doc_->AddChild(auction, "bidder");
      doc_->AddChild(bidder, "date");
      doc_->AddChild(bidder, "time");
      doc_->AddChild(bidder, "increase");
    }
    doc_->AddChild(auction, "current");
    if (rng_->Bernoulli(0.5)) {
      doc_->AddChild(auction, "privacy");
    }
    doc_->AddChild(auction, "itemref");
    doc_->AddChild(auction, "seller");
    AddAnnotation(auction);
    doc_->AddChild(auction, "quantity");
    doc_->AddChild(auction, "type");
    const ElementId interval = doc_->AddChild(auction, "interval");
    doc_->AddChild(interval, "start");
    doc_->AddChild(interval, "end");
  }

  void AddClosedAuction() {
    const ElementId auction =
        doc_->AddChild(closed_auctions_, "closed_auction");
    doc_->AddChild(auction, "seller");
    doc_->AddChild(auction, "buyer");
    doc_->AddChild(auction, "itemref");
    doc_->AddChild(auction, "price");
    doc_->AddChild(auction, "date");
    doc_->AddChild(auction, "quantity");
    doc_->AddChild(auction, "type");
    AddAnnotation(auction);
  }

 private:
  void AddAnnotation(ElementId parent) {
    const ElementId annotation = doc_->AddChild(parent, "annotation");
    doc_->AddChild(annotation, "author");
    AddDescription(annotation, /*allow_nesting=*/false);
    doc_->AddChild(annotation, "happiness");
  }

  /// description → text | parlist; parlist → listitem+ where each listitem
  /// holds text or (when nesting is allowed) another parlist.
  void AddDescription(ElementId parent, bool allow_nesting) {
    const ElementId description = doc_->AddChild(parent, "description");
    if (rng_->Bernoulli(0.7)) {
      AddText(description);
      return;
    }
    AddParlist(description, allow_nesting ? 2 : 1);
  }

  void AddParlist(ElementId parent, int levels_left) {
    const ElementId parlist = doc_->AddChild(parent, "parlist");
    const uint64_t items = 2 + rng_->Uniform(4);
    for (uint64_t i = 0; i < items; ++i) {
      const ElementId listitem = doc_->AddChild(parlist, "listitem");
      if (levels_left > 1 && rng_->Bernoulli(0.25)) {
        AddParlist(listitem, levels_left - 1);
      } else {
        AddText(listitem);
      }
    }
  }

  void AddText(ElementId parent) { doc_->AddChild(parent, "text"); }

  Document* doc_;
  Random* rng_;
  ElementId regions_ = kInvalidElement;
  ElementId categories_ = kInvalidElement;
  ElementId catgraph_ = kInvalidElement;
  ElementId people_ = kInvalidElement;
  ElementId open_auctions_ = kInvalidElement;
  ElementId closed_auctions_ = kInvalidElement;
  std::array<ElementId, 6> region_ids_ = {};
  size_t num_regions_ = 0;
};

}  // namespace

Document MakeXmarkDocument(uint64_t target_elements, uint64_t seed) {
  BOXES_CHECK(target_elements >= 64);
  Document doc;
  Random rng(seed);
  XmarkBuilder builder(&doc, &rng);
  builder.BuildSkeleton();

  // Entity mix in XMark's factor-1 proportions. One "round" of 70 units
  // corresponds to items:persons:open:closed:categories:edges =
  // 22:25:12:10:1:1 (scaled from 21750:25500:12000:9750:1000:1000).
  static constexpr uint64_t kCycle = 71;
  while (doc.element_count() < target_elements) {
    const uint64_t slot = rng.Uniform(kCycle);
    if (slot < 22) {
      builder.AddItem();
    } else if (slot < 47) {
      builder.AddPerson();
    } else if (slot < 59) {
      builder.AddOpenAuction();
    } else if (slot < 69) {
      builder.AddClosedAuction();
    } else if (slot < 70) {
      builder.AddCategory();
    } else {
      builder.AddEdge();
    }
  }
  return doc;
}

}  // namespace boxes::xml
