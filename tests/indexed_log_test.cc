#include "core/cachelog/indexed_log.h"

#include <memory>
#include <vector>

#include "core/cachelog/caching_store.h"
#include "core/cachelog/mod_log.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::TestDb;

TEST(IndexedLogTest, BasicShiftReplay) {
  IndexedModificationLog log(8);
  log.AppendShift(Label::FromScalar(10), Label::FromScalar(20), +2);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(5), -1);
  Label in_range = Label::FromScalar(15);
  EXPECT_EQ(log.Replay(0, &in_range), ReplayResult::kUsable);
  EXPECT_EQ(in_range.scalar(), 17u);
  Label out_of_range = Label::FromScalar(30);
  EXPECT_EQ(log.Replay(0, &out_of_range), ReplayResult::kUsable);
  EXPECT_EQ(out_of_range.scalar(), 30u);
}

TEST(IndexedLogTest, InvalidationAndOverflow) {
  IndexedModificationLog log(2);
  log.AppendInvalidate(Label::FromScalar(10), Label::FromScalar(20));
  Label inside = Label::FromScalar(12);
  EXPECT_EQ(log.Replay(0, &inside), ReplayResult::kStale);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(9), +1);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(9), +1);
  // The invalidation (t=1) has been evicted; caches from t=0 are stale,
  // caches from t=1 replay the two shifts.
  Label label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(0, &label), ReplayResult::kStale);
  label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(1, &label), ReplayResult::kUsable);
  EXPECT_EQ(label.scalar(), 7u);
}

TEST(IndexedLogTest, EvolvingLabelCrossesRanges) {
  // The first shift moves the label INTO the second shift's range; a
  // one-shot stabbing query would miss that.
  IndexedModificationLog log(8);
  log.AppendShift(Label::FromScalar(5), Label::FromScalar(5), +10);
  log.AppendShift(Label::FromScalar(15), Label::FromScalar(15), +10);
  Label label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(0, &label), ReplayResult::kUsable);
  EXPECT_EQ(label.scalar(), 25u);
}

TEST(IndexedLogTest, ZeroCapacityIsBasicCaching) {
  IndexedModificationLog log(0);
  Label label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(log.now(), &label), ReplayResult::kUsable);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(9), +1);
  EXPECT_EQ(log.Replay(0, &label), ReplayResult::kStale);
  EXPECT_EQ(log.Replay(log.now(), &label), ReplayResult::kUsable);
}

/// The central property: the indexed log is observationally identical to
/// the paper's plain FIFO for arbitrary entry streams and query times.
TEST(IndexedLogTest, AgreesWithLinearLogOnRandomStreams) {
  for (const size_t capacity : {1ul, 3ul, 8ul, 64ul, 100ul}) {
    Random rng(1000 + capacity);
    ModificationLog linear(capacity);
    IndexedModificationLog indexed(capacity);
    for (int step = 0; step < 600; ++step) {
      // Random entry.
      const uint64_t kind = rng.Uniform(10);
      if (kind < 6) {
        const uint64_t lo = rng.Uniform(100);
        const uint64_t hi = lo + rng.Uniform(30);
        const int64_t delta =
            static_cast<int64_t>(rng.Uniform(5)) - 2;
        linear.AppendShift(Label::FromScalar(lo), Label::FromScalar(hi),
                           delta);
        indexed.AppendShift(Label::FromScalar(lo), Label::FromScalar(hi),
                            delta);
      } else if (kind < 8) {
        const uint64_t lo = rng.Uniform(100);
        const uint64_t hi = lo + rng.Uniform(10);
        linear.AppendInvalidate(Label::FromScalar(lo),
                                Label::FromScalar(hi));
        indexed.AppendInvalidate(Label::FromScalar(lo),
                                 Label::FromScalar(hi));
      } else {
        const uint64_t from = rng.Uniform(200);
        const int64_t delta =
            static_cast<int64_t>(rng.Uniform(7)) - 3;
        linear.AppendOrdinalShift(from, delta);
        indexed.AppendOrdinalShift(from, delta);
      }
      ASSERT_EQ(linear.now(), indexed.now());

      // Random replay queries at random cache ages.
      for (int q = 0; q < 4; ++q) {
        const uint64_t age = rng.Uniform(capacity + 4);
        const uint64_t t = linear.now() > age ? linear.now() - age : 0;
        const uint64_t value = 500 + rng.Uniform(100);
        Label a = Label::FromScalar(value % 130);
        Label b = a;
        const ReplayResult ra = linear.Replay(t, &a);
        const ReplayResult rb = indexed.Replay(t, &b);
        ASSERT_EQ(ra, rb) << "cap " << capacity << " step " << step;
        if (ra == ReplayResult::kUsable) {
          ASSERT_TRUE(a == b)
              << "cap " << capacity << " step " << step << ": "
              << a.ToString() << " vs " << b.ToString();
        }
        uint64_t oa = value;
        uint64_t ob = value;
        const ReplayResult rc = linear.ReplayOrdinal(t, &oa);
        const ReplayResult rd = indexed.ReplayOrdinal(t, &ob);
        ASSERT_EQ(rc, rd);
        if (rc == ReplayResult::kUsable) {
          ASSERT_EQ(oa, ob) << "cap " << capacity << " step " << step;
        }
      }
    }
  }
}

TEST(IndexedLogTest, MultiComponentLabels) {
  IndexedModificationLog log(16);
  log.AppendShift(Label::FromComponents({1, 3, 0}),
                  Label::FromComponents({1, 3, 9}), +1);
  Label inside = Label::FromComponents({1, 3, 4});
  EXPECT_EQ(log.Replay(0, &inside), ReplayResult::kUsable);
  EXPECT_TRUE(inside == Label::FromComponents({1, 3, 5}));
  Label outside = Label::FromComponents({1, 4, 4});
  EXPECT_EQ(log.Replay(0, &outside), ReplayResult::kUsable);
  EXPECT_TRUE(outside == Label::FromComponents({1, 4, 4}));
}

TEST(CachingStoreIndexedTest, EndToEndAgainstScheme) {
  TestDb db;
  WBox wbox(&db.cache);
  CachingLabelStore store(&wbox, 128,
                          CachingLabelStore::LogImpl::kIndexed);
  const xml::Document doc = xml::MakeTwoLevelDocument(400);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  std::vector<CachedLabelRef> refs;
  for (const NewElement& e : lids) {
    refs.push_back(store.MakeRef(e.start));
  }
  Random rng(5);
  for (int round = 0; round < 60; ++round) {
    for (int u = 0; u < 2; ++u) {
      ASSERT_OK(wbox.InsertElementBefore(
                        lids[1 + rng.Uniform(lids.size() - 1)].start)
                    .status());
    }
    for (int r = 0; r < 10; ++r) {
      const size_t index = rng.Uniform(refs.size());
      ASSERT_OK_AND_ASSIGN(const Label via_cache,
                           store.Lookup(&refs[index]));
      ASSERT_OK_AND_ASSIGN(const Label direct,
                           wbox.Lookup(lids[index].start));
      ASSERT_TRUE(via_cache == direct) << "round " << round;
    }
  }
  EXPECT_GT(store.served_replayed(), 0u);
}

}  // namespace
}  // namespace boxes
