#include <memory>
#include <tuple>
#include <vector>

#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "model_tree.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::ModelTree;
using testing::TestDb;

struct WBoxPropertyParam {
  bool pair_mode;
  bool maintain_ordinal;
  uint64_t seed;
  size_t page_size;
};

class WBoxPropertyTest
    : public ::testing::TestWithParam<WBoxPropertyParam> {};

/// Drives a W-BOX and an in-memory reference model through a random mix of
/// element inserts, deletes, subtree inserts, and subtree deletes; checks
/// structural invariants and label-order agreement throughout.
TEST_P(WBoxPropertyTest, RandomOpsAgreeWithModel) {
  const WBoxPropertyParam param = GetParam();
  TestDb db(param.page_size);
  WBoxOptions options;
  options.pair_mode = param.pair_mode;
  options.maintain_ordinal = param.maintain_ordinal;
  options.min_rebuild_records = 128;
  WBox wbox(&db.cache, options);
  Random rng(param.seed);
  ModelTree model;

  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  model.SetRoot(root);

  constexpr int kSteps = 1200;
  int subtree_seed = 0;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t dice = rng.Uniform(100);
    if (model.empty()) {
      break;
    }
    if (dice < 55) {
      // Element insert, half as previous sibling, half as last child.
      const int target = model.RandomElement(&rng, /*exclude_root=*/false);
      const bool before_start = rng.Bernoulli(0.5) && target != 0;
      const Lid anchor = before_start ? model.node(target).lids.start
                                      : model.node(target).lids.end;
      ASSERT_OK_AND_ASSIGN(const NewElement e,
                           wbox.InsertElementBefore(anchor));
      if (before_start) {
        model.InsertBeforeStart(target, e);
      } else {
        model.InsertAsLastChild(target, e);
      }
    } else if (dice < 80) {
      // Element delete (children splice into the parent).
      if (model.element_count() <= 1) {
        continue;
      }
      const int target = model.RandomElement(&rng, /*exclude_root=*/true);
      ASSERT_OK(wbox.Delete(model.node(target).lids.start));
      ASSERT_OK(wbox.Delete(model.node(target).lids.end));
      model.DeleteElement(target);
    } else if (dice < 92) {
      // Subtree insert of a small random document.
      const int target = model.RandomElement(&rng, /*exclude_root=*/false);
      const bool before_start = rng.Bernoulli(0.5) && target != 0;
      const Lid anchor = before_start ? model.node(target).lids.start
                                      : model.node(target).lids.end;
      const xml::Document subtree = xml::MakeRandomDocument(
          1 + rng.Uniform(60), 4, 1000 + subtree_seed++);
      std::vector<NewElement> lids;
      ASSERT_OK(wbox.InsertSubtreeBefore(anchor, subtree, &lids));
      if (before_start) {
        model.GraftBeforeStart(target, subtree, lids);
      } else {
        model.GraftAsLastChild(target, subtree, lids);
      }
    } else {
      // Subtree delete.
      if (model.element_count() <= 1) {
        continue;
      }
      const int target = model.RandomElement(&rng, /*exclude_root=*/true);
      const NewElement lids = model.node(target).lids;
      ASSERT_OK(wbox.DeleteSubtree(lids.start, lids.end));
      model.DeleteSubtree(target);
    }

    if (step % 100 == 99) {
      ASSERT_OK(wbox.CheckInvariants());
      ASSERT_TRUE(LabelsStrictlyIncreasing(&wbox, model.TagOrder()))
          << "step " << step;
    }
  }

  ASSERT_OK(wbox.CheckInvariants());
  const std::vector<Lid> order = model.TagOrder();
  ASSERT_TRUE(LabelsStrictlyIncreasing(&wbox, order));
  EXPECT_EQ(wbox.live_labels(), order.size());

  if (param.maintain_ordinal) {
    for (size_t i = 0; i < order.size(); i += 13) {
      ASSERT_OK_AND_ASSIGN(const uint64_t ordinal,
                           wbox.OrdinalLookup(order[i]));
      EXPECT_EQ(ordinal, i) << "lid " << order[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, WBoxPropertyTest,
    ::testing::Values(
        WBoxPropertyParam{false, false, 1, 1024},
        WBoxPropertyParam{false, false, 2, 1024},
        WBoxPropertyParam{false, false, 3, 8192},
        WBoxPropertyParam{true, false, 4, 1024},
        WBoxPropertyParam{true, false, 5, 1024},
        WBoxPropertyParam{true, false, 6, 8192},
        WBoxPropertyParam{false, true, 7, 1024},
        WBoxPropertyParam{false, true, 8, 1024},
        WBoxPropertyParam{true, true, 9, 1024},
        WBoxPropertyParam{true, true, 10, 2048},
        WBoxPropertyParam{false, false, 11, 2048},
        WBoxPropertyParam{false, false, 12, 4096},
        WBoxPropertyParam{true, false, 13, 2048},
        WBoxPropertyParam{false, true, 14, 4096},
        WBoxPropertyParam{true, true, 15, 1024},
        WBoxPropertyParam{false, false, 16, 1024}),
    [](const ::testing::TestParamInfo<WBoxPropertyParam>& info) {
      std::string name = info.param.pair_mode ? "pair" : "plain";
      name += info.param.maintain_ordinal ? "_ordinal" : "_basic";
      name += "_seed" + std::to_string(info.param.seed);
      name += "_page" + std::to_string(info.param.page_size);
      return name;
    });

/// Heavy churn: insert a lot, delete most of it, re-insert; exercises
/// global rebuilding repeatedly.
TEST(WBoxChurnTest, RepeatedRebuildsStayConsistent) {
  TestDb db(1024);
  WBoxOptions options;
  options.min_rebuild_records = 64;
  WBox wbox(&db.cache, options);
  Random rng(77);
  ModelTree model;
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  model.SetRoot(root);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 300; ++i) {
      const int target = model.RandomElement(&rng, false);
      ASSERT_OK_AND_ASSIGN(
          const NewElement e,
          wbox.InsertElementBefore(model.node(target).lids.end));
      model.InsertAsLastChild(target, e);
    }
    for (int i = 0; i < 250 && model.element_count() > 1; ++i) {
      const int target = model.RandomElement(&rng, true);
      ASSERT_OK(wbox.Delete(model.node(target).lids.start));
      ASSERT_OK(wbox.Delete(model.node(target).lids.end));
      model.DeleteElement(target);
    }
    ASSERT_OK(wbox.CheckInvariants());
    ASSERT_TRUE(LabelsStrictlyIncreasing(&wbox, model.TagOrder()));
  }
  EXPECT_GE(wbox.rebuild_count(), 1u);
}

}  // namespace
}  // namespace boxes
