// Quantitative checks of the paper's analytic claims (lemmas/theorems),
// measured on real structures rather than asserted.

#include <cmath>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/sequences.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::TestDb;

// Lemma 4.3: the height of a weight-balanced B-tree with N records is at
// most 1 + ceil(log_a(N/k)).
TEST(TheoryTest, WBoxHeightBound) {
  for (const uint64_t elements : {100ull, 2000ull, 20000ull, 60000ull}) {
    TestDb db(/*page_size=*/1024);
    WBox wbox(&db.cache);
    const xml::Document doc = xml::MakeTwoLevelDocument(elements);
    ASSERT_OK(wbox.BulkLoad(doc, nullptr));
    const double n = static_cast<double>(doc.tag_count());
    const double a = static_cast<double>(wbox.params().a);
    const double k = static_cast<double>(wbox.params().k);
    const double bound = 1.0 + std::ceil(std::log(n / k) / std::log(a));
    EXPECT_LE(wbox.height(), std::max(1.0, bound)) << elements;
  }
}

// Theorem 4.4: a W-BOX label takes no more than
// log N + 1 + ceil(log(2+4/a) log_a(N/k) + log b) bits — checked after an
// adversarial workload, when labels are at their worst.
TEST(TheoryTest, WBoxLabelBitsBound) {
  TestDb db(/*page_size=*/1024);
  WBox wbox(&db.cache);
  workload::RunStats stats;
  ASSERT_OK(
      workload::RunConcentratedInsertion(&wbox, &db.cache, 8000, 4000,
                                         &stats));
  ASSERT_OK_AND_ASSIGN(const SchemeStats scheme_stats, wbox.GetStats());
  const double n = static_cast<double>(wbox.live_labels());
  const double a = static_cast<double>(wbox.params().a);
  const double k = static_cast<double>(wbox.params().k);
  const double b = static_cast<double>(wbox.params().b);
  const double bound =
      std::log2(n) + 1 +
      std::ceil(std::log2(2 + 4 / a) * (std::log2(n / k) / std::log2(a)) +
                std::log2(b));
  EXPECT_LE(scheme_stats.max_label_bits, bound);
}

// Theorem 5.1: a B-BOX label takes no more than
// log N + 1 + floor((log N - 1)/(log B - 1)) bits.
TEST(TheoryTest, BBoxLabelBitsBound) {
  TestDb db(/*page_size=*/1024);
  BBox bbox(&db.cache);
  workload::RunStats stats;
  ASSERT_OK(
      workload::RunConcentratedInsertion(&bbox, &db.cache, 8000, 4000,
                                         &stats));
  ASSERT_OK_AND_ASSIGN(const SchemeStats scheme_stats, bbox.GetStats());
  const double n = static_cast<double>(bbox.live_labels());
  const double big_b = static_cast<double>(bbox.params().leaf_capacity);
  const double bound =
      std::log2(n) + 1 +
      std::floor((std::log2(n) - 1) / (std::log2(big_b) - 1));
  EXPECT_LE(scheme_stats.max_label_bits, bound);
}

// Lemma 4.2 / Theorem 4.6 consequence: splits are rare. A node split
// requires Omega(weight) fresh insertions below it, so across n inserts
// the split count stays O(n/k) at the leaf level plus geometrically fewer
// above — well under n/(k/4) in total.
TEST(TheoryTest, WBoxSplitFrequency) {
  TestDb db(/*page_size=*/1024);
  WBox wbox(&db.cache);
  workload::RunStats stats;
  const uint64_t inserts = 12000;
  ASSERT_OK(workload::RunConcentratedInsertion(&wbox, &db.cache, 4000,
                                               inserts, &stats));
  const uint64_t labels_inserted = 2 * inserts;
  EXPECT_GT(wbox.split_count(), 0u);
  EXPECT_LE(wbox.split_count(), labels_inserted / (wbox.params().k / 4));
}

// B-BOX amortized O(1) (Theorem 5.3): each leaf split needs >= B/2 fresh
// insertions; higher levels are geometrically rarer. Total splits across n
// label inserts stay below ~ n/(B/2) * (1 + epsilon).
TEST(TheoryTest, BBoxSplitFrequency) {
  TestDb db(/*page_size=*/1024);
  BBox bbox(&db.cache);
  workload::RunStats stats;
  const uint64_t inserts = 12000;
  ASSERT_OK(workload::RunConcentratedInsertion(&bbox, &db.cache, 4000,
                                               inserts, &stats));
  const uint64_t labels_inserted = 2 * inserts;
  const uint64_t leaf_half = bbox.params().leaf_capacity / 2;
  EXPECT_GT(bbox.split_count(), 0u);
  EXPECT_LE(bbox.split_count(), 2 * labels_inserted / leaf_half + 4);
}

// Theorem 4.5: W-BOX lookup is exactly one I/O beyond the LIDF deref, at
// any height.
TEST(TheoryTest, WBoxLookupConstantAcrossHeights) {
  for (const uint64_t elements : {500ull, 8000ull, 60000ull}) {
    TestDb db(/*page_size=*/1024);
    WBox wbox(&db.cache);
    const xml::Document doc = xml::MakeTwoLevelDocument(elements);
    std::vector<NewElement> lids;
    ASSERT_OK(wbox.BulkLoad(doc, &lids));
    ASSERT_OK(db.cache.FlushAll());
    db.cache.ResetStats();
    for (int i = 0; i < 20; ++i) {
      IoScope scope(&db.cache);
      ASSERT_OK(wbox.Lookup(lids[(i * 131) % lids.size()].start).status());
    }
    EXPECT_EQ(db.cache.stats().reads, 40u)
        << "height " << wbox.height();  // 2 per lookup, any height
  }
}

// Theorem 5.2: B-BOX lookup walks exactly height + 1 pages.
TEST(TheoryTest, BBoxLookupTracksHeight) {
  for (const uint64_t elements : {500ull, 8000ull, 60000ull}) {
    TestDb db(/*page_size=*/1024);
    BBox bbox(&db.cache);
    const xml::Document doc = xml::MakeTwoLevelDocument(elements);
    std::vector<NewElement> lids;
    ASSERT_OK(bbox.BulkLoad(doc, &lids));
    ASSERT_OK(db.cache.FlushAll());
    db.cache.ResetStats();
    for (int i = 0; i < 20; ++i) {
      IoScope scope(&db.cache);
      ASSERT_OK(bbox.Lookup(lids[(i * 131) % lids.size()].start).status());
    }
    EXPECT_EQ(db.cache.stats().reads, 20u * (1 + bbox.height()));
  }
}

// Lemma 4.1: fan-outs implied by the weight constraints stay within
// [a/2 - 1, 2a + 3 + ceil(8/(a-2))] — verified structurally by
// CheckInvariants on a heavily churned tree (weight bounds imply them).
TEST(TheoryTest, WBoxWeightConstraintsSurviveChurn) {
  TestDb db(/*page_size=*/1024);
  WBoxOptions options;
  options.min_rebuild_records = 1 << 30;  // no rebuilds: pure churn
  WBox wbox(&db.cache, options);
  workload::RunStats stats;
  ASSERT_OK(workload::RunConcentratedInsertion(&wbox, &db.cache, 2000, 6000,
                                               &stats));
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_GE(wbox.height(), 3u);
}

}  // namespace
}  // namespace boxes
