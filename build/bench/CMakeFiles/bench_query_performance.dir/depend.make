# Empty dependencies file for bench_query_performance.
# This may be replaced when dependencies are built.
