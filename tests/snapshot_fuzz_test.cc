// Snapshot image corruption fuzz (DESIGN.md §4l): ~500 seeded mutations of
// a valid compiled image — random byte flips, truncations, tail padding,
// and targeted header forgeries (magic, version, expected size, entry
// count, flags, offsets) — must load as a clean kCorruption /
// kFailedPrecondition, or, when the mutation only touched bytes that don't
// affect answers (GUID, source epoch), serve exactly the original answers.
// Never a crash, never an out-of-bounds read (the sanitize preset runs
// this under ASan against heap-backed images), never a silently wrong
// label. Includes the libxmlb expected-size-in-header truncation case on
// the real mmap path.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "storage/page_cache.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/coding.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes::testing {
namespace {

constexpr int kFuzzIterations = 500;
constexpr uint64_t kFuzzSeed = 0xf022ed5ULL;

std::string BuildValidImage(uint64_t* entry_count) {
  TestDb db;
  WBox wbox(&db.cache, WBoxOptions{.maintain_ordinal = true});
  const xml::Document doc = xml::MakeRandomDocument(400, 6, 0x5eed);
  std::vector<NewElement> lids;
  EXPECT_OK(wbox.BulkLoad(doc, &lids));
  SnapshotWriter writer(SnapshotWriterOptions{.source_epoch = 7});
  StatusOr<std::string> image = writer.BuildImage(&wbox);
  EXPECT_OK(image.status());
  *entry_count = lids.size() * 2;
  return image.ok() ? *image : std::string();
}

// Reference answers from the pristine image, compared against any mutant
// that still claims to be valid.
struct Reference {
  std::vector<Lid> lids;
  std::vector<Label> labels;
  std::vector<uint64_t> ordinals;
};

Reference CollectReference(const std::string& image) {
  Reference ref;
  StatusOr<std::unique_ptr<SnapshotReader>> reader =
      SnapshotReader::OpenFromBuffer(image);
  EXPECT_OK(reader.status());
  if (!reader.ok()) {
    return ref;
  }
  for (uint64_t i = 0; i < (*reader)->entry_count(); ++i) {
    ref.lids.push_back((*reader)->LidAt(i));
    ref.labels.push_back((*reader)->LabelAt(i));
    ref.ordinals.push_back((*reader)->OrdinalAt(i));
  }
  return ref;
}

// A mutant either fails cleanly or answers exactly like the original.
void CheckMutant(const std::string& mutant, const Reference& ref,
                 const std::string& context) {
  StatusOr<std::unique_ptr<SnapshotReader>> reader =
      SnapshotReader::OpenFromBuffer(mutant);
  if (!reader.ok()) {
    const StatusCode code = reader.status().code();
    EXPECT_TRUE(code == StatusCode::kCorruption ||
                code == StatusCode::kFailedPrecondition)
        << context << ": unexpected failure class "
        << reader.status().ToString();
    return;
  }
  // Still valid — the mutation must not have changed any answer.
  ASSERT_EQ((*reader)->entry_count(), ref.lids.size()) << context;
  for (size_t i = 0; i < ref.lids.size(); ++i) {
    const size_t index = (*reader)->FindIndex(ref.lids[i]);
    ASSERT_EQ(index, i) << context;
    EXPECT_EQ((*reader)->LabelAt(index), ref.labels[i])
        << context << ": silently wrong label for lid " << ref.lids[i];
    EXPECT_EQ((*reader)->OrdinalAt(index), ref.ordinals[i])
        << context << ": silently wrong ordinal for lid " << ref.lids[i];
  }
}

class SnapshotFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = BuildValidImage(&entry_count_);
    ASSERT_FALSE(image_.empty());
    ref_ = CollectReference(image_);
    ASSERT_EQ(ref_.lids.size(), entry_count_);
  }

  std::string image_;
  uint64_t entry_count_ = 0;
  Reference ref_;
};

TEST_F(SnapshotFuzzTest, SeededMutationSweep) {
  Random rng(kFuzzSeed);
  for (int iteration = 0; iteration < kFuzzIterations; ++iteration) {
    std::string mutant = image_;
    const std::string context = "iteration " + std::to_string(iteration);
    const double roll = rng.NextDouble();
    if (roll < 0.40) {
      // Random byte flips, anywhere.
      const int flips = static_cast<int>(rng.UniformRange(1, 8));
      for (int f = 0; f < flips; ++f) {
        const size_t at = rng.Uniform(mutant.size());
        mutant[at] = static_cast<char>(mutant[at] ^
                                       (1u << rng.Uniform(8)));
      }
    } else if (roll < 0.55) {
      // Truncation to a random prefix (the libxmlb case, in memory).
      mutant.resize(rng.Uniform(mutant.size()));
    } else if (roll < 0.65) {
      // Tail padding with garbage.
      const size_t extra = rng.UniformRange(1, 4096);
      for (size_t i = 0; i < extra; ++i) {
        mutant.push_back(static_cast<char>(rng.Next()));
      }
    } else if (roll < 0.80) {
      // Header field forgery: overwrite one u64 somewhere in the header
      // with an adversarial value (0, huge, off-by-one of the original).
      uint8_t* header = reinterpret_cast<uint8_t*>(mutant.data());
      const size_t field = 8 * rng.Uniform(kSnapshotHeaderSize / 8);
      const double pick = rng.NextDouble();
      uint64_t forged;
      if (pick < 0.3) {
        forged = 0;
      } else if (pick < 0.6) {
        forged = UINT64_MAX - rng.Uniform(1 << 20);
      } else {
        forged = DecodeFixed64(header + field) +
                 (rng.Bernoulli(0.5) ? 1 : UINT64_MAX);
      }
      EncodeFixed64(header + field, forged);
    } else if (roll < 0.90) {
      // Oversized / undersized entry count specifically (the section
      // arithmetic overflow probe).
      uint8_t* header = reinterpret_cast<uint8_t*>(mutant.data());
      const uint64_t forged =
          rng.Bernoulli(0.5)
              ? entry_count_ + rng.UniformRange(1, 1 << 16)
              : (uint64_t{1} << 62) + rng.Uniform(1 << 10);
      EncodeFixed64(header + 56, forged);
    } else {
      // Body words scrambled: offsets or lids rewritten with random data
      // (CRC should catch it; if an engineered collision ever slipped
      // through, the answer-equality check would).
      uint8_t* body = reinterpret_cast<uint8_t*>(mutant.data()) +
                      kSnapshotHeaderSize;
      const size_t body_words = (mutant.size() - kSnapshotHeaderSize) / 8;
      const size_t at = rng.Uniform(body_words);
      EncodeFixed64(body + 8 * at, rng.Next());
    }
    CheckMutant(mutant, ref_, context);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST_F(SnapshotFuzzTest, TruncatedFileOnDiskIsCleanCorruption) {
  // The on-disk variant of the libxmlb case: the header's expected size
  // catches a file that lost its tail (partial write, torn copy) before
  // any section pointer is formed — on the real mmap path.
  const std::string path = ::testing::TempDir() + "boxes_snapfuzz_" +
                           std::to_string(::getpid()) + ".silo";
  Random rng(kFuzzSeed ^ 1);
  for (int i = 0; i < 32; ++i) {
    const size_t keep = rng.Uniform(image_.size());
    FILE* f = ::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::fwrite(image_.data(), 1, keep, f), keep);
    ASSERT_EQ(::fclose(f), 0);
    StatusOr<std::unique_ptr<SnapshotReader>> reader =
        SnapshotReader::Open(path);
    ASSERT_FALSE(reader.ok()) << "kept " << keep << " of " << image_.size();
    EXPECT_TRUE(reader.status().code() == StatusCode::kCorruption ||
                reader.status().code() == StatusCode::kFailedPrecondition ||
                reader.status().code() == StatusCode::kIoError)
        << reader.status().ToString();
  }
  ::unlink(path.c_str());
}

TEST_F(SnapshotFuzzTest, ForgedMagicIsFailedPrecondition) {
  std::string mutant = image_;
  mutant[0] = 'Z';
  StatusOr<std::unique_ptr<SnapshotReader>> reader =
      SnapshotReader::OpenFromBuffer(mutant);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotFuzzTest, FutureVersionIsFailedPrecondition) {
  std::string mutant = image_;
  EncodeFixed32(reinterpret_cast<uint8_t*>(mutant.data()) + 8,
                kSnapshotVersion + 1);
  StatusOr<std::unique_ptr<SnapshotReader>> reader =
      SnapshotReader::OpenFromBuffer(mutant);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotFuzzTest, MetadataOnlyMutationsStillAnswerCorrectly) {
  // GUID and source-epoch bytes are provenance, not answers: flipping them
  // invalidates nothing the CRC covers — these fields live in the header —
  // and lookups must be byte-identical.
  Random rng(kFuzzSeed ^ 2);
  for (int i = 0; i < 16; ++i) {
    std::string mutant = image_;
    const size_t at = 32 + rng.Uniform(24);  // source_epoch + guid bytes
    mutant[at] = static_cast<char>(mutant[at] ^ 0xff);
    CheckMutant(mutant, ref_, "metadata mutation " + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace boxes::testing
