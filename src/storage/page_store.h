#ifndef BOXES_STORAGE_PAGE_STORE_H_
#define BOXES_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace boxes {

/// Identifier of a fixed-size block ("page") in a PageStore.
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = UINT64_MAX;

/// Default block size used throughout the paper's experiments (8 KB).
inline constexpr size_t kDefaultPageSize = 8192;

/// Abstraction of a block device: a growable array of fixed-size pages with
/// allocate/free/read/write. All BOX structures and the LIDF live on a
/// PageStore; the PageCache in front of it is what counts I/Os.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Size in bytes of every page.
  virtual size_t page_size() const = 0;

  /// Allocates a zeroed page and returns its id.
  virtual StatusOr<PageId> Allocate() = 0;

  /// Returns a page to the free list. The page id may be reused by a later
  /// Allocate().
  virtual Status Free(PageId id) = 0;

  /// Reads a full page into `buf` (page_size() bytes).
  virtual Status Read(PageId id, uint8_t* buf) = 0;

  /// Writes a full page from `buf` (page_size() bytes).
  virtual Status Write(PageId id, const uint8_t* buf) = 0;

  /// Number of currently allocated (live) pages.
  virtual uint64_t allocated_pages() const = 0;

  /// Total pages ever created, including freed ones (device size).
  virtual uint64_t total_pages() const = 0;

  /// Snapshots the allocator: device size and the currently free page ids.
  /// Together with the data pages this fully describes the store, enabling
  /// checkpoint/reopen of file-backed databases.
  virtual void SnapshotAllocator(uint64_t* total,
                                 std::vector<PageId>* free_pages) const = 0;

  /// Restores allocator state captured by SnapshotAllocator. All pages
  /// outside `free_pages` (and below `total`) become live.
  virtual Status RestoreAllocator(uint64_t total,
                                  const std::vector<PageId>& free_pages) = 0;
};

/// In-memory page store; the default substrate for experiments. Simulates a
/// disk: pages are explicit, fixed-size, and only reachable through
/// Read/Write.
class MemoryPageStore : public PageStore {
 public:
  explicit MemoryPageStore(size_t page_size = kDefaultPageSize);

  MemoryPageStore(const MemoryPageStore&) = delete;
  MemoryPageStore& operator=(const MemoryPageStore&) = delete;

  size_t page_size() const override { return page_size_; }
  StatusOr<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  uint64_t allocated_pages() const override { return allocated_; }
  uint64_t total_pages() const override { return pages_.size(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override;
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override;

 private:
  Status CheckId(PageId id) const;

  const size_t page_size_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  uint64_t allocated_ = 0;
};

/// File-backed page store. Functionally identical to MemoryPageStore but
/// persists pages in a single flat file, demonstrating that the structures
/// are genuinely disk-resident.
class FilePageStore : public PageStore {
 public:
  enum class Mode {
    kTruncate,  // create fresh / discard existing contents
    kOpen,      // open an existing store; pages become live, pass the freed
                // set via RestoreAllocator (e.g. from a checkpoint)
  };

  /// Opens `path` in the given mode. Check status() before use.
  FilePageStore(const std::string& path, size_t page_size = kDefaultPageSize,
                Mode mode = Mode::kTruncate);
  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  /// Status of construction; not OK if the file could not be opened.
  const Status& status() const { return status_; }

  size_t page_size() const override { return page_size_; }
  StatusOr<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  uint64_t allocated_pages() const override { return allocated_; }
  uint64_t total_pages() const override { return total_pages_; }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override;
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override;

 private:
  Status CheckId(PageId id) const;

  const size_t page_size_;
  Status status_;
  int fd_ = -1;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  uint64_t total_pages_ = 0;
  uint64_t allocated_ = 0;
};

/// Wraps another PageStore and injects failures, for testing Status
/// propagation. Fails every read/write once `fail_after_ops` operations
/// have succeeded (UINT64_MAX = never fail).
class FaultInjectionPageStore : public PageStore {
 public:
  explicit FaultInjectionPageStore(PageStore* base);

  FaultInjectionPageStore(const FaultInjectionPageStore&) = delete;
  FaultInjectionPageStore& operator=(const FaultInjectionPageStore&) = delete;

  /// Arms the fault: after `n` further successful reads/writes, all
  /// subsequent reads/writes fail with IoError.
  void FailAfter(uint64_t n) { fail_after_ops_ = n; }
  /// Disarms the fault.
  void Heal() { fail_after_ops_ = UINT64_MAX; }

  size_t page_size() const override { return base_->page_size(); }
  StatusOr<PageId> Allocate() override { return base_->Allocate(); }
  Status Free(PageId id) override { return base_->Free(id); }
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  uint64_t allocated_pages() const override {
    return base_->allocated_pages();
  }
  uint64_t total_pages() const override { return base_->total_pages(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override {
    base_->SnapshotAllocator(total, free_pages);
  }
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override {
    return base_->RestoreAllocator(total, free_pages);
  }

 private:
  Status MaybeFail();

  PageStore* base_;  // not owned
  uint64_t fail_after_ops_ = UINT64_MAX;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_PAGE_STORE_H_
