// dbtool — a small database utility over a file-backed, checkpointed BOX
// store, exercising the full stack: FilePageStore + superblock +
// checkpoint/restore + the LabeledDocument facade + twig queries.
//
//   ./dbtool create  --db=doc.boxdb --xml=input.xml     (or --elements=N
//                                                        for a generated
//                                                        XMark document)
//   ./dbtool inspect --db=doc.boxdb
//   ./dbtool verify  --db=doc.boxdb
//   ./dbtool scrub   --db=doc.boxdb [--step_pages=N]
//   ./dbtool query   --db=doc.boxdb --twig="item[//mailbox]//text"
//   ./dbtool export  --db=doc.boxdb --out=roundtrip.xml
//
// The checkpoint layout is [W-BOX metadata chain head][facade registry],
// stored behind the page-0 superblock.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/wbox/wbox.h"
#include "doc/labeled_document.h"
#include "query/structural_join.h"
#include "query/twig.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "storage/scrubber.h"
#include "util/flags.h"
#include "xml/writer.h"
#include "xml/xmark.h"

namespace {

using namespace boxes;  // NOLINT: example brevity

void DieOnError(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

struct Db {
  std::unique_ptr<FilePageStore> store;
  std::unique_ptr<PageCache> cache;
  std::unique_ptr<WBox> wbox;
  std::unique_ptr<LabeledDocument> doc;
};

Status SaveDb(Db* db) {
  // Persist scheme + registry, durably commit the new checkpoint, and only
  // then reclaim the superseded chain — a crash mid-save keeps the old
  // checkpoint loadable.
  StatusOr<PageId> old_head = LoadCheckpointHead(db->cache.get());
  BOXES_ASSIGN_OR_RETURN(const PageId scheme_head, db->wbox->Checkpoint());
  MetadataWriter writer;
  writer.PutU64(scheme_head);
  db->doc->SaveState(&writer);
  BOXES_ASSIGN_OR_RETURN(const PageId head, writer.Finish(db->cache.get()));
  BOXES_RETURN_IF_ERROR(CommitCheckpoint(db->cache.get(), head));
  if (old_head.ok()) {
    BOXES_RETURN_IF_ERROR(FreeMetadataChain(db->cache.get(), *old_head));
  }
  return db->cache->FlushAll();
}

Db OpenDb(const std::string& path) {
  Db db;
  db.store = std::make_unique<FilePageStore>(path, kDefaultPageSize,
                                             FilePageStore::Mode::kOpen);
  DieOnError(db.store->status(), "open");
  db.cache = std::make_unique<PageCache>(db.store.get());
  db.wbox = std::make_unique<WBox>(db.cache.get());
  db.doc = std::make_unique<LabeledDocument>(db.wbox.get());
  StatusOr<PageId> head = LoadCheckpointHead(db.cache.get());
  DieOnError(head.status(), "load checkpoint");
  StatusOr<MetadataReader> reader =
      MetadataReader::Load(db.cache.get(), *head);
  DieOnError(reader.status(), "read checkpoint");
  StatusOr<uint64_t> scheme_head = reader->GetU64();
  DieOnError(scheme_head.status(), "read scheme head");
  DieOnError(db.wbox->Restore(*scheme_head), "restore scheme");
  DieOnError(db.doc->LoadState(&*reader), "restore registry");
  return db;
}

int CmdCreate(const std::string& path, const std::string& xml_path,
              int64_t elements) {
  Db db;
  db.store = std::make_unique<FilePageStore>(path, kDefaultPageSize,
                                             FilePageStore::Mode::kTruncate);
  DieOnError(db.store->status(), "create");
  db.cache = std::make_unique<PageCache>(db.store.get());
  DieOnError(InitializeSuperblock(db.cache.get()), "superblock");
  db.wbox = std::make_unique<WBox>(db.cache.get());
  db.doc = std::make_unique<LabeledDocument>(db.wbox.get());
  if (!xml_path.empty()) {
    std::ifstream in(xml_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", xml_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    DieOnError(db.doc->LoadXml(buffer.str()).status(), "load xml");
  } else {
    DieOnError(db.doc
                   ->LoadTree(xml::MakeXmarkDocument(
                       static_cast<uint64_t>(elements), 7))
                   .status(),
               "generate");
  }
  DieOnError(SaveDb(&db), "checkpoint");
  std::printf("created %s: %llu elements, %llu pages (%.1f MB)\n",
              path.c_str(),
              static_cast<unsigned long long>(db.doc->element_count()),
              static_cast<unsigned long long>(db.store->total_pages()),
              static_cast<double>(db.store->total_pages()) *
                  kDefaultPageSize / (1024.0 * 1024.0));
  return 0;
}

int CmdInspect(const std::string& path) {
  Db db = OpenDb(path);
  StatusOr<SchemeStats> stats = db.wbox->GetStats();
  DieOnError(stats.status(), "stats");
  std::printf("scheme        : %s\n", db.wbox->name().c_str());
  std::printf("elements      : %llu\n",
              static_cast<unsigned long long>(db.doc->element_count()));
  std::printf("live labels   : %llu\n",
              static_cast<unsigned long long>(stats->live_labels));
  std::printf("tombstones    : %llu\n",
              static_cast<unsigned long long>(db.wbox->tombstones()));
  std::printf("tree height   : %llu\n",
              static_cast<unsigned long long>(stats->height));
  std::printf("index pages   : %llu\n",
              static_cast<unsigned long long>(stats->index_pages));
  std::printf("LIDF pages    : %llu\n",
              static_cast<unsigned long long>(stats->lidf_pages));
  std::printf("max label bits: %u\n", stats->max_label_bits);
  std::printf("device pages  : %llu\n",
              static_cast<unsigned long long>(db.store->total_pages()));
  return 0;
}

int CmdVerify(const std::string& path) {
  Db db = OpenDb(path);
  DieOnError(db.doc->CheckConsistency(), "consistency");
  std::printf("OK: scheme invariants, label nesting, and the registry all "
              "check out (%llu elements)\n",
              static_cast<unsigned long long>(db.doc->element_count()));
  return 0;
}

int CmdScrub(const std::string& path, int64_t step_pages) {
  // Phase 1 — media scrub: walk every live page through the store's own
  // CRC32C verification, without requiring the checkpoint to be loadable
  // (a damaged database should still be scrubbable).
  FilePageStore store(path, kDefaultPageSize, FilePageStore::Mode::kOpen);
  DieOnError(store.status(), "open");
  ScrubberOptions options;
  options.pages_per_step =
      step_pages > 0 ? static_cast<uint64_t>(step_pages) : 16;
  Scrubber scrubber(&store, options);
  DieOnError(scrubber.ScrubPass(), "scrub");
  const Scrubber::Counters& counters = scrubber.counters();
  std::printf("media scrub   : %llu pages verified, %llu corrupt, %llu "
              "read errors\n",
              static_cast<unsigned long long>(counters.pages_scanned),
              static_cast<unsigned long long>(counters.corrupt_pages),
              static_cast<unsigned long long>(counters.read_errors));
  for (const PageId id : scrubber.quarantined()) {
    std::printf("  quarantined page %llu\n",
                static_cast<unsigned long long>(id));
  }

  // Phase 2 — structural scrub: restore the checkpoint and run the scheme
  // and registry invariant checks (wbox_check + label nesting) on top of
  // the verified media.
  PageCache cache(&store);
  WBox wbox(&cache);
  LabeledDocument doc(&wbox);
  Status structural = Status::OK();
  do {
    StatusOr<PageId> head = LoadCheckpointHead(&cache);
    if (!head.ok()) {
      structural = head.status();
      break;
    }
    StatusOr<MetadataReader> reader = MetadataReader::Load(&cache, *head);
    if (!reader.ok()) {
      structural = reader.status();
      break;
    }
    StatusOr<uint64_t> scheme_head = reader->GetU64();
    if (!scheme_head.ok()) {
      structural = scheme_head.status();
      break;
    }
    structural = wbox.Restore(*scheme_head);
    if (structural.ok()) {
      structural = doc.LoadState(&*reader);
    }
    if (structural.ok()) {
      structural = doc.CheckConsistency();
    }
  } while (false);
  if (structural.ok()) {
    std::printf("structural    : OK (%llu elements)\n",
                static_cast<unsigned long long>(doc.element_count()));
  } else {
    std::printf("structural    : %s\n", structural.ToString().c_str());
  }

  const bool healthy = scrubber.quarantined().empty() && structural.ok();
  std::printf("%s\n", healthy ? "SCRUB OK" : "SCRUB FOUND PROBLEMS");
  return healthy ? 0 : 2;
}

int CmdQuery(const std::string& path, const std::string& twig_text) {
  Db db = OpenDb(path);
  StatusOr<query::TwigPattern> pattern = query::ParseTwigPattern(twig_text);
  DieOnError(pattern.status(), "parse twig");
  std::vector<LabeledDocument::ElementHandle> handles;
  StatusOr<xml::Document> tree = db.doc->ToTree(&handles);
  DieOnError(tree.status(), "reconstruct tree");
  std::vector<NewElement> lids(tree->element_count());
  for (xml::ElementId id = 0; id < tree->element_count(); ++id) {
    lids[id] = db.doc->lids(handles[id]);
  }
  StatusOr<std::vector<query::Interval>> roots =
      query::MatchTwig(*pattern, db.wbox.get(), *tree, lids);
  DieOnError(roots.status(), "match");
  std::printf("twig %s: %zu match roots\n", twig_text.c_str(),
              roots->size());
  for (size_t i = 0; i < roots->size() && i < 10; ++i) {
    const query::Interval& interval = (*roots)[i];
    std::printf("  <%s> at labels [%s, %s]\n",
                tree->element((*roots)[i].handle).tag.c_str(),
                interval.start.ToString().c_str(),
                interval.end.ToString().c_str());
  }
  if (roots->size() > 10) {
    std::printf("  ... and %zu more\n", roots->size() - 10);
  }
  return 0;
}

int CmdExport(const std::string& path, const std::string& out_path) {
  Db db = OpenDb(path);
  StatusOr<std::string> xml = db.doc->ToXml(true);
  DieOnError(xml.status(), "serialize");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << *xml;
  std::printf("exported %llu elements to %s (%zu bytes)\n",
              static_cast<unsigned long long>(db.doc->element_count()),
              out_path.c_str(), xml->size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dbtool <create|inspect|verify|scrub|query|export> "
                 "[flags]\n");
    return 1;
  }
  const std::string command = argv[1];
  FlagParser flags;
  std::string* db_path = flags.AddString("db", "boxes.db", "database file");
  std::string* xml_path = flags.AddString("xml", "", "input XML file");
  std::string* twig =
      flags.AddString("twig", "item[//mailbox]//text", "twig pattern");
  std::string* out = flags.AddString("out", "out.xml", "output file");
  int64_t* elements =
      flags.AddInt64("elements", 20000, "generated document size");
  int64_t* step_pages =
      flags.AddInt64("step_pages", 64, "pages verified per scrub step");
  if (!flags.Parse(argc - 1, argv + 1)) {
    return 1;
  }
  if (command == "create") {
    return CmdCreate(*db_path, *xml_path, *elements);
  }
  if (command == "inspect") {
    return CmdInspect(*db_path);
  }
  if (command == "verify") {
    return CmdVerify(*db_path);
  }
  if (command == "scrub") {
    return CmdScrub(*db_path, *step_pages);
  }
  if (command == "query") {
    return CmdQuery(*db_path, *twig);
  }
  if (command == "export") {
    return CmdExport(*db_path, *out);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
