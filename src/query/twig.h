#ifndef BOXES_QUERY_TWIG_H_
#define BOXES_QUERY_TWIG_H_

#include <memory>
#include <string>
#include <vector>

#include "query/structural_join.h"
#include "util/status.h"

namespace boxes::query {

/// A twig (tree) pattern with ancestor-descendant ("//") edges, e.g.
///   item[.//mailbox][.//incategory]//text
/// Twig matching over order-based labels is the second core operation the
/// paper motivates (Bruno et al., "Holistic twig joins", SIGMOD'02).
struct TwigPattern {
  std::string tag;
  std::vector<TwigPattern> children;
};

/// Parses a compact twig syntax:
///   pattern   := step ( "//" step )*          (linear path suffix)
///   step      := TAG branch*
///   branch    := "[" "//"? pattern "]"        (a required descendant twig)
/// Examples: "site//item//text", "item[//mailbox][//incategory]//text".
StatusOr<TwigPattern> ParseTwigPattern(const std::string& text);

/// Matches `pattern` bottom-up against per-tag interval lists: an interval
/// roots a match iff, for every pattern child, some interval matching that
/// child's sub-twig lies strictly inside it. `intervals_for_tag` is called
/// once per distinct tag in the pattern and must return the tag's
/// intervals sorted by start label.
///
/// Returns the intervals (in document order) that root a full match.
/// Proper nesting of tree intervals makes each existence test a binary
/// search; the whole match costs O(sum of candidate-list sizes x log).
StatusOr<std::vector<Interval>> MatchTwig(
    const TwigPattern& pattern,
    const std::function<StatusOr<std::vector<Interval>>(const std::string&)>&
        intervals_for_tag);

/// Convenience front end: matches against a document labeled by `scheme`.
StatusOr<std::vector<Interval>> MatchTwig(
    const TwigPattern& pattern, LabelingScheme* scheme,
    const xml::Document& doc, const std::vector<NewElement>& lids);

}  // namespace boxes::query

#endif  // BOXES_QUERY_TWIG_H_
