file(REMOVE_RECURSE
  "CMakeFiles/indexed_log_test.dir/indexed_log_test.cc.o"
  "CMakeFiles/indexed_log_test.dir/indexed_log_test.cc.o.d"
  "indexed_log_test"
  "indexed_log_test.pdb"
  "indexed_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
