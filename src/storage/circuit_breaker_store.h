#ifndef BOXES_STORAGE_CIRCUIT_BREAKER_STORE_H_
#define BOXES_STORAGE_CIRCUIT_BREAKER_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "storage/page_store.h"
#include "util/metrics.h"
#include "util/status.h"

namespace boxes {

/// Configuration of CircuitBreakerPageStore's trip heuristic.
struct CircuitBreakerOptions {
  /// Sliding window of recent operation outcomes the failure rate is
  /// computed over.
  size_t window_ops = 64;
  /// The breaker never trips before this many outcomes are in the window
  /// (a single failure out of two samples is not a sick device).
  size_t min_ops = 16;
  /// Failure fraction within the window at which the breaker opens.
  double failure_threshold = 0.5;
  /// How long an open breaker fast-fails before letting probes through
  /// (microseconds on `now_fn`'s clock).
  uint64_t open_cooldown_us = 50'000;
  /// Consecutive probe successes required in half-open to close again;
  /// also the cap on concurrently admitted probes.
  uint32_t half_open_probes = 3;
  /// Microsecond clock; null = the process steady clock. Injectable so
  /// tests drive cooldown expiry with virtual time.
  std::function<uint64_t()> now_fn = nullptr;
};

/// Decorator implementing the circuit-breaker pattern over any PageStore
/// (DESIGN.md §4j). Stacked ABOVE RetryingPageStore and below the
/// PageCache: the breaker watches *post-retry* outcomes, so a window full
/// of failures means the device stayed down through whole retry budgets —
/// exactly when further retry storms only add latency for everyone.
///
///   * closed    — operations pass through; outcomes feed a sliding
///                 window. When >= failure_threshold of the last
///                 window_ops operations (and at least min_ops samples)
///                 failed, the breaker opens.
///   * open      — every operation fast-fails with kResourceExhausted
///                 without touching the store. The error is retryable by
///                 taxonomy but reaches callers ABOVE the retry layer, so
///                 nothing loops on it; being data-unavailable, it lets
///                 CachingLabelStore's degraded reads serve stale values
///                 immediately instead of burning a retry budget first.
///                 After open_cooldown_us the breaker turns half-open.
///   * half-open — up to half_open_probes operations are admitted as
///                 probes (excess still fast-fails). Any probe failure
///                 reopens with a fresh cooldown; half_open_probes
///                 successes close the breaker and clear the window.
///
/// Failure classification: device-health errors only, i.e.
/// IsDataUnavailableCode EXCLUDING kDeadlineExceeded — a caller running
/// out of its own budget (see util/request_context.h) says nothing about
/// the device, and counting it would let a storm of impatient requests
/// open a healthy device's breaker. Logical errors (kNotFound, ...) count
/// as successes for the same reason.
///
/// WriteTorn passes through ungated: it is the fault-injection hook
/// itself, not live traffic.
///
/// Thread-safe: state and window live under one mutex that is never held
/// across a base-store call; counters are atomic.
class CircuitBreakerPageStore : public PageStore {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// Breaker activity counters (mirrored into an attached MetricsRegistry
  /// under "breaker.*").
  struct Counters {
    std::atomic<uint64_t> ops{0};         // operations admitted to the base
    std::atomic<uint64_t> failures{0};    // admitted ops that failed (device-health)
    std::atomic<uint64_t> fast_fails{0};  // ops rejected while open/half-open
    std::atomic<uint64_t> opened{0};      // closed/half-open -> open transitions
    std::atomic<uint64_t> closed{0};      // half-open -> closed transitions
  };

  CircuitBreakerPageStore(PageStore* base, CircuitBreakerOptions options = {});

  CircuitBreakerPageStore(const CircuitBreakerPageStore&) = delete;
  CircuitBreakerPageStore& operator=(const CircuitBreakerPageStore&) = delete;

  size_t page_size() const override { return base_->page_size(); }
  StatusOr<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  Status WriteUnjournaled(PageId id, const uint8_t* buf) override;
  PageId unjournaled_floor() const override {
    return base_->unjournaled_floor();
  }
  Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix) override;
  Status Sync() override;
  Status CommitEpoch(uint64_t epoch) override;
  uint64_t allocated_pages() const override {
    return base_->allocated_pages();
  }
  uint64_t total_pages() const override { return base_->total_pages(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override {
    base_->SnapshotAllocator(total, free_pages);
  }
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override {
    return base_->RestoreAllocator(total, free_pages);
  }

  /// Current state. Open with an elapsed cooldown still reports kOpen
  /// until the next operation actually turns it half-open.
  State state() const;

  const Counters& counters() const { return counters_; }
  const CircuitBreakerOptions& options() const { return options_; }

  /// Attaches (or detaches, with nullptr) a metrics registry; breaker
  /// counters are incremented there under "breaker.*". Resolve-once
  /// handles, same contract as RetryingPageStore::SetMetrics: call at
  /// setup, not during concurrent traffic.
  void SetMetrics(MetricsRegistry* metrics);

 private:
  struct MetricHandles {
    MetricsRegistry::Counter* ops = nullptr;
    MetricsRegistry::Counter* failures = nullptr;
    MetricsRegistry::Counter* fast_fails = nullptr;
    MetricsRegistry::Counter* opened = nullptr;
    MetricsRegistry::Counter* closed = nullptr;
  };

  uint64_t NowUs() const;
  /// Decides admission; on pass-through sets *probe when the op runs as a
  /// half-open probe. Returns non-OK (the fast-fail) when rejected.
  Status Admit(bool* probe);
  /// Feeds one admitted op's outcome back into the state machine.
  void RecordOutcome(bool failure, bool probe);
  /// Transitions to open at `now`; the caller holds mu_.
  void OpenLocked(uint64_t now);
  void Count(std::atomic<uint64_t> Counters::*field,
             MetricsRegistry::Counter* handle);
  Status RunGated(const std::function<Status()>& op);

  PageStore* base_;  // not owned
  const CircuitBreakerOptions options_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  uint64_t open_until_us_ = 0;
  uint32_t probes_in_flight_ = 0;
  uint32_t probe_successes_ = 0;
  // Outcome ring buffer: 1 = failure. window_count_ grows to window_ops
  // and stays there; window_failures_ tracks the sum.
  std::vector<uint8_t> window_;
  size_t window_next_ = 0;
  size_t window_count_ = 0;
  size_t window_failures_ = 0;

  Counters counters_;
  MetricHandles handles_;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_CIRCUIT_BREAKER_STORE_H_
