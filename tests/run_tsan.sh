#!/bin/sh
# Builds the sanitize-thread preset (ThreadSanitizer) and runs the
# concurrency-, fleet-, replication-, and snapshot-labeled test suites
# under it (the
# epoch guard, the sharded PageCache, thread-safe metrics, the
# N-readers/1-writer scheme stress and differential tests, the
# multi-tenant fleet harness, and the WAL-shipping standby apply path,
# which replays under the standby's own epoch guard).
# Usage: tests/run_tsan.sh [ctest args].
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset sanitize-thread
cmake --build --preset sanitize-thread -j "$(nproc)"

# halt_on_error: fail the offending test at the first reported race instead
# of drowning the log; TSan's nonzero exit code fails the ctest run.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
  ctest --preset sanitize-thread "$@"
