#include "xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace boxes::xml {

namespace {

/// Cursor over the input with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool StartsWith(std::string_view prefix) const {
    return input_.substr(pos_, prefix.size()) == prefix;
  }

  void Advance(size_t n = 1) {
    for (size_t i = 0; i < n && pos_ < input_.size(); ++i) {
      if (input_[pos_] == '\n') {
        ++line_;
      }
      ++pos_;
    }
  }

  /// Advances past `text`; returns false (without moving) if absent here.
  bool Consume(std::string_view text) {
    if (!StartsWith(text)) {
      return false;
    }
    Advance(text.size());
    return true;
  }

  /// Advances to just past the next occurrence of `text`.
  bool SkipPast(std::string_view text) {
    const size_t found = input_.find(text, pos_);
    if (found == std::string_view::npos) {
      return false;
    }
    while (pos_ < found) {
      Advance();
    }
    Advance(text.size());
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  size_t line() const { return line_; }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("XML parse error at line " +
                                   std::to_string(line_) + ": " + what);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

StatusOr<std::string> ParseName(Cursor* cur) {
  if (cur->AtEnd() || !IsNameStartChar(cur->Peek())) {
    return cur->Error("expected a tag name");
  }
  std::string name;
  while (!cur->AtEnd() && IsNameChar(cur->Peek())) {
    name.push_back(cur->Peek());
    cur->Advance();
  }
  return name;
}

/// Skips attributes up to (but not including) '>' or '/>'.
Status SkipAttributes(Cursor* cur) {
  for (;;) {
    cur->SkipWhitespace();
    if (cur->AtEnd()) {
      return cur->Error("unterminated start tag");
    }
    const char c = cur->Peek();
    if (c == '>' || c == '/') {
      return Status::OK();
    }
    // attribute name
    StatusOr<std::string> name = ParseName(cur);
    if (!name.ok()) {
      return name.status();
    }
    cur->SkipWhitespace();
    if (!cur->Consume("=")) {
      return cur->Error("attribute '" + *name + "' is missing '='");
    }
    cur->SkipWhitespace();
    if (cur->AtEnd() || (cur->Peek() != '"' && cur->Peek() != '\'')) {
      return cur->Error("attribute value must be quoted");
    }
    const char quote = cur->Peek();
    cur->Advance();
    while (!cur->AtEnd() && cur->Peek() != quote) {
      cur->Advance();
    }
    if (!cur->Consume(std::string_view(&quote, 1))) {
      return cur->Error("unterminated attribute value");
    }
  }
}

}  // namespace

StatusOr<Document> ParseDocument(std::string_view input) {
  Cursor cur(input);
  Document doc;
  std::vector<ElementId> open;  // stack of open elements

  for (;;) {
    // Skip character data between tags.
    while (!cur.AtEnd() && cur.Peek() != '<') {
      cur.Advance();
    }
    if (cur.AtEnd()) {
      break;
    }
    if (cur.Consume("<!--")) {
      if (!cur.SkipPast("-->")) {
        return cur.Error("unterminated comment");
      }
      continue;
    }
    if (cur.Consume("<![CDATA[")) {
      if (!cur.SkipPast("]]>")) {
        return cur.Error("unterminated CDATA section");
      }
      continue;
    }
    if (cur.Consume("<?")) {
      if (!cur.SkipPast("?>")) {
        return cur.Error("unterminated processing instruction");
      }
      continue;
    }
    if (cur.Consume("<!")) {
      // DOCTYPE or other declaration, without internal subset support.
      if (!cur.SkipPast(">")) {
        return cur.Error("unterminated declaration");
      }
      continue;
    }
    if (cur.Consume("</")) {
      StatusOr<std::string> name = ParseName(&cur);
      if (!name.ok()) {
        return name.status();
      }
      cur.SkipWhitespace();
      if (!cur.Consume(">")) {
        return cur.Error("malformed end tag </" + *name + ">");
      }
      if (open.empty()) {
        return cur.Error("end tag </" + *name + "> with no open element");
      }
      const ElementId top = open.back();
      if (doc.element(top).tag != *name) {
        return cur.Error("end tag </" + *name + "> does not match <" +
                         doc.element(top).tag + ">");
      }
      open.pop_back();
      continue;
    }
    if (cur.Consume("<")) {
      StatusOr<std::string> name = ParseName(&cur);
      if (!name.ok()) {
        return name.status();
      }
      BOXES_RETURN_IF_ERROR(SkipAttributes(&cur));
      bool self_closing = false;
      if (cur.Consume("/>")) {
        self_closing = true;
      } else if (!cur.Consume(">")) {
        return cur.Error("malformed start tag <" + *name + ">");
      }
      ElementId id;
      if (open.empty()) {
        if (!doc.empty()) {
          return cur.Error("multiple root elements");
        }
        id = doc.AddRoot(*name);
      } else {
        id = doc.AddChild(open.back(), *name);
      }
      if (!self_closing) {
        open.push_back(id);
      }
      continue;
    }
    return cur.Error("unexpected character");
  }

  if (!open.empty()) {
    return cur.Error("unclosed element <" + doc.element(open.back()).tag +
                     ">");
  }
  if (doc.empty()) {
    return cur.Error("document has no root element");
  }
  return doc;
}

}  // namespace boxes::xml
