// Containment join over order-based labels — the query operation the paper
// cites as the labels' raison d'être (Zhang et al., SIGMOD'01).
//
// Finds all (ancestor, descendant) pairs with given tag names in an
// XMark-shaped document by a single sort-merge pass over (start, end)
// labels, and cross-checks the result count against a plain tree traversal.
//
//   ./containment_join [--elements=20000] [--ancestor=item]
//                      [--descendant=text]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/label.h"
#include "query/structural_join.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "util/flags.h"
#include "xml/xmark.h"

namespace {

void DieOnError(const boxes::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boxes;  // NOLINT: example brevity

  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 20000, "document size");
  std::string* ancestor_tag =
      flags.AddString("ancestor", "item", "ancestor tag name");
  std::string* descendant_tag =
      flags.AddString("descendant", "text", "descendant tag name");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  MemoryPageStore store;
  PageCache cache(&store);
  BBox bbox(&cache);

  const xml::Document doc =
      xml::MakeXmarkDocument(static_cast<uint64_t>(*elements), 7);
  std::vector<NewElement> lids;
  {
    IoScope scope(&cache);
    DieOnError(bbox.BulkLoad(doc, &lids), "bulk load");
  }
  cache.ResetStats();  // report the join's own I/O only
  std::printf("document: %llu elements; joining %s//%s\n",
              static_cast<unsigned long long>(doc.element_count()),
              ancestor_tag->c_str(), descendant_tag->c_str());

  // Gather, sort, and join the two label lists via the query library.
  auto collect = [&](const std::string& tag) {
    IoScope scope(&cache);
    StatusOr<std::vector<query::Interval>> intervals =
        query::CollectIntervals(&bbox, doc, lids, tag);
    DieOnError(intervals.status(), "collect");
    return *std::move(intervals);
  };
  const std::vector<query::Interval> ancestors = collect(*ancestor_tag);
  const std::vector<query::Interval> descendants = collect(*descendant_tag);
  std::printf("candidates: %zu %s, %zu %s\n", ancestors.size(),
              ancestor_tag->c_str(), descendants.size(),
              descendant_tag->c_str());

  const uint64_t pairs = query::CountStructuralJoin(ancestors, descendants);
  std::printf("containment join result: %llu pairs\n",
              static_cast<unsigned long long>(pairs));

  // Cross-check against a direct tree walk.
  uint64_t expected = 0;
  for (xml::ElementId id = 0; id < doc.element_count(); ++id) {
    if (doc.element(id).tag != *descendant_tag) {
      continue;
    }
    for (xml::ElementId up = doc.element(id).parent;
         up != xml::kInvalidElement; up = doc.element(up).parent) {
      if (doc.element(up).tag == *ancestor_tag) {
        ++expected;
      }
    }
  }
  std::printf("tree-walk cross-check:    %llu pairs — %s\n",
              static_cast<unsigned long long>(expected),
              pairs == expected ? "MATCH" : "MISMATCH");
  std::printf("total block I/Os: %s\n", cache.stats().ToString().c_str());
  return pairs == expected ? 0 : 1;
}
