#include "util/metrics.h"

#include <cstdio>
#include <string>
#include <vector>

#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::TestDb;

TEST(MetricsRegistryTest, CountersStartAtZeroAndAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("never.touched"), 0u);
  registry.IncrementCounter("ops");
  registry.IncrementCounter("ops", 41);
  EXPECT_EQ(registry.CounterValue("ops"), 42u);
}

TEST(MetricsRegistryTest, HistogramsRecordAndPersist) {
  MetricsRegistry registry;
  registry.RecordValue("lat.us", 10);
  registry.RecordValue("lat.us", 30);
  Histogram* histogram = registry.GetHistogram("lat.us");
  EXPECT_EQ(histogram->count(), 2u);
  EXPECT_EQ(histogram->sum(), 40u);
  // GetHistogram returns the same object every time.
  EXPECT_EQ(registry.GetHistogram("lat.us"), histogram);
}

TEST(MetricsRegistryTest, ScopedTimerRecordsOneSample) {
  MetricsRegistry registry;
  { ScopedTimer timer(&registry, "timed.us"); }
  EXPECT_EQ(registry.GetHistogram("timed.us")->count(), 1u);
  // A null registry is a no-op (must not crash).
  { ScopedTimer timer(nullptr, "ignored.us"); }
}

TEST(MetricsRegistryTest, PhaseIoTablesAccumulate) {
  MetricsRegistry registry;
  PhaseIoTable table{};
  table[static_cast<size_t>(IoPhase::kSearch)] = IoStats{3, 1};
  registry.MergePhaseIo("wbox", table);
  registry.MergePhaseIo("wbox", table);
  const PhaseIoTable merged = registry.PhaseIoFor("wbox");
  EXPECT_EQ(merged[static_cast<size_t>(IoPhase::kSearch)].reads, 6u);
  EXPECT_EQ(merged[static_cast<size_t>(IoPhase::kSearch)].writes, 2u);
  EXPECT_EQ(merged[static_cast<size_t>(IoPhase::kRelabel)].reads, 0u);
}

TEST(MetricsRegistryTest, ToJsonEmitsAllSectionsAndEveryPhaseKey) {
  MetricsRegistry registry;
  registry.IncrementCounter("n\"quoted\"", 7);
  registry.RecordValue("h.us", 5);
  PhaseIoTable table{};
  table[static_cast<size_t>(IoPhase::kLidfDeref)] = IoStats{9, 2};
  registry.MergePhaseIo("scheme", table);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"n\\\"quoted\\\"\": 7"), std::string::npos);
  // Every phase key appears even when zero, so consumers can rely on the
  // schema.
  for (const char* phase :
       {"other", "search", "relabel", "rebalance", "lidf_deref",
        "log_replay", "bulk_load"}) {
    EXPECT_NE(json.find(std::string("\"") + phase + "\""),
              std::string::npos)
        << phase;
  }
  EXPECT_NE(json.find("\"reads\": 9"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteJsonFileRoundTrips) {
  MetricsRegistry registry;
  registry.IncrementCounter("x", 1);
  const std::string path = ::testing::TempDir() + "/boxes_metrics_test.json";
  ASSERT_OK(registry.WriteJsonFile(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(contents, registry.ToJson() + "\n");
}

TEST(MetricsRegistryTest, ClearResetsEverything) {
  MetricsRegistry registry;
  registry.IncrementCounter("c");
  registry.RecordValue("h", 1);
  PhaseIoTable table{};
  table[0] = IoStats{1, 1};
  registry.MergePhaseIo("s", table);
  registry.Clear();
  EXPECT_EQ(registry.CounterValue("c"), 0u);
  EXPECT_EQ(registry.GetHistogram("h")->count(), 0u);
  EXPECT_EQ(registry.PhaseIoFor("s")[0].reads, 0u);
}

TEST(IoPhaseTest, NamesAreStable) {
  EXPECT_STREQ(IoPhaseName(IoPhase::kOther), "other");
  EXPECT_STREQ(IoPhaseName(IoPhase::kSearch), "search");
  EXPECT_STREQ(IoPhaseName(IoPhase::kRelabel), "relabel");
  EXPECT_STREQ(IoPhaseName(IoPhase::kRebalance), "rebalance");
  EXPECT_STREQ(IoPhaseName(IoPhase::kLidfDeref), "lidf_deref");
  EXPECT_STREQ(IoPhaseName(IoPhase::kLogReplay), "log_replay");
  EXPECT_STREQ(IoPhaseName(IoPhase::kBulkLoad), "bulk_load");
}

// The tentpole acceptance test: one W-BOX insert's I/O is attributed to
// more than one phase (search traffic to find the spot, LIDF dereferences,
// and relabel/rebalance writes), and the per-phase counters partition the
// cache's totals exactly.
TEST(PhaseAttributionTest, WBoxInsertSpansMultiplePhases) {
  TestDb db;
  WBox wbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(5000);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();

  // Bracketed ops force real page traffic (the working set drops between
  // operations).
  for (int i = 0; i < 64; ++i) {
    db.cache.BeginOp();
    ASSERT_OK(wbox.InsertElementBefore(lids[2500].start).status());
    ASSERT_OK(db.cache.EndOp());
  }

  const PhaseIoTable& phases = db.cache.phase_stats();
  int phases_with_io = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  for (size_t i = 0; i < kNumIoPhases; ++i) {
    if (phases[i].total() > 0) {
      ++phases_with_io;
    }
    reads += phases[i].reads;
    writes += phases[i].writes;
  }
  EXPECT_GT(phases_with_io, 1);
  EXPECT_GT(db.cache.stats().reads, 0u);
  EXPECT_GT(db.cache.stats().writes, 0u);
  // Attribution is complete: no I/O escapes the phase tables.
  EXPECT_EQ(reads, db.cache.stats().reads);
  EXPECT_EQ(writes, db.cache.stats().writes);
  // The insert path must at least search and dereference the LIDF.
  EXPECT_GT(db.cache.phase_stats(IoPhase::kSearch).reads, 0u);
  EXPECT_GT(db.cache.phase_stats(IoPhase::kLidfDeref).total(), 0u);
}

TEST(PhaseAttributionTest, SchemeLatencyHistogramsRecordWhenAttached) {
  TestDb db;
  WBox wbox(&db.cache);
  MetricsRegistry registry;
  wbox.SetMetrics(&registry);
  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK(wbox.InsertElementBefore(lids[250].start).status());
  ASSERT_OK(wbox.Lookup(lids[100].start).status());
  EXPECT_EQ(registry.GetHistogram(wbox.name() + ".insert.us")->count(), 1u);
  EXPECT_GE(registry.GetHistogram(wbox.name() + ".lookup.us")->count(), 1u);
}

}  // namespace
}  // namespace boxes
