
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bbox/bbox.cc" "src/CMakeFiles/boxes.dir/core/bbox/bbox.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/bbox/bbox.cc.o.d"
  "/root/repo/src/core/bbox/bbox_bulk.cc" "src/CMakeFiles/boxes.dir/core/bbox/bbox_bulk.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/bbox/bbox_bulk.cc.o.d"
  "/root/repo/src/core/bbox/bbox_check.cc" "src/CMakeFiles/boxes.dir/core/bbox/bbox_check.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/bbox/bbox_check.cc.o.d"
  "/root/repo/src/core/bbox/bbox_node.cc" "src/CMakeFiles/boxes.dir/core/bbox/bbox_node.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/bbox/bbox_node.cc.o.d"
  "/root/repo/src/core/bbox/bbox_subtree.cc" "src/CMakeFiles/boxes.dir/core/bbox/bbox_subtree.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/bbox/bbox_subtree.cc.o.d"
  "/root/repo/src/core/cachelog/caching_store.cc" "src/CMakeFiles/boxes.dir/core/cachelog/caching_store.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/cachelog/caching_store.cc.o.d"
  "/root/repo/src/core/cachelog/indexed_log.cc" "src/CMakeFiles/boxes.dir/core/cachelog/indexed_log.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/cachelog/indexed_log.cc.o.d"
  "/root/repo/src/core/cachelog/mod_log.cc" "src/CMakeFiles/boxes.dir/core/cachelog/mod_log.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/cachelog/mod_log.cc.o.d"
  "/root/repo/src/core/common/label.cc" "src/CMakeFiles/boxes.dir/core/common/label.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/common/label.cc.o.d"
  "/root/repo/src/core/common/labeling_scheme.cc" "src/CMakeFiles/boxes.dir/core/common/labeling_scheme.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/common/labeling_scheme.cc.o.d"
  "/root/repo/src/core/naive/naive.cc" "src/CMakeFiles/boxes.dir/core/naive/naive.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/naive/naive.cc.o.d"
  "/root/repo/src/core/ordpath/ordpath.cc" "src/CMakeFiles/boxes.dir/core/ordpath/ordpath.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/ordpath/ordpath.cc.o.d"
  "/root/repo/src/core/wbox/wbox.cc" "src/CMakeFiles/boxes.dir/core/wbox/wbox.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/wbox/wbox.cc.o.d"
  "/root/repo/src/core/wbox/wbox_bulk.cc" "src/CMakeFiles/boxes.dir/core/wbox/wbox_bulk.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/wbox/wbox_bulk.cc.o.d"
  "/root/repo/src/core/wbox/wbox_check.cc" "src/CMakeFiles/boxes.dir/core/wbox/wbox_check.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/wbox/wbox_check.cc.o.d"
  "/root/repo/src/core/wbox/wbox_node.cc" "src/CMakeFiles/boxes.dir/core/wbox/wbox_node.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/wbox/wbox_node.cc.o.d"
  "/root/repo/src/core/wbox/wbox_subtree.cc" "src/CMakeFiles/boxes.dir/core/wbox/wbox_subtree.cc.o" "gcc" "src/CMakeFiles/boxes.dir/core/wbox/wbox_subtree.cc.o.d"
  "/root/repo/src/doc/labeled_document.cc" "src/CMakeFiles/boxes.dir/doc/labeled_document.cc.o" "gcc" "src/CMakeFiles/boxes.dir/doc/labeled_document.cc.o.d"
  "/root/repo/src/lidf/lidf.cc" "src/CMakeFiles/boxes.dir/lidf/lidf.cc.o" "gcc" "src/CMakeFiles/boxes.dir/lidf/lidf.cc.o.d"
  "/root/repo/src/query/structural_join.cc" "src/CMakeFiles/boxes.dir/query/structural_join.cc.o" "gcc" "src/CMakeFiles/boxes.dir/query/structural_join.cc.o.d"
  "/root/repo/src/query/twig.cc" "src/CMakeFiles/boxes.dir/query/twig.cc.o" "gcc" "src/CMakeFiles/boxes.dir/query/twig.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/boxes.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/boxes.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/metadata_io.cc" "src/CMakeFiles/boxes.dir/storage/metadata_io.cc.o" "gcc" "src/CMakeFiles/boxes.dir/storage/metadata_io.cc.o.d"
  "/root/repo/src/storage/page_cache.cc" "src/CMakeFiles/boxes.dir/storage/page_cache.cc.o" "gcc" "src/CMakeFiles/boxes.dir/storage/page_cache.cc.o.d"
  "/root/repo/src/storage/page_store.cc" "src/CMakeFiles/boxes.dir/storage/page_store.cc.o" "gcc" "src/CMakeFiles/boxes.dir/storage/page_store.cc.o.d"
  "/root/repo/src/util/biguint.cc" "src/CMakeFiles/boxes.dir/util/biguint.cc.o" "gcc" "src/CMakeFiles/boxes.dir/util/biguint.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/boxes.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/boxes.dir/util/flags.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/boxes.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/boxes.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/boxes.dir/util/random.cc.o" "gcc" "src/CMakeFiles/boxes.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/boxes.dir/util/status.cc.o" "gcc" "src/CMakeFiles/boxes.dir/util/status.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/CMakeFiles/boxes.dir/workload/runner.cc.o" "gcc" "src/CMakeFiles/boxes.dir/workload/runner.cc.o.d"
  "/root/repo/src/workload/sequences.cc" "src/CMakeFiles/boxes.dir/workload/sequences.cc.o" "gcc" "src/CMakeFiles/boxes.dir/workload/sequences.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/boxes.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/boxes.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/generators.cc" "src/CMakeFiles/boxes.dir/xml/generators.cc.o" "gcc" "src/CMakeFiles/boxes.dir/xml/generators.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/boxes.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/boxes.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/writer.cc" "src/CMakeFiles/boxes.dir/xml/writer.cc.o" "gcc" "src/CMakeFiles/boxes.dir/xml/writer.cc.o.d"
  "/root/repo/src/xml/xmark.cc" "src/CMakeFiles/boxes.dir/xml/xmark.cc.o" "gcc" "src/CMakeFiles/boxes.dir/xml/xmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
