file(REMOVE_RECURSE
  "CMakeFiles/lidf_test.dir/lidf_test.cc.o"
  "CMakeFiles/lidf_test.dir/lidf_test.cc.o.d"
  "lidf_test"
  "lidf_test.pdb"
  "lidf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
