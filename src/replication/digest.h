#ifndef BOXES_REPLICATION_DIGEST_H_
#define BOXES_REPLICATION_DIGEST_H_

#include <cstdint>
#include <string>

#include "core/common/labeling_scheme.h"
#include "util/status.h"

namespace boxes::replication {

/// A cheap structure digest for divergence detection: the scheme's
/// counted shape (live labels, pages, height) plus a CRC32C folded over
/// every live (LID, label) pair in LID order. Replication replays the
/// primary's exact batch stream, so a healthy standby's digest is
/// bit-identical to the primary's at the same batch horizon; any
/// mismatch means the pair silently diverged (lost ship the gap check
/// missed, nondeterministic replay, local corruption) and must hard-fail
/// rather than keep serving wrong order relations.
///
/// The digest is LOGICAL on purpose: it hashes LIDs and label values,
/// never page ids or physical placement — a standby bootstrapped from a
/// byte copy and one that replayed from empty allocate different pages
/// but must agree on every label.
struct ReplicationDigest {
  uint64_t live_labels = 0;
  uint64_t height = 0;
  uint64_t lidf_pages = 0;
  uint32_t label_crc = 0;

  friend bool operator==(const ReplicationDigest& a,
                         const ReplicationDigest& b) {
    return a.live_labels == b.live_labels && a.height == b.height &&
           a.lidf_pages == b.lidf_pages && a.label_crc == b.label_crc;
  }
  friend bool operator!=(const ReplicationDigest& a,
                         const ReplicationDigest& b) {
    return !(a == b);
  }

  std::string ToString() const;
};

/// Computes the digest by walking the scheme's LIDF (every scheme in the
/// panel maintains one) and looking up each live label. O(live labels)
/// lookups — cheap enough for periodic exchange, not for per-batch use.
/// Caller must hold whatever exclusion a live writer requires (the
/// harnesses run it at quiesced sync points).
StatusOr<ReplicationDigest> ComputeReplicationDigest(LabelingScheme* scheme);

/// Digest equality check with a hard-fail contract: Corruption (naming
/// both digests) on mismatch. `what` names the pair for the message.
Status CheckDigestsMatch(const ReplicationDigest& primary,
                         const ReplicationDigest& standby,
                         const std::string& what);

}  // namespace boxes::replication

#endif  // BOXES_REPLICATION_DIGEST_H_
