#include "util/random.h"

#include <cmath>

#include "util/status.h"

namespace boxes {

namespace {

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  BOXES_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  BOXES_CHECK(lo <= hi);
  if (lo == 0 && hi == UINT64_MAX) {
    return Next();
  }
  return lo + Uniform(hi - lo + 1);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

double Random::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Random::Skewed(uint64_t n, double theta) {
  BOXES_CHECK(n > 0);
  BOXES_CHECK(theta > 0.0 && theta < 1.0);
  // Inverse-CDF sampling of a power-law-ish distribution; adequate for
  // generating skewed fan-outs in synthetic documents.
  const double u = NextDouble();
  const double x = std::pow(u, 1.0 / (1.0 - theta));
  uint64_t v = static_cast<uint64_t>(x * static_cast<double>(n));
  return v >= n ? n - 1 : v;
}

}  // namespace boxes
