#include "storage/circuit_breaker_store.h"

#include <algorithm>

#include "util/request_context.h"

namespace boxes {

CircuitBreakerPageStore::CircuitBreakerPageStore(PageStore* base,
                                                 CircuitBreakerOptions options)
    : base_(base), options_(options) {
  BOXES_CHECK(options_.window_ops >= 1);
  BOXES_CHECK(options_.min_ops >= 1);
  BOXES_CHECK(options_.failure_threshold > 0.0);
  BOXES_CHECK(options_.half_open_probes >= 1);
  window_.assign(options_.window_ops, 0);
}

void CircuitBreakerPageStore::SetMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    handles_ = MetricHandles{};
    return;
  }
  handles_.ops = metrics->GetCounter("breaker.ops");
  handles_.failures = metrics->GetCounter("breaker.failures");
  handles_.fast_fails = metrics->GetCounter("breaker.fast_fails");
  handles_.opened = metrics->GetCounter("breaker.opened");
  handles_.closed = metrics->GetCounter("breaker.closed");
}

uint64_t CircuitBreakerPageStore::NowUs() const {
  return options_.now_fn ? options_.now_fn() : SteadyNowMicros();
}

CircuitBreakerPageStore::State CircuitBreakerPageStore::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void CircuitBreakerPageStore::Count(std::atomic<uint64_t> Counters::*field,
                                    MetricsRegistry::Counter* handle) {
  (counters_.*field).fetch_add(1, std::memory_order_relaxed);
  if (handle != nullptr) {
    handle->fetch_add(1, std::memory_order_relaxed);
  }
}

void CircuitBreakerPageStore::OpenLocked(uint64_t now) {
  state_ = State::kOpen;
  open_until_us_ = now + options_.open_cooldown_us;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  Count(&Counters::opened, handles_.opened);
}

Status CircuitBreakerPageStore::Admit(bool* probe) {
  *probe = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen) {
    if (NowUs() < open_until_us_) {
      Count(&Counters::fast_fails, handles_.fast_fails);
      return Status::ResourceExhausted(
          "circuit breaker open: device failing, fast-failing without I/O");
    }
    // Cooldown elapsed: this operation becomes the first half-open probe.
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  if (state_ == State::kHalfOpen) {
    if (probes_in_flight_ >= options_.half_open_probes) {
      Count(&Counters::fast_fails, handles_.fast_fails);
      return Status::ResourceExhausted(
          "circuit breaker half-open: probe quota in flight, fast-failing");
    }
    ++probes_in_flight_;
    *probe = true;
  }
  return Status::OK();
}

void CircuitBreakerPageStore::RecordOutcome(bool failure, bool probe) {
  std::lock_guard<std::mutex> lock(mu_);
  if (probe) {
    if (probes_in_flight_ > 0) {
      --probes_in_flight_;
    }
    if (state_ != State::kHalfOpen) {
      // The breaker reopened (a sibling probe failed) or closed while this
      // probe ran; its outcome no longer drives the state machine.
      return;
    }
    if (failure) {
      OpenLocked(NowUs());
      return;
    }
    if (++probe_successes_ >= options_.half_open_probes) {
      // Recovered: close with a clean slate so the pre-outage failure
      // window cannot immediately re-trip.
      state_ = State::kClosed;
      std::fill(window_.begin(), window_.end(), 0);
      window_next_ = 0;
      window_count_ = 0;
      window_failures_ = 0;
      Count(&Counters::closed, handles_.closed);
    }
    return;
  }
  if (state_ != State::kClosed) {
    return;  // a pre-transition straggler; the window was reset
  }
  window_failures_ -= window_[window_next_];
  window_[window_next_] = failure ? 1 : 0;
  window_failures_ += window_[window_next_];
  window_next_ = (window_next_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());
  if (window_count_ >= options_.min_ops &&
      static_cast<double>(window_failures_) >=
          options_.failure_threshold * static_cast<double>(window_count_)) {
    OpenLocked(NowUs());
  }
}

Status CircuitBreakerPageStore::RunGated(const std::function<Status()>& op) {
  bool probe = false;
  BOXES_RETURN_IF_ERROR(Admit(&probe));
  Count(&Counters::ops, handles_.ops);
  const Status status = op();
  // Only device-health errors count against the breaker: a caller that ran
  // out of its own deadline/budget (kDeadlineExceeded) tells us nothing
  // about the store underneath.
  const bool failure = !status.ok() &&
                       IsDataUnavailableCode(status.code()) &&
                       status.code() != StatusCode::kDeadlineExceeded;
  if (failure) {
    Count(&Counters::failures, handles_.failures);
  }
  RecordOutcome(failure, probe);
  return status;
}

StatusOr<PageId> CircuitBreakerPageStore::Allocate() {
  PageId id = kInvalidPageId;
  BOXES_RETURN_IF_ERROR(RunGated([&]() -> Status {
    BOXES_ASSIGN_OR_RETURN(id, base_->Allocate());
    return Status::OK();
  }));
  return id;
}

Status CircuitBreakerPageStore::Free(PageId id) {
  return RunGated([&] { return base_->Free(id); });
}

Status CircuitBreakerPageStore::Read(PageId id, uint8_t* buf) {
  return RunGated([&] { return base_->Read(id, buf); });
}

Status CircuitBreakerPageStore::Write(PageId id, const uint8_t* buf) {
  return RunGated([&] { return base_->Write(id, buf); });
}

Status CircuitBreakerPageStore::WriteUnjournaled(PageId id,
                                                 const uint8_t* buf) {
  return RunGated([&] { return base_->WriteUnjournaled(id, buf); });
}

Status CircuitBreakerPageStore::WriteTorn(PageId id, const uint8_t* buf,
                                          size_t prefix) {
  return base_->WriteTorn(id, buf, prefix);
}

Status CircuitBreakerPageStore::Sync() {
  return RunGated([&] { return base_->Sync(); });
}

Status CircuitBreakerPageStore::CommitEpoch(uint64_t epoch) {
  return RunGated([&] { return base_->CommitEpoch(epoch); });
}

}  // namespace boxes
