#ifndef BOXES_UTIL_STATUS_H_
#define BOXES_UTIL_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>

namespace boxes {

/// Error categories used throughout the library. The library does not use
/// C++ exceptions; fallible operations return Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kIoError,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// The request's own lifetime budget (deadline or I/O allowance, see
  /// util/request_context.h) ran out before the operation completed. Says
  /// nothing about the health of the data or the device.
  kDeadlineExceeded,
  /// The serving replica cannot answer right now — a standby that has not
  /// caught up to the primary's acknowledged history, or a node fenced off
  /// by a newer primary's promotion (replication/). Distinct from
  /// kResourceExhausted (a shed under overload): the node is healthy but
  /// its *data* is behind or its authority revoked. The same request
  /// against a caught-up replica (or after catch-up) succeeds.
  kUnavailable,
};

/// Returns a human-readable name for a status code ("OK", "IoError", ...).
const char* StatusCodeToString(StatusCode code);

/// Fault taxonomy (DESIGN.md §4f). A *retryable* error is one where the
/// identical operation may legitimately succeed if simply reissued: a
/// transient I/O fault (kIoError), momentary exhaustion
/// (kResourceExhausted), or a replica that is behind but catching up
/// (kUnavailable — replication lag closes, fenced requests re-route).
/// Permanent classes — kCorruption (the bytes are durably wrong;
/// rereading yields the same bytes), argument/precondition errors,
/// kNotFound — must not be retried. kDeadlineExceeded is also final: the
/// request's allowance is spent, and reissuing only spends somebody
/// else's.
bool IsRetryableCode(StatusCode code);

/// True when the error means the authoritative on-disk value is currently
/// unobtainable (retry budget exhausted, device dead, page corrupt, or the
/// request ran out of time/budget to reach it) but the caller may still
/// hold a usable cached copy. This is the class the degraded-read path
/// falls back on; logical errors (kNotFound, kInvalidArgument, ...) are
/// excluded because a cached value would be just as wrong.
bool IsDataUnavailableCode(StatusCode code);

/// A lightweight success-or-error value. OK status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Holds either a value of type T or an error Status. Mirrors
/// absl::StatusOr in spirit; accessing the value of an error result aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)), value_() {}
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const {
    if (!status_.ok()) {
      internal_status::DieOnBadAccess(status_);
    }
  }

  struct internal_status {
    [[noreturn]] static void DieOnBadAccess(const Status& s);
  };

  Status status_;
  T value_;
};

namespace internal_status {
[[noreturn]] void DieOnBadStatusAccess(const Status& s);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::internal_status::DieOnBadAccess(const Status& s) {
  boxes::internal_status::DieOnBadStatusAccess(s);
}

}  // namespace boxes

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define BOXES_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::boxes::Status boxes_status_tmp_ = (expr);     \
    if (!boxes_status_tmp_.ok()) {                  \
      return boxes_status_tmp_;                     \
    }                                               \
  } while (0)

/// Evaluates `expr` (a StatusOr<T> expression); on error returns the status
/// from the enclosing function, otherwise assigns the value to `lhs`.
/// `lhs` may be a new declaration: BOXES_ASSIGN_OR_RETURN(auto x, F());
#define BOXES_ASSIGN_OR_RETURN(lhs, expr) \
  BOXES_ASSIGN_OR_RETURN_IMPL_(           \
      BOXES_STATUS_CONCAT_(boxes_statusor_, __LINE__), lhs, expr)

#define BOXES_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define BOXES_STATUS_CONCAT_(a, b) BOXES_STATUS_CONCAT_IMPL_(a, b)
#define BOXES_STATUS_CONCAT_IMPL_(a, b) a##b

/// Aborts the process with a message if `cond` is false. Used for internal
/// invariants that indicate programmer error rather than runtime failure.
#define BOXES_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::boxes::internal_status::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                                     \
  } while (0)

#define BOXES_CHECK_OK(expr)                                               \
  do {                                                                     \
    ::boxes::Status boxes_check_status_tmp_ = (expr);                      \
    if (!boxes_check_status_tmp_.ok()) {                                   \
      ::boxes::internal_status::CheckFailed(                               \
          __FILE__, __LINE__, boxes_check_status_tmp_.ToString().c_str()); \
    }                                                                      \
  } while (0)

namespace boxes::internal_status {
[[noreturn]] void CheckFailed(const char* file, int line, const char* what);
}  // namespace boxes::internal_status

#endif  // BOXES_UTIL_STATUS_H_
