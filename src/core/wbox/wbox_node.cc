#include "core/wbox/wbox_node.h"

#include <cstring>

#include "util/coding.h"

namespace boxes {

WBoxParams WBoxParams::Derive(size_t page_size, bool pair_mode) {
  WBoxParams p;
  p.page_size = page_size;
  p.pair_mode = pair_mode;
  p.leaf_record_size = pair_mode ? 25 : 9;
  uint64_t capacity =
      (page_size - WBoxLeafView::kHeaderSize) / p.leaf_record_size;
  if (capacity % 2 == 0) {
    --capacity;  // leaf capacity is 2k - 1, which must be odd
  }
  p.leaf_capacity = capacity;
  p.k = (capacity + 1) / 2;
  p.b = (page_size - WBoxInternalView::kHeaderSize) /
        WBoxInternalView::kEntrySize;
  BOXES_CHECK(p.b >= 24);  // ensures a >= 10, required by Lemma 4.1
  p.a = p.b / 2 - 2;
  return p;
}

uint64_t WBoxParams::MaxWeight(uint32_t level) const {
  uint64_t w = 2 * k;
  for (uint32_t i = 0; i < level; ++i) {
    BOXES_CHECK(w <= UINT64_MAX / a);
    w *= a;
  }
  return w;
}

uint64_t WBoxParams::MinWeightExclusive(uint32_t level) const {
  if (level == 0) {
    // Leaf bound: analogous a^0 k - 2 a^{-1} k = k - 2k/a.
    return k - (2 * k) / a;
  }
  // a^i k - 2 a^{i-1} k = a^{i-1} k (a - 2).
  uint64_t w = k * (a - 2);
  for (uint32_t i = 1; i < level; ++i) {
    BOXES_CHECK(w <= UINT64_MAX / a);
    w *= a;
  }
  return w;
}

uint64_t WBoxParams::RangeLength(uint32_t level) const {
  uint64_t len = leaf_capacity;
  for (uint32_t i = 0; i < level; ++i) {
    BOXES_CHECK(len <= UINT64_MAX / b);
    len *= b;
  }
  return len;
}

// ---------------------------------------------------------------------------
// WBoxLeafView

void WBoxLeafView::Init() {
  std::memset(data_, 0, kHeaderSize);
  data_[0] = kNodeType;
}

uint16_t WBoxLeafView::count() const { return DecodeFixed16(data_ + 2); }
void WBoxLeafView::set_count(uint16_t value) {
  EncodeFixed16(data_ + 2, value);
}
uint16_t WBoxLeafView::live_count() const { return DecodeFixed16(data_ + 4); }
void WBoxLeafView::set_live_count(uint16_t value) {
  EncodeFixed16(data_ + 4, value);
}
uint64_t WBoxLeafView::range_lo() const { return DecodeFixed64(data_ + 8); }
void WBoxLeafView::set_range_lo(uint64_t lo) { EncodeFixed64(data_ + 8, lo); }

uint8_t* WBoxLeafView::record_ptr(uint16_t index) {
  return data_ + kHeaderSize + index * params_->leaf_record_size;
}
const uint8_t* WBoxLeafView::record_ptr(uint16_t index) const {
  return data_ + kHeaderSize + index * params_->leaf_record_size;
}

Lid WBoxLeafView::lid(uint16_t index) const {
  return DecodeFixed64(record_ptr(index));
}
uint8_t WBoxLeafView::flags(uint16_t index) const {
  return record_ptr(index)[8];
}
PageId WBoxLeafView::partner_block(uint16_t index) const {
  BOXES_CHECK(params_->pair_mode);
  return DecodeFixed64(record_ptr(index) + 9);
}
uint64_t WBoxLeafView::cached_end(uint16_t index) const {
  BOXES_CHECK(params_->pair_mode);
  return DecodeFixed64(record_ptr(index) + 17);
}
void WBoxLeafView::set_partner_block(uint16_t index, PageId block) {
  BOXES_CHECK(params_->pair_mode);
  EncodeFixed64(record_ptr(index) + 9, block);
}
void WBoxLeafView::set_cached_end(uint16_t index, uint64_t value) {
  BOXES_CHECK(params_->pair_mode);
  EncodeFixed64(record_ptr(index) + 17, value);
}

int WBoxLeafView::FindLive(Lid lid_value) const {
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; ++i) {
    if (!is_tombstone(i) && lid(i) == lid_value) {
      return i;
    }
  }
  return -1;
}

int WBoxLeafView::FindTombstone() const {
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; ++i) {
    if (is_tombstone(i)) {
      return i;
    }
  }
  return -1;
}

void WBoxLeafView::InsertRecordAt(uint16_t index, Lid lid_value,
                                  uint8_t flag_bits) {
  const uint16_t n = count();
  BOXES_CHECK(n < params_->leaf_capacity);
  BOXES_CHECK(index <= n);
  const size_t rs = params_->leaf_record_size;
  std::memmove(record_ptr(index) + rs, record_ptr(index), (n - index) * rs);
  std::memset(record_ptr(index), 0, rs);
  EncodeFixed64(record_ptr(index), lid_value);
  record_ptr(index)[8] = flag_bits;
  set_count(n + 1);
  if ((flag_bits & kFlagTombstone) == 0) {
    set_live_count(live_count() + 1);
  }
}

void WBoxLeafView::RemoveRecordAt(uint16_t index) {
  RemoveRecordRange(index, index);
}

void WBoxLeafView::RemoveRecordRange(uint16_t first, uint16_t last) {
  const uint16_t n = count();
  BOXES_CHECK(first <= last && last < n);
  uint16_t removed_live = 0;
  for (uint16_t i = first; i <= last; ++i) {
    if (!is_tombstone(i)) {
      ++removed_live;
    }
  }
  const size_t rs = params_->leaf_record_size;
  std::memmove(record_ptr(first), record_ptr(last + 1),
               (n - last - 1) * rs);
  set_count(n - (last - first + 1));
  set_live_count(live_count() - removed_live);
}

void WBoxLeafView::SetTombstone(uint16_t index, bool tombstone) {
  uint8_t f = flags(index);
  const bool was = (f & kFlagTombstone) != 0;
  if (was == tombstone) {
    return;
  }
  if (tombstone) {
    f |= kFlagTombstone;
    set_live_count(live_count() - 1);
  } else {
    f &= static_cast<uint8_t>(~kFlagTombstone);
    set_live_count(live_count() + 1);
  }
  record_ptr(index)[8] = f;
}

void WBoxLeafView::MoveSuffixTo(uint16_t from, WBoxLeafView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(from <= n);
  const uint16_t moving = n - from;
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + moving <= params_->leaf_capacity);
  const size_t rs = params_->leaf_record_size;
  std::memcpy(dst->record_ptr(dst_n), record_ptr(from), moving * rs);
  uint16_t moved_live = 0;
  for (uint16_t i = from; i < n; ++i) {
    if (!is_tombstone(i)) {
      ++moved_live;
    }
  }
  dst->set_count(dst_n + moving);
  dst->set_live_count(dst->live_count() + moved_live);
  set_count(from);
  set_live_count(live_count() - moved_live);
}

void WBoxLeafView::MoveSuffixToFront(uint16_t from, WBoxLeafView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(from <= n);
  const uint16_t moving = n - from;
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + moving <= params_->leaf_capacity);
  const size_t rs = params_->leaf_record_size;
  std::memmove(dst->record_ptr(moving), dst->record_ptr(0), dst_n * rs);
  std::memcpy(dst->record_ptr(0), record_ptr(from), moving * rs);
  uint16_t moved_live = 0;
  for (uint16_t i = from; i < n; ++i) {
    if (!is_tombstone(i)) {
      ++moved_live;
    }
  }
  dst->set_count(dst_n + moving);
  dst->set_live_count(dst->live_count() + moved_live);
  set_count(from);
  set_live_count(live_count() - moved_live);
}

void WBoxLeafView::MovePrefixTo(uint16_t n_moving, WBoxLeafView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(n_moving <= n);
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + n_moving <= params_->leaf_capacity);
  const size_t rs = params_->leaf_record_size;
  std::memcpy(dst->record_ptr(dst_n), record_ptr(0), n_moving * rs);
  uint16_t moved_live = 0;
  for (uint16_t i = 0; i < n_moving; ++i) {
    if (!is_tombstone(i)) {
      ++moved_live;
    }
  }
  std::memmove(record_ptr(0), record_ptr(n_moving), (n - n_moving) * rs);
  dst->set_count(dst_n + n_moving);
  dst->set_live_count(dst->live_count() + moved_live);
  set_count(n - n_moving);
  set_live_count(live_count() - moved_live);
}

// ---------------------------------------------------------------------------
// WBoxInternalView

void WBoxInternalView::Init(uint8_t level) {
  std::memset(data_, 0, kHeaderSize);
  data_[0] = kNodeType;
  data_[1] = level;
}

uint16_t WBoxInternalView::count() const { return DecodeFixed16(data_ + 2); }
void WBoxInternalView::set_count(uint16_t value) {
  EncodeFixed16(data_ + 2, value);
}
uint64_t WBoxInternalView::range_lo() const {
  return DecodeFixed64(data_ + 8);
}
void WBoxInternalView::set_range_lo(uint64_t lo) {
  EncodeFixed64(data_ + 8, lo);
}
uint64_t WBoxInternalView::self_weight() const {
  return DecodeFixed64(data_ + 16);
}
void WBoxInternalView::set_self_weight(uint64_t w) {
  EncodeFixed64(data_ + 16, w);
}

uint8_t* WBoxInternalView::entry_ptr(uint16_t index) {
  return data_ + kHeaderSize + index * kEntrySize;
}
const uint8_t* WBoxInternalView::entry_ptr(uint16_t index) const {
  return data_ + kHeaderSize + index * kEntrySize;
}

PageId WBoxInternalView::child(uint16_t index) const {
  return DecodeFixed64(entry_ptr(index));
}
uint64_t WBoxInternalView::weight(uint16_t index) const {
  return DecodeFixed64(entry_ptr(index) + 8);
}
uint64_t WBoxInternalView::size(uint16_t index) const {
  return DecodeFixed64(entry_ptr(index) + 16);
}
uint16_t WBoxInternalView::subrange(uint16_t index) const {
  return DecodeFixed16(entry_ptr(index) + 24);
}
void WBoxInternalView::set_child(uint16_t index, PageId page) {
  EncodeFixed64(entry_ptr(index), page);
}
void WBoxInternalView::set_weight(uint16_t index, uint64_t w) {
  EncodeFixed64(entry_ptr(index) + 8, w);
}
void WBoxInternalView::set_size(uint16_t index, uint64_t s) {
  EncodeFixed64(entry_ptr(index) + 16, s);
}
void WBoxInternalView::set_subrange(uint16_t index, uint16_t s) {
  EncodeFixed16(entry_ptr(index) + 24, s);
}

uint64_t WBoxInternalView::ChildRangeLo(uint16_t index) const {
  return range_lo() + subrange(index) * params_->RangeLength(level() - 1);
}

int WBoxInternalView::FindChildByLabel(uint64_t label) const {
  const uint64_t child_len = params_->RangeLength(level() - 1);
  BOXES_CHECK(label >= range_lo());
  const uint64_t target = (label - range_lo()) / child_len;
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; ++i) {
    if (subrange(i) == target) {
      return i;
    }
    if (subrange(i) > target) {
      break;
    }
  }
  return -1;
}

int WBoxInternalView::FindChildByPage(PageId page) const {
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; ++i) {
    if (child(i) == page) {
      return i;
    }
  }
  return -1;
}

bool WBoxInternalView::SubrangeFree(uint16_t s) const {
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; ++i) {
    if (subrange(i) == s) {
      return false;
    }
  }
  return true;
}

void WBoxInternalView::InsertEntryAt(uint16_t index, PageId child_page,
                                     uint64_t w, uint64_t s,
                                     uint16_t subrange_index) {
  const uint16_t n = count();
  BOXES_CHECK(n < params_->b);
  BOXES_CHECK(index <= n);
  std::memmove(entry_ptr(index) + kEntrySize, entry_ptr(index),
               (n - index) * kEntrySize);
  set_count(n + 1);
  set_child(index, child_page);
  set_weight(index, w);
  set_size(index, s);
  set_subrange(index, subrange_index);
}

void WBoxInternalView::RemoveEntryAt(uint16_t index) {
  RemoveEntryRange(index, index);
}

void WBoxInternalView::RemoveEntryRange(uint16_t first, uint16_t last) {
  const uint16_t n = count();
  BOXES_CHECK(first <= last && last < n);
  std::memmove(entry_ptr(first), entry_ptr(last + 1),
               (n - last - 1) * kEntrySize);
  set_count(n - (last - first + 1));
}

void WBoxInternalView::MoveSuffixTo(uint16_t from, WBoxInternalView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(from <= n);
  const uint16_t moving = n - from;
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + moving <= params_->b);
  std::memcpy(dst->entry_ptr(dst_n), entry_ptr(from), moving * kEntrySize);
  dst->set_count(dst_n + moving);
  set_count(from);
}

}  // namespace boxes
