# Empty dependencies file for cached_queries.
# This may be replaced when dependencies are built.
