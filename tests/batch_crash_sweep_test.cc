// Crash sweep of the group-commit write pipeline: a batched workload
// (UpdateBuffer, one checkpoint commit per flush) runs against a
// fault-injected file store that crashes at every k-th page write, tearing
// the in-flight frame. Recovery must be all-or-nothing at BATCH
// granularity: every reopened image must restore exactly one
// flush-boundary snapshot — same label order, same live-label count —
// never a partially applied batch, and never lose a batch whose commit
// completed before the crash.

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/update_buffer.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "test_util.h"
#include "util/random.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;

constexpr size_t kPageSize = 1024;  // smallest size WBox's b >= 24 allows
// Group commit coalesces page writes (that is the point), so the op count
// must be generous for the sweep to see >= 150 distinct crash points.
constexpr int kOps = 640;
constexpr size_t kBatch = 16;
constexpr uint64_t kWorkloadSeed = 0x6c0bba7cu;

struct BatchSnapshot {
  uint64_t index = 0;          // flush number, 0-based
  uint64_t commit_writes = 0;  // wrapper writes when the commit completed
  std::vector<Lid> order;      // expected tag order at the boundary
};

struct WorkloadState {
  std::vector<Lid> order;                     // tag order, start/end lids
  std::vector<std::pair<Lid, Lid>> elements;  // live elements
};

struct PlannedOp {
  bool is_delete = false;
  UpdateBuffer::Ticket ticket = 0;   // insert: resolves to the new LIDs
  Lid anchor = kInvalidLid;          // insert: tag the new element precedes
  std::pair<Lid, Lid> victim;        // delete: the removed element
};

// Applies one flushed batch to the model state, in enqueue order. Anchors
// are distinct per batch, so sequential replay reproduces what the
// (possibly reordered) batch application produced.
Status ReplayBatch(const UpdateBuffer& buffer,
                   const std::vector<PlannedOp>& plan,
                   WorkloadState* state) {
  for (const PlannedOp& op : plan) {
    if (op.is_delete) {
      auto& order = state->order;
      order.erase(std::remove_if(order.begin(), order.end(),
                                 [&](Lid lid) {
                                   return lid == op.victim.first ||
                                          lid == op.victim.second;
                                 }),
                  order.end());
      auto& elements = state->elements;
      elements.erase(std::remove(elements.begin(), elements.end(),
                                 op.victim),
                     elements.end());
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(const NewElement fresh,
                           buffer.Result(op.ticket));
    if (op.anchor == kInvalidLid) {  // bootstrap
      state->order = {fresh.start, fresh.end};
      state->elements = {{fresh.start, fresh.end}};
      continue;
    }
    auto it = std::find(state->order.begin(), state->order.end(), op.anchor);
    if (it == state->order.end()) {
      return Status::Internal("anchor vanished from the model");
    }
    state->order.insert(it, {fresh.start, fresh.end});
    state->elements.push_back({fresh.start, fresh.end});
  }
  return Status::OK();
}

// Runs the batched workload: kOps planned ops in batches of kBatch, each
// flush group-committing one checkpoint whose chain carries
// [flush_index, scheme head]. Stops at the first error (the injected
// crash). On the fault-free run, `snapshots` receives one entry per flush.
template <typename Scheme>
Status RunBatchedWorkload(PageCache* cache, Scheme* scheme,
                          FaultInjectionPageStore* wrapper,
                          std::vector<BatchSnapshot>* snapshots) {
  BOXES_RETURN_IF_ERROR(InitializeSuperblock(cache));
  UpdateBuffer buffer(scheme,
                      {.flush_threshold = kBatch, .auto_flush = false});
  uint64_t flush_index = 0;
  uint64_t last_commit_writes = 0;
  PageId previous_chain = kInvalidPageId;
  buffer.SetCommitHook([&]() -> Status {
    BOXES_ASSIGN_OR_RETURN(const PageId scheme_head, scheme->Checkpoint());
    MetadataWriter writer;
    writer.PutU64(flush_index);
    writer.PutU64(scheme_head);
    BOXES_ASSIGN_OR_RETURN(const PageId head, writer.Finish(cache));
    BOXES_RETURN_IF_ERROR(CommitCheckpoint(cache, head));
    last_commit_writes = wrapper->writes_committed();
    // Reclaim the superseded chain only after the new commit is durable.
    if (previous_chain != kInvalidPageId) {
      BOXES_RETURN_IF_ERROR(FreeMetadataChain(cache, previous_chain));
      BOXES_RETURN_IF_ERROR(cache->FlushAll());
    }
    previous_chain = head;
    return Status::OK();
  });

  Random rng(kWorkloadSeed);
  WorkloadState state;
  std::vector<PlannedOp> plan;
  auto flush_batch = [&]() -> Status {
    BOXES_RETURN_IF_ERROR(buffer.Flush());
    BOXES_RETURN_IF_ERROR(ReplayBatch(buffer, plan, &state));
    if (snapshots != nullptr) {
      snapshots->push_back({flush_index, last_commit_writes, state.order});
    }
    ++flush_index;
    plan.clear();
    return Status::OK();
  };

  // Bootstrap batch: the first element, alone (nothing else can anchor on
  // it until it has flushed).
  {
    PlannedOp op;
    BOXES_ASSIGN_OR_RETURN(op.ticket, buffer.InsertFirstElement());
    plan.push_back(op);
    BOXES_RETURN_IF_ERROR(flush_batch());
  }

  int ops_done = 0;
  while (ops_done < kOps) {
    const size_t snapshot_size = state.elements.size();
    std::unordered_set<size_t> touched;
    const size_t batch =
        std::min<size_t>(kBatch, static_cast<size_t>(kOps - ops_done));
    for (size_t i = 0; i < batch; ++i, ++ops_done) {
      // Pick an element that existed at batch start and is untouched by
      // this batch, so every anchor honors the ApplyBatch contract.
      size_t target = snapshot_size;
      for (int tries = 0; tries < 50; ++tries) {
        const size_t candidate = rng.Uniform(snapshot_size);
        if (touched.count(candidate) == 0) {
          target = candidate;
          break;
        }
      }
      if (target == snapshot_size) {
        break;  // batch starved; flush what we have
      }
      touched.insert(target);
      PlannedOp op;
      if (snapshot_size > 6 && rng.Bernoulli(0.3)) {
        op.is_delete = true;
        op.victim = state.elements[target];
        BOXES_RETURN_IF_ERROR(
            buffer.Delete(op.victim.first).status());
        BOXES_RETURN_IF_ERROR(
            buffer.Delete(op.victim.second).status());
      } else {
        op.anchor = rng.Bernoulli(0.5) ? state.elements[target].first
                                       : state.elements[target].second;
        BOXES_ASSIGN_OR_RETURN(op.ticket,
                               buffer.InsertElementBefore(op.anchor));
      }
      plan.push_back(op);
    }
    BOXES_RETURN_IF_ERROR(flush_batch());
  }
  return Status::OK();
}

std::string SweepPath(const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "/boxes_batch_sweep_" + tag + ".db";
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  return path;
}

bool IsCleanErrorCode(StatusCode code) {
  return code == StatusCode::kCorruption || code == StatusCode::kIoError ||
         code == StatusCode::kNotFound ||
         code == StatusCode::kInvalidArgument;
}

// Reopens the crashed image. Returns the recovered flush index, or -1 for
// a clean pre-first-commit error. Any state that is not EXACTLY a flush
// boundary fails the test.
template <typename Scheme, typename Options>
int64_t VerifyCrashedImage(const std::string& path, const Options& options,
                           const std::vector<BatchSnapshot>& snapshots,
                           uint64_t crash_point) {
  FilePageStore store(path, kPageSize, FilePageStore::Mode::kOpen);
  if (!store.status().ok()) {
    EXPECT_TRUE(IsCleanErrorCode(store.status().code()))
        << "crash point " << crash_point
        << ": reopen failed uncleanly: " << store.status().ToString();
    return -1;
  }
  PageCache cache(&store);
  const StatusOr<PageId> head = LoadCheckpointHead(&cache);
  if (!head.ok()) {
    EXPECT_TRUE(IsCleanErrorCode(head.status().code()))
        << "crash point " << crash_point << ": "
        << head.status().ToString();
    return -1;
  }
  StatusOr<MetadataReader> reader = MetadataReader::Load(&cache, *head);
  if (!reader.ok()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": committed chain unreadable: "
                  << reader.status().ToString();
    return -1;
  }
  StatusOr<uint64_t> index = reader->GetU64();
  StatusOr<uint64_t> scheme_head =
      index.ok() ? reader->GetU64() : StatusOr<uint64_t>(index.status());
  if (!index.ok() || !scheme_head.ok()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": committed chain truncated";
    return -1;
  }
  if (*index >= snapshots.size()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": recovered unknown batch boundary " << *index;
    return -1;
  }
  Scheme scheme(&cache, options);
  const Status restored = scheme.Restore(*scheme_head);
  if (!restored.ok()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": Restore failed: " << restored.ToString();
    return -1;
  }
  const Status invariants = scheme.CheckInvariants();
  if (!invariants.ok()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": invariants violated: " << invariants.ToString();
    return -1;
  }
  // The all-or-nothing check: the recovered tree IS the boundary snapshot
  // — every expected label present and ordered, and not one label more.
  const BatchSnapshot& model = snapshots[*index];
  EXPECT_TRUE(LabelsStrictlyIncreasing(&scheme, model.order))
      << "crash point " << crash_point << ", batch boundary " << *index;
  StatusOr<SchemeStats> stats = scheme.GetStats();
  EXPECT_TRUE(stats.ok());
  if (stats.ok()) {
    EXPECT_EQ(stats->live_labels, model.order.size())
        << "crash point " << crash_point << ", batch boundary " << *index
        << ": recovered a partially applied batch";
  }
  return static_cast<int64_t>(*index);
}

template <typename Scheme, typename Options>
void RunBatchCrashSweep(const std::string& tag, const Options& options) {
  std::vector<BatchSnapshot> snapshots;
  uint64_t total_writes = 0;
  {
    const std::string path = SweepPath(tag + "_ref");
    FilePageStore base(path, kPageSize);
    ASSERT_OK(base.status());
    FaultInjectionPageStore wrapper(&base);
    PageCache cache(&wrapper);
    Scheme scheme(&cache, options);
    ASSERT_OK(RunBatchedWorkload(&cache, &scheme, &wrapper, &snapshots));
    total_writes = wrapper.writes_committed();
  }
  ASSERT_GE(snapshots.size(), 5u) << "workload must span several batches";
  ASSERT_GE(total_writes, 150u) << "workload too small for the sweep";

  const uint64_t stride = std::max<uint64_t>(1, total_writes / 130);
  uint64_t points = 0;
  uint64_t recovered = 0;
  const std::string path = SweepPath(tag);
  for (uint64_t crash = 0; crash < total_writes; crash += stride) {
    ++points;
    {
      FilePageStore base(path, kPageSize);
      ASSERT_OK(base.status());
      FaultInjectionPageStore wrapper(&base);
      wrapper.SetSeed(crash);
      wrapper.SetTornWrites(true);
      wrapper.CrashAfterWrites(crash);
      PageCache cache(&wrapper);
      Scheme scheme(&cache, options);
      const Status run =
          RunBatchedWorkload(&cache, &scheme, &wrapper, nullptr);
      ASSERT_FALSE(run.ok()) << "crash point " << crash << " never fired";
      ASSERT_EQ(run.code(), StatusCode::kIoError)
          << "crash point " << crash << ": " << run.ToString();
      ASSERT_TRUE(wrapper.crashed());
    }
    // Strict floor: a batch whose commit completed must never be lost.
    int64_t expected_min = -1;
    for (const BatchSnapshot& snapshot : snapshots) {
      if (snapshot.commit_writes <= crash) {
        expected_min = static_cast<int64_t>(snapshot.index);
      }
    }
    const int64_t got = VerifyCrashedImage<Scheme, Options>(
        path, options, snapshots, crash);
    if (got >= 0) {
      ++recovered;
    }
    EXPECT_GE(got, expected_min)
        << "crash point " << crash << " lost a committed batch";
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  ASSERT_GE(points, 100u);
  EXPECT_GT(recovered, points / 2);
  ::testing::Test::RecordProperty("crash_points", static_cast<int>(points));
  ::testing::Test::RecordProperty("recovered", static_cast<int>(recovered));
}

TEST(BatchCrashSweepTest, WBoxBatchesAreAllOrNothing) {
  RunBatchCrashSweep<WBox>("wbox", WBoxOptions{});
}

TEST(BatchCrashSweepTest, BBoxBatchesAreAllOrNothing) {
  RunBatchCrashSweep<BBox>("bbox", BBoxOptions{});
}

TEST(BatchCrashSweepTest, NaiveBatchesAreAllOrNothing) {
  RunBatchCrashSweep<NaiveScheme>(
      "naive", NaiveOptions{.gap_bits = 8, .count_bits = 30});
}

}  // namespace
}  // namespace boxes
