file(REMOVE_RECURSE
  "CMakeFiles/twig_query.dir/twig_query.cpp.o"
  "CMakeFiles/twig_query.dir/twig_query.cpp.o.d"
  "twig_query"
  "twig_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
