// Batched-vs-unbatched differential test (DESIGN.md §4h): one fixed
// update history — element inserts, element deletes, subtree grafts,
// subtree deletes — is applied to each scheme three ways: op-at-a-time
// through the plain virtuals, and through an UpdateBuffer flushed every 64
// and every 4096 planned ops. All three runs must converge to the same
// tree: each run's label order must equal its reference model's tag order,
// and the models' shapes (which abstract away LID assignment, the one
// thing the locality sort is allowed to change) must serialize
// byte-identically across runs.
//
// The history is generated once, against window constraints matching the
// COARSEST batching: every op's anchor is an element that was alive at the
// current window's start and is not touched by any earlier op of the same
// window. That makes the history legal for every flush granularity that
// divides the window (the ApplyBatch anchor contract).

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/update_buffer.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "model_tree.h"
#include "storage/page_cache.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes::testing {
namespace {

constexpr uint64_t kHistorySeed = 0xba7c4ed1u;
constexpr int kBootstrapElements = 6500;
constexpr size_t kWindow = 4096;  // coarsest batch = one window
constexpr int kWindows = 2;

struct PlannedOp {
  enum class Kind { kInsert, kDeleteElement, kInsertSubtree, kDeleteSubtree };
  Kind kind = Kind::kInsert;
  int target = -1;       // model node index
  bool before_start = false;  // insert flavor: prev-sibling vs last-child
  xml::Document doc;     // kInsertSubtree payload
};

// Replays the shared bootstrap (identical in every run, so every run's
// model starts with identical node indices AND identical LIDs).
void Bootstrap(LabelingScheme* scheme, ModelTree* model) {
  Random rng(kHistorySeed ^ 0xb007);
  ASSERT_OK_AND_ASSIGN(const NewElement root, scheme->InsertFirstElement());
  model->SetRoot(root);
  for (int i = 0; i < kBootstrapElements; ++i) {
    const int target = model->RandomElement(&rng, /*exclude_root=*/false);
    ASSERT_OK_AND_ASSIGN(
        const NewElement fresh,
        scheme->InsertElementBefore(model->node(target).lids.end));
    model->InsertAsLastChild(target, fresh);
  }
}

// Applies one planned op to a model, given the LIDs the scheme assigned.
void ReplayIntoModel(ModelTree* model, const PlannedOp& op,
                     const NewElement& lids,
                     const std::vector<NewElement>& subtree_lids) {
  switch (op.kind) {
    case PlannedOp::Kind::kInsert:
      if (op.before_start) {
        model->InsertBeforeStart(op.target, lids);
      } else {
        model->InsertAsLastChild(op.target, lids);
      }
      break;
    case PlannedOp::Kind::kDeleteElement:
      model->DeleteElement(op.target);
      break;
    case PlannedOp::Kind::kInsertSubtree:
      if (op.before_start) {
        model->GraftBeforeStart(op.target, op.doc, subtree_lids);
      } else {
        model->GraftAsLastChild(op.target, op.doc, subtree_lids);
      }
      break;
    case PlannedOp::Kind::kDeleteSubtree:
      model->DeleteSubtree(op.target);
      break;
  }
}

// Generates the history once, using a scratch model (dummy LIDs; only the
// shape matters here, and the shape evolves identically in real runs).
std::vector<std::vector<PlannedOp>> GenerateHistory() {
  ModelTree model;
  {
    Random rng(kHistorySeed ^ 0xb007);
    model.SetRoot(NewElement{0, 1});
    for (int i = 0; i < kBootstrapElements; ++i) {
      const int target = model.RandomElement(&rng, /*exclude_root=*/false);
      model.InsertAsLastChild(target, NewElement{0, 1});
    }
  }

  Random rng(kHistorySeed);
  std::vector<std::vector<PlannedOp>> windows;
  for (int w = 0; w < kWindows; ++w) {
    // Snapshot of the window-start population: anchors may only come from
    // here, so they exist at every sub-batch start of the window.
    std::unordered_set<int> snapshot_alive;
    for (uint64_t id = 0; id < model.total_nodes(); ++id) {
      if (model.node(static_cast<int>(id)).alive) {
        snapshot_alive.insert(static_cast<int>(id));
      }
    }
    std::unordered_set<int> touched;
    auto eligible = [&](int id) {
      return snapshot_alive.count(id) != 0 && touched.count(id) == 0;
    };
    auto pick = [&](bool exclude_root, int tries) -> int {
      for (int t = 0; t < tries; ++t) {
        const int id = model.RandomElement(&rng, exclude_root);
        if (eligible(id)) {
          return id;
        }
      }
      return -1;
    };

    std::vector<PlannedOp> window;
    window.reserve(kWindow);
    int misses = 0;
    while (window.size() < kWindow && misses < 500) {
      const double roll = rng.NextDouble();
      PlannedOp op;
      if (roll < 0.62 || model.element_count() < 64) {
        op.kind = PlannedOp::Kind::kInsert;
        op.before_start = rng.Bernoulli(0.5);
        op.target = pick(/*exclude_root=*/op.before_start, 60);
        if (op.target < 0) {
          op.before_start = false;
          op.target = pick(/*exclude_root=*/false, 200);
        }
        if (op.target < 0) {
          break;  // window exhausted its eligible population
        }
        touched.insert(op.target);
        ReplayIntoModel(&model, op, NewElement{0, 1}, {});
      } else if (roll < 0.82) {
        op.kind = PlannedOp::Kind::kDeleteElement;
        op.target = pick(/*exclude_root=*/true, 60);
        if (op.target < 0) {
          ++misses;
          continue;
        }
        touched.insert(op.target);
        ReplayIntoModel(&model, op, NewElement{}, {});
      } else if (roll < 0.92) {
        op.kind = PlannedOp::Kind::kInsertSubtree;
        op.before_start = rng.Bernoulli(0.5);
        op.target = pick(/*exclude_root=*/op.before_start, 60);
        if (op.target < 0) {
          ++misses;
          continue;
        }
        const uint64_t elements = rng.UniformRange(2, 8);
        op.doc = xml::MakeRandomDocument(elements, 4, rng.Next());
        touched.insert(op.target);
        std::vector<NewElement> dummy(op.doc.element_count(),
                                      NewElement{0, 1});
        ReplayIntoModel(&model, op, NewElement{}, dummy);
      } else {
        op.kind = PlannedOp::Kind::kDeleteSubtree;
        op.target = pick(/*exclude_root=*/true, 60);
        if (op.target < 0) {
          ++misses;
          continue;
        }
        if (model.SubtreeElementCount(op.target) > 12) {
          ++misses;
          continue;
        }
        // Every node of the doomed subtree must itself be eligible, or
        // the op would interact with another op of this window.
        bool clean = true;
        std::vector<int> stack{op.target};
        std::vector<int> members;
        while (!stack.empty()) {
          const int id = stack.back();
          stack.pop_back();
          if (!eligible(id)) {
            clean = false;
            break;
          }
          members.push_back(id);
          for (int child : model.node(id).children) {
            stack.push_back(child);
          }
        }
        if (!clean) {
          ++misses;
          continue;
        }
        touched.insert(members.begin(), members.end());
        ReplayIntoModel(&model, op, NewElement{}, {});
      }
      window.push_back(std::move(op));
      misses = 0;
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

// Serializes the model's shape — structure only, no LIDs — so runs with
// different LID assignments can be compared byte-for-byte.
std::string SerializeShape(const ModelTree& model) {
  std::string out;
  std::vector<int> stack{0};
  if (model.empty()) {
    return out;
  }
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const ModelTree::Node& node = model.node(id);
    out += '(';
    out += std::to_string(node.children.size());
    for (auto it = node.children.rbegin(); it != node.children.rend();
         ++it) {
      stack.push_back(*it);
    }
    out += ')';
  }
  return out;
}

struct SchemeFactory {
  const char* name;
  std::unique_ptr<LabelingScheme> (*make)(PageCache* cache);
};

std::unique_ptr<LabelingScheme> MakeWbox(PageCache* cache) {
  return std::make_unique<WBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeBbox(PageCache* cache) {
  return std::make_unique<BBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeNaive(PageCache* cache) {
  return std::make_unique<NaiveScheme>(
      cache, NaiveOptions{.gap_bits = 8, .count_bits = 40});
}

// Runs the whole history through `scheme` with UpdateBuffer flushes every
// `flush_every` planned ops (0 = unbatched: plain virtual calls). Writes
// the serialized final model shape to `shape_out`.
void RunHistory(LabelingScheme* scheme,
                const std::vector<std::vector<PlannedOp>>& windows,
                size_t flush_every, std::string* shape_out) {
  ModelTree model;
  Bootstrap(scheme, &model);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }

  if (flush_every == 0) {
    for (const std::vector<PlannedOp>& window : windows) {
      for (const PlannedOp& op : window) {
        NewElement lids;
        std::vector<NewElement> subtree_lids;
        switch (op.kind) {
          case PlannedOp::Kind::kInsert: {
            const Lid anchor = op.before_start
                                   ? model.node(op.target).lids.start
                                   : model.node(op.target).lids.end;
            StatusOr<NewElement> got = scheme->InsertElementBefore(anchor);
            ASSERT_OK(got.status());
            lids = *got;
            break;
          }
          case PlannedOp::Kind::kDeleteElement:
            ASSERT_OK(scheme->Delete(model.node(op.target).lids.start));
            ASSERT_OK(scheme->Delete(model.node(op.target).lids.end));
            break;
          case PlannedOp::Kind::kInsertSubtree: {
            const Lid anchor = op.before_start
                                   ? model.node(op.target).lids.start
                                   : model.node(op.target).lids.end;
            ASSERT_OK(
                scheme->InsertSubtreeBefore(anchor, op.doc, &subtree_lids));
            break;
          }
          case PlannedOp::Kind::kDeleteSubtree:
            ASSERT_OK(scheme->DeleteSubtree(model.node(op.target).lids.start,
                                            model.node(op.target).lids.end));
            break;
        }
        ReplayIntoModel(&model, op, lids, subtree_lids);
      }
    }
  } else {
    UpdateBuffer buffer(scheme, {.flush_threshold = flush_every,
                                 .auto_flush = false});
    struct Enqueued {
      const PlannedOp* op;
      UpdateBuffer::Ticket ticket = 0;
      std::vector<NewElement>* subtree_lids = nullptr;
    };
    std::deque<std::vector<NewElement>> subtree_storage;
    std::vector<Enqueued> chunk;
    auto flush_chunk = [&]() {
      ASSERT_OK(buffer.Flush());
      for (const Enqueued& e : chunk) {
        NewElement lids;
        if (e.op->kind == PlannedOp::Kind::kInsert) {
          ASSERT_OK_AND_ASSIGN(lids, buffer.Result(e.ticket));
        }
        const uint64_t before = model.total_nodes();
        ReplayIntoModel(&model, *e.op, lids,
                        e.subtree_lids != nullptr ? *e.subtree_lids
                                                  : std::vector<NewElement>{});
        for (uint64_t id = before; id < model.total_nodes(); ++id) {
          ASSERT_NE(model.node(static_cast<int>(id)).lids.start, kInvalidLid)
              << "node " << id << " created by op kind="
              << static_cast<int>(e.op->kind)
              << " subtree_lids_size="
              << (e.subtree_lids != nullptr ? e.subtree_lids->size() : 0);
        }
      }
      chunk.clear();
      subtree_storage.clear();
    };
    for (const std::vector<PlannedOp>& window : windows) {
      size_t in_chunk = 0;
      for (const PlannedOp& op : window) {
        Enqueued e;
        e.op = &op;
        ASSERT_LT(static_cast<uint64_t>(op.target), model.total_nodes())
            << "kind=" << static_cast<int>(op.kind);
        ASSERT_NE(model.node(op.target).lids.start, kInvalidLid)
            << "kind=" << static_cast<int>(op.kind)
            << " target=" << op.target
            << " alive=" << model.node(op.target).alive;
        switch (op.kind) {
          case PlannedOp::Kind::kInsert: {
            const Lid anchor = op.before_start
                                   ? model.node(op.target).lids.start
                                   : model.node(op.target).lids.end;
            ASSERT_OK_AND_ASSIGN(e.ticket,
                                 buffer.InsertElementBefore(anchor));
            break;
          }
          case PlannedOp::Kind::kDeleteElement:
            ASSERT_OK(
                buffer.Delete(model.node(op.target).lids.start).status());
            ASSERT_OK(
                buffer.Delete(model.node(op.target).lids.end).status());
            break;
          case PlannedOp::Kind::kInsertSubtree: {
            const Lid anchor = op.before_start
                                   ? model.node(op.target).lids.start
                                   : model.node(op.target).lids.end;
            subtree_storage.emplace_back();
            e.subtree_lids = &subtree_storage.back();
            ASSERT_OK(
                buffer.InsertSubtreeBefore(anchor, &op.doc, e.subtree_lids)
                    .status());
            break;
          }
          case PlannedOp::Kind::kDeleteSubtree:
            ASSERT_OK(buffer
                          .DeleteSubtree(model.node(op.target).lids.start,
                                         model.node(op.target).lids.end)
                          .status());
            break;
        }
        chunk.push_back(e);
        if (++in_chunk >= flush_every) {
          flush_chunk();
          if (::testing::Test::HasFatalFailure()) {
            return;
          }
          in_chunk = 0;
        }
      }
      flush_chunk();  // window boundaries are flush points in every run
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }

  // The run is self-consistent: label order over the final tree equals the
  // model's tag order, and the scheme agrees on the live-label count.
  const std::vector<Lid> order = model.TagOrder();
  EXPECT_TRUE(LabelsStrictlyIncreasing(scheme, order));
  StatusOr<SchemeStats> stats = scheme->GetStats();
  EXPECT_OK(stats.status());
  if (stats.ok()) {
    EXPECT_EQ(stats->live_labels, order.size());
  }
  EXPECT_OK(scheme->CheckInvariants());
  *shape_out = SerializeShape(model);
}

class BatchDifferentialTest : public ::testing::TestWithParam<SchemeFactory> {
};

TEST_P(BatchDifferentialTest, BatchedRunsConvergeToUnbatchedTree) {
  const std::vector<std::vector<PlannedOp>> windows = GenerateHistory();
  uint64_t planned = 0;
  for (const std::vector<PlannedOp>& window : windows) {
    planned += window.size();
  }
  ASSERT_GE(planned, kWindow) << "history generation starved";

  std::string reference;
  for (const size_t flush_every : {size_t{0}, size_t{64}, size_t{4096}}) {
    TestDb db;
    std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
    std::string shape;
    RunHistory(scheme.get(), windows, flush_every, &shape);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    ASSERT_FALSE(shape.empty());
    if (reference.empty()) {
      reference = shape;
    } else {
      EXPECT_EQ(shape, reference)
          << "flush granularity " << flush_every
          << " produced a different tree";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BatchDifferentialTest,
    ::testing::Values(SchemeFactory{"wbox", &MakeWbox},
                      SchemeFactory{"bbox", &MakeBbox},
                      SchemeFactory{"naive8", &MakeNaive}),
    [](const ::testing::TestParamInfo<SchemeFactory>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace boxes::testing
