#include "core/wbox/wbox.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"

namespace boxes {

namespace {

/// LIDF payload for BOX schemes: the block address of the BOX record.
constexpr size_t kLidfPayloadSize = 8;

/// Flag bit marking records that have completed pair linkage (W-BOX-O).
constexpr uint8_t kFlagPaired = 4;

}  // namespace

WBox::WBox(PageCache* cache, WBoxOptions options)
    : cache_(cache),
      options_(options),
      params_(WBoxParams::Derive(cache->page_size(), options.pair_mode)),
      lidf_(cache, kLidfPayloadSize) {}

WBox::~WBox() = default;

// ---------------------------------------------------------------------------
// Location and lookup

Status WBox::LocateLid(Lid lid, PageId* leaf_page, int* slot,
                       uint64_t* label) {
  // The LIDF dereference inside ReadBlockPtr carries its own (inner,
  // winning) kLidfDeref guard; the leaf access is charged to the search.
  ScopedPhase phase(cache_, IoPhase::kSearch);
  BOXES_ASSIGN_OR_RETURN(const PageId page, lidf_.ReadBlockPtr(lid));
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  WBoxLeafView leaf(data, &params_);
  if (leaf.node_type() != WBoxLeafView::kNodeType) {
    return Status::Corruption("LID " + std::to_string(lid) +
                              " points at a non-leaf page");
  }
  const int index = leaf.FindLive(lid);
  if (index < 0) {
    return Status::Corruption("LID " + std::to_string(lid) +
                              " not present in its leaf");
  }
  *leaf_page = page;
  *slot = index;
  *label = leaf.LabelAt(static_cast<uint16_t>(index));
  return Status::OK();
}

StatusOr<Label> WBox::Lookup(Lid lid) {
  ScopedTimer timer(metrics_, name() + ".lookup.us");
  PageId page;
  int slot;
  uint64_t label;
  BOXES_RETURN_IF_ERROR(LocateLid(lid, &page, &slot, &label));
  return Label::FromScalar(label);
}

StatusOr<ElementLabels> WBox::LookupElement(Lid start_lid, Lid end_lid) {
  if (!options_.pair_mode) {
    return LabelingScheme::LookupElement(start_lid, end_lid);
  }
  PageId page;
  int slot;
  uint64_t label;
  BOXES_RETURN_IF_ERROR(LocateLid(start_lid, &page, &slot, &label));
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  WBoxLeafView leaf(data, &params_);
  const uint16_t index = static_cast<uint16_t>(slot);
  if (leaf.is_end_label(index) || (leaf.flags(index) & kFlagPaired) == 0) {
    // Not a linked start record; fall back to two lookups.
    return LabelingScheme::LookupElement(start_lid, end_lid);
  }
  return ElementLabels{Label::FromScalar(label),
                       Label::FromScalar(leaf.cached_end(index))};
}

StatusOr<uint64_t> WBox::OrdinalLookup(Lid lid) {
  if (!options_.maintain_ordinal) {
    return LabelingScheme::OrdinalLookup(lid);
  }
  PageId page;
  int slot;
  uint64_t label;
  BOXES_RETURN_IF_ERROR(LocateLid(lid, &page, &slot, &label));
  return OrdinalOfLabel(label);
}

StatusOr<uint64_t> WBox::OrdinalOfLabel(uint64_t label) {
  ScopedPhase phase(cache_, IoPhase::kSearch);
  BOXES_CHECK(root_ != kInvalidPageId);
  uint64_t ordinal = 0;
  PageId page = root_;
  for (uint32_t level = height_ - 1; level >= 1; --level) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    WBoxInternalView node(data, &params_);
    const int entry = node.FindChildByLabel(label);
    if (entry < 0) {
      return Status::Corruption("label routes into unassigned subrange");
    }
    for (int i = 0; i < entry; ++i) {
      ordinal += node.size(static_cast<uint16_t>(i));
    }
    page = node.child(static_cast<uint16_t>(entry));
  }
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  WBoxLeafView leaf(data, &params_);
  BOXES_CHECK(label >= leaf.range_lo());
  const uint64_t slot = label - leaf.range_lo();
  BOXES_CHECK(slot < leaf.count());
  for (uint64_t i = 0; i < slot; ++i) {
    if (!leaf.is_tombstone(static_cast<uint16_t>(i))) {
      ++ordinal;
    }
  }
  return ordinal;
}

Status WBox::DescendPath(uint64_t label, std::vector<PathStep>* path,
                         PageId* leaf_out) {
  ScopedPhase phase(cache_, IoPhase::kSearch);
  BOXES_CHECK(root_ != kInvalidPageId);
  PageId page = root_;
  for (uint32_t level = height_ - 1; level >= 1; --level) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    WBoxInternalView node(data, &params_);
    const int entry = node.FindChildByLabel(label);
    if (entry < 0) {
      return Status::Corruption("label routes into unassigned subrange");
    }
    path->push_back({page, entry});
    page = node.child(static_cast<uint16_t>(entry));
  }
  *leaf_out = page;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Log emission

void WBox::EmitShift(uint64_t lo, uint64_t hi, int64_t delta) {
  if (listener_ != nullptr && lo <= hi) {
    listener_->OnRangeShift(Label::FromScalar(lo), Label::FromScalar(hi),
                            delta, /*last_component_only=*/false);
  }
}

void WBox::EmitInvalidate(uint64_t lo, uint64_t hi) {
  if (listener_ != nullptr) {
    listener_->OnInvalidateRange(Label::FromScalar(lo),
                                 Label::FromScalar(hi));
  }
}

void WBox::EmitOrdinalShift(uint64_t from, int64_t delta) {
  if (listener_ != nullptr) {
    listener_->OnOrdinalShift(from, delta);
  }
}

// ---------------------------------------------------------------------------
// Pair-cache maintenance (W-BOX-O)

Status WBox::FixPairCachesForSlots(PageId leaf_page, int first, int last) {
  if (!options_.pair_mode) {
    return Status::OK();
  }
  ScopedPhase phase(cache_, IoPhase::kRelabel);
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(leaf_page));
  WBoxLeafView leaf(data, &params_);
  first = std::max(first, 0);
  last = std::min(last, static_cast<int>(leaf.count()) - 1);
  for (int i = first; i <= last; ++i) {
    const uint16_t index = static_cast<uint16_t>(i);
    if (leaf.is_tombstone(index) || !leaf.is_end_label(index) ||
        (leaf.flags(index) & kFlagPaired) == 0) {
      continue;
    }
    // The start record of an element is allocated immediately before its
    // end record, so the partner LID is lid - 1.
    const Lid partner_lid = leaf.lid(index) - 1;
    PageId partner_page = leaf.partner_block(index);
    auto moved = moved_in_op_.find(partner_lid);
    if (moved != moved_in_op_.end()) {
      partner_page = moved->second;
    }
    const uint64_t value = leaf.LabelAt(index);
    BOXES_ASSIGN_OR_RETURN(uint8_t* partner_data,
                           cache_->GetPageForWrite(partner_page));
    WBoxLeafView partner_leaf(partner_data, &params_);
    const int partner_slot = partner_leaf.FindLive(partner_lid);
    if (partner_slot < 0) {
      return Status::Corruption("pair partner record missing");
    }
    partner_leaf.set_cached_end(static_cast<uint16_t>(partner_slot), value);
    // Re-establish `leaf` in case partner_page aliased leaf_page and the
    // underlying frame pointer is shared (it is; views are cheap).
  }
  return Status::OK();
}

Status WBox::FixRelocatedRecords(PageId new_block,
                                 const std::vector<Lid>& moved_lids) {
  ScopedPhase phase(cache_, IoPhase::kRelabel);
  for (Lid lid : moved_lids) {
    BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(lid, new_block));
    moved_in_op_[lid] = new_block;
  }
  if (!options_.pair_mode) {
    return Status::OK();
  }
  for (Lid lid : moved_lids) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(new_block));
    WBoxLeafView leaf(data, &params_);
    const int slot = leaf.FindLive(lid);
    if (slot < 0) {
      continue;  // tombstones are not tracked by LID
    }
    const uint16_t index = static_cast<uint16_t>(slot);
    if ((leaf.flags(index) & kFlagPaired) == 0) {
      continue;
    }
    const Lid partner_lid = leaf.is_end_label(index) ? lid - 1 : lid + 1;
    PageId partner_page = leaf.partner_block(index);
    auto moved = moved_in_op_.find(partner_lid);
    if (moved != moved_in_op_.end()) {
      partner_page = moved->second;
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* partner_data,
                           cache_->GetPageForWrite(partner_page));
    WBoxLeafView partner_leaf(partner_data, &params_);
    const int partner_slot = partner_leaf.FindLive(partner_lid);
    if (partner_slot < 0) {
      return Status::Corruption("pair partner record missing on relocation");
    }
    partner_leaf.set_partner_block(static_cast<uint16_t>(partner_slot),
                                   new_block);
  }
  return Status::OK();
}

Status WBox::LinkPair(Lid start_lid, Lid end_lid) {
  if (!options_.pair_mode) {
    return Status::OK();
  }
  PageId start_page;
  int start_slot;
  uint64_t start_label;
  BOXES_RETURN_IF_ERROR(
      LocateLid(start_lid, &start_page, &start_slot, &start_label));
  PageId end_page;
  int end_slot;
  uint64_t end_label;
  BOXES_RETURN_IF_ERROR(LocateLid(end_lid, &end_page, &end_slot, &end_label));

  BOXES_ASSIGN_OR_RETURN(uint8_t* start_data,
                         cache_->GetPageForWrite(start_page));
  WBoxLeafView start_leaf(start_data, &params_);
  start_leaf.set_partner_block(static_cast<uint16_t>(start_slot), end_page);
  start_leaf.set_cached_end(static_cast<uint16_t>(start_slot), end_label);
  uint8_t* start_rec = start_leaf.record_ptr(static_cast<uint16_t>(start_slot));
  start_rec[8] |= kFlagPaired;

  BOXES_ASSIGN_OR_RETURN(uint8_t* end_data, cache_->GetPageForWrite(end_page));
  WBoxLeafView end_leaf(end_data, &params_);
  // If both records share a page the second view aliases the first; slots
  // remain valid because linking does not move records.
  end_leaf.set_partner_block(static_cast<uint16_t>(end_slot), start_page);
  uint8_t* end_rec = end_leaf.record_ptr(static_cast<uint16_t>(end_slot));
  end_rec[8] |= kFlagPaired;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Splitting

Status WBox::GrowRoot() {
  ScopedPhase phase(cache_, IoPhase::kRebalance);
  BOXES_CHECK(root_ != kInvalidPageId);
  uint8_t* data = nullptr;
  BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
  WBoxInternalView node(data, &params_);
  node.Init(static_cast<uint8_t>(height_));
  node.set_range_lo(0);
  const uint64_t total_weight = live_labels_ + tombstones_;
  node.InsertEntryAt(0, root_, total_weight,
                     options_.maintain_ordinal ? live_labels_ : 0,
                     /*subrange=*/0);
  node.set_self_weight(total_weight);
  root_ = page;
  ++height_;
  return Status::OK();
}

Status WBox::EnsureRoomFor(uint64_t label, bool* split_occurred) {
  // The preemptive descent is search traffic; GrowRoot and SplitChild
  // carry their own kRebalance guards.
  ScopedPhase phase(cache_, IoPhase::kSearch);
  *split_occurred = false;
  // Grow the tree while the root itself is at its weight limit.
  for (;;) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(root_));
    uint64_t root_weight;
    if (WBoxNodeType(data) == WBoxLeafView::kNodeType) {
      root_weight = WBoxLeafView(data, &params_).count();
    } else {
      root_weight = WBoxInternalView(data, &params_).self_weight();
    }
    if (root_weight + 1 < params_.MaxWeight(height_ - 1)) {
      break;
    }
    BOXES_RETURN_IF_ERROR(GrowRoot());
  }
  // Preemptive descent: split any child that could not absorb one more
  // record without violating its weight bound.
  PageId page = root_;
  for (uint32_t level = height_ - 1; level >= 1; --level) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    WBoxInternalView node(data, &params_);
    const int entry = node.FindChildByLabel(label);
    if (entry < 0) {
      return Status::Corruption("label routes into unassigned subrange");
    }
    const uint32_t child_level = level - 1;
    if (node.weight(static_cast<uint16_t>(entry)) + 1 >=
        params_.MaxWeight(child_level)) {
      BOXES_RETURN_IF_ERROR(SplitChild(page, entry, child_level));
      *split_occurred = true;
      return Status::OK();
    }
    page = node.child(static_cast<uint16_t>(entry));
  }
  return Status::OK();
}

Status WBox::SplitChild(PageId parent_page, int entry, uint32_t child_level) {
  ScopedPhase phase(cache_, IoPhase::kRebalance);
  ++split_count_;
  BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data,
                         cache_->GetPageForWrite(parent_page));
  WBoxInternalView parent(parent_data, &params_);
  const uint16_t e = static_cast<uint16_t>(entry);
  const PageId child_page = parent.child(e);
  const uint16_t s_u = parent.subrange(e);
  const uint64_t child_len = params_.RangeLength(child_level);
  const uint64_t half_weight = params_.MaxWeight(child_level) / 2;  // a^i k

  BOXES_ASSIGN_OR_RETURN(uint8_t* child_data,
                         cache_->GetPageForWrite(child_page));

  const bool right_free =
      static_cast<uint64_t>(s_u) + 1 < params_.b &&
      parent.SubrangeFree(s_u + 1) &&
      (e + 1 >= parent.count() || parent.subrange(e + 1) > s_u + 1);
  const bool left_free = s_u > 0 && parent.SubrangeFree(s_u - 1) &&
                         (e == 0 || parent.subrange(e - 1) < s_u - 1);

  uint8_t* new_data = nullptr;
  BOXES_ASSIGN_OR_RETURN(const PageId new_page,
                         cache_->AllocatePage(&new_data));

  uint64_t u_weight;
  uint64_t u_live;
  uint64_t v_weight;
  uint64_t v_live;

  const bool child_is_leaf = child_level == 0;
  if (child_is_leaf) {
    WBoxLeafView child(child_data, &params_);
    const uint16_t n = child.count();
    // Largest prefix with weight <= half_weight (= k); the leaf is at
    // capacity 2k-1, so both halves land well within bounds.
    const uint16_t m = static_cast<uint16_t>(
        std::min<uint64_t>(n - 1, half_weight));
    WBoxLeafView fresh(new_data, &params_);
    fresh.Init();
    // A split relabels records across blocks; conservatively invalidate the
    // parent's whole range (the paper's worst-case logging granularity).
    EmitInvalidate(parent.range_lo(),
                   parent.range_lo() + params_.RangeLength(child_level + 1) -
                       1);
    std::vector<Lid> moved;
    if (right_free || !left_free) {
      // New sibling on the right takes the suffix. (The full-reassign case
      // also starts this way; ranges are redone below.)
      for (uint16_t i = m; i < n; ++i) {
        if (!child.is_tombstone(i)) {
          moved.push_back(child.lid(i));
        }
      }
      child.MoveSuffixTo(m, &fresh);
      u_weight = child.count();
      u_live = child.live_count();
      v_weight = fresh.count();
      v_live = fresh.live_count();
      const uint16_t s_v =
          right_free ? static_cast<uint16_t>(s_u + 1) : uint16_t{0};
      fresh.set_range_lo(parent.range_lo() + s_v * child_len);
      parent.set_weight(e, u_weight);
      parent.set_size(e, options_.maintain_ordinal ? u_live : 0);
      parent.InsertEntryAt(e + 1, new_page, v_weight,
                           options_.maintain_ordinal ? v_live : 0, s_v);
    } else {
      // New sibling on the left takes the prefix.
      std::vector<uint8_t> prefix(m * params_.leaf_record_size);
      std::memcpy(prefix.data(), child.record_ptr(0), prefix.size());
      for (uint16_t i = 0; i < m; ++i) {
        if (!child.is_tombstone(i)) {
          moved.push_back(child.lid(i));
        }
      }
      fresh.set_range_lo(parent.range_lo() + (s_u - 1) * child_len);
      // Append prefix records to the fresh leaf wholesale.
      std::memcpy(fresh.record_ptr(0), prefix.data(), prefix.size());
      uint16_t live = 0;
      for (uint16_t i = 0; i < m; ++i) {
        if (!child.is_tombstone(i)) {
          ++live;
        }
      }
      // Fix the fresh leaf's header counters directly via Insert-free path.
      EncodeFixed16(new_data + 2, m);     // count
      EncodeFixed16(new_data + 4, live);  // live_count
      child.RemoveRecordRange(0, m - 1);
      u_weight = child.count();
      u_live = child.live_count();
      v_weight = m;
      v_live = live;
      parent.set_weight(e, u_weight);
      parent.set_size(e, options_.maintain_ordinal ? u_live : 0);
      parent.InsertEntryAt(e, new_page, v_weight,
                           options_.maintain_ordinal ? v_live : 0,
                           static_cast<uint16_t>(s_u - 1));
    }
    BOXES_RETURN_IF_ERROR(FixRelocatedRecords(new_page, moved));
    BOXES_RETURN_IF_ERROR(FixPairCachesForSlots(new_page, 0, INT32_MAX));
    BOXES_RETURN_IF_ERROR(FixPairCachesForSlots(child_page, 0, INT32_MAX));
  } else {
    WBoxInternalView child(child_data, &params_);
    const uint16_t n = child.count();
    // Largest prefix of children with cumulative weight <= a^i k.
    uint16_t m = 0;
    uint64_t prefix_weight = 0;
    while (m < n && prefix_weight + child.weight(m) <= half_weight) {
      prefix_weight += child.weight(m);
      ++m;
    }
    if (m == 0) {
      m = 1;
      prefix_weight = child.weight(0);
    }
    if (m == n) {
      m = n - 1;
      prefix_weight -= child.weight(m);
    }
    WBoxInternalView fresh(new_data, &params_);
    fresh.Init(static_cast<uint8_t>(child_level));
    EmitInvalidate(parent.range_lo(),
                   parent.range_lo() + params_.RangeLength(child_level + 1) -
                       1);
    if (right_free || !left_free) {
      const uint16_t s_v =
          right_free ? static_cast<uint16_t>(s_u + 1) : uint16_t{0};
      const uint64_t v_lo = parent.range_lo() + s_v * child_len;
      child.MoveSuffixTo(m, &fresh);
      fresh.set_range_lo(v_lo);
      // Spread the moved children over v's subranges and relabel them.
      const uint16_t moved_count = fresh.count();
      uint64_t vw = 0;
      uint64_t vs = 0;
      for (uint16_t j = 0; j < moved_count; ++j) {
        const uint16_t sub = static_cast<uint16_t>(
            (static_cast<uint64_t>(j) * params_.b) / moved_count);
        fresh.set_subrange(j, sub);
        vw += fresh.weight(j);
        vs += fresh.size(j);
        BOXES_RETURN_IF_ERROR(RelabelSubtree(
            fresh.child(j), child_level - 1,
            v_lo + sub * params_.RangeLength(child_level - 1)));
      }
      fresh.set_self_weight(vw);
      child.set_self_weight(child.self_weight() - vw);
      u_weight = child.self_weight();
      u_live = 0;  // parent sizes recomputed below from entry sums
      v_weight = vw;
      v_live = vs;
      uint64_t us = 0;
      for (uint16_t j = 0; j < child.count(); ++j) {
        us += child.size(j);
      }
      u_live = us;
      parent.set_weight(e, u_weight);
      parent.set_size(e, options_.maintain_ordinal ? u_live : 0);
      parent.InsertEntryAt(e + 1, new_page, v_weight,
                           options_.maintain_ordinal ? v_live : 0, s_v);
    } else {
      const uint16_t s_v = static_cast<uint16_t>(s_u - 1);
      const uint64_t v_lo = parent.range_lo() + s_v * child_len;
      // Move the prefix into the fresh (left) sibling.
      for (uint16_t j = 0; j < m; ++j) {
        fresh.InsertEntryAt(j, child.child(j), child.weight(j),
                            child.size(j), 0 /* reassigned below */);
      }
      child.RemoveEntryRange(0, m - 1);
      fresh.set_range_lo(v_lo);
      uint64_t vw = 0;
      uint64_t vs = 0;
      for (uint16_t j = 0; j < m; ++j) {
        const uint16_t sub = static_cast<uint16_t>(
            (static_cast<uint64_t>(j) * params_.b) / m);
        fresh.set_subrange(j, sub);
        vw += fresh.weight(j);
        vs += fresh.size(j);
        BOXES_RETURN_IF_ERROR(RelabelSubtree(
            fresh.child(j), child_level - 1,
            v_lo + sub * params_.RangeLength(child_level - 1)));
      }
      fresh.set_self_weight(vw);
      child.set_self_weight(child.self_weight() - vw);
      u_weight = child.self_weight();
      uint64_t us = 0;
      for (uint16_t j = 0; j < child.count(); ++j) {
        us += child.size(j);
      }
      u_live = us;
      v_weight = vw;
      v_live = vs;
      parent.set_weight(e, u_weight);
      parent.set_size(e, options_.maintain_ordinal ? u_live : 0);
      parent.InsertEntryAt(e, new_page, v_weight,
                           options_.maintain_ordinal ? v_live : 0, s_v);
    }
  }

  if (!right_free && !left_free) {
    // Worst case (paper §4): no adjacent subrange is available. Reassign
    // all children of the parent equally spaced subranges and relabel the
    // entire subtree rooted at the parent.
    const uint16_t c = parent.count();
    BOXES_CHECK(c <= params_.b);
    for (uint16_t j = 0; j < c; ++j) {
      parent.set_subrange(j, static_cast<uint16_t>(
                                 (static_cast<uint64_t>(j) * params_.b) / c));
    }
    for (uint16_t j = 0; j < c; ++j) {
      BOXES_RETURN_IF_ERROR(
          RelabelSubtree(parent.child(j), child_level,
                         parent.range_lo() +
                             parent.subrange(j) * child_len));
    }
    EmitInvalidate(parent.range_lo(),
                   parent.range_lo() +
                       params_.RangeLength(child_level + 1) - 1);
  }
  return Status::OK();
}

Status WBox::RelabelSubtree(PageId page, uint32_t level, uint64_t new_lo) {
  ScopedPhase phase(cache_, IoPhase::kRelabel);
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  if (level == 0) {
    WBoxLeafView leaf(data, &params_);
    if (leaf.range_lo() == new_lo) {
      return Status::OK();
    }
    BOXES_ASSIGN_OR_RETURN(data, cache_->GetPageForWrite(page));
    WBoxLeafView wleaf(data, &params_);
    wleaf.set_range_lo(new_lo);
    return FixPairCachesForSlots(page, 0, INT32_MAX);
  }
  WBoxInternalView node(data, &params_);
  if (node.range_lo() == new_lo) {
    return Status::OK();
  }
  BOXES_ASSIGN_OR_RETURN(data, cache_->GetPageForWrite(page));
  WBoxInternalView wnode(data, &params_);
  wnode.set_range_lo(new_lo);
  const uint64_t child_len = params_.RangeLength(level - 1);
  const uint16_t n = wnode.count();
  for (uint16_t i = 0; i < n; ++i) {
    BOXES_RETURN_IF_ERROR(RelabelSubtree(wnode.child(i), level - 1,
                                         new_lo + wnode.subrange(i) *
                                                      child_len));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insert / delete

Status WBox::AdjustPathCounts(uint64_t label, int64_t weight_delta,
                              int64_t size_delta) {
  // Weight/size bookkeeping along the root path is what keeps the tree
  // balance invariants; charged as rebalance traffic.
  ScopedPhase phase(cache_, IoPhase::kRebalance);
  PageId page = root_;
  for (uint32_t level = height_ - 1; level >= 1; --level) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(page));
    WBoxInternalView node(data, &params_);
    const int entry = node.FindChildByLabel(label);
    if (entry < 0) {
      return Status::Corruption("label routes into unassigned subrange");
    }
    const uint16_t e = static_cast<uint16_t>(entry);
    node.set_weight(e, node.weight(e) + weight_delta);
    node.set_self_weight(node.self_weight() + weight_delta);
    if (options_.maintain_ordinal) {
      node.set_size(e, node.size(e) + size_delta);
    }
    page = node.child(e);
  }
  return Status::OK();
}

Status WBox::InsertIntoLeaf(PageId leaf_page, int slot, Lid lid_new,
                            bool is_end) {
  // The insertion shifts every following record's label within the leaf.
  ScopedPhase phase(cache_, IoPhase::kRelabel);
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_page));
  WBoxLeafView leaf(data, &params_);
  const uint16_t n = leaf.count();
  BOXES_CHECK(n < params_.leaf_capacity);
  const uint64_t label = leaf.LabelAt(static_cast<uint16_t>(slot));
  const uint64_t last_label = leaf.LabelAt(n - 1);
  leaf.InsertRecordAt(static_cast<uint16_t>(slot), lid_new,
                      is_end ? WBoxLeafView::kFlagIsEnd : 0);
  BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(lid_new, leaf_page));
  ++live_labels_;
  EmitShift(label, last_label, +1);
  // Records at and after `slot`+1 shifted up one label; refresh the cached
  // end values their partners hold.
  return FixPairCachesForSlots(leaf_page, slot + 1, leaf.count() - 1);
}

Status WBox::InsertBefore(Lid lid_new, Lid lid_old, bool is_end) {
  PageId leaf_page;
  int slot;
  uint64_t label;
  BOXES_RETURN_IF_ERROR(LocateLid(lid_old, &leaf_page, &slot, &label));

  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(leaf_page));
  WBoxLeafView leaf(data, &params_);
  const int tomb = leaf.FindTombstone();
  if (tomb >= 0) {
    // Reclaim a tombstone slot: a purely leaf-local update that never
    // changes any weight (global rebuilding, paper §4). Labels between the
    // tombstone and the insertion point shift, so this is relabel traffic.
    ScopedPhase phase(cache_, IoPhase::kRelabel);
    BOXES_ASSIGN_OR_RETURN(data, cache_->GetPageForWrite(leaf_page));
    WBoxLeafView wleaf(data, &params_);
    const uint64_t lo = wleaf.range_lo();
    wleaf.RemoveRecordAt(static_cast<uint16_t>(tomb));
    int target = slot;
    if (tomb < slot) {
      --target;
    }
    wleaf.InsertRecordAt(static_cast<uint16_t>(target), lid_new,
                         is_end ? WBoxLeafView::kFlagIsEnd : 0);
    BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(lid_new, leaf_page));
    --tombstones_;
    ++live_labels_;
    if (tomb < slot) {
      // Old labels in (tomb, slot) moved down one.
      EmitShift(lo + tomb + 1, lo + slot - 1, -1);
      BOXES_RETURN_IF_ERROR(FixPairCachesForSlots(leaf_page, tomb, slot - 1));
    } else if (tomb > slot) {
      // Old labels in [slot, tomb) moved up one.
      EmitShift(lo + slot, lo + tomb - 1, +1);
      BOXES_RETURN_IF_ERROR(FixPairCachesForSlots(leaf_page, slot, tomb));
    }
    if (options_.maintain_ordinal) {
      BOXES_RETURN_IF_ERROR(AdjustPathCounts(lo + target, 0, +1));
      BOXES_ASSIGN_OR_RETURN(const uint64_t ordinal,
                             OrdinalOfLabel(lo + target));
      EmitOrdinalShift(ordinal, +1);
    }
    return Status::OK();
  }

  // Normal path: make room (splitting preemptively), then insert.
  uint32_t attempts = 0;
  for (;;) {
    BOXES_CHECK(++attempts <= height_ + 4);
    bool split = false;
    BOXES_RETURN_IF_ERROR(EnsureRoomFor(label, &split));
    if (!split) {
      break;
    }
    // Splitting may have relabeled and/or relocated the target record.
    BOXES_RETURN_IF_ERROR(LocateLid(lid_old, &leaf_page, &slot, &label));
  }
  BOXES_RETURN_IF_ERROR(AdjustPathCounts(label, +1, +1));
  BOXES_RETURN_IF_ERROR(LocateLid(lid_old, &leaf_page, &slot, &label));
  BOXES_RETURN_IF_ERROR(InsertIntoLeaf(leaf_page, slot, lid_new, is_end));
  if (options_.maintain_ordinal) {
    BOXES_ASSIGN_OR_RETURN(const uint64_t ordinal, OrdinalOfLabel(label));
    EmitOrdinalShift(ordinal, +1);
  }
  return Status::OK();
}

StatusOr<NewElement> WBox::InsertElementBefore(Lid lid) {
  ScopedTimer timer(metrics_, name() + ".insert.us");
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("W-BOX is empty");
  }
  moved_in_op_.clear();
  BOXES_ASSIGN_OR_RETURN(const auto lids, lidf_.AllocatePair());
  const Lid start_lid = lids.first;
  const Lid end_lid = lids.second;
  BOXES_RETURN_IF_ERROR(InsertBefore(end_lid, lid, /*is_end=*/true));
  BOXES_RETURN_IF_ERROR(InsertBefore(start_lid, end_lid, /*is_end=*/false));
  BOXES_RETURN_IF_ERROR(LinkPair(start_lid, end_lid));
  return NewElement{start_lid, end_lid};
}

StatusOr<NewElement> WBox::InsertFirstElement() {
  if (root_ != kInvalidPageId) {
    return Status::FailedPrecondition("W-BOX is not empty");
  }
  moved_in_op_.clear();
  uint8_t* data = nullptr;
  BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
  WBoxLeafView leaf(data, &params_);
  leaf.Init();
  leaf.set_range_lo(0);
  root_ = page;
  height_ = 1;
  BOXES_ASSIGN_OR_RETURN(const auto lids, lidf_.AllocatePair());
  leaf.InsertRecordAt(0, lids.first, 0);
  leaf.InsertRecordAt(1, lids.second, WBoxLeafView::kFlagIsEnd);
  BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(lids.first, page));
  BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(lids.second, page));
  live_labels_ += 2;
  BOXES_RETURN_IF_ERROR(LinkPair(lids.first, lids.second));
  return NewElement{lids.first, lids.second};
}

Status WBox::Delete(Lid lid) {
  ScopedTimer timer(metrics_, name() + ".delete.us");
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("W-BOX is empty");
  }
  moved_in_op_.clear();
  PageId leaf_page;
  int slot;
  uint64_t label;
  BOXES_RETURN_IF_ERROR(LocateLid(lid, &leaf_page, &slot, &label));
  uint64_t ordinal = 0;
  if (options_.maintain_ordinal) {
    BOXES_ASSIGN_OR_RETURN(ordinal, OrdinalOfLabel(label));
  }
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_page));
  WBoxLeafView leaf(data, &params_);
  leaf.SetTombstone(static_cast<uint16_t>(slot), true);
  BOXES_RETURN_IF_ERROR(lidf_.Free(lid));
  ++tombstones_;
  --live_labels_;
  if (options_.maintain_ordinal) {
    BOXES_RETURN_IF_ERROR(AdjustPathCounts(label, 0, -1));
    EmitOrdinalShift(ordinal + 1, -1);
  }
  // Tombstoning leaves every remaining label value unchanged, so no value
  // log entry is needed.
  if (defer_rebuild_check_) {
    rebuild_check_pending_ = true;
    return Status::OK();
  }
  return MaybeGlobalRebuild();
}

Status WBox::ReplayBatch(std::vector<BatchOp>* ops, BatchStats* stats) {
  defer_rebuild_check_ = true;
  Status status = LabelingScheme::ReplayBatch(ops, stats);
  defer_rebuild_check_ = false;
  if (rebuild_check_pending_) {
    rebuild_check_pending_ = false;
    if (status.ok()) {
      status = MaybeGlobalRebuild();
    }
  }
  return status;
}

uint64_t WBox::BatchLocalityKey(const BatchOp& op) {
  const StatusOr<PageId> block = lidf_.ReadBlockPtr(op.anchor);
  // Unreadable anchors keep key 0 and surface their real error when the
  // op applies.
  return block.ok() ? *block : 0;
}

// ---------------------------------------------------------------------------
// Stats

StatusOr<SchemeStats> WBox::GetStats() {
  SchemeStats stats;
  stats.height = height_;
  stats.live_labels = live_labels_;
  stats.lidf_pages = lidf_.page_count();
  if (root_ == kInvalidPageId) {
    return stats;
  }
  // Walk the rightmost spine for the maximum live label; count pages with a
  // full traversal.
  uint64_t pages = 0;
  uint64_t max_label = 0;
  std::vector<std::pair<PageId, uint32_t>> stack{{root_, height_ - 1}};
  while (!stack.empty()) {
    const auto [page, level] = stack.back();
    stack.pop_back();
    ++pages;
    StatusOr<uint8_t*> data = cache_->GetPage(page);
    if (!data.ok()) {
      return data.status();
    }
    if (level == 0) {
      WBoxLeafView leaf(*data, &params_);
      if (leaf.count() > 0) {
        max_label = std::max(max_label, leaf.LabelAt(leaf.count() - 1));
      }
    } else {
      WBoxInternalView node(*data, &params_);
      for (uint16_t i = 0; i < node.count(); ++i) {
        stack.push_back({node.child(i), level - 1});
      }
    }
  }
  stats.index_pages = pages;
  uint32_t bits = 0;
  while (max_label >> bits) {
    ++bits;
  }
  stats.max_label_bits = bits == 0 ? 1 : bits;
  return stats;
}

}  // namespace boxes
