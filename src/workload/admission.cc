#include "workload/admission.h"

#include <algorithm>
#include <chrono>

#include "util/request_context.h"

namespace boxes {

AdmissionController::AdmissionController(size_t num_docs,
                                         AdmissionOptions options)
    : options_(options), doc_active_(num_docs, 0) {}

void AdmissionController::SetMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    handles_ = MetricHandles{};
    return;
  }
  handles_.admitted = metrics->GetCounter("admission.admitted");
  handles_.queued = metrics->GetCounter("admission.queued");
  handles_.shed_queue_full = metrics->GetCounter("admission.shed_queue_full");
  handles_.shed_timeout = metrics->GetCounter("admission.shed_timeout");
  handles_.deadline_rejects =
      metrics->GetCounter("admission.deadline_rejects");
}

void AdmissionController::Count(std::atomic<uint64_t> Counters::*field,
                                MetricsRegistry::Counter* handle) {
  (counters_.*field).fetch_add(1, std::memory_order_relaxed);
  if (handle != nullptr) {
    handle->fetch_add(1, std::memory_order_relaxed);
  }
}

bool AdmissionController::GrantableLocked(size_t doc) const {
  if (options_.global_limit != 0 && global_active_ >= options_.global_limit) {
    return false;
  }
  if (options_.per_doc_limit != 0 &&
      doc_active_[doc] >= options_.per_doc_limit) {
    return false;
  }
  return true;
}

Status AdmissionController::Admit(size_t doc) {
  BOXES_CHECK(doc < doc_active_.size());
  // A request whose budget is already spent gets its verdict for free: no
  // queue slot, no token.
  if (RequestContext* context = RequestContext::Current()) {
    const Status check = context->Check("admission");
    if (!check.ok()) {
      Count(&Counters::deadline_rejects, handles_.deadline_rejects);
      return check;
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (GrantableLocked(doc)) {
    ++global_active_;
    ++doc_active_[doc];
    Count(&Counters::admitted, handles_.admitted);
    return Status::OK();
  }
  if (waiting_ >= options_.max_queue_depth) {
    Count(&Counters::shed_queue_full, handles_.shed_queue_full);
    return Status::ResourceExhausted(
        "admission queue full: shedding (doc " + std::to_string(doc) + ")");
  }
  // Queue, but never longer than the shorter of the configured wait cap
  // and the request's own remaining budget — a token granted after the
  // caller's deadline is worthless.
  const uint64_t remaining = RequestContext::CurrentRemainingUs();
  // The 60s clamp keeps the duration far from chrono overflow if someone
  // configures an effectively-infinite wait cap.
  const uint64_t wait_us = std::min<uint64_t>(
      {options_.max_queue_wait_us, remaining, 60'000'000});
  ++waiting_;
  Count(&Counters::queued, handles_.queued);
  const bool granted = cv_.wait_for(
      lock, std::chrono::microseconds(wait_us),
      [&] { return GrantableLocked(doc); });
  --waiting_;
  if (!granted) {
    if (remaining < options_.max_queue_wait_us) {
      // The request's budget, not our queue policy, was the binding cut.
      Count(&Counters::deadline_rejects, handles_.deadline_rejects);
      return Status::DeadlineExceeded(
          "request budget expired while queued for admission");
    }
    Count(&Counters::shed_timeout, handles_.shed_timeout);
    return Status::ResourceExhausted(
        "admission wait timed out: shedding (doc " + std::to_string(doc) +
        ")");
  }
  ++global_active_;
  ++doc_active_[doc];
  Count(&Counters::admitted, handles_.admitted);
  return Status::OK();
}

void AdmissionController::Release(size_t doc) {
  BOXES_CHECK(doc < doc_active_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    BOXES_CHECK(global_active_ > 0);
    BOXES_CHECK(doc_active_[doc] > 0);
    --global_active_;
    --doc_active_[doc];
  }
  // Both a global and a per-doc token freed; any waiter might now be
  // grantable.
  cv_.notify_all();
}

uint32_t AdmissionController::global_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_active_;
}

uint32_t AdmissionController::doc_active(size_t doc) const {
  std::lock_guard<std::mutex> lock(mu_);
  BOXES_CHECK(doc < doc_active_.size());
  return doc_active_[doc];
}

uint32_t AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

}  // namespace boxes
