#include <algorithm>
#include <vector>

#include "core/bbox/bbox.h"
#include "storage/metadata_io.h"

namespace boxes {

namespace {
constexpr uint64_t kBBoxCheckpointMagic = 0x31584f4242ULL;  // "BBOX1"
}  // namespace

StatusOr<PageId> BBox::Checkpoint() {
  MetadataWriter writer;
  writer.PutU64(kBBoxCheckpointMagic);
  writer.PutU32(options_.ordinal ? 1 : 0);
  writer.PutU32(options_.min_fill_divisor);
  writer.PutU64(cache_->page_size());
  writer.PutU64(root_);
  writer.PutU64(height_);
  writer.PutU64(live_labels_);
  writer.PutU64(split_count_);
  writer.PutU64(merge_count_);
  lidf_.SaveState(&writer);
  // Durability is the commit's job: CommitCheckpoint flushes and syncs the
  // chain (with every dirty data page) before flipping the superblock, so
  // syncing here too would just double the fdatasync bill per checkpoint.
  return writer.Finish(cache_);
}

Status BBox::Restore(PageId checkpoint_head) {
  if (root_ != kInvalidPageId || live_labels_ != 0) {
    return Status::FailedPrecondition("Restore requires an empty B-BOX");
  }
  BOXES_ASSIGN_OR_RETURN(MetadataReader reader,
                         MetadataReader::Load(cache_, checkpoint_head));
  BOXES_ASSIGN_OR_RETURN(const uint64_t magic, reader.GetU64());
  if (magic != kBBoxCheckpointMagic) {
    return Status::Corruption("not a B-BOX checkpoint");
  }
  BOXES_ASSIGN_OR_RETURN(const uint32_t ordinal, reader.GetU32());
  BOXES_ASSIGN_OR_RETURN(const uint32_t divisor, reader.GetU32());
  BOXES_ASSIGN_OR_RETURN(const uint64_t page_size, reader.GetU64());
  if ((ordinal != 0) != options_.ordinal ||
      divisor != options_.min_fill_divisor ||
      page_size != cache_->page_size()) {
    return Status::InvalidArgument(
        "checkpoint options do not match this B-BOX");
  }
  BOXES_ASSIGN_OR_RETURN(root_, reader.GetU64());
  BOXES_ASSIGN_OR_RETURN(const uint64_t height, reader.GetU64());
  if (root_ != kInvalidPageId && root_ >= cache_->store()->total_pages()) {
    return Status::Corruption("checkpoint root page beyond the device");
  }
  if (height > 64 || (height == 0) != (root_ == kInvalidPageId)) {
    return Status::Corruption("checkpoint height is implausible");
  }
  height_ = static_cast<uint32_t>(height);
  BOXES_ASSIGN_OR_RETURN(live_labels_, reader.GetU64());
  BOXES_ASSIGN_OR_RETURN(split_count_, reader.GetU64());
  BOXES_ASSIGN_OR_RETURN(merge_count_, reader.GetU64());
  return lidf_.LoadState(&reader);
}

Status BBox::FlattenDocument(const xml::Document& doc,
                             std::vector<FlatRecord>* records,
                             std::vector<NewElement>* lids_out) {
  records->reserve(records->size() + doc.tag_count());
  std::vector<NewElement> lids(doc.element_count());
  Status status = Status::OK();
  doc.ForEachTag([&](xml::ElementId id, bool is_start) {
    if (!status.ok()) {
      return;
    }
    if (is_start) {
      StatusOr<std::pair<Lid, Lid>> pair = lidf_.AllocatePair();
      if (!pair.ok()) {
        status = pair.status();
        return;
      }
      lids[id] = NewElement{pair->first, pair->second};
      records->push_back({pair->first});
    } else {
      records->push_back({lids[id].end});
    }
  });
  BOXES_RETURN_IF_ERROR(status);
  if (lids_out != nullptr) {
    *lids_out = std::move(lids);
  }
  return Status::OK();
}

namespace {

/// Splits `n` items into chunks of ~`fill`, fixing a short tail against the
/// previous chunk so no chunk (except a lone one) drops below `min`: the
/// tail is absorbed into the previous chunk if the sum fits a node, and
/// split evenly otherwise (even halves of a value above `capacity` are
/// above capacity/2 >= min).
std::vector<uint64_t> PlanChunks(uint64_t n, uint64_t fill, uint64_t min,
                                 uint64_t capacity) {
  std::vector<uint64_t> chunks;
  const uint64_t full = n / fill;
  const uint64_t rem = n % fill;
  for (uint64_t i = 0; i < full; ++i) {
    chunks.push_back(fill);
  }
  if (rem > 0) {
    if (!chunks.empty() && rem < min) {
      const uint64_t total = chunks.back() + rem;
      if (total <= capacity) {
        chunks.back() = total;
      } else {
        chunks.back() = total / 2;
        chunks.push_back(total - total / 2);
      }
    } else {
      chunks.push_back(rem);
    }
  }
  return chunks;
}

}  // namespace

Status BBox::BuildLeaves(const std::vector<FlatRecord>& records,
                         std::vector<LevelNode>* leaves) {
  if (records.empty()) {
    return Status::OK();
  }
  uint64_t fill = static_cast<uint64_t>(
      static_cast<double>(params_.leaf_capacity) *
      options_.bulk_fill_fraction);
  fill = std::clamp<uint64_t>(fill, 1, params_.leaf_capacity);
  const std::vector<uint64_t> chunks = PlanChunks(
      records.size(), fill, params_.LeafMin(), params_.leaf_capacity);
  uint64_t index = 0;
  for (uint64_t chunk : chunks) {
    uint8_t* data = nullptr;
    BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
    BBoxLeafView leaf(data, &params_);
    leaf.Init();
    for (uint64_t i = 0; i < chunk; ++i, ++index) {
      leaf.InsertAt(static_cast<uint16_t>(i), records[index].lid);
      BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(records[index].lid, page));
    }
    leaves->push_back({page, chunk});
  }
  return Status::OK();
}

Status BBox::BuildTree(std::vector<LevelNode> nodes, uint32_t level,
                       PageId* top, uint32_t* top_height) {
  BOXES_CHECK(!nodes.empty());
  uint64_t fill = static_cast<uint64_t>(
      static_cast<double>(params_.internal_capacity) *
      options_.bulk_fill_fraction);
  fill = std::clamp<uint64_t>(fill, 2, params_.internal_capacity);
  while (nodes.size() > 1) {
    ++level;
    const std::vector<uint64_t> chunks =
        PlanChunks(nodes.size(), fill, params_.InternalMin(),
                   params_.internal_capacity);
    std::vector<LevelNode> parents;
    parents.reserve(chunks.size());
    size_t index = 0;
    for (uint64_t chunk : chunks) {
      uint8_t* data = nullptr;
      BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
      BBoxInternalView node(data, &params_);
      node.Init(static_cast<uint8_t>(level));
      uint64_t total = 0;
      for (uint64_t i = 0; i < chunk; ++i, ++index) {
        node.InsertAt(static_cast<uint16_t>(i), nodes[index].page,
                      nodes[index].size);
        total += nodes[index].size;
        BOXES_ASSIGN_OR_RETURN(uint8_t* child_data,
                               cache_->GetPageForWrite(nodes[index].page));
        BBoxNodeHeader(child_data).set_parent(page);
      }
      parents.push_back({page, total});
    }
    nodes = std::move(parents);
  }
  *top = nodes[0].page;
  *top_height = level + 1;
  return Status::OK();
}

Status BBox::BulkLoad(const xml::Document& doc,
                      std::vector<NewElement>* lids_out) {
  if (root_ != kInvalidPageId) {
    return Status::FailedPrecondition("BulkLoad requires an empty B-BOX");
  }
  if (doc.empty()) {
    if (lids_out != nullptr) {
      lids_out->clear();
    }
    return Status::OK();
  }
  ScopedPhase io_phase(cache_, IoPhase::kBulkLoad);
  std::vector<FlatRecord> records;
  BOXES_RETURN_IF_ERROR(FlattenDocument(doc, &records, lids_out));
  std::vector<LevelNode> leaves;
  BOXES_RETURN_IF_ERROR(BuildLeaves(records, &leaves));
  BOXES_RETURN_IF_ERROR(BuildTree(std::move(leaves), 0, &root_, &height_));
  live_labels_ = records.size();
  return Status::OK();
}

Status BBox::FreeSubtree(PageId page, bool free_lids,
                         uint64_t* freed_records) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  if (BBoxNodeType(data) == BBoxNodeHeader::kLeafType) {
    BBoxLeafView leaf(data, &params_);
    const uint16_t n = leaf.count();
    if (free_lids) {
      for (uint16_t i = 0; i < n; ++i) {
        BOXES_RETURN_IF_ERROR(lidf_.Free(leaf.lid(i)));
      }
    }
    if (freed_records != nullptr) {
      *freed_records += n;
    }
    return cache_->FreePage(page);
  }
  BBoxInternalView node(data, &params_);
  const uint16_t n = node.count();
  std::vector<PageId> children;
  children.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    children.push_back(node.child(i));
  }
  for (PageId child : children) {
    BOXES_RETURN_IF_ERROR(FreeSubtree(child, free_lids, freed_records));
  }
  return cache_->FreePage(page);
}

}  // namespace boxes
