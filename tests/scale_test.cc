// Scale smoke tests: the structures at sizes where trees reach height 3+
// and every split/rebalance path fires many times, with full invariant
// audits at the end. These run in a few seconds and guard the asymptotic
// claims the small unit tests cannot exercise.

#include <vector>

#include "core/bbox/bbox.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/sequences.h"
#include "xml/generators.h"
#include "xml/xmark.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::TagOrderLids;
using testing::TestDb;

TEST(ScaleTest, WBoxConcentratedAtHeightThree) {
  TestDb db(/*page_size=*/1024);  // small pages force height quickly
  WBox wbox(&db.cache);
  workload::RunStats stats;
  ASSERT_OK(workload::RunConcentratedInsertion(&wbox, &db.cache, 30000,
                                               10000, &stats));
  EXPECT_GE(wbox.height(), 3u);
  ASSERT_OK(wbox.CheckInvariants());
  // Amortized insert cost stays bounded (O(log_B N), far below naive).
  EXPECT_LT(stats.MeanCost(), 25.0);
}

TEST(ScaleTest, BBoxConcentratedAtHeightThree) {
  TestDb db(/*page_size=*/1024);
  BBox bbox(&db.cache);
  workload::RunStats stats;
  ASSERT_OK(workload::RunConcentratedInsertion(&bbox, &db.cache, 30000,
                                               10000, &stats));
  EXPECT_GE(bbox.height(), 3u);
  ASSERT_OK(bbox.CheckInvariants());
  EXPECT_LT(stats.MeanCost(), 10.0);  // O(1) amortized
}

TEST(ScaleTest, WBoxPairModeXmarkMix) {
  TestDb db(/*page_size=*/1024);
  WBoxOptions options;
  options.pair_mode = true;
  WBox wbox(&db.cache, options);
  const xml::Document doc = xml::MakeXmarkDocument(20000, 3);
  workload::RunStats stats;
  std::vector<NewElement> lids;
  ASSERT_OK(workload::RunDocumentOrderInsertion(&wbox, &db.cache, doc,
                                                8000, &stats, &lids));
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, TagOrderLids(doc, lids)));
}

TEST(ScaleTest, BBoxMassDeletionShrinksHeight) {
  TestDb db(/*page_size=*/1024);
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(40000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  const uint32_t tall = bbox.height();
  ASSERT_GE(tall, 3u);
  // Delete 97% of the children; the tree must collapse.
  for (size_t i = 1; i < lids.size(); ++i) {
    if (i % 32 != 0) {
      ASSERT_OK(bbox.Delete(lids[i].start));
      ASSERT_OK(bbox.Delete(lids[i].end));
    }
  }
  EXPECT_LT(bbox.height(), tall);
  ASSERT_OK(bbox.CheckInvariants());
}

TEST(ScaleTest, WBoxRepeatedGlobalRebuilds) {
  TestDb db(/*page_size=*/1024);
  WBoxOptions options;
  options.min_rebuild_records = 256;
  WBox wbox(&db.cache, options);
  const xml::Document doc = xml::MakeTwoLevelDocument(20000);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  Random rng(9);
  // Interleave deletes with reinserts at random spots to churn through
  // several global rebuilds.
  std::vector<NewElement> live(lids.begin() + 1, lids.end());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8000 && live.size() > 100; ++i) {
      const size_t victim = rng.Uniform(live.size());
      ASSERT_OK(wbox.Delete(live[victim].start));
      ASSERT_OK(wbox.Delete(live[victim].end));
      live[victim] = live.back();
      live.pop_back();
    }
    for (int i = 0; i < 2000; ++i) {
      const size_t anchor = rng.Uniform(live.size());
      ASSERT_OK_AND_ASSIGN(
          const NewElement fresh,
          wbox.InsertElementBefore(live[anchor].start));
      live.push_back(fresh);
    }
  }
  EXPECT_GE(wbox.rebuild_count(), 2u);
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(ScaleTest, NaiveLargeGapEventuallyRelabels) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 24, .count_bits = 40});
  ASSERT_OK_AND_ASSIGN(const NewElement root, naive.InsertFirstElement());
  NewElement target = root;
  // 24-bit gaps absorb ~12 squeezing element-inserts before relabeling.
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(target, naive.InsertElementBefore(target.start));
  }
  EXPECT_GE(naive.relabel_count(), 1u);
  ASSERT_OK(naive.CheckInvariants());
}

}  // namespace
}  // namespace boxes
