// Silo ≡ live differential battery (DESIGN.md §4l): one randomized
// 2×4096-op history — element inserts, deletes, subtree grafts, subtree
// deletions — runs twice per scheme: once against a plain live instance,
// once against an identical instance wrapped in an OverlayedScheme whose
// snapshot is recompiled at random points (plus policy-driven points, plus
// a forced compile between the two windows). Both runs are deterministic,
// so they assign identical LIDs; at every step sampled lookups, ordinal
// lookups, and document-order comparisons must agree exactly, and periodic
// full sweeps check every live LID, label-order monotonicity, and freed-LID
// status parity.

#include <unistd.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/overlay.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "model_tree.h"
#include "storage/page_cache.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/recompile_policy.h"
#include "xml/generators.h"

namespace boxes::testing {
namespace {

constexpr uint64_t kHistorySeed = 0x51105eedULL;
constexpr int kBootstrapElements = 1500;
constexpr int kWindows = 2;
constexpr int kOpsPerWindow = 4096;
constexpr int kFullSweepEvery = 512;
constexpr int kSamplesPerOp = 4;

struct SchemeFactory {
  const char* name;
  std::unique_ptr<LabelingScheme> (*make)(PageCache* cache);
  bool ordinal;
};

std::unique_ptr<LabelingScheme> MakeWbox(PageCache* cache) {
  return std::make_unique<WBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeWboxOrdinal(PageCache* cache) {
  return std::make_unique<WBox>(cache,
                               WBoxOptions{.maintain_ordinal = true});
}
std::unique_ptr<LabelingScheme> MakeBbox(PageCache* cache) {
  return std::make_unique<BBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeNaive(PageCache* cache) {
  return std::make_unique<NaiveScheme>(
      cache, NaiveOptions{.gap_bits = 8, .count_bits = 40});
}

class SnapshotDifferentialTest
    : public ::testing::TestWithParam<SchemeFactory> {};

// Both instances see the exact same call sequence, so they evolve the same
// internal state and hand out the same LIDs — asserted on every insert.
class DualRun {
 public:
  DualRun(LabelingScheme* live, OverlayedScheme* overlay)
      : live_(live), overlay_(overlay) {}

  void InsertBefore(Lid anchor, NewElement* out) {
    ASSERT_OK_AND_ASSIGN(const NewElement a, live_->InsertElementBefore(anchor));
    ASSERT_OK_AND_ASSIGN(const NewElement b,
                         overlay_->InsertElementBefore(anchor));
    ASSERT_EQ(a.start, b.start);
    ASSERT_EQ(a.end, b.end);
    *out = a;
  }

  void InsertFirst(NewElement* out) {
    ASSERT_OK_AND_ASSIGN(const NewElement a, live_->InsertFirstElement());
    ASSERT_OK_AND_ASSIGN(const NewElement b, overlay_->InsertFirstElement());
    ASSERT_EQ(a.start, b.start);
    ASSERT_EQ(a.end, b.end);
    *out = a;
  }

  void DeleteElement(const NewElement& lids) {
    ASSERT_OK(live_->Delete(lids.start));
    ASSERT_OK(live_->Delete(lids.end));
    ASSERT_OK(overlay_->Delete(lids.start));
    ASSERT_OK(overlay_->Delete(lids.end));
  }

  void InsertSubtree(Lid anchor, const xml::Document& doc,
                     std::vector<NewElement>* out) {
    std::vector<NewElement> b;
    ASSERT_OK(live_->InsertSubtreeBefore(anchor, doc, out));
    ASSERT_OK(overlay_->InsertSubtreeBefore(anchor, doc, &b));
    ASSERT_EQ(out->size(), b.size());
    for (size_t i = 0; i < out->size(); ++i) {
      ASSERT_EQ((*out)[i].start, b[i].start);
      ASSERT_EQ((*out)[i].end, b[i].end);
    }
  }

  void DeleteSubtree(const NewElement& root) {
    ASSERT_OK(live_->DeleteSubtree(root.start, root.end));
    ASSERT_OK(overlay_->DeleteSubtree(root.start, root.end));
  }

 private:
  LabelingScheme* live_;
  OverlayedScheme* overlay_;
};

TEST_P(SnapshotDifferentialTest, SiloOverlayMatchesLiveAtEveryStep) {
  const SchemeFactory& factory = GetParam();
  TestDb live_db;
  TestDb overlay_db;
  std::unique_ptr<LabelingScheme> live = factory.make(&live_db.cache);
  std::unique_ptr<LabelingScheme> authority = factory.make(&overlay_db.cache);

  const std::string snapshot_path =
      ::testing::TempDir() + "boxes_snapdiff_" + factory.name + "_" +
      std::to_string(::getpid()) + ".silo";
  OverlayOptions options;
  options.snapshot_path = snapshot_path;
  options.log_capacity = 1 << 16;
  OverlayedScheme overlay(authority.get(), options);
  RecompilePolicy policy(
      RecompilePolicyOptions{.max_delta_fraction = 0.20, .min_deltas = 512});
  DualRun run(live.get(), &overlay);

  ModelTree model;
  Random rng(kHistorySeed);
  Random check_rng(kHistorySeed ^ 0xc0ffee);

  // Bootstrap a non-trivial document before the first compile.
  {
    NewElement root;
    run.InsertFirst(&root);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    model.SetRoot(root);
    for (int i = 0; i < kBootstrapElements; ++i) {
      const int target = model.RandomElement(&rng, /*exclude_root=*/false);
      NewElement fresh;
      run.InsertBefore(model.node(target).lids.end, &fresh);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      model.InsertAsLastChild(target, fresh);
    }
  }
  ASSERT_OK(overlay.Recompile());
  policy.OnRecompiled(overlay);

  std::deque<Lid> freed;  // recently freed LIDs for status-parity checks
  auto note_freed = [&freed](const NewElement& lids) {
    freed.push_back(lids.start);
    freed.push_back(lids.end);
    while (freed.size() > 64) {
      freed.pop_front();
    }
  };

  // Sampled checks after every op: exact label equality, ordinal equality,
  // and comparison-sign equality between the live run and the overlay.
  auto sampled_checks = [&]() {
    std::vector<int> picks;
    for (int s = 0; s < kSamplesPerOp; ++s) {
      picks.push_back(model.RandomElement(&check_rng, /*exclude_root=*/false));
    }
    for (const int pick : picks) {
      const NewElement& lids = model.node(pick).lids;
      for (const Lid lid : {lids.start, lids.end}) {
        ASSERT_OK_AND_ASSIGN(const Label expected, live->Lookup(lid));
        ASSERT_OK_AND_ASSIGN(const Label got, overlay.Lookup(lid));
        ASSERT_EQ(expected, got)
            << factory.name << " lid " << lid << ": live "
            << expected.ToString() << " vs silo " << got.ToString();
        if (factory.ordinal) {
          ASSERT_OK_AND_ASSIGN(const uint64_t expected_ord,
                               live->OrdinalLookup(lid));
          ASSERT_OK_AND_ASSIGN(const uint64_t got_ord,
                               overlay.OrdinalLookup(lid));
          ASSERT_EQ(expected_ord, got_ord) << factory.name << " lid " << lid;
        }
      }
    }
    // Document-order comparison parity on one random pair.
    const Lid a = model.node(picks[0]).lids.start;
    const Lid b = model.node(picks[1]).lids.start;
    ASSERT_OK_AND_ASSIGN(const int expected_cmp, live->Compare(a, b));
    ASSERT_OK_AND_ASSIGN(const int got_cmp, overlay.Compare(a, b));
    ASSERT_EQ(expected_cmp < 0, got_cmp < 0);
    ASSERT_EQ(expected_cmp > 0, got_cmp > 0);
  };

  auto full_sweep = [&]() {
    const std::vector<Lid> order = model.TagOrder();
    Label prev;
    bool have_prev = false;
    for (const Lid lid : order) {
      ASSERT_OK_AND_ASSIGN(const Label expected, live->Lookup(lid));
      ASSERT_OK_AND_ASSIGN(const Label got, overlay.Lookup(lid));
      ASSERT_EQ(expected, got) << factory.name << " lid " << lid;
      if (have_prev) {
        ASSERT_LT(prev.Compare(got), 0)
            << factory.name << " overlay label order broken at lid " << lid;
      }
      prev = got;
      have_prev = true;
    }
    // Freed LIDs must answer identically too — NotFound parity, or the
    // reused LID's current value.
    for (const Lid lid : freed) {
      StatusOr<Label> expected = live->Lookup(lid);
      StatusOr<Label> got = overlay.Lookup(lid);
      ASSERT_EQ(expected.status().code(), got.status().code())
          << factory.name << " freed lid " << lid;
      if (expected.ok()) {
        ASSERT_EQ(*expected, *got) << factory.name << " freed lid " << lid;
      }
    }
  };

  int ops_applied = 0;
  for (int window = 0; window < kWindows; ++window) {
    for (int op = 0; op < kOpsPerWindow; ++op) {
      const double roll = rng.NextDouble();
      if (roll < 0.60 || model.element_count() < 64) {
        const bool before_start = rng.Bernoulli(0.5);
        const int target =
            model.RandomElement(&rng, /*exclude_root=*/before_start);
        NewElement fresh;
        if (before_start) {
          run.InsertBefore(model.node(target).lids.start, &fresh);
          ASSERT_FALSE(::testing::Test::HasFatalFailure());
          model.InsertBeforeStart(target, fresh);
        } else {
          run.InsertBefore(model.node(target).lids.end, &fresh);
          ASSERT_FALSE(::testing::Test::HasFatalFailure());
          model.InsertAsLastChild(target, fresh);
        }
      } else if (roll < 0.82) {
        const int target = model.RandomElement(&rng, /*exclude_root=*/true);
        const NewElement lids = model.node(target).lids;
        run.DeleteElement(lids);
        ASSERT_FALSE(::testing::Test::HasFatalFailure());
        model.DeleteElement(target);
        note_freed(lids);
      } else if (roll < 0.92) {
        const bool before_start = rng.Bernoulli(0.5);
        const int target =
            model.RandomElement(&rng, /*exclude_root=*/before_start);
        const xml::Document doc =
            xml::MakeRandomDocument(rng.UniformRange(2, 8), 4, rng.Next());
        std::vector<NewElement> lids;
        const Lid anchor = before_start ? model.node(target).lids.start
                                        : model.node(target).lids.end;
        run.InsertSubtree(anchor, doc, &lids);
        ASSERT_FALSE(::testing::Test::HasFatalFailure());
        if (before_start) {
          model.GraftBeforeStart(target, doc, lids);
        } else {
          model.GraftAsLastChild(target, doc, lids);
        }
      } else {
        const int target = model.RandomElement(&rng, /*exclude_root=*/true);
        if (model.SubtreeElementCount(target) > 12) {
          --op;  // reroll; keep the window size
          continue;
        }
        const NewElement root = model.node(target).lids;
        run.DeleteSubtree(root);
        ASSERT_FALSE(::testing::Test::HasFatalFailure());
        for (const NewElement& victim : model.DeleteSubtree(target)) {
          note_freed(victim);
        }
      }
      ++ops_applied;

      // Recompile at random points, plus wherever the serving policy says
      // the delta pressure warrants it.
      if (rng.Bernoulli(1.0 / 512) || policy.ShouldRecompile(overlay)) {
        ASSERT_OK(overlay.Recompile());
        policy.OnRecompiled(overlay);
      }

      sampled_checks();
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      if (ops_applied % kFullSweepEvery == 0) {
        full_sweep();
        ASSERT_FALSE(::testing::Test::HasFatalFailure());
      }
    }
    // Window boundary: force a compile and prove the mmap path serves.
    const OverlayServeStats before = overlay.serve_stats();
    ASSERT_OK(overlay.Recompile());
    policy.OnRecompiled(overlay);
    full_sweep();
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    const OverlayServeStats after = overlay.serve_stats();
    EXPECT_GT(after.served_base + after.served_repaired,
              before.served_base + before.served_repaired)
        << factory.name
        << ": post-compile sweep never hit the mmap path — the overlay is "
           "degenerating to pass-through";
  }

  ASSERT_GE(ops_applied, kWindows * kOpsPerWindow);
  EXPECT_OK(live->CheckInvariants());
  EXPECT_OK(overlay.CheckInvariants());
  const OverlayServeStats stats = overlay.serve_stats();
  EXPECT_GT(stats.recompiles, 2u);
  ::unlink(snapshot_path.c_str());
  ::unlink((snapshot_path + ".tmp").c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SnapshotDifferentialTest,
    ::testing::Values(SchemeFactory{"wbox", &MakeWbox, false},
                      SchemeFactory{"wbox_ordinal", &MakeWboxOrdinal, true},
                      SchemeFactory{"bbox", &MakeBbox, false},
                      SchemeFactory{"naive8", &MakeNaive, false}),
    [](const ::testing::TestParamInfo<SchemeFactory>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace boxes::testing
