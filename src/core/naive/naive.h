#ifndef BOXES_CORE_NAIVE_NAIVE_H_
#define BOXES_CORE_NAIVE_NAIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "lidf/lidf.h"
#include "storage/page_cache.h"
#include "util/biguint.h"
#include "util/status.h"

namespace boxes {

/// Configuration of the naive-k baseline.
struct NaiveOptions {
  /// k: extra bits per label; adjacent labels start 2^k apart.
  uint32_t gap_bits = 16;

  /// Bits budgeted for the label count (labels use ~gap_bits + count_bits
  /// bits; determines the fixed record width).
  uint32_t count_bits = 40;
};

/// The naive gap-based relabeling scheme (paper §1/§7, "naive-k").
///
/// Every LIDF record directly stores the label value and the gap to the
/// previous label. Labels start 2^k apart; an insertion takes the midpoint
/// of the predecessor gap. When a gap is exhausted the ENTIRE file is
/// relabeled with fresh 2^k gaps — the failure mode the BOXes exist to
/// avoid. For large k the values exceed a machine word, so label arithmetic
/// runs on BigUint (the paper's point about long labels).
///
/// Deletions free the LID; the successor's stored gap goes conservatively
/// stale (it under-reports the real gap), which never causes collisions but
/// may trigger relabeling early.
class NaiveScheme : public LabelingScheme {
 public:
  NaiveScheme(PageCache* cache, NaiveOptions options = {});
  ~NaiveScheme() override;

  NaiveScheme(const NaiveScheme&) = delete;
  NaiveScheme& operator=(const NaiveScheme&) = delete;

  std::string name() const override {
    return "naive-" + std::to_string(options_.gap_bits);
  }

  StatusOr<Label> Lookup(Lid lid) override;
  StatusOr<NewElement> InsertElementBefore(Lid lid) override;
  StatusOr<NewElement> InsertFirstElement() override;
  Status Delete(Lid lid) override;
  Status BulkLoad(const xml::Document& doc,
                  std::vector<NewElement>* lids_out) override;
  /// Batch application with relabel coalescing: scans the batch for
  /// anchors whose stored gap cannot absorb the inserts headed their way
  /// and, if any exist, runs ONE preemptive RelabelAll for the whole batch
  /// instead of letting each exhausted anchor trigger its own full-file
  /// relabel mid-batch (the scheme's dominant cost).
  Status ReplayBatch(std::vector<BatchOp>* ops, BatchStats* stats) override;
  StatusOr<SchemeStats> GetStats() override;
  Status CheckInvariants() override;

  const NaiveOptions& options() const { return options_; }
  Lidf* lidf() override { return &lidf_; }
  uint64_t live_labels() const { return lidf_.live_records(); }
  /// Number of global relabelings performed (the scheme's pain metric).
  uint64_t relabel_count() const { return relabel_count_; }

  /// Persists all in-memory metadata into a metadata chain (see
  /// WBox::Checkpoint).
  StatusOr<PageId> Checkpoint() override;

  /// Restores a checkpoint into this freshly constructed instance.
  Status Restore(PageId checkpoint_head) override;

 protected:
  /// Batch ops sort by the LIDF page of their anchor — the record file IS
  /// the structure here, so LIDF-page order is label-locality order up to
  /// allocation churn.
  uint64_t BatchLocalityKey(const BatchOp& op) override;

 private:
  struct Record {
    BigUint value;
    BigUint gap;  // distance to the previous label (or to 0 for the first)
  };

  StatusOr<Record> ReadRecord(Lid lid) const;
  Status WriteRecord(Lid lid, const Record& record);

  /// Places a new label halfway into the gap before `lid_old`; relabels
  /// everything first if the gap is exhausted.
  Status InsertBefore(Lid lid_new, Lid lid_old);

  /// Reassigns every live label to (i+1)·2^k in value order (paper: sort
  /// the LIDF in memory, rewrite every record).
  Status RelabelAll();

  PageCache* cache_;  // not owned
  const NaiveOptions options_;
  const size_t value_limbs_;
  Lidf lidf_;
  BigUint max_value_;
  uint64_t relabel_count_ = 0;
};

}  // namespace boxes

#endif  // BOXES_CORE_NAIVE_NAIVE_H_
