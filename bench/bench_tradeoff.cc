// The paper's headline claim (abstract / §8): "The two structures together
// provide a nice tradeoff between update and lookup costs: W-BOX has
// logarithmic amortized update cost and constant worst-case lookup cost,
// while B-BOX has constant amortized update cost and logarithmic
// worst-case lookup cost."
//
// This bench makes the tradeoff concrete: a mixed workload sweeping the
// read fraction from write-only to read-heavy, reporting average block
// I/Os per operation. B-BOX should win the write-heavy end, W-BOX (and
// especially W-BOX-O for pair reads) the read-heavy end, with a crossover
// in between.

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "util/random.h"
#include "workload/sequences.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

double RunMix(const std::string& name, uint64_t elements, uint64_t ops,
              uint64_t read_pct, size_t page_size) {
  SchemeUnderTest unit(page_size);
  CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
  const xml::Document doc = xml::MakeTwoLevelDocument(elements);
  std::vector<NewElement> lids;
  CheckOkOrDie(workload::UnmeasuredOp(
                   unit.cache.get(),
                   [&] { return unit.scheme->BulkLoad(doc, &lids); }),
               "BulkLoad");
  Random rng(11);
  workload::RunStats stats;
  // Concentrated writes (the adversarial pattern) mixed with random pair
  // reads, the common unit of XML query processing.
  NewElement hot = lids[lids.size() / 2];
  for (uint64_t i = 0; i < ops; ++i) {
    const bool is_read = rng.Uniform(100) < read_pct;
    CheckOkOrDie(
        workload::MeasureOp(
            unit.cache.get(),
            [&]() -> Status {
              if (is_read) {
                const NewElement& e = lids[rng.Uniform(lids.size())];
                return unit.scheme->LookupElement(e.start, e.end).status();
              }
              BOXES_ASSIGN_OR_RETURN(hot,
                                     unit.scheme->InsertElementBefore(
                                         hot.start));
              return Status::OK();
            },
            &stats),
        "op");
  }
  return stats.MeanCost();
}

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 10000, "base elements");
  int64_t* ops = flags.AddInt64("ops", 4000, "operations per mix point");
  std::string* schemes = flags.AddString(
      "schemes", "wbox,wbox-o,bbox,bbox-o,naive-16",
      "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 2000);
  SmokeCap(smoke, ops, 800);

  const std::vector<uint64_t> read_pcts = {0, 25, 50, 75, 90, 99};
  std::printf(
      "TRADEOFF: avg block I/Os per operation over a concentrated-write /\n"
      "random-pair-read mix (base %lld elements, %lld ops per point)\n\n",
      static_cast<long long>(*elements), static_cast<long long>(*ops));
  std::printf("%-12s", "scheme");
  for (uint64_t pct : read_pcts) {
    std::printf(" %7llu%%", static_cast<unsigned long long>(pct));
  }
  std::printf("  (reads)\n");
  for (const std::string& name : SplitSchemes(*schemes)) {
    std::printf("%-12s", name.c_str());
    for (uint64_t pct : read_pcts) {
      std::printf(" %8.2f",
                  RunMix(name, static_cast<uint64_t>(*elements),
                         static_cast<uint64_t>(*ops), pct,
                         static_cast<size_t>(*page_size)));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected (paper abstract): B-BOX wins the write-heavy end (O(1)\n"
      "updates), W-BOX/W-BOX-O take over as reads dominate (1-2 I/O\n"
      "lookups vs B-BOX's height-dependent walks); naive-k is only\n"
      "competitive once writes (and hence its relabels) vanish.\n");
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
