# Empty dependencies file for bench_fig5_concentrated.
# This may be replaced when dependencies are built.
