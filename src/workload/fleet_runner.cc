#include "workload/fleet_runner.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/bbox/bbox.h"
#include "core/wbox/wbox.h"
#include "storage/scrubber.h"
#include "util/random.h"
#include "util/request_context.h"
#include "xml/generators.h"

namespace boxes::workload {
namespace {

/// How many fleet-inserted elements a tenant keeps before further insert
/// ops delete the oldest instead (same steady-state idiom as
/// concurrent_runner): the document neither grows without bound nor loses
/// any bulk-loaded element, so every probe LID stays valid for the whole
/// run.
constexpr size_t kMaxPendingInserts = 32;

/// Twig pattern every tenant's twig ops match; MakeTwoLevelDocument tags
/// the root "root" and every child "item".
constexpr char kTwigPattern[] = "root//item";

RequestContext MakeReadContext(const FleetOptions& options) {
  RequestContext context =
      options.request_timeout_us == 0
          ? RequestContext()
          : RequestContext::WithTimeout(options.request_timeout_us);
  context.set_io_budget(options.request_io_budget);
  return context;
}

void Classify(const Status& status, bool stale, TenantPhaseStats* stats) {
  if (status.ok()) {
    if (stale) {
      ++stats->degraded;
    } else {
      ++stats->exact;
    }
    return;
  }
  switch (status.code()) {
    case StatusCode::kResourceExhausted:  // admission shed or breaker open
      ++stats->shed;
      break;
    case StatusCode::kDeadlineExceeded:  // request budget spent
      ++stats->deadline_expired;
      break;
    case StatusCode::kUnavailable:  // replica behind its primary, or fenced
      ++stats->unavailable;
      break;
    default:
      ++stats->hard_errors;
      break;
  }
}

}  // namespace

/// One shared page-store device, bottom up. The breaker is optional so the
/// bench can report the with/without comparison on otherwise identical
/// stacks.
struct FleetRunner::Device {
  Device(size_t page_size, const RetryingStoreOptions& retry_options,
         bool use_breaker, const CircuitBreakerOptions& breaker_options)
      : base(page_size), faulty(&base), retrying(&faulty, retry_options) {
    if (use_breaker) {
      breaker = std::make_unique<CircuitBreakerPageStore>(&retrying,
                                                          breaker_options);
    }
    top = breaker != nullptr ? static_cast<PageStore*>(breaker.get())
                             : &retrying;
  }

  MemoryPageStore base;
  FaultInjectionPageStore faulty;
  RetryingPageStore retrying;
  std::unique_ptr<CircuitBreakerPageStore> breaker;
  PageStore* top = nullptr;
};

/// One tenant: its own cache, scheme, caching store, and document, sharing
/// a Device with the other tenants mapped to it.
struct FleetRunner::Tenant {
  explicit Tenant(PageStore* device_top) : cache(device_top) {}

  PageCache cache;  // non-retained: FlushAll drops everything resident
  std::unique_ptr<LabelingScheme> scheme;
  std::unique_ptr<CachingLabelStore> store;
  xml::Document doc;
  std::vector<NewElement> lids;  // bulk-load LIDs; [0] is the root
  query::TwigPattern twig;
  // Writer state: serializes this tenant's mutators ahead of the epoch
  // write lock and guards `pending`.
  std::mutex writer_mu;
  std::deque<NewElement> pending;
};

FleetRunner::FleetRunner(FleetOptions options)
    : options_(std::move(options)) {}

FleetRunner::~FleetRunner() = default;

Status FleetRunner::SetupTenant(size_t index) {
  Tenant& tenant = *tenants_[index];
  if (options_.scheme == "wbox") {
    tenant.scheme = std::make_unique<WBox>(&tenant.cache);
  } else if (options_.scheme == "bbox") {
    tenant.scheme = std::make_unique<BBox>(&tenant.cache);
  } else {
    return Status::InvalidArgument("unknown fleet scheme '" +
                                   options_.scheme + "'");
  }
  tenant.scheme->SetMetrics(options_.metrics);
  tenant.store = std::make_unique<CachingLabelStore>(tenant.scheme.get(),
                                                     options_.log_capacity);
  tenant.doc = xml::MakeTwoLevelDocument(options_.elements_per_doc);
  BOXES_RETURN_IF_ERROR(tenant.scheme->BulkLoad(tenant.doc, &tenant.lids));
  BOXES_RETURN_IF_ERROR(tenant.cache.FlushAll());
  BOXES_ASSIGN_OR_RETURN(tenant.twig, query::ParseTwigPattern(kTwigPattern));
  return Status::OK();
}

Status FleetRunner::Setup() {
  BOXES_CHECK(!setup_done_);
  if (options_.num_tenants == 0 || options_.num_devices == 0 ||
      options_.workers == 0 || options_.elements_per_doc < 2) {
    return Status::InvalidArgument(
        "fleet needs >= 1 tenant, device, and worker and >= 2 elements");
  }
  if (!(options_.zipf_theta > 0.0 && options_.zipf_theta < 1.0)) {
    return Status::InvalidArgument("zipf_theta must be in (0, 1)");
  }

  for (size_t d = 0; d < options_.num_devices; ++d) {
    RetryingStoreOptions retry = options_.retry;
    retry.seed += 0x9e3779b9u * (d + 1);  // distinct jitter per device
    devices_.push_back(std::make_unique<Device>(
        options_.page_size, retry, options_.use_breaker, options_.breaker));
    if (options_.metrics != nullptr) {
      devices_.back()->retrying.SetMetrics(options_.metrics);
      if (devices_.back()->breaker != nullptr) {
        devices_.back()->breaker->SetMetrics(options_.metrics);
      }
    }
  }

  admission_ = std::make_unique<AdmissionController>(options_.num_tenants,
                                                     options_.admission);
  if (options_.metrics != nullptr) {
    admission_->SetMetrics(options_.metrics);
  }

  for (size_t t = 0; t < options_.num_tenants; ++t) {
    tenants_.push_back(std::make_unique<Tenant>(devices_[device_of(t)]->top));
    BOXES_RETURN_IF_ERROR(SetupTenant(t));
  }

  // Warm one master reference pool per tenant (exact values, zero faults
  // during setup), then give each worker its own copy: references are
  // caller-owned mutable state and must never be shared across threads.
  worker_refs_.resize(options_.workers);
  for (size_t t = 0; t < options_.num_tenants; ++t) {
    Tenant& tenant = *tenants_[t];
    std::vector<CachedLabelRef> master;
    master.reserve(tenant.lids.size());
    for (const NewElement& element : tenant.lids) {
      master.push_back(tenant.store->MakeRef(element.start));
      BOXES_RETURN_IF_ERROR(tenant.store->Lookup(&master.back()).status());
    }
    BOXES_RETURN_IF_ERROR(tenant.cache.FlushAll());
    for (size_t w = 0; w < options_.workers; ++w) {
      worker_refs_[w].push_back(master);
    }
  }

  setup_done_ = true;
  return Status::OK();
}

Status FleetRunner::DoLookup(size_t worker, size_t tenant_index,
                             uint64_t pick, bool* stale) {
  Tenant& tenant = *tenants_[tenant_index];
  RequestContext context = MakeReadContext(options_);
  ScopedRequestContext bind(&context);
  AdmissionTicket ticket(admission_.get(), tenant_index);
  if (!ticket.admitted()) {
    return ticket.status();
  }
  std::vector<CachedLabelRef>& refs = worker_refs_[worker][tenant_index];
  CachedLabelRef* ref = &refs[pick % refs.size()];
  EpochReadLock lock(&tenant.scheme->epoch_guard());
  BOXES_ASSIGN_OR_RETURN(const ResilientLabel got,
                         tenant.store->LookupResilient(ref));
  *stale = got.possibly_stale;
  return Status::OK();
}

Status FleetRunner::DoOpen(size_t tenant_index, uint64_t pick, bool* stale) {
  Tenant& tenant = *tenants_[tenant_index];
  RequestContext context = MakeReadContext(options_);
  ScopedRequestContext bind(&context);
  AdmissionTicket ticket(admission_.get(), tenant_index);
  if (!ticket.admitted()) {
    return ticket.status();
  }
  // A cold reference: the full lookup cost a freshly opened handle pays,
  // with no cached value to degrade to.
  CachedLabelRef ref = tenant.store->MakeRef(
      tenant.lids[pick % tenant.lids.size()].start);
  EpochReadLock lock(&tenant.scheme->epoch_guard());
  BOXES_ASSIGN_OR_RETURN(const ResilientLabel got,
                         tenant.store->LookupResilient(&ref));
  *stale = got.possibly_stale;
  return Status::OK();
}

Status FleetRunner::DoInsert(size_t tenant_index, uint64_t pick) {
  Tenant& tenant = *tenants_[tenant_index];
  // No deadline context: aborting a half-applied structural mutation would
  // trade latency for a corrupted tenant. Admission still applies — an
  // overloaded fleet sheds writes too.
  AdmissionTicket ticket(admission_.get(), tenant_index);
  if (!ticket.admitted()) {
    return ticket.status();
  }
  std::lock_guard<std::mutex> writer(tenant.writer_mu);
  EpochWriteLock lock(&tenant.scheme->epoch_guard());
  Status status;
  if (tenant.pending.size() >= kMaxPendingInserts) {
    // Steady state: delete the oldest element this harness inserted, never
    // a bulk-loaded one, so probe LIDs stay valid.
    const NewElement victim = tenant.pending.front();
    tenant.pending.pop_front();
    status = tenant.scheme->Delete(victim.start);
    if (status.ok()) {
      status = tenant.scheme->Delete(victim.end);
    }
  } else {
    // Anchor on any bulk-loaded element except the root.
    const size_t anchors = tenant.lids.size() - 1;
    const Lid before = tenant.lids[1 + pick % anchors].start;
    StatusOr<NewElement> inserted = tenant.scheme->InsertElementBefore(before);
    status = inserted.status();
    if (inserted.ok()) {
      tenant.pending.push_back(*inserted);
    }
  }
  // Drop the tenant's cache under the write lock, so reader misses — and
  // with them device I/O, faults, retries, and breaker activity — keep
  // happening at steady state instead of the fleet serving purely from
  // memory after warmup.
  const Status flush = tenant.cache.FlushAll();
  return status.ok() ? flush : status;
}

Status FleetRunner::DoTwig(size_t tenant_index) {
  Tenant& tenant = *tenants_[tenant_index];
  RequestContext context = MakeReadContext(options_);
  ScopedRequestContext bind(&context);
  AdmissionTicket ticket(admission_.get(), tenant_index);
  if (!ticket.admitted()) {
    return ticket.status();
  }
  EpochReadLock lock(&tenant.scheme->epoch_guard());
  BOXES_ASSIGN_OR_RETURN(
      const std::vector<query::Interval> matches,
      query::MatchTwig(tenant.twig, tenant.scheme.get(), tenant.doc,
                       tenant.lids));
  if (matches.empty()) {
    return Status::Internal("twig matched nothing on a live tenant");
  }
  return Status::OK();
}

void FleetRunner::WorkerLoop(size_t worker, const FleetPhaseOptions& phase,
                             std::vector<TenantPhaseStats>* stats,
                             std::vector<Histogram>* latency) {
  Random rng(options_.seed + 0x9e3779b97f4a7c15ull * (worker + 1));
  for (uint64_t op = 0; op < phase.ops_per_worker; ++op) {
    // Exactly three draws per op, unconditionally, so the RNG stream — and
    // with it every per-tenant op count — is a pure function of the seed,
    // independent of outcomes and thread interleaving.
    const size_t tenant = static_cast<size_t>(
        rng.Skewed(options_.num_tenants, options_.zipf_theta));
    const double dice = rng.NextDouble();
    const uint64_t pick = rng.Next();

    TenantPhaseStats& tenant_stats = (*stats)[tenant];
    ++tenant_stats.ops;
    bool stale = false;
    Status status;
    const auto start = std::chrono::steady_clock::now();
    if (dice < phase.lookup_fraction) {
      ++tenant_stats.lookups;
      status = DoLookup(worker, tenant, pick, &stale);
    } else if (dice < phase.lookup_fraction + phase.insert_fraction) {
      ++tenant_stats.inserts;
      status = DoInsert(tenant, pick);
    } else if (dice < phase.lookup_fraction + phase.insert_fraction +
                          phase.twig_fraction) {
      ++tenant_stats.twigs;
      status = DoTwig(tenant);
    } else {
      ++tenant_stats.opens;
      status = DoOpen(tenant, pick, &stale);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    (*latency)[tenant].Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    Classify(status, stale, &tenant_stats);
  }
}

StatusOr<FleetPhaseStats> FleetRunner::RunPhase(
    const FleetPhaseOptions& phase) {
  if (!setup_done_) {
    return Status::FailedPrecondition("RunPhase before Setup");
  }
  if (phase.lookup_fraction < 0 || phase.insert_fraction < 0 ||
      phase.twig_fraction < 0 ||
      phase.lookup_fraction + phase.insert_fraction + phase.twig_fraction >
          1.0 + 1e-9) {
    return Status::InvalidArgument("phase fractions must sum to <= 1");
  }

  const size_t n = options_.num_tenants;
  std::vector<std::vector<TenantPhaseStats>> worker_stats(
      options_.workers, std::vector<TenantPhaseStats>(n));
  std::vector<Histogram> latency(n);  // Histogram::Add is thread-safe

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(options_.workers);
  for (size_t w = 0; w < options_.workers; ++w) {
    threads.emplace_back([this, w, &phase, &worker_stats, &latency] {
      WorkerLoop(w, phase, &worker_stats[w], &latency);
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  FleetPhaseStats out;
  out.tenants.resize(n);
  for (size_t t = 0; t < n; ++t) {
    TenantPhaseStats& row = out.tenants[t];
    for (size_t w = 0; w < options_.workers; ++w) {
      const TenantPhaseStats& part = worker_stats[w][t];
      row.ops += part.ops;
      row.lookups += part.lookups;
      row.opens += part.opens;
      row.inserts += part.inserts;
      row.twigs += part.twigs;
      row.exact += part.exact;
      row.degraded += part.degraded;
      row.shed += part.shed;
      row.deadline_expired += part.deadline_expired;
      row.unavailable += part.unavailable;
      row.hard_errors += part.hard_errors;
    }
    if (latency[t].count() > 0) {
      row.lat_p50_us = latency[t].Percentile(0.50);
      row.lat_p99_us = latency[t].Percentile(0.99);
      row.lat_p999_us = latency[t].Percentile(0.999);
      row.lat_max_us = latency[t].max();
    }
    out.ops += row.ops;
    out.exact += row.exact;
    out.degraded += row.degraded;
    out.shed += row.shed;
    out.deadline_expired += row.deadline_expired;
    out.unavailable += row.unavailable;
    out.hard_errors += row.hard_errors;
  }
  out.elapsed_s = wall.count();
  out.ops_per_sec = out.elapsed_s > 0 ? out.ops / out.elapsed_s : 0;
  return out;
}

Status FleetRunner::DropCaches() {
  BOXES_CHECK(setup_done_);
  for (std::unique_ptr<Tenant>& tenant : tenants_) {
    std::lock_guard<std::mutex> writer(tenant->writer_mu);
    EpochWriteLock lock(&tenant->scheme->epoch_guard());
    BOXES_RETURN_IF_ERROR(tenant->cache.FlushAll());
  }
  return Status::OK();
}

StatusOr<uint64_t> FleetRunner::ScrubDevices() {
  BOXES_CHECK(setup_done_);
  uint64_t quarantined = 0;
  for (size_t d = 0; d < devices_.size(); ++d) {
    // Scrub at the fault-injection layer: that is the device as tenants
    // see it, where a poisoned page reads as Corruption (the retry layer
    // above would only mask transients, and corruption is not retried).
    Scrubber scrubber(device_fault(d));
    scrubber.SetMetrics(options_.metrics);
    BOXES_RETURN_IF_ERROR(scrubber.ScrubPass());
    quarantined += scrubber.quarantined().size();
  }
  if (options_.metrics != nullptr) {
    options_.metrics->SetGauge("scrub.quarantined_pages", quarantined);
  }
  return quarantined;
}

MemoryPageStore* FleetRunner::device_base(size_t device) {
  BOXES_CHECK(device < devices_.size());
  return &devices_[device]->base;
}

FaultInjectionPageStore* FleetRunner::device_fault(size_t device) {
  BOXES_CHECK(device < devices_.size());
  return &devices_[device]->faulty;
}

RetryingPageStore* FleetRunner::device_retry(size_t device) {
  BOXES_CHECK(device < devices_.size());
  return &devices_[device]->retrying;
}

CircuitBreakerPageStore* FleetRunner::device_breaker(size_t device) {
  BOXES_CHECK(device < devices_.size());
  return devices_[device]->breaker.get();
}

LabelingScheme* FleetRunner::tenant_scheme(size_t tenant) {
  BOXES_CHECK(tenant < tenants_.size());
  return tenants_[tenant]->scheme.get();
}

CachingLabelStore* FleetRunner::tenant_store(size_t tenant) {
  BOXES_CHECK(tenant < tenants_.size());
  return tenants_[tenant]->store.get();
}

PageCache* FleetRunner::tenant_cache(size_t tenant) {
  BOXES_CHECK(tenant < tenants_.size());
  return &tenants_[tenant]->cache;
}

void ExportFleetStats(const std::string& source, const FleetPhaseStats& stats,
                      MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->IncrementCounter(source + ".ops", stats.ops);
  registry->IncrementCounter(source + ".exact", stats.exact);
  registry->IncrementCounter(source + ".degraded", stats.degraded);
  registry->IncrementCounter(source + ".shed", stats.shed);
  registry->IncrementCounter(source + ".deadline_expired",
                             stats.deadline_expired);
  registry->IncrementCounter(source + ".unavailable", stats.unavailable);
  registry->IncrementCounter(source + ".hard_errors", stats.hard_errors);
  // Quarantine size is a level, not an event count — export as a gauge so
  // fleet output shows poisoned-page pressure alongside outcome classes.
  registry->SetGauge("scrub.quarantined_pages", stats.quarantined_pages);
  registry->RecordValue(source + ".ops_per_sec",
                        static_cast<uint64_t>(stats.ops_per_sec));
  for (const TenantPhaseStats& tenant : stats.tenants) {
    registry->RecordValue(source + ".tenant_p99_us", tenant.lat_p99_us);
  }
}

}  // namespace boxes::workload
