#ifndef BOXES_UTIL_FLAGS_H_
#define BOXES_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace boxes {

/// Minimal command-line flag parser for benchmark and example binaries.
///
/// Accepts `--name=value` and `--name value`; `--help` prints all registered
/// flags. Not thread-safe; intended for use at the top of main().
class FlagParser {
 public:
  FlagParser() = default;
  FlagParser(const FlagParser&) = delete;
  FlagParser& operator=(const FlagParser&) = delete;

  /// Registers a flag with a default value and a help string. Returns a
  /// pointer whose pointee is updated by Parse().
  int64_t* AddInt64(const std::string& name, int64_t default_value,
                    const std::string& help);
  double* AddDouble(const std::string& name, double default_value,
                    const std::string& help);
  bool* AddBool(const std::string& name, bool default_value,
                const std::string& help);
  std::string* AddString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help);

  /// Parses argv. On `--help` prints usage and returns false (caller should
  /// exit). On malformed input prints an error and returns false.
  bool Parse(int argc, char** argv);

  /// Usage text listing all flags with defaults.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };

  struct Flag {
    Type type;
    std::string help;
    std::string default_text;
    // Exactly one of these is used, matching `type`.
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  bool SetFlag(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
};

}  // namespace boxes

#endif  // BOXES_UTIL_FLAGS_H_
