#include "core/common/epoch_guard.h"

#include <thread>

namespace boxes {

std::optional<EpochGuard::ReadTicket> EpochGuard::TryBeginRead() {
  const uint64_t seen = counter_.load(std::memory_order_acquire);
  if ((seen & 1) != 0) {
    // A writer is pending or active: back off instead of queueing on the
    // mutex, so the writer drains the existing readers and gets in.
    reader_retries_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (!mu_.try_lock_shared()) {
    reader_retries_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Holding the mutex shared excludes the writer's exclusive section, but a
  // writer may have flipped the counter odd between the check above and the
  // lock. Re-check and defer to it (this is the "epoch conflict" retry).
  const uint64_t now = counter_.load(std::memory_order_acquire);
  if (now != seen) {
    mu_.unlock_shared();
    reader_retries_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return ReadTicket{seen / 2};
}

void EpochGuard::EndRead() { mu_.unlock_shared(); }

void EpochGuard::BeginWrite() {
  writer_mu_.lock();
  // Announce the write *before* acquiring the mutex: new readers bounce off
  // the odd counter while we wait only for the readers already admitted.
  counter_.fetch_add(1, std::memory_order_acq_rel);
  mu_.lock();
}

void EpochGuard::EndWrite() {
  mu_.unlock();
  counter_.fetch_add(1, std::memory_order_acq_rel);
  writer_mu_.unlock();
}

EpochReadLock::EpochReadLock(EpochGuard* guard) : guard_(guard) {
  for (;;) {
    std::optional<EpochGuard::ReadTicket> ticket = guard_->TryBeginRead();
    if (ticket.has_value()) {
      ticket_ = *ticket;
      return;
    }
    std::this_thread::yield();
  }
}

EpochReadLock::~EpochReadLock() { guard_->EndRead(); }

}  // namespace boxes
