# Empty dependencies file for bench_label_bits.
# This may be replaced when dependencies are built.
