file(REMOVE_RECURSE
  "CMakeFiles/bbox_property_test.dir/bbox_property_test.cc.o"
  "CMakeFiles/bbox_property_test.dir/bbox_property_test.cc.o.d"
  "bbox_property_test"
  "bbox_property_test.pdb"
  "bbox_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbox_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
