#include "storage/page_store.h"

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace boxes {
namespace {

template <typename T>
class PageStoreTest : public ::testing::Test {};

class MemoryStoreFactory {
 public:
  PageStore* store() { return &store_; }

 private:
  MemoryPageStore store_{512};
};

class FileStoreFactory {
 public:
  FileStoreFactory()
      : store_(::testing::TempDir() + "/boxes_page_store_test.db", 512) {
    EXPECT_TRUE(store_.status().ok()) << store_.status().ToString();
  }
  PageStore* store() { return &store_; }

 private:
  FilePageStore store_;
};

using StoreFactories = ::testing::Types<MemoryStoreFactory, FileStoreFactory>;
TYPED_TEST_SUITE(PageStoreTest, StoreFactories);

TYPED_TEST(PageStoreTest, AllocateReadWrite) {
  TypeParam factory;
  PageStore* store = factory.store();
  ASSERT_OK_AND_ASSIGN(const PageId page, store->Allocate());
  std::vector<uint8_t> buf(store->page_size(), 0xab);
  ASSERT_OK(store->Write(page, buf.data()));
  std::vector<uint8_t> read(store->page_size());
  ASSERT_OK(store->Read(page, read.data()));
  EXPECT_EQ(buf, read);
}

TYPED_TEST(PageStoreTest, FreshPagesAreZeroed) {
  TypeParam factory;
  PageStore* store = factory.store();
  ASSERT_OK_AND_ASSIGN(const PageId page, store->Allocate());
  std::vector<uint8_t> read(store->page_size(), 0xff);
  ASSERT_OK(store->Read(page, read.data()));
  for (uint8_t byte : read) {
    ASSERT_EQ(byte, 0);
  }
}

TYPED_TEST(PageStoreTest, FreeAndReuse) {
  TypeParam factory;
  PageStore* store = factory.store();
  ASSERT_OK_AND_ASSIGN(const PageId a, store->Allocate());
  ASSERT_OK_AND_ASSIGN(const PageId b, store->Allocate());
  EXPECT_EQ(store->allocated_pages(), 2u);
  ASSERT_OK(store->Free(a));
  EXPECT_EQ(store->allocated_pages(), 1u);
  ASSERT_OK_AND_ASSIGN(const PageId c, store->Allocate());
  EXPECT_EQ(c, a);  // freed page ids are recycled
  EXPECT_NE(c, b);
  EXPECT_EQ(store->total_pages(), 2u);
}

TYPED_TEST(PageStoreTest, AccessToFreedPageFails) {
  TypeParam factory;
  PageStore* store = factory.store();
  ASSERT_OK_AND_ASSIGN(const PageId page, store->Allocate());
  ASSERT_OK(store->Free(page));
  std::vector<uint8_t> buf(store->page_size());
  EXPECT_FALSE(store->Read(page, buf.data()).ok());
  EXPECT_FALSE(store->Write(page, buf.data()).ok());
  EXPECT_FALSE(store->Free(page).ok());
}

TYPED_TEST(PageStoreTest, AccessToUnknownPageFails) {
  TypeParam factory;
  PageStore* store = factory.store();
  std::vector<uint8_t> buf(store->page_size());
  EXPECT_FALSE(store->Read(999, buf.data()).ok());
}

TYPED_TEST(PageStoreTest, ManyPagesKeepDistinctContent) {
  TypeParam factory;
  PageStore* store = factory.store();
  constexpr int kPages = 64;
  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_OK_AND_ASSIGN(const PageId page, store->Allocate());
    std::vector<uint8_t> buf(store->page_size(),
                             static_cast<uint8_t>(i * 3 + 1));
    ASSERT_OK(store->Write(page, buf.data()));
    pages.push_back(page);
  }
  for (int i = 0; i < kPages; ++i) {
    std::vector<uint8_t> read(store->page_size());
    ASSERT_OK(store->Read(pages[i], read.data()));
    EXPECT_EQ(read[0], static_cast<uint8_t>(i * 3 + 1));
    EXPECT_EQ(read[store->page_size() - 1], static_cast<uint8_t>(i * 3 + 1));
  }
}

TEST(FaultInjectionPageStoreTest, FailsAfterBudget) {
  MemoryPageStore base(512);
  FaultInjectionPageStore store(&base);
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  std::vector<uint8_t> buf(512, 1);
  store.FailAfter(2);
  EXPECT_TRUE(store.Write(page, buf.data()).ok());   // 1st op OK
  EXPECT_TRUE(store.Read(page, buf.data()).ok());    // 2nd op OK
  EXPECT_EQ(store.Write(page, buf.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(store.Read(page, buf.data()).code(), StatusCode::kIoError);
  store.Heal();
  EXPECT_TRUE(store.Read(page, buf.data()).ok());
}

}  // namespace
}  // namespace boxes
