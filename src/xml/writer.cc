#include "xml/writer.h"

#include <vector>

namespace boxes::xml {

std::string WriteDocument(const Document& doc, bool pretty) {
  std::string out;
  if (doc.empty()) {
    return out;
  }
  struct StackEntry {
    ElementId id;
    size_t next_child;
    size_t depth;
  };
  auto indent = [&](size_t depth) {
    if (pretty) {
      out.append(2 * depth, ' ');
    }
  };
  auto newline = [&] {
    if (pretty) {
      out.push_back('\n');
    }
  };

  std::vector<StackEntry> stack;
  const ElementId root = doc.root();
  indent(0);
  if (doc.element(root).children.empty()) {
    out += "<" + doc.element(root).tag + "/>";
    newline();
    return out;
  }
  out += "<" + doc.element(root).tag + ">";
  newline();
  stack.push_back({root, 0, 0});
  while (!stack.empty()) {
    StackEntry& top = stack.back();
    const auto& children = doc.element(top.id).children;
    if (top.next_child < children.size()) {
      const ElementId child = children[top.next_child++];
      const size_t depth = top.depth + 1;
      indent(depth);
      if (doc.element(child).children.empty()) {
        out += "<" + doc.element(child).tag + "/>";
        newline();
      } else {
        out += "<" + doc.element(child).tag + ">";
        newline();
        stack.push_back({child, 0, depth});
      }
    } else {
      indent(top.depth);
      out += "</" + doc.element(top.id).tag + ">";
      newline();
      stack.pop_back();
    }
  }
  return out;
}

}  // namespace boxes::xml
