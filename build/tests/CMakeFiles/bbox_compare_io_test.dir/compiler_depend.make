# Empty compiler generated dependencies file for bbox_compare_io_test.
# This may be replaced when dependencies are built.
