file(REMOVE_RECURSE
  "CMakeFiles/writer_edge_test.dir/writer_edge_test.cc.o"
  "CMakeFiles/writer_edge_test.dir/writer_edge_test.cc.o.d"
  "writer_edge_test"
  "writer_edge_test.pdb"
  "writer_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writer_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
