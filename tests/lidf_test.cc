#include "lidf/lidf.h"

#include <cstring>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace boxes {
namespace {

using testing::TestDb;

TEST(LidfTest, AllocateReadWrite) {
  TestDb db;
  Lidf lidf(&db.cache, 16);
  ASSERT_OK_AND_ASSIGN(const Lid lid, lidf.Allocate());
  EXPECT_TRUE(lidf.IsLive(lid));
  uint8_t payload[16];
  std::memset(payload, 0x77, sizeof(payload));
  ASSERT_OK(lidf.Write(lid, payload));
  uint8_t read[16] = {};
  ASSERT_OK(lidf.Read(lid, read));
  EXPECT_EQ(std::memcmp(payload, read, sizeof(payload)), 0);
}

TEST(LidfTest, FreshRecordsAreZeroed) {
  TestDb db;
  Lidf lidf(&db.cache, 8);
  ASSERT_OK_AND_ASSIGN(const Lid lid, lidf.Allocate());
  uint8_t read[8];
  std::memset(read, 0xff, sizeof(read));
  ASSERT_OK(lidf.Read(lid, read));
  for (uint8_t byte : read) {
    EXPECT_EQ(byte, 0);
  }
}

TEST(LidfTest, BlockPtrAccessors) {
  TestDb db;
  Lidf lidf(&db.cache, 8);
  ASSERT_OK_AND_ASSIGN(const Lid lid, lidf.Allocate());
  ASSERT_OK(lidf.WriteBlockPtr(lid, 12345));
  ASSERT_OK_AND_ASSIGN(const PageId block, lidf.ReadBlockPtr(lid));
  EXPECT_EQ(block, 12345u);
}

TEST(LidfTest, FreeAndReuseKeepsFileCompact) {
  TestDb db;
  Lidf lidf(&db.cache, 8);
  std::vector<Lid> lids;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(const Lid lid, lidf.Allocate());
    lids.push_back(lid);
  }
  const uint64_t pages_before = lidf.page_count();
  for (Lid lid : lids) {
    ASSERT_OK(lidf.Free(lid));
  }
  EXPECT_EQ(lidf.live_records(), 0u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(lidf.Allocate().status());
  }
  EXPECT_EQ(lidf.page_count(), pages_before);  // freed slots were reused
}

TEST(LidfTest, AccessToDeadLidFails) {
  TestDb db;
  Lidf lidf(&db.cache, 8);
  ASSERT_OK_AND_ASSIGN(const Lid lid, lidf.Allocate());
  ASSERT_OK(lidf.Free(lid));
  uint8_t buf[8];
  EXPECT_EQ(lidf.Read(lid, buf).code(), StatusCode::kNotFound);
  EXPECT_EQ(lidf.Write(lid, buf).code(), StatusCode::kNotFound);
  EXPECT_EQ(lidf.Free(lid).code(), StatusCode::kNotFound);
  EXPECT_FALSE(lidf.IsLive(lid));
}

TEST(LidfTest, AllocatePairIsAdjacentAndSamePage) {
  TestDb db;
  Lidf lidf(&db.cache, 8);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_OK_AND_ASSIGN(const auto pair, lidf.AllocatePair());
    EXPECT_EQ(pair.second, pair.first + 1);
    ASSERT_OK_AND_ASSIGN(const PageId p1, lidf.PageOf(pair.first));
    ASSERT_OK_AND_ASSIGN(const PageId p2, lidf.PageOf(pair.second));
    EXPECT_EQ(p1, p2);
  }
}

TEST(LidfTest, PairAllocationSkipsPageBoundary) {
  TestDb db(/*page_size=*/64);  // 8 records of 8 bytes per page
  Lidf lidf(&db.cache, 8);
  // Allocate 7 singles: one slot left on the page.
  for (int i = 0; i < 7; ++i) {
    ASSERT_OK(lidf.Allocate().status());
  }
  ASSERT_OK_AND_ASSIGN(const auto pair, lidf.AllocatePair());
  ASSERT_OK_AND_ASSIGN(const PageId p1, lidf.PageOf(pair.first));
  ASSERT_OK_AND_ASSIGN(const PageId p2, lidf.PageOf(pair.second));
  EXPECT_EQ(p1, p2);
  // The skipped boundary slot is recycled by a later single allocation.
  ASSERT_OK_AND_ASSIGN(const Lid single, lidf.Allocate());
  EXPECT_EQ(single, 7u);
}

TEST(LidfTest, ForEachLiveVisitsInOrderTouchingEachPageOnce) {
  TestDb db(/*page_size=*/64);
  Lidf lidf(&db.cache, 8);
  std::vector<Lid> lids;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(const Lid lid, lidf.Allocate());
    lids.push_back(lid);
  }
  // Free every third record.
  std::set<Lid> freed;
  for (size_t i = 0; i < lids.size(); i += 3) {
    ASSERT_OK(lidf.Free(lids[i]));
    freed.insert(lids[i]);
  }
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  db.cache.BeginOp();
  std::vector<Lid> visited;
  ASSERT_OK(lidf.ForEachLive([&](Lid lid, const uint8_t*) {
    visited.push_back(lid);
    return Status::OK();
  }));
  ASSERT_OK(db.cache.EndOp());
  EXPECT_EQ(visited.size(), lids.size() - freed.size());
  for (size_t i = 1; i < visited.size(); ++i) {
    EXPECT_LT(visited[i - 1], visited[i]);
  }
  for (Lid lid : visited) {
    EXPECT_FALSE(freed.count(lid));
  }
  EXPECT_LE(db.cache.stats().reads, lidf.page_count());
}

TEST(LidfTest, LiveRecordCountTracks) {
  TestDb db;
  Lidf lidf(&db.cache, 8);
  EXPECT_EQ(lidf.live_records(), 0u);
  ASSERT_OK_AND_ASSIGN(const Lid a, lidf.Allocate());
  ASSERT_OK(lidf.AllocatePair().status());
  EXPECT_EQ(lidf.live_records(), 3u);
  ASSERT_OK(lidf.Free(a));
  EXPECT_EQ(lidf.live_records(), 2u);
}

}  // namespace
}  // namespace boxes
