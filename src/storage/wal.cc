#include "storage/wal.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "core/common/epoch_guard.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace boxes {

namespace {

// Header field offsets within a log page (see wal.h for the layout).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffGeneration = 4;
constexpr size_t kOffBatchId = 12;
constexpr size_t kOffPageSeq = 20;
constexpr size_t kOffPageCount = 24;
constexpr size_t kOffOpCount = 28;
constexpr size_t kOffAttempt = 32;
constexpr size_t kOffPayloadUsed = 36;
constexpr size_t kOffHeaderCrc = 40;

// Record body layout: fixed prefix then the serialized subtree.
constexpr size_t kRecordFixedBytes = 8 + 1 + 8 + 8 + 4;
constexpr uint8_t kMaxRecordKind =
    static_cast<uint8_t>(BatchOp::Kind::kDeleteSubtree);

void AppendRecord(const BatchOp& op, const std::string& subtree_xml,
                  std::vector<uint8_t>* stream) {
  std::vector<uint8_t> body(kRecordFixedBytes + subtree_xml.size());
  uint8_t* p = body.data();
  EncodeFixed64(p, op.user_tag);
  p[8] = static_cast<uint8_t>(op.kind);
  EncodeFixed64(p + 9, op.anchor);
  EncodeFixed64(p + 17, op.anchor_end);
  EncodeFixed32(p + 25, static_cast<uint32_t>(subtree_xml.size()));
  std::memcpy(p + kRecordFixedBytes, subtree_xml.data(), subtree_xml.size());

  uint8_t frame[8];
  EncodeFixed32(frame, static_cast<uint32_t>(body.size()));
  EncodeFixed32(frame + 4, Crc32c(body.data(), body.size()));
  stream->insert(stream->end(), frame, frame + sizeof(frame));
  stream->insert(stream->end(), body.begin(), body.end());
}

}  // namespace

Status EncodeWalRecordStream(const std::vector<BatchOp>& ops,
                             std::vector<uint8_t>* stream) {
  stream->clear();
  for (const BatchOp& op : ops) {
    std::string subtree_xml;
    if (op.kind == BatchOp::Kind::kInsertSubtreeBefore) {
      if (op.subtree == nullptr) {
        return Status::InvalidArgument(
            "kInsertSubtreeBefore op without a subtree");
      }
      if (!op.subtree->empty()) {
        subtree_xml = xml::WriteDocument(*op.subtree, /*pretty=*/false);
      }
    }
    AppendRecord(op, subtree_xml, stream);
  }
  return Status::OK();
}

bool DecodeWalRecordStream(const std::vector<uint8_t>& stream,
                           uint32_t op_count, std::vector<WalRecord>* out) {
  out->clear();
  out->reserve(op_count);
  size_t pos = 0;
  for (uint32_t i = 0; i < op_count; ++i) {
    if (stream.size() - pos < 8) {
      return false;
    }
    const uint32_t body_len = DecodeFixed32(stream.data() + pos);
    const uint32_t crc = DecodeFixed32(stream.data() + pos + 4);
    pos += 8;
    if (stream.size() - pos < body_len ||
        body_len < kRecordFixedBytes) {
      return false;
    }
    const uint8_t* body = stream.data() + pos;
    if (Crc32c(body, body_len) != crc) {
      return false;
    }
    const uint8_t kind = body[8];
    const uint32_t subtree_len = DecodeFixed32(body + 25);
    if (kind > kMaxRecordKind ||
        subtree_len != body_len - kRecordFixedBytes) {
      return false;
    }
    WalRecord record;
    record.user_tag = DecodeFixed64(body);
    record.kind = static_cast<BatchOp::Kind>(kind);
    record.anchor = DecodeFixed64(body + 9);
    record.anchor_end = DecodeFixed64(body + 17);
    record.subtree_xml.assign(
        reinterpret_cast<const char*>(body + kRecordFixedBytes), subtree_len);
    out->push_back(std::move(record));
    pos += body_len;
  }
  // The writer records exact byte counts, so a complete batch consumes its
  // stream exactly; trailing garbage means a header lied.
  return pos == stream.size();
}

Status BuildOpsFromWalRecords(
    const std::vector<WalRecord>& records,
    std::vector<std::unique_ptr<xml::Document>>* docs,
    std::vector<BatchOp>* ops) {
  ops->clear();
  ops->reserve(records.size());
  for (const WalRecord& record : records) {
    BatchOp op;
    op.kind = record.kind;
    op.anchor = record.anchor;
    op.anchor_end = record.anchor_end;
    op.user_tag = record.user_tag;
    if (record.kind == BatchOp::Kind::kInsertSubtreeBefore) {
      if (record.subtree_xml.empty()) {
        docs->push_back(std::make_unique<xml::Document>());
      } else {
        auto parsed = xml::ParseDocument(record.subtree_xml);
        if (!parsed.ok()) {
          return Status::Corruption("op log record holds an unparsable "
                                    "subtree: " +
                                    parsed.status().message());
        }
        docs->push_back(
            std::make_unique<xml::Document>(std::move(parsed).value()));
      }
      op.subtree = docs->back().get();
    }
    ops->push_back(op);
  }
  return Status::OK();
}

namespace {

// One (batch_id, attempt) group under assembly during the scan.
struct PendingBatch {
  uint64_t generation = 0;
  uint32_t page_count = 0;
  uint32_t op_count = 0;
  bool inconsistent = false;
  std::vector<PageId> pages;
  // page_seq -> payload bytes; a duplicate seq marks the group inconsistent.
  std::map<uint32_t, std::vector<uint8_t>> payloads;
};

}  // namespace

StatusOr<WalScan> ScanWal(PageStore* store) {
  WalScan scan;
  const size_t page_size = store->page_size();
  if (page_size <= kWalPageHeaderSize) {
    return Status::InvalidArgument("page size too small for an op log page");
  }
  const size_t max_payload = page_size - kWalPageHeaderSize;
  std::vector<uint8_t> buf(page_size);
  std::map<std::pair<uint64_t, uint32_t>, PendingBatch> groups;

  const uint64_t total = store->total_pages();
  for (PageId id = 1; id < total; ++id) {  // page 0 is the superblock
    ++scan.scanned_pages;
    if (!store->Read(id, buf.data()).ok()) {
      // A torn or scribbled page — possibly mid-append at the crash. The
      // scan's job is salvage, so it skips rather than fails; whatever
      // batch the page belonged to simply stays incomplete.
      ++scan.unreadable_pages;
      continue;
    }
    if (DecodeFixed32(buf.data() + kOffMagic) != kWalPageMagic) {
      continue;
    }
    if (DecodeFixed32(buf.data() + kOffHeaderCrc) !=
        Crc32c(buf.data(), kOffHeaderCrc)) {
      // Magic without a matching header CRC: a data page that happens to
      // start with the magic bytes, not a log page. Log pages are recycled
      // forever, so misreading one here would inject garbage batches into
      // replay — the inner CRC is what makes the scan's page typing sound.
      continue;
    }
    ++scan.wal_pages;
    const uint64_t generation = DecodeFixed64(buf.data() + kOffGeneration);
    const uint64_t batch_id = DecodeFixed64(buf.data() + kOffBatchId);
    const uint32_t page_seq = DecodeFixed32(buf.data() + kOffPageSeq);
    const uint32_t page_count = DecodeFixed32(buf.data() + kOffPageCount);
    const uint32_t op_count = DecodeFixed32(buf.data() + kOffOpCount);
    const uint32_t attempt = DecodeFixed32(buf.data() + kOffAttempt);
    const uint32_t used = DecodeFixed32(buf.data() + kOffPayloadUsed);
    scan.max_batch_id = std::max(scan.max_batch_id, batch_id);

    PendingBatch& group = groups[{batch_id, attempt}];
    if (group.pages.empty()) {
      group.generation = generation;
      group.page_count = page_count;
      group.op_count = op_count;
    } else if (group.generation != generation ||
               group.page_count != page_count ||
               group.op_count != op_count) {
      group.inconsistent = true;
    }
    group.pages.push_back(id);
    if (page_count == 0 || page_seq >= page_count || used > max_payload ||
        !group.payloads
             .emplace(page_seq,
                      std::vector<uint8_t>(
                          buf.data() + kWalPageHeaderSize,
                          buf.data() + kWalPageHeaderSize + used))
             .second) {
      group.inconsistent = true;
    }
  }

  for (auto& [key, group] : groups) {
    WalBatch batch;
    batch.generation = group.generation;
    batch.batch_id = key.first;
    batch.attempt = key.second;
    batch.pages = std::move(group.pages);
    if (!group.inconsistent && group.payloads.size() == group.page_count) {
      std::vector<uint8_t> stream;
      for (auto& [seq, payload] : group.payloads) {
        stream.insert(stream.end(), payload.begin(), payload.end());
      }
      batch.complete =
          DecodeWalRecordStream(stream, group.op_count, &batch.records);
      if (!batch.complete) {
        batch.records.clear();
      }
    }
    scan.batches.push_back(std::move(batch));
  }
  // std::map already ordered the groups by (batch_id, attempt).
  return scan;
}

Status ReplayScannedWal(PageCache* cache, LabelingScheme* scheme,
                        const WalScan& scan, const WalReplayOptions& options,
                        WalReplayStats* stats, MetricsRegistry* metrics,
                        const WalReplayObserver& observer) {
  *stats = WalReplayStats{};
  bool replayed_any = false;
  bool stopped = false;

  size_t i = 0;
  while (i < scan.batches.size() && !stopped) {
    const uint64_t batch_id = scan.batches[i].batch_id;
    // Attempts of one batch id are adjacent; pick the LAST complete,
    // current-generation one. The copies need not be identical: a faulted
    // append's sync can fail with the pages intact on the device, and the
    // caller may enqueue more ops before retrying Flush — the retry then
    // re-logs the grown batch under the same id with a bumped attempt.
    // Only the final successful append was acknowledged, so an earlier
    // complete copy is a stale subset and replaying it would silently
    // drop acknowledged ops (and shift every later LID assignment).
    const WalBatch* chosen = nullptr;
    bool current_generation = false;
    for (; i < scan.batches.size() && scan.batches[i].batch_id == batch_id;
         ++i) {
      const WalBatch& attempt = scan.batches[i];
      if (attempt.generation < options.min_generation) {
        continue;  // covered by the recovered checkpoint; stale
      }
      current_generation = true;
      if (attempt.complete) {
        chosen = &attempt;  // highest attempt wins (scan order is sorted)
      }
    }
    if (!current_generation) {
      ++stats->batches_skipped;
      continue;
    }
    if (batch_id > options.to_batch) {
      // Point-in-time bound: acknowledged history past the bound exists
      // but is deliberately not applied. The caller must re-checkpoint and
      // truncate to seal the restore.
      ++stats->batches_beyond_bound;
      continue;
    }
    const uint64_t expected_id =
        replayed_any ? stats->last_replayed_batch + 1 : options.first_batch;
    if (chosen == nullptr ||
        (expected_id != 0 && batch_id != expected_id)) {
      // Torn tail (no complete copy) or a hole in the id sequence — either
      // between scanned batches or before the first one (the checkpoint's
      // WAL mark names the id replay must start at; a batch whose every
      // page was unreadable is absent from the scan, and only the mark can
      // expose that). Either way the acknowledged prefix ends here: stop
      // cleanly, apply nothing further — replaying across a hole would
      // reorder history.
      stats->torn_tail = true;
      stopped = true;
      continue;
    }

    // Rebuild the ops. Subtree documents are re-parsed from the logged
    // XML; parse failure after a CRC match means the writer logged
    // something unparsable, which is a bug, not a torn tail.
    std::vector<std::unique_ptr<xml::Document>> docs;
    std::vector<BatchOp> ops;
    {
      const Status built =
          BuildOpsFromWalRecords(chosen->records, &docs, &ops);
      if (!built.ok()) {
        return Status(built.code(), "op log batch " +
                                        std::to_string(batch_id) + ": " +
                                        built.message());
      }
    }

    BatchStats batch_stats;
    {
      // Same shape as a live flush: the whole batch is one write epoch.
      // ReplayBatch, not ApplyBatch — the log holds the post-sort order,
      // and re-sorting here would key on page ids that differ after the
      // crash (see LabelingScheme::ReplayBatch).
      EpochWriteLock lock(&scheme->epoch_guard());
      ScopedPhase phase(cache, IoPhase::kLogReplay);
      BOXES_RETURN_IF_ERROR(scheme->ReplayBatch(&ops, &batch_stats));
    }
    ++stats->batches_replayed;
    stats->ops_replayed += ops.size();
    stats->last_replayed_batch = batch_id;
    replayed_any = true;
    if (observer) {
      for (const BatchOp& op : ops) {
        observer(op);
      }
    }
  }

  if (metrics != nullptr) {
    metrics->IncrementCounter("recovery.replayed_batches",
                              stats->batches_replayed);
    metrics->IncrementCounter("recovery.replayed_ops", stats->ops_replayed);
    metrics->IncrementCounter("recovery.skipped_batches",
                              stats->batches_skipped);
    metrics->IncrementCounter("recovery.scanned_pages", scan.scanned_pages);
    metrics->IncrementCounter("recovery.unreadable_pages",
                              scan.unreadable_pages);
    if (stats->torn_tail) {
      metrics->IncrementCounter("recovery.torn_batches");
    }
  }
  return Status::OK();
}

WalWriter::WalWriter(PageCache* cache) : cache_(cache) {}

StatusOr<PageId> WalWriter::AcquirePage() {
  if (!pool_.empty()) {
    const PageId id = pool_.back();
    pool_.pop_back();
    return id;
  }
  PageStore* store = cache_->store();
  // The allocator's free list may hold pages freed since the last
  // checkpoint: those carry journaled pre-images (Free journals) and may
  // still be referenced by the committed checkpoint, so an unjournaled
  // overwrite would poison a future rollback. Park them and keep pulling;
  // the loop terminates because the free list is finite and growth
  // allocates at total_pages(), which is always >= the floor.
  for (;;) {
    BOXES_ASSIGN_OR_RETURN(const PageId id, store->Allocate());
    if (id >= store->unjournaled_floor()) {
      return id;
    }
    rejects_.push_back(id);
  }
}

Status WalWriter::AppendBatch(const std::vector<BatchOp>& ops) {
  // Log pages bypass the cache entirely: they are written once, synced
  // once, and never read back on the live path, so caching them would
  // only evict pages that matter — and durability requires them on the
  // device at Sync() time, not dirty in a frame.
  PageStore* store = cache_->store();
  const size_t page_size = store->page_size();
  if (page_size <= kWalPageHeaderSize) {
    return Status::InvalidArgument("page size too small for an op log page");
  }

  std::vector<uint8_t> stream;
  BOXES_RETURN_IF_ERROR(EncodeWalRecordStream(ops, &stream));

  const size_t max_payload = page_size - kWalPageHeaderSize;
  const uint32_t page_count = static_cast<uint32_t>(
      std::max<size_t>(1, (stream.size() + max_payload - 1) / max_payload));
  const uint32_t attempt = pending_attempt_;

  std::vector<uint8_t> buf(page_size);
  size_t offset = 0;
  Status status;
  for (uint32_t seq = 0; seq < page_count && status.ok(); ++seq) {
    StatusOr<PageId> page = AcquirePage();
    if (!page.ok()) {
      status = page.status();
      break;
    }
    // Track the page before writing it: if the write (or the sync) faults
    // the page is garbage on disk but still ours, and the next truncation
    // retires it.
    active_.push_back(*page);
    const size_t used = std::min(max_payload, stream.size() - offset);
    std::fill(buf.begin(), buf.end(), 0);
    EncodeFixed32(buf.data() + kOffMagic, kWalPageMagic);
    EncodeFixed64(buf.data() + kOffGeneration, generation_);
    EncodeFixed64(buf.data() + kOffBatchId, next_batch_id_);
    EncodeFixed32(buf.data() + kOffPageSeq, seq);
    EncodeFixed32(buf.data() + kOffPageCount, page_count);
    EncodeFixed32(buf.data() + kOffOpCount,
                  static_cast<uint32_t>(ops.size()));
    EncodeFixed32(buf.data() + kOffAttempt, attempt);
    EncodeFixed32(buf.data() + kOffPayloadUsed, static_cast<uint32_t>(used));
    EncodeFixed32(buf.data() + kOffHeaderCrc,
                  Crc32c(buf.data(), kOffHeaderCrc));
    std::memcpy(buf.data() + kWalPageHeaderSize, stream.data() + offset, used);
    // Unjournaled on purpose: a journaled append would be reverted by the
    // rollback pass of the very recovery that must read it (see wal.h).
    status = store->WriteUnjournaled(*page, buf.data());
    offset += used;
  }
  if (status.ok()) {
    // THE durability barrier: one fdatasync per flush. When this returns
    // OK the batch is recoverable, and only then may it be applied and
    // acknowledged.
    status = store->Sync();
  }
  if (!status.ok()) {
    // The batch id is not consumed — a retry re-appends the same id under
    // the next attempt number, and replay picks whichever copy is
    // complete.
    ++pending_attempt_;
    return status;
  }
  ++next_batch_id_;
  pending_attempt_ = 0;
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter("wal.appended_batches");
    metrics_->IncrementCounter("wal.appended_records", ops.size());
    metrics_->IncrementCounter("wal.appended_pages", page_count);
    metrics_->IncrementCounter("wal.sync_calls");
  }
  return Status::OK();
}

Status WalWriter::StartGeneration(uint64_t generation) {
  // Retire, never free: once a page has carried an unjournaled log write
  // it must stay out of the allocator forever. Freeing it would journal a
  // pre-image on reuse, and the rollback pass of a later recovery would
  // then resurrect that pre-image — overwriting whatever acknowledged
  // batch lived there by then. The pool keeps the steady-state page cost
  // bounded by the longest checkpoint interval, and recovery re-learns
  // pool pages from the scan (they keep their magic), so nothing leaks
  // across sessions.
  const uint64_t retired = active_.size();
  pool_.insert(pool_.end(), active_.begin(), active_.end());
  active_.clear();
  // Below-floor allocations the acquisition loop parked are ordinary
  // pages (never written unjournaled); with the checkpoint committed it
  // is safe to hand them back for data use.
  Status first_error;
  for (PageId id : rejects_) {
    // FreePage drops any cached frame then frees in the store; these
    // pages are never cached, so this is a pure allocator operation.
    const Status status = cache_->FreePage(id);
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  rejects_.clear();
  generation_ = generation;
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter("wal.truncations");
    metrics_->IncrementCounter("wal.truncated_pages", retired);
  }
  return first_error;
}

void WalWriter::AdoptPages(const WalScan& scan) {
  for (const WalBatch& batch : scan.batches) {
    active_.insert(active_.end(), batch.pages.begin(), batch.pages.end());
  }
}

StatusOr<WalRecoveryResult> RecoverWithWal(
    PageCache* cache, LabelingScheme* scheme, const SchemeRestorer& restore,
    const WalReplayOptions& bounds, MetricsRegistry* metrics,
    const WalReplayObserver& observer) {
  WalRecoveryResult result;
  BOXES_ASSIGN_OR_RETURN(const SuperblockInfo info, LoadSuperblock(cache));
  result.generation = info.sequence;
  result.checkpoint_head = info.head;
  if (info.head != kInvalidPageId) {
    if (!restore) {
      return Status::InvalidArgument(
          "database holds a checkpoint but no restorer was given");
    }
    BOXES_RETURN_IF_ERROR(restore(info.head));
  }
  BOXES_ASSIGN_OR_RETURN(result.scan, ScanWal(cache->store()));

  WalReplayOptions options = bounds;
  // The generation filter is not a caller knob: batches below the
  // committed sequence are *inside* the checkpoint just restored. Neither
  // is the first-batch anchor: the checkpoint's WAL mark is the id of the
  // first batch it does NOT cover, so replay must start exactly there.
  options.min_generation = info.sequence;
  options.first_batch = info.wal_mark;
  BOXES_RETURN_IF_ERROR(ReplayScannedWal(cache, scheme, result.scan, options,
                                         &result.replay, metrics, observer));
  // Batch ids must stay monotonic across the crash: the mark floors them,
  // and any id the scan saw (even torn or beyond a restore bound) is
  // burned.
  result.next_batch_id =
      std::max(info.wal_mark, result.scan.max_batch_id + 1);
  return result;
}

WalPipeline::WalPipeline(PageCache* cache, LabelingScheme* scheme,
                         WalPipelineOptions options)
    : cache_(cache),
      scheme_(scheme),
      options_(options),
      writer_(cache) {}

Status WalPipeline::Init() {
  BOXES_ASSIGN_OR_RETURN(const SuperblockInfo info, LoadSuperblock(cache_));
  writer_.set_generation(info.sequence);
  // A database that lived before (pool pages from a clean prior session,
  // stale batches a checkpoint superseded) still carries log pages — and
  // log pages are never freed to the allocator, so an open path that
  // ignored them would leak them for the life of the file. Adopt whatever
  // the scan finds: the next truncation retires it all into the recycle
  // pool, which is safe because truncation only runs after a checkpoint
  // covering every prior batch has committed. The scan's max id also
  // floors the next batch id — reusing a burned id under the current
  // generation would make two different batches collide at replay.
  BOXES_ASSIGN_OR_RETURN(const WalScan scan, ScanWal(cache_->store()));
  writer_.AdoptPages(scan);
  writer_.set_next_batch_id(std::max(info.wal_mark, scan.max_batch_id + 1));
  writer_.SetMetrics(scheme_->metrics());
  fencing_token_ = info.fencing_token;
  // The generation filter anchors on the superblock's sequence number, so
  // the superblock must be on the device before the first append is — on a
  // fresh database page 0 is still only dirty in the cache.
  BOXES_RETURN_IF_ERROR(cache_->FlushAll());
  return cache_->store()->Sync();
}

Status WalPipeline::InitFromRecovery(const WalRecoveryResult& recovered) {
  writer_.set_generation(recovered.generation);
  writer_.set_next_batch_id(recovered.next_batch_id);
  writer_.AdoptPages(recovered.scan);
  writer_.SetMetrics(scheme_->metrics());
  BOXES_ASSIGN_OR_RETURN(const SuperblockInfo info, LoadSuperblock(cache_));
  fencing_token_ = info.fencing_token;
  return Status::OK();
}

void WalPipeline::Attach(UpdateBuffer* buffer) {
  buffer->SetDurabilityHook([this](const std::vector<BatchOp>& ops) {
    // AppendBatch consumes the id only on success, so it must be read
    // before the append to know what the batch was logged as.
    const uint64_t batch_id = writer_.next_batch_id();
    BOXES_RETURN_IF_ERROR(writer_.AppendBatch(ops));
    if (ship_hook_) {
      // Fired between "durable on the primary" and "applied": the shipped
      // stream is exactly what recovery would replay, so a standby that
      // applies it converges on the same structure.
      ship_hook_(writer_.generation(), batch_id, ops);
    }
    return Status::OK();
  });
  buffer->SetCommitHook([this] { return OnFlushCommitted(); });
}

Status WalPipeline::OnFlushCommitted() {
  ++flushes_since_checkpoint_;
  // interval 0: never checkpoint automatically (tests and PITR tooling
  // drive CheckpointNow themselves).
  if (options_.checkpoint_interval == 0 ||
      flushes_since_checkpoint_ < options_.checkpoint_interval) {
    return Status::OK();
  }
  return CheckpointNow();
}

Status WalPipeline::CheckpointNow() {
  BOXES_ASSIGN_OR_RETURN(const SuperblockInfo before, LoadSuperblock(cache_));
  StatusOr<PageId> head =
      checkpoint_builder_ ? checkpoint_builder_() : scheme_->Checkpoint();
  if (!head.ok()) {
    return head.status();
  }
  // The new slot's WAL mark = the next unassigned batch id: this
  // checkpoint covers every batch below it, which is exactly what the
  // recovery generation filter expresses from the other side. If the
  // commit faults partway, nothing below is freed — the old checkpoint,
  // its chain, and the whole log survive, and the counter stays over the
  // interval so the next flush retries. (The half-built chain leaks its
  // pages until then; crash recovery never sees them as anything.)
  BOXES_RETURN_IF_ERROR(CommitCheckpoint(cache_, *head,
                                         writer_.next_batch_id(),
                                         fencing_token_));
  flushes_since_checkpoint_ = 0;
  if (before.head != kInvalidPageId) {
    BOXES_RETURN_IF_ERROR(FreeMetadataChain(cache_, before.head));
  }
  // Truncation: every logged batch is now inside the checkpoint (or
  // stale); reclaim the pages and append under the new sequence.
  return writer_.StartGeneration(before.sequence + 1);
}

}  // namespace boxes
