# Empty compiler generated dependencies file for bench_subtree_bulk.
# This may be replaced when dependencies are built.
