#include "storage/page_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/request_context.h"

namespace boxes {

namespace {

/// Per-thread phase stack entry. An entry exists only while some ScopedPhase
/// for that cache is active on this thread, so stale cache addresses cannot
/// linger past the guard's scope.
struct TlsPhaseEntry {
  const PageCache* cache;
  IoPhase phase;
};

thread_local std::vector<TlsPhaseEntry> tls_phases;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

PageCache::PageCache(PageStore* store, PageCacheOptions options)
    : store_(store), options_(options) {
  num_shards_ = RoundUpPow2(std::max<size_t>(1, options_.shards));
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

PageCache::~PageCache() {
  // Best-effort flush; errors here cannot be reported.
  (void)FlushAll();
}

PageCache::Shard& PageCache::ShardFor(PageId id) const {
  // Fibonacci mix so sequential page ids spread over shards even when the
  // shard count divides the id stride.
  const uint64_t mixed = static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ull;
  return shards_[(mixed >> 32) & (num_shards_ - 1)];
}

std::unique_lock<std::mutex> PageCache::LockShard(Shard* shard) {
  std::unique_lock<std::mutex> lock(shard->mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard_contention_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

IoPhase PageCache::current_phase() const {
  for (const TlsPhaseEntry& entry : tls_phases) {
    if (entry.cache == this) {
      return entry.phase;
    }
  }
  return IoPhase::kOther;
}

IoPhase PageCache::SetPhase(IoPhase phase) {
  for (size_t i = 0; i < tls_phases.size(); ++i) {
    if (tls_phases[i].cache == this) {
      const IoPhase previous = tls_phases[i].phase;
      if (phase == IoPhase::kOther) {
        tls_phases.erase(tls_phases.begin() + static_cast<ptrdiff_t>(i));
      } else {
        tls_phases[i].phase = phase;
      }
      return previous;
    }
  }
  if (phase != IoPhase::kOther) {
    tls_phases.push_back(TlsPhaseEntry{this, phase});
  }
  return IoPhase::kOther;
}

IoStats PageCache::stats() const {
  IoStats out;
  out.reads = stats_.reads.load(std::memory_order_relaxed);
  out.writes = stats_.writes.load(std::memory_order_relaxed);
  return out;
}

PhaseIoTable PageCache::phase_stats() const {
  PhaseIoTable out{};
  for (size_t i = 0; i < kNumIoPhases; ++i) {
    out[i].reads = phase_stats_[i].reads.load(std::memory_order_relaxed);
    out[i].writes = phase_stats_[i].writes.load(std::memory_order_relaxed);
  }
  return out;
}

IoStats PageCache::phase_stats(IoPhase phase) const {
  const AtomicIo& io = phase_stats_[static_cast<size_t>(phase)];
  IoStats out;
  out.reads = io.reads.load(std::memory_order_relaxed);
  out.writes = io.writes.load(std::memory_order_relaxed);
  return out;
}

void PageCache::ResetStats() {
  stats_.reads.store(0, std::memory_order_relaxed);
  stats_.writes.store(0, std::memory_order_relaxed);
  for (AtomicIo& io : phase_stats_) {
    io.reads.store(0, std::memory_order_relaxed);
    io.writes.store(0, std::memory_order_relaxed);
  }
}

void PageCache::BeginOp() {
  BOXES_CHECK(!op_active_.exchange(true, std::memory_order_acq_rel));
  for (size_t s = 0; s < num_shards_; ++s) {
    std::unique_lock<std::mutex> lock = LockShard(&shards_[s]);
    for (auto& [id, frame] : shards_[s].frames) {
      (void)id;
      frame.touched_this_op = false;
    }
  }
  // With retention, trim to capacity now: every frame is untouched, so no
  // caller-held pointer can be invalidated. No insertion follows, so no
  // headroom is needed (trim to exactly capacity_pages).
  BOXES_CHECK_OK(EvictIfNeeded(/*headroom=*/0));
}

Status PageCache::EndOp() {
  BOXES_CHECK(op_active_.exchange(false, std::memory_order_acq_rel));
  return FlushAll();
}

StatusOr<uint8_t*> PageCache::GetPage(PageId id) {
  return GetInternal(id, /*for_write=*/false);
}

StatusOr<uint8_t*> PageCache::GetPageForWrite(PageId id) {
  return GetInternal(id, /*for_write=*/true);
}

StatusOr<uint8_t*> PageCache::GetInternal(PageId id, bool for_write) {
  Shard& shard = ShardFor(id);
  {
    std::unique_lock<std::mutex> lock = LockShard(&shard);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame& frame = it->second;
      Touch(id, &frame);
      if (for_write) {
        MarkDirty(&frame);
      }
      return frame.data.get();
    }
  }
  // Miss: real I/O is about to happen on the caller's behalf, so this is
  // where the request's deadline and I/O allowance are enforced (DESIGN.md
  // §4j). Hits above never consult the context — resident pages stay free
  // for even an expired request, which is what lets degraded reads answer
  // from cache after the budget runs out.
  if (RequestContext* context = RequestContext::Current()) {
    BOXES_RETURN_IF_ERROR(context->ChargeIo("page-cache miss"));
  }
  // Eviction only ever fires inside an active (writer-exclusive)
  // operation, so it cannot invalidate concurrent readers' frames.
  BOXES_RETURN_IF_ERROR(EvictIfNeeded(/*headroom=*/1));
  // Read from the store with no shard lock held: a miss may block in the
  // store (real or simulated I/O latency) and must not stall hits on other
  // pages of the same shard.
  auto data = std::make_unique<uint8_t[]>(page_size());
  Status read = store_->Read(id, data.get());
  if (!read.ok()) {
    if (read.code() == StatusCode::kCorruption) {
      // Tag the failure with which operation phase was reading; the page
      // id is already in the store's message.
      return Status::Corruption(read.message() + std::string(" (io phase: ") +
                                IoPhaseName(current_phase()) + ")");
    }
    return read;
  }
  std::unique_lock<std::mutex> lock = LockShard(&shard);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    // We are the installing thread: charge the read. A concurrent reader
    // that lost this race used the already-installed frame and its store
    // read is discarded uncounted, keeping reads == distinct frame loads.
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    phase_stats_[static_cast<size_t>(current_phase())].reads.fetch_add(
        1, std::memory_order_relaxed);
    Frame frame;
    frame.data = std::move(data);
    it = shard.frames.emplace(id, std::move(frame)).first;
    total_frames_.fetch_add(1, std::memory_order_acq_rel);
  }
  Frame& frame = it->second;
  Touch(id, &frame);
  if (for_write) {
    MarkDirty(&frame);
  }
  return frame.data.get();
}

StatusOr<PageId> PageCache::AllocatePage(uint8_t** data) {
  StatusOr<PageId> id = store_->Allocate();
  if (!id.ok()) {
    return id.status();
  }
  BOXES_RETURN_IF_ERROR(EvictIfNeeded(/*headroom=*/1));
  Frame frame;
  frame.data = std::make_unique<uint8_t[]>(page_size());
  std::memset(frame.data.get(), 0, page_size());
  Shard& shard = ShardFor(*id);
  std::unique_lock<std::mutex> lock = LockShard(&shard);
  auto it = shard.frames.emplace(*id, std::move(frame)).first;
  total_frames_.fetch_add(1, std::memory_order_acq_rel);
  MarkDirty(&it->second);
  Touch(*id, &it->second);
  *data = it->second.data.get();
  return *id;
}

Status PageCache::FreePage(PageId id) {
  Shard& shard = ShardFor(id);
  std::list<PageId>::iterator lru_pos;
  bool was_in_lru = false;
  {
    std::unique_lock<std::mutex> lock = LockShard(&shard);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      was_in_lru = it->second.in_lru;
      lru_pos = it->second.lru_pos;
      shard.frames.erase(it);
      total_frames_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  if (was_in_lru) {
    std::lock_guard<std::mutex> lock(lru_mu_);
    lru_.erase(lru_pos);
  }
  return store_->Free(id);
}

Status PageCache::FlushAll() {
  // Flush dirty frames in a deterministic order for reproducibility.
  std::vector<PageId> ids;
  ids.reserve(total_frames_.load(std::memory_order_acquire));
  for (size_t s = 0; s < num_shards_; ++s) {
    std::unique_lock<std::mutex> lock = LockShard(&shards_[s]);
    for (auto& [id, frame] : shards_[s].frames) {
      (void)frame;
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  for (PageId id : ids) {
    Shard& shard = ShardFor(id);
    std::unique_lock<std::mutex> lock = LockShard(&shard);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      BOXES_RETURN_IF_ERROR(FlushFrameLocked(id, &it->second));
    }
  }
  if (!options_.retain_across_ops) {
    size_t dropped = 0;
    for (size_t s = 0; s < num_shards_; ++s) {
      std::unique_lock<std::mutex> lock = LockShard(&shards_[s]);
      dropped += shards_[s].frames.size();
      shards_[s].frames.clear();
    }
    total_frames_.fetch_sub(dropped, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(lru_mu_);
    lru_.clear();
  }
  return Status::OK();
}

Status PageCache::FlushFrameLocked(PageId id, Frame* frame) {
  if (!frame->dirty) {
    return Status::OK();
  }
  BOXES_RETURN_IF_ERROR(store_->Write(id, frame->data.get()));
  frame->dirty = false;
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  phase_stats_[static_cast<size_t>(frame->dirty_phase)].writes.fetch_add(
      1, std::memory_order_relaxed);
  frame->dirty_phase = IoPhase::kOther;
  return Status::OK();
}

Status PageCache::EvictIfNeeded(size_t headroom) {
  if (!options_.retain_across_ops) {
    return Status::OK();  // unbounded working set within an operation
  }
  if (!op_active()) {
    // Without operation brackets there is no safe point to invalidate the
    // raw pointers callers hold; defer eviction to the next BeginOp.
    return Status::OK();
  }
  if (resident_pages() + headroom <= options_.capacity_pages) {
    return Status::OK();
  }
  // Snapshot the LRU order (least recent first), then visit shards with no
  // LRU lock held — the shard-then-LRU lock order is never inverted.
  std::vector<PageId> candidates;
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    candidates.assign(lru_.rbegin(), lru_.rend());
  }
  for (PageId victim : candidates) {
    if (resident_pages() + headroom <= options_.capacity_pages) {
      break;
    }
    Shard& shard = ShardFor(victim);
    std::list<PageId>::iterator lru_pos;
    bool evicted = false;
    {
      std::unique_lock<std::mutex> lock = LockShard(&shard);
      auto it = shard.frames.find(victim);
      if (it == shard.frames.end()) {
        continue;  // already gone
      }
      // Frames of the current operation's working set stay pinned: callers
      // hold raw pointers to them until EndOp.
      if (it->second.touched_this_op) {
        continue;
      }
      BOXES_RETURN_IF_ERROR(FlushFrameLocked(victim, &it->second));
      lru_pos = it->second.lru_pos;
      evicted = it->second.in_lru;
      shard.frames.erase(it);
      total_frames_.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (evicted) {
      std::lock_guard<std::mutex> lock(lru_mu_);
      lru_.erase(lru_pos);
    }
  }
  // Everything still resident is pinned; allow temporary overflow.
  return Status::OK();
}

void PageCache::Touch(PageId id, Frame* frame) {
  const bool first_touch_this_op = !frame->touched_this_op;
  frame->touched_this_op = true;
  if (!options_.retain_across_ops) {
    return;
  }
  // Repeat touches of an already-listed frame only *reorder* the LRU, and
  // under concurrent readers the single lru_mu_ — not the sharded page
  // table — is what every hot-page hit would serialize on. Sample those
  // promotions (1 in kLruTouchSamplePeriod per thread); skipping one can
  // only leave a popular frame listed slightly staler than exact LRU.
  // First touches always promote: frames must enter the list, and the first
  // touch of each frame per operation refreshes its recency before the next
  // BeginOp trim, so single-threaded eviction order stays exact.
  if (!first_touch_this_op && frame->in_lru) {
    thread_local uint64_t touch_tick = 0;
    if ((++touch_tick & (kLruTouchSamplePeriod - 1)) != 0) {
      lru_sampled_skips_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(lru_mu_);
  if (frame->in_lru) {
    lru_.erase(frame->lru_pos);
  }
  lru_.push_front(id);
  frame->lru_pos = lru_.begin();
  frame->in_lru = true;
}

void PageCache::MarkDirty(Frame* frame) {
  if (!frame->dirty) {
    frame->dirty = true;
    frame->dirty_phase = current_phase();
  }
}

Status PageCache::last_unwind_error() const {
  std::lock_guard<std::mutex> lock(unwind_mu_);
  return last_unwind_error_;
}

void PageCache::ClearUnwindError() {
  std::lock_guard<std::mutex> lock(unwind_mu_);
  last_unwind_error_ = Status::OK();
}

void PageCache::RecordUnwindError(const Status& status) {
  std::fprintf(stderr, "boxes: error during IoScope unwinding: %s\n",
               status.ToString().c_str());
  std::lock_guard<std::mutex> lock(unwind_mu_);
  if (last_unwind_error_.ok()) {
    last_unwind_error_ = status;
  }
}

}  // namespace boxes
