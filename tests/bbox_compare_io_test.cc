// Paper §5 claim: "comparison of two labels ... can be performed in a
// B-BOX with potentially much fewer I/Os, especially if the two labels
// being compared are close to each other in document order" — because the
// parallel bottom-up walk stops at the lowest common ancestor instead of
// reconstructing both full labels.

#include <vector>

#include "core/bbox/bbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::TestDb;

class BBoxCompareIoTest : public ::testing::Test {
 protected:
  BBoxCompareIoTest() : db_(1024), bbox_(&db_.cache) {
    const xml::Document doc = xml::MakeTwoLevelDocument(30000);
    Status status = bbox_.BulkLoad(doc, &lids_);
    BOXES_CHECK_OK(status);
    BOXES_CHECK(bbox_.height() >= 3);
    BOXES_CHECK_OK(db_.cache.FlushAll());
  }

  uint64_t MeasureCompare(Lid a, Lid b) {
    db_.cache.ResetStats();
    IoScope scope(&db_.cache);
    StatusOr<int> cmp = bbox_.Compare(a, b);
    BOXES_CHECK(cmp.ok());
    return db_.cache.stats().reads;
  }

  TestDb db_;
  BBox bbox_;
  std::vector<NewElement> lids_;
};

TEST_F(BBoxCompareIoTest, SameLeafComparisonStopsAtTheLeaf) {
  // Adjacent siblings share a leaf (and often a LIDF page): at most
  // 2 LIDF reads + 1 shared leaf read, far below a root walk.
  const uint64_t near = MeasureCompare(lids_[1000].start, lids_[1001].start);
  EXPECT_LE(near, 3u);
}

TEST_F(BBoxCompareIoTest, NearbyComparisonBeatsFullLookups) {
  // Records a few leaves apart meet below the root.
  const uint64_t near = MeasureCompare(lids_[1000].start, lids_[1002].start);
  // Distant records walk to the root on both sides.
  const uint64_t far =
      MeasureCompare(lids_[10].start, lids_[29000].start);
  EXPECT_LT(near, far);
  // Two independent full lookups would cost 2 * (1 + height) reads; the
  // LCA walk never exceeds that and the distant case matches it minus the
  // shared root read.
  EXPECT_LE(far, 2u * (1 + bbox_.height()));
}

TEST_F(BBoxCompareIoTest, ComparisonAgreesWithLookupOrderEverywhere) {
  const size_t step = lids_.size() / 17;
  for (size_t i = 0; i + step < lids_.size(); i += step) {
    StatusOr<int> cmp = bbox_.Compare(lids_[i].start, lids_[i + step].start);
    ASSERT_TRUE(cmp.ok());
    EXPECT_LT(*cmp, 0);
    StatusOr<int> reverse =
        bbox_.Compare(lids_[i + step].start, lids_[i].start);
    ASSERT_TRUE(reverse.ok());
    EXPECT_GT(*reverse, 0);
  }
}

}  // namespace
}  // namespace boxes
