#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace boxes {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool IsRetryableCode(StatusCode code) {
  return code == StatusCode::kIoError ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

bool IsDataUnavailableCode(StatusCode code) {
  return code == StatusCode::kIoError ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kCorruption ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kUnavailable;
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

namespace internal_status {

void DieOnBadStatusAccess(const Status& s) {
  std::fprintf(stderr, "StatusOr value accessed on error status: %s\n",
               s.ToString().c_str());
  std::abort();
}

void CheckFailed(const char* file, int line, const char* what) {
  std::fprintf(stderr, "BOXES_CHECK failed at %s:%d: %s\n", file, line, what);
  std::abort();
}

}  // namespace internal_status
}  // namespace boxes
