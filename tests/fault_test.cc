// Failure injection: every labeling operation must surface storage errors
// as Status (never crash, never loop), and the structures must keep
// working once the fault heals — provided no mutation was torn.

#include <memory>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/generators.h"

namespace boxes {
namespace {

struct FaultRig {
  FaultRig() : base(1024), faulty(&base), cache(&faulty) {}

  MemoryPageStore base;
  FaultInjectionPageStore faulty;
  PageCache cache;
};

TEST(FaultTest, LookupErrorsPropagate) {
  FaultRig rig;
  WBox wbox(&rig.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK(rig.cache.FlushAll());

  rig.faulty.FailAfter(0);
  EXPECT_EQ(wbox.Lookup(lids[100].start).status().code(),
            StatusCode::kIoError);
  rig.faulty.Heal();
  EXPECT_TRUE(wbox.Lookup(lids[100].start).ok());
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(FaultTest, BBoxLookupWalkSurvivesMidPathFault) {
  FaultRig rig;
  BBox bbox(&rig.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(2000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  ASSERT_OK(rig.cache.FlushAll());
  ASSERT_GE(bbox.height(), 2u);

  // Fail on the second page access: the LIDF deref succeeds, the upward
  // walk fails.
  rig.faulty.FailAfter(1);
  EXPECT_EQ(bbox.Lookup(lids[1500].start).status().code(),
            StatusCode::kIoError);
  rig.faulty.Heal();
  EXPECT_TRUE(bbox.Lookup(lids[1500].start).ok());
}

TEST(FaultTest, ReadOnlyFaultsNeverCorrupt) {
  // Faults injected only while performing reads (lookups) must leave the
  // structure bit-identical: verify invariants after healing.
  FaultRig rig;
  WBoxOptions options;
  options.pair_mode = true;
  WBox wbox(&rig.cache, options);
  const xml::Document doc = xml::MakeRandomDocument(1000, 5, 3);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK(rig.cache.FlushAll());

  for (uint64_t budget = 0; budget < 4; ++budget) {
    rig.faulty.FailAfter(budget);
    (void)wbox.LookupElement(lids[500].start, lids[500].end);
    (void)wbox.Compare(lids[10].start, lids[900].end);
    rig.faulty.Heal();
  }
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_TRUE(testing::LabelsStrictlyIncreasing(
      &wbox, testing::TagOrderLids(doc, lids)));
}

TEST(FaultTest, BulkLoadFailsCleanly) {
  FaultRig rig;
  rig.faulty.FailAfter(5);
  BBox bbox(&rig.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(5000);
  // Bulk loading itself only allocates fresh frames; the injected write
  // faults surface at flush time.
  rig.cache.BeginOp();
  const Status load = bbox.BulkLoad(doc, nullptr);
  const Status flush = rig.cache.EndOp();
  EXPECT_TRUE(!load.ok() || !flush.ok());
  EXPECT_EQ((!load.ok() ? load : flush).code(), StatusCode::kIoError);
}

TEST(FaultTest, MutationErrorsPropagateAcrossSchemes) {
  // Every scheme must return (not crash) when writes start failing at an
  // arbitrary point during mutations. Consistency after a torn write is
  // NOT guaranteed (no WAL in this design); only error propagation is.
  for (int scheme_kind = 0; scheme_kind < 3; ++scheme_kind) {
    for (uint64_t budget : {0ull, 1ull, 3ull, 7ull, 15ull}) {
      FaultRig rig;
      std::unique_ptr<LabelingScheme> scheme;
      switch (scheme_kind) {
        case 0:
          scheme = std::make_unique<WBox>(&rig.cache);
          break;
        case 1:
          scheme = std::make_unique<BBox>(&rig.cache);
          break;
        default:
          scheme = std::make_unique<NaiveScheme>(
              &rig.cache, NaiveOptions{.gap_bits = 4, .count_bits = 20});
          break;
      }
      const xml::Document doc = xml::MakeTwoLevelDocument(300);
      std::vector<NewElement> lids;
      ASSERT_OK(scheme->BulkLoad(doc, &lids));
      ASSERT_OK(rig.cache.FlushAll());

      rig.faulty.FailAfter(budget);
      Status status = Status::OK();
      // Hammer one spot until the injected fault hits; operation brackets
      // force real page traffic every iteration.
      for (int i = 0; i < 50 && status.ok(); ++i) {
        rig.cache.BeginOp();
        status = scheme->InsertElementBefore(lids[150].start).status();
        const Status flush = rig.cache.EndOp();
        if (status.ok()) {
          status = flush;
        }
      }
      EXPECT_EQ(status.code(), StatusCode::kIoError)
          << "scheme " << scheme->name() << " budget " << budget;
    }
  }
}

TEST(FaultTest, IoScopeUnwindRecordsFlushErrorWithoutAborting) {
  // Regression: ~IoScope ran BOXES_CHECK_OK on the implicit EndOp, so a
  // flush failure during scope exit (e.g. while unwinding an
  // already-failing operation) aborted the whole process.
  FaultRig rig;
  PageId page = kInvalidPageId;
  {
    uint8_t* data = nullptr;
    ASSERT_OK_AND_ASSIGN(page, rig.cache.AllocatePage(&data));
  }
  ASSERT_OK(rig.cache.FlushAll());
  EXPECT_OK(rig.cache.last_unwind_error());

  {
    IoScope scope(&rig.cache);
    ASSERT_OK_AND_ASSIGN(uint8_t* data, rig.cache.GetPageForWrite(page));
    data[0] = 0x5a;
    rig.faulty.FailAfter(0);  // the implicit flush at scope exit fails
  }
  // Execution continues; the swallowed error is sticky and queryable.
  EXPECT_FALSE(rig.cache.op_active());
  EXPECT_EQ(rig.cache.last_unwind_error().code(), StatusCode::kIoError);

  // A later unwind error does not overwrite the first one...
  const Status first = rig.cache.last_unwind_error();
  {
    IoScope scope(&rig.cache);
    ASSERT_OK_AND_ASSIGN(uint8_t* data, rig.cache.GetPageForWrite(page));
    data[1] = 0x5b;
  }
  EXPECT_EQ(rig.cache.last_unwind_error().ToString(), first.ToString());

  // ...and the cache recovers once the fault heals.
  rig.faulty.Heal();
  rig.cache.ClearUnwindError();
  EXPECT_OK(rig.cache.last_unwind_error());
  {
    IoScope scope(&rig.cache);
    ASSERT_OK_AND_ASSIGN(uint8_t* data, rig.cache.GetPageForWrite(page));
    data[0] = 0x5c;
  }
  EXPECT_OK(rig.cache.last_unwind_error());
}

TEST(FaultTest, IoScopeEndPropagatesFlushErrors) {
  // End() remains the error-propagating path for callers that check.
  FaultRig rig;
  PageId page = kInvalidPageId;
  {
    uint8_t* data = nullptr;
    ASSERT_OK_AND_ASSIGN(page, rig.cache.AllocatePage(&data));
  }
  ASSERT_OK(rig.cache.FlushAll());

  IoScope scope(&rig.cache);
  ASSERT_OK_AND_ASSIGN(uint8_t* data, rig.cache.GetPageForWrite(page));
  data[0] = 1;
  rig.faulty.FailAfter(0);
  EXPECT_EQ(scope.End().code(), StatusCode::kIoError);
  rig.faulty.Heal();
  // The destructor must not re-run EndOp after an explicit End().
}

}  // namespace
}  // namespace boxes
