file(REMOVE_RECURSE
  "CMakeFiles/bench_query_performance.dir/bench_query_performance.cc.o"
  "CMakeFiles/bench_query_performance.dir/bench_query_performance.cc.o.d"
  "bench_query_performance"
  "bench_query_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
