#ifndef BOXES_CORE_COMMON_UPDATE_BUFFER_H_
#define BOXES_CORE_COMMON_UPDATE_BUFFER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "util/status.h"

namespace boxes {

/// Configuration of an UpdateBuffer.
struct UpdateBufferOptions {
  /// Flush automatically once this many ops are pending. 1 degenerates to
  /// unbuffered operation (one epoch + one commit per op), which is what
  /// the batched-vs-unbatched differential tests exploit.
  size_t flush_threshold = 64;

  /// When false, only explicit Flush() calls apply the buffer (the caller
  /// owns the batching policy entirely).
  bool auto_flush = true;
};

/// The write-side group-commit pipeline (ROADMAP item 1; the buffered
/// updates of Ke Yi's dynamic-indexability line of work, adapted to
/// order-maintenance): absorbs insert/delete/subtree requests, and on
/// Flush() applies them as ONE batch —
///
///   * one EpochGuard write epoch for the whole batch, so concurrent
///     readers observe either the pre-batch or the post-batch state and
///     never a half-applied one;
///   * one locality-sorted ApplyBatch call, letting schemes reorder ops to
///     revisit hot blocks and coalesce relabel passes;
///   * one group-commit hook invocation — typically Checkpoint +
///     CommitCheckpoint — so the fdatasync cost of durability is paid once
///     per batch instead of once per op.
///
/// Enqueue methods return a Ticket; the op's assigned LIDs become readable
/// through Result(ticket) once its batch has flushed. Anchors must be LIDs
/// live at enqueue time that no earlier op of the same pending batch
/// deletes (the ApplyBatch contract).
///
/// Threading: the buffer is a single-writer object — enqueue and Flush
/// from one thread. Readers of the underlying scheme stay safe because the
/// batch applies under the scheme's EpochWriteLock.
class UpdateBuffer {
 public:
  using Ticket = uint64_t;

  /// Runs *before* the batch applies, with the batch already in its final
  /// apply order (the locality sort happens first, so the hook logs the
  /// exact order recovery will replay). This is the ack ⇒ durable point:
  /// append the batch to the op log and pay its one fdatasync here. On
  /// error the flush aborts with the pending set intact — nothing was
  /// applied, nothing was acknowledged, and the caller may retry Flush()
  /// once the fault clears.
  using DurabilityHook = std::function<Status(const std::vector<BatchOp>&)>;

  /// Runs inside the batch's write epoch, after every op applied. This is
  /// the group-commit point: make the batch durable here (one checkpoint
  /// commit) so readers can never observe committed-but-volatile state.
  using CommitHook = std::function<Status()>;

  /// Runs inside the batch's write epoch, after the commit hook, with the
  /// epoch number the batch is about to commit as. Concurrency tests use
  /// this to record oracle states while new readers are still locked out.
  using PostApplyHook = std::function<Status(uint64_t epoch)>;

  explicit UpdateBuffer(LabelingScheme* scheme,
                        UpdateBufferOptions options = {});

  /// Destroying a buffer that still holds unflushed ops silently loses
  /// work the caller enqueued (but was never promised durability for —
  /// only flushed ops are acknowledged). It is almost always a bug, so it
  /// fails loudly: abort in debug builds; in release builds, log to stderr
  /// and count the loss under "buffer.dropped_ops". A caller abandoning
  /// the work deliberately (the device is gone and Flush will never
  /// succeed) calls DiscardPending() first.
  ~UpdateBuffer();

  UpdateBuffer(const UpdateBuffer&) = delete;
  UpdateBuffer& operator=(const UpdateBuffer&) = delete;

  void SetDurabilityHook(DurabilityHook hook) {
    durability_hook_ = std::move(hook);
  }
  void SetCommitHook(CommitHook hook) { commit_hook_ = std::move(hook); }
  void SetPostApplyHook(PostApplyHook hook) {
    post_apply_hook_ = std::move(hook);
  }

  /// Buffered counterparts of the LabelingScheme mutations. Each may
  /// trigger an auto-flush (including of the op just enqueued).
  StatusOr<Ticket> InsertElementBefore(Lid before);
  StatusOr<Ticket> InsertFirstElement();
  StatusOr<Ticket> Delete(Lid lid);
  /// `subtree` (and `lids_out`, if given) must stay valid until the batch
  /// flushes.
  StatusOr<Ticket> InsertSubtreeBefore(Lid before,
                                       const xml::Document* subtree,
                                       std::vector<NewElement>* lids_out);
  StatusOr<Ticket> DeleteSubtree(Lid root_start, Lid root_end);

  /// Applies all pending ops as one batch (see class comment). No-op when
  /// nothing is pending. On error the in-memory structure may hold a
  /// prefix of the batch, but nothing was group-committed: recovery
  /// reopens at the previous checkpoint (the all-or-nothing contract the
  /// batch crash sweep asserts).
  Status Flush();

  /// LIDs assigned to the insert op behind `ticket`. FailedPrecondition
  /// until its batch has flushed.
  StatusOr<NewElement> Result(Ticket ticket) const;

  /// Abandons every pending op — the explicit escape hatch for a device
  /// that will never come back: after a persistent durability-hook
  /// failure, Flush leaves the set intact for retry, and destroying the
  /// buffer with it non-empty fails loudly (see the destructor). Calling
  /// this acknowledges the loss instead: the ops are counted under
  /// "buffer.dropped_ops", logged, and dropped; their tickets thereafter
  /// resolve to empty NewElements (kInvalidLid — they were never applied).
  /// Returns the number of ops discarded.
  size_t DiscardPending();

  size_t pending() const { return pending_.size(); }
  uint64_t batches_flushed() const { return batches_flushed_; }
  uint64_t ops_flushed() const { return ops_flushed_; }
  const UpdateBufferOptions& options() const { return options_; }

 private:
  StatusOr<Ticket> Enqueue(BatchOp op);
  Status MaybeAutoFlush();

  LabelingScheme* scheme_;  // not owned
  const UpdateBufferOptions options_;
  DurabilityHook durability_hook_;
  CommitHook commit_hook_;
  PostApplyHook post_apply_hook_;

  std::vector<BatchOp> pending_;
  std::vector<Ticket> pending_tickets_;
  /// Results of flushed insert ops, indexed by ticket. kInvalidLid slots
  /// mark unflushed or non-insert tickets.
  std::vector<NewElement> results_;
  uint64_t batches_flushed_ = 0;
  uint64_t ops_flushed_ = 0;
};

}  // namespace boxes

#endif  // BOXES_CORE_COMMON_UPDATE_BUFFER_H_
