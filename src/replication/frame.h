#ifndef BOXES_REPLICATION_FRAME_H_
#define BOXES_REPLICATION_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace boxes::replication {

/// One shipped WAL batch on the wire (DESIGN.md §4k). The payload is the
/// canonical CRC32C-framed record stream from storage/wal.h — the same
/// bytes the primary paged onto its own device — so a standby that decodes
/// and replays a frame reproduces the primary's apply order exactly.
///
/// Frame layout:
///   [0..3]   magic "BSHP"
///   [4..11]  fencing token of the shipping primary (see
///            standby_applier.h — a frame stamped with a token below the
///            receiver's is a zombie's and is rejected)
///   [12..19] WAL generation the batch was appended under
///   [20..27] batch id
///   [28..31] op count
///   [32..39] ship_micros: the sender's steady-clock microseconds at ship
///            time; the receiver's clock minus this is the frame's age
///            (repl.lag_us). Only meaningful in-process — which is what
///            the transport is.
///   [40..43] payload length
///   [44..47] CRC32C of the payload
///   [48..51] CRC32C of header bytes [0..47]
///   [52..]   payload (WAL record stream)
/// A frame torn at any byte fails one of the CRCs and is dropped whole;
/// the gap it leaves is healed by catch-up, exactly like a dropped frame.
inline constexpr uint32_t kShipFrameMagic = 0x50485342u;  // "BSHP"
inline constexpr size_t kShipFrameHeaderSize = 52;

struct ShipFrame {
  uint64_t fencing_token = 0;
  uint64_t generation = 0;
  uint64_t batch_id = 0;
  uint32_t op_count = 0;
  uint64_t ship_micros = 0;
  std::vector<uint8_t> payload;
};

/// Serializes `frame` (header CRCs computed here).
std::vector<uint8_t> EncodeShipFrame(const ShipFrame& frame);

/// Decodes `bytes` into `out`; false on any truncation, magic, or CRC
/// violation (the torn-frame path).
bool DecodeShipFrame(const std::vector<uint8_t>& bytes, ShipFrame* out);

}  // namespace boxes::replication

#endif  // BOXES_REPLICATION_FRAME_H_
