#ifndef BOXES_UTIL_REQUEST_CONTEXT_H_
#define BOXES_UTIL_REQUEST_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>

#include "util/status.h"

namespace boxes {

/// Monotonic wall clock in microseconds (steady_clock). The zero point is
/// arbitrary; only differences are meaningful.
uint64_t SteadyNowMicros();

/// Per-request lifetime budget (DESIGN.md §4j): an absolute deadline on a
/// monotonic microsecond clock plus an optional I/O cost budget. A context
/// is bound to the calling thread with ScopedRequestContext and consulted
/// at the layer boundaries where a request turns into real work:
///
///   * LabelingScheme::LookupShared / OrdinalLookupShared check it on
///     entry, so an already-expired request never takes a read ticket.
///   * PageCache checks it on every read *miss* — the edge where a lookup
///     becomes device I/O — and charges one unit of the I/O budget there.
///     Cache hits are never charged or blocked: once the bytes are
///     resident, serving them costs (almost) nothing.
///   * RetryingPageStore refuses to start a backoff sleep the remaining
///     time budget cannot cover (see RetryingStoreOptions), so a retry
///     storm cannot pin a request past its deadline.
///   * AdmissionController bounds queue waits by the remaining budget.
///
/// Exhaustion of either budget surfaces as kDeadlineExceeded, which is
/// non-retryable (the allowance is spent; reissuing cannot help) but
/// data-unavailable (CachingLabelStore may still serve the cached,
/// possibly stale value — the fastest answer an out-of-time request can
/// get).
///
/// The clock is injectable for tests (virtual time); the default is
/// SteadyNowMicros. A context object is owned by one request on one
/// thread; it is not itself thread-safe.
class RequestContext {
 public:
  /// "No deadline" sentinel for deadline_us().
  static constexpr uint64_t kNoDeadline =
      std::numeric_limits<uint64_t>::max();
  /// "No budget" sentinel for io_budget().
  static constexpr uint64_t kNoIoBudget =
      std::numeric_limits<uint64_t>::max();

  /// An unbounded context (no deadline, no I/O budget).
  RequestContext() = default;

  /// A context whose deadline is `timeout_us` from now on `now_fn` (null =
  /// the steady clock).
  static RequestContext WithTimeout(
      uint64_t timeout_us, std::function<uint64_t()> now_fn = nullptr);

  /// Overrides the microsecond clock (tests inject virtual time). Null
  /// restores the steady clock.
  void set_now_fn(std::function<uint64_t()> now_fn) {
    now_fn_ = std::move(now_fn);
  }

  /// Sets an absolute deadline in this context's clock units.
  void set_deadline_us(uint64_t deadline_us) { deadline_us_ = deadline_us; }
  uint64_t deadline_us() const { return deadline_us_; }
  bool has_deadline() const { return deadline_us_ != kNoDeadline; }

  /// Caps the number of I/O units (page-cache miss reads) this request may
  /// consume. kNoIoBudget = unlimited.
  void set_io_budget(uint64_t ios) { io_budget_ = ios; }
  uint64_t io_budget() const { return io_budget_; }
  uint64_t ios_charged() const { return ios_charged_; }

  /// Current time on this context's clock.
  uint64_t now_us() const {
    return now_fn_ ? now_fn_() : SteadyNowMicros();
  }

  /// Time left before the deadline; 0 when expired, kNoDeadline when
  /// unbounded.
  uint64_t remaining_us() const;

  bool expired() const { return has_deadline() && remaining_us() == 0; }

  /// OK while both budgets have room; kDeadlineExceeded (tagged with
  /// `where`) once the deadline passed or the I/O budget is spent.
  Status Check(const char* where) const;

  /// Charges one I/O unit, failing with kDeadlineExceeded when either
  /// budget is exhausted *before* the charge (an already-overdrawn request
  /// must not issue further I/O).
  Status ChargeIo(const char* where);

  /// The context bound to the calling thread, or nullptr when the request
  /// is unbounded (no ScopedRequestContext active). Library layers treat
  /// nullptr as "no budget": the pre-request-context behavior.
  static RequestContext* Current();

  /// Remaining time budget of the calling thread's bound context;
  /// kNoDeadline when none is bound or it has no deadline. The single call
  /// hot paths need.
  static uint64_t CurrentRemainingUs();

 private:
  friend class ScopedRequestContext;

  uint64_t deadline_us_ = kNoDeadline;
  uint64_t io_budget_ = kNoIoBudget;
  uint64_t ios_charged_ = 0;
  std::function<uint64_t()> now_fn_;
};

/// Binds a RequestContext to the calling thread for its scope (nesting
/// restores the outer context on destruction) — the same TLS pattern as
/// ScopedPhase, so contexts thread through every layer without touching
/// signatures. Binding nullptr makes the scope explicitly unbounded.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(RequestContext* context);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext* previous_;
};

}  // namespace boxes

#endif  // BOXES_UTIL_REQUEST_CONTEXT_H_
