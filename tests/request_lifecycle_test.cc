// Request-lifecycle robustness (DESIGN.md §4j): the circuit breaker's
// state machine, admission control's shed-vs-queue boundaries, and
// RequestContext deadline/budget enforcement mid-retry and mid-walk.

#include <memory>
#include <thread>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/cachelog/caching_store.h"
#include "gtest/gtest.h"
#include "storage/circuit_breaker_store.h"
#include "storage/page_cache.h"
#include "storage/retrying_store.h"
#include "test_util.h"
#include "util/request_context.h"
#include "workload/admission.h"
#include "xml/generators.h"

namespace boxes {
namespace {

/// Fails the next `fail_next` operations with a configurable status, then
/// behaves like its MemoryPageStore base.
class FlakyStore : public PageStore {
 public:
  explicit FlakyStore(size_t page_size) : base_(page_size) {}

  void FailNext(uint64_t n, Status error) {
    fail_next_ = n;
    error_ = std::move(error);
  }

  size_t page_size() const override { return base_.page_size(); }
  StatusOr<PageId> Allocate() override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Allocate();
  }
  Status Free(PageId id) override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Free(id);
  }
  Status Read(PageId id, uint8_t* buf) override {
    ++reads_;
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Read(id, buf);
  }
  Status Write(PageId id, const uint8_t* buf) override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Write(id, buf);
  }
  Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix) override {
    return base_.WriteTorn(id, buf, prefix);
  }
  Status Sync() override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Sync();
  }
  Status CommitEpoch(uint64_t epoch) override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.CommitEpoch(epoch);
  }
  uint64_t allocated_pages() const override {
    return base_.allocated_pages();
  }
  uint64_t total_pages() const override { return base_.total_pages(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override {
    base_.SnapshotAllocator(total, free_pages);
  }
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override {
    return base_.RestoreAllocator(total, free_pages);
  }

  uint64_t reads() const { return reads_; }

 private:
  Status MaybeFail() {
    if (fail_next_ > 0) {
      --fail_next_;
      return error_;
    }
    return Status::OK();
  }

  MemoryPageStore base_;
  uint64_t fail_next_ = 0;
  uint64_t reads_ = 0;
  Status error_ = Status::IoError("flaky");
};

// ---------------------------------------------------------------------------
// Circuit breaker state machine

class BreakerTest : public ::testing::Test {
 protected:
  BreakerTest() : flaky_(256) {
    CircuitBreakerOptions options;
    options.window_ops = 8;
    options.min_ops = 4;
    options.failure_threshold = 0.5;
    options.open_cooldown_us = 1000;
    options.half_open_probes = 2;
    options.now_fn = [this] { return now_us_; };
    breaker_ = std::make_unique<CircuitBreakerPageStore>(&flaky_, options);
    PageId id = breaker_->Allocate().value();
    buf_.assign(256, 0xcd);
    EXPECT_OK(breaker_->Write(id, buf_.data()));
    id_ = id;
  }

  /// Drives consecutive failures through the breaker until it trips. The
  /// setup ops already occupy window slots as successes, so the exact trip
  /// point is a threshold computation, not a fixed count.
  void TripBreaker() {
    flaky_.FailNext(8, Status::IoError("device sick"));
    for (int i = 0;
         i < 8 && breaker_->state() != CircuitBreakerPageStore::State::kOpen;
         ++i) {
      EXPECT_EQ(breaker_->Read(id_, buf_.data()).code(),
                StatusCode::kIoError);
    }
    flaky_.FailNext(0, Status::OK());
    ASSERT_EQ(breaker_->state(), CircuitBreakerPageStore::State::kOpen);
  }

  FlakyStore flaky_;
  std::unique_ptr<CircuitBreakerPageStore> breaker_;
  PageId id_ = 0;
  std::vector<uint8_t> buf_;
  uint64_t now_us_ = 0;
};

TEST_F(BreakerTest, OpensAtFailureThreshold) {
  EXPECT_EQ(breaker_->state(), CircuitBreakerPageStore::State::kClosed);
  TripBreaker();
  EXPECT_EQ(breaker_->counters().opened.load(), 1u);
  EXPECT_GE(breaker_->counters().failures.load(), 2u);
}

TEST_F(BreakerTest, FastFailsWhileOpenWithoutTouchingDevice) {
  TripBreaker();
  const uint64_t reads_before = flaky_.reads();
  // The device is healthy again, but within the cooldown the breaker must
  // answer from its own state, without issuing I/O.
  const Status status = breaker_->Read(id_, buf_.data());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(flaky_.reads(), reads_before);
  EXPECT_GE(breaker_->counters().fast_fails.load(), 1u);
}

TEST_F(BreakerTest, ClosesAfterSuccessfulHalfOpenProbes) {
  TripBreaker();
  now_us_ += 2000;  // past the cooldown; next ops run as probes
  EXPECT_OK(breaker_->Read(id_, buf_.data()));
  EXPECT_EQ(breaker_->state(), CircuitBreakerPageStore::State::kHalfOpen);
  EXPECT_OK(breaker_->Read(id_, buf_.data()));
  EXPECT_EQ(breaker_->state(), CircuitBreakerPageStore::State::kClosed);
  EXPECT_EQ(breaker_->counters().closed.load(), 1u);
  // A freshly closed breaker starts with an empty window: one more
  // failure must not re-trip it.
  flaky_.FailNext(1, Status::IoError("blip"));
  EXPECT_EQ(breaker_->Read(id_, buf_.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(breaker_->state(), CircuitBreakerPageStore::State::kClosed);
}

TEST_F(BreakerTest, FailedProbeReopens) {
  TripBreaker();
  now_us_ += 2000;
  flaky_.FailNext(1, Status::IoError("still sick"));
  EXPECT_EQ(breaker_->Read(id_, buf_.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(breaker_->state(), CircuitBreakerPageStore::State::kOpen);
  EXPECT_EQ(breaker_->counters().opened.load(), 2u);
}

TEST_F(BreakerTest, DeadlineExceededDoesNotCountAgainstDeviceHealth) {
  // Requests running out of budget say nothing about the device; a wave
  // of impatient callers must not open the circuit.
  flaky_.FailNext(8, Status::DeadlineExceeded("caller out of budget"));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(breaker_->Read(id_, buf_.data()).code(),
              StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(breaker_->state(), CircuitBreakerPageStore::State::kClosed);
  EXPECT_EQ(breaker_->counters().failures.load(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control: shed-vs-queue boundaries

TEST(AdmissionTest, ShedsImmediatelyWhenQueueingDisabled) {
  AdmissionOptions options;
  options.per_doc_limit = 1;
  options.max_queue_depth = 0;
  AdmissionController admission(2, options);
  ASSERT_OK(admission.Admit(0));
  EXPECT_EQ(admission.Admit(0).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.counters().shed_queue_full.load(), 1u);
  // The sibling document has its own token pool.
  ASSERT_OK(admission.Admit(1));
  admission.Release(0);
  admission.Release(1);
  EXPECT_EQ(admission.global_active(), 0u);
}

TEST(AdmissionTest, QueueFullShedsWhileQueuedRequestIsStillServed) {
  AdmissionOptions options;
  options.per_doc_limit = 1;
  options.max_queue_depth = 1;
  options.max_queue_wait_us = 200'000;
  AdmissionController admission(1, options);
  ASSERT_OK(admission.Admit(0));  // holds the only token

  Status queued_status = Status::Internal("unset");
  std::thread waiter([&] {
    queued_status = admission.Admit(0);  // takes the single queue slot
    if (queued_status.ok()) {
      admission.Release(0);
    }
  });
  while (admission.waiting() == 0) {
    std::this_thread::yield();
  }
  // Queue at depth cap: the next request is shed outright...
  EXPECT_EQ(admission.Admit(0).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.counters().shed_queue_full.load(), 1u);
  // ...but the queued one gets the token as soon as it frees up.
  admission.Release(0);
  waiter.join();
  EXPECT_OK(queued_status);
  EXPECT_EQ(admission.counters().queued.load(), 1u);
  EXPECT_EQ(admission.global_active(), 0u);
}

TEST(AdmissionTest, BoundedWaitTimesOutAndSheds) {
  AdmissionOptions options;
  options.per_doc_limit = 1;
  options.max_queue_depth = 4;
  options.max_queue_wait_us = 1000;
  AdmissionController admission(1, options);
  ASSERT_OK(admission.Admit(0));
  // Nobody will release the token; the bounded wait must expire.
  EXPECT_EQ(admission.Admit(0).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.counters().shed_timeout.load(), 1u);
  EXPECT_EQ(admission.waiting(), 0u);
  admission.Release(0);
}

TEST(AdmissionTest, ExpiredRequestRejectedBeforeQueueing) {
  AdmissionController admission(1, {});
  uint64_t now = 1000;
  RequestContext context;
  context.set_now_fn([&now] { return now; });
  context.set_deadline_us(500);  // already past
  ScopedRequestContext bind(&context);
  EXPECT_EQ(admission.Admit(0).code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.counters().deadline_rejects.load(), 1u);
  EXPECT_EQ(admission.counters().admitted.load(), 0u);
}

TEST(AdmissionTest, RemainingBudgetCapsQueueWait) {
  AdmissionOptions options;
  options.per_doc_limit = 1;
  options.max_queue_depth = 4;
  options.max_queue_wait_us = 60'000'000;  // queue policy alone would hang
  AdmissionController admission(1, options);
  ASSERT_OK(admission.Admit(0));
  RequestContext context = RequestContext::WithTimeout(2000);
  ScopedRequestContext bind(&context);
  // The wait is capped by the request's ~2ms budget, and the verdict names
  // the deadline — the queue policy was not the binding constraint.
  EXPECT_EQ(admission.Admit(0).code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.counters().deadline_rejects.load(), 1u);
  admission.Release(0);
}

TEST(AdmissionTest, TicketReleasesOnScopeExit) {
  AdmissionController admission(1, {});
  {
    AdmissionTicket ticket(&admission, 0);
    ASSERT_TRUE(ticket.admitted());
    EXPECT_EQ(admission.global_active(), 1u);
  }
  EXPECT_EQ(admission.global_active(), 0u);
}

// ---------------------------------------------------------------------------
// Deadlines mid-retry and mid-walk

TEST(DeadlineTest, RetryRefusesBackoffTheBudgetCannotCover) {
  FlakyStore flaky(256);
  RetryingStoreOptions options;
  options.max_attempts = 6;
  options.initial_backoff_us = 1000;
  RetryingPageStore retrying(&flaky, options);
  const PageId id = retrying.Allocate().value();
  std::vector<uint8_t> buf(256, 0xee);
  ASSERT_OK(retrying.Write(id, buf.data()));

  flaky.FailNext(100, Status::IoError("storm"));
  const uint64_t attempts_before = retrying.counters().attempts.load();
  uint64_t now = 0;
  RequestContext context;
  context.set_now_fn([&now] { return now; });
  context.set_deadline_us(100);  // cannot cover even one ~1ms backoff
  ScopedRequestContext bind(&context);
  const Status status = retrying.Read(id, buf.data());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  // Exactly the first attempt ran: the retry layer refused to start a
  // backoff the budget could not cover, instead of sleeping into it.
  EXPECT_EQ(retrying.counters().attempts.load(), attempts_before + 1);
  EXPECT_EQ(retrying.counters().deadline_gave_up.load(), 1u);
  EXPECT_EQ(retrying.counters().retries.load(), 0u);
}

TEST(DeadlineTest, UnboundRequestRetriesThroughTheSameStorm) {
  FlakyStore flaky(256);
  RetryingStoreOptions options;
  options.max_attempts = 6;
  options.initial_backoff_us = 1000;
  RetryingPageStore retrying(&flaky, options);
  const PageId id = retrying.Allocate().value();
  std::vector<uint8_t> buf(256, 0xee);
  ASSERT_OK(retrying.Write(id, buf.data()));
  flaky.FailNext(3, Status::IoError("storm"));
  EXPECT_OK(retrying.Read(id, buf.data()));
  EXPECT_EQ(retrying.counters().recovered.load(), 1u);
}

/// Builds a multi-level B-BOX and returns the LIDs; `cache` must outlive
/// the scheme.
std::unique_ptr<BBox> MakeLoadedBBox(PageCache* cache,
                                     std::vector<NewElement>* lids) {
  auto scheme = std::make_unique<BBox>(cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(400);
  EXPECT_OK(scheme->BulkLoad(doc, lids));
  EXPECT_OK(cache->FlushAll());
  return scheme;
}

TEST(DeadlineTest, IoBudgetStopsBBoxWalkMidway) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  std::vector<NewElement> lids;
  std::unique_ptr<BBox> scheme = MakeLoadedBBox(&cache, &lids);
  ASSERT_GE(scheme->GetStats().value().height, 2u);
  ASSERT_OK(cache.FlushAll());  // GetStats warmed the cache; start cold

  RequestContext context;
  context.set_io_budget(1);  // the root read alone is allowed
  {
    ScopedRequestContext bind(&context);
    const Status status =
        scheme->Lookup(lids[lids.size() / 2].start).status();
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(context.ios_charged(), 1u);
  // The same walk, unbounded, succeeds — the abort was the budget's doing.
  EXPECT_OK(scheme->Lookup(lids[lids.size() / 2].start).status());
}

TEST(DeadlineTest, CacheHitsAreFreeUnderIoBudget) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  std::vector<NewElement> lids;
  std::unique_ptr<BBox> scheme = MakeLoadedBBox(&cache, &lids);
  // Warm the path, then look up again under a zero-I/O budget: hits are
  // never charged, so the request still gets its answer.
  ASSERT_OK(scheme->Lookup(lids[7].start).status());
  RequestContext context;
  context.set_io_budget(0);
  ScopedRequestContext bind(&context);
  EXPECT_OK(scheme->Lookup(lids[7].start).status());
  EXPECT_EQ(context.ios_charged(), 0u);
}

TEST(DeadlineTest, ExpiredRequestStopsLookupAtEntry) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  std::vector<NewElement> lids;
  std::unique_ptr<BBox> scheme = MakeLoadedBBox(&cache, &lids);
  uint64_t now = 10'000;
  RequestContext context;
  context.set_now_fn([&now] { return now; });
  context.set_deadline_us(5000);  // already past
  ScopedRequestContext bind(&context);
  const Status status = scheme->LookupShared(lids[3].start).status();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(context.ios_charged(), 0u);
}

TEST(DeadlineTest, OutOfBudgetRequestDegradesToCachedAnswer) {
  // The §4j contract end to end: an out-of-time request whose full lookup
  // is cut by the I/O budget still gets the cached, possibly stale answer
  // through the resilient serve path.
  MemoryPageStore store(512);
  PageCache cache(&store);
  std::vector<NewElement> lids;
  std::unique_ptr<BBox> scheme = MakeLoadedBBox(&cache, &lids);
  CachingLabelStore caching(scheme.get(), /*log_capacity=*/0);
  CachedLabelRef ref = caching.MakeRef(lids[5].start);
  ASSERT_OK(caching.Lookup(&ref).status());
  // A mutation invalidates the basic-mode cache; dropping the page cache
  // forces the full lookup back to I/O.
  ASSERT_OK(scheme->InsertElementBefore(lids[100].start).status());
  ASSERT_OK(cache.FlushAll());

  RequestContext context;
  context.set_io_budget(0);
  ScopedRequestContext bind(&context);
  ASSERT_OK_AND_ASSIGN(const ResilientLabel got,
                       caching.LookupResilient(&ref));
  EXPECT_TRUE(got.possibly_stale);
  EXPECT_EQ(caching.served_degraded(), 1u);
}

}  // namespace
}  // namespace boxes
