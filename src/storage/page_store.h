#ifndef BOXES_STORAGE_PAGE_STORE_H_
#define BOXES_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"

namespace boxes {

/// Identifier of a fixed-size block ("page") in a PageStore.
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = UINT64_MAX;

/// Default block size used throughout the paper's experiments (8 KB).
inline constexpr size_t kDefaultPageSize = 8192;

/// Abstraction of a block device: a growable array of fixed-size pages with
/// allocate/free/read/write. All BOX structures and the LIDF live on a
/// PageStore; the PageCache in front of it is what counts I/Os.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Size in bytes of every page.
  virtual size_t page_size() const = 0;

  /// Allocates a zeroed page and returns its id.
  virtual StatusOr<PageId> Allocate() = 0;

  /// Returns a page to the free list. The page id may be reused by a later
  /// Allocate().
  virtual Status Free(PageId id) = 0;

  /// Reads a full page into `buf` (page_size() bytes).
  virtual Status Read(PageId id, uint8_t* buf) = 0;

  /// Writes a full page from `buf` (page_size() bytes).
  virtual Status Write(PageId id, const uint8_t* buf) = 0;

  /// Fault-injection hook: persists only the first `prefix` bytes of the
  /// page image, simulating a write torn mid-flight by a crash. `prefix`
  /// is clamped to the size of the on-device image; file-backed stores tear
  /// the *physical* frame, so the page's stored checksum goes stale and the
  /// next Read reports Corruption. Stores without tearing support return
  /// Unimplemented so fault harnesses fail loudly instead of silently
  /// completing the write.
  virtual Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix);

  /// Writes a full page WITHOUT recording a rollback pre-image. For pages
  /// whose content lives outside checkpoint state — op-log pages
  /// (storage/wal.h): crash recovery must see their newest synced bytes,
  /// so the journal rollback that reverts every other post-checkpoint
  /// write to its epoch-start image must never touch them. The caller
  /// owns the proof that no committed checkpoint references the page (see
  /// unjournaled_floor). Default: a plain Write — stores without a
  /// rollback journal need no distinction.
  virtual Status WriteUnjournaled(PageId id, const uint8_t* buf) {
    return Write(id, buf);
  }

  /// First page id with no rollback pre-image recorded this epoch: pages
  /// at or above it were created after the last checkpoint commit, so no
  /// committed checkpoint references them and journal rollback never
  /// restores them. Only such pages (or pages kept permanently on the
  /// unjournaled side, like recycled op-log pages) may be written with
  /// WriteUnjournaled. 0 for stores without a journal (every page is
  /// safe).
  virtual PageId unjournaled_floor() const { return 0; }

  /// Makes all completed writes durable (fdatasync for file-backed stores;
  /// a no-op for in-memory ones). Checkpoint commit points call this before
  /// and after flipping the superblock commit record.
  virtual Status Sync() { return Status::OK(); }

  /// Notifies the store that the checkpoint with sequence number `epoch`
  /// just committed: pre-checkpoint page images no longer need to be
  /// preserved. File-backed stores truncate their overwrite journal and
  /// start protecting the new checkpoint's pages; the default is a no-op.
  virtual Status CommitEpoch(uint64_t epoch) {
    (void)epoch;
    return Status::OK();
  }

  /// Number of currently allocated (live) pages.
  virtual uint64_t allocated_pages() const = 0;

  /// Total pages ever created, including freed ones (device size).
  virtual uint64_t total_pages() const = 0;

  /// Snapshots the allocator: device size and the currently free page ids.
  /// Together with the data pages this fully describes the store, enabling
  /// checkpoint/reopen of file-backed databases.
  virtual void SnapshotAllocator(uint64_t* total,
                                 std::vector<PageId>* free_pages) const = 0;

  /// Restores allocator state captured by SnapshotAllocator. All pages
  /// outside `free_pages` (and below `total`) become live.
  virtual Status RestoreAllocator(uint64_t total,
                                  const std::vector<PageId>& free_pages) = 0;
};

/// In-memory page store; the default substrate for experiments. Simulates a
/// disk: pages are explicit, fixed-size, and only reachable through
/// Read/Write.
class MemoryPageStore : public PageStore {
 public:
  explicit MemoryPageStore(size_t page_size = kDefaultPageSize);

  MemoryPageStore(const MemoryPageStore&) = delete;
  MemoryPageStore& operator=(const MemoryPageStore&) = delete;

  size_t page_size() const override { return page_size_; }
  StatusOr<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix) override;
  Status Sync() override;
  uint64_t allocated_pages() const override { return allocated_; }
  uint64_t total_pages() const override { return pages_.size(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override;
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override;

  /// Sync() calls that found dirty pages (mirrors FilePageStore's
  /// fdatasync accounting so sync-count regression tests can run on the
  /// in-memory substrate too). Redundant barriers — Sync with nothing
  /// written since the previous Sync — are not counted, matching the
  /// file-backed store's skip.
  uint64_t sync_calls() const { return sync_calls_; }

 private:
  Status CheckId(PageId id) const;

  const size_t page_size_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  uint64_t allocated_ = 0;
  bool dirty_since_sync_ = false;
  uint64_t sync_calls_ = 0;
};

/// Configuration of LatencyPageStore: per-operation simulated device time.
struct LatencyPageStoreOptions {
  /// Blocking delay charged to every Read, in microseconds.
  uint64_t read_latency_us = 25;
  /// Blocking delay charged to every Write, in microseconds.
  uint64_t write_latency_us = 25;
};

/// Decorator that models device latency: every Read/Write blocks the calling
/// thread for a fixed delay before delegating. This turns an in-memory store
/// into an I/O-bound one, which is what makes concurrent-lookup scaling
/// observable — reader threads overlap their simulated seeks exactly the way
/// they would overlap real disk or SSD reads (DESIGN.md §4g). The delays
/// are atomics (adjustable at runtime, e.g. zero during bulk load); apart
/// from them the decorator is stateless, hence as thread-safe as the base.
class LatencyPageStore : public PageStore {
 public:
  LatencyPageStore(PageStore* base, LatencyPageStoreOptions options = {});

  LatencyPageStore(const LatencyPageStore&) = delete;
  LatencyPageStore& operator=(const LatencyPageStore&) = delete;

  size_t page_size() const override { return base_->page_size(); }
  StatusOr<PageId> Allocate() override { return base_->Allocate(); }
  Status Free(PageId id) override { return base_->Free(id); }
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  Status WriteUnjournaled(PageId id, const uint8_t* buf) override;
  PageId unjournaled_floor() const override {
    return base_->unjournaled_floor();
  }
  Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix) override {
    return base_->WriteTorn(id, buf, prefix);
  }
  Status Sync() override { return base_->Sync(); }
  Status CommitEpoch(uint64_t epoch) override {
    return base_->CommitEpoch(epoch);
  }
  uint64_t allocated_pages() const override {
    return base_->allocated_pages();
  }
  uint64_t total_pages() const override { return base_->total_pages(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override {
    base_->SnapshotAllocator(total, free_pages);
  }
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override {
    return base_->RestoreAllocator(total, free_pages);
  }

  uint64_t read_latency_us() const {
    return read_latency_us_.load(std::memory_order_relaxed);
  }
  uint64_t write_latency_us() const {
    return write_latency_us_.load(std::memory_order_relaxed);
  }
  void set_read_latency_us(uint64_t us) {
    read_latency_us_.store(us, std::memory_order_relaxed);
  }
  void set_write_latency_us(uint64_t us) {
    write_latency_us_.store(us, std::memory_order_relaxed);
  }

 private:
  PageStore* base_;  // not owned
  std::atomic<uint64_t> read_latency_us_;
  std::atomic<uint64_t> write_latency_us_;
};

/// Configuration of FilePageStore's crash-consistency machinery.
struct FilePageStoreOptions {
  /// Verify the per-page CRC32C on every Read (page 0, the dual-slot commit
  /// record, is exempt: it carries per-slot checksums so that a torn commit
  /// write degrades to the surviving slot instead of a page-level error).
  bool verify_checksums = true;
  /// Keep a pre-image journal of the first overwrite per page per
  /// checkpoint epoch, so Mode::kOpen can roll a crashed file back to its
  /// last committed checkpoint.
  bool journal = true;
  /// fdatasync the journal before each in-place overwrite it protects.
  /// Required for durability against real power loss; off by default
  /// because the fault-injection harness preserves write ordering by
  /// construction and per-write syncs dominate test runtime.
  bool sync_journal = false;
  /// Honor Sync() with fdatasync (false turns Sync into a no-op, for
  /// benchmarks on throwaway files).
  bool sync_data = true;
};

/// File-backed page store with a verified page format: every page is stored
/// as [payload | page id | CRC32C | format tag], so reads detect torn
/// writes, bit rot, and misdirected I/O instead of serving garbage.
/// Together with the page-0 dual-slot commit record and the pre-image
/// journal, Mode::kOpen recovers the last durably committed checkpoint
/// after a crash at any write boundary.
class FilePageStore : public PageStore {
 public:
  enum class Mode {
    kTruncate,  // create fresh / discard existing contents
    kOpen,      // open an existing store, rolling back any post-checkpoint
                // overwrites recorded in the journal; pages become live,
                // pass the freed set via RestoreAllocator (e.g. from a
                // checkpoint)
  };

  /// Bytes appended to each page on the device: [0..7] page id, [8..11]
  /// CRC32C over payload + page id, [12..15] format tag.
  static constexpr size_t kPageTrailerSize = 16;

  /// Checksum/journal activity counters (also mirrored into an attached
  /// MetricsRegistry under "file_store.*").
  struct Counters {
    uint64_t checksums_computed = 0;  // trailers stamped on write
    uint64_t checksums_verified = 0;  // trailers validated on read
    uint64_t checksum_failures = 0;   // reads rejected with Corruption
    uint64_t journal_records = 0;     // pre-images appended this session
    uint64_t journal_rollbacks = 0;   // pre-images restored by Mode::kOpen
    uint64_t sync_calls = 0;          // fdatasync invocations
  };

  /// Opens `path` in the given mode. Check status() before use.
  FilePageStore(const std::string& path, size_t page_size = kDefaultPageSize,
                Mode mode = Mode::kTruncate, FilePageStoreOptions options = {});
  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  /// Status of construction; not OK if the file could not be opened or
  /// crash recovery failed.
  const Status& status() const { return status_; }

  size_t page_size() const override { return page_size_; }
  StatusOr<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  Status WriteUnjournaled(PageId id, const uint8_t* buf) override;
  PageId unjournaled_floor() const override { return epoch_start_total_; }
  Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix) override;
  Status Sync() override;
  Status CommitEpoch(uint64_t epoch) override;
  uint64_t allocated_pages() const override { return allocated_; }
  uint64_t total_pages() const override { return total_pages_; }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override;
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override;

  /// The checkpoint epoch (superblock sequence number) this store believes
  /// it is in; 0 until the first commit or for stores without a commit
  /// record.
  uint64_t epoch() const { return epoch_; }

  const Counters& counters() const { return counters_; }

  /// Attaches (or detaches, with nullptr) a metrics registry; checksum and
  /// journal counters are incremented there under "file_store.*".
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  size_t frame_size() const { return page_size_ + kPageTrailerSize; }
  Status CheckId(PageId id) const;
  /// Reads the raw on-device frame of `id`; missing tail bytes read as 0.
  Status ReadFrame(PageId id, uint8_t* frame) const;
  /// Appends the current image of `id` to the journal if this epoch has
  /// not overwritten it yet.
  Status MaybeJournal(PageId id);
  /// Composes the physical frame for (`id`, `buf`) and writes its first
  /// `bytes` bytes (bytes == frame_size() for a complete write).
  Status WriteFrameBytes(PageId id, const uint8_t* buf, size_t bytes);
  /// Parses the page-0 commit record to learn the current epoch, then
  /// replays valid journal pre-images of that epoch (crash rollback).
  Status RecoverOnOpen();
  void Count(uint64_t Counters::*field, const char* metric);

  const size_t page_size_;
  const FilePageStoreOptions options_;
  Status status_;
  int fd_ = -1;
  int journal_fd_ = -1;
  std::string journal_path_;
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
  uint64_t total_pages_ = 0;
  uint64_t allocated_ = 0;
  bool dirty_since_sync_ = false;
  uint64_t epoch_ = 0;
  uint64_t epoch_start_total_ = 0;
  std::unordered_set<PageId> journaled_;
  Counters counters_;
  MetricsRegistry* metrics_ = nullptr;  // not owned
};

/// Wraps another PageStore and injects failures, for testing Status
/// propagation and crash recovery. Supports deterministic fail-after-N
/// faults, seeded probabilistic faults (transient or permanent), torn
/// writes, and a crash-point mode that freezes the persisted image after a
/// chosen number of writes. All operations — including Allocate/Free/Sync —
/// are routed through the fault machinery and counted.
///
/// Thread-safe: one internal mutex serializes the fault machinery AND the
/// delegated base call, so concurrent callers (the fleet harness drives
/// several tenants' stacks into one shared device) see a consistent fault
/// stream and the base store — MemoryPageStore is not itself thread-safe —
/// is accessed one operation at a time, like a queue-depth-1 device.
/// Control methods (SetFailProbability, PoisonPage, Heal, ...) may be
/// called while traffic is running.
class FaultInjectionPageStore : public PageStore {
 public:
  explicit FaultInjectionPageStore(PageStore* base);

  FaultInjectionPageStore(const FaultInjectionPageStore&) = delete;
  FaultInjectionPageStore& operator=(const FaultInjectionPageStore&) = delete;

  /// Arms the fault: after `n` further successful operations, all
  /// subsequent operations fail with IoError.
  void FailAfter(uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_after_ops_ = n;
  }

  /// Seeds the PRNG driving probabilistic faults and torn-write prefixes.
  void SetSeed(uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu_);
    rng_ = Random(seed);
  }

  /// Each operation independently fails with probability `p`. Transient
  /// faults affect only the sampled operation; a permanent fault latches,
  /// failing every later operation until Heal() (a died disk).
  ///
  /// Composes with crash-point mode, with defined precedence: the crash
  /// point is counted in *committed* writes (a write eaten by a
  /// probabilistic fault does not advance the countdown), and once the
  /// crash triggers the frozen image is inviolable — probabilistic faults
  /// keep failing operations but never mutate the base store again (no
  /// torn writes after the freeze).
  void SetFailProbability(double p, bool transient = true) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_probability_ = p;
    transient_ = transient;
  }

  /// Page-scoped permanent fault: reads of `id` fail with Corruption (a
  /// rotted sector) until HealPage()/Heal(), while the rest of the device
  /// keeps working. This is what lets scrubber/degraded-read tests
  /// quarantine one page yet keep serving unaffected ranges. Writes are
  /// not affected (and do not heal the page; healing is explicit).
  void PoisonPage(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_.insert(id);
  }
  void HealPage(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_.erase(id);
  }
  std::unordered_set<PageId> poisoned_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return poisoned_;
  }

  /// When enabled, a write hit by a fault (probabilistic, fail-after, or
  /// the crash point) persists a random strict prefix of the page via
  /// WriteTorn before the error is returned, instead of vanishing.
  void SetTornWrites(bool enabled) {
    std::lock_guard<std::mutex> lock(mu_);
    torn_writes_ = enabled;
  }

  /// Sync-specific fault: the next `n` Sync() calls succeed, then the
  /// following `times` fail with IoError, then Sync works again. Unlike
  /// FailAfter (which counts every operation), this targets the fdatasync
  /// barrier alone — the failure mode the commit/retry paths historically
  /// assumed away. `times` = 1 models a transient barrier error a retry
  /// loop should absorb; a large `times` models a device that can no
  /// longer flush its cache. Writes before a failed Sync stay applied to
  /// the base store (data reached the device; the barrier did not).
  void FailSyncAfter(uint64_t n, uint64_t times = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    sync_fails_after_ = n;
    sync_fail_budget_ = times;
  }

  /// Sync() calls that reached the fault machinery.
  uint64_t syncs_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return syncs_seen_;
  }

  /// Crash-point mode: the next `n` writes persist normally; the write
  /// after that "crashes" — it is dropped (or torn, with SetTornWrites) and
  /// every subsequent operation fails with IoError, freezing the base
  /// store as the post-crash disk image.
  void CrashAfterWrites(uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    crash_after_writes_ = n;
    writes_until_crash_ = n;
    crashed_ = false;
  }

  /// Disarms all faults, including a triggered crash point and any
  /// poisoned pages.
  void Heal() {
    std::lock_guard<std::mutex> lock(mu_);
    fail_after_ops_ = UINT64_MAX;
    fail_probability_ = 0.0;
    permanent_failure_ = false;
    crash_after_writes_ = UINT64_MAX;
    crashed_ = false;
    sync_fail_budget_ = 0;
    poisoned_.clear();
  }

  /// True once the crash point has triggered.
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }
  /// Operations that reached the fault machinery.
  uint64_t ops_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_seen_;
  }
  /// Faults injected (including the crash-point trigger).
  uint64_t faults_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_injected_;
  }
  /// Writes forwarded to the base store.
  uint64_t writes_committed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_committed_;
  }

  size_t page_size() const override { return base_->page_size(); }
  StatusOr<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  /// Same crash-countdown / fault / torn-write semantics as Write — op-log
  /// appends are exactly the writes the crash sweep must be able to land
  /// on — delegating to the base's unjournaled path.
  Status WriteUnjournaled(PageId id, const uint8_t* buf) override;
  PageId unjournaled_floor() const override {
    return base_->unjournaled_floor();
  }
  Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix) override;
  Status Sync() override;
  Status CommitEpoch(uint64_t epoch) override;
  uint64_t allocated_pages() const override {
    return base_->allocated_pages();
  }
  uint64_t total_pages() const override { return base_->total_pages(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override {
    base_->SnapshotAllocator(total, free_pages);
  }
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override {
    return base_->RestoreAllocator(total, free_pages);
  }

 private:
  /// The following helpers assume mu_ is held by the public entry point.
  Status MaybeFail();
  size_t TornPrefix();
  Status WriteImpl(PageId id, const uint8_t* buf, bool journaled);

  PageStore* base_;  // not owned
  // Held across the base call too: the device serves one request at a time.
  mutable std::mutex mu_;
  Random rng_;
  uint64_t fail_after_ops_ = UINT64_MAX;
  double fail_probability_ = 0.0;
  bool transient_ = true;
  bool permanent_failure_ = false;
  bool torn_writes_ = false;
  uint64_t crash_after_writes_ = UINT64_MAX;
  uint64_t writes_until_crash_ = UINT64_MAX;
  bool crashed_ = false;
  uint64_t sync_fails_after_ = 0;
  uint64_t sync_fail_budget_ = 0;
  uint64_t syncs_seen_ = 0;
  std::unordered_set<PageId> poisoned_;
  uint64_t ops_seen_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t writes_committed_ = 0;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_PAGE_STORE_H_
