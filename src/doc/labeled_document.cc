#include "doc/labeled_document.h"

#include <algorithm>

#include "xml/parser.h"
#include "xml/writer.h"

namespace boxes {

LabeledDocument::LabeledDocument(LabelingScheme* scheme) : scheme_(scheme) {}

LabeledDocument::ElementHandle LabeledDocument::Register(
    std::string tag, const NewElement& lids) {
  elements_.push_back(Entry{std::move(tag), lids, true});
  ++alive_count_;
  return elements_.size() - 1;
}

Status LabeledDocument::RequireAlive(ElementHandle handle) const {
  if (!alive(handle)) {
    return Status::NotFound("element handle " + std::to_string(handle) +
                            " is not alive");
  }
  return Status::OK();
}

StatusOr<LabeledDocument::ElementHandle> LabeledDocument::LoadXml(
    std::string_view xml_text) {
  BOXES_ASSIGN_OR_RETURN(const xml::Document doc,
                         xml::ParseDocument(xml_text));
  return LoadTree(doc);
}

StatusOr<LabeledDocument::ElementHandle> LabeledDocument::LoadTree(
    const xml::Document& doc) {
  if (alive_count_ != 0) {
    return Status::FailedPrecondition("document is not empty");
  }
  if (doc.empty()) {
    return Status::InvalidArgument("cannot load an empty tree");
  }
  std::vector<NewElement> lids;
  BOXES_RETURN_IF_ERROR(scheme_->BulkLoad(doc, &lids));
  ElementHandle root = kInvalidHandle;
  for (xml::ElementId id = 0; id < doc.element_count(); ++id) {
    const ElementHandle handle = Register(doc.element(id).tag, lids[id]);
    if (id == doc.root()) {
      root = handle;
    }
  }
  return root;
}

StatusOr<LabeledDocument::ElementHandle> LabeledDocument::CreateRoot(
    std::string tag) {
  if (alive_count_ != 0) {
    return Status::FailedPrecondition("document is not empty");
  }
  BOXES_ASSIGN_OR_RETURN(const NewElement lids,
                         scheme_->InsertFirstElement());
  return Register(std::move(tag), lids);
}

StatusOr<LabeledDocument::ElementHandle> LabeledDocument::AppendChild(
    ElementHandle parent, std::string tag) {
  BOXES_RETURN_IF_ERROR(RequireAlive(parent));
  BOXES_ASSIGN_OR_RETURN(
      const NewElement lids,
      scheme_->InsertElementBefore(elements_[parent].lids.end));
  return Register(std::move(tag), lids);
}

StatusOr<LabeledDocument::ElementHandle> LabeledDocument::InsertBefore(
    ElementHandle sibling, std::string tag) {
  BOXES_RETURN_IF_ERROR(RequireAlive(sibling));
  BOXES_ASSIGN_OR_RETURN(
      const NewElement lids,
      scheme_->InsertElementBefore(elements_[sibling].lids.start));
  return Register(std::move(tag), lids);
}

StatusOr<LabeledDocument::ElementHandle> LabeledDocument::PasteFragment(
    ElementHandle parent, const xml::Document& fragment) {
  BOXES_RETURN_IF_ERROR(RequireAlive(parent));
  if (fragment.empty()) {
    return Status::InvalidArgument("cannot paste an empty fragment");
  }
  std::vector<NewElement> lids;
  BOXES_RETURN_IF_ERROR(scheme_->InsertSubtreeBefore(
      elements_[parent].lids.end, fragment, &lids));
  ElementHandle root = kInvalidHandle;
  for (xml::ElementId id = 0; id < fragment.element_count(); ++id) {
    const ElementHandle handle =
        Register(fragment.element(id).tag, lids[id]);
    if (id == fragment.root()) {
      root = handle;
    }
  }
  return root;
}

Status LabeledDocument::Erase(ElementHandle handle) {
  BOXES_RETURN_IF_ERROR(RequireAlive(handle));
  BOXES_RETURN_IF_ERROR(scheme_->Delete(elements_[handle].lids.start));
  BOXES_RETURN_IF_ERROR(scheme_->Delete(elements_[handle].lids.end));
  elements_[handle].alive = false;
  --alive_count_;
  return Status::OK();
}

Status LabeledDocument::EraseSubtree(ElementHandle handle) {
  BOXES_RETURN_IF_ERROR(RequireAlive(handle));
  // Identify descendants by label containment before the labels vanish.
  BOXES_ASSIGN_OR_RETURN(const ElementLabels target,
                         scheme_->LookupElement(elements_[handle].lids.start,
                                                elements_[handle].lids.end));
  std::vector<ElementHandle> victims;
  for (ElementHandle h = 0; h < elements_.size(); ++h) {
    if (!elements_[h].alive || h == handle) {
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(const Label start,
                           scheme_->Lookup(elements_[h].lids.start));
    if (target.start < start && start < target.end) {
      victims.push_back(h);
    }
  }
  BOXES_RETURN_IF_ERROR(scheme_->DeleteSubtree(elements_[handle].lids.start,
                                               elements_[handle].lids.end));
  elements_[handle].alive = false;
  --alive_count_;
  for (ElementHandle h : victims) {
    elements_[h].alive = false;
    --alive_count_;
  }
  return Status::OK();
}

StatusOr<bool> LabeledDocument::IsAncestorOf(ElementHandle ancestor,
                                             ElementHandle descendant) {
  BOXES_RETURN_IF_ERROR(RequireAlive(ancestor));
  BOXES_RETURN_IF_ERROR(RequireAlive(descendant));
  BOXES_ASSIGN_OR_RETURN(
      const ElementLabels a,
      scheme_->LookupElement(elements_[ancestor].lids.start,
                             elements_[ancestor].lids.end));
  BOXES_ASSIGN_OR_RETURN(
      const ElementLabels d,
      scheme_->LookupElement(elements_[descendant].lids.start,
                             elements_[descendant].lids.end));
  return IsAncestor(a, d);
}

StatusOr<int> LabeledDocument::CompareOrder(ElementHandle a,
                                            ElementHandle b) {
  BOXES_RETURN_IF_ERROR(RequireAlive(a));
  BOXES_RETURN_IF_ERROR(RequireAlive(b));
  return scheme_->Compare(elements_[a].lids.start, elements_[b].lids.start);
}

StatusOr<std::vector<LabeledDocument::ElementHandle>>
LabeledDocument::HandlesInDocumentOrder() {
  struct Keyed {
    Label start;
    ElementHandle handle;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(alive_count_);
  for (ElementHandle h = 0; h < elements_.size(); ++h) {
    if (!elements_[h].alive) {
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(Label start,
                           scheme_->Lookup(elements_[h].lids.start));
    keyed.push_back({std::move(start), h});
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const Keyed& x, const Keyed& y) { return x.start < y.start; });
  std::vector<ElementHandle> handles;
  handles.reserve(keyed.size());
  for (const Keyed& k : keyed) {
    handles.push_back(k.handle);
  }
  return handles;
}

StatusOr<xml::Document> LabeledDocument::ToTree(
    std::vector<ElementHandle>* handle_of_element) {
  struct Item {
    Label start;
    Label end;
    ElementHandle handle;
  };
  std::vector<Item> items;
  items.reserve(alive_count_);
  for (ElementHandle h = 0; h < elements_.size(); ++h) {
    if (!elements_[h].alive) {
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(
        ElementLabels labels,
        scheme_->LookupElement(elements_[h].lids.start,
                               elements_[h].lids.end));
    items.push_back({std::move(labels.start), std::move(labels.end), h});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.start < b.start; });

  xml::Document doc;
  if (handle_of_element != nullptr) {
    handle_of_element->clear();
  }
  if (items.empty()) {
    return doc;
  }
  // Stack-based nesting: intervals of a tree are properly nested, so the
  // sorted sequence rebuilds the structure in one pass.
  struct Open {
    xml::ElementId element;
    const Item* item;
  };
  std::vector<Open> stack;
  for (const Item& item : items) {
    while (!stack.empty() && stack.back().item->end < item.start) {
      stack.pop_back();
    }
    xml::ElementId element;
    if (stack.empty()) {
      if (!doc.empty()) {
        return Status::Corruption(
            "labels describe multiple roots; document is malformed");
      }
      element = doc.AddRoot(elements_[item.handle].tag);
    } else {
      if (!(item.end < stack.back().item->end)) {
        return Status::Corruption("labels are not properly nested");
      }
      element =
          doc.AddChild(stack.back().element, elements_[item.handle].tag);
    }
    if (handle_of_element != nullptr) {
      handle_of_element->push_back(item.handle);
    }
    stack.push_back({element, &item});
  }
  return doc;
}

StatusOr<std::string> LabeledDocument::ToXml(bool pretty) {
  BOXES_ASSIGN_OR_RETURN(const xml::Document doc, ToTree());
  return xml::WriteDocument(doc, pretty);
}

void LabeledDocument::SaveState(MetadataWriter* writer) const {
  writer->PutU64(elements_.size());
  for (const Entry& entry : elements_) {
    writer->PutU32(entry.alive ? 1 : 0);
    writer->PutString(entry.tag);
    writer->PutU64(entry.lids.start);
    writer->PutU64(entry.lids.end);
  }
}

Status LabeledDocument::LoadState(MetadataReader* reader) {
  if (alive_count_ != 0 || !elements_.empty()) {
    return Status::FailedPrecondition("facade is not empty");
  }
  BOXES_ASSIGN_OR_RETURN(const uint64_t count, reader->GetU64());
  elements_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Entry entry;
    BOXES_ASSIGN_OR_RETURN(const uint32_t alive_flag, reader->GetU32());
    entry.alive = alive_flag != 0;
    BOXES_ASSIGN_OR_RETURN(entry.tag, reader->GetString());
    BOXES_ASSIGN_OR_RETURN(entry.lids.start, reader->GetU64());
    BOXES_ASSIGN_OR_RETURN(entry.lids.end, reader->GetU64());
    if (entry.alive) {
      ++alive_count_;
    }
    elements_.push_back(std::move(entry));
  }
  return Status::OK();
}

Status LabeledDocument::CheckConsistency() {
  BOXES_RETURN_IF_ERROR(scheme_->CheckInvariants());
  std::vector<ElementHandle> handles;
  BOXES_ASSIGN_OR_RETURN(const xml::Document doc, ToTree(&handles));
  BOXES_RETURN_IF_ERROR(doc.Validate());
  if (doc.element_count() != alive_count_) {
    return Status::Corruption("handle registry disagrees with the labels");
  }
  // Coverage in the other direction: every live scheme label must belong
  // to some registered element (two labels each). Without this check a
  // registry that lags the scheme — e.g. a checkpoint serialized before
  // the last batch's results were adopted — reconstructs a smaller tree
  // that still nests perfectly and passes everything above.
  BOXES_ASSIGN_OR_RETURN(const SchemeStats stats, scheme_->GetStats());
  if (stats.live_labels != 2 * alive_count_) {
    return Status::Corruption(
        "scheme holds live labels the handle registry does not cover");
  }
  return Status::OK();
}

}  // namespace boxes
