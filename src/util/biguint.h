#ifndef BOXES_UTIL_BIGUINT_H_
#define BOXES_UTIL_BIGUINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace boxes {

/// Arbitrary-precision unsigned integer.
///
/// The naive-k baseline labeling scheme keeps gaps of 2^k between adjacent
/// labels; for k beyond ~50 the label values no longer fit in a machine
/// word (one of the paper's arguments against large-gap naive schemes), so
/// its label arithmetic runs on BigUint. Only the operations the labeling
/// schemes need are provided.
///
/// Representation: little-endian vector of 64-bit limbs, normalized so the
/// most significant limb is nonzero (zero is the empty vector).
class BigUint {
 public:
  /// Zero.
  BigUint() = default;
  /// Value of a machine word.
  explicit BigUint(uint64_t value);

  BigUint(const BigUint&) = default;
  BigUint& operator=(const BigUint&) = default;
  BigUint(BigUint&&) = default;
  BigUint& operator=(BigUint&&) = default;

  /// Returns 2^bits.
  static BigUint PowerOfTwo(uint32_t bits);

  bool IsZero() const { return limbs_.empty(); }

  /// Number of bits in the minimal binary representation; 0 for zero.
  uint32_t BitLength() const;

  /// this + other.
  BigUint Add(const BigUint& other) const;
  /// this - other. Requires this >= other.
  BigUint Sub(const BigUint& other) const;
  /// this << bits.
  BigUint ShiftLeft(uint32_t bits) const;
  /// this >> bits (floor division by 2^bits).
  BigUint ShiftRight(uint32_t bits) const;
  /// this * value.
  BigUint MulU64(uint64_t value) const;
  /// floor(this / 2).
  BigUint Half() const { return ShiftRight(1); }
  /// ceil(this / 2).
  BigUint CeilHalf() const;

  /// Three-way comparison.
  std::strong_ordering Compare(const BigUint& other) const;

  /// Low 64 bits of the value (truncating).
  uint64_t ToUint64Truncated() const;
  /// True iff the value fits in 64 bits.
  bool FitsUint64() const { return limbs_.size() <= 1; }

  /// Decimal string form, for diagnostics and tests.
  std::string ToDecimalString() const;

  /// Number of limbs needed to serialize this value.
  size_t LimbCount() const { return limbs_.size(); }

  /// Writes exactly `capacity_limbs` little-endian 64-bit limbs to `dst`
  /// (zero-padded). Requires LimbCount() <= capacity_limbs.
  void Serialize(uint8_t* dst, size_t capacity_limbs) const;
  /// Reads `capacity_limbs` limbs from `src` and normalizes.
  static BigUint Deserialize(const uint8_t* src, size_t capacity_limbs);

  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigUint& a, const BigUint& b) {
    return a.Compare(b);
  }
  friend BigUint operator+(const BigUint& a, const BigUint& b) {
    return a.Add(b);
  }
  friend BigUint operator-(const BigUint& a, const BigUint& b) {
    return a.Sub(b);
  }

 private:
  void Normalize();

  std::vector<uint64_t> limbs_;
};

}  // namespace boxes

#endif  // BOXES_UTIL_BIGUINT_H_
