#include "core/bbox/bbox.h"

#include <algorithm>

namespace boxes {

namespace {
constexpr size_t kLidfPayloadSize = 8;
}  // namespace

BBox::BBox(PageCache* cache, BBoxOptions options)
    : cache_(cache),
      options_(options),
      params_(BBoxParams::Derive(cache->page_size(), options.ordinal,
                                 options.min_fill_divisor)),
      lidf_(cache, kLidfPayloadSize) {}

BBox::~BBox() = default;

// ---------------------------------------------------------------------------
// Location, labels, comparison

Status BBox::LocateLid(Lid lid, PageId* leaf_page, int* slot) {
  ScopedPhase io_phase(cache_, IoPhase::kSearch);
  BOXES_ASSIGN_OR_RETURN(const PageId page, lidf_.ReadBlockPtr(lid));
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  BBoxLeafView leaf(data, &params_);
  if (leaf.node_type() != BBoxNodeHeader::kLeafType) {
    return Status::Corruption("LID " + std::to_string(lid) +
                              " points at a non-leaf page");
  }
  const int index = leaf.Find(lid);
  if (index < 0) {
    return Status::Corruption("LID " + std::to_string(lid) +
                              " not present in its leaf");
  }
  *leaf_page = page;
  *slot = index;
  return Status::OK();
}

Status BBox::PathComponents(PageId page, std::vector<uint64_t>* components) {
  ScopedPhase io_phase(cache_, IoPhase::kSearch);
  components->clear();
  PageId current = page;
  for (;;) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(current));
    const PageId parent = BBoxNodeHeader(data).parent();
    if (parent == kInvalidPageId) {
      break;
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data, cache_->GetPage(parent));
    BBoxInternalView node(parent_data, &params_);
    const int index = node.FindChild(current);
    if (index < 0) {
      return Status::Corruption("back-link not mirrored by a child entry");
    }
    components->push_back(static_cast<uint64_t>(index));
    current = parent;
  }
  std::reverse(components->begin(), components->end());
  return Status::OK();
}

StatusOr<Label> BBox::LabelOfSlot(PageId leaf_page, int slot) {
  std::vector<uint64_t> components;
  BOXES_RETURN_IF_ERROR(PathComponents(leaf_page, &components));
  components.push_back(static_cast<uint64_t>(slot));
  return Label::FromComponents(std::move(components));
}

StatusOr<Label> BBox::Lookup(Lid lid) {
  ScopedTimer timer(metrics_, name() + ".lookup.us");
  PageId leaf_page;
  int slot;
  BOXES_RETURN_IF_ERROR(LocateLid(lid, &leaf_page, &slot));
  return LabelOfSlot(leaf_page, slot);
}

StatusOr<int> BBox::Compare(Lid a, Lid b) {
  if (a == b) {
    return 0;
  }
  ScopedPhase io_phase(cache_, IoPhase::kSearch);
  PageId leaf_a;
  PageId leaf_b;
  int slot_a;
  int slot_b;
  BOXES_RETURN_IF_ERROR(LocateLid(a, &leaf_a, &slot_a));
  BOXES_RETURN_IF_ERROR(LocateLid(b, &leaf_b, &slot_b));
  if (leaf_a == leaf_b) {
    return slot_a < slot_b ? -1 : 1;
  }
  // Lockstep bottom-up walk to the lowest common ancestor (paper §5): all
  // leaves share a depth, so the walks meet at the LCA.
  PageId pa = leaf_a;
  PageId pb = leaf_b;
  for (;;) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* da, cache_->GetPage(pa));
    const PageId parent_a = BBoxNodeHeader(da).parent();
    BOXES_ASSIGN_OR_RETURN(uint8_t* db, cache_->GetPage(pb));
    const PageId parent_b = BBoxNodeHeader(db).parent();
    if (parent_a == kInvalidPageId || parent_b == kInvalidPageId) {
      return Status::Corruption("records do not share a root");
    }
    if (parent_a == parent_b) {
      BOXES_ASSIGN_OR_RETURN(uint8_t* dp, cache_->GetPage(parent_a));
      BBoxInternalView lca(dp, &params_);
      const int ia = lca.FindChild(pa);
      const int ib = lca.FindChild(pb);
      if (ia < 0 || ib < 0) {
        return Status::Corruption("LCA is missing a child entry");
      }
      return ia < ib ? -1 : 1;
    }
    pa = parent_a;
    pb = parent_b;
  }
}

StatusOr<uint64_t> BBox::OrdinalLookup(Lid lid) {
  if (!options_.ordinal) {
    return LabelingScheme::OrdinalLookup(lid);
  }
  PageId leaf_page;
  int slot;
  BOXES_RETURN_IF_ERROR(LocateLid(lid, &leaf_page, &slot));
  uint64_t ordinal = 0;
  BOXES_RETURN_IF_ERROR(
      AdjustPathSizes(leaf_page, slot, /*delta=*/0, &ordinal));
  return ordinal;
}

Status BBox::AdjustPathSizes(PageId leaf_page, int slot, int64_t delta,
                             uint64_t* ordinal_out) {
  // With a non-zero delta this walk maintains the size fields (structure
  // bookkeeping); with delta == 0 it is a pure ordinal search.
  ScopedPhase io_phase(cache_,
                       delta != 0 ? IoPhase::kRebalance : IoPhase::kSearch);
  uint64_t ordinal = static_cast<uint64_t>(slot);
  PageId child = leaf_page;
  for (;;) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* child_data, cache_->GetPage(child));
    const PageId parent = BBoxNodeHeader(child_data).parent();
    if (parent == kInvalidPageId) {
      break;
    }
    BOXES_ASSIGN_OR_RETURN(
        uint8_t* data, delta != 0 ? cache_->GetPageForWrite(parent)
                                  : cache_->GetPage(parent));
    BBoxInternalView node(data, &params_);
    const int index = node.FindChild(child);
    if (index < 0) {
      return Status::Corruption("back-link not mirrored by a child entry");
    }
    if (ordinal_out != nullptr) {
      for (int i = 0; i < index; ++i) {
        ordinal += node.size(static_cast<uint16_t>(i));
      }
    }
    if (delta != 0) {
      node.set_size(static_cast<uint16_t>(index),
                    node.size(static_cast<uint16_t>(index)) + delta);
    }
    child = parent;
  }
  if (ordinal_out != nullptr) {
    *ordinal_out = ordinal;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Logging helpers (§6)

void BBox::EmitLeafShift(const std::vector<uint64_t>& leaf_prefix,
                         uint64_t from, uint64_t to, int64_t delta) {
  if (listener_ == nullptr || from > to) {
    return;
  }
  std::vector<uint64_t> lo = leaf_prefix;
  lo.push_back(from);
  std::vector<uint64_t> hi = leaf_prefix;
  hi.push_back(to);
  listener_->OnRangeShift(Label::FromComponents(std::move(lo)),
                          Label::FromComponents(std::move(hi)), delta,
                          /*last_component_only=*/true);
}

void BBox::NoteReorganization(PageId parent, uint16_t index, uint32_t level) {
  if (!op_reorg_.any || level > op_reorg_.level) {
    op_reorg_.any = true;
    op_reorg_.parent = parent;
    op_reorg_.index = index;
    op_reorg_.level = level;
  }
}

Status BBox::EmitTopmostInvalidation() {
  if (!op_reorg_.any) {
    return Status::OK();
  }
  const Reorganization reorg = op_reorg_;
  op_reorg_ = Reorganization();
  if (listener_ == nullptr) {
    return Status::OK();
  }
  if (reorg.whole_tree) {
    listener_->OnInvalidateRange(
        Label::FromComponents({0}),
        Label::FromComponents({UINT64_MAX, UINT64_MAX}));
    return Status::OK();
  }
  // Labels whose path passes through `parent` at child ordinal >= index
  // may have changed (paper §5's affected-range computation).
  std::vector<uint64_t> prefix;
  BOXES_RETURN_IF_ERROR(PathComponents(reorg.parent, &prefix));
  std::vector<uint64_t> lo = prefix;
  lo.push_back(reorg.index);
  std::vector<uint64_t> hi = prefix;
  hi.push_back(UINT64_MAX);
  hi.push_back(UINT64_MAX);
  listener_->OnInvalidateRange(Label::FromComponents(std::move(lo)),
                               Label::FromComponents(std::move(hi)));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Structure maintenance

Status BBox::GrowRoot() {
  ScopedPhase io_phase(cache_, IoPhase::kRebalance);
  uint8_t* data = nullptr;
  BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
  BBoxInternalView node(data, &params_);
  node.Init(static_cast<uint8_t>(height_));
  node.InsertAt(0, root_, live_labels_);
  BOXES_ASSIGN_OR_RETURN(uint8_t* old_data, cache_->GetPageForWrite(root_));
  BBoxNodeHeader(old_data).set_parent(page);
  root_ = page;
  ++height_;
  // Every label gains a leading component; all cached labels are stale.
  op_reorg_.any = true;
  op_reorg_.whole_tree = true;
  return Status::OK();
}

Status BBox::EnsureRoom(PageId page) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  BBoxNodeHeader header(data);
  const uint64_t capacity = header.node_type() == BBoxNodeHeader::kLeafType
                                ? params_.leaf_capacity
                                : params_.internal_capacity;
  if (header.count() < capacity) {
    return Status::OK();
  }
  return SplitNode(page);
}

Status BBox::SplitNode(PageId page) {
  ScopedPhase io_phase(cache_, IoPhase::kRebalance);
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    if (BBoxNodeHeader(data).parent() == kInvalidPageId) {
      BOXES_RETURN_IF_ERROR(GrowRoot());
    }
  }
  PageId parent;
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    parent = BBoxNodeHeader(data).parent();
  }
  BOXES_RETURN_IF_ERROR(EnsureRoom(parent));
  // Splitting the parent may have relocated this node's entry.
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    parent = BBoxNodeHeader(data).parent();
  }

  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(page));
  const bool is_leaf =
      BBoxNodeHeader(data).node_type() == BBoxNodeHeader::kLeafType;
  uint8_t* sibling_data = nullptr;
  BOXES_ASSIGN_OR_RETURN(const PageId sibling,
                         cache_->AllocatePage(&sibling_data));
  uint64_t left_size;
  uint64_t right_size;
  std::vector<uint64_t> moved;
  if (is_leaf) {
    BBoxLeafView left(data, &params_);
    BBoxLeafView right(sibling_data, &params_);
    right.Init();
    const uint16_t m = static_cast<uint16_t>(left.count() / 2);
    for (uint16_t i = m; i < left.count(); ++i) {
      moved.push_back(left.lid(i));
    }
    left.MoveSuffixTo(m, &right);
    right.set_parent(parent);
    left_size = left.count();
    right_size = right.count();
  } else {
    BBoxInternalView left(data, &params_);
    BBoxInternalView right(sibling_data, &params_);
    right.Init(left.level());
    const uint16_t m = static_cast<uint16_t>(left.count() / 2);
    for (uint16_t i = m; i < left.count(); ++i) {
      moved.push_back(left.child(i));
    }
    left.MoveSuffixTo(m, &right);
    right.set_parent(parent);
    left_size = left.SizeSum();
    right_size = right.SizeSum();
  }
  BOXES_RETURN_IF_ERROR(FixMovedEntries(sibling, is_leaf, moved));

  BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data,
                         cache_->GetPageForWrite(parent));
  BBoxInternalView parent_view(parent_data, &params_);
  const int index = parent_view.FindChild(page);
  if (index < 0) {
    return Status::Corruption("split node missing from its parent");
  }
  parent_view.set_size(static_cast<uint16_t>(index), left_size);
  parent_view.InsertAt(static_cast<uint16_t>(index + 1), sibling,
                       right_size);
  NoteReorganization(parent, static_cast<uint16_t>(index),
                     parent_view.level());
  ++split_count_;
  return Status::OK();
}

Status BBox::FixMovedEntries(PageId new_page, bool is_leaf,
                             const std::vector<uint64_t>& moved) {
  ScopedPhase io_phase(cache_, IoPhase::kRelabel);
  for (uint64_t entry : moved) {
    if (is_leaf) {
      BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(entry, new_page));
    } else {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(entry));
      BBoxNodeHeader(data).set_parent(new_page);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insert / delete

Status BBox::InsertBefore(Lid lid_new, Lid lid_old) {
  PageId leaf_page;
  int slot;
  BOXES_RETURN_IF_ERROR(LocateLid(lid_old, &leaf_page, &slot));
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(leaf_page));
    if (BBoxLeafView(data, &params_).count() >= params_.leaf_capacity) {
      BOXES_RETURN_IF_ERROR(SplitNode(leaf_page));
      BOXES_RETURN_IF_ERROR(LocateLid(lid_old, &leaf_page, &slot));
    }
  }
  uint16_t count_before;
  {
    // Inserting into the leaf shifts every following record's final
    // component: relabel traffic.
    ScopedPhase io_phase(cache_, IoPhase::kRelabel);
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_page));
    BBoxLeafView leaf(data, &params_);
    count_before = leaf.count();
    leaf.InsertAt(static_cast<uint16_t>(slot), lid_new);
  }
  BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(lid_new, leaf_page));
  ++live_labels_;
  if (options_.ordinal) {
    uint64_t ordinal = 0;
    BOXES_RETURN_IF_ERROR(AdjustPathSizes(leaf_page, slot, +1, &ordinal));
    if (listener_ != nullptr) {
      listener_->OnOrdinalShift(ordinal, +1);
    }
  }
  if (op_reorg_.any) {
    return EmitTopmostInvalidation();
  }
  if (listener_ != nullptr) {
    // Leaf-local effect (paper §6): labels [l, l_max] gain +1 in the last
    // component, where l is lid_old's pre-insert label and l_max the
    // leaf's largest pre-insert label.
    std::vector<uint64_t> prefix;
    BOXES_RETURN_IF_ERROR(PathComponents(leaf_page, &prefix));
    EmitLeafShift(prefix, static_cast<uint64_t>(slot), count_before - 1, +1);
  }
  return Status::OK();
}

StatusOr<NewElement> BBox::InsertElementBefore(Lid lid) {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("B-BOX is empty");
  }
  ScopedTimer timer(metrics_, name() + ".insert.us");
  op_reorg_ = Reorganization();
  BOXES_ASSIGN_OR_RETURN(const auto lids, lidf_.AllocatePair());
  BOXES_RETURN_IF_ERROR(InsertBefore(lids.second, lid));
  BOXES_RETURN_IF_ERROR(InsertBefore(lids.first, lids.second));
  return NewElement{lids.first, lids.second};
}

StatusOr<NewElement> BBox::InsertFirstElement() {
  if (root_ != kInvalidPageId) {
    return Status::FailedPrecondition("B-BOX is not empty");
  }
  uint8_t* data = nullptr;
  BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
  BBoxLeafView leaf(data, &params_);
  leaf.Init();
  root_ = page;
  height_ = 1;
  BOXES_ASSIGN_OR_RETURN(const auto lids, lidf_.AllocatePair());
  leaf.InsertAt(0, lids.first);
  leaf.InsertAt(1, lids.second);
  BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(lids.first, page));
  BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(lids.second, page));
  live_labels_ = 2;
  return NewElement{lids.first, lids.second};
}

Status BBox::Delete(Lid lid) {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("B-BOX is empty");
  }
  ScopedTimer timer(metrics_, name() + ".delete.us");
  op_reorg_ = Reorganization();
  PageId leaf_page;
  int slot;
  BOXES_RETURN_IF_ERROR(LocateLid(lid, &leaf_page, &slot));
  uint16_t count_before;
  std::vector<uint64_t> prefix;
  if (listener_ != nullptr) {
    BOXES_RETURN_IF_ERROR(PathComponents(leaf_page, &prefix));
  }
  if (options_.ordinal) {
    uint64_t ordinal = 0;
    BOXES_RETURN_IF_ERROR(AdjustPathSizes(leaf_page, slot, -1, &ordinal));
    if (listener_ != nullptr) {
      listener_->OnOrdinalShift(ordinal + 1, -1);
    }
  }
  {
    // Removing from the leaf shifts every following record's final
    // component: relabel traffic.
    ScopedPhase io_phase(cache_, IoPhase::kRelabel);
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_page));
    BBoxLeafView leaf(data, &params_);
    count_before = leaf.count();
    leaf.RemoveAt(static_cast<uint16_t>(slot));
  }
  BOXES_RETURN_IF_ERROR(lidf_.Free(lid));
  --live_labels_;
  if (listener_ != nullptr) {
    EmitLeafShift(prefix, static_cast<uint64_t>(slot) + 1, count_before - 1,
                  -1);
  }

  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(leaf_page));
  BBoxLeafView leaf(data, &params_);
  if (leaf_page == root_) {
    if (leaf.count() == 0) {
      BOXES_RETURN_IF_ERROR(cache_->FreePage(root_));
      root_ = kInvalidPageId;
      height_ = 0;
    }
    return EmitTopmostInvalidation();
  }
  if (leaf.count() < params_.LeafMin()) {
    BOXES_RETURN_IF_ERROR(RebalanceUpward(leaf_page));
  }
  return EmitTopmostInvalidation();
}

Status BBox::CollapseRootIfNeeded(std::vector<PageId>* freed_out) {
  ScopedPhase io_phase(cache_, IoPhase::kRebalance);
  for (;;) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(root_));
    BBoxNodeHeader header(data);
    if (header.node_type() != BBoxNodeHeader::kInternalType ||
        header.count() > 1) {
      return Status::OK();
    }
    BBoxInternalView node(data, &params_);
    const PageId only_child = node.child(0);
    BOXES_ASSIGN_OR_RETURN(uint8_t* child_data,
                           cache_->GetPageForWrite(only_child));
    BBoxNodeHeader(child_data).set_parent(kInvalidPageId);
    BOXES_RETURN_IF_ERROR(cache_->FreePage(root_));
    if (freed_out != nullptr) {
      freed_out->push_back(root_);
    }
    root_ = only_child;
    --height_;
    op_reorg_.any = true;
    op_reorg_.whole_tree = true;
  }
}

Status BBox::RebalanceUpward(PageId page) {
  ScopedPhase io_phase(cache_, IoPhase::kRebalance);
  uint32_t guard = 0;
  for (;;) {
    BOXES_CHECK(++guard < 4096);
    if (page == root_) {
      return CollapseRootIfNeeded();
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    BBoxNodeHeader header(data);
    const bool is_leaf = header.node_type() == BBoxNodeHeader::kLeafType;
    const uint64_t min = is_leaf ? params_.LeafMin() : params_.InternalMin();
    if (header.count() >= min) {
      return Status::OK();
    }
    const PageId parent = header.parent();
    BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data, cache_->GetPage(parent));
    BBoxInternalView parent_view(parent_data, &params_);
    if (parent_view.count() < 2) {
      // No sibling to borrow from; fix the parent first, then retry.
      BOXES_RETURN_IF_ERROR(RebalanceUpward(parent));
      if (page == root_) {
        return CollapseRootIfNeeded();
      }
      continue;
    }
    const int index = parent_view.FindChild(page);
    if (index < 0) {
      return Status::Corruption("underfull node missing from its parent");
    }
    const uint16_t left_idx =
        static_cast<uint16_t>(index > 0 ? index - 1 : index);
    bool merged = false;
    BOXES_RETURN_IF_ERROR(MergeOrRedistribute(parent, left_idx, &merged));
    if (!merged) {
      return Status::OK();
    }
    page = parent;
  }
}

Status BBox::MergeOrRedistribute(PageId parent, uint16_t left_idx,
                                 bool* merged, PageId* freed_page) {
  ScopedPhase io_phase(cache_, IoPhase::kRebalance);
  if (freed_page != nullptr) {
    *freed_page = kInvalidPageId;
  }
  BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data,
                         cache_->GetPageForWrite(parent));
  BBoxInternalView parent_view(parent_data, &params_);
  BOXES_CHECK(left_idx + 1 < parent_view.count());
  const PageId left_page = parent_view.child(left_idx);
  const PageId right_page = parent_view.child(left_idx + 1);
  BOXES_ASSIGN_OR_RETURN(uint8_t* left_data,
                         cache_->GetPageForWrite(left_page));
  BOXES_ASSIGN_OR_RETURN(uint8_t* right_data,
                         cache_->GetPageForWrite(right_page));
  const bool is_leaf =
      BBoxNodeHeader(left_data).node_type() == BBoxNodeHeader::kLeafType;
  const uint64_t capacity =
      is_leaf ? params_.leaf_capacity : params_.internal_capacity;

  auto collect_leaf = [&](BBoxLeafView& view, uint16_t from, uint16_t to,
                          std::vector<uint64_t>* out) {
    for (uint16_t i = from; i < to; ++i) {
      out->push_back(view.lid(i));
    }
  };
  auto collect_internal = [&](BBoxInternalView& view, uint16_t from,
                              uint16_t to, std::vector<uint64_t>* out) {
    for (uint16_t i = from; i < to; ++i) {
      out->push_back(view.child(i));
    }
  };

  if (is_leaf) {
    BBoxLeafView left(left_data, &params_);
    BBoxLeafView right(right_data, &params_);
    const uint64_t total = left.count() + right.count();
    std::vector<uint64_t> moved;
    if (total <= capacity) {
      collect_leaf(right, 0, right.count(), &moved);
      right.MovePrefixTo(right.count(), &left);
      BOXES_RETURN_IF_ERROR(FixMovedEntries(left_page, true, moved));
      parent_view.set_size(left_idx, parent_view.size(left_idx) +
                                         parent_view.size(left_idx + 1));
      parent_view.RemoveAt(left_idx + 1);
      BOXES_RETURN_IF_ERROR(cache_->FreePage(right_page));
      if (freed_page != nullptr) {
        *freed_page = right_page;
      }
      *merged = true;
      ++merge_count_;
    } else {
      const uint16_t target_left = static_cast<uint16_t>(total / 2);
      if (left.count() > target_left) {
        collect_leaf(left, target_left, left.count(), &moved);
        left.MoveSuffixToFront(target_left, &right);
        BOXES_RETURN_IF_ERROR(FixMovedEntries(right_page, true, moved));
      } else if (left.count() < target_left) {
        const uint16_t n =
            static_cast<uint16_t>(target_left - left.count());
        collect_leaf(right, 0, n, &moved);
        right.MovePrefixTo(n, &left);
        BOXES_RETURN_IF_ERROR(FixMovedEntries(left_page, true, moved));
      }
      parent_view.set_size(left_idx, left.count());
      parent_view.set_size(left_idx + 1, right.count());
      *merged = false;
    }
  } else {
    BBoxInternalView left(left_data, &params_);
    BBoxInternalView right(right_data, &params_);
    const uint64_t total = left.count() + right.count();
    std::vector<uint64_t> moved;
    if (total <= capacity) {
      collect_internal(right, 0, right.count(), &moved);
      right.MovePrefixTo(right.count(), &left);
      BOXES_RETURN_IF_ERROR(FixMovedEntries(left_page, false, moved));
      parent_view.set_size(left_idx, parent_view.size(left_idx) +
                                         parent_view.size(left_idx + 1));
      parent_view.RemoveAt(left_idx + 1);
      BOXES_RETURN_IF_ERROR(cache_->FreePage(right_page));
      if (freed_page != nullptr) {
        *freed_page = right_page;
      }
      *merged = true;
      ++merge_count_;
    } else {
      const uint16_t target_left = static_cast<uint16_t>(total / 2);
      if (left.count() > target_left) {
        collect_internal(left, target_left, left.count(), &moved);
        left.MoveSuffixToFront(target_left, &right);
        BOXES_RETURN_IF_ERROR(FixMovedEntries(right_page, false, moved));
      } else if (left.count() < target_left) {
        const uint16_t n =
            static_cast<uint16_t>(target_left - left.count());
        collect_internal(right, 0, n, &moved);
        right.MovePrefixTo(n, &left);
        BOXES_RETURN_IF_ERROR(FixMovedEntries(left_page, false, moved));
      }
      parent_view.set_size(left_idx, left.SizeSum());
      parent_view.set_size(left_idx + 1, right.SizeSum());
      *merged = false;
    }
  }
  BOXES_ASSIGN_OR_RETURN(uint8_t* fresh_parent, cache_->GetPage(parent));
  NoteReorganization(parent, left_idx,
                     BBoxNodeHeader(fresh_parent).level());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Stats

StatusOr<SchemeStats> BBox::GetStats() {
  SchemeStats stats;
  stats.height = height_;
  stats.live_labels = live_labels_;
  stats.lidf_pages = lidf_.page_count();
  if (root_ == kInvalidPageId) {
    return stats;
  }
  uint64_t pages = 0;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    ++pages;
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    if (BBoxNodeType(data) == BBoxNodeHeader::kInternalType) {
      BBoxInternalView node(data, &params_);
      for (uint16_t i = 0; i < node.count(); ++i) {
        stack.push_back(node.child(i));
      }
    }
  }
  stats.index_pages = pages;
  // Maximum label bits under the paper's encoding regime (Thm 5.1): the
  // root component takes ceil(log2 root_fanout) bits and every lower level
  // log2 of its node capacity.
  auto bit_width = [](uint64_t max_value) {
    uint32_t bits = 0;
    while (max_value >> bits) {
      ++bits;
    }
    return bits == 0 ? 1u : bits;
  };
  uint32_t label_bits = 0;
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(root_));
    label_bits += bit_width(BBoxNodeHeader(data).count() - 1);
  }
  if (height_ >= 2) {
    label_bits += (height_ - 2) * bit_width(params_.internal_capacity - 1);
    label_bits += bit_width(params_.leaf_capacity - 1);
  }
  stats.max_label_bits = label_bits;
  return stats;
}

uint64_t BBox::BatchLocalityKey(const BatchOp& op) {
  const StatusOr<PageId> block = lidf_.ReadBlockPtr(op.anchor);
  return block.ok() ? *block : 0;
}

}  // namespace boxes
