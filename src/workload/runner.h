#ifndef BOXES_WORKLOAD_RUNNER_H_
#define BOXES_WORKLOAD_RUNNER_H_

#include <functional>
#include <string>

#include "storage/page_cache.h"
#include "util/histogram.h"
#include "util/metrics.h"
#include "util/status.h"

namespace boxes::workload {

/// Collected measurements of a workload run: one histogram sample per
/// logical operation (the paper's per-operation block I/O count), one
/// latency sample per operation, and per-phase I/O attribution.
struct RunStats {
  Histogram per_op_cost;
  Histogram per_op_latency_us;
  IoStats totals;
  PhaseIoTable phase_totals{};

  double MeanCost() const { return per_op_cost.Mean(); }
};

/// Executes `op` bracketed as one logical operation on `cache`, recording
/// its block I/O cost (reads at first touch + dirty writes at completion),
/// wall-clock latency, and per-phase I/O deltas into `stats`.
Status MeasureOp(PageCache* cache, const std::function<Status()>& op,
                 RunStats* stats);

/// Copies a run's measurements into `registry` under `source`:
/// histograms "<source>.op_io" and "<source>.op.us", counters
/// "<source>.reads" / "<source>.writes", and the phase table keyed by
/// `source`. A null registry is a no-op.
void ExportRunStats(const std::string& source, const RunStats& stats,
                    MetricsRegistry* registry);

/// Executes `op` as one (unmeasured) logical operation, e.g. the bulk load
/// that precedes a measured phase.
Status UnmeasuredOp(PageCache* cache, const std::function<Status()>& op);

}  // namespace boxes::workload

#endif  // BOXES_WORKLOAD_RUNNER_H_
