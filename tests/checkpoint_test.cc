// Checkpoint / restore: the in-memory metadata (roots, counters, LIDF
// directory + liveness) round-trips through metadata chains, enabling
// file-backed databases to be closed and reopened.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "doc/labeled_document.h"
#include "gtest/gtest.h"
#include "storage/metadata_io.h"
#include "storage/superblock_format.h"
#include "test_util.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::TagOrderLids;
using testing::TestDb;

TEST(MetadataIoTest, RoundTripsPrimitives) {
  TestDb db(512);
  MetadataWriter writer;
  writer.PutU32(7);
  writer.PutU64(0xdeadbeefcafef00dULL);
  writer.PutString("hello metadata");
  const uint8_t raw[3] = {1, 2, 3};
  writer.PutBytes(raw, sizeof(raw));
  ASSERT_OK_AND_ASSIGN(const PageId head, writer.Finish(&db.cache));

  ASSERT_OK_AND_ASSIGN(MetadataReader reader,
                       MetadataReader::Load(&db.cache, head));
  ASSERT_OK_AND_ASSIGN(const uint32_t u32, reader.GetU32());
  EXPECT_EQ(u32, 7u);
  ASSERT_OK_AND_ASSIGN(const uint64_t u64, reader.GetU64());
  EXPECT_EQ(u64, 0xdeadbeefcafef00dULL);
  ASSERT_OK_AND_ASSIGN(const std::string text, reader.GetString());
  EXPECT_EQ(text, "hello metadata");
  uint8_t out[3];
  ASSERT_OK(reader.GetBytes(out, sizeof(out)));
  EXPECT_EQ(out[2], 3);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_FALSE(reader.GetU32().ok());  // truncation detected
}

TEST(MetadataIoTest, LargePayloadSpansPages) {
  TestDb db(512);
  MetadataWriter writer;
  constexpr int kValues = 5000;  // ~40 KB across 512 B pages
  for (int i = 0; i < kValues; ++i) {
    writer.PutU64(static_cast<uint64_t>(i) * 31);
  }
  ASSERT_OK_AND_ASSIGN(const PageId head, writer.Finish(&db.cache));
  ASSERT_OK_AND_ASSIGN(MetadataReader reader,
                       MetadataReader::Load(&db.cache, head));
  for (int i = 0; i < kValues; ++i) {
    ASSERT_OK_AND_ASSIGN(const uint64_t value, reader.GetU64());
    ASSERT_EQ(value, static_cast<uint64_t>(i) * 31);
  }
  EXPECT_TRUE(reader.AtEnd());
  // The chain can be reclaimed.
  const uint64_t before = db.store.allocated_pages();
  ASSERT_OK(FreeMetadataChain(&db.cache, head));
  EXPECT_LT(db.store.allocated_pages(), before);
}

template <typename Scheme>
void RoundTripInMemory(std::unique_ptr<Scheme> (*make)(PageCache*)) {
  TestDb db(1024);
  auto original = make(&db.cache);
  const xml::Document doc = xml::MakeRandomDocument(800, 6, 21);
  std::vector<NewElement> lids;
  ASSERT_OK(original->BulkLoad(doc, &lids));
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(original->InsertElementBefore(lids[(i * 37) % lids.size()].end)
                  .status());
  }
  ASSERT_OK_AND_ASSIGN(const PageId head, original->Checkpoint());
  const std::vector<Lid> order = TagOrderLids(doc, lids);

  // A brand-new instance over the same storage picks everything up.
  auto restored = make(&db.cache);
  ASSERT_OK(restored->Restore(head));
  EXPECT_EQ(restored->live_labels(), original->live_labels());
  ASSERT_OK(restored->CheckInvariants());
  EXPECT_TRUE(LabelsStrictlyIncreasing(restored.get(), order));
  // And it keeps working.
  ASSERT_OK(restored->InsertElementBefore(lids[5].end).status());
  ASSERT_OK(restored->CheckInvariants());
}

std::unique_ptr<WBox> MakeWBoxPair(PageCache* cache) {
  WBoxOptions options;
  options.pair_mode = true;
  return std::make_unique<WBox>(cache, options);
}
std::unique_ptr<BBox> MakeBBoxOrdinal(PageCache* cache) {
  BBoxOptions options;
  options.ordinal = true;
  return std::make_unique<BBox>(cache, options);
}
std::unique_ptr<NaiveScheme> MakeNaive8(PageCache* cache) {
  return std::make_unique<NaiveScheme>(
      cache, NaiveOptions{.gap_bits = 8, .count_bits = 30});
}

TEST(CheckpointTest, WBoxRoundTrip) { RoundTripInMemory(&MakeWBoxPair); }
TEST(CheckpointTest, BBoxRoundTrip) { RoundTripInMemory(&MakeBBoxOrdinal); }
TEST(CheckpointTest, NaiveRoundTrip) { RoundTripInMemory(&MakeNaive8); }

TEST(CheckpointTest, MismatchedOptionsRejected) {
  TestDb db(1024);
  WBox original(&db.cache);
  ASSERT_OK(original.InsertFirstElement().status());
  ASSERT_OK_AND_ASSIGN(const PageId head, original.Checkpoint());
  WBoxOptions pair_options;
  pair_options.pair_mode = true;
  WBox mismatched(&db.cache, pair_options);
  EXPECT_EQ(mismatched.Restore(head).code(), StatusCode::kInvalidArgument);
  BBox wrong_kind(&db.cache);
  EXPECT_EQ(wrong_kind.Restore(head).code(), StatusCode::kCorruption);
}

TEST(CheckpointTest, FullFileReopenCycle) {
  const std::string path = ::testing::TempDir() + "/boxes_checkpoint.db";
  std::vector<Lid> order;
  uint64_t expected_live = 0;

  // Session 1: create, load, mutate, checkpoint, close.
  {
    FilePageStore store(path, 1024, FilePageStore::Mode::kTruncate);
    ASSERT_OK(store.status());
    PageCache cache(&store);
    ASSERT_OK(InitializeSuperblock(&cache));
    WBox wbox(&cache);
    const xml::Document doc = xml::MakeRandomDocument(600, 5, 33);
    std::vector<NewElement> lids;
    ASSERT_OK(wbox.BulkLoad(doc, &lids));
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(
          wbox.InsertElementBefore(lids[(i * 13) % lids.size()].start)
              .status());
    }
    ASSERT_OK_AND_ASSIGN(const PageId head, wbox.Checkpoint());
    ASSERT_OK(CommitCheckpoint(&cache, head));
    order = TagOrderLids(doc, lids);
    expected_live = wbox.live_labels();
  }

  // Session 2: reopen the file, restore, verify, keep editing.
  {
    FilePageStore store(path, 1024, FilePageStore::Mode::kOpen);
    ASSERT_OK(store.status());
    PageCache cache(&store);
    ASSERT_OK_AND_ASSIGN(const PageId head, LoadCheckpointHead(&cache));
    WBox wbox(&cache);
    ASSERT_OK(wbox.Restore(head));
    EXPECT_EQ(wbox.live_labels(), expected_live);
    ASSERT_OK(wbox.CheckInvariants());
    EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, order));

    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(wbox.InsertElementBefore(order[(i * 7) % order.size()])
                    .status());
    }
    ASSERT_OK(wbox.CheckInvariants());
    // Re-checkpoint; the superseded chain is reclaimed only after the new
    // one is durably committed.
    ASSERT_OK_AND_ASSIGN(const PageId fresh_head, wbox.Checkpoint());
    ASSERT_OK(CommitCheckpoint(&cache, fresh_head));
    ASSERT_OK(FreeMetadataChain(&cache, head));
    ASSERT_OK(cache.FlushAll());
    expected_live = wbox.live_labels();
  }

  // Session 3: the second checkpoint is also consistent.
  {
    FilePageStore store(path, 1024, FilePageStore::Mode::kOpen);
    ASSERT_OK(store.status());
    PageCache cache(&store);
    ASSERT_OK_AND_ASSIGN(const PageId head, LoadCheckpointHead(&cache));
    WBox wbox(&cache);
    ASSERT_OK(wbox.Restore(head));
    EXPECT_EQ(wbox.live_labels(), expected_live);
    ASSERT_OK(wbox.CheckInvariants());
    EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, order));
  }
}

TEST(CheckpointTest, FacadeRegistryRoundTripsWithScheme) {
  const std::string path = ::testing::TempDir() + "/boxes_facade.db";
  std::string xml_before;
  {
    FilePageStore store(path, 1024, FilePageStore::Mode::kTruncate);
    ASSERT_OK(store.status());
    PageCache cache(&store);
    ASSERT_OK(InitializeSuperblock(&cache));
    WBox wbox(&cache);
    LabeledDocument doc(&wbox);
    ASSERT_OK(doc.LoadXml("<shop><aisle><item/><item/></aisle>"
                          "<till/></shop>")
                  .status());
    ASSERT_OK_AND_ASSIGN(const auto handles, doc.HandlesInDocumentOrder());
    ASSERT_OK(doc.AppendChild(handles[1], "item").status());
    ASSERT_OK_AND_ASSIGN(xml_before, doc.ToXml(false));
    // Combined checkpoint: scheme chain head + registry.
    ASSERT_OK_AND_ASSIGN(const PageId scheme_head, wbox.Checkpoint());
    MetadataWriter writer;
    writer.PutU64(scheme_head);
    doc.SaveState(&writer);
    ASSERT_OK_AND_ASSIGN(const PageId head, writer.Finish(&cache));
    ASSERT_OK(CommitCheckpoint(&cache, head));
  }
  {
    FilePageStore store(path, 1024, FilePageStore::Mode::kOpen);
    ASSERT_OK(store.status());
    PageCache cache(&store);
    ASSERT_OK_AND_ASSIGN(const PageId head, LoadCheckpointHead(&cache));
    ASSERT_OK_AND_ASSIGN(MetadataReader reader,
                         MetadataReader::Load(&cache, head));
    ASSERT_OK_AND_ASSIGN(const uint64_t scheme_head, reader.GetU64());
    WBox wbox(&cache);
    ASSERT_OK(wbox.Restore(scheme_head));
    LabeledDocument doc(&wbox);
    ASSERT_OK(doc.LoadState(&reader));
    ASSERT_OK(doc.CheckConsistency());
    ASSERT_OK_AND_ASSIGN(const std::string xml_after, doc.ToXml(false));
    EXPECT_EQ(xml_after, xml_before);
    // Tags survived with the registry.
    ASSERT_OK_AND_ASSIGN(const auto handles, doc.HandlesInDocumentOrder());
    EXPECT_EQ(doc.tag(handles[0]), "shop");
    EXPECT_EQ(doc.tag(handles[1]), "aisle");
  }
}

TEST(CheckpointTest, SuperblockWithoutCheckpointIsNotFound) {
  TestDb db(512);
  ASSERT_OK(InitializeSuperblock(&db.cache));
  EXPECT_EQ(LoadCheckpointHead(&db.cache).status().code(),
            StatusCode::kNotFound);
}

TEST(MetadataIoTest, CyclicChainIsCorruption) {
  TestDb db(512);
  MetadataWriter writer;
  for (int i = 0; i < 500; ++i) {
    writer.PutU64(static_cast<uint64_t>(i));  // spans several 512 B pages
  }
  ASSERT_OK_AND_ASSIGN(const PageId head, writer.Finish(&db.cache));
  // Hand-corrupt the second page's next pointer to loop back to the head.
  ASSERT_OK_AND_ASSIGN(uint8_t* first, db.cache.GetPage(head));
  const PageId second = DecodeFixed64(first);
  ASSERT_NE(second, kInvalidPageId);
  ASSERT_OK_AND_ASSIGN(uint8_t* data, db.cache.GetPageForWrite(second));
  EncodeFixed64(data, head);
  EXPECT_EQ(MetadataReader::Load(&db.cache, head).status().code(),
            StatusCode::kCorruption);
}

TEST(MetadataIoTest, OutOfRangeChainIsCorruption) {
  TestDb db(512);
  MetadataWriter writer;
  writer.PutString("short");
  ASSERT_OK_AND_ASSIGN(const PageId head, writer.Finish(&db.cache));
  ASSERT_OK_AND_ASSIGN(uint8_t* data, db.cache.GetPageForWrite(head));
  EncodeFixed64(data, db.store.total_pages() + 17);  // beyond the device
  EXPECT_EQ(MetadataReader::Load(&db.cache, head).status().code(),
            StatusCode::kCorruption);
}

TEST(MetadataIoTest, ChainThroughFreedPageIsCorruption) {
  TestDb db(512);
  MetadataWriter writer;
  writer.PutString("short");
  ASSERT_OK_AND_ASSIGN(const PageId head, writer.Finish(&db.cache));
  uint8_t* unused = nullptr;
  ASSERT_OK_AND_ASSIGN(const PageId victim, db.cache.AllocatePage(&unused));
  ASSERT_OK_AND_ASSIGN(uint8_t* data, db.cache.GetPageForWrite(head));
  EncodeFixed64(data, victim);
  ASSERT_OK(db.cache.FreePage(victim));
  EXPECT_EQ(MetadataReader::Load(&db.cache, head).status().code(),
            StatusCode::kCorruption);
}

TEST(CheckpointTest, CommitAlternatesSlotsAndSurvivesSlotLoss) {
  TestDb db(512);
  ASSERT_OK(InitializeSuperblock(&db.cache));
  MetadataWriter writer_a;
  writer_a.PutString("checkpoint A");
  ASSERT_OK_AND_ASSIGN(const PageId head_a, writer_a.Finish(&db.cache));
  ASSERT_OK(CommitCheckpoint(&db.cache, head_a));
  MetadataWriter writer_b;
  writer_b.PutString("checkpoint B");
  ASSERT_OK_AND_ASSIGN(const PageId head_b, writer_b.Finish(&db.cache));
  ASSERT_OK(CommitCheckpoint(&db.cache, head_b));
  ASSERT_OK_AND_ASSIGN(PageId current, LoadCheckpointHead(&db.cache));
  EXPECT_EQ(current, head_b);

  // Wreck the slot holding checkpoint B (as a torn commit write would);
  // the database degrades to checkpoint A instead of failing.
  ASSERT_OK_AND_ASSIGN(uint8_t* page0, db.cache.GetPageForWrite(0));
  superblock::Slot slot_a = superblock::DecodeSlot(page0);
  uint8_t* newest = (slot_a.valid && slot_a.head == head_b)
                        ? page0
                        : page0 + superblock::kSlotSize;
  newest[3] ^= 0xff;
  ASSERT_OK_AND_ASSIGN(current, LoadCheckpointHead(&db.cache));
  EXPECT_EQ(current, head_a);

  // With both slots gone the failure is a clean Corruption.
  std::memset(page0, 0xab, 2 * superblock::kSlotSize);
  EXPECT_EQ(LoadCheckpointHead(&db.cache).status().code(),
            StatusCode::kCorruption);
}

// Regression: a database written by the pre-WAL v2 format ("BOXESDB2"
// slots) used to fail as "no valid commit record" — indistinguishable
// from real corruption. It must be reported as a format-version mismatch.
TEST(CheckpointTest, LegacyV2SuperblockIsReportedAsFormatMismatch) {
  TestDb db(512);
  ASSERT_OK(InitializeSuperblock(&db.cache));
  ASSERT_OK_AND_ASSIGN(uint8_t* page0, db.cache.GetPageForWrite(0));
  // Hand-encode an intact v2 slot A: 8-byte magic, sequence, chain head,
  // CRC32C over the first 24 bytes; slot B zeroed.
  std::memset(page0, 0, 2 * superblock::kSlotSize);
  EncodeFixed64(page0, superblock::kSlotMagicV2);
  EncodeFixed64(page0 + 8, 7);                // sequence
  EncodeFixed64(page0 + 16, kInvalidPageId);  // head
  EncodeFixed32(page0 + 24, Crc32c(page0, 24));
  const Status status = LoadSuperblock(&db.cache).status();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("format v2"), std::string::npos)
      << status.message();
  // A scribbled page that is neither format stays plain corruption.
  std::memset(page0, 0xab, 2 * superblock::kSlotSize);
  EXPECT_EQ(LoadSuperblock(&db.cache).status().code(),
            StatusCode::kCorruption);
}

TEST(CheckpointTest, AllocatorSnapshotRoundTrip) {
  MemoryPageStore store(512);
  std::vector<PageId> pages;
  for (int i = 0; i < 10; ++i) {
    StatusOr<PageId> page = store.Allocate();
    ASSERT_TRUE(page.ok());
    pages.push_back(*page);
  }
  ASSERT_TRUE(store.Free(pages[3]).ok());
  ASSERT_TRUE(store.Free(pages[7]).ok());
  uint64_t total = 0;
  std::vector<PageId> free_pages;
  store.SnapshotAllocator(&total, &free_pages);
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(free_pages.size(), 2u);

  MemoryPageStore fresh(512);
  ASSERT_TRUE(fresh.RestoreAllocator(total, free_pages).ok());
  EXPECT_EQ(fresh.allocated_pages(), 8u);
  // Freed pages are handed out again before the device grows.
  StatusOr<PageId> reused = fresh.Allocate();
  ASSERT_TRUE(reused.ok());
  EXPECT_TRUE(*reused == pages[3] || *reused == pages[7]);
}

}  // namespace
}  // namespace boxes
