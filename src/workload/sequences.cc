#include "workload/sequences.h"

#include <algorithm>
#include <unordered_map>

#include "util/random.h"
#include "xml/generators.h"

namespace boxes::workload {

Status RunConcentratedInsertion(LabelingScheme* scheme, PageCache* cache,
                                uint64_t base_elements,
                                uint64_t insert_elements, RunStats* stats) {
  BOXES_CHECK(base_elements >= 1);
  const xml::Document base =
      xml::MakeTwoLevelDocument(base_elements - 1);  // root + children
  std::vector<NewElement> base_lids;
  BOXES_RETURN_IF_ERROR(UnmeasuredOp(
      cache, [&] { return scheme->BulkLoad(base, &base_lids); }));
  if (insert_elements == 0) {
    return Status::OK();
  }
  const Lid doc_root_end = base_lids[base.root()].end;

  // Insert the subtree root as the last child of the document root, then
  // its children pairwise: first, last, second, second-to-last, ... — every
  // pair lands in the center of the growing sibling list.
  NewElement sub_root;
  BOXES_RETURN_IF_ERROR(MeasureOp(
      cache,
      [&]() -> Status {
        BOXES_ASSIGN_OR_RETURN(sub_root,
                               scheme->InsertElementBefore(doc_root_end));
        return Status::OK();
      },
      stats));
  // Insertion #1 is the first child, #2 the last child; from #3 on, every
  // insertion goes immediately before the leftmost element of the "right"
  // block, i.e. into the dead center of the sibling list. Even-numbered
  // insertions extend the right block (L1 R1 L2 R2 ... reading the
  // insertion order, L1 L2 ... R2 R1 reading document order).
  NewElement last_right{};
  for (uint64_t i = 1; i < insert_elements; ++i) {
    const Lid anchor = i <= 2 ? sub_root.end : last_right.start;
    NewElement inserted;
    BOXES_RETURN_IF_ERROR(MeasureOp(
        cache,
        [&]() -> Status {
          BOXES_ASSIGN_OR_RETURN(inserted,
                                 scheme->InsertElementBefore(anchor));
          return Status::OK();
        },
        stats));
    if (i % 2 == 0) {
      last_right = inserted;
    }
  }
  return Status::OK();
}

Status RunScatteredInsertion(LabelingScheme* scheme, PageCache* cache,
                             uint64_t base_elements, uint64_t insert_elements,
                             RunStats* stats) {
  BOXES_CHECK(base_elements >= 2);
  const uint64_t children = base_elements - 1;
  const xml::Document base = xml::MakeTwoLevelDocument(children);
  std::vector<NewElement> base_lids;
  BOXES_RETURN_IF_ERROR(UnmeasuredOp(
      cache, [&] { return scheme->BulkLoad(base, &base_lids); }));
  // Children of the root are elements 1..children in creation order.
  for (uint64_t j = 0; j < insert_elements; ++j) {
    // Sweep evenly across all children so inserts spread over the document.
    const uint64_t child_index = 1 + (j * children) / insert_elements;
    const Lid anchor = base_lids[child_index].start;
    BOXES_RETURN_IF_ERROR(MeasureOp(
        cache,
        [&]() -> Status {
          return scheme->InsertElementBefore(anchor).status();
        },
        stats));
  }
  return Status::OK();
}

namespace {

/// Builds the document containing the first `count` elements of `doc` in
/// preorder (a preorder prefix is always a valid tree). `orig_of_prime`
/// maps new ids back to `doc` ids.
xml::Document PreorderPrefix(const xml::Document& doc, uint64_t count,
                             std::vector<xml::ElementId>* orig_of_prime) {
  const std::vector<xml::ElementId> preorder = doc.PreorderIds();
  BOXES_CHECK(count >= 1 && count <= preorder.size());
  xml::Document prefix;
  std::unordered_map<xml::ElementId, xml::ElementId> prime_of_orig;
  orig_of_prime->clear();
  for (uint64_t i = 0; i < count; ++i) {
    const xml::ElementId orig = preorder[i];
    xml::ElementId prime;
    if (i == 0) {
      prime = prefix.AddRoot(doc.element(orig).tag);
    } else {
      prime = prefix.AddChild(prime_of_orig.at(doc.element(orig).parent),
                              doc.element(orig).tag);
    }
    prime_of_orig[orig] = prime;
    orig_of_prime->push_back(orig);
  }
  return prefix;
}

}  // namespace

Status RunDocumentOrderInsertion(LabelingScheme* scheme, PageCache* cache,
                                 const xml::Document& doc,
                                 uint64_t prime_elements, RunStats* stats,
                                 std::vector<NewElement>* lids_out) {
  BOXES_CHECK(!doc.empty());
  prime_elements =
      std::max<uint64_t>(1, std::min(prime_elements, doc.element_count()));
  std::vector<xml::ElementId> orig_of_prime;
  const xml::Document prefix =
      PreorderPrefix(doc, prime_elements, &orig_of_prime);
  std::vector<NewElement> prime_lids;
  BOXES_RETURN_IF_ERROR(UnmeasuredOp(
      cache, [&] { return scheme->BulkLoad(prefix, &prime_lids); }));

  std::vector<NewElement> lids(doc.element_count());
  for (uint64_t i = 0; i < prime_elements; ++i) {
    lids[orig_of_prime[i]] = prime_lids[i];
  }
  const std::vector<xml::ElementId> preorder = doc.PreorderIds();
  for (uint64_t i = prime_elements; i < preorder.size(); ++i) {
    const xml::ElementId id = preorder[i];
    // The element's left siblings already exist, so inserting before the
    // parent's end tag makes it the current last child — document order of
    // start tags.
    const Lid anchor = lids[doc.element(id).parent].end;
    BOXES_RETURN_IF_ERROR(MeasureOp(
        cache,
        [&]() -> Status {
          BOXES_ASSIGN_OR_RETURN(lids[id],
                                 scheme->InsertElementBefore(anchor));
          return Status::OK();
        },
        stats));
  }
  if (lids_out != nullptr) {
    *lids_out = std::move(lids);
  }
  return Status::OK();
}

Status MeasureLookups(LabelingScheme* scheme, PageCache* cache,
                      const std::vector<NewElement>& lids, uint64_t count,
                      bool pairs, uint64_t seed, RunStats* stats) {
  BOXES_CHECK(!lids.empty());
  Random rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    const NewElement& element = lids[rng.Uniform(lids.size())];
    BOXES_RETURN_IF_ERROR(MeasureOp(
        cache,
        [&]() -> Status {
          if (pairs) {
            return scheme->LookupElement(element.start, element.end)
                .status();
          }
          return scheme->Lookup(element.start).status();
        },
        stats));
  }
  return Status::OK();
}

}  // namespace boxes::workload
