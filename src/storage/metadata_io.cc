#include "storage/metadata_io.h"

#include <algorithm>
#include <cstring>

#include <unordered_set>

#include "storage/superblock_format.h"
#include "util/coding.h"

namespace boxes {

namespace {

constexpr size_t kPageHeaderSize = 16;

// No slot decoded as current-format: distinguish "this is an older-format
// database" (a clear, actionable FailedPrecondition) from real corruption.
// Both legacy formats used a 32-byte slot stride, so the probe walks THAT
// layout, not the current 40-byte one.
Status NoActiveSlotError(const uint8_t* page) {
  constexpr size_t kLegacySlotSize = 32;
  for (size_t i = 0; i < superblock::kNumSlots; ++i) {
    if (superblock::IsLegacyV2Slot(page + i * kLegacySlotSize)) {
      return Status::FailedPrecondition(
          "superblock is format v2 (BOXESDB2), which predates the op log's "
          "WAL mark; this build reads format v4 (BXD4) only — re-create the "
          "database or migrate it with a v2-era build");
    }
    if (superblock::IsLegacyV3Slot(page + i * kLegacySlotSize)) {
      return Status::FailedPrecondition(
          "superblock is format v3 (BXD3), which predates the replication "
          "fencing token; this build reads format v4 (BXD4) only — "
          "re-create the database or migrate it with a v3-era build");
    }
  }
  return Status::Corruption("superblock holds no valid commit record");
}

}  // namespace

void MetadataWriter::PutU32(uint32_t value) {
  uint8_t raw[4];
  EncodeFixed32(raw, value);
  buffer_.insert(buffer_.end(), raw, raw + sizeof(raw));
}

void MetadataWriter::PutU64(uint64_t value) {
  uint8_t raw[8];
  EncodeFixed64(raw, value);
  buffer_.insert(buffer_.end(), raw, raw + sizeof(raw));
}

void MetadataWriter::PutBytes(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

void MetadataWriter::PutString(const std::string& text) {
  PutU32(static_cast<uint32_t>(text.size()));
  PutBytes(reinterpret_cast<const uint8_t*>(text.data()), text.size());
}

StatusOr<PageId> MetadataWriter::Finish(PageCache* cache) const {
  const size_t payload_per_page = cache->page_size() - kPageHeaderSize;
  PageId head = kInvalidPageId;
  uint8_t* previous_page = nullptr;
  size_t offset = 0;
  do {
    uint8_t* data = nullptr;
    BOXES_ASSIGN_OR_RETURN(const PageId page, cache->AllocatePage(&data));
    if (previous_page != nullptr) {
      EncodeFixed64(previous_page, page);  // link from the previous page
    } else {
      head = page;
    }
    const size_t chunk =
        std::min(payload_per_page, buffer_.size() - offset);
    EncodeFixed64(data, kInvalidPageId);
    EncodeFixed32(data + 8, static_cast<uint32_t>(chunk));
    std::memcpy(data + kPageHeaderSize, buffer_.data() + offset, chunk);
    offset += chunk;
    previous_page = data;
  } while (offset < buffer_.size());
  return head;
}

StatusOr<MetadataReader> MetadataReader::Load(PageCache* cache, PageId head) {
  MetadataReader reader;
  PageId page = head;
  std::unordered_set<PageId> visited;
  while (page != kInvalidPageId) {
    if (page >= cache->store()->total_pages()) {
      return Status::Corruption("metadata chain links page " +
                                std::to_string(page) + " beyond the device");
    }
    if (!visited.insert(page).second) {
      return Status::Corruption("metadata chain cycles through page " +
                                std::to_string(page));
    }
    StatusOr<uint8_t*> data_or = cache->GetPage(page);
    if (!data_or.ok()) {
      // A chain linking a freed/unallocated page is corrupt metadata, not a
      // caller error; I/O and checksum failures pass through unchanged.
      if (data_or.status().code() == StatusCode::kInvalidArgument) {
        return Status::Corruption("metadata chain links unallocated page " +
                                  std::to_string(page) + ": " +
                                  data_or.status().message());
      }
      return data_or.status();
    }
    uint8_t* data = *data_or;
    const PageId next = DecodeFixed64(data);
    const uint32_t used = DecodeFixed32(data + 8);
    if (used > cache->page_size() - kPageHeaderSize) {
      return Status::Corruption("metadata page overflows its frame");
    }
    reader.buffer_.insert(reader.buffer_.end(), data + kPageHeaderSize,
                          data + kPageHeaderSize + used);
    page = next;
  }
  return reader;
}

StatusOr<uint32_t> MetadataReader::GetU32() {
  if (position_ + 4 > buffer_.size()) {
    return Status::OutOfRange("metadata stream truncated");
  }
  const uint32_t value = DecodeFixed32(buffer_.data() + position_);
  position_ += 4;
  return value;
}

StatusOr<uint64_t> MetadataReader::GetU64() {
  if (position_ + 8 > buffer_.size()) {
    return Status::OutOfRange("metadata stream truncated");
  }
  const uint64_t value = DecodeFixed64(buffer_.data() + position_);
  position_ += 8;
  return value;
}

Status MetadataReader::GetBytes(uint8_t* out, size_t size) {
  if (position_ + size > buffer_.size()) {
    return Status::OutOfRange("metadata stream truncated");
  }
  std::memcpy(out, buffer_.data() + position_, size);
  position_ += size;
  return Status::OK();
}

StatusOr<std::string> MetadataReader::GetString() {
  BOXES_ASSIGN_OR_RETURN(const uint32_t size, GetU32());
  if (position_ + size > buffer_.size()) {
    return Status::OutOfRange("metadata stream truncated");
  }
  std::string text(reinterpret_cast<const char*>(buffer_.data() + position_),
                   size);
  position_ += size;
  return text;
}

Status FreeMetadataChain(PageCache* cache, PageId head) {
  PageId page = head;
  uint64_t guard = 0;
  while (page != kInvalidPageId) {
    if (++guard > (1u << 24)) {
      return Status::Corruption("metadata chain does not terminate");
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache->GetPage(page));
    const PageId next = DecodeFixed64(data);
    BOXES_RETURN_IF_ERROR(cache->FreePage(page));
    page = next;
  }
  return Status::OK();
}

Status InitializeSuperblock(PageCache* cache) {
  uint8_t* data = nullptr;
  BOXES_ASSIGN_OR_RETURN(const PageId page, cache->AllocatePage(&data));
  if (page != 0) {
    return Status::FailedPrecondition(
        "the superblock must be the first allocated page");
  }
  superblock::EncodeSlot(data, /*sequence=*/1, kInvalidPageId);
  std::memset(data + superblock::kSlotSize, 0, superblock::kSlotSize);
  return Status::OK();
}

Status CommitCheckpoint(PageCache* cache, PageId head, uint64_t wal_mark,
                        uint64_t fencing_token) {
  // 1. The chain (and every dirty data page) must be durable before the
  // commit record can point at it.
  BOXES_RETURN_IF_ERROR(cache->FlushAll());
  BOXES_RETURN_IF_ERROR(cache->store()->Sync());
  // 2. Encode the *inactive* slot; the active slot's bytes stay identical,
  // so even a torn write of page 0 preserves a loadable record.
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache->GetPageForWrite(0));
  superblock::Slot active;
  const int active_index = superblock::PickActiveSlot(data, &active);
  if (active_index < 0) {
    return NoActiveSlotError(data);
  }
  const uint64_t sequence = active.sequence + 1;
  const uint64_t mark =
      wal_mark == kPreserveWalMark ? active.wal_mark : wal_mark;
  const uint64_t token = fencing_token == kPreserveFencingToken
                             ? active.fencing_token
                             : fencing_token;
  superblock::EncodeSlot(
      data + (1 - active_index) * superblock::kSlotSize, sequence, head,
      mark, token);
  // 3. Persist the flip; only page 0 is dirty at this point.
  BOXES_RETURN_IF_ERROR(cache->FlushAll());
  BOXES_RETURN_IF_ERROR(cache->store()->Sync());
  // 4. The new checkpoint is durable; the previous epoch's pre-images can
  // be discarded.
  return cache->store()->CommitEpoch(sequence);
}

StatusOr<PageId> LoadCheckpointHead(PageCache* cache) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache->GetPage(0));
  superblock::Slot active;
  if (superblock::PickActiveSlot(data, &active) < 0) {
    return NoActiveSlotError(data);
  }
  if (active.head == kInvalidPageId) {
    return Status::NotFound("no checkpoint recorded");
  }
  return active.head;
}

StatusOr<SuperblockInfo> LoadSuperblock(PageCache* cache) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache->GetPage(0));
  superblock::Slot active;
  if (superblock::PickActiveSlot(data, &active) < 0) {
    return NoActiveSlotError(data);
  }
  SuperblockInfo info;
  info.sequence = active.sequence;
  info.head = active.head;
  info.wal_mark = active.wal_mark;
  info.fencing_token = active.fencing_token;
  return info;
}

}  // namespace boxes
