# Empty dependencies file for bench_fig7_scattered.
# This may be replaced when dependencies are built.
