#ifndef BOXES_STORAGE_METADATA_IO_H_
#define BOXES_STORAGE_METADATA_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page_cache.h"
#include "util/status.h"

namespace boxes {

/// Serializes structure metadata (roots, counters, the LIDF directory and
/// liveness bitmap, ...) into a chain of pages, giving the otherwise
/// in-memory bookkeeping a durable home so file-backed databases can be
/// closed and reopened.
///
/// Page layout: [0..7] next page id (kInvalidPageId at the tail),
/// [8..11] payload bytes used, [16..] payload.
class MetadataWriter {
 public:
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutBytes(const uint8_t* data, size_t size);
  void PutString(const std::string& text);

  /// Writes the accumulated buffer into freshly allocated pages of `cache`
  /// and returns the head page id.
  StatusOr<PageId> Finish(PageCache* cache) const;

 private:
  std::vector<uint8_t> buffer_;
};

/// Reads back a metadata chain written by MetadataWriter. All Get* calls
/// are bounds-checked; reading past the end yields OutOfRange.
class MetadataReader {
 public:
  /// Loads the whole chain starting at `head`.
  static StatusOr<MetadataReader> Load(PageCache* cache, PageId head);

  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  Status GetBytes(uint8_t* out, size_t size);
  StatusOr<std::string> GetString();

  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return position_ == buffer_.size(); }

  /// Empty reader (required by StatusOr); use Load() to obtain real ones.
  MetadataReader() = default;

 private:
  std::vector<uint8_t> buffer_;
  size_t position_ = 0;
};

/// Frees the pages of a metadata chain (e.g. a superseded checkpoint).
Status FreeMetadataChain(PageCache* cache, PageId head);

/// Superblock conventions: checkpoint-enabled databases reserve page 0
/// before any structure allocates pages. Page 0 is a dual-slot commit
/// record (see storage/superblock_format.h): each slot independently
/// carries a sequence number, the checkpoint chain head, and a CRC32C, and
/// a commit only ever writes the inactive slot — so a crash at any write
/// boundary leaves the previous checkpoint loadable.

/// Allocates and formats page 0 (slot A, sequence 1, no checkpoint); must
/// be the very first allocation on a fresh store.
Status InitializeSuperblock(PageCache* cache);

/// `wal_mark` value for CommitCheckpoint meaning "carry the active slot's
/// mark forward unchanged" — what every caller without an op log wants.
inline constexpr uint64_t kPreserveWalMark = UINT64_MAX;

/// `fencing_token` value for CommitCheckpoint meaning "carry the active
/// slot's token forward unchanged" — what every caller outside a
/// promotion wants. (A real token of UINT64_MAX is unreachable: tokens
/// start at 0 and bump by 1 per promotion.)
inline constexpr uint64_t kPreserveFencingToken = UINT64_MAX;

/// Atomically publishes `head` as the current checkpoint:
///   1. flush + Sync — the chain (and all data pages) become durable;
///   2. encode the inactive superblock slot with the next sequence number;
///   3. flush + Sync — the flipped commit record becomes durable;
///   4. PageStore::CommitEpoch — pre-images of the previous epoch retire.
/// A crash before step 3 completes recovers the previous checkpoint; after,
/// the new one. The caller frees the superseded chain *after* this returns.
///
/// `wal_mark`, when not kPreserveWalMark, is recorded in the new slot: the
/// id of the first op-log batch this checkpoint does NOT cover (see
/// storage/wal.h). Callers without an op log keep the default.
///
/// `fencing_token`, when not kPreserveFencingToken, replaces the persisted
/// replication fencing token (see replication/standby_applier.h). Only a
/// promotion passes it; every other commit carries the token forward.
Status CommitCheckpoint(PageCache* cache, PageId head,
                        uint64_t wal_mark = kPreserveWalMark,
                        uint64_t fencing_token = kPreserveFencingToken);

/// Reads the checkpoint chain head from the active superblock slot;
/// NotFound if the database holds no checkpoint yet, Corruption if neither
/// slot decodes.
StatusOr<PageId> LoadCheckpointHead(PageCache* cache);

/// The active superblock commit record: checkpoint sequence (the store
/// epoch / WAL generation), chain head (kInvalidPageId when no checkpoint
/// has been written yet), and the WAL mark. Corruption if neither slot
/// decodes. Unlike LoadCheckpointHead, a missing checkpoint is not an
/// error — recovery of a never-checkpointed database replays the whole op
/// log onto an empty scheme.
struct SuperblockInfo {
  uint64_t sequence = 0;
  PageId head = kInvalidPageId;
  uint64_t wal_mark = 1;
  uint64_t fencing_token = 0;
};
StatusOr<SuperblockInfo> LoadSuperblock(PageCache* cache);

}  // namespace boxes

#endif  // BOXES_STORAGE_METADATA_IO_H_
