#include "replication/transport.h"

#include <utility>

namespace boxes::replication {

FaultyLink::FaultyLink(LinkFaultOptions options)
    : options_(options), rng_(options.seed) {}

bool FaultyLink::Roll(double probability) {
  if (probability <= 0.0) {
    return false;
  }
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < probability;
}

Status FaultyLink::Send(std::vector<uint8_t> frame) {
  if (down_) {
    return Status::Unavailable("replication link is down");
  }
  ++sent_;
  if (Roll(options_.drop_probability)) {
    ++dropped_;
    return Status::OK();  // silent loss — catch-up heals it
  }
  if (Roll(options_.tear_probability)) {
    // Truncate to a random prefix (possibly shorter than the header). The
    // receiver's frame CRCs turn this into a counted drop.
    ++torn_;
    frame.resize(rng_() % (frame.size() + 1));
  }
  const bool duplicate = Roll(options_.duplicate_probability);
  if (duplicate) {
    ++duplicated_;
    queue_.push_back(frame);
  }
  queue_.push_back(std::move(frame));
  if (queue_.size() >= 2 && Roll(options_.reorder_probability)) {
    ++reordered_;
    std::swap(queue_.back(), queue_[queue_.size() - 2]);
  }
  return Status::OK();
}

bool FaultyLink::Receive(std::vector<uint8_t>* out) {
  if (queue_.empty()) {
    return false;
  }
  *out = std::move(queue_.front());
  queue_.pop_front();
  ++delivered_;
  return true;
}

}  // namespace boxes::replication
