#ifndef BOXES_CORE_COMMON_EPOCH_GUARD_H_
#define BOXES_CORE_COMMON_EPOCH_GUARD_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>

namespace boxes {

/// Single-writer / multi-reader guard for a labeling scheme (DESIGN.md §4g).
///
/// The protocol is a seqlock-style epoch gate layered over a shared mutex:
///
///   * The epoch counter is even while the structure is quiescent and odd
///     while a write is pending or in progress. A completed write advances
///     it by 2, so `epoch() = epoch_counter / 2` counts committed writes.
///   * Writers (one at a time, serialized on `writer_mu_`) first flip the
///     counter to odd, *then* take the mutex exclusively. New readers see
///     the odd counter and back off immediately, so the writer only waits
///     for readers already inside — writers cannot be starved by a steady
///     reader stream.
///   * Readers never block on the mutex: TryBeginRead() fails fast when the
///     counter is odd or `try_lock_shared` loses a race, and the caller
///     retries (counted in reader_retries(), surfaced as the
///     "concurrency.reader_retries" metric). Once a ticket is issued the
///     reader holds the mutex shared for the whole lookup, so the pages it
///     dereferences cannot change under it — observations are never torn,
///     and the ticket's epoch names exactly which committed state was read.
///
/// What is linearizable: every read that returns a ticket observed the
/// state after exactly `ticket.epoch` committed writes. What is not: the
/// *assignment* of epochs to wall-clock time — two readers may observe
/// epochs in either order relative to their call order.
class EpochGuard {
 public:
  /// Proof of read admission; `epoch` is the number of committed writes the
  /// observed state includes.
  struct ReadTicket {
    uint64_t epoch = 0;
  };

  EpochGuard() = default;
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  /// Attempts read admission without blocking. Returns nullopt (and counts
  /// a retry) when a writer is pending or active; the caller should yield
  /// and try again. On success the caller MUST call EndRead().
  std::optional<ReadTicket> TryBeginRead();

  /// Releases a ticket obtained from TryBeginRead().
  void EndRead();

  /// Blocks new readers (epoch goes odd), waits for in-flight readers to
  /// drain, and enters the exclusive section. One writer at a time; nested
  /// BeginWrite on one thread deadlocks by design (as any mutex would).
  void BeginWrite();

  /// Commits the write: the epoch becomes even again and readers resume.
  void EndWrite();

  /// Number of committed writes so far.
  uint64_t epoch() const { return counter_.load(std::memory_order_acquire) / 2; }

  /// True while a writer is pending or inside its exclusive section.
  bool writer_active() const {
    return (counter_.load(std::memory_order_acquire) & 1) != 0;
  }

  /// Total failed read admissions (the "concurrency.reader_retries"
  /// counter family).
  uint64_t reader_retries() const {
    return reader_retries_.load(std::memory_order_relaxed);
  }

 private:
  // Even = quiescent, odd = writer pending/active. Incremented once when a
  // write begins and once when it commits.
  std::atomic<uint64_t> counter_{0};
  std::shared_mutex mu_;
  std::mutex writer_mu_;  // serializes writers
  std::atomic<uint64_t> reader_retries_{0};
};

/// RAII read admission: spins (with yields) on TryBeginRead until admitted.
/// The guard's epoch gate bounds the spin by the writer's critical section.
class EpochReadLock {
 public:
  explicit EpochReadLock(EpochGuard* guard);
  ~EpochReadLock();

  EpochReadLock(const EpochReadLock&) = delete;
  EpochReadLock& operator=(const EpochReadLock&) = delete;

  const EpochGuard::ReadTicket& ticket() const { return ticket_; }
  uint64_t epoch() const { return ticket_.epoch; }

 private:
  EpochGuard* guard_;
  EpochGuard::ReadTicket ticket_;
};

/// RAII exclusive section for the (single) writer.
class EpochWriteLock {
 public:
  explicit EpochWriteLock(EpochGuard* guard) : guard_(guard) {
    guard_->BeginWrite();
  }
  ~EpochWriteLock() { guard_->EndWrite(); }

  EpochWriteLock(const EpochWriteLock&) = delete;
  EpochWriteLock& operator=(const EpochWriteLock&) = delete;

 private:
  EpochGuard* guard_;
};

}  // namespace boxes

#endif  // BOXES_CORE_COMMON_EPOCH_GUARD_H_
