// Concurrency tests (DESIGN.md §4g): the single-writer/multi-reader epoch
// guard, the sharded thread-safe PageCache, thread-safe metrics, and
// N-readers/1-writer stress on every scheme asserting that concurrent
// lookups are never torn. Run under TSan via the sanitize-thread preset
// (tests/run_tsan.sh); labeled `concurrency` in ctest.

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/cachelog/caching_store.h"
#include "core/common/epoch_guard.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "lidf/lidf.h"
#include "model_tree.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "test_util.h"
#include "util/metrics.h"
#include "util/random.h"
#include "workload/concurrent_runner.h"
#include "xml/generators.h"

namespace boxes::testing {
namespace {

constexpr size_t kHammerThreads = 8;

/// Runs `body(thread_index)` on `threads` threads, joining all. A simple
/// spin barrier releases every thread at once so the interleaving window
/// is as wide as possible.
void RunThreads(size_t threads, const std::function<void(size_t)>& body) {
  std::atomic<size_t> ready{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < threads) {
        std::this_thread::yield();
      }
      body(t);
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry / Histogram under concurrent hammering (the latent race
// this PR fixes: counters and histograms used to be plain integers).

TEST(ConcurrentMetricsTest, CounterHammerIsExact) {
  MetricsRegistry registry;
  constexpr uint64_t kPerThread = 20000;
  RunThreads(kHammerThreads, [&](size_t t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      registry.IncrementCounter("hammer.shared");
      registry.IncrementCounter("hammer.thread." + std::to_string(t));
    }
  });
  EXPECT_EQ(registry.CounterValue("hammer.shared"),
            kHammerThreads * kPerThread);
  for (size_t t = 0; t < kHammerThreads; ++t) {
    EXPECT_EQ(registry.CounterValue("hammer.thread." + std::to_string(t)),
              kPerThread);
  }
}

TEST(ConcurrentMetricsTest, HistogramHammerIsExact) {
  MetricsRegistry registry;
  constexpr uint64_t kPerThread = 10000;
  RunThreads(kHammerThreads, [&](size_t t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      registry.RecordValue("hammer.histogram", t + 1);
    }
  });
  const Histogram* h = registry.GetHistogram("hammer.histogram");
  EXPECT_EQ(h->count(), kHammerThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (size_t t = 0; t < kHammerThreads; ++t) {
    expected_sum += (t + 1) * kPerThread;
  }
  EXPECT_EQ(h->sum(), expected_sum);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), kHammerThreads);
}

TEST(ConcurrentMetricsTest, ReadersWhileWriting) {
  // ToJson / CounterValue / GetHistogram racing with increments must be
  // clean (TSan) and see internally consistent state.
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.ToJson();
      (void)registry.CounterValue("mixed.counter");
    }
  });
  for (int i = 0; i < 5000; ++i) {
    registry.IncrementCounter("mixed.counter");
    registry.RecordValue("mixed.histogram", static_cast<uint64_t>(i));
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(registry.CounterValue("mixed.counter"), 5000u);
}

// ---------------------------------------------------------------------------
// EpochGuard protocol.

TEST(EpochGuardTest, EpochCountsCommittedWrites) {
  EpochGuard guard;
  EXPECT_EQ(guard.epoch(), 0u);
  EXPECT_FALSE(guard.writer_active());
  {
    EpochWriteLock lock(&guard);
    EXPECT_TRUE(guard.writer_active());
    // A reader arriving mid-write bounces instead of blocking.
    EXPECT_FALSE(guard.TryBeginRead().has_value());
    EXPECT_GE(guard.reader_retries(), 1u);
  }
  EXPECT_FALSE(guard.writer_active());
  EXPECT_EQ(guard.epoch(), 1u);
  const auto ticket = guard.TryBeginRead();
  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(ticket->epoch, 1u);
  guard.EndRead();
}

TEST(EpochGuardTest, ReadersSeeMonotonicEpochs) {
  EpochGuard guard;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_seen{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        EpochReadLock lock(&guard);
        EXPECT_GE(lock.epoch(), last);  // epochs never run backwards
        last = lock.epoch();
        uint64_t seen = max_seen.load(std::memory_order_relaxed);
        while (seen < last &&
               !max_seen.compare_exchange_weak(seen, last)) {
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    EpochWriteLock lock(&guard);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(guard.epoch(), 200u);
  EXPECT_LE(max_seen.load(), 200u);
}

// ---------------------------------------------------------------------------
// Sharded PageCache.

TEST(ConcurrentPageCacheTest, ConcurrentReadersChargeEachPageOnce) {
  TestDb db;
  constexpr size_t kPages = 64;
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    uint8_t* data = nullptr;
    ASSERT_OK_AND_ASSIGN(const PageId id, db.cache.AllocatePage(&data));
    std::memset(data, static_cast<int>(i + 1), db.cache.page_size());
    ids.push_back(id);
  }
  ASSERT_OK(db.cache.FlushAll());  // drop: every first touch is a miss
  db.cache.ResetStats();

  std::atomic<uint64_t> mismatches{0};
  RunThreads(kHammerThreads, [&](size_t t) {
    Random rng(t);
    for (int i = 0; i < 2000; ++i) {
      const size_t slot = rng.Uniform(kPages);
      StatusOr<uint8_t*> page = db.cache.GetPage(ids[slot]);
      ASSERT_OK(page.status());
      // Every byte must carry the page's fill pattern — a torn install
      // or cross-page aliasing would break this.
      if ((*page)[0] != static_cast<uint8_t>(slot + 1) ||
          (*page)[db.cache.page_size() - 1] !=
              static_cast<uint8_t>(slot + 1)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  // Racing misses on one page resolve to a single charged load.
  EXPECT_EQ(db.cache.stats().reads, kPages);
  EXPECT_EQ(db.cache.resident_pages(), kPages);
}

TEST(ConcurrentPageCacheTest, PerThreadPhaseAttribution) {
  TestDb db;
  constexpr size_t kPages = 32;
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    uint8_t* data = nullptr;
    ASSERT_OK_AND_ASSIGN(const PageId id, db.cache.AllocatePage(&data));
    ids.push_back(id);
  }
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();

  // Each thread reads its own disjoint page range under its own phase;
  // attribution must not leak across threads.
  RunThreads(2, [&](size_t t) {
    ScopedPhase phase(&db.cache,
                      t == 0 ? IoPhase::kSearch : IoPhase::kRelabel);
    for (size_t i = 0; i < kPages / 2; ++i) {
      ASSERT_OK(db.cache.GetPage(ids[t * (kPages / 2) + i]).status());
    }
  });
  EXPECT_EQ(db.cache.phase_stats(IoPhase::kSearch).reads, kPages / 2);
  EXPECT_EQ(db.cache.phase_stats(IoPhase::kRelabel).reads, kPages / 2);
  EXPECT_EQ(db.cache.current_phase(), IoPhase::kOther);
}

// ---------------------------------------------------------------------------
// Scheme stress: N readers / 1 writer, observations never torn.

struct SchemeFactory {
  const char* name;
  std::unique_ptr<LabelingScheme> (*make)(PageCache* cache);
};

std::unique_ptr<LabelingScheme> MakeWbox(PageCache* cache) {
  return std::make_unique<WBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeBbox(PageCache* cache) {
  return std::make_unique<BBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeNaive(PageCache* cache) {
  NaiveOptions options;
  options.gap_bits = 16;
  return std::make_unique<NaiveScheme>(cache, options);
}

class SchemeConcurrencyTest
    : public ::testing::TestWithParam<SchemeFactory> {};

/// Snapshot the probe labels; call under the write lock (or before
/// readers exist).
std::map<Lid, Label> SnapshotProbes(LabelingScheme* scheme,
                                    const std::vector<Lid>& probes) {
  std::map<Lid, Label> out;
  for (const Lid lid : probes) {
    StatusOr<Label> label = scheme->Lookup(lid);
    EXPECT_OK(label.status());
    if (label.ok()) {
      out[lid] = *label;
    }
  }
  return out;
}

TEST_P(SchemeConcurrencyTest, ReadersNeverObserveTornLabels) {
  TestDb db;
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);

  const xml::Document doc = xml::MakeTwoLevelDocument(120);
  std::vector<NewElement> loaded;
  ASSERT_OK(scheme->BulkLoad(doc, &loaded));
  std::vector<Lid> probes;
  for (size_t i = 0; i < loaded.size(); i += 3) {
    probes.push_back(loaded[i].start);
  }

  EpochLabelOracle oracle;
  EpochGuard& guard = scheme->epoch_guard();
  oracle.RecordEpoch(guard.epoch(), SnapshotProbes(scheme.get(), probes));

  constexpr int kReaders = 4;
  constexpr int kLookupsPerReader = 3000;
  constexpr int kWriterOps = 60;
  std::atomic<uint64_t> violations{0};
  std::atomic<int> readers_done{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < kReaders; ++t) {
    pool.emplace_back([&, t] {
      Random rng(100 + t);
      uint64_t last_epoch = 0;
      for (int i = 0; i < kLookupsPerReader; ++i) {
        const Lid lid = probes[rng.Uniform(probes.size())];
        StatusOr<VersionedLabel> got = scheme->LookupShared(lid);
        ASSERT_OK(got.status());
        // Per-thread epochs are monotone, and every observation matches
        // the recorded state of exactly its epoch.
        EXPECT_GE(got->epoch, last_epoch);
        last_epoch = got->epoch;
        const Status check =
            oracle.CheckObservation(lid, got->label, got->epoch);
        if (!check.ok()) {
          ADD_FAILURE() << check.ToString();
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
      readers_done.fetch_add(1, std::memory_order_release);
    });
  }

  std::thread writer([&] {
    Random rng(7);
    std::vector<NewElement> inserted;
    for (int op = 0; op < kWriterOps; ++op) {
      EpochWriteLock lock(&guard);
      if (!inserted.empty() && rng.Bernoulli(0.3)) {
        const NewElement victim = inserted.back();
        inserted.pop_back();
        ASSERT_OK(scheme->Delete(victim.start));
        ASSERT_OK(scheme->Delete(victim.end));
      } else {
        const Lid before = probes[rng.Uniform(probes.size())];
        StatusOr<NewElement> fresh = scheme->InsertElementBefore(before);
        ASSERT_OK(fresh.status());
        inserted.push_back(*fresh);
      }
      // Still under the lock: define what the next epoch must look like
      // before any reader can be admitted into it.
      oracle.RecordEpoch(guard.epoch() + 1,
                         SnapshotProbes(scheme.get(), probes));
      // Let readers in between writes on a single-core machine.
      if (readers_done.load(std::memory_order_acquire) == kReaders) {
        break;
      }
    }
  });

  for (std::thread& t : pool) {
    t.join();
  }
  writer.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_OK(scheme->CheckInvariants());
  // The writer committed at least one epoch while readers ran, and the
  // guard's epoch equals the number of recorded post-write states.
  EXPECT_GE(guard.epoch(), 1u);
  EXPECT_EQ(oracle.recorded_epochs(), guard.epoch() + 1);
}

TEST_P(SchemeConcurrencyTest, ShutdownUnderLoad) {
  // Readers are still issuing lookups when the test decides to stop: all
  // threads must drain cleanly, and the structure must stay consistent.
  TestDb db;
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(60);
  std::vector<NewElement> loaded;
  ASSERT_OK(scheme->BulkLoad(doc, &loaded));
  std::vector<Lid> probes;
  for (const NewElement& element : loaded) {
    probes.push_back(element.start);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Random rng(t);
      while (!stop.load(std::memory_order_acquire)) {
        ASSERT_OK(
            scheme->LookupShared(probes[rng.Uniform(probes.size())])
                .status());
      }
    });
  }
  std::thread writer([&] {
    Random rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      EpochWriteLock lock(&scheme->epoch_guard());
      StatusOr<NewElement> fresh = scheme->InsertElementBefore(
          probes[rng.Uniform(probes.size())]);
      ASSERT_OK(fresh.status());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  writer.join();
  EXPECT_OK(scheme->CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeConcurrencyTest,
    ::testing::Values(SchemeFactory{"wbox", &MakeWbox},
                      SchemeFactory{"bbox", &MakeBbox},
                      SchemeFactory{"naive16", &MakeNaive}),
    [](const ::testing::TestParamInfo<SchemeFactory>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------------
// LIDF dereference and the caching/replay read path under concurrency.

TEST(ConcurrentLidfTest, ConcurrentDereference) {
  TestDb db;
  Lidf lidf(&db.cache, /*payload_size=*/16);
  constexpr size_t kRecords = 256;
  std::vector<Lid> lids;
  std::vector<uint8_t> fill(lidf.payload_size());
  for (size_t i = 0; i < kRecords; ++i) {
    ASSERT_OK_AND_ASSIGN(const Lid lid, lidf.Allocate());
    std::memset(fill.data(), static_cast<int>(i & 0xff), fill.size());
    ASSERT_OK(lidf.Write(lid, fill.data()));
    lids.push_back(lid);
  }
  ASSERT_OK(db.cache.FlushAll());

  RunThreads(kHammerThreads, [&](size_t t) {
    Random rng(t);
    std::vector<uint8_t> payload(lidf.payload_size());
    for (int i = 0; i < 2000; ++i) {
      const size_t slot = rng.Uniform(kRecords);
      ASSERT_OK(lidf.Read(lids[slot], payload.data()));
      EXPECT_EQ(payload[0], static_cast<uint8_t>(slot & 0xff));
      EXPECT_EQ(payload[lidf.payload_size() - 1],
                static_cast<uint8_t>(slot & 0xff));
    }
  });
}

TEST(ConcurrentCachingStoreTest, ResilientLookupsUnderConcurrentWrites) {
  TestDb db;
  std::unique_ptr<LabelingScheme> scheme = MakeWbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(80);
  std::vector<NewElement> loaded;
  ASSERT_OK(scheme->BulkLoad(doc, &loaded));

  CachingLabelStore store(scheme.get(), /*log_capacity=*/128);
  EpochGuard& guard = scheme->epoch_guard();

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      // Refs are caller-owned mutable state: one private set per thread.
      std::vector<CachedLabelRef> refs;
      refs.reserve(loaded.size());
      for (const NewElement& element : loaded) {
        refs.push_back(store.MakeRef(element.start));
      }
      Random rng(t);
      while (!stop.load(std::memory_order_acquire)) {
        CachedLabelRef& ref = refs[rng.Uniform(refs.size())];
        // The epoch read lock brackets the whole serve path, so replay
        // from the mod log cannot race the writer appending to it.
        EpochReadLock lock(&guard);
        StatusOr<ResilientLabel> got = store.LookupResilient(&ref);
        ASSERT_OK(got.status());
        EXPECT_FALSE(got->possibly_stale);  // store is healthy throughout
      }
    });
  }
  std::thread writer([&] {
    Random rng(5);
    while (!stop.load(std::memory_order_acquire)) {
      EpochWriteLock lock(&guard);
      ASSERT_OK(scheme
                    ->InsertElementBefore(
                        loaded[rng.Uniform(loaded.size())].start)
                    .status());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  writer.join();

  EXPECT_GT(store.served_fresh() + store.served_replayed() +
                store.served_full(),
            0u);
  EXPECT_EQ(store.served_degraded(), 0u);
  EXPECT_OK(scheme->CheckInvariants());
}

// ---------------------------------------------------------------------------
// The ConcurrentRunner itself (deterministic writer quota).

TEST(ConcurrentRunnerTest, MixedWorkloadRuns) {
  TestDb db;
  std::unique_ptr<LabelingScheme> scheme = MakeWbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(100);
  std::vector<NewElement> loaded;
  ASSERT_OK(scheme->BulkLoad(doc, &loaded));
  std::vector<Lid> probes;
  for (const NewElement& element : loaded) {
    probes.push_back(element.start);
  }

  workload::ConcurrentOptions options;
  options.reader_threads = 4;
  options.lookups_per_thread = 500;
  options.writer_ops = 40;
  options.drop_cache_every = 10;
  ASSERT_OK_AND_ASSIGN(
      const workload::ConcurrentStats stats,
      workload::RunConcurrent(scheme.get(), &db.cache, probes, options));
  EXPECT_EQ(stats.lookups + stats.not_found + stats.errors, 4u * 500u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.not_found, 0u);  // the writer never deletes probe lids
  EXPECT_EQ(stats.writer_ops, 40u);
  EXPECT_EQ(stats.cache_drops, 4u);
  EXPECT_GT(stats.lookups_per_sec, 0.0);
  EXPECT_OK(scheme->CheckInvariants());

  MetricsRegistry registry;
  workload::ExportConcurrentStats("test", stats, &registry);
  EXPECT_EQ(registry.CounterValue("test.lookups"), stats.lookups);
  EXPECT_EQ(registry.CounterValue("concurrency.reader_retries"),
            stats.reader_retries);
  EXPECT_EQ(registry.CounterValue("cache.shard_contention"),
            stats.shard_contention);
}

}  // namespace
}  // namespace boxes::testing
