file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_concentrated.dir/bench_fig5_concentrated.cc.o"
  "CMakeFiles/bench_fig5_concentrated.dir/bench_fig5_concentrated.cc.o.d"
  "bench_fig5_concentrated"
  "bench_fig5_concentrated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_concentrated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
