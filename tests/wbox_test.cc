#include "core/wbox/wbox.h"

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::TagOrderLids;
using testing::TestDb;

TEST(WBoxParamsTest, DerivedValuesAreConsistent) {
  const WBoxParams p = WBoxParams::Derive(8192, /*pair_mode=*/false);
  EXPECT_EQ(p.leaf_capacity % 2, 1u);  // 2k - 1 is odd
  EXPECT_EQ(p.leaf_capacity, 2 * p.k - 1);
  EXPECT_EQ(p.a, p.b / 2 - 2);
  EXPECT_GE(p.a, 10u);
  EXPECT_EQ(p.MaxWeight(0), 2 * p.k);
  EXPECT_EQ(p.MaxWeight(1), 2 * p.a * p.k);
  EXPECT_EQ(p.RangeLength(0), p.leaf_capacity);
  EXPECT_EQ(p.RangeLength(1), p.leaf_capacity * p.b);
  // Pair mode has bigger records, so smaller k.
  const WBoxParams q = WBoxParams::Derive(8192, /*pair_mode=*/true);
  EXPECT_LT(q.k, p.k);
}

TEST(WBoxTest, FirstElementAndLookup) {
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const Label start, wbox.Lookup(root.start));
  ASSERT_OK_AND_ASSIGN(const Label end, wbox.Lookup(root.end));
  EXPECT_TRUE(start < end);
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_EQ(wbox.live_labels(), 2u);
  EXPECT_EQ(wbox.height(), 1u);
}

TEST(WBoxTest, InsertBeforeEndMakesLastChild) {
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const NewElement a,
                       wbox.InsertElementBefore(root.end));
  ASSERT_OK_AND_ASSIGN(const NewElement b,
                       wbox.InsertElementBefore(root.end));
  // Order: root< a< a> b< b> root>
  EXPECT_TRUE(LabelsStrictlyIncreasing(
      &wbox, {root.start, a.start, a.end, b.start, b.end, root.end}));
  // Ancestor semantics via labels.
  ASSERT_OK_AND_ASSIGN(const ElementLabels root_labels,
                       wbox.LookupElement(root.start, root.end));
  ASSERT_OK_AND_ASSIGN(const ElementLabels a_labels,
                       wbox.LookupElement(a.start, a.end));
  ASSERT_OK_AND_ASSIGN(const ElementLabels b_labels,
                       wbox.LookupElement(b.start, b.end));
  EXPECT_TRUE(IsAncestor(root_labels, a_labels));
  EXPECT_TRUE(IsAncestor(root_labels, b_labels));
  EXPECT_FALSE(IsAncestor(a_labels, b_labels));
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(WBoxTest, InsertBeforeStartMakesPreviousSibling) {
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const NewElement b,
                       wbox.InsertElementBefore(root.end));
  ASSERT_OK_AND_ASSIGN(const NewElement a,
                       wbox.InsertElementBefore(b.start));
  EXPECT_TRUE(LabelsStrictlyIncreasing(
      &wbox, {root.start, a.start, a.end, b.start, b.end, root.end}));
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(WBoxTest, BulkLoadMatchesDocumentOrder) {
  TestDb db;
  WBox wbox(&db.cache);
  const xml::Document doc = xml::MakeRandomDocument(500, 6, 11);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, TagOrderLids(doc, lids)));
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_EQ(wbox.live_labels(), doc.tag_count());
}

TEST(WBoxTest, BulkLoadRejectsNonEmpty) {
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK(wbox.InsertFirstElement().status());
  const xml::Document doc = xml::MakeTwoLevelDocument(3);
  EXPECT_EQ(wbox.BulkLoad(doc, nullptr).code(),
            StatusCode::kFailedPrecondition);
}

TEST(WBoxTest, ConcentratedInsertionSplitsAndStaysOrdered) {
  TestDb db(/*page_size=*/1024);
  WBox wbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  // Squeeze pairs into the center, like the paper's adversarial sequence.
  std::vector<Lid> left;
  std::vector<Lid> right;
  ASSERT_OK_AND_ASSIGN(const NewElement first,
                       wbox.InsertElementBefore(root.end));
  left.push_back(first.start);
  left.push_back(first.end);
  NewElement last_right = first;
  bool have_right = false;
  for (int i = 0; i < 2000; ++i) {
    if (!have_right) {
      ASSERT_OK_AND_ASSIGN(last_right, wbox.InsertElementBefore(root.end));
      have_right = true;
      right.insert(right.begin(), {last_right.start, last_right.end});
      continue;
    }
    ASSERT_OK_AND_ASSIGN(const NewElement e,
                         wbox.InsertElementBefore(last_right.start));
    if (i % 2 == 0) {
      left.push_back(e.start);
      left.push_back(e.end);
    } else {
      right.insert(right.begin(), e.end);
      right.insert(right.begin(), e.start);
      last_right = e;
    }
  }
  EXPECT_GE(wbox.height(), 2u);
  std::vector<Lid> order{root.start};
  order.insert(order.end(), left.begin(), left.end());
  order.insert(order.end(), right.begin(), right.end());
  order.push_back(root.end);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, order));
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(WBoxTest, LookupCostsTwoIos) {
  TestDb db;
  WBox wbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(5000);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  constexpr int kLookups = 50;
  for (int i = 0; i < kLookups; ++i) {
    IoScope scope(&db.cache);
    ASSERT_OK(wbox.Lookup(lids[(i * 97) % lids.size()].start).status());
  }
  // Theorem 4.5 + LIDF indirection: exactly 2 read I/Os per lookup.
  EXPECT_EQ(db.cache.stats().reads, 2u * kLookups);
  EXPECT_EQ(db.cache.stats().writes, 0u);
}

TEST(WBoxTest, PairModeLooksUpElementInTwoIos) {
  TestDb db;
  WBoxOptions options;
  options.pair_mode = true;
  WBox wbox(&db.cache, options);
  const xml::Document doc = xml::MakeRandomDocument(3000, 5, 3);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK(wbox.CheckInvariants());
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  constexpr int kLookups = 50;
  for (int i = 0; i < kLookups; ++i) {
    const NewElement& e = lids[(i * 131) % lids.size()];
    IoScope scope(&db.cache);
    ASSERT_OK_AND_ASSIGN(const ElementLabels labels,
                         wbox.LookupElement(e.start, e.end));
    EXPECT_TRUE(labels.start < labels.end);
  }
  EXPECT_EQ(db.cache.stats().reads, 2u * kLookups);
}

TEST(WBoxTest, PairedLookupAgreesWithPlainLookups) {
  TestDb db;
  WBoxOptions options;
  options.pair_mode = true;
  WBox wbox(&db.cache, options);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  NewElement target = root;
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK_AND_ASSIGN(target, wbox.InsertElementBefore(target.end));
  }
  ASSERT_OK(wbox.CheckInvariants());
  // Verify cached end values stayed coherent through all the relabeling.
  std::vector<Lid> lids{root.start, root.end, target.start, target.end};
  ASSERT_OK_AND_ASSIGN(const ElementLabels fast,
                       wbox.LookupElement(target.start, target.end));
  ASSERT_OK_AND_ASSIGN(const Label slow_start, wbox.Lookup(target.start));
  ASSERT_OK_AND_ASSIGN(const Label slow_end, wbox.Lookup(target.end));
  EXPECT_EQ(fast.start, slow_start);
  EXPECT_EQ(fast.end, slow_end);
}

TEST(WBoxTest, DeleteTombstonesAndReclaim) {
  TestDb db;
  WBoxOptions options;
  options.min_rebuild_records = 1 << 30;  // effectively disable rebuild
  WBox wbox(&db.cache, options);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  std::vector<NewElement> elems;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(const NewElement e,
                         wbox.InsertElementBefore(root.end));
    elems.push_back(e);
  }
  // Delete every other element.
  for (size_t i = 0; i < elems.size(); i += 2) {
    ASSERT_OK(wbox.Delete(elems[i].start));
    ASSERT_OK(wbox.Delete(elems[i].end));
  }
  EXPECT_EQ(wbox.tombstones(), elems.size());
  ASSERT_OK(wbox.CheckInvariants());
  // Remaining labels still ordered.
  std::vector<Lid> order{root.start};
  for (size_t i = 1; i < elems.size(); i += 2) {
    order.push_back(elems[i].start);
    order.push_back(elems[i].end);
  }
  order.push_back(root.end);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, order));
  // New insertions reclaim tombstones without splitting.
  const uint64_t tombs_before = wbox.tombstones();
  ASSERT_OK(wbox.InsertElementBefore(root.end).status());
  EXPECT_EQ(wbox.tombstones(), tombs_before - 2);
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(WBoxTest, GlobalRebuildTriggersAfterManyDeletes) {
  TestDb db;
  WBoxOptions options;
  options.min_rebuild_records = 64;
  WBox wbox(&db.cache, options);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  std::vector<NewElement> elems;
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK_AND_ASSIGN(const NewElement e,
                         wbox.InsertElementBefore(root.end));
    elems.push_back(e);
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK(wbox.Delete(elems[i].start));
    ASSERT_OK(wbox.Delete(elems[i].end));
  }
  EXPECT_GE(wbox.rebuild_count(), 1u);
  EXPECT_EQ(wbox.live_labels(), 2u + 2u * 100u);
  ASSERT_OK(wbox.CheckInvariants());
  std::vector<Lid> order{root.start};
  for (int i = 400; i < 500; ++i) {
    order.push_back(elems[i].start);
    order.push_back(elems[i].end);
  }
  order.push_back(root.end);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, order));
}

TEST(WBoxTest, OrdinalLookupMatchesPosition) {
  TestDb db;
  WBoxOptions options;
  options.maintain_ordinal = true;
  WBox wbox(&db.cache, options);
  const xml::Document doc = xml::MakeRandomDocument(800, 6, 5);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  const std::vector<Lid> order = TagOrderLids(doc, lids);
  for (size_t i = 0; i < order.size(); i += 37) {
    ASSERT_OK_AND_ASSIGN(const uint64_t ordinal,
                         wbox.OrdinalLookup(order[i]));
    EXPECT_EQ(ordinal, i);
  }
  // Ordinals shift after a deletion.
  ASSERT_OK(wbox.Delete(order[0]));
  ASSERT_OK_AND_ASSIGN(const uint64_t ordinal, wbox.OrdinalLookup(order[1]));
  EXPECT_EQ(ordinal, 0u);
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(WBoxTest, OrdinalUnsupportedWithoutOption) {
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  EXPECT_EQ(wbox.OrdinalLookup(root.start).status().code(),
            StatusCode::kUnimplemented);
}

TEST(WBoxTest, SubtreeInsertMatchesElementwise) {
  TestDb db(/*page_size=*/1024);
  WBox wbox(&db.cache);
  const xml::Document base = xml::MakeTwoLevelDocument(400);
  std::vector<NewElement> base_lids;
  ASSERT_OK(wbox.BulkLoad(base, &base_lids));
  const xml::Document subtree = xml::MakeRandomDocument(300, 5, 17);
  std::vector<NewElement> sub_lids;
  // Insert as last child of the 100th item.
  ASSERT_OK(wbox.InsertSubtreeBefore(base_lids[100].end, subtree,
                                     &sub_lids));
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_EQ(wbox.live_labels(), base.tag_count() + subtree.tag_count());
  // Order: item100.start < subtree tags < item100.end < item101.start.
  std::vector<Lid> order{base_lids[100].start};
  const std::vector<Lid> sub_order = TagOrderLids(subtree, sub_lids);
  order.insert(order.end(), sub_order.begin(), sub_order.end());
  order.push_back(base_lids[100].end);
  order.push_back(base_lids[101].start);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, order));
}

TEST(WBoxTest, SubtreeInsertBeforeStart) {
  TestDb db(/*page_size=*/1024);
  WBox wbox(&db.cache);
  const xml::Document base = xml::MakeTwoLevelDocument(50);
  std::vector<NewElement> base_lids;
  ASSERT_OK(wbox.BulkLoad(base, &base_lids));
  const xml::Document subtree = xml::MakeBalancedDocument(40, 3);
  std::vector<NewElement> sub_lids;
  ASSERT_OK(
      wbox.InsertSubtreeBefore(base_lids[10].start, subtree, &sub_lids));
  ASSERT_OK(wbox.CheckInvariants());
  std::vector<Lid> order{base_lids[9].end};
  const std::vector<Lid> sub_order = TagOrderLids(subtree, sub_lids);
  order.insert(order.end(), sub_order.begin(), sub_order.end());
  order.push_back(base_lids[10].start);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, order));
}

TEST(WBoxTest, SubtreeDeleteRemovesRange) {
  TestDb db(/*page_size=*/1024);
  WBox wbox(&db.cache);
  const xml::Document base = xml::MakeTwoLevelDocument(300);
  std::vector<NewElement> base_lids;
  ASSERT_OK(wbox.BulkLoad(base, &base_lids));
  const xml::Document subtree = xml::MakeRandomDocument(500, 5, 23);
  std::vector<NewElement> sub_lids;
  ASSERT_OK(
      wbox.InsertSubtreeBefore(base_lids[150].end, subtree, &sub_lids));
  ASSERT_OK(wbox.CheckInvariants());
  ASSERT_OK(wbox.DeleteSubtree(sub_lids[subtree.root()].start,
                               sub_lids[subtree.root()].end));
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_EQ(wbox.live_labels(), base.tag_count());
  // Deleted LIDs are gone.
  EXPECT_FALSE(wbox.Lookup(sub_lids[subtree.root()].start).ok());
  // Survivors keep their order.
  EXPECT_TRUE(LabelsStrictlyIncreasing(
      &wbox, {base_lids[149].end, base_lids[150].start, base_lids[150].end,
              base_lids[151].start}));
}

TEST(WBoxTest, GetStatsReportsSaneValues) {
  TestDb db;
  WBox wbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(2000);
  ASSERT_OK(wbox.BulkLoad(doc, nullptr));
  ASSERT_OK_AND_ASSIGN(const SchemeStats stats, wbox.GetStats());
  EXPECT_EQ(stats.height, wbox.height());
  EXPECT_EQ(stats.live_labels, doc.tag_count());
  EXPECT_GT(stats.index_pages, 0u);
  EXPECT_GT(stats.lidf_pages, 0u);
  EXPECT_GT(stats.max_label_bits, 0u);
  EXPECT_LE(stats.max_label_bits, 64u);
}

TEST(WBoxTest, CompareReflectsDocumentOrder) {
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, wbox.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const NewElement a,
                       wbox.InsertElementBefore(root.end));
  ASSERT_OK_AND_ASSIGN(const int cmp, wbox.Compare(a.start, a.end));
  EXPECT_LT(cmp, 0);
  ASSERT_OK_AND_ASSIGN(const int cmp2, wbox.Compare(root.end, a.start));
  EXPECT_GT(cmp2, 0);
  ASSERT_OK_AND_ASSIGN(const int cmp3, wbox.Compare(a.start, a.start));
  EXPECT_EQ(cmp3, 0);
}

TEST(WBoxTest, ErrorsOnEmptyStructure) {
  TestDb db;
  WBox wbox(&db.cache);
  EXPECT_EQ(wbox.InsertElementBefore(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(wbox.Delete(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(wbox.Lookup(0).ok());
  ASSERT_OK(wbox.CheckInvariants());
}

}  // namespace
}  // namespace boxes
