#ifndef BOXES_XML_GENERATORS_H_
#define BOXES_XML_GENERATORS_H_

#include <cstdint>

#include "util/random.h"
#include "xml/document.h"

namespace boxes::xml {

/// Two-level document: a root with `children` leaf children. This is the
/// base document shape of the paper's concentrated and scattered insertion
/// experiments (§7).
Document MakeTwoLevelDocument(uint64_t children);

/// Random tree with `elements` elements. Growth model: each new element
/// picks a uniformly random existing element of depth < `max_depth` as its
/// parent and is appended as its last child. Deterministic in `seed`.
Document MakeRandomDocument(uint64_t elements, uint64_t max_depth,
                            uint64_t seed);

/// Perfectly balanced tree where every internal element has `fanout`
/// children; grown in document order until `elements` is reached.
Document MakeBalancedDocument(uint64_t elements, uint64_t fanout);

}  // namespace boxes::xml

#endif  // BOXES_XML_GENERATORS_H_
