file(REMOVE_RECURSE
  "libboxes.a"
)
