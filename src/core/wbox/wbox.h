#ifndef BOXES_CORE_WBOX_WBOX_H_
#define BOXES_CORE_WBOX_WBOX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "core/wbox/wbox_node.h"
#include "lidf/lidf.h"
#include "storage/page_cache.h"
#include "util/status.h"

namespace boxes {

/// Configuration of a W-BOX instance.
struct WBoxOptions {
  /// W-BOX-O (paper §4, "Further optimization for start/end pairs"): leaf
  /// records carry a pointer to the partner record's block, and start
  /// records cache the end label's value, so LookupElement costs 2 I/Os.
  bool pair_mode = false;

  /// Maintain size fields for ordinal labeling support (paper §4,
  /// "Ordinal labeling support"). Raises amortized delete cost to
  /// O(log_B N).
  bool maintain_ordinal = false;

  /// Fraction of leaf capacity filled by bulk loading / rebuilding.
  double bulk_fill_fraction = 0.75;

  /// Global rebuilding triggers when tombstones reach this fraction of
  /// live records (paper: rebuild after N/2 deletions) and at least
  /// `min_rebuild_records` records exist.
  double rebuild_tombstone_ratio = 1.0;
  uint64_t min_rebuild_records = 64;
};

/// W-BOX: Weight-balanced B-tree for Ordering XML (paper §4).
///
/// Stores one record per label in a weight-balanced B-tree whose implicit
/// search keys are label values. Each node owns a range of label values,
/// divided into b equal subranges for its children; a leaf's records take
/// consecutive values from the leaf's range (within-leaf ordinality), so a
/// record's label is `leaf.range_lo + slot`. Relabeling happens only when
/// tree-balancing splits force it and is confined to the split node's
/// parent's range.
///
/// Costs: lookup 1 I/O (+1 for the LIDF), insert O(log_B N) amortized,
/// delete O(1) amortized via tombstones + global rebuilding.
class WBox : public LabelingScheme {
 public:
  /// The W-BOX allocates its pages and its LIDF from `cache`.
  explicit WBox(PageCache* cache, WBoxOptions options = {});
  ~WBox() override;

  WBox(const WBox&) = delete;
  WBox& operator=(const WBox&) = delete;

  std::string name() const override {
    return options_.pair_mode ? "W-BOX-O" : "W-BOX";
  }

  StatusOr<Label> Lookup(Lid lid) override;
  StatusOr<ElementLabels> LookupElement(Lid start_lid, Lid end_lid) override;
  StatusOr<NewElement> InsertElementBefore(Lid lid) override;
  StatusOr<NewElement> InsertFirstElement() override;
  Status Delete(Lid lid) override;
  Status BulkLoad(const xml::Document& doc,
                  std::vector<NewElement>* lids_out) override;
  Status InsertSubtreeBefore(Lid before, const xml::Document& subtree,
                             std::vector<NewElement>* lids_out) override;
  Status DeleteSubtree(Lid root_start, Lid root_end) override;
  /// Batch application with the global-rebuild check deferred to the end
  /// of the batch: a delete-heavy batch checks the tombstone ratio once
  /// instead of per delete, so at most one rebuild serves the whole batch.
  Status ReplayBatch(std::vector<BatchOp>* ops, BatchStats* stats) override;
  bool SupportsOrdinal() const override { return options_.maintain_ordinal; }
  StatusOr<uint64_t> OrdinalLookup(Lid lid) override;
  StatusOr<SchemeStats> GetStats() override;
  Status CheckInvariants() override;

  /// Persists all in-memory metadata (root, counters, LIDF state) into a
  /// metadata chain and returns its head page. Nothing is flushed or
  /// synced here; pass the head to CommitCheckpoint, whose commit protocol
  /// makes the chain (and all dirty data pages) durable exactly once.
  StatusOr<PageId> Checkpoint() override;

  /// Restores a checkpoint into this freshly constructed instance; the
  /// options and page size must match the checkpointed ones.
  Status Restore(PageId checkpoint_head) override;

  const WBoxParams& params() const { return params_; }
  const WBoxOptions& options() const { return options_; }
  Lidf* lidf() override { return &lidf_; }
  /// Height in levels (single leaf = 1); 0 when empty.
  uint32_t height() const { return height_; }
  uint64_t live_labels() const { return live_labels_; }
  uint64_t tombstones() const { return tombstones_; }
  /// Number of global rebuilds performed so far (for tests/benches).
  uint64_t rebuild_count() const { return rebuild_count_; }
  /// Number of node splits performed so far (for tests/benches).
  uint64_t split_count() const { return split_count_; }

 protected:
  /// Ops anchored in the same leaf block sort together, so a batch
  /// revisits each dirtied block once instead of bouncing across the tree.
  uint64_t BatchLocalityKey(const BatchOp& op) override;

 private:
  /// One step of a root-to-leaf descent: the internal node and the entry
  /// index taken downward.
  struct PathStep {
    PageId page = kInvalidPageId;
    int entry = -1;
  };

  /// A label record flattened out of the tree, used by bulk builds.
  struct FlatRecord {
    Lid lid = kInvalidLid;
    bool is_end = false;
  };

  /// Leaf-sequence element used when (re)building internal levels.
  struct ChildInfo {
    PageId page = kInvalidPageId;
    uint64_t weight = 0;  // records incl. tombstones below
    uint64_t live = 0;    // live records below
  };

  // --- core helpers (wbox.cc) ---

  /// Locates `lid`: its leaf page, slot, and label value.
  Status LocateLid(Lid lid, PageId* leaf_page, int* slot, uint64_t* label);

  /// Root-to-leaf descent by label. Appends one PathStep per internal node;
  /// `leaf_out` receives the leaf page.
  Status DescendPath(uint64_t label, std::vector<PathStep>* path,
                     PageId* leaf_out);

  /// Performs any preemptive splits needed so that one more record can be
  /// inserted at `label`. Sets `*split_occurred`; when true the caller must
  /// recompute the target label (relabeling may have moved it).
  Status EnsureRoomFor(uint64_t label, bool* split_occurred);

  /// Splits the child at `entry` of the internal node `parent_page`
  /// (paper §4, "Insert and delete"). The child is at `child_level`.
  Status SplitChild(PageId parent_page, int entry, uint32_t child_level);

  /// Grows the tree by one level: a new root whose single subrange-0 child
  /// is the old root.
  Status GrowRoot();

  /// Recursively assigns `new_lo` as the range start of the subtree rooted
  /// at `page` (level `level`), rewriting descendants whose ranges change
  /// and fixing pair caches.
  Status RelabelSubtree(PageId page, uint32_t level, uint64_t new_lo);

  /// Inserts the already-located record (lid `lid_new`) before slot `slot`
  /// of `leaf_page`, assuming room exists; updates LIDF and pair caches and
  /// emits log effects. Weights/sizes are NOT touched here.
  Status InsertIntoLeaf(PageId leaf_page, int slot, Lid lid_new, bool is_end);

  /// Adds `weight_delta`/`size_delta` to every entry on the path from the
  /// root to the leaf containing `label` (and to self_weights).
  Status AdjustPathCounts(uint64_t label, int64_t weight_delta,
                          int64_t size_delta);

  /// Low-level insert-before (paper §3): places a new record for `lid_new`
  /// immediately before `lid_old`'s record.
  Status InsertBefore(Lid lid_new, Lid lid_old, bool is_end);

  /// After labels of records in [first, last] of `leaf_page` changed (leaf
  /// not moved), refresh the cached end values their partners hold
  /// (pair mode only).
  Status FixPairCachesForSlots(PageId leaf_page, int first, int last);

  /// After `moved_lids` relocated to `new_block`, update their LIDF
  /// records and their partners' partner_block pointers (pair mode).
  Status FixRelocatedRecords(PageId new_block,
                             const std::vector<Lid>& moved_lids);

  /// Writes pair linkage between a start and end record (pair mode).
  Status LinkPair(Lid start_lid, Lid end_lid);

  /// Computes the ordinal of `label` by a size-summing descent.
  StatusOr<uint64_t> OrdinalOfLabel(uint64_t label);

  void EmitShift(uint64_t lo, uint64_t hi, int64_t delta);
  void EmitInvalidate(uint64_t lo, uint64_t hi);
  void EmitOrdinalShift(uint64_t from, int64_t delta);

  // --- bulk machinery (wbox_bulk.cc) ---

  /// Appends all live records under `page` to `out` in label order.
  Status CollectLiveRecords(PageId page, uint32_t level,
                            std::vector<FlatRecord>* out);

  /// Frees every page of the subtree rooted at `page`.
  Status FreeSubtree(PageId page, uint32_t level);

  /// Builds a fresh tree from `records` (already in label order), packing
  /// leaves to bulk_fill_fraction; updates LIDF pointers and pair caches.
  Status BuildFromFlat(const std::vector<FlatRecord>& records);

  /// Builds packed leaves for `records`, appending their ChildInfo to
  /// `leaves`.
  Status BuildLeaves(const std::vector<FlatRecord>& records,
                     std::vector<ChildInfo>* leaves);

  /// Builds internal levels above `children` (all at `child_level`) by
  /// weight-driven grouping until a single node remains; returns that top
  /// node and its level. Ranges are NOT assigned here.
  Status BuildInternalLevels(std::vector<ChildInfo> children,
                             uint32_t child_level, ChildInfo* top,
                             uint32_t* top_level);

  /// Top-down pass assigning `lo` as the range start of the subtree rooted
  /// at `page` and (re)spacing subranges equally at every internal node.
  /// With `fix_pairs`, refreshes the cached end values of relabeled
  /// records' partners.
  Status AssignRanges(PageId page, uint32_t level, uint64_t lo,
                      bool fix_pairs);

  /// Builds internal levels above `children` so that exactly one node at
  /// `target_level` results (inserting grouping levels as needed; requires
  /// feasible weights). Assigns `range_lo` and relabels throughout.
  Status BuildSubtreeAtLevel(std::vector<ChildInfo> children,
                             uint32_t child_level, uint32_t target_level,
                             uint64_t range_lo, ChildInfo* top);

  /// Rebuilds the whole structure from live records (global rebuilding).
  Status GlobalRebuild();

  Status MaybeGlobalRebuild();

  /// Allocates LIDs for every element of `doc` and flattens its tags into
  /// label order.
  Status FlattenDocument(const xml::Document& doc,
                         std::vector<FlatRecord>* records,
                         std::vector<NewElement>* lids_out);

  /// Writes pair linkage for all elements of a freshly built record
  /// sequence (balanced-parenthesis matching).
  Status LinkPairsInOrder(const std::vector<FlatRecord>& records);

  // --- subtree ops helpers (wbox_subtree.cc) ---

  /// Collects the ChildInfo sequence of all leaves under `page` in order.
  Status CollectLeaves(PageId page, uint32_t level,
                       std::vector<ChildInfo>* leaves);

  /// Frees the internal nodes of the subtree rooted at `page`, keeping its
  /// leaves alive (they are reused by subtree rebuilds).
  Status FreeInternalNodes(PageId page, uint32_t level);

  /// Removes all records with labels in [lo, hi] under `page`, freeing
  /// fully-covered subtrees and their records' LIDs. Adds removed counts.
  Status RemoveLabelRange(PageId page, uint32_t level, uint64_t lo,
                          uint64_t hi, uint64_t* removed_weight,
                          uint64_t* removed_live);

  /// Merges under-filled boundary leaves with neighbors so every leaf in
  /// `leaves` meets the minimum leaf weight (LIDF/pair fixes included).
  Status RepairLeafSequence(std::vector<ChildInfo>* leaves);

  PageCache* cache_;  // not owned
  const WBoxOptions options_;
  const WBoxParams params_;
  Lidf lidf_;

  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;  // levels; root level = height_ - 1
  uint64_t live_labels_ = 0;
  uint64_t tombstones_ = 0;
  uint64_t rebuild_count_ = 0;
  uint64_t split_count_ = 0;

  /// During multi-record relocation, maps moved LIDs to their new block so
  /// pair fix-ups see fresh locations.
  std::unordered_map<Lid, PageId> moved_in_op_;

  /// While a batch is applying, Delete records that a rebuild check is due
  /// instead of running MaybeGlobalRebuild per op; ReplayBatch settles the
  /// debt once at the end of the batch.
  bool defer_rebuild_check_ = false;
  bool rebuild_check_pending_ = false;
};

}  // namespace boxes

#endif  // BOXES_CORE_WBOX_WBOX_H_
