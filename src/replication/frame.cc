#include "replication/frame.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace boxes::replication {

std::vector<uint8_t> EncodeShipFrame(const ShipFrame& frame) {
  std::vector<uint8_t> out(kShipFrameHeaderSize + frame.payload.size());
  uint8_t* p = out.data();
  EncodeFixed32(p, kShipFrameMagic);
  EncodeFixed64(p + 4, frame.fencing_token);
  EncodeFixed64(p + 12, frame.generation);
  EncodeFixed64(p + 20, frame.batch_id);
  EncodeFixed32(p + 28, frame.op_count);
  EncodeFixed64(p + 32, frame.ship_micros);
  EncodeFixed32(p + 40, static_cast<uint32_t>(frame.payload.size()));
  EncodeFixed32(p + 44, frame.payload.empty()
                            ? Crc32c(p, 0)
                            : Crc32c(frame.payload.data(),
                                     frame.payload.size()));
  EncodeFixed32(p + 48, Crc32c(p, 48));
  if (!frame.payload.empty()) {
    std::memcpy(p + kShipFrameHeaderSize, frame.payload.data(),
                frame.payload.size());
  }
  return out;
}

bool DecodeShipFrame(const std::vector<uint8_t>& bytes, ShipFrame* out) {
  if (bytes.size() < kShipFrameHeaderSize) {
    return false;
  }
  const uint8_t* p = bytes.data();
  if (DecodeFixed32(p) != kShipFrameMagic ||
      DecodeFixed32(p + 48) != Crc32c(p, 48)) {
    return false;
  }
  const uint32_t payload_len = DecodeFixed32(p + 40);
  if (bytes.size() != kShipFrameHeaderSize + payload_len) {
    return false;
  }
  const uint8_t* payload = p + kShipFrameHeaderSize;
  if (DecodeFixed32(p + 44) != Crc32c(payload, payload_len)) {
    return false;
  }
  out->fencing_token = DecodeFixed64(p + 4);
  out->generation = DecodeFixed64(p + 12);
  out->batch_id = DecodeFixed64(p + 20);
  out->op_count = DecodeFixed32(p + 28);
  out->ship_micros = DecodeFixed64(p + 32);
  out->payload.assign(payload, payload + payload_len);
  return true;
}

}  // namespace boxes::replication
