#include "workload/recompile_policy.h"

namespace boxes {

bool RecompilePolicy::ShouldRecompile(const OverlayedScheme& overlay) const {
  const SnapshotReader* reader = overlay.reader();
  if (reader == nullptr) {
    return false;  // bootstrap compile is the caller's explicit decision
  }
  const size_t deltas = overlay.delta_size();
  if (deltas >= options_.min_deltas) {
    const uint64_t entries = reader->entry_count();
    if (entries == 0 ||
        static_cast<double>(deltas) >=
            options_.max_delta_fraction * static_cast<double>(entries)) {
      return true;
    }
  }
  const OverlayServeStats stats = overlay.serve_stats();
  const uint64_t lookups = stats.lookups - baseline_lookups_;
  const uint64_t fallback = stats.served_fallback - baseline_fallback_;
  if (lookups >= 64 &&
      static_cast<double>(fallback) >
          options_.max_fallback_fraction * static_cast<double>(lookups)) {
    return true;
  }
  return false;
}

void RecompilePolicy::OnRecompiled(const OverlayedScheme& overlay) {
  const OverlayServeStats stats = overlay.serve_stats();
  baseline_lookups_ = stats.lookups;
  baseline_fallback_ = stats.served_fallback;
}

}  // namespace boxes
