#ifndef BOXES_WORKLOAD_SEQUENCES_H_
#define BOXES_WORKLOAD_SEQUENCES_H_

#include <cstdint>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "storage/page_cache.h"
#include "util/histogram.h"
#include "workload/runner.h"
#include "xml/document.h"

namespace boxes::workload {

/// The paper's concentrated insertion sequence (§7): bulk load a two-level
/// document with `base_elements` elements, then insert a two-level subtree
/// of `insert_elements` elements one element at a time, each pair squeezed
/// into the center of a growing sibling list (the adversarial pattern that
/// breaks gap-based schemes). Per-element insertion costs are recorded into
/// `stats`; the bulk load is not measured.
Status RunConcentratedInsertion(LabelingScheme* scheme, PageCache* cache,
                                uint64_t base_elements,
                                uint64_t insert_elements, RunStats* stats);

/// The scattered insertion sequence (§7): same base document, but the
/// `insert_elements` new elements are spread evenly over all gaps.
Status RunScatteredInsertion(LabelingScheme* scheme, PageCache* cache,
                             uint64_t base_elements, uint64_t insert_elements,
                             RunStats* stats);

/// The XMark-style document-order insertion sequence (§7): elements of
/// `doc` are inserted one by one in document order of their start tags
/// (each as the current last child of its parent). The first
/// `prime_elements` are bulk loaded unmeasured to prime the structures;
/// costs of the remaining insertions are recorded. `lids_out`, if non-null,
/// receives the final LIDs indexed by ElementId.
Status RunDocumentOrderInsertion(LabelingScheme* scheme, PageCache* cache,
                                 const xml::Document& doc,
                                 uint64_t prime_elements, RunStats* stats,
                                 std::vector<NewElement>* lids_out = nullptr);

/// Measures single-label lookups (`pairs` = false) or start/end element
/// lookups (`pairs` = true) of `count` uniformly random elements.
Status MeasureLookups(LabelingScheme* scheme, PageCache* cache,
                      const std::vector<NewElement>& lids, uint64_t count,
                      bool pairs, uint64_t seed, RunStats* stats);

}  // namespace boxes::workload

#endif  // BOXES_WORKLOAD_SEQUENCES_H_
