#ifndef BOXES_WORKLOAD_CONCURRENT_RUNNER_H_
#define BOXES_WORKLOAD_CONCURRENT_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "storage/page_cache.h"
#include "util/metrics.h"
#include "util/status.h"

namespace boxes::workload {

/// Configuration of a mixed concurrent read/update run (DESIGN.md §4g).
struct ConcurrentOptions {
  /// Number of reader threads issuing LookupShared over the probe set.
  size_t reader_threads = 4;
  /// Lookups each reader thread issues before it stops.
  uint64_t lookups_per_thread = 1000;
  /// Mutations (insert/delete element) the single writer thread performs
  /// under EpochWriteLock. 0 disables the writer (read-only run).
  uint64_t writer_ops = 0;
  /// Every this many writer ops, the writer additionally drops the page
  /// cache (FlushAll under its write lock), forcing the readers back to
  /// the store. 0 = never. Read-only runs (writer_ops == 0) with a
  /// nonzero value drop the cache once before the readers start.
  uint64_t drop_cache_every = 0;
  /// If true (the bench setting), the writer also stops as soon as every
  /// reader has finished, so `writer_ops` is a cap rather than a quota and
  /// the run's length is set by the readers. If false (the deterministic
  /// test setting), the writer always performs exactly `writer_ops`
  /// mutations.
  bool writer_stops_with_readers = false;
  /// Pause between writer mutations, in microseconds, taken OUTSIDE the
  /// write lock. Models writer think time; gives readers a window to run
  /// on small machines instead of the writer monopolizing the guard.
  uint64_t writer_pause_us = 0;
  /// Seed for the per-thread probe sequences (thread i uses seed + i).
  uint64_t seed = 42;
};

/// Aggregated outcome of one concurrent run.
struct ConcurrentStats {
  uint64_t lookups = 0;         // successful reader lookups
  uint64_t not_found = 0;       // lookups answered NotFound
  uint64_t errors = 0;          // lookups answered any other error
  uint64_t reader_retries = 0;  // read admissions bounced by the writer
  uint64_t shard_contention = 0;  // cache shard-lock fast-path misses
  uint64_t writer_ops = 0;      // mutations actually performed
  uint64_t cache_drops = 0;     // FlushAll cycles the writer forced
  double elapsed_s = 0;         // wall-clock of the parallel section
  double lookups_per_sec = 0;   // aggregate reader throughput
};

/// Runs `options.reader_threads` reader threads, each issuing
/// `lookups_per_thread` LookupShared calls over the probe set `lids`,
/// concurrently with (optionally) one writer thread performing
/// insert-before / delete-element mutations under the scheme's
/// EpochWriteLock. The writer only deletes elements it inserted itself, so
/// the probe set stays valid throughout. Reader-side errors are counted,
/// not propagated; a writer-side error aborts the run with its status.
///
/// `cache` is the scheme's PageCache; it is used for the writer's periodic
/// cache drops and for the shard-contention delta. Counters in the result
/// are deltas over this run, not lifetime totals.
StatusOr<ConcurrentStats> RunConcurrent(LabelingScheme* scheme,
                                        PageCache* cache,
                                        const std::vector<Lid>& lids,
                                        const ConcurrentOptions& options);

/// Copies a concurrent run's measurements into `registry`: counters
/// "<source>.lookups", "<source>.not_found", "<source>.errors",
/// "<source>.writer_ops", "<source>.cache_drops", plus the cross-scheme
/// families "concurrency.reader_retries" and "cache.shard_contention", and
/// histogram sample "<source>.lookups_per_sec". A null registry is a no-op.
void ExportConcurrentStats(const std::string& source,
                           const ConcurrentStats& stats,
                           MetricsRegistry* registry);

}  // namespace boxes::workload

#endif  // BOXES_WORKLOAD_CONCURRENT_RUNNER_H_
