#ifndef BOXES_UTIL_HISTOGRAM_H_
#define BOXES_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace boxes {

/// Exact histogram of non-negative integer samples (per-operation I/O
/// costs). Backs the paper's cost-distribution figures (Figures 6 and 9),
/// which plot, for each cost x, the fraction of operations whose cost
/// exceeds x, on log-log axes.
///
/// Thread-safe: Add/Merge and every accessor synchronize on an internal
/// mutex, so concurrent reader threads may record into one histogram (e.g.
/// via MetricsRegistry::RecordValue / ScopedTimer) without losing samples.
/// Copying snapshots the source under its lock.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const;
  uint64_t sum() const;
  uint64_t min() const;
  uint64_t max() const;
  double Mean() const;

  /// Smallest value v such that at least `fraction` of samples are <= v.
  /// fraction in (0, 1].
  uint64_t Percentile(double fraction) const;

  /// Fraction of samples strictly greater than `value` (the complementary
  /// CDF the paper plots).
  double FractionAbove(uint64_t value) const;

  struct CcdfPoint {
    uint64_t cost;
    double fraction_above;
  };

  /// CCDF sampled at approximately log-spaced costs between 1 and max(),
  /// plus every distinct cost if there are fewer than `max_points`.
  std::vector<CcdfPoint> Ccdf(size_t max_points = 64) const;

  /// Multi-line human-readable summary.
  std::string ToString() const;

 private:
  // Unlocked internals; callers hold mu_.
  double MeanLocked() const;
  uint64_t PercentileLocked(double fraction) const;

  mutable std::mutex mu_;
  std::map<uint64_t, uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

}  // namespace boxes

#endif  // BOXES_UTIL_HISTOGRAM_H_
