#ifndef BOXES_BENCH_BENCH_COMMON_H_
#define BOXES_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/labeling_scheme.h"
#include "core/naive/naive.h"
#include "core/ordpath/ordpath.h"
#include "core/wbox/wbox.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "util/metrics.h"
#include "util/status.h"

namespace boxes::bench {

/// A scheme instance plus the storage it lives on. Each benchmarked scheme
/// gets its own store + accounting cache, as in the paper's experiments.
struct SchemeUnderTest {
  explicit SchemeUnderTest(size_t page_size)
      : store(std::make_unique<MemoryPageStore>(page_size)),
        cache(std::make_unique<PageCache>(store.get())) {}

  std::unique_ptr<MemoryPageStore> store;
  std::unique_ptr<PageCache> cache;
  std::unique_ptr<LabelingScheme> scheme;
};

/// Instantiates a scheme by name on an arbitrary cache (benches that stack
/// their own store decorators — latency, fault injection — under the
/// cache): "wbox", "wbox-o", "wbox-ordinal", "bbox", "bbox-o" (ordinal),
/// "bbox-4" (min fill B/4), "naive-<k>", or "ordpath" (the §2 immutable
/// baseline).
inline Status MakeSchemeOnCache(const std::string& name, PageCache* cache,
                                std::unique_ptr<LabelingScheme>* out) {
  if (name == "wbox") {
    *out = std::make_unique<WBox>(cache);
  } else if (name == "wbox-o") {
    WBoxOptions options;
    options.pair_mode = true;
    *out = std::make_unique<WBox>(cache, options);
  } else if (name == "wbox-ordinal") {
    WBoxOptions options;
    options.maintain_ordinal = true;
    *out = std::make_unique<WBox>(cache, options);
  } else if (name == "bbox") {
    *out = std::make_unique<BBox>(cache);
  } else if (name == "bbox-o") {
    BBoxOptions options;
    options.ordinal = true;
    *out = std::make_unique<BBox>(cache, options);
  } else if (name == "bbox-4") {
    BBoxOptions options;
    options.min_fill_divisor = 4;
    *out = std::make_unique<BBox>(cache, options);
  } else if (name == "ordpath") {
    *out = std::make_unique<OrdpathScheme>(cache);
  } else if (name.rfind("naive-", 0) == 0) {
    NaiveOptions options;
    options.gap_bits =
        static_cast<uint32_t>(std::stoul(name.substr(6)));
    *out = std::make_unique<NaiveScheme>(cache, options);
  } else {
    return Status::InvalidArgument("unknown scheme '" + name + "'");
  }
  return Status::OK();
}

/// MakeSchemeOnCache on a SchemeUnderTest's own cache.
inline Status MakeScheme(const std::string& name, SchemeUnderTest* out) {
  return MakeSchemeOnCache(name, out->cache.get(), &out->scheme);
}

/// Splits a comma-separated scheme list.
inline std::vector<std::string> SplitSchemes(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

/// Aborts with a message on error; benches have no meaningful recovery.
inline void CheckOkOrDie(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Removes `--metrics_json=<path>` (or `--metrics_json <path>`) from argv
/// and returns the path, or "" if the flag is absent. For binaries whose
/// argument parsing rejects unknown flags (google-benchmark's
/// ReportUnrecognizedArguments); FlagParser binaries register the flag
/// directly instead.
inline std::string ExtractMetricsJsonFlag(int* argc, char** argv) {
  const std::string prefix = "--metrics_json";
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix + "=", 0) == 0) {
      path = arg.substr(prefix.size() + 1);
      continue;
    }
    if (arg == prefix && i + 1 < *argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return path;
}

/// Removes `--smoke` from argv and returns whether it was present. Smoke
/// mode is the CI setting: benches cut their workload sizes (via SmokeCap)
/// so the whole bench suite finishes in a couple of minutes while still
/// executing every code path. Call before FlagParser/benchmark argument
/// parsing — like ExtractMetricsJsonFlag, it strips the flag so parsers
/// that reject unknown arguments never see it.
inline bool ExtractSmokeFlag(int* argc, char** argv) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return smoke;
}

/// In smoke mode, caps a workload-size flag at `cap` (no-op otherwise).
/// Explicit values below the cap are preserved, so `--smoke --ops=3` still
/// means 3 ops.
inline void SmokeCap(bool smoke, int64_t* value, int64_t cap) {
  if (smoke && *value > cap) {
    *value = cap;
  }
}

/// If `path` is non-empty, writes the global metrics registry there as
/// JSON, aborting on failure.
inline void MaybeWriteMetricsJson(const std::string& path) {
  if (path.empty()) {
    return;
  }
  CheckOkOrDie(GlobalMetrics().WriteJsonFile(path), "writing --metrics_json");
}

/// Folds a scheme's per-phase I/O attribution into the global registry
/// under the scheme's name. Call once per SchemeUnderTest, after its runs.
inline void FoldPhaseIoIntoGlobalMetrics(const SchemeUnderTest& unit) {
  GlobalMetrics().MergePhaseIo(unit.scheme->name(), unit.cache->phase_stats());
}

}  // namespace boxes::bench

#endif  // BOXES_BENCH_BENCH_COMMON_H_
