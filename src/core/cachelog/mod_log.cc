#include "core/cachelog/mod_log.h"

#include <vector>

#include "util/status.h"

namespace boxes {

void ReplayLog::AppendShift(const Label& lo, const Label& hi,
                            int64_t delta) {
  LogEntry entry;
  entry.kind = LogEntry::Kind::kShift;
  entry.lo = lo;
  entry.hi = hi;
  entry.delta = delta;
  Append(std::move(entry));
}

void ReplayLog::AppendInvalidate(const Label& lo, const Label& hi) {
  LogEntry entry;
  entry.kind = LogEntry::Kind::kInvalidate;
  entry.lo = lo;
  entry.hi = hi;
  Append(std::move(entry));
}

void ReplayLog::AppendOrdinalShift(uint64_t from, int64_t delta) {
  LogEntry entry;
  entry.kind = LogEntry::Kind::kOrdinalShift;
  entry.ordinal_from = from;
  entry.delta = delta;
  Append(std::move(entry));
}

void ModificationLog::Append(LogEntry entry) {
  entry.timestamp = ++clock_;
  if (capacity_ == 0) {
    return;  // basic caching: only the clock is kept
  }
  entries_.push_back(std::move(entry));
  if (entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

ModificationLog::ReplayResult ModificationLog::Replay(uint64_t last_cached,
                                                      Label* label) const {
  if (!CoversSince(last_cached)) {
    return ReplayResult::kStale;
  }
  for (const LogEntry& entry : entries_) {
    if (entry.timestamp <= last_cached) {
      continue;
    }
    switch (entry.kind) {
      case LogEntry::Kind::kShift: {
        if (entry.lo <= *label && *label <= entry.hi) {
          std::vector<uint64_t> components = label->components();
          BOXES_CHECK(!components.empty());
          if (!CheckedShift(&components.back(), entry.delta)) {
            // The shift would wrap the component (e.g. a negative delta
            // larger than the last component); the cached value cannot be
            // repaired by replay.
            return ReplayResult::kStale;
          }
          *label = Label::FromComponents(std::move(components));
        }
        break;
      }
      case LogEntry::Kind::kInvalidate:
        if (entry.lo <= *label && *label <= entry.hi) {
          return ReplayResult::kStale;
        }
        break;
      case LogEntry::Kind::kOrdinalShift:
        break;  // does not affect value labels
    }
  }
  return ReplayResult::kUsable;
}

ModificationLog::ReplayResult ModificationLog::ReplayOrdinal(
    uint64_t last_cached, uint64_t* ordinal) const {
  if (!CoversSince(last_cached)) {
    return ReplayResult::kStale;
  }
  for (const LogEntry& entry : entries_) {
    if (entry.timestamp <= last_cached ||
        entry.kind != LogEntry::Kind::kOrdinalShift) {
      continue;
    }
    if (*ordinal >= entry.ordinal_from) {
      if (!CheckedShift(ordinal, entry.delta)) {
        return ReplayResult::kStale;
      }
    }
  }
  return ReplayResult::kUsable;
}

}  // namespace boxes
