#ifndef BOXES_STORAGE_IO_STATS_H_
#define BOXES_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace boxes {

/// Counters of logical block I/Os, the paper's primary performance metric.
///
/// A "read" is the first touch of a page that is not resident in the current
/// operation's working set; a "write" is a dirty page flushed at the end of
/// an operation (or evicted under a bounded cache). Per-operation costs are
/// deltas of total().
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;

  uint64_t total() const { return reads + writes; }

  IoStats Delta(const IoStats& earlier) const {
    IoStats d;
    d.reads = reads - earlier.reads;
    d.writes = writes - earlier.writes;
    return d;
  }

  std::string ToString() const;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_IO_STATS_H_
