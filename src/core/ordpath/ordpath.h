#ifndef BOXES_CORE_ORDPATH_ORDPATH_H_
#define BOXES_CORE_ORDPATH_ORDPATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "lidf/lidf.h"
#include "storage/page_cache.h"
#include "util/status.h"

namespace boxes {

/// Configuration of the ORDPATH-style baseline.
struct OrdpathOptions {
  /// Maximum encoded label size per record. Inserts that would exceed it
  /// fail with ResourceExhausted — the Ω(N)-bit blowup the paper cites is
  /// real and must surface somewhere.
  uint32_t max_label_bytes = 3968;
};

/// An ORDPATH-style *immutable* labeling baseline (paper §2, O'Neil et al.
/// SIGMOD'04): labels are variable-length component vectors ordered
/// lexicographically (a prefix sorts before its extensions); an insertion
/// "carets in" a fresh label strictly between its neighbors without ever
/// touching an existing label.
///
/// The label for a gap is the shortest extension that fits; under the
/// paper's concentrated insertion sequence each insertion deepens the
/// label by a component, reproducing the Ω(N)-bit lower bound of Cohen et
/// al. that the paper uses to motivate mutable labels (§1/§2).
///
/// Records form a doubly-linked list in document order (predecessor labels
/// are needed to compute gaps), stored directly in the LIDF:
///   pred_lid(8) succ_lid(8) encoded_len(4) varint components...
///
/// Updates are O(1) I/Os and labels never change (so the §6 cache never
/// invalidates) — the trade is unbounded label growth.
class OrdpathScheme : public LabelingScheme {
 public:
  OrdpathScheme(PageCache* cache, OrdpathOptions options = {});
  ~OrdpathScheme() override;

  OrdpathScheme(const OrdpathScheme&) = delete;
  OrdpathScheme& operator=(const OrdpathScheme&) = delete;

  std::string name() const override { return "ordpath"; }

  StatusOr<Label> Lookup(Lid lid) override;
  StatusOr<NewElement> InsertElementBefore(Lid lid) override;
  StatusOr<NewElement> InsertFirstElement() override;
  Status Delete(Lid lid) override;
  Status BulkLoad(const xml::Document& doc,
                  std::vector<NewElement>* lids_out) override;
  Status DeleteSubtree(Lid root_start, Lid root_end) override;
  StatusOr<SchemeStats> GetStats() override;
  Status CheckInvariants() override;

  const OrdpathOptions& options() const { return options_; }
  Lidf* lidf() override { return &lidf_; }
  uint64_t live_labels() const { return lidf_.live_records(); }
  /// Largest encoded label seen, in bytes (the scheme's pain metric).
  uint32_t max_encoded_bytes() const { return max_encoded_bytes_; }

  /// The shortest component vector strictly between `a` and `b` under
  /// prefix-first lexicographic order; `b` empty means +infinity.
  /// Exposed for tests. Requires a < b (or b empty).
  static std::vector<uint64_t> Between(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b);

 private:
  struct Record {
    Lid pred = kInvalidLid;
    Lid succ = kInvalidLid;
    std::vector<uint64_t> components;
  };

  StatusOr<Record> ReadRecord(Lid lid) const;
  Status WriteRecord(Lid lid, const Record& record);
  Status SetLinks(Lid lid, Lid pred, Lid succ);

  /// Low-level insert-before with fresh label computation.
  Status InsertBefore(Lid lid_new, Lid lid_old);

  PageCache* cache_;  // not owned
  const OrdpathOptions options_;
  Lidf lidf_;
  Lid head_ = kInvalidLid;
  Lid tail_ = kInvalidLid;
  uint32_t max_encoded_bytes_ = 0;
};

}  // namespace boxes

#endif  // BOXES_CORE_ORDPATH_ORDPATH_H_
