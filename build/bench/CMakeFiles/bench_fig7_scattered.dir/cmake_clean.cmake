file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_scattered.dir/bench_fig7_scattered.cc.o"
  "CMakeFiles/bench_fig7_scattered.dir/bench_fig7_scattered.cc.o.d"
  "bench_fig7_scattered"
  "bench_fig7_scattered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_scattered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
