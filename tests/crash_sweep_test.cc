// Crash-point recovery sweep: for each scheme, run an insert/delete
// workload with periodic checkpoints against a file-backed store, crash at
// every k-th page write (tearing the in-flight write), reopen from the
// surviving superblock slot, and verify that the database either recovers a
// consistent checkpoint (CheckInvariants + label order against the model)
// or fails with a clean error — never silent corruption.
//
// The contract asserted here is strict: once a checkpoint's commit has
// completed (its writes all persisted), every later crash point MUST
// recover a checkpoint at least that recent. Clean errors are acceptable
// only before the first commit completes.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "test_util.h"
#include "util/random.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;

constexpr size_t kPageSize = 1024;  // smallest size WBox's b >= 24 allows
constexpr int kOps = 300;
constexpr int kOpsPerCheckpoint = 20;
constexpr uint64_t kWorkloadSeed = 0xc4a54b01u;

// Model of the document's tag order, mirrored checkpoint by checkpoint.
struct ModelSnapshot {
  uint64_t index = 0;          // checkpoint number, 0-based
  uint64_t commit_writes = 0;  // wrapper writes when the commit completed
  std::vector<Lid> order;      // expected tag order at the checkpoint
};

struct WorkloadState {
  std::vector<Lid> order;                     // tag order, start/end lids
  std::vector<std::pair<Lid, Lid>> elements;  // live elements
};

// Applies one deterministic workload step; both the reference run and every
// crash run draw from an identically seeded Random, so they replay the same
// operation sequence up to the crash.
Status WorkloadStep(LabelingScheme* scheme, Random* rng,
                    WorkloadState* state) {
  if (state->elements.empty()) {
    BOXES_ASSIGN_OR_RETURN(const NewElement first,
                           scheme->InsertFirstElement());
    state->order = {first.start, first.end};
    state->elements = {{first.start, first.end}};
    return Status::OK();
  }
  if (state->elements.size() > 4 && rng->Bernoulli(0.3)) {
    const size_t victim = rng->Uniform(state->elements.size());
    const Lid start = state->elements[victim].first;
    const Lid end = state->elements[victim].second;
    BOXES_RETURN_IF_ERROR(scheme->Delete(start));
    BOXES_RETURN_IF_ERROR(scheme->Delete(end));
    state->elements.erase(state->elements.begin() +
                          static_cast<ptrdiff_t>(victim));
    auto& order = state->order;
    order.erase(std::remove_if(
                    order.begin(), order.end(),
                    [&](Lid lid) { return lid == start || lid == end; }),
                order.end());
    return Status::OK();
  }
  const size_t pos = rng->Uniform(state->order.size());
  BOXES_ASSIGN_OR_RETURN(const NewElement fresh,
                         scheme->InsertElementBefore(state->order[pos]));
  state->order.insert(state->order.begin() + static_cast<ptrdiff_t>(pos),
                      {fresh.start, fresh.end});
  state->elements.push_back({fresh.start, fresh.end});
  return Status::OK();
}

// Runs the workload against `cache`, committing a checkpoint every
// kOpsPerCheckpoint ops. Checkpoint chains carry [index, scheme head] so a
// recovered database knows which model snapshot it must match. Stops at the
// first error (the injected crash); `wrapper` counts committed page writes.
// On the fault-free reference run, `snapshots` receives one entry per
// committed checkpoint.
template <typename Scheme>
Status RunWorkload(PageCache* cache, Scheme* scheme,
                   FaultInjectionPageStore* wrapper,
                   std::vector<ModelSnapshot>* snapshots) {
  BOXES_RETURN_IF_ERROR(InitializeSuperblock(cache));
  Random rng(kWorkloadSeed);
  WorkloadState state;
  PageId previous_chain = kInvalidPageId;
  uint64_t checkpoint_index = 0;
  for (int op = 1; op <= kOps; ++op) {
    cache->BeginOp();
    const Status step = WorkloadStep(scheme, &rng, &state);
    const Status flush = cache->EndOp();
    BOXES_RETURN_IF_ERROR(step);
    BOXES_RETURN_IF_ERROR(flush);
    if (op % kOpsPerCheckpoint != 0) {
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(const PageId scheme_head, scheme->Checkpoint());
    MetadataWriter writer;
    writer.PutU64(checkpoint_index);
    writer.PutU64(scheme_head);
    BOXES_ASSIGN_OR_RETURN(const PageId head, writer.Finish(cache));
    BOXES_RETURN_IF_ERROR(CommitCheckpoint(cache, head));
    if (snapshots != nullptr) {
      snapshots->push_back(
          {checkpoint_index, wrapper->writes_committed(), state.order});
    }
    ++checkpoint_index;
    // Reclaim the superseded chain only after the new commit is durable.
    if (previous_chain != kInvalidPageId) {
      BOXES_RETURN_IF_ERROR(FreeMetadataChain(cache, previous_chain));
      BOXES_RETURN_IF_ERROR(cache->FlushAll());
    }
    previous_chain = head;
  }
  return Status::OK();
}

std::string SweepPath(const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "/boxes_sweep_" + tag + ".db";
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  return path;
}

bool IsCleanErrorCode(StatusCode code) {
  return code == StatusCode::kCorruption || code == StatusCode::kIoError ||
         code == StatusCode::kNotFound ||
         code == StatusCode::kInvalidArgument;
}

// Reopens the crashed image and classifies the outcome. Returns the index
// of the recovered checkpoint, or -1 for a clean pre-first-commit error.
// Any inconsistency (bad invariants, wrong label order, unreadable
// committed chain) fails the test via ADD_FAILURE.
template <typename Scheme, typename Options>
int64_t VerifyCrashedImage(const std::string& path, const Options& options,
                           const std::vector<ModelSnapshot>& snapshots,
                           uint64_t crash_point) {
  FilePageStore store(path, kPageSize, FilePageStore::Mode::kOpen);
  if (!store.status().ok()) {
    EXPECT_TRUE(IsCleanErrorCode(store.status().code()))
        << "crash point " << crash_point
        << ": reopen failed uncleanly: " << store.status().ToString();
    return -1;
  }
  PageCache cache(&store);
  const StatusOr<PageId> head = LoadCheckpointHead(&cache);
  if (!head.ok()) {
    EXPECT_TRUE(IsCleanErrorCode(head.status().code()))
        << "crash point " << crash_point << ": "
        << head.status().ToString();
    return -1;
  }
  // A committed superblock slot promises a readable, consistent
  // checkpoint; from here every step must succeed.
  StatusOr<MetadataReader> reader = MetadataReader::Load(&cache, *head);
  if (!reader.ok()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": committed chain unreadable: "
                  << reader.status().ToString();
    return -1;
  }
  StatusOr<uint64_t> index = reader->GetU64();
  StatusOr<uint64_t> scheme_head =
      index.ok() ? reader->GetU64() : StatusOr<uint64_t>(index.status());
  if (!index.ok() || !scheme_head.ok()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": committed chain truncated";
    return -1;
  }
  if (*index >= snapshots.size()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": recovered unknown checkpoint " << *index;
    return -1;
  }
  Scheme scheme(&cache, options);
  const Status restored = scheme.Restore(*scheme_head);
  if (!restored.ok()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": Restore failed: " << restored.ToString();
    return -1;
  }
  const Status invariants = scheme.CheckInvariants();
  if (!invariants.ok()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": invariants violated: " << invariants.ToString();
    return -1;
  }
  const ModelSnapshot& model = snapshots[*index];
  EXPECT_TRUE(LabelsStrictlyIncreasing(&scheme, model.order))
      << "crash point " << crash_point << ", checkpoint " << *index;
  StatusOr<SchemeStats> stats = scheme.GetStats();
  EXPECT_TRUE(stats.ok());
  if (stats.ok()) {
    EXPECT_EQ(stats->live_labels, model.order.size())
        << "crash point " << crash_point << ", checkpoint " << *index;
  }
  return static_cast<int64_t>(*index);
}

template <typename Scheme, typename Options>
void RunCrashSweep(const std::string& tag, const Options& options) {
  // Reference run: no faults; learns the total write count, the commit
  // points, and the model state at every checkpoint.
  std::vector<ModelSnapshot> snapshots;
  uint64_t total_writes = 0;
  {
    const std::string path = SweepPath(tag + "_ref");
    FilePageStore base(path, kPageSize);
    ASSERT_OK(base.status());
    FaultInjectionPageStore wrapper(&base);
    PageCache cache(&wrapper);
    Scheme scheme(&cache, options);
    ASSERT_OK(RunWorkload(&cache, &scheme, &wrapper, &snapshots));
    total_writes = wrapper.writes_committed();
  }
  ASSERT_GE(snapshots.size(), 3u) << "workload must span checkpoints";
  ASSERT_GE(total_writes, 220u) << "workload too small for a 200-point sweep";

  const uint64_t stride = std::max<uint64_t>(1, total_writes / 210);
  uint64_t points = 0;
  uint64_t recovered = 0;
  uint64_t clean_errors = 0;
  const std::string path = SweepPath(tag);
  for (uint64_t crash = 0; crash < total_writes; crash += stride) {
    ++points;
    // Crash run: identical workload, frozen image after `crash` writes;
    // the in-flight write is torn, so its partial frame reaches the disk.
    {
      FilePageStore base(path, kPageSize);
      ASSERT_OK(base.status());
      FaultInjectionPageStore wrapper(&base);
      wrapper.SetSeed(crash);
      wrapper.SetTornWrites(true);
      wrapper.CrashAfterWrites(crash);
      PageCache cache(&wrapper);
      Scheme scheme(&cache, options);
      const Status run = RunWorkload(&cache, &scheme, &wrapper, nullptr);
      ASSERT_FALSE(run.ok()) << "crash point " << crash << " never fired";
      ASSERT_EQ(run.code(), StatusCode::kIoError)
          << "crash point " << crash << ": " << run.ToString();
      ASSERT_TRUE(wrapper.crashed());
    }
    // Strict floor: the newest checkpoint whose commit completed before
    // the crash must still be recoverable.
    int64_t expected_min = -1;
    for (const ModelSnapshot& snapshot : snapshots) {
      if (snapshot.commit_writes <= crash) {
        expected_min = static_cast<int64_t>(snapshot.index);
      }
    }
    const int64_t got = VerifyCrashedImage<Scheme, Options>(
        path, options, snapshots, crash);
    if (got >= 0) {
      ++recovered;
    } else {
      ++clean_errors;
    }
    EXPECT_GE(got, expected_min)
        << "crash point " << crash << " lost a durably committed checkpoint";
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  ASSERT_GE(points, 200u);
  // Once commits exist, most crash points recover; all-clean-error would
  // mean the sweep is not exercising recovery at all.
  EXPECT_GT(recovered, points / 2);
  ::testing::Test::RecordProperty("crash_points", static_cast<int>(points));
  ::testing::Test::RecordProperty("recovered", static_cast<int>(recovered));
  ::testing::Test::RecordProperty("clean_errors",
                                  static_cast<int>(clean_errors));
}

TEST(CrashSweepTest, WBoxRecoversAtEveryCrashPoint) {
  RunCrashSweep<WBox>("wbox", WBoxOptions{});
}

TEST(CrashSweepTest, BBoxRecoversAtEveryCrashPoint) {
  RunCrashSweep<BBox>("bbox", BBoxOptions{});
}

TEST(CrashSweepTest, NaiveRecoversAtEveryCrashPoint) {
  RunCrashSweep<NaiveScheme>("naive",
                             NaiveOptions{.gap_bits = 8, .count_bits = 30});
}

}  // namespace
}  // namespace boxes
