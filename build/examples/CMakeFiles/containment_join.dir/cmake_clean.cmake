file(REMOVE_RECURSE
  "CMakeFiles/containment_join.dir/containment_join.cpp.o"
  "CMakeFiles/containment_join.dir/containment_join.cpp.o.d"
  "containment_join"
  "containment_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containment_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
