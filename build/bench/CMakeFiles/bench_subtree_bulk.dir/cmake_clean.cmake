file(REMOVE_RECURSE
  "CMakeFiles/bench_subtree_bulk.dir/bench_subtree_bulk.cc.o"
  "CMakeFiles/bench_subtree_bulk.dir/bench_subtree_bulk.cc.o.d"
  "bench_subtree_bulk"
  "bench_subtree_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subtree_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
