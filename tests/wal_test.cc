// Tests of the durable write-ahead op log (DESIGN.md §4i):
//
//   * ack ⇒ durable: flushes acknowledged without any checkpoint commit
//     survive a reopen — the log alone reconstructs them, LID-for-LID;
//   * torn tail: a damaged final batch ends replay cleanly (Status::OK,
//     torn_tail set) at the last intact boundary, never an error and never
//     a partially applied batch;
//   * point-in-time restore: the to_batch bound replays an exact prefix,
//     and a sealing checkpoint makes the bound permanent;
//   * idempotent retry: a batch re-appended after a sync fault applies
//     once, no matter how many complete copies the log holds;
//   * sync faults: the fdatasync barrier failing is surfaced by the bare
//     pipeline, absorbed by RetryingPageStore, and survived by the
//     checkpoint commit path (the old checkpoint plus the whole log stay
//     recoverable);
//   * page recycling: truncated log pages are pooled and reused, never
//     freed into the allocator (whose rollback journal would revert them);
//   * scan soundness: a data page forging the log magic is rejected by
//     the header CRC;
//   * online backup: a byte copy of the database file taken mid-session is
//     itself a recoverable crash image.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/common/update_buffer.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "storage/retrying_store.h"
#include "storage/wal.h"
#include "test_util.h"
#include "util/metrics.h"

namespace boxes::testing {
namespace {

constexpr size_t kPageSize = 1024;

std::string TempDbPath(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/boxes_wal_" + tag + ".db";
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  return path;
}

// One live writing session: scheme + pipeline + buffer over any store.
// Destroying it without flushing the cache leaves a crash image behind —
// which is exactly what the recovery tests reopen.
struct WalSession {
  explicit WalSession(PageStore* store, uint64_t checkpoint_interval = 0)
      : cache(store),
        scheme(&cache),
        pipeline(&cache, &scheme,
                 {.checkpoint_interval = checkpoint_interval}),
        buffer(&scheme, {.flush_threshold = 1024, .auto_flush = false}) {}

  Status Start(bool fresh) {
    if (fresh) {
      BOXES_RETURN_IF_ERROR(InitializeSuperblock(&cache));
    }
    BOXES_RETURN_IF_ERROR(pipeline.Init());
    pipeline.Attach(&buffer);
    return Status::OK();
  }

  PageCache cache;
  WBox scheme;
  WalPipeline pipeline;
  UpdateBuffer buffer;
};

// Runs `flushes` acknowledged flushes (the first creates the root, the
// rest insert `per_batch` children each) and returns the expected tag
// order at every flush boundary. LIDs in the result are the acknowledged
// ones — recovery must reproduce them exactly.
StatusOr<std::vector<std::vector<Lid>>> RunInsertFlushes(WalSession* s,
                                                         int flushes,
                                                         int per_batch) {
  std::vector<std::vector<Lid>> boundaries;
  BOXES_ASSIGN_OR_RETURN(const UpdateBuffer::Ticket root_ticket,
                         s->buffer.InsertFirstElement());
  BOXES_RETURN_IF_ERROR(s->buffer.Flush());
  BOXES_ASSIGN_OR_RETURN(const NewElement root,
                         s->buffer.Result(root_ticket));
  std::vector<Lid> order = {root.start, root.end};
  boundaries.push_back(order);
  for (int f = 1; f < flushes; ++f) {
    std::vector<UpdateBuffer::Ticket> tickets;
    for (int i = 0; i < per_batch; ++i) {
      BOXES_ASSIGN_OR_RETURN(const UpdateBuffer::Ticket ticket,
                             s->buffer.InsertElementBefore(root.end));
      tickets.push_back(ticket);
    }
    BOXES_RETURN_IF_ERROR(s->buffer.Flush());
    for (const UpdateBuffer::Ticket ticket : tickets) {
      BOXES_ASSIGN_OR_RETURN(const NewElement child,
                             s->buffer.Result(ticket));
      order.insert(order.end() - 1, {child.start, child.end});
    }
    boundaries.push_back(order);
  }
  return boundaries;
}

// Reopens `path` as a crash image, recovers, and asserts the recovered
// tree IS `order` — every expected LID present, correctly ordered, and not
// one label more.
void RecoverAndExpect(const std::string& path, const std::vector<Lid>& order,
                      const WalReplayOptions& bounds,
                      WalRecoveryResult* out = nullptr) {
  FilePageStore store(path, kPageSize, FilePageStore::Mode::kOpen);
  ASSERT_OK(store.status());
  PageCache cache(&store);
  WBox scheme(&cache);
  ASSERT_OK_AND_ASSIGN(
      WalRecoveryResult recovered,
      RecoverWithWal(
          &cache, &scheme,
          [&](PageId head) { return scheme.Restore(head); }, bounds));
  ASSERT_OK(scheme.CheckInvariants());
  ASSERT_TRUE(LabelsStrictlyIncreasing(&scheme, order));
  ASSERT_OK_AND_ASSIGN(const SchemeStats stats, scheme.GetStats());
  EXPECT_EQ(stats.live_labels, order.size());
  if (out != nullptr) {
    *out = std::move(recovered);
  }
}

// ---------------------------------------------------------------------------
// ack ⇒ durable, torn tails, point-in-time restore.

TEST(WalTest, AcknowledgedFlushesSurviveReopenWithoutCheckpoint) {
  const std::string path = TempDbPath("ack_durable");
  std::vector<std::vector<Lid>> boundaries;
  {
    FilePageStore store(path, kPageSize);
    ASSERT_OK(store.status());
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(boundaries, RunInsertFlushes(&session, 4, 5));
    // No checkpoint was ever committed; the cache is discarded dirty.
  }
  WalRecoveryResult recovered;
  RecoverAndExpect(path, boundaries.back(), {}, &recovered);
  EXPECT_EQ(recovered.replay.batches_replayed, 4u);
  EXPECT_EQ(recovered.replay.ops_replayed, 1u + 3u * 5u);
  EXPECT_FALSE(recovered.replay.torn_tail);
  EXPECT_EQ(recovered.checkpoint_head, kInvalidPageId);
  EXPECT_EQ(recovered.next_batch_id, 5u);
}

TEST(WalTest, TornTailStopsCleanlyAtLastIntactBoundary) {
  const std::string path = TempDbPath("torn_tail");
  std::vector<std::vector<Lid>> boundaries;
  {
    FilePageStore store(path, kPageSize);
    ASSERT_OK(store.status());
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    // 40 ops per batch spans two log pages, so losing one page leaves a
    // visibly incomplete batch (not an invisible one).
    ASSERT_OK_AND_ASSIGN(boundaries, RunInsertFlushes(&session, 4, 40));

    ASSERT_OK_AND_ASSIGN(const WalScan scan, ScanWal(&store));
    const WalBatch* last = nullptr;
    for (const WalBatch& batch : scan.batches) {
      if (batch.batch_id == 4) {
        last = &batch;
      }
    }
    ASSERT_NE(last, nullptr);
    ASSERT_GE(last->pages.size(), 2u);
    std::vector<uint8_t> zeros(kPageSize, 0);
    ASSERT_OK(store.WriteUnjournaled(last->pages.front(), zeros.data()));
  }
  WalRecoveryResult recovered;
  RecoverAndExpect(path, boundaries[2], {}, &recovered);
  EXPECT_EQ(recovered.replay.batches_replayed, 3u);
  EXPECT_TRUE(recovered.replay.torn_tail);
  // The damaged id was still observed, so it stays burned.
  EXPECT_EQ(recovered.next_batch_id, 5u);
}

TEST(WalTest, PointInTimeRestoreReplaysExactPrefixAndSeals) {
  const std::string path = TempDbPath("pitr");
  std::vector<std::vector<Lid>> boundaries;
  {
    FilePageStore store(path, kPageSize);
    ASSERT_OK(store.status());
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(boundaries, RunInsertFlushes(&session, 5, 4));
  }
  // Restore to batch 3 and seal the bound with a checkpoint + truncation.
  {
    FilePageStore store(path, kPageSize, FilePageStore::Mode::kOpen);
    ASSERT_OK(store.status());
    PageCache cache(&store);
    WBox scheme(&cache);
    ASSERT_OK_AND_ASSIGN(
        const WalRecoveryResult recovered,
        RecoverWithWal(
            &cache, &scheme,
            [&](PageId head) { return scheme.Restore(head); },
            {.to_batch = 3}));
    EXPECT_EQ(recovered.replay.batches_replayed, 3u);
    EXPECT_EQ(recovered.replay.batches_beyond_bound, 2u);
    ASSERT_TRUE(LabelsStrictlyIncreasing(&scheme, boundaries[2]));
    WalPipeline pipeline(&cache, &scheme);
    ASSERT_OK(pipeline.InitFromRecovery(recovered));
    ASSERT_OK(pipeline.CheckpointNow());
  }
  // After the seal the beyond-bound batches are stale history: a second,
  // unbounded recovery must still land on the bound.
  WalRecoveryResult recovered;
  RecoverAndExpect(path, boundaries[2], {}, &recovered);
  EXPECT_EQ(recovered.replay.batches_replayed, 0u);
  // Burned ids stay burned even for discarded history.
  EXPECT_GE(recovered.next_batch_id, 6u);
}

// ---------------------------------------------------------------------------
// Sync faults and retried appends.

TEST(WalTest, RetriedAppendAfterSyncFaultAppliesOnce) {
  const std::string path = TempDbPath("retry_once");
  std::vector<Lid> expected;
  {
    FilePageStore base(path, kPageSize);
    ASSERT_OK(base.status());
    FaultInjectionPageStore store(&base);
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket root_ticket,
                         session.buffer.InsertFirstElement());
    ASSERT_OK(session.buffer.Flush());
    ASSERT_OK_AND_ASSIGN(const NewElement root,
                         session.buffer.Result(root_ticket));

    std::vector<UpdateBuffer::Ticket> tickets;
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket ticket,
                           session.buffer.InsertElementBefore(root.end));
      tickets.push_back(ticket);
    }
    // The batch's one fdatasync fails: nothing may be acknowledged, and
    // the pending set must stay intact for a retry.
    store.FailSyncAfter(0, 1);
    const Status failed = session.buffer.Flush();
    ASSERT_EQ(failed.code(), StatusCode::kIoError);
    EXPECT_EQ(session.buffer.pending(), 5u);
    // The retry re-appends the same batch id under the next attempt
    // number; the log now holds two complete copies.
    ASSERT_OK(session.buffer.Flush());
    expected = {root.start, root.end};
    for (const UpdateBuffer::Ticket ticket : tickets) {
      ASSERT_OK_AND_ASSIGN(const NewElement child,
                           session.buffer.Result(ticket));
      expected.insert(expected.end() - 1, {child.start, child.end});
    }
    ASSERT_OK_AND_ASSIGN(const WalScan scan, ScanWal(&base));
    EXPECT_EQ(scan.batches.size(), 3u) << "batch 2 must appear twice";
  }
  // Replay applies batch 2 exactly once (duplicate ids dedupe).
  WalRecoveryResult recovered;
  RecoverAndExpect(path, expected, {}, &recovered);
  EXPECT_EQ(recovered.replay.batches_replayed, 2u);
  EXPECT_EQ(recovered.replay.ops_replayed, 6u);
}

// Regression: a faulted append's fdatasync can fail with every page it
// covered already intact on the device, and the caller may enqueue MORE
// ops before retrying Flush — the retry then logs a larger batch under
// the same id with a bumped attempt. Only the last successful append was
// acknowledged, so replay must pick the LAST complete attempt; picking
// the first would silently drop the late ops and shift every later LID.
TEST(WalTest, ReplayPicksTheLastCompleteAttemptOfAGrownRetry) {
  const std::string path = TempDbPath("grown_retry");
  std::vector<Lid> expected;
  {
    FilePageStore base(path, kPageSize);
    ASSERT_OK(base.status());
    FaultInjectionPageStore store(&base);
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket root_ticket,
                         session.buffer.InsertFirstElement());
    ASSERT_OK(session.buffer.Flush());
    ASSERT_OK_AND_ASSIGN(const NewElement root,
                         session.buffer.Result(root_ticket));

    std::vector<UpdateBuffer::Ticket> tickets;
    for (int i = 0; i < 3; ++i) {
      ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket ticket,
                           session.buffer.InsertElementBefore(root.end));
      tickets.push_back(ticket);
    }
    // The barrier fails, but the pages under it reached the file: the
    // 3-op attempt 0 of batch 2 is complete on disk, just unacknowledged.
    store.FailSyncAfter(0, 1);
    ASSERT_EQ(session.buffer.Flush().code(), StatusCode::kIoError);
    EXPECT_EQ(session.buffer.pending(), 3u);
    // Two more ops join the batch before the retry; the acknowledged
    // shape of batch 2 is the 5-op attempt 1.
    for (int i = 0; i < 2; ++i) {
      ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket ticket,
                           session.buffer.InsertElementBefore(root.end));
      tickets.push_back(ticket);
    }
    ASSERT_OK(session.buffer.Flush());
    expected = {root.start, root.end};
    for (const UpdateBuffer::Ticket ticket : tickets) {
      ASSERT_OK_AND_ASSIGN(const NewElement child,
                           session.buffer.Result(ticket));
      expected.insert(expected.end() - 1, {child.start, child.end});
    }
    int complete_copies = 0;
    ASSERT_OK_AND_ASSIGN(const WalScan scan, ScanWal(&base));
    for (const WalBatch& batch : scan.batches) {
      if (batch.batch_id == 2 && batch.complete) {
        ++complete_copies;
      }
    }
    ASSERT_EQ(complete_copies, 2) << "both attempts must be intact on disk";
  }
  WalRecoveryResult recovered;
  RecoverAndExpect(path, expected, {}, &recovered);
  EXPECT_EQ(recovered.replay.batches_replayed, 2u);
  EXPECT_EQ(recovered.replay.ops_replayed, 6u) << "1 root + all 5 children";
}

TEST(WalTest, RetryingStoreAbsorbsTransientSyncFault) {
  const std::string path = TempDbPath("retry_store");
  std::vector<std::vector<Lid>> boundaries;
  {
    FilePageStore base(path, kPageSize);
    ASSERT_OK(base.status());
    FaultInjectionPageStore fault(&base);
    RetryingPageStore store(&fault);
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(boundaries, RunInsertFlushes(&session, 2, 3));
    fault.FailSyncAfter(0, 1);
    // The transient barrier fault is retried away below the pipeline:
    // this flush must be acknowledged on the first call.
    std::vector<UpdateBuffer::Ticket> tickets;
    ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket ticket,
                         session.buffer.InsertElementBefore(
                             boundaries.back().back()));
    tickets.push_back(ticket);
    ASSERT_OK(session.buffer.Flush());
    ASSERT_OK_AND_ASSIGN(const NewElement child,
                         session.buffer.Result(tickets.front()));
    std::vector<Lid> order = boundaries.back();
    order.insert(order.end() - 1, {child.start, child.end});
    boundaries.push_back(order);
    EXPECT_GE(store.counters().recovered.load(), 1u);
  }
  WalRecoveryResult recovered;
  RecoverAndExpect(path, boundaries.back(), {}, &recovered);
  EXPECT_EQ(recovered.replay.batches_replayed, 3u);
}

TEST(WalTest, CheckpointCommitSurvivesSyncFault) {
  const std::string path = TempDbPath("ckpt_sync_fault");
  std::vector<std::vector<Lid>> boundaries;
  {
    FilePageStore base(path, kPageSize);
    ASSERT_OK(base.status());
    FaultInjectionPageStore store(&base);
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(boundaries, RunInsertFlushes(&session, 3, 4));
    // The commit's data barrier fails: the checkpoint must not be
    // published, and neither the previous superblock nor the log may be
    // damaged.
    store.FailSyncAfter(0, 1000);
    const Status failed = session.pipeline.CheckpointNow();
    ASSERT_EQ(failed.code(), StatusCode::kIoError);
    store.Heal();
  }
  // Everything acknowledged is still there, via the log alone.
  WalRecoveryResult recovered;
  RecoverAndExpect(path, boundaries.back(), {}, &recovered);
  EXPECT_EQ(recovered.replay.batches_replayed, 3u);
  EXPECT_EQ(recovered.checkpoint_head, kInvalidPageId);
}

// Regression: when EVERY page of the first uncheckpointed batch is
// unreadable, its group is absent from the scan entirely, so the
// mid-replay gap check (which compares consecutive *scanned* ids) never
// sees the hole — replay used to start silently past it, applying
// acknowledged history out of order. The checkpoint's WAL mark anchors
// the start: a first batch that is not the mark is a torn tail, and
// nothing may be applied.
TEST(WalTest, MissingFirstLoggedBatchStopsReplayBeforeApplyingAnything) {
  const std::string path = TempDbPath("missing_first");
  {
    FilePageStore store(path, kPageSize);
    ASSERT_OK(store.status());
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK(RunInsertFlushes(&session, 3, 4).status());
    // Erase every trace of batch 1 — the fresh database's WAL mark.
    ASSERT_OK_AND_ASSIGN(const WalScan scan, ScanWal(&store));
    std::vector<uint8_t> zeros(kPageSize, 0);
    bool erased = false;
    for (const WalBatch& batch : scan.batches) {
      if (batch.batch_id == 1) {
        for (const PageId page : batch.pages) {
          ASSERT_OK(store.WriteUnjournaled(page, zeros.data()));
          erased = true;
        }
      }
    }
    ASSERT_TRUE(erased);
  }
  // Batches 2 and 3 are complete on disk, but applying them without
  // batch 1 would reorder history: recovery is a clean stop at nothing.
  FilePageStore store(path, kPageSize, FilePageStore::Mode::kOpen);
  ASSERT_OK(store.status());
  PageCache cache(&store);
  WBox scheme(&cache);
  ASSERT_OK_AND_ASSIGN(
      const WalRecoveryResult recovered,
      RecoverWithWal(&cache, &scheme,
                     [&](PageId head) { return scheme.Restore(head); }));
  EXPECT_EQ(recovered.replay.batches_replayed, 0u);
  EXPECT_TRUE(recovered.replay.torn_tail);
  ASSERT_OK(scheme.CheckInvariants());
  ASSERT_OK_AND_ASSIGN(const SchemeStats stats, scheme.GetStats());
  EXPECT_EQ(stats.live_labels, 0u);
}

// ---------------------------------------------------------------------------
// Page recycling and scan soundness.

TEST(WalTest, TruncatedLogPagesArePooledAndReused) {
  const std::string path = TempDbPath("recycle");
  FilePageStore store(path, kPageSize);
  ASSERT_OK(store.status());
  WalSession session(&store);
  ASSERT_OK(session.Start(/*fresh=*/true));
  ASSERT_OK_AND_ASSIGN(const std::vector<std::vector<Lid>> boundaries,
                       RunInsertFlushes(&session, 3, 4));
  EXPECT_EQ(session.pipeline.writer().pooled_pages(), 0u);

  ASSERT_OK(session.pipeline.CheckpointNow());
  const size_t pooled = session.pipeline.writer().pooled_pages();
  EXPECT_GE(pooled, 3u) << "truncation must retire, not free, log pages";

  // The next flush draws from the pool instead of the allocator.
  ASSERT_OK_AND_ASSIGN(const SuperblockInfo info,
                       LoadSuperblock(&session.cache));
  EXPECT_EQ(info.sequence, 2u);
  ASSERT_OK(session.buffer.InsertElementBefore(boundaries.back().back())
                .status());
  ASSERT_OK(session.buffer.Flush());
  EXPECT_LT(session.pipeline.writer().pooled_pages(), pooled);
  ASSERT_OK(session.scheme.CheckInvariants());
}

// Regression: the non-recovery open path (WalPipeline::Init) used to
// ignore pre-existing log pages. Log pages are never freed back to the
// allocator, so every clean open/close cycle permanently leaked the prior
// session's pool, growing the file forever. Init must adopt what the scan
// finds so the next truncation puts it back into circulation.
TEST(WalTest, InitAdoptsPriorSessionsLogPagesInsteadOfLeaking) {
  const std::string path = TempDbPath("init_adopt");
  Lid anchor = kInvalidLid;
  {
    FilePageStore store(path, kPageSize);
    ASSERT_OK(store.status());
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(const std::vector<std::vector<Lid>> boundaries,
                         RunInsertFlushes(&session, 3, 4));
    anchor = boundaries.back().back();  // the root's end LID, stable
    // Clean shutdown: checkpoint + truncate leaves the log pages pooled
    // inside this (dying) writer — on disk they are just stale pages.
    ASSERT_OK(session.pipeline.CheckpointNow());
    ASSERT_GE(session.pipeline.writer().pooled_pages(), 3u);
  }
  FilePageStore store(path, kPageSize, FilePageStore::Mode::kOpen);
  ASSERT_OK(store.status());
  PageCache cache(&store);
  WBox scheme(&cache);
  ASSERT_OK_AND_ASSIGN(const PageId head, LoadCheckpointHead(&cache));
  ASSERT_OK(scheme.Restore(head));
  WalPipeline pipeline(&cache, &scheme);
  ASSERT_OK(pipeline.Init());
  EXPECT_GE(pipeline.writer().tracked_pages(), 3u)
      << "Init must adopt the prior session's log pages";
  UpdateBuffer buffer(&scheme, {.flush_threshold = 1024,
                                .auto_flush = false});
  pipeline.Attach(&buffer);
  // The first truncation of this session retires the adopted pages into
  // the recycle pool; after that, flush/checkpoint cycles must run the
  // log entirely from recycled pages — the file stops growing.
  ASSERT_OK(buffer.InsertElementBefore(anchor).status());
  ASSERT_OK(buffer.Flush());
  ASSERT_OK(pipeline.CheckpointNow());
  ASSERT_GE(pipeline.writer().pooled_pages(), 3u);
  ASSERT_OK(buffer.InsertElementBefore(anchor).status());
  ASSERT_OK(buffer.Flush());
  ASSERT_OK(pipeline.CheckpointNow());
  const uint64_t total_pages = store.total_pages();
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_OK(buffer.InsertElementBefore(anchor).status());
    ASSERT_OK(buffer.Flush());
    ASSERT_OK(pipeline.CheckpointNow());
  }
  EXPECT_EQ(store.total_pages(), total_pages)
      << "steady-state cycles must not allocate fresh pages";
  ASSERT_OK(scheme.CheckInvariants());
}

TEST(WalTest, ScanRejectsDataPageForgingTheLogMagic) {
  const std::string path = TempDbPath("forged_magic");
  FilePageStore store(path, kPageSize);
  ASSERT_OK(store.status());
  PageCache cache(&store);
  ASSERT_OK(InitializeSuperblock(&cache));
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  // A "data" page whose first bytes spell the log magic but whose header
  // CRC is garbage: the scan must type it as not-a-log-page.
  std::vector<uint8_t> buf(kPageSize, 0x5a);
  buf[0] = 0x42;  // 'B'
  buf[1] = 0x57;  // 'W'
  buf[2] = 0x41;  // 'A'
  buf[3] = 0x4c;  // 'L'
  ASSERT_OK(store.Write(page, buf.data()));
  ASSERT_OK_AND_ASSIGN(const WalScan scan, ScanWal(&store));
  EXPECT_EQ(scan.wal_pages, 0u);
  EXPECT_TRUE(scan.batches.empty());
}

// ---------------------------------------------------------------------------
// Online backup: the database file IS the backup unit.

void CopyFileBytes(const std::string& from, const std::string& to,
                   bool required = true) {
  std::ifstream in(from, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    ASSERT_FALSE(required) << from;
    return;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << to;
  if (size > 0) {
    // Inserting an empty streambuf sets failbit; an empty source (a
    // just-truncated journal) is still a valid copy.
    out << in.rdbuf();
  }
  ASSERT_TRUE(out.good());
}

TEST(WalTest, MidSessionByteCopyIsARecoverableBackup) {
  const std::string path = TempDbPath("backup_src");
  const std::string backup = TempDbPath("backup_dst");
  std::vector<std::vector<Lid>> boundaries;
  {
    FilePageStore store(path, kPageSize);
    ASSERT_OK(store.status());
    // Interval 2: the copied image holds a mid-log mix of checkpointed
    // and log-only flushes.
    WalSession session(&store, /*checkpoint_interval=*/2);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(boundaries, RunInsertFlushes(&session, 5, 4));
    // Copy while the session is live (dirty cache, open file): what the
    // copy captures is exactly a crash image as of the last acknowledged
    // flush.
    CopyFileBytes(path, backup);
    CopyFileBytes(path + ".journal", backup + ".journal",
                  /*required=*/false);
    // The source keeps writing after the copy; the backup must not care.
    ASSERT_OK(session.buffer.InsertElementBefore(boundaries.back().back())
                  .status());
    ASSERT_OK(session.buffer.Flush());
  }
  RecoverAndExpect(backup, boundaries.back(), {});
}

TEST(WalTest, BackupRacingALiveAppendLandsOnABatchBoundary) {
  // An online backup is a plain byte copy with no lock against the
  // appender, so the copier can pass a log offset BEFORE the appender
  // writes it: the copy then holds a half-captured batch. Restore must
  // land on the last batch boundary fully inside the copy — never replay
  // half of the racing batch. Simulated deterministically: snapshot the
  // file, append a multi-page batch, then build the backup from the
  // post-append file with one of the new batch's pages reverted to its
  // pre-append bytes (the region the copier had already passed).
  const std::string path = TempDbPath("backup_race_src");
  const std::string backup = TempDbPath("backup_race_dst");
  std::vector<std::vector<Lid>> boundaries;
  {
    FilePageStore store(path, kPageSize);
    ASSERT_OK(store.status());
    WalSession session(&store);
    ASSERT_OK(session.Start(/*fresh=*/true));
    ASSERT_OK_AND_ASSIGN(boundaries, RunInsertFlushes(&session, 3, 4));
    // The copier's view of the log region, captured before the append.
    std::ifstream pre_in(path, std::ios::binary);
    ASSERT_TRUE(pre_in.good());
    const std::vector<char> pre((std::istreambuf_iterator<char>(pre_in)),
                                std::istreambuf_iterator<char>());
    // The racing batch: 40 ops spans two log pages, acked on the source.
    const Lid root_end = boundaries.back().back();
    std::vector<UpdateBuffer::Ticket> tickets;
    for (int i = 0; i < 40; ++i) {
      ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket ticket,
                           session.buffer.InsertElementBefore(root_end));
      tickets.push_back(ticket);
    }
    ASSERT_OK(session.buffer.Flush());
    std::vector<Lid> final_order = boundaries.back();
    for (const UpdateBuffer::Ticket ticket : tickets) {
      ASSERT_OK_AND_ASSIGN(const NewElement child,
                           session.buffer.Result(ticket));
      final_order.insert(final_order.end() - 1, {child.start, child.end});
    }
    boundaries.push_back(final_order);

    ASSERT_OK_AND_ASSIGN(const WalScan scan, ScanWal(&store));
    const WalBatch* racing = nullptr;
    for (const WalBatch& batch : scan.batches) {
      if (batch.batch_id == 4) {
        racing = &batch;
      }
    }
    ASSERT_NE(racing, nullptr);
    ASSERT_GE(racing->pages.size(), 2u);

    CopyFileBytes(path, backup);
    CopyFileBytes(path + ".journal", backup + ".journal",
                  /*required=*/false);
    // Revert one of the racing batch's pages in the COPY to what the
    // copier saw before the append (zeros if the file hadn't grown there).
    // On-device frames are page + CRC trailer (§4e verified page format).
    const size_t frame_size = kPageSize + FilePageStore::kPageTrailerSize;
    const std::streamoff offset =
        static_cast<std::streamoff>(racing->pages.front()) * frame_size;
    std::vector<char> stale(frame_size, 0);
    if (static_cast<size_t>(offset) + frame_size <= pre.size()) {
      std::copy(pre.begin() + offset, pre.begin() + offset + frame_size,
                stale.begin());
    }
    std::fstream patch(backup,
                       std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(patch.good());
    patch.seekp(offset);
    patch.write(stale.data(), static_cast<std::streamsize>(frame_size));
    ASSERT_TRUE(patch.good());
  }
  // The backup restores to the pre-append boundary, cleanly torn.
  WalRecoveryResult recovered;
  RecoverAndExpect(backup, boundaries[2], {}, &recovered);
  EXPECT_EQ(recovered.replay.batches_replayed, 3u);
  EXPECT_TRUE(recovered.replay.torn_tail);
  // The source was never damaged: the acked racing batch is all there.
  RecoverAndExpect(path, boundaries.back(), {});
}

}  // namespace
}  // namespace boxes::testing
