#include "core/bbox/bbox.h"

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::TagOrderLids;
using testing::TestDb;

TEST(BBoxParamsTest, DerivedValues) {
  const BBoxParams p = BBoxParams::Derive(8192, /*ordinal=*/false, 2);
  EXPECT_EQ(p.leaf_capacity, (8192u - 16) / 8);
  EXPECT_EQ(p.internal_capacity, (8192u - 16) / 8);
  EXPECT_EQ(p.LeafMin(), p.leaf_capacity / 2);
  const BBoxParams q = BBoxParams::Derive(8192, /*ordinal=*/true, 4);
  EXPECT_EQ(q.internal_capacity, (8192u - 16) / 16);  // size fields
  EXPECT_EQ(q.InternalMin(), q.internal_capacity / 4);
}

TEST(BBoxTest, FirstElementAndLookup) {
  TestDb db;
  BBox bbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, bbox.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const Label start, bbox.Lookup(root.start));
  ASSERT_OK_AND_ASSIGN(const Label end, bbox.Lookup(root.end));
  EXPECT_TRUE(start < end);
  // Single-leaf tree: labels are one component (the slot).
  EXPECT_EQ(start.components().size(), 1u);
  EXPECT_EQ(start.components()[0], 0u);
  EXPECT_EQ(end.components()[0], 1u);
  ASSERT_OK(bbox.CheckInvariants());
}

TEST(BBoxTest, InsertSemantics) {
  TestDb db;
  BBox bbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, bbox.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const NewElement b, bbox.InsertElementBefore(root.end));
  ASSERT_OK_AND_ASSIGN(const NewElement a, bbox.InsertElementBefore(b.start));
  EXPECT_TRUE(LabelsStrictlyIncreasing(
      &bbox, {root.start, a.start, a.end, b.start, b.end, root.end}));
  ASSERT_OK_AND_ASSIGN(const ElementLabels root_labels,
                       bbox.LookupElement(root.start, root.end));
  ASSERT_OK_AND_ASSIGN(const ElementLabels a_labels,
                       bbox.LookupElement(a.start, a.end));
  EXPECT_TRUE(IsAncestor(root_labels, a_labels));
  EXPECT_FALSE(IsAncestor(a_labels, root_labels));
  ASSERT_OK(bbox.CheckInvariants());
}

TEST(BBoxTest, BulkLoadMatchesDocumentOrder) {
  TestDb db;
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeRandomDocument(4000, 6, 19);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  EXPECT_TRUE(LabelsStrictlyIncreasing(&bbox, TagOrderLids(doc, lids)));
  ASSERT_OK(bbox.CheckInvariants());
  EXPECT_EQ(bbox.live_labels(), doc.tag_count());
}

TEST(BBoxTest, GrowsAndStaysOrderedUnderConcentratedInsertion) {
  TestDb db(/*page_size=*/512);
  BBox bbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, bbox.InsertFirstElement());
  NewElement target = root;
  std::vector<Lid> chain{root.start};
  // Nested chain: each new element is the last child of the previous one,
  // hammering one leaf region.
  for (int i = 0; i < 3000; ++i) {
    ASSERT_OK_AND_ASSIGN(target, bbox.InsertElementBefore(target.end));
    chain.push_back(target.start);
  }
  EXPECT_GE(bbox.height(), 3u);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&bbox, chain));
  ASSERT_OK(bbox.CheckInvariants());
}

TEST(BBoxTest, LookupCostIsHeightPlusLidf) {
  TestDb db;
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(20000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  const uint32_t height = bbox.height();
  EXPECT_GE(height, 2u);
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  constexpr int kLookups = 50;
  for (int i = 0; i < kLookups; ++i) {
    IoScope scope(&db.cache);
    ASSERT_OK(bbox.Lookup(lids[(i * 449) % lids.size()].start).status());
  }
  // Bottom-up reconstruction: 1 LIDF I/O + one per level (Theorem 5.2).
  EXPECT_EQ(db.cache.stats().reads, (1u + height) * kLookups);
}

TEST(BBoxTest, AmortizedInsertTouchesFewPages) {
  TestDb db;
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(5000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  constexpr int kInserts = 500;
  Lid target = lids[2500].start;
  for (int i = 0; i < kInserts; ++i) {
    IoScope scope(&db.cache);
    ASSERT_OK_AND_ASSIGN(const NewElement e, bbox.InsertElementBefore(target));
    target = e.start;
  }
  // O(1) amortized: LIDF page + leaf (+ rare splits). Well under 8 I/Os
  // per element insert on average.
  EXPECT_LT(db.cache.stats().total(), 8u * kInserts);
  ASSERT_OK(bbox.CheckInvariants());
}

TEST(BBoxTest, CompareUsesLcaAndAgreesWithLabels) {
  TestDb db(/*page_size=*/512);
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeRandomDocument(2000, 5, 29);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  const std::vector<Lid> order = TagOrderLids(doc, lids);
  for (size_t i = 0; i < order.size(); i += 97) {
    for (size_t j = 0; j < order.size(); j += 131) {
      ASSERT_OK_AND_ASSIGN(const int cmp, bbox.Compare(order[i], order[j]));
      if (i < j) {
        EXPECT_LT(cmp, 0) << i << " vs " << j;
      } else if (i > j) {
        EXPECT_GT(cmp, 0) << i << " vs " << j;
      } else {
        EXPECT_EQ(cmp, 0);
      }
    }
  }
}

TEST(BBoxTest, DeleteRebalancesAndPreservesOrder) {
  TestDb db(/*page_size=*/512);
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(3000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  // Delete 90% of the children.
  std::vector<Lid> survivors{lids[0].start};
  for (size_t i = 1; i < lids.size(); ++i) {
    if (i % 10 != 0) {
      ASSERT_OK(bbox.Delete(lids[i].start));
      ASSERT_OK(bbox.Delete(lids[i].end));
    } else {
      survivors.push_back(lids[i].start);
      survivors.push_back(lids[i].end);
    }
  }
  survivors.push_back(lids[0].end);
  ASSERT_OK(bbox.CheckInvariants());
  EXPECT_TRUE(LabelsStrictlyIncreasing(&bbox, survivors));
}

TEST(BBoxTest, DeleteEverythingEmptiesStructure) {
  TestDb db(/*page_size=*/512);
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  for (size_t i = 1; i < lids.size(); ++i) {
    ASSERT_OK(bbox.Delete(lids[i].start));
    ASSERT_OK(bbox.Delete(lids[i].end));
  }
  ASSERT_OK(bbox.Delete(lids[0].start));
  ASSERT_OK(bbox.Delete(lids[0].end));
  EXPECT_EQ(bbox.live_labels(), 0u);
  EXPECT_EQ(bbox.height(), 0u);
  ASSERT_OK(bbox.CheckInvariants());
  // The structure is reusable after emptying.
  ASSERT_OK(bbox.InsertFirstElement().status());
  ASSERT_OK(bbox.CheckInvariants());
}

TEST(BBoxTest, MinFillDivisorFourAllowsSparserNodes) {
  TestDb db(/*page_size=*/512);
  BBoxOptions options;
  options.min_fill_divisor = 4;
  BBox bbox(&db.cache, options);
  const xml::Document doc = xml::MakeTwoLevelDocument(2000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  for (size_t i = 1; i < lids.size(); i += 2) {
    ASSERT_OK(bbox.Delete(lids[i].start));
    ASSERT_OK(bbox.Delete(lids[i].end));
  }
  ASSERT_OK(bbox.CheckInvariants());
}

TEST(BBoxTest, OrdinalLookupMatchesPosition) {
  TestDb db;
  BBoxOptions options;
  options.ordinal = true;
  BBox bbox(&db.cache, options);
  const xml::Document doc = xml::MakeRandomDocument(1500, 6, 7);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  const std::vector<Lid> order = TagOrderLids(doc, lids);
  for (size_t i = 0; i < order.size(); i += 41) {
    ASSERT_OK_AND_ASSIGN(const uint64_t ordinal, bbox.OrdinalLookup(order[i]));
    EXPECT_EQ(ordinal, i);
  }
  ASSERT_OK(bbox.Delete(order[0]));
  ASSERT_OK_AND_ASSIGN(const uint64_t ordinal, bbox.OrdinalLookup(order[5]));
  EXPECT_EQ(ordinal, 4u);
  ASSERT_OK(bbox.CheckInvariants());
}

TEST(BBoxTest, SubtreeInsertMatchesElementwise) {
  TestDb db(/*page_size=*/512);
  BBox bbox(&db.cache);
  const xml::Document base = xml::MakeTwoLevelDocument(800);
  std::vector<NewElement> base_lids;
  ASSERT_OK(bbox.BulkLoad(base, &base_lids));
  const xml::Document subtree = xml::MakeRandomDocument(600, 5, 31);
  std::vector<NewElement> sub_lids;
  ASSERT_OK(
      bbox.InsertSubtreeBefore(base_lids[200].end, subtree, &sub_lids));
  ASSERT_OK(bbox.CheckInvariants());
  EXPECT_EQ(bbox.live_labels(), base.tag_count() + subtree.tag_count());
  std::vector<Lid> order{base_lids[200].start};
  const std::vector<Lid> sub_order = TagOrderLids(subtree, sub_lids);
  order.insert(order.end(), sub_order.begin(), sub_order.end());
  order.push_back(base_lids[200].end);
  order.push_back(base_lids[201].start);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&bbox, order));
}

TEST(BBoxTest, SubtreeInsertAtLeafFrontBoundary) {
  TestDb db(/*page_size=*/512);
  BBox bbox(&db.cache);
  const xml::Document base = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> base_lids;
  ASSERT_OK(bbox.BulkLoad(base, &base_lids));
  // Insert before the very first tag of a leaf-aligned position: element 0's
  // start is the first record overall.
  const xml::Document subtree = xml::MakeBalancedDocument(200, 4);
  std::vector<NewElement> sub_lids;
  ASSERT_OK(bbox.InsertSubtreeBefore(base_lids[1].start, subtree, &sub_lids));
  ASSERT_OK(bbox.CheckInvariants());
  std::vector<Lid> order{base_lids[0].start};
  const std::vector<Lid> sub_order = TagOrderLids(subtree, sub_lids);
  order.insert(order.end(), sub_order.begin(), sub_order.end());
  order.push_back(base_lids[1].start);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&bbox, order));
}

TEST(BBoxTest, SubtreeDeleteRemovesRange) {
  TestDb db(/*page_size=*/512);
  BBox bbox(&db.cache);
  const xml::Document base = xml::MakeTwoLevelDocument(600);
  std::vector<NewElement> base_lids;
  ASSERT_OK(bbox.BulkLoad(base, &base_lids));
  const xml::Document subtree = xml::MakeRandomDocument(700, 5, 37);
  std::vector<NewElement> sub_lids;
  ASSERT_OK(
      bbox.InsertSubtreeBefore(base_lids[300].end, subtree, &sub_lids));
  ASSERT_OK(bbox.DeleteSubtree(sub_lids[subtree.root()].start,
                               sub_lids[subtree.root()].end));
  ASSERT_OK(bbox.CheckInvariants());
  EXPECT_EQ(bbox.live_labels(), base.tag_count());
  EXPECT_FALSE(bbox.Lookup(sub_lids[subtree.root()].start).ok());
  EXPECT_TRUE(LabelsStrictlyIncreasing(
      &bbox, {base_lids[299].end, base_lids[300].start, base_lids[300].end,
              base_lids[301].start}));
}

TEST(BBoxTest, SubtreeDeleteWithinOneLeaf) {
  TestDb db;
  BBox bbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, bbox.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const NewElement a, bbox.InsertElementBefore(root.end));
  ASSERT_OK_AND_ASSIGN(const NewElement b, bbox.InsertElementBefore(root.end));
  ASSERT_OK_AND_ASSIGN(const NewElement c, bbox.InsertElementBefore(b.end));
  // Delete b (with child c).
  ASSERT_OK(bbox.DeleteSubtree(b.start, b.end));
  ASSERT_OK(bbox.CheckInvariants());
  EXPECT_FALSE(bbox.Lookup(c.start).ok());
  EXPECT_TRUE(LabelsStrictlyIncreasing(
      &bbox, {root.start, a.start, a.end, root.end}));
}

TEST(BBoxTest, GetStatsReportsSaneValues) {
  TestDb db;
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(3000);
  ASSERT_OK(bbox.BulkLoad(doc, nullptr));
  ASSERT_OK_AND_ASSIGN(const SchemeStats stats, bbox.GetStats());
  EXPECT_EQ(stats.height, bbox.height());
  EXPECT_EQ(stats.live_labels, doc.tag_count());
  EXPECT_GT(stats.index_pages, 0u);
  EXPECT_GT(stats.max_label_bits, 0u);
}

TEST(BBoxTest, ErrorsOnEmptyStructure) {
  TestDb db;
  BBox bbox(&db.cache);
  EXPECT_EQ(bbox.InsertElementBefore(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(bbox.Delete(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(bbox.Lookup(0).ok());
  ASSERT_OK(bbox.CheckInvariants());
}

}  // namespace
}  // namespace boxes
