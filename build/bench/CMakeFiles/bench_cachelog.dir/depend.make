# Empty dependencies file for bench_cachelog.
# This may be replaced when dependencies are built.
