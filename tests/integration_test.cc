// Cross-cutting integration tests: scheme-vs-scheme agreement on document
// order, file-backed storage, and end-to-end document workflows.

#include <memory>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/naive/naive.h"
#include "core/ordpath/ordpath.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "model_tree.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xml/xmark.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::ModelTree;
using testing::TagOrderLids;
using testing::TestDb;

std::unique_ptr<LabelingScheme> MakeByName(const std::string& name,
                                           PageCache* cache) {
  if (name == "wbox") {
    return std::make_unique<WBox>(cache);
  }
  if (name == "wbox-o") {
    WBoxOptions options;
    options.pair_mode = true;
    return std::make_unique<WBox>(cache, options);
  }
  if (name == "bbox") {
    return std::make_unique<BBox>(cache);
  }
  if (name == "bbox-o") {
    BBoxOptions options;
    options.ordinal = true;
    return std::make_unique<BBox>(cache, options);
  }
  if (name == "ordpath") {
    return std::make_unique<OrdpathScheme>(cache);
  }
  return std::make_unique<NaiveScheme>(
      cache, NaiveOptions{.gap_bits = 8, .count_bits = 30});
}

/// Drives the SAME logical op sequence against every scheme and requires
/// them all to induce the same document order.
TEST(CrossSchemeTest, AllSchemesAgreeOnDocumentOrder) {
  const std::vector<std::string> names = {"wbox",   "wbox-o", "bbox",
                                          "bbox-o", "naive",  "ordpath"};
  std::vector<std::unique_ptr<TestDb>> dbs;
  std::vector<std::unique_ptr<LabelingScheme>> schemes;
  std::vector<ModelTree> models;
  for (const std::string& name : names) {
    dbs.push_back(std::make_unique<TestDb>(size_t{1024}));
    schemes.push_back(MakeByName(name, &dbs.back()->cache));
    ModelTree model;
    ASSERT_OK_AND_ASSIGN(const NewElement root,
                         schemes.back()->InsertFirstElement());
    model.SetRoot(root);
    models.push_back(std::move(model));
  }

  // One RNG drives the logical choices; each scheme applies them through
  // its own model (LIDs differ, structure must not).
  Random decider(404);
  for (int step = 0; step < 400; ++step) {
    const uint64_t dice = decider.Uniform(100);
    const uint64_t pick = decider.Next();
    const bool before_start = decider.Bernoulli(0.5);
    for (size_t s = 0; s < schemes.size(); ++s) {
      ModelTree& model = models[s];
      if (dice < 60 || model.element_count() <= 1) {
        // Insert relative to the logically-same element in every model.
        Random local(pick);
        const int target = model.RandomElement(&local, false);
        const bool at_start = before_start && target != 0;
        const Lid anchor = at_start ? model.node(target).lids.start
                                    : model.node(target).lids.end;
        ASSERT_OK_AND_ASSIGN(const NewElement e,
                             schemes[s]->InsertElementBefore(anchor));
        if (at_start) {
          model.InsertBeforeStart(target, e);
        } else {
          model.InsertAsLastChild(target, e);
        }
      } else {
        Random local(pick);
        const int target = model.RandomElement(&local, true);
        ASSERT_OK(schemes[s]->Delete(model.node(target).lids.start));
        ASSERT_OK(schemes[s]->Delete(model.node(target).lids.end));
        model.DeleteElement(target);
      }
    }
  }

  // Every scheme sees the same strictly increasing tag order...
  for (size_t s = 0; s < schemes.size(); ++s) {
    ASSERT_TRUE(
        LabelsStrictlyIncreasing(schemes[s].get(), models[s].TagOrder()))
        << names[s];
  }
  // ... and Compare() agrees across schemes on sampled tag pairs (the
  // models are structurally identical, so position i means the same tag).
  const std::vector<Lid> order0 = models[0].TagOrder();
  Random sampler(7);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t i = sampler.Uniform(order0.size());
    const size_t j = sampler.Uniform(order0.size());
    for (size_t s = 0; s < schemes.size(); ++s) {
      const std::vector<Lid> order = models[s].TagOrder();
      ASSERT_OK_AND_ASSIGN(const int cmp,
                           schemes[s]->Compare(order[i], order[j]));
      const int expected = i < j ? -1 : (i > j ? 1 : 0);
      ASSERT_EQ(cmp < 0 ? -1 : (cmp > 0 ? 1 : 0), expected)
          << names[s] << " positions " << i << "," << j;
    }
  }
}

TEST(FileBackedTest, WBoxWorksOnDisk) {
  const std::string path = ::testing::TempDir() + "/boxes_wbox.db";
  FilePageStore store(path, 1024);
  ASSERT_OK(store.status());
  PageCache cache(&store);
  WBox wbox(&cache);
  const xml::Document doc = xml::MakeRandomDocument(2000, 6, 5);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  // Mutate a bit, flushing through to the file.
  for (int i = 0; i < 200; ++i) {
    IoScope scope(&cache);
    ASSERT_OK(wbox.InsertElementBefore(lids[(i * 31) % lids.size()].start)
                  .status());
  }
  ASSERT_OK(cache.FlushAll());
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_TRUE(LabelsStrictlyIncreasing(&wbox, TagOrderLids(doc, lids)));
  EXPECT_GT(store.total_pages(), 0u);
}

TEST(FileBackedTest, BBoxWorksOnDisk) {
  const std::string path = ::testing::TempDir() + "/boxes_bbox.db";
  FilePageStore store(path, 1024);
  ASSERT_OK(store.status());
  PageCache cache(&store);
  BBox bbox(&cache);
  const xml::Document doc = xml::MakeXmarkDocument(3000, 3);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  for (int i = 0; i < 200; ++i) {
    IoScope scope(&cache);
    ASSERT_OK(
        bbox.InsertElementBefore(lids[(i * 17) % lids.size()].end).status());
  }
  ASSERT_OK(cache.FlushAll());
  ASSERT_OK(bbox.CheckInvariants());
  EXPECT_TRUE(LabelsStrictlyIncreasing(&bbox, TagOrderLids(doc, lids)));
}

/// A parsed real-ish document round-trips through label maintenance: parse,
/// load, edit, and verify that ancestor relations derived from labels match
/// the tree at every step.
TEST(EndToEndTest, ParsedDocumentAncestorQueries) {
  const xml::Document generated = xml::MakeXmarkDocument(2000, 11);
  const std::string text = xml::WriteDocument(generated, true);
  ASSERT_OK_AND_ASSIGN(const xml::Document doc, xml::ParseDocument(text));
  ASSERT_EQ(doc.element_count(), generated.element_count());

  TestDb db;
  WBoxOptions options;
  options.pair_mode = true;
  WBox wbox(&db.cache, options);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));

  Random rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    const xml::ElementId a = rng.Uniform(doc.element_count());
    const xml::ElementId b = rng.Uniform(doc.element_count());
    ASSERT_OK_AND_ASSIGN(const ElementLabels la,
                         wbox.LookupElement(lids[a].start, lids[a].end));
    ASSERT_OK_AND_ASSIGN(const ElementLabels lb,
                         wbox.LookupElement(lids[b].start, lids[b].end));
    // Ground truth by parent walking.
    bool expected = false;
    for (xml::ElementId up = doc.element(b).parent;
         up != xml::kInvalidElement; up = doc.element(up).parent) {
      if (up == a) {
        expected = true;
        break;
      }
    }
    EXPECT_EQ(IsAncestor(la, lb), expected) << a << " vs " << b;
  }
}

}  // namespace
}  // namespace boxes
