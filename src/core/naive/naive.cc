#include "core/naive/naive.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/metadata_io.h"
#include "util/coding.h"

namespace boxes {

namespace {

/// Upper bound on value_limbs_ so records fit stack buffers; allows labels
/// of up to 8*64 = 512 bits (gap_bits up to ~460).
constexpr size_t kMaxValueLimbs = 8;

size_t ValueLimbs(const NaiveOptions& options) {
  // Values stay at or below (live + 1) << gap_bits; one extra bit of slack.
  const uint32_t bits = options.gap_bits + options.count_bits + 1;
  return (bits + 63) / 64;
}

}  // namespace

NaiveScheme::NaiveScheme(PageCache* cache, NaiveOptions options)
    : cache_(cache),
      options_(options),
      value_limbs_(ValueLimbs(options)),
      lidf_(cache, /*payload_size=*/2 * ValueLimbs(options) * 8) {
  BOXES_CHECK(options_.gap_bits >= 1);
  BOXES_CHECK(value_limbs_ <= kMaxValueLimbs);
}

NaiveScheme::~NaiveScheme() = default;

StatusOr<NaiveScheme::Record> NaiveScheme::ReadRecord(Lid lid) const {
  uint8_t payload[2 * kMaxValueLimbs * 8];
  BOXES_RETURN_IF_ERROR(lidf_.Read(lid, payload));
  Record record;
  record.value = BigUint::Deserialize(payload, value_limbs_);
  record.gap = BigUint::Deserialize(payload + value_limbs_ * 8, value_limbs_);
  return record;
}

Status NaiveScheme::WriteRecord(Lid lid, const Record& record) {
  uint8_t payload[2 * kMaxValueLimbs * 8];
  record.value.Serialize(payload, value_limbs_);
  record.gap.Serialize(payload + value_limbs_ * 8, value_limbs_);
  return lidf_.Write(lid, payload);
}

StatusOr<Label> NaiveScheme::Lookup(Lid lid) {
  ScopedTimer timer(metrics_, name() + ".lookup.us");
  ScopedPhase io_phase(cache_, IoPhase::kSearch);
  BOXES_ASSIGN_OR_RETURN(const Record record, ReadRecord(lid));
  return Label::FromBigUint(record.value, value_limbs_);
}

Status NaiveScheme::InsertBefore(Lid lid_new, Lid lid_old) {
  BOXES_ASSIGN_OR_RETURN(Record old_record, ReadRecord(lid_old));
  if (old_record.gap < BigUint(2)) {
    // The gap is exhausted: relabel the world (the adversarial case).
    BOXES_RETURN_IF_ERROR(RelabelAll());
    BOXES_ASSIGN_OR_RETURN(old_record, ReadRecord(lid_old));
    BOXES_CHECK(!(old_record.gap < BigUint(2)));
  }
  // Midpoint split: new = old - floor(gap/2); the new record's gap is
  // ceil(gap/2) and the old record keeps floor(gap/2).
  const BigUint half = old_record.gap.Half();
  Record fresh;
  fresh.value = old_record.value.Sub(half);
  fresh.gap = old_record.gap.Sub(half);
  old_record.gap = half;
  BOXES_RETURN_IF_ERROR(WriteRecord(lid_new, fresh));
  return WriteRecord(lid_old, old_record);
}

StatusOr<NewElement> NaiveScheme::InsertElementBefore(Lid lid) {
  if (lidf_.live_records() == 0) {
    return Status::FailedPrecondition("naive scheme is empty");
  }
  ScopedTimer timer(metrics_, name() + ".insert.us");
  BOXES_ASSIGN_OR_RETURN(const auto lids, lidf_.AllocatePair());
  BOXES_RETURN_IF_ERROR(InsertBefore(lids.second, lid));
  BOXES_RETURN_IF_ERROR(InsertBefore(lids.first, lids.second));
  return NewElement{lids.first, lids.second};
}

StatusOr<NewElement> NaiveScheme::InsertFirstElement() {
  if (lidf_.live_records() != 0) {
    return Status::FailedPrecondition("naive scheme is not empty");
  }
  BOXES_ASSIGN_OR_RETURN(const auto lids, lidf_.AllocatePair());
  const BigUint gap = BigUint::PowerOfTwo(options_.gap_bits);
  Record start{gap, gap};
  Record end{gap.MulU64(2), gap};
  BOXES_RETURN_IF_ERROR(WriteRecord(lids.first, start));
  BOXES_RETURN_IF_ERROR(WriteRecord(lids.second, end));
  max_value_ = end.value;
  return NewElement{lids.first, lids.second};
}

Status NaiveScheme::Delete(Lid lid) {
  ScopedTimer timer(metrics_, name() + ".delete.us");
  // Freeing the record leaves the successor's stored gap conservatively
  // small; labels never change on deletion.
  return lidf_.Free(lid);
}

Status NaiveScheme::BulkLoad(const xml::Document& doc,
                             std::vector<NewElement>* lids_out) {
  if (lidf_.live_records() != 0) {
    return Status::FailedPrecondition(
        "BulkLoad requires an empty naive scheme");
  }
  ScopedPhase io_phase(cache_, IoPhase::kBulkLoad);
  std::vector<NewElement> lids(doc.element_count());
  const BigUint gap = BigUint::PowerOfTwo(options_.gap_bits);
  uint64_t position = 0;
  Status status = Status::OK();
  doc.ForEachTag([&](xml::ElementId id, bool is_start) {
    if (!status.ok()) {
      return;
    }
    Lid lid;
    if (is_start) {
      StatusOr<std::pair<Lid, Lid>> pair = lidf_.AllocatePair();
      if (!pair.ok()) {
        status = pair.status();
        return;
      }
      lids[id] = NewElement{pair->first, pair->second};
      lid = pair->first;
    } else {
      lid = lids[id].end;
    }
    ++position;
    Record record{gap.MulU64(position), gap};
    status = WriteRecord(lid, record);
  });
  BOXES_RETURN_IF_ERROR(status);
  max_value_ = gap.MulU64(position);
  if (lids_out != nullptr) {
    *lids_out = std::move(lids);
  }
  return Status::OK();
}

Status NaiveScheme::ReplayBatch(std::vector<BatchOp>* ops,
                                BatchStats* stats) {
  // Count the labels headed for the gap before each anchor: an element
  // insert contributes its start and end, a subtree insert two labels per
  // element. `m` labels nesting into one gap can split it up to `m` times,
  // so gap >= 2^m guarantees the batch cannot exhaust it.
  std::unordered_map<Lid, uint64_t> incoming;
  for (const BatchOp& op : *ops) {
    if (op.kind == BatchOp::Kind::kInsertElementBefore) {
      incoming[op.anchor] += 2;
    } else if (op.kind == BatchOp::Kind::kInsertSubtreeBefore &&
               op.subtree != nullptr) {
      incoming[op.anchor] += 2 * op.subtree->element_count();
    }
  }
  uint64_t exhausted_anchors = 0;
  for (const auto& [anchor, count] : incoming) {
    if (!lidf_.IsLive(anchor)) {
      continue;  // bad anchors surface their error when the op applies
    }
    StatusOr<Record> record = ReadRecord(anchor);
    if (!record.ok()) {
      continue;
    }
    // Anchors needing more nesting depth than a fresh 2^k gap offers are
    // treated as exhausted too: relabeling up front still buys the
    // longest possible runway before the unavoidable mid-batch pass.
    const uint32_t shift = static_cast<uint32_t>(
        std::min<uint64_t>(count, options_.gap_bits));
    if (record->gap < BigUint::PowerOfTwo(shift)) {
      ++exhausted_anchors;
    }
  }
  if (exhausted_anchors > 0) {
    // One preemptive full-file pass replaces up to `exhausted_anchors`
    // op-triggered passes — the batch pipeline's relabel coalescing.
    BOXES_RETURN_IF_ERROR(RelabelAll());
    if (stats != nullptr) {
      stats->coalesced_relabels += exhausted_anchors;
    }
  }
  return LabelingScheme::ReplayBatch(ops, stats);
}

uint64_t NaiveScheme::BatchLocalityKey(const BatchOp& op) {
  const StatusOr<PageId> page = lidf_.PageOf(op.anchor);
  return page.ok() ? *page : 0;
}

Status NaiveScheme::RelabelAll() {
  ScopedPhase io_phase(cache_, IoPhase::kRelabel);
  ScopedTimer timer(metrics_, name() + ".relabel_all.us");
  // Pass 1: read every live record (the whole file) and sort by value in
  // memory (the paper grants the naive scheme free in-memory sorting).
  // Fixed-width limb keys avoid per-record allocations: relabeling is the
  // hot path of the adversarial experiments.
  uint64_t live = 0;
  Lid max_lid = 0;
  std::vector<uint64_t> rank_of;  // fresh value = rank_of[lid] << gap_bits
  if (value_limbs_ == 1) {
    // Fast path for word-sized values (small k): plain pair sort.
    std::vector<std::pair<uint64_t, Lid>> keys;
    keys.reserve(lidf_.live_records());
    BOXES_RETURN_IF_ERROR(
        lidf_.ForEachLive([&](Lid lid, const uint8_t* payload) {
          keys.push_back({DecodeFixed64(payload), lid});
          max_lid = std::max(max_lid, lid);
          return Status::OK();
        }));
    std::sort(keys.begin(), keys.end());
    rank_of.assign(max_lid + 1, 0);
    for (size_t i = 0; i < keys.size(); ++i) {
      rank_of[keys[i].second] = i + 1;
    }
    live = keys.size();
  } else {
    struct Key {
      std::array<uint64_t, kMaxValueLimbs> limbs;  // little-endian
      Lid lid;
    };
    std::vector<Key> keys;
    keys.reserve(lidf_.live_records());
    BOXES_RETURN_IF_ERROR(
        lidf_.ForEachLive([&](Lid lid, const uint8_t* payload) {
          Key key;
          key.limbs.fill(0);
          for (size_t i = 0; i < value_limbs_; ++i) {
            key.limbs[i] = DecodeFixed64(payload + i * 8);
          }
          key.lid = lid;
          keys.push_back(key);
          max_lid = std::max(max_lid, lid);
          return Status::OK();
        }));
    std::sort(keys.begin(), keys.end(), [this](const Key& a, const Key& b) {
      for (size_t i = value_limbs_; i-- > 0;) {
        if (a.limbs[i] != b.limbs[i]) {
          return a.limbs[i] < b.limbs[i];
        }
      }
      return false;
    });
    rank_of.assign(max_lid + 1, 0);
    for (size_t i = 0; i < keys.size(); ++i) {
      rank_of[keys[i].lid] = i + 1;
    }
    live = keys.size();
  }
  // Pass 2: rewrite every record as (rank << k, 2^k), one page access per
  // LIDF page.
  const uint32_t limb_index = options_.gap_bits / 64;
  const uint32_t bit_shift = options_.gap_bits % 64;
  const size_t record_bytes = lidf_.payload_size();
  BOXES_RETURN_IF_ERROR(
      lidf_.ForEachLiveMutable([&](Lid lid, uint8_t* payload) {
        std::memset(payload, 0, record_bytes);
        const uint64_t rank = rank_of[lid];
        if (bit_shift == 0) {
          EncodeFixed64(payload + limb_index * 8, rank);
        } else {
          EncodeFixed64(payload + limb_index * 8, rank << bit_shift);
          if (limb_index + 1 < value_limbs_) {
            EncodeFixed64(payload + (limb_index + 1) * 8,
                          rank >> (64 - bit_shift));
          }
        }
        uint8_t* gap_bytes = payload + value_limbs_ * 8;
        EncodeFixed64(gap_bytes + limb_index * 8,
                      bit_shift == 0 ? 1 : uint64_t{1} << bit_shift);
        return Status::OK();
      }));
  max_value_ = BigUint(live).ShiftLeft(options_.gap_bits);
  ++relabel_count_;
  if (listener_ != nullptr) {
    // Every label changed; nothing succinct describes the effect.
    listener_->OnInvalidateRange(
        Label::FromBigUint(BigUint(0), value_limbs_),
        Label::FromBigUint(BigUint::PowerOfTwo(
                               static_cast<uint32_t>(value_limbs_ * 64 - 1)),
                           value_limbs_));
  }
  return Status::OK();
}

namespace {
constexpr uint64_t kNaiveCheckpointMagic = 0x315649414eULL;  // "NAIV1"
}  // namespace

StatusOr<PageId> NaiveScheme::Checkpoint() {
  MetadataWriter writer;
  writer.PutU64(kNaiveCheckpointMagic);
  writer.PutU32(options_.gap_bits);
  writer.PutU32(options_.count_bits);
  writer.PutU64(cache_->page_size());
  writer.PutU64(relabel_count_);
  std::vector<uint8_t> max_value(value_limbs_ * 8);
  max_value_.Serialize(max_value.data(), value_limbs_);
  writer.PutBytes(max_value.data(), max_value.size());
  lidf_.SaveState(&writer);
  // Durability is the commit's job: CommitCheckpoint flushes and syncs the
  // chain (with every dirty data page) before flipping the superblock, so
  // syncing here too would just double the fdatasync bill per checkpoint.
  return writer.Finish(cache_);
}

Status NaiveScheme::Restore(PageId checkpoint_head) {
  if (lidf_.live_records() != 0) {
    return Status::FailedPrecondition(
        "Restore requires an empty naive scheme");
  }
  BOXES_ASSIGN_OR_RETURN(MetadataReader reader,
                         MetadataReader::Load(cache_, checkpoint_head));
  BOXES_ASSIGN_OR_RETURN(const uint64_t magic, reader.GetU64());
  if (magic != kNaiveCheckpointMagic) {
    return Status::Corruption("not a naive-k checkpoint");
  }
  BOXES_ASSIGN_OR_RETURN(const uint32_t gap_bits, reader.GetU32());
  BOXES_ASSIGN_OR_RETURN(const uint32_t count_bits, reader.GetU32());
  BOXES_ASSIGN_OR_RETURN(const uint64_t page_size, reader.GetU64());
  if (gap_bits != options_.gap_bits || count_bits != options_.count_bits ||
      page_size != cache_->page_size()) {
    return Status::InvalidArgument(
        "checkpoint options do not match this naive scheme");
  }
  BOXES_ASSIGN_OR_RETURN(relabel_count_, reader.GetU64());
  std::vector<uint8_t> max_value(value_limbs_ * 8);
  BOXES_RETURN_IF_ERROR(reader.GetBytes(max_value.data(), max_value.size()));
  max_value_ = BigUint::Deserialize(max_value.data(), value_limbs_);
  return lidf_.LoadState(&reader);
}

StatusOr<SchemeStats> NaiveScheme::GetStats() {
  SchemeStats stats;
  stats.height = 0;
  stats.index_pages = 0;  // the LIDF is the whole structure
  stats.lidf_pages = lidf_.page_count();
  stats.live_labels = lidf_.live_records();
  stats.max_label_bits = max_value_.BitLength();
  return stats;
}

Status NaiveScheme::CheckInvariants() {
  // Values must be positive, distinct, and each gap must not exceed the
  // distance to the previous live value (gaps may under-report after
  // deletions, never over-report).
  std::vector<std::pair<BigUint, BigUint>> records;  // (value, gap)
  BOXES_RETURN_IF_ERROR(
      lidf_.ForEachLive([&](Lid lid, const uint8_t* payload) {
        (void)lid;
        records.push_back(
            {BigUint::Deserialize(payload, value_limbs_),
             BigUint::Deserialize(payload + value_limbs_ * 8, value_limbs_)});
        return Status::OK();
      }));
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  BigUint prev(0);
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].first.IsZero()) {
      return Status::Corruption("naive label value is zero");
    }
    if (i > 0 && records[i].first == records[i - 1].first) {
      return Status::Corruption("duplicate naive label value");
    }
    const BigUint distance = records[i].first.Sub(prev);
    if (distance < records[i].second) {
      return Status::Corruption("naive gap exceeds distance to predecessor");
    }
    prev = records[i].first;
  }
  return Status::OK();
}

}  // namespace boxes
