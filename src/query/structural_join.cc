#include "query/structural_join.h"

#include <algorithm>

namespace boxes::query {

void SortByStart(std::vector<Interval>* intervals) {
  std::sort(intervals->begin(), intervals->end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
}

StatusOr<std::vector<Interval>> CollectIntervals(
    LabelingScheme* scheme, const xml::Document& doc,
    const std::vector<NewElement>& lids, const std::string& tag) {
  std::vector<Interval> out;
  for (xml::ElementId id = 0; id < doc.element_count(); ++id) {
    if (doc.element(id).tag != tag) {
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(
        ElementLabels labels,
        scheme->LookupElement(lids[id].start, lids[id].end));
    out.push_back(
        {id, std::move(labels.start), std::move(labels.end)});
  }
  SortByStart(&out);
  return out;
}

void StructuralJoin(
    const std::vector<Interval>& ancestors,
    const std::vector<Interval>& descendants,
    const std::function<void(const Interval&, const Interval&)>& emit) {
  // Classic stack-based merge: sweep both inputs in document order; the
  // stack holds the chain of ancestors currently "open" around the sweep
  // position (their intervals are nested, so popping on end < position is
  // safe).
  std::vector<const Interval*> stack;
  size_t ai = 0;
  for (const Interval& d : descendants) {
    while (ai < ancestors.size() && ancestors[ai].start < d.start) {
      // Opening a new ancestor closes any stacked ones that ended first.
      while (!stack.empty() && stack.back()->end < ancestors[ai].start) {
        stack.pop_back();
      }
      stack.push_back(&ancestors[ai]);
      ++ai;
    }
    while (!stack.empty() && stack.back()->end < d.start) {
      stack.pop_back();
    }
    // Every remaining stacked ancestor whose interval covers d matches;
    // the stack is nested, so the matches are a suffix.
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i]->start < d.start && d.end < stack[i]->end) {
        emit(*stack[i], d);
      } else {
        break;
      }
    }
  }
}

uint64_t CountStructuralJoin(const std::vector<Interval>& ancestors,
                             const std::vector<Interval>& descendants) {
  uint64_t count = 0;
  StructuralJoin(ancestors, descendants,
                 [&](const Interval&, const Interval&) { ++count; });
  return count;
}

}  // namespace boxes::query
