// Reproduces the "Query performance" discussion of §7: lookup costs per
// scheme after building a document, with and without cross-operation
// caching (the paper notes the root tends to stay cached).
//
// Paper observations to match: W-BOX looks a label up in 2 I/Os flat (LIDF
// + leaf); W-BOX-O fetches a start/end pair in 2 I/Os total; B-BOX and
// B-BOX-O pay 1 + height (3-4 at realistic sizes); naive-k pays the 1
// unavoidable LIDF I/O.

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "workload/sequences.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 50000, "document elements");
  int64_t* lookups = flags.AddInt64("lookups", 2000, "measured lookups");
  std::string* schemes = flags.AddString(
      "schemes", "wbox,wbox-o,bbox,bbox-o,naive-16",
      "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 8000);
  SmokeCap(smoke, lookups, 500);

  const xml::Document doc =
      xml::MakeRandomDocument(static_cast<uint64_t>(*elements), 8, 7);
  std::printf(
      "TAB-Q: query performance (avg block I/Os per lookup), document of\n"
      "%lld elements (paper: heights were 2-3; W-BOX lookup = 2 I/Os flat,\n"
      "B-BOX = 3-4, W-BOX-O pair = 2, naive = 1)\n\n",
      static_cast<long long>(*elements));
  std::printf("%-12s %7s %12s %12s %14s\n", "scheme", "height",
              "single I/Os", "pair I/Os", "single cached");

  for (const std::string& name : SplitSchemes(*schemes)) {
    SchemeUnderTest unit(static_cast<size_t>(*page_size));
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    std::vector<NewElement> lids;
    CheckOkOrDie(workload::UnmeasuredOp(
                     unit.cache.get(),
                     [&] { return unit.scheme->BulkLoad(doc, &lids); }),
                 "BulkLoad");
    StatusOr<SchemeStats> scheme_stats = unit.scheme->GetStats();
    CheckOkOrDie(scheme_stats.status(), "GetStats");

    workload::RunStats single;
    CheckOkOrDie(workload::MeasureLookups(unit.scheme.get(),
                                          unit.cache.get(), lids,
                                          static_cast<uint64_t>(*lookups),
                                          /*pairs=*/false, 1, &single),
                 "single lookups");
    workload::RunStats pair;
    CheckOkOrDie(workload::MeasureLookups(unit.scheme.get(),
                                          unit.cache.get(), lids,
                                          static_cast<uint64_t>(*lookups),
                                          /*pairs=*/true, 2, &pair),
                 "pair lookups");

    // The same single-label workload with pages retained across operations
    // (LRU, 64 frames): upper levels of the trees stay resident.
    SchemeUnderTest cached_unit(static_cast<size_t>(*page_size));
    PageCacheOptions cache_options;
    cache_options.retain_across_ops = true;
    cache_options.capacity_pages = 64;
    cached_unit.cache = std::make_unique<PageCache>(
        cached_unit.store.get(), cache_options);
    CheckOkOrDie(MakeScheme(name, &cached_unit), "MakeScheme");
    std::vector<NewElement> cached_lids;
    CheckOkOrDie(
        workload::UnmeasuredOp(
            cached_unit.cache.get(),
            [&] { return cached_unit.scheme->BulkLoad(doc, &cached_lids); }),
        "BulkLoad");
    workload::RunStats cached;
    CheckOkOrDie(
        workload::MeasureLookups(cached_unit.scheme.get(),
                                 cached_unit.cache.get(), cached_lids,
                                 static_cast<uint64_t>(*lookups),
                                 /*pairs=*/false, 3, &cached),
        "cached lookups");

    std::printf("%-12s %7llu %12.2f %12.2f %14.2f\n", name.c_str(),
                static_cast<unsigned long long>(scheme_stats->height),
                single.MeanCost(), pair.MeanCost(), cached.MeanCost());
  }
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
