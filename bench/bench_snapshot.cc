// Silo vs live serving (DESIGN.md §4l): compiles a loaded W-BOX into an
// immutable mmap-able snapshot image and compares lookup cost against the
// live structure under the paper's main experimental setting (working set
// dropped per operation). Reported: latency and block reads per lookup for
// the live path, the silo path (which must be zero-I/O), and the silo
// under delta pressure (a fraction of lookups route to the authority),
// plus the cost of a Recompile() and its amortization over the absorbed
// updates. Exits nonzero if the silo path fails its contract (any page
// reads, or slower than live lookups) so CI can gate on it.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/common/overlay.h"
#include "util/flags.h"
#include "util/random.h"
#include "workload/runner.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

double NsPerOp(std::chrono::steady_clock::duration elapsed, int64_t ops) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(ops);
}

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 100000, "document elements");
  int64_t* lookups = flags.AddInt64("lookups", 200000, "lookups per phase");
  int64_t* updates =
      flags.AddInt64("updates", 2000, "inserts absorbed by the overlay");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  std::string* metrics_json =
      flags.AddString("metrics_json", "", "write metrics JSON here");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 10000);
  SmokeCap(smoke, lookups, 20000);
  SmokeCap(smoke, updates, 400);

  SchemeUnderTest unit(static_cast<size_t>(*page_size));
  CheckOkOrDie(MakeScheme("wbox", &unit), "MakeScheme");
  OverlayOptions options;
  options.snapshot_path = "/tmp/boxes_bench_snapshot_" +
                          std::to_string(::getpid()) + ".silo";
  OverlayedScheme overlay(unit.scheme.get(), options);
  overlay.SetMetrics(&GlobalMetrics());

  const xml::Document doc =
      xml::MakeTwoLevelDocument(static_cast<uint64_t>(*elements));
  std::vector<NewElement> lids;
  CheckOkOrDie(workload::UnmeasuredOp(unit.cache.get(),
                                      [&] { return overlay.BulkLoad(doc, &lids); }),
               "BulkLoad");
  std::printf("SNAPSHOT: %lld elements, %lld lookups/phase, %lld updates\n\n",
              static_cast<long long>(*elements),
              static_cast<long long>(*lookups),
              static_cast<long long>(*updates));
  std::printf("%-22s %12s %14s %22s\n", "phase", "ns/lookup", "reads/lookup",
              "serve mix (base/live)");

  Random rng(42);
  const auto probe = [&]() -> Lid {
    const NewElement& element = lids[rng.Uniform(lids.size())];
    return rng.Bernoulli(0.5) ? element.start : element.end;
  };

  // Live W-BOX lookups, each bracketed as one logical operation (the
  // paper's setting: nothing survives across operations).
  workload::RunStats live_stats;
  const auto live_begin = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < *lookups; ++i) {
    CheckOkOrDie(workload::MeasureOp(
                     unit.cache.get(),
                     [&] { return unit.scheme->Lookup(probe()).status(); },
                     &live_stats),
                 "live lookup");
  }
  const double live_ns = NsPerOp(std::chrono::steady_clock::now() - live_begin,
                                 *lookups);
  std::printf("%-22s %12.0f %14.2f %22s\n", "live wbox", live_ns,
              live_stats.MeanCost(), "-");

  // Compile + silo lookups: no deltas yet, so every lookup must be served
  // from the mmap image with zero PageCache traffic.
  const auto compile_begin = std::chrono::steady_clock::now();
  CheckOkOrDie(overlay.Recompile(), "Recompile");
  const double first_compile_us =
      NsPerOp(std::chrono::steady_clock::now() - compile_begin, 1) / 1000.0;
  unit.cache->ResetStats();
  const OverlayServeStats before_silo = overlay.serve_stats();
  const auto silo_begin = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < *lookups; ++i) {
    CheckOkOrDie(overlay.Lookup(probe()).status(), "silo lookup");
  }
  const double silo_ns = NsPerOp(std::chrono::steady_clock::now() - silo_begin,
                                 *lookups);
  const uint64_t silo_reads = unit.cache->stats().reads;
  const OverlayServeStats after_silo = overlay.serve_stats();
  const uint64_t silo_base = (after_silo.served_base + after_silo.served_repaired) -
                             (before_silo.served_base + before_silo.served_repaired);
  const uint64_t silo_live =
      (after_silo.served_overlay + after_silo.served_fallback) -
      (before_silo.served_overlay + before_silo.served_fallback);
  std::printf("%-22s %12.0f %14.2f %14llu/%llu\n", "silo (no deltas)",
              silo_ns,
              static_cast<double>(silo_reads) / static_cast<double>(*lookups),
              static_cast<unsigned long long>(silo_base),
              static_cast<unsigned long long>(silo_live));

  // Delta pressure: absorb updates, then look up again — delta-map hits
  // route to the authority, everything else stays on the image.
  std::vector<NewElement> fresh;
  fresh.reserve(static_cast<size_t>(*updates));
  for (int64_t i = 0; i < *updates; ++i) {
    CheckOkOrDie(
        workload::UnmeasuredOp(
            unit.cache.get(),
            [&] {
              StatusOr<NewElement> inserted = overlay.InsertElementBefore(
                  lids[rng.Uniform(lids.size())].start);
              if (inserted.ok()) {
                fresh.push_back(*inserted);
              }
              return inserted.status();
            }),
        "update");
  }
  unit.cache->ResetStats();
  const OverlayServeStats before_mixed = overlay.serve_stats();
  const auto mixed_begin = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < *lookups; ++i) {
    // 1 in 5 probes targets an element inserted since the compile — those
    // are delta-map hits and must route to the live authority.
    const Lid lid = rng.Bernoulli(0.2)
                        ? fresh[rng.Uniform(fresh.size())].start
                        : probe();
    CheckOkOrDie(overlay.Lookup(lid).status(), "mixed lookup");
  }
  const double mixed_ns = NsPerOp(
      std::chrono::steady_clock::now() - mixed_begin, *lookups);
  const OverlayServeStats after_mixed = overlay.serve_stats();
  std::printf(
      "%-22s %12.0f %14.2f %14llu/%llu\n", "silo (delta pressure)", mixed_ns,
      static_cast<double>(unit.cache->stats().reads) /
          static_cast<double>(*lookups),
      static_cast<unsigned long long>(
          (after_mixed.served_base + after_mixed.served_repaired) -
          (before_mixed.served_base + before_mixed.served_repaired)),
      static_cast<unsigned long long>(
          (after_mixed.served_overlay + after_mixed.served_fallback) -
          (before_mixed.served_overlay + before_mixed.served_fallback)));

  // Recompile cost and amortization over the updates it folds in.
  const auto recompile_begin = std::chrono::steady_clock::now();
  CheckOkOrDie(overlay.Recompile(), "Recompile");
  const double recompile_us =
      NsPerOp(std::chrono::steady_clock::now() - recompile_begin, 1) / 1000.0;
  std::printf(
      "\nfirst compile: %.0f us; recompile after %lld updates: %.0f us "
      "(%.1f us/update amortized)\n",
      first_compile_us, static_cast<long long>(*updates), recompile_us,
      recompile_us / static_cast<double>(*updates));
  std::printf("delta entries after recompile: %zu\n", overlay.delta_size());

  overlay.PublishMetrics();
  FoldPhaseIoIntoGlobalMetrics(unit);
  MaybeWriteMetricsJson(*metrics_json);
  ::unlink(options.snapshot_path.c_str());

  // CI gate: the silo path's whole point is zero-I/O lookups faster than
  // the live structure.
  if (silo_reads != 0) {
    std::fprintf(stderr, "FAIL: silo path performed %llu page reads\n",
                 static_cast<unsigned long long>(silo_reads));
    return 2;
  }
  if (silo_base != static_cast<uint64_t>(*lookups)) {
    std::fprintf(stderr,
                 "FAIL: %llu of %lld delta-free lookups left the image\n",
                 static_cast<unsigned long long>(silo_live),
                 static_cast<long long>(*lookups));
    return 2;
  }
  if (silo_ns >= live_ns) {
    std::fprintf(stderr,
                 "FAIL: silo lookups (%.0f ns) not faster than live (%.0f ns)\n",
                 silo_ns, live_ns);
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
