file(REMOVE_RECURSE
  "CMakeFiles/dbtool.dir/dbtool.cpp.o"
  "CMakeFiles/dbtool.dir/dbtool.cpp.o.d"
  "dbtool"
  "dbtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
