#ifndef BOXES_CORE_COMMON_OVERLAY_H_
#define BOXES_CORE_COMMON_OVERLAY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/cachelog/mod_log.h"
#include "core/common/labeling_scheme.h"
#include "storage/snapshot.h"

namespace boxes {

struct OverlayOptions {
  /// Where Recompile() publishes images (temp file + atomic rename live in
  /// the same directory).
  std::string snapshot_path;
  /// Modification-log window: how many label-changing effects since the
  /// last compile can be repaired onto frozen snapshot labels before the
  /// base goes stale wholesale (every serve falls back to the authority
  /// until the next compile).
  size_t log_capacity = 8192;
  /// Crash-injection hook forwarded to the SnapshotWriter publish path
  /// (see SnapshotWriterOptions::fail_after_file_ops); counts file ops
  /// per Recompile() call.
  uint64_t recompile_fail_after_file_ops = UINT64_MAX;
  /// Publish write granularity, forwarded to SnapshotWriterOptions
  /// (the crash sweep shrinks it to multiply injection points).
  size_t recompile_write_chunk_bytes = 64 * 1024;
};

/// Serve-path accounting: where each lookup was answered from.
struct OverlayServeStats {
  uint64_t lookups = 0;
  /// Served from the mmap image, replay log clean — the zero-I/O path.
  uint64_t served_base = 0;
  /// Served from the image after the replay log repaired shifts onto the
  /// frozen label — still zero PageCache traffic.
  uint64_t served_repaired = 0;
  /// Routed to the live authority because the LID was touched since the
  /// compile (delta map hit: insert or tombstone) or absent from the image.
  uint64_t served_overlay = 0;
  /// Image entry found but unrepairable (invalidated range / log window
  /// overflow): answered by the authority.
  uint64_t served_fallback = 0;
  uint64_t recompiles = 0;
  uint64_t swap_failures = 0;
};

/// The LSM-shaped serving split (DESIGN.md §4l): a frozen mmap-able
/// snapshot image plus the live authority scheme holding everything that
/// changed since the compile.
///
/// OverlayedScheme is itself a LabelingScheme wrapping the (borrowed)
/// authority. All mutations forward to the authority; each records the
/// touched LIDs in a delta map (inserts route future lookups to the live
/// scheme; deletes become tombstones so a dead LID can never be served
/// from the frozen image). The authority's UpdateListener events — the §6
/// cachelog machinery — feed a ModificationLog, so a lookup that misses
/// the delta map can serve the frozen label after replaying any range
/// shifts that occurred since the compile; ranges invalidated beyond
/// repair fall back to the authority.
///
/// Concurrency follows DESIGN.md §4g unchanged, against THIS scheme's
/// EpochGuard: mutations and Recompile()'s swap run under EpochWriteLock,
/// lookups under EpochReadLock (LookupShared does this for callers). The
/// authority's own guard goes unused.
class OverlayedScheme : public LabelingScheme, private UpdateListener {
 public:
  /// `authority` is borrowed and must outlive this instance; its update
  /// listener slot is claimed for the overlay's modification log.
  OverlayedScheme(LabelingScheme* authority, OverlayOptions options);
  ~OverlayedScheme() override;

  // ReadOnlyLabeling:
  std::string name() const override;
  StatusOr<Label> Lookup(Lid lid) override;
  bool SupportsOrdinal() const override;
  StatusOr<uint64_t> OrdinalLookup(Lid lid) override;

  // LabelingScheme (mutations forward to the authority + delta tracking):
  StatusOr<NewElement> InsertElementBefore(Lid lid) override;
  StatusOr<NewElement> InsertFirstElement() override;
  Status Delete(Lid lid) override;
  Status BulkLoad(const xml::Document& doc,
                  std::vector<NewElement>* lids_out) override;
  Status InsertSubtreeBefore(Lid before, const xml::Document& subtree,
                             std::vector<NewElement>* lids_out) override;
  Status DeleteSubtree(Lid root_start, Lid root_end) override;
  Status ApplyBatch(std::vector<BatchOp>* ops, BatchStats* stats) override;
  Status ReplayBatch(std::vector<BatchOp>* ops, BatchStats* stats) override;
  Lidf* lidf() override { return authority_->lidf(); }
  StatusOr<PageId> Checkpoint() override { return authority_->Checkpoint(); }
  Status Restore(PageId checkpoint_head) override;
  StatusOr<SchemeStats> GetStats() override { return authority_->GetStats(); }
  Status CheckInvariants() override { return authority_->CheckInvariants(); }

  /// Compiles the authority's current state into a fresh image, publishes
  /// it durably (temp file, fsync, atomic rename, directory fsync), and
  /// swaps the served reader under an EpochWriteLock. Three phases:
  ///
  ///   A. under a read ticket: record the log clock + delta clock, then
  ///      extract every live (lid, label[, ordinal]) — a consistent cut;
  ///   B. no locks: serialize, write `<path>.tmp`, fsync, rename, fsync
  ///      the directory, then mmap + validate the published image;
  ///   C. under the write lock: swap the reader in and prune delta-map
  ///      entries recorded at or before the cut.
  ///
  /// Concurrent mutations between A and C stay in the delta map (their
  /// delta clock exceeds the cut), so they keep routing to the authority
  /// until the *next* compile folds them in. Must not be called while the
  /// calling thread holds this scheme's read or write lock.
  Status Recompile();

  /// Current serve-path mix. Thread-safe.
  OverlayServeStats serve_stats() const;

  /// Copies serve counters + image gauges into the attached metrics
  /// registry under "snapshot.*" (no-op without SetMetrics).
  void PublishMetrics();

  /// The currently served image, or nullptr before the first Recompile().
  /// Stable only while the caller holds a read ticket.
  const SnapshotReader* reader() const { return reader_.get(); }

  /// LIDs touched since the served compile (routing to the authority).
  size_t delta_size() const { return delta_.size(); }

  LabelingScheme* authority() { return authority_; }

 private:
  // UpdateListener (events emitted by the authority during mutations we
  // forwarded, i.e. under the caller's write lock):
  void OnRangeShift(const Label& lo, const Label& hi, int64_t delta,
                    bool last_component_only) override;
  void OnInvalidateRange(const Label& lo, const Label& hi) override;
  void OnOrdinalShift(uint64_t from, int64_t delta) override;

  /// Records one touched LID at the next delta-clock tick.
  void RecordDelta(Lid lid);
  void RecordDelta(const NewElement& lids);
  /// Declares the delta set unknown (bulk/subtree deletion paths that free
  /// an unenumerated LID set): every lookup routes to the authority until
  /// a compile at or after this point.
  void MarkUnbounded();
  /// Harvests delta records out of a completed batch.
  void HarvestBatch(const std::vector<BatchOp>& ops);

  LabelingScheme* const authority_;  // borrowed
  const OverlayOptions options_;
  ModificationLog log_;

  std::unique_ptr<SnapshotReader> reader_;
  /// Log clock at the served image's extraction cut: Replay(base_ts_, ..)
  /// repairs a frozen label to the present.
  uint64_t base_ts_ = 0;
  /// Monotonic mutation counter; orders delta records against compile cuts
  /// even when a mutation emits no log entries (tombstone deletes).
  uint64_t delta_clock_ = 0;
  /// LID -> delta clock when last touched since the served compile.
  std::unordered_map<Lid, uint64_t> delta_;
  bool unbounded_ = false;
  uint64_t unbounded_clock_ = 0;

  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> served_base_{0};
  std::atomic<uint64_t> served_repaired_{0};
  std::atomic<uint64_t> served_overlay_{0};
  std::atomic<uint64_t> served_fallback_{0};
  std::atomic<uint64_t> recompiles_{0};
  std::atomic<uint64_t> swap_failures_{0};
};

}  // namespace boxes

#endif  // BOXES_CORE_COMMON_OVERLAY_H_
