#ifndef BOXES_UTIL_METRICS_H_
#define BOXES_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>

#include "storage/io_stats.h"
#include "util/histogram.h"
#include "util/status.h"

namespace boxes {

/// Process-wide observability registry: named monotonic counters, named
/// value/latency Histograms, and per-source phase-attributed I/O tables
/// (snapshots of PageCache::phase_stats()).
///
/// Naming convention (see DESIGN.md, "Observability"):
///   * counters:   "<source>.<event>"            e.g. "cachelog.served_fresh"
///   * histograms: "<source>.<op>.<unit>"        e.g. "W-BOX.insert.us",
///                 "fig5.wbox.op_io"
///   * phase I/O:  one table per source, keyed by the scheme/bench name.
///
/// Thread-safe: counters are std::atomic (relaxed increments — exact totals,
/// no ordering guarantees), histograms synchronize internally, and the name
/// maps are guarded by a shared mutex. Concurrent reader threads may record
/// through one registry; ToJson()/Clear() take the exclusive lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// A named counter's storage. Obtained via GetCounter; increment with
  /// fetch_add(delta, std::memory_order_relaxed).
  using Counter = std::atomic<uint64_t>;

  /// Adds `delta` to the named counter, creating it at zero first.
  void IncrementCounter(const std::string& name, uint64_t delta = 1);

  /// Returns a stable handle to the named counter, creating it at zero on
  /// first use. Hot paths resolve their counters ONCE (typically when the
  /// registry is attached) and increment through the handle, skipping the
  /// per-event name hash + shared-lock map lookup IncrementCounter pays —
  /// the registry lock is what shows up under multi-tenant load. Like
  /// GetHistogram pointers, handles stay valid until Clear().
  Counter* GetCounter(const std::string& name);

  /// Current value of a counter; zero if it was never incremented.
  uint64_t CounterValue(const std::string& name) const;

  /// Overwrites the named counter with `value`, creating it on first use.
  /// This is the gauge idiom: a level (replication lag, quarantine size)
  /// rather than an accumulating event count. Gauges share the counter
  /// namespace and JSON section, so exporters treat them uniformly.
  void SetGauge(const std::string& name, uint64_t value);

  /// Returns the named histogram, creating it empty on first use. The
  /// pointer stays valid for the registry's lifetime.
  Histogram* GetHistogram(const std::string& name);

  /// Adds one sample to the named histogram (creating it on first use).
  void RecordValue(const std::string& name, uint64_t value);

  /// Accumulates a per-phase I/O snapshot under `source`. Repeated calls
  /// for the same source add up, so callers may merge deltas or totals of
  /// several runs.
  void MergePhaseIo(const std::string& source, const PhaseIoTable& table);

  /// The accumulated phase table for `source` (all zeros if absent).
  PhaseIoTable PhaseIoFor(const std::string& source) const;

  /// Serializes every counter, histogram summary, and phase table as one
  /// JSON object: {"counters": {...}, "histograms": {...}, "phases":
  /// {"<source>": {"search": {"reads": N, "writes": M}, ...}}}. Every
  /// phase key is present in every table, including zero-valued ones, so
  /// consumers can rely on the schema.
  std::string ToJson() const;

  /// Writes ToJson() to `path` (overwriting), with a trailing newline.
  Status WriteJsonFile(const std::string& path) const;

  void Clear();

 private:
  // std::map keeps node (and therefore value) addresses stable across
  // inserts, so counter atomics and histogram pointers handed out under the
  // shared lock stay valid for the registry's lifetime.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::atomic<uint64_t>> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, PhaseIoTable> phase_io_;
};

/// The process-wide registry used by benches and examples. Library code
/// never touches it implicitly; schemes only record into a registry
/// explicitly attached via LabelingScheme::SetMetrics.
MetricsRegistry& GlobalMetrics();

/// RAII wall-clock timer: on destruction adds the elapsed microseconds to
/// `registry->GetHistogram(name)`. A null registry makes it a no-op, so
/// instrumented code needs no branches at call sites.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {
    if (registry_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedTimer() {
    if (registry_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      registry_->RecordValue(
          name_, static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         elapsed)
                         .count()));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII wall-clock timer over a pre-resolved Histogram handle (see
/// MetricsRegistry::GetHistogram): the hot-path variant of ScopedTimer —
/// no name string is built or resolved per sample. A null histogram makes
/// it a no-op.
class HistogramTimer {
 public:
  explicit HistogramTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~HistogramTimer() {
    if (histogram_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->Add(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count()));
    }
  }

  HistogramTimer(const HistogramTimer&) = delete;
  HistogramTimer& operator=(const HistogramTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace boxes

#endif  // BOXES_UTIL_METRICS_H_
