// Reproduces Figure 6: distribution of per-insertion cost under the
// concentrated insertion sequence (paper §7). For each cost x, prints the
// fraction of element insertions that cost MORE than x block I/Os (a
// complementary CDF; the paper plots it on log-log axes).

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "workload/sequences.h"

namespace boxes::bench {
namespace {

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* base = flags.AddInt64("base", 10000, "base document elements");
  int64_t* inserts =
      flags.AddInt64("inserts", 2500, "elements inserted concentrated");
  std::string* schemes = flags.AddString(
      "schemes", "wbox,wbox-o,bbox,bbox-o,naive-16",
      "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  int64_t* points = flags.AddInt64("points", 24, "CCDF sample points");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, base, 2000);
  SmokeCap(smoke, inserts, 500);

  std::printf(
      "FIG6: distribution of update cost, concentrated insertion sequence\n"
      "base=%lld, inserts=%lld (paper: 2000000 / 500000)\n"
      "columns: cost (I/Os), fraction of insertions with cost > that\n\n",
      static_cast<long long>(*base), static_cast<long long>(*inserts));

  for (const std::string& name : SplitSchemes(*schemes)) {
    SchemeUnderTest unit(static_cast<size_t>(*page_size));
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    workload::RunStats stats;
    CheckOkOrDie(
        workload::RunConcentratedInsertion(unit.scheme.get(),
                                           unit.cache.get(),
                                           static_cast<uint64_t>(*base),
                                           static_cast<uint64_t>(*inserts),
                                           &stats),
        "concentrated run");
    std::printf("# scheme=%s mean=%.2f max=%llu\n", name.c_str(),
                stats.MeanCost(),
                static_cast<unsigned long long>(stats.per_op_cost.max()));
    for (const auto& point :
         stats.per_op_cost.Ccdf(static_cast<size_t>(*points))) {
      if (point.fraction_above > 0.0 || point.cost <= stats.per_op_cost.max()) {
        std::printf("%s %10llu %.6f\n", name.c_str(),
                    static_cast<unsigned long long>(point.cost),
                    point.fraction_above);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 6): BOX curves drop steeply (almost all\n"
      "insertions are cheap; the rare expensive ones are splits/relabels),\n"
      "while naive-k keeps a heavy tail of full-file relabelings.\n");
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
