#ifndef BOXES_UTIL_RANDOM_H_
#define BOXES_UTIL_RANDOM_H_

#include <cstdint>

namespace boxes {

/// Deterministic, fast PRNG (xoshiro256**). Used by generators, workloads,
/// and property tests so that every run is reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Zipf-like skewed value in [0, n): smaller values are more likely.
  /// theta in (0, 1); larger theta = more skew.
  uint64_t Skewed(uint64_t n, double theta);

 private:
  uint64_t state_[4];
};

}  // namespace boxes

#endif  // BOXES_UTIL_RANDOM_H_
