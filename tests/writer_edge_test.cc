// Edge cases of the XML writer, the workload runner, and small utility
// paths not covered elsewhere.

#include <string>

#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/runner.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace boxes {
namespace {

using testing::TestDb;

TEST(WriterEdgeTest, EmptyDocument) {
  xml::Document doc;
  EXPECT_EQ(xml::WriteDocument(doc, true), "");
  EXPECT_EQ(xml::WriteDocument(doc, false), "");
}

TEST(WriterEdgeTest, SingleSelfClosingRoot) {
  xml::Document doc;
  doc.AddRoot("lonely");
  EXPECT_EQ(xml::WriteDocument(doc, false), "<lonely/>");
  EXPECT_EQ(xml::WriteDocument(doc, true), "<lonely/>\n");
}

TEST(WriterEdgeTest, PrettyIndentationNesting) {
  ASSERT_OK_AND_ASSIGN(const xml::Document doc,
                       xml::ParseDocument("<a><b><c/></b></a>"));
  EXPECT_EQ(xml::WriteDocument(doc, true),
            "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
}

TEST(WriterEdgeTest, DeepChainDoesNotOverflow) {
  xml::Document doc;
  xml::ElementId cursor = doc.AddRoot("d");
  for (int i = 0; i < 20000; ++i) {
    cursor = doc.AddChild(cursor, "d");
  }
  const std::string flat = xml::WriteDocument(doc, false);
  EXPECT_EQ(flat.size(), 20000u * 7 + 4);  // 20000 <d></d> pairs + <d/>
  ASSERT_OK(xml::ParseDocument(flat).status());
}

TEST(RunnerTest, MeasureOpRecordsExactCosts) {
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK(wbox.InsertFirstElement().status());
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  workload::RunStats stats;
  // A lookup: LIDF page + leaf page = 2 reads, no writes.
  ASSERT_OK(workload::MeasureOp(
      &db.cache, [&] { return wbox.Lookup(0).status(); }, &stats));
  EXPECT_EQ(stats.per_op_cost.count(), 1u);
  EXPECT_EQ(stats.per_op_cost.max(), 2u);
  EXPECT_EQ(stats.totals.reads, 2u);
  EXPECT_EQ(stats.totals.writes, 0u);
}

TEST(RunnerTest, MeasureOpPropagatesOpError) {
  TestDb db;
  WBox wbox(&db.cache);
  workload::RunStats stats;
  const Status status = workload::MeasureOp(
      &db.cache, [&] { return wbox.Lookup(99).status(); }, &stats);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(db.cache.op_active());  // the op bracket was closed
}

TEST(RunnerTest, UnmeasuredOpLeavesNoPerOpSample) {
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK(workload::UnmeasuredOp(
      &db.cache, [&] { return wbox.InsertFirstElement().status(); }));
  EXPECT_FALSE(db.cache.op_active());
  EXPECT_GT(db.cache.stats().writes, 0u);  // the flush happened
}

}  // namespace
}  // namespace boxes
