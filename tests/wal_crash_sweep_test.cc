// Crash sweep of the write-ahead op log: a batched workload runs with the
// WAL pipeline attached (one log append + fdatasync per flush, a durable
// checkpoint only every few flushes) against a fault-injected file store
// that crashes at every k-th page write, tearing the in-flight frame.
//
// The contract under test is strictly stronger than the batch sweep's:
// NO ACKNOWLEDGED LOSS. Once Flush() has returned OK the batch must
// survive any later crash — even though no checkpoint covered it — because
// its log records were synced before it was applied. Every reopened image
// must recover to exactly one flush boundary (same LIDs, same label order,
// same live count: replay is LID-stable), at or above the last flush whose
// Flush() call had returned when the crash hit; a torn log tail must end
// replay cleanly, never fail it and never surface a partial batch.

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/update_buffer.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "storage/wal.h"
#include "test_util.h"
#include "util/random.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;

constexpr size_t kPageSize = 1024;  // smallest size WBox's b >= 24 allows
// The WAL pipeline is write-lean — data pages reach the store only at
// checkpoint barriers — so the op count must be generous for the sweep to
// see >= 150 distinct crash points.
constexpr int kOps = 768;
constexpr size_t kBatch = 16;
// Several flushes ride on the log alone between checkpoints — the sweep
// crosses both kinds of boundary many times.
constexpr uint64_t kCheckpointInterval = 4;
constexpr uint64_t kWorkloadSeed = 0x77a10b0cu;

struct FlushSnapshot {
  uint64_t index = 0;       // flush number, 0-based (== batch id - 1)
  uint64_t ack_writes = 0;  // wrapper writes committed when Flush returned
  std::vector<Lid> order;   // expected tag order at the boundary
};

struct WorkloadState {
  std::vector<Lid> order;
  std::vector<std::pair<Lid, Lid>> elements;
};

struct PlannedOp {
  bool is_delete = false;
  UpdateBuffer::Ticket ticket = 0;
  Lid anchor = kInvalidLid;
  std::pair<Lid, Lid> victim;
};

Status ApplyPlanToModel(const UpdateBuffer& buffer,
                        const std::vector<PlannedOp>& plan,
                        WorkloadState* state) {
  for (const PlannedOp& op : plan) {
    if (op.is_delete) {
      auto& order = state->order;
      order.erase(std::remove_if(order.begin(), order.end(),
                                 [&](Lid lid) {
                                   return lid == op.victim.first ||
                                          lid == op.victim.second;
                                 }),
                  order.end());
      auto& elements = state->elements;
      elements.erase(
          std::remove(elements.begin(), elements.end(), op.victim),
          elements.end());
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(const NewElement fresh, buffer.Result(op.ticket));
    if (op.anchor == kInvalidLid) {  // bootstrap
      state->order = {fresh.start, fresh.end};
      state->elements = {{fresh.start, fresh.end}};
      continue;
    }
    auto it = std::find(state->order.begin(), state->order.end(), op.anchor);
    if (it == state->order.end()) {
      return Status::Internal("anchor vanished from the model");
    }
    state->order.insert(it, {fresh.start, fresh.end});
    state->elements.push_back({fresh.start, fresh.end});
  }
  return Status::OK();
}

// Runs the WAL-attached workload until done or the injected crash fires.
// On the fault-free run, `snapshots` receives one entry per acknowledged
// flush, stamped with the write count at acknowledgment time.
template <typename Scheme>
Status RunWalWorkload(PageCache* cache, Scheme* scheme,
                      FaultInjectionPageStore* wrapper,
                      std::vector<FlushSnapshot>* snapshots) {
  BOXES_RETURN_IF_ERROR(InitializeSuperblock(cache));
  WalPipeline pipeline(cache, scheme,
                       {.checkpoint_interval = kCheckpointInterval});
  BOXES_RETURN_IF_ERROR(pipeline.Init());
  UpdateBuffer buffer(scheme,
                      {.flush_threshold = kBatch, .auto_flush = false});
  pipeline.Attach(&buffer);

  const Status run = [&]() -> Status {
    Random rng(kWorkloadSeed);
    WorkloadState state;
    std::vector<PlannedOp> plan;
    uint64_t flush_index = 0;
    auto flush_batch = [&]() -> Status {
      BOXES_RETURN_IF_ERROR(buffer.Flush());
      // This is the acknowledgment point: Flush returned OK, so the batch's
      // log records are on the device and synced. A crash at any write from
      // here on must not lose it.
      BOXES_RETURN_IF_ERROR(ApplyPlanToModel(buffer, plan, &state));
      if (snapshots != nullptr) {
        snapshots->push_back(
            {flush_index, wrapper->writes_committed(), state.order});
      }
      ++flush_index;
      plan.clear();
      return Status::OK();
    };

    {
      PlannedOp op;
      BOXES_ASSIGN_OR_RETURN(op.ticket, buffer.InsertFirstElement());
      plan.push_back(op);
      BOXES_RETURN_IF_ERROR(flush_batch());
    }

    int ops_done = 0;
    while (ops_done < kOps) {
      const size_t snapshot_size = state.elements.size();
      std::unordered_set<size_t> touched;
      const size_t batch =
          std::min<size_t>(kBatch, static_cast<size_t>(kOps - ops_done));
      for (size_t i = 0; i < batch; ++i, ++ops_done) {
        size_t target = snapshot_size;
        for (int tries = 0; tries < 50; ++tries) {
          const size_t candidate = rng.Uniform(snapshot_size);
          if (touched.count(candidate) == 0) {
            target = candidate;
            break;
          }
        }
        if (target == snapshot_size) {
          break;  // batch starved; flush what we have
        }
        touched.insert(target);
        PlannedOp op;
        if (snapshot_size > 6 && rng.Bernoulli(0.3)) {
          op.is_delete = true;
          op.victim = state.elements[target];
          BOXES_RETURN_IF_ERROR(buffer.Delete(op.victim.first).status());
          BOXES_RETURN_IF_ERROR(buffer.Delete(op.victim.second).status());
        } else {
          op.anchor = rng.Bernoulli(0.5) ? state.elements[target].first
                                         : state.elements[target].second;
          BOXES_ASSIGN_OR_RETURN(op.ticket,
                                 buffer.InsertElementBefore(op.anchor));
        }
        plan.push_back(op);
      }
      BOXES_RETURN_IF_ERROR(flush_batch());
    }
    return Status::OK();
  }();
  if (!run.ok()) {
    // The injected crash fired mid-flush. A crash in the WAL append leaves
    // the batch pending by design (real callers may retry Flush once the
    // fault clears), but this "process" is dead — the sweep reopens the
    // image from disk. Acknowledge the loss so the buffer's unflushed-op
    // leak check (an abort in debug builds) doesn't fire on the unwind.
    buffer.DiscardPending();
  }
  return run;
}

std::string SweepPath(const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "/boxes_wal_sweep_" + tag + ".db";
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  return path;
}

bool IsCleanErrorCode(StatusCode code) {
  return code == StatusCode::kCorruption || code == StatusCode::kIoError ||
         code == StatusCode::kNotFound ||
         code == StatusCode::kInvalidArgument;
}

// Recovers the crashed image through checkpoint restore + log replay.
// Returns the recovered flush count (0 = empty database), or -1 for a
// clean open failure. Anything that is not EXACTLY a flush boundary fails
// the test.
template <typename Scheme, typename Options>
int64_t RecoverCrashedImage(const std::string& path, const Options& options,
                            const std::vector<FlushSnapshot>& snapshots,
                            uint64_t crash_point) {
  FilePageStore store(path, kPageSize, FilePageStore::Mode::kOpen);
  if (!store.status().ok()) {
    EXPECT_TRUE(IsCleanErrorCode(store.status().code()))
        << "crash point " << crash_point
        << ": reopen failed uncleanly: " << store.status().ToString();
    return -1;
  }
  PageCache cache(&store);
  Scheme scheme(&cache, options);
  const StatusOr<WalRecoveryResult> recovered = RecoverWithWal(
      &cache, &scheme, [&](PageId head) { return scheme.Restore(head); });
  if (!recovered.ok()) {
    // Recovery itself must never fail on a crash image: a torn tail is a
    // clean stop, not an error. The only excusable failure is a superblock
    // that never became readable (crash before the first commit finished).
    EXPECT_TRUE(IsCleanErrorCode(recovered.status().code()))
        << "crash point " << crash_point << ": "
        << recovered.status().ToString();
    return -1;
  }

  // Which flush boundary did we land on? The checkpoint covers
  // wal_mark - 1 flushes; replay extends that to its last batch id.
  const StatusOr<SuperblockInfo> info = LoadSuperblock(&cache);
  EXPECT_TRUE(info.ok());
  if (!info.ok()) {
    return -1;
  }
  const uint64_t flushes = recovered->replay.batches_replayed > 0
                               ? recovered->replay.last_replayed_batch
                               : info->wal_mark - 1;

  const Status invariants = scheme.CheckInvariants();
  EXPECT_TRUE(invariants.ok())
      << "crash point " << crash_point << ": " << invariants.ToString();
  if (flushes == 0) {
    StatusOr<SchemeStats> stats = scheme.GetStats();
    EXPECT_TRUE(stats.ok() && stats->live_labels == 0)
        << "crash point " << crash_point
        << ": pre-bootstrap image must recover empty";
    return 0;
  }
  if (flushes > snapshots.size()) {
    ADD_FAILURE() << "crash point " << crash_point
                  << ": recovered unknown flush boundary " << flushes;
    return -1;
  }
  // The no-partial-batch check: the recovered tree IS the boundary
  // snapshot, LID for LID — every expected label present and ordered, and
  // not one label more.
  const FlushSnapshot& model = snapshots[flushes - 1];
  EXPECT_TRUE(LabelsStrictlyIncreasing(&scheme, model.order))
      << "crash point " << crash_point << ", flush boundary " << flushes;
  StatusOr<SchemeStats> stats = scheme.GetStats();
  EXPECT_TRUE(stats.ok());
  if (stats.ok()) {
    EXPECT_EQ(stats->live_labels, model.order.size())
        << "crash point " << crash_point << ", flush boundary " << flushes
        << ": recovered a partially applied batch";
  }
  return static_cast<int64_t>(flushes);
}

template <typename Scheme, typename Options>
void RunWalCrashSweep(const std::string& tag, const Options& options) {
  std::vector<FlushSnapshot> snapshots;
  uint64_t total_writes = 0;
  {
    const std::string path = SweepPath(tag + "_ref");
    FilePageStore base(path, kPageSize);
    ASSERT_OK(base.status());
    FaultInjectionPageStore wrapper(&base);
    PageCache cache(&wrapper);
    Scheme scheme(&cache, options);
    ASSERT_OK(RunWalWorkload(&cache, &scheme, &wrapper, &snapshots));
    total_writes = wrapper.writes_committed();
  }
  ASSERT_GE(snapshots.size(), 8u) << "workload must span several flushes";
  ASSERT_GE(total_writes, 150u) << "workload too small for the sweep";

  const uint64_t stride = std::max<uint64_t>(1, total_writes / 150);
  uint64_t points = 0;
  uint64_t recovered_images = 0;
  const std::string path = SweepPath(tag);
  for (uint64_t crash = 0; crash < total_writes; crash += stride) {
    ++points;
    {
      FilePageStore base(path, kPageSize);
      ASSERT_OK(base.status());
      FaultInjectionPageStore wrapper(&base);
      wrapper.SetSeed(crash);
      wrapper.SetTornWrites(true);
      wrapper.CrashAfterWrites(crash);
      PageCache cache(&wrapper);
      Scheme scheme(&cache, options);
      const Status run = RunWalWorkload(&cache, &scheme, &wrapper, nullptr);
      ASSERT_FALSE(run.ok()) << "crash point " << crash << " never fired";
      ASSERT_EQ(run.code(), StatusCode::kIoError)
          << "crash point " << crash << ": " << run.ToString();
      ASSERT_TRUE(wrapper.crashed());
    }
    // The no-acknowledged-loss floor: every flush whose Flush() call had
    // returned before the crash write must be recovered.
    int64_t acked = 0;
    for (const FlushSnapshot& snapshot : snapshots) {
      if (snapshot.ack_writes <= crash) {
        acked = static_cast<int64_t>(snapshot.index) + 1;
      }
    }
    const int64_t got = RecoverCrashedImage<Scheme, Options>(
        path, options, snapshots, crash);
    if (got >= 0) {
      ++recovered_images;
      EXPECT_GE(got, acked)
          << "crash point " << crash << " lost an acknowledged flush";
    } else {
      EXPECT_EQ(acked, 0)
          << "crash point " << crash
          << ": image with acknowledged flushes failed to open";
    }
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  ASSERT_GE(points, 100u);
  EXPECT_GT(recovered_images, points / 2);
  ::testing::Test::RecordProperty("crash_points", static_cast<int>(points));
  ::testing::Test::RecordProperty("recovered",
                                  static_cast<int>(recovered_images));
}

TEST(WalCrashSweepTest, WBoxNeverLosesAcknowledgedFlushes) {
  RunWalCrashSweep<WBox>("wbox", WBoxOptions{});
}

TEST(WalCrashSweepTest, BBoxNeverLosesAcknowledgedFlushes) {
  RunWalCrashSweep<BBox>("bbox", BBoxOptions{});
}

TEST(WalCrashSweepTest, NaiveNeverLosesAcknowledgedFlushes) {
  RunWalCrashSweep<NaiveScheme>(
      "naive", NaiveOptions{.gap_bits = 8, .count_bits = 30});
}

}  // namespace
}  // namespace boxes
