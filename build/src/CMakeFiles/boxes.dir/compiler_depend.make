# Empty compiler generated dependencies file for boxes.
# This may be replaced when dependencies are built.
