// Direct unit tests of the on-page node layouts (the byte-level view
// classes both trees are built on).

#include <cstring>
#include <vector>

#include "core/bbox/bbox_node.h"
#include "core/wbox/wbox_node.h"
#include "gtest/gtest.h"

namespace boxes {
namespace {

class WBoxLeafLayoutTest : public ::testing::Test {
 protected:
  WBoxLeafLayoutTest()
      : params_(WBoxParams::Derive(1024, /*pair_mode=*/false)),
        pair_params_(WBoxParams::Derive(1024, /*pair_mode=*/true)) {
    page_.assign(1024, 0xcd);
    other_.assign(1024, 0xcd);
  }

  WBoxParams params_;
  WBoxParams pair_params_;
  std::vector<uint8_t> page_;
  std::vector<uint8_t> other_;
};

TEST_F(WBoxLeafLayoutTest, InitAndInsert) {
  WBoxLeafView leaf(page_.data(), &params_);
  leaf.Init();
  EXPECT_EQ(leaf.node_type(), WBoxLeafView::kNodeType);
  EXPECT_EQ(leaf.count(), 0);
  EXPECT_EQ(leaf.live_count(), 0);
  leaf.set_range_lo(1000);
  leaf.InsertRecordAt(0, /*lid=*/42, 0);
  leaf.InsertRecordAt(1, /*lid=*/43, WBoxLeafView::kFlagIsEnd);
  leaf.InsertRecordAt(1, /*lid=*/99, 0);  // squeezes between
  EXPECT_EQ(leaf.count(), 3);
  EXPECT_EQ(leaf.live_count(), 3);
  EXPECT_EQ(leaf.lid(0), 42u);
  EXPECT_EQ(leaf.lid(1), 99u);
  EXPECT_EQ(leaf.lid(2), 43u);
  EXPECT_TRUE(leaf.is_end_label(2));
  EXPECT_FALSE(leaf.is_end_label(1));
  EXPECT_EQ(leaf.LabelAt(1), 1001u);
  EXPECT_EQ(leaf.FindLive(99), 1);
  EXPECT_EQ(leaf.FindLive(12345), -1);
}

TEST_F(WBoxLeafLayoutTest, TombstonesTrackLiveCount) {
  WBoxLeafView leaf(page_.data(), &params_);
  leaf.Init();
  for (Lid lid = 0; lid < 5; ++lid) {
    leaf.InsertRecordAt(static_cast<uint16_t>(lid), lid, 0);
  }
  leaf.SetTombstone(2, true);
  EXPECT_EQ(leaf.count(), 5);
  EXPECT_EQ(leaf.live_count(), 4);
  EXPECT_EQ(leaf.FindTombstone(), 2);
  EXPECT_EQ(leaf.FindLive(2), -1);  // tombstoned lids are invisible
  leaf.SetTombstone(2, false);
  EXPECT_EQ(leaf.live_count(), 5);
  EXPECT_EQ(leaf.FindTombstone(), -1);
  // Removing a range drops live counts appropriately.
  leaf.SetTombstone(1, true);
  leaf.RemoveRecordRange(0, 2);
  EXPECT_EQ(leaf.count(), 2);
  EXPECT_EQ(leaf.live_count(), 2);
  EXPECT_EQ(leaf.lid(0), 3u);
}

TEST_F(WBoxLeafLayoutTest, MoveHelpersPreserveOrder) {
  WBoxLeafView src(page_.data(), &params_);
  WBoxLeafView dst(other_.data(), &params_);
  src.Init();
  dst.Init();
  for (Lid lid = 0; lid < 8; ++lid) {
    src.InsertRecordAt(static_cast<uint16_t>(lid), lid, 0);
  }
  src.MoveSuffixTo(5, &dst);  // dst = [5,6,7]
  EXPECT_EQ(src.count(), 5);
  EXPECT_EQ(dst.count(), 3);
  EXPECT_EQ(dst.lid(0), 5u);
  src.MoveSuffixToFront(3, &dst);  // dst = [3,4,5,6,7]
  EXPECT_EQ(dst.count(), 5);
  EXPECT_EQ(dst.lid(0), 3u);
  EXPECT_EQ(dst.lid(4), 7u);
  dst.MovePrefixTo(2, &src);  // src = [0,1,2,3,4], dst = [5,6,7]
  EXPECT_EQ(src.count(), 5);
  EXPECT_EQ(dst.count(), 3);
  for (uint16_t i = 0; i < 5; ++i) {
    EXPECT_EQ(src.lid(i), i);
  }
  EXPECT_EQ(dst.lid(0), 5u);
}

TEST_F(WBoxLeafLayoutTest, PairFieldsRoundTrip) {
  WBoxLeafView leaf(page_.data(), &pair_params_);
  leaf.Init();
  leaf.InsertRecordAt(0, 10, 0);
  leaf.set_partner_block(0, 777);
  leaf.set_cached_end(0, 123456);
  EXPECT_EQ(leaf.partner_block(0), 777u);
  EXPECT_EQ(leaf.cached_end(0), 123456u);
}

TEST(WBoxInternalLayoutTest, EntriesAndSubranges) {
  const WBoxParams params = WBoxParams::Derive(1024, false);
  std::vector<uint8_t> page(1024, 0xee);
  WBoxInternalView node(page.data(), &params);
  node.Init(/*level=*/2);
  EXPECT_EQ(node.node_type(), WBoxInternalView::kNodeType);
  EXPECT_EQ(node.level(), 2);
  node.set_range_lo(500);
  node.InsertEntryAt(0, /*child=*/11, /*weight=*/100, /*size=*/90, 0);
  node.InsertEntryAt(1, /*child=*/22, /*weight=*/200, /*size=*/180, 5);
  node.InsertEntryAt(1, /*child=*/33, /*weight=*/50, /*size=*/50, 3);
  node.set_self_weight(350);
  EXPECT_EQ(node.count(), 3);
  EXPECT_EQ(node.child(1), 33u);
  EXPECT_EQ(node.weight(1), 50u);
  EXPECT_EQ(node.size(2), 180u);
  EXPECT_EQ(node.subrange(1), 3);
  EXPECT_EQ(node.FindChildByPage(22), 2);
  EXPECT_FALSE(node.SubrangeFree(3));
  EXPECT_TRUE(node.SubrangeFree(4));
  // Label routing: the child at subrange s owns
  // [lo + s*len(level-1), ... + len).
  const uint64_t child_len = params.RangeLength(1);
  EXPECT_EQ(node.ChildRangeLo(1), 500 + 3 * child_len);
  EXPECT_EQ(node.FindChildByLabel(500), 0);
  EXPECT_EQ(node.FindChildByLabel(500 + 3 * child_len + 7), 1);
  EXPECT_EQ(node.FindChildByLabel(500 + 4 * child_len), -1);  // unassigned
  node.RemoveEntryAt(0);
  EXPECT_EQ(node.count(), 2);
  EXPECT_EQ(node.child(0), 33u);
}

TEST(BBoxLayoutTest, LeafBasics) {
  const BBoxParams params = BBoxParams::Derive(512, false, 2);
  std::vector<uint8_t> page(512, 0xaa);
  BBoxLeafView leaf(page.data(), &params);
  leaf.Init();
  EXPECT_EQ(leaf.node_type(), BBoxNodeHeader::kLeafType);
  EXPECT_EQ(leaf.parent(), kInvalidPageId);
  leaf.set_parent(9);
  EXPECT_EQ(leaf.parent(), 9u);
  leaf.InsertAt(0, 100);
  leaf.InsertAt(1, 300);
  leaf.InsertAt(1, 200);
  EXPECT_EQ(leaf.count(), 3);
  EXPECT_EQ(leaf.Find(200), 1);
  EXPECT_EQ(leaf.Find(999), -1);
  leaf.RemoveAt(0);
  EXPECT_EQ(leaf.lid(0), 200u);
  leaf.RemoveRange(0, 1);
  EXPECT_EQ(leaf.count(), 0);
}

TEST(BBoxLayoutTest, InternalSizesOnlyInOrdinalMode) {
  const BBoxParams plain = BBoxParams::Derive(512, false, 2);
  const BBoxParams ordinal = BBoxParams::Derive(512, true, 2);
  EXPECT_EQ(ordinal.internal_capacity * 2, plain.internal_capacity);
  std::vector<uint8_t> page(512, 0);
  {
    BBoxInternalView node(page.data(), &ordinal);
    node.Init(1);
    node.InsertAt(0, 5, 123);
    node.InsertAt(1, 6, 77);
    EXPECT_EQ(node.size(0), 123u);
    EXPECT_EQ(node.SizeSum(), 200u);
  }
  {
    BBoxInternalView node(page.data(), &plain);
    node.Init(1);
    node.InsertAt(0, 5, 123);  // size silently ignored
    EXPECT_EQ(node.size(0), 0u);
    EXPECT_EQ(node.SizeSum(), 0u);
  }
}

TEST(BBoxLayoutTest, MoveHelpers) {
  const BBoxParams params = BBoxParams::Derive(512, true, 2);
  std::vector<uint8_t> a_page(512, 0);
  std::vector<uint8_t> b_page(512, 0);
  BBoxInternalView a(a_page.data(), &params);
  BBoxInternalView b(b_page.data(), &params);
  a.Init(3);
  b.Init(3);
  for (uint16_t i = 0; i < 6; ++i) {
    a.InsertAt(i, 100 + i, i);
  }
  a.MoveSuffixTo(4, &b);  // b = [104,105]
  EXPECT_EQ(b.count(), 2);
  EXPECT_EQ(b.child(0), 104u);
  a.MoveSuffixToFront(2, &b);  // b = [102,103,104,105]
  EXPECT_EQ(b.count(), 4);
  EXPECT_EQ(b.child(0), 102u);
  EXPECT_EQ(b.size(1), 3u);
  b.MovePrefixTo(3, &a);  // a = [100,101,102,103,104], b = [105]
  EXPECT_EQ(a.count(), 5);
  EXPECT_EQ(b.count(), 1);
  EXPECT_EQ(a.child(4), 104u);
  EXPECT_EQ(b.child(0), 105u);
}

}  // namespace
}  // namespace boxes
