#include "storage/page_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

namespace boxes {

PageCache::PageCache(PageStore* store, PageCacheOptions options)
    : store_(store), options_(options) {}

PageCache::~PageCache() {
  // Best-effort flush; errors here cannot be reported.
  (void)FlushAll();
}

void PageCache::BeginOp() {
  BOXES_CHECK(!op_active_);
  op_active_ = true;
  for (auto& [id, frame] : frames_) {
    (void)id;
    frame.touched_this_op = false;
  }
  // With retention, trim to capacity now: every frame is untouched, so no
  // caller-held pointer can be invalidated. No insertion follows, so no
  // headroom is needed (trim to exactly capacity_pages).
  BOXES_CHECK_OK(EvictIfNeeded(/*headroom=*/0));
}

Status PageCache::EndOp() {
  BOXES_CHECK(op_active_);
  op_active_ = false;
  return FlushAll();
}

StatusOr<uint8_t*> PageCache::GetPage(PageId id) {
  return GetInternal(id, /*for_write=*/false);
}

StatusOr<uint8_t*> PageCache::GetPageForWrite(PageId id) {
  return GetInternal(id, /*for_write=*/true);
}

StatusOr<uint8_t*> PageCache::GetInternal(PageId id, bool for_write) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    BOXES_RETURN_IF_ERROR(EvictIfNeeded(/*headroom=*/1));
    Frame frame;
    frame.data = std::make_unique<uint8_t[]>(page_size());
    Status read = store_->Read(id, frame.data.get());
    if (!read.ok()) {
      if (read.code() == StatusCode::kCorruption) {
        // Tag the failure with which operation phase was reading; the page
        // id is already in the store's message.
        return Status::Corruption(read.message() + std::string(" (io phase: ") +
                                  IoPhaseName(phase_) + ")");
      }
      return read;
    }
    ++stats_.reads;
    ++phase_stats_[static_cast<size_t>(phase_)].reads;
    it = frames_.emplace(id, std::move(frame)).first;
  }
  Frame& frame = it->second;
  Touch(id, &frame);
  if (for_write) {
    MarkDirty(&frame);
  }
  return frame.data.get();
}

StatusOr<PageId> PageCache::AllocatePage(uint8_t** data) {
  StatusOr<PageId> id = store_->Allocate();
  if (!id.ok()) {
    return id.status();
  }
  BOXES_RETURN_IF_ERROR(EvictIfNeeded(/*headroom=*/1));
  Frame frame;
  frame.data = std::make_unique<uint8_t[]>(page_size());
  std::memset(frame.data.get(), 0, page_size());
  auto it = frames_.emplace(*id, std::move(frame)).first;
  MarkDirty(&it->second);
  Touch(*id, &it->second);
  *data = it->second.data.get();
  return *id;
}

Status PageCache::FreePage(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (it->second.in_lru) {
      lru_.erase(it->second.lru_pos);
    }
    frames_.erase(it);
  }
  return store_->Free(id);
}

Status PageCache::FlushAll() {
  // Flush dirty frames in a deterministic order for reproducibility.
  std::vector<PageId> ids;
  ids.reserve(frames_.size());
  for (auto& [id, frame] : frames_) {
    (void)frame;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (PageId id : ids) {
    Frame& frame = frames_[id];
    BOXES_RETURN_IF_ERROR(FlushFrame(id, &frame));
  }
  if (!options_.retain_across_ops) {
    frames_.clear();
    lru_.clear();
  }
  return Status::OK();
}

Status PageCache::FlushFrame(PageId id, Frame* frame) {
  if (!frame->dirty) {
    return Status::OK();
  }
  BOXES_RETURN_IF_ERROR(store_->Write(id, frame->data.get()));
  frame->dirty = false;
  ++stats_.writes;
  ++phase_stats_[static_cast<size_t>(frame->dirty_phase)].writes;
  frame->dirty_phase = IoPhase::kOther;
  return Status::OK();
}

Status PageCache::EvictIfNeeded(size_t headroom) {
  if (!options_.retain_across_ops) {
    return Status::OK();  // unbounded working set within an operation
  }
  if (!op_active_) {
    // Without operation brackets there is no safe point to invalidate the
    // raw pointers callers hold; defer eviction to the next BeginOp.
    return Status::OK();
  }
  while (frames_.size() + headroom > options_.capacity_pages &&
         !lru_.empty()) {
    // Find the least-recently-used frame that is not part of the current
    // operation's working set (those must stay pinned: callers hold raw
    // pointers to them until EndOp).
    PageId victim = kInvalidPageId;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (!frames_.at(*it).touched_this_op) {
        victim = *it;
        break;
      }
    }
    if (victim == kInvalidPageId) {
      return Status::OK();  // everything pinned; allow temporary overflow
    }
    auto it = frames_.find(victim);
    BOXES_RETURN_IF_ERROR(FlushFrame(victim, &it->second));
    lru_.erase(it->second.lru_pos);
    frames_.erase(it);
  }
  return Status::OK();
}

void PageCache::Touch(PageId id, Frame* frame) {
  frame->touched_this_op = true;
  if (options_.retain_across_ops) {
    if (frame->in_lru) {
      lru_.erase(frame->lru_pos);
    }
    lru_.push_front(id);
    frame->lru_pos = lru_.begin();
    frame->in_lru = true;
  }
}

void PageCache::MarkDirty(Frame* frame) {
  if (!frame->dirty) {
    frame->dirty = true;
    frame->dirty_phase = phase_;
  }
}

void PageCache::RecordUnwindError(const Status& status) {
  std::fprintf(stderr, "boxes: error during IoScope unwinding: %s\n",
               status.ToString().c_str());
  if (last_unwind_error_.ok()) {
    last_unwind_error_ = status;
  }
}

}  // namespace boxes
