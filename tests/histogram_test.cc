#include "util/histogram.h"

#include <cmath>

#include "gtest/gtest.h"

namespace boxes {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_TRUE(h.Ccdf().empty());
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v : {1, 2, 2, 3, 10}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 18u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.6);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_EQ(h.Percentile(0.5), 2u);
  EXPECT_EQ(h.Percentile(1.0), 10u);
}

TEST(HistogramTest, FractionAbove) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Add(v);
  }
  EXPECT_DOUBLE_EQ(h.FractionAbove(0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionAbove(50), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAbove(100), 0.0);
}

TEST(HistogramTest, CcdfIsMonotoneNonIncreasing) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Add(v * v % 977 + 1);
  }
  const auto points = h.Ccdf(32);
  ASSERT_FALSE(points.empty());
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].cost, points[i].cost);
    EXPECT_GE(points[i - 1].fraction_above, points[i].fraction_above);
  }
  // CCDF values must match direct computation.
  for (const auto& p : points) {
    EXPECT_DOUBLE_EQ(p.fraction_above, h.FractionAbove(p.cost));
  }
}

TEST(HistogramTest, CcdfSmallDistinctSetUsesExactCosts) {
  Histogram h;
  h.Add(3);
  h.Add(7);
  h.Add(7);
  const auto points = h.Ccdf(64);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].cost, 3u);
  EXPECT_DOUBLE_EQ(points[0].fraction_above, 2.0 / 3.0);
  EXPECT_EQ(points[1].cost, 7u);
  EXPECT_DOUBLE_EQ(points[1].fraction_above, 0.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Add(1);
  a.Add(2);
  b.Add(2);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 8u);
  EXPECT_EQ(a.max(), 3u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(HistogramTest, CcdfWithSinglePointBudgetHasNoNan) {
  // Regression: max_points == 1 divided by (max_points - 1) == 0, so every
  // sampled cost was NaN-derived garbage.
  Histogram h;
  for (uint64_t v : {1, 3, 9, 27, 81}) {
    h.Add(v);
  }
  const auto points = h.Ccdf(/*max_points=*/1);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].cost, 81u);
  EXPECT_FALSE(std::isnan(points[0].fraction_above));
  EXPECT_DOUBLE_EQ(points[0].fraction_above, 0.0);
}

TEST(HistogramTest, CcdfAlwaysEndsAtTrueMax) {
  // Regression: with more distinct costs than points, the log-spaced
  // samples could all round below the true maximum, cutting off the
  // plotted tail above zero.
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Add(v);
  }
  h.Add(999983);  // outlier maximum a coarse log grid will miss
  for (size_t max_points : {2u, 3u, 8u, 64u}) {
    const auto points = h.Ccdf(max_points);
    ASSERT_FALSE(points.empty()) << "max_points=" << max_points;
    EXPECT_EQ(points.back().cost, 999983u) << "max_points=" << max_points;
    EXPECT_DOUBLE_EQ(points.back().fraction_above, 0.0)
        << "max_points=" << max_points;
    EXPECT_LE(points.size(), max_points + 1) << "max_points=" << max_points;
    for (size_t i = 1; i < points.size(); ++i) {
      EXPECT_LT(points[i - 1].cost, points[i].cost);  // strictly increasing
    }
  }
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(4);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace boxes
