#ifndef BOXES_XML_DOCUMENT_H_
#define BOXES_XML_DOCUMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace boxes::xml {

/// Index of an element within a Document.
using ElementId = uint64_t;

inline constexpr ElementId kInvalidElement = UINT64_MAX;

/// One XML element: a tag name plus tree links. Text content and attributes
/// are irrelevant to order-based labeling and are not modeled.
struct Element {
  std::string tag;
  ElementId parent = kInvalidElement;
  std::vector<ElementId> children;
};

/// An ordered tree of elements modeling a well-formed XML document
/// (paper §3). Each element contributes a start tag and an end tag; the
/// document order of those 2·N tags is what labeling schemes maintain.
class Document {
 public:
  Document() = default;

  Document(const Document&) = default;
  Document& operator=(const Document&) = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  bool empty() const { return elements_.empty(); }
  uint64_t element_count() const { return elements_.size(); }
  /// Total number of tags (start + end) = 2 · element_count().
  uint64_t tag_count() const { return elements_.size() * 2; }
  ElementId root() const { return root_; }

  const Element& element(ElementId id) const { return elements_[id]; }

  /// Creates the root element. Requires an empty document.
  ElementId AddRoot(std::string tag);

  /// Appends a child under `parent`; returns the new element's id.
  ElementId AddChild(ElementId parent, std::string tag);

  /// Inserts a child under `parent` at position `index` (0 = first).
  ElementId AddChildAt(ElementId parent, size_t index, std::string tag);

  /// Depth of the tree (root alone = 1); 0 for an empty document.
  uint64_t Depth() const;

  /// Number of elements in the subtree rooted at `id` (inclusive).
  uint64_t SubtreeSize(ElementId id) const;

  /// Element ids in document (pre-)order of their start tags.
  std::vector<ElementId> PreorderIds() const;

  /// Calls `fn(element, is_start_tag)` for every tag in document order.
  /// 2 · element_count() calls total.
  void ForEachTag(
      const std::function<void(ElementId, bool is_start)>& fn) const;

  /// Copies the subtree rooted at `id` into a standalone document.
  Document ExtractSubtree(ElementId id) const;

  /// Structural sanity check: parent/child links consistent, exactly one
  /// root, no cycles.
  Status Validate() const;

 private:
  std::vector<Element> elements_;
  ElementId root_ = kInvalidElement;
};

}  // namespace boxes::xml

#endif  // BOXES_XML_DOCUMENT_H_
