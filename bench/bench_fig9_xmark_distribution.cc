// Reproduces Figure 9: distribution of per-insertion cost under the XMark
// insertion sequence (paper §7). Complementary CDF like Figure 6.

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "workload/sequences.h"
#include "xml/xmark.h"

namespace boxes::bench {
namespace {

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* elements =
      flags.AddInt64("elements", 25000, "XMark document elements");
  int64_t* prime =
      flags.AddInt64("prime", 15000, "elements bulk loaded unmeasured");
  int64_t* seed = flags.AddInt64("seed", 42, "generator seed");
  std::string* schemes = flags.AddString(
      "schemes", "wbox,wbox-o,bbox,bbox-o,naive-16",
      "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  int64_t* points = flags.AddInt64("points", 24, "CCDF sample points");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 4000);
  SmokeCap(smoke, prime, 2000);

  const xml::Document doc = xml::MakeXmarkDocument(
      static_cast<uint64_t>(*elements), static_cast<uint64_t>(*seed));
  std::printf(
      "FIG9: distribution of update cost, XMark insertion sequence\n"
      "document: %llu elements, primed with %lld\n"
      "columns: cost (I/Os), fraction of insertions with cost > that\n\n",
      static_cast<unsigned long long>(doc.element_count()),
      static_cast<long long>(*prime));

  for (const std::string& name : SplitSchemes(*schemes)) {
    SchemeUnderTest unit(static_cast<size_t>(*page_size));
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    workload::RunStats stats;
    CheckOkOrDie(workload::RunDocumentOrderInsertion(
                     unit.scheme.get(), unit.cache.get(), doc,
                     static_cast<uint64_t>(*prime), &stats),
                 "XMark run");
    std::printf("# scheme=%s mean=%.2f max=%llu\n", name.c_str(),
                stats.MeanCost(),
                static_cast<unsigned long long>(stats.per_op_cost.max()));
    for (const auto& point :
         stats.per_op_cost.Ccdf(static_cast<size_t>(*points))) {
      std::printf("%s %10llu %.6f\n", name.c_str(),
                  static_cast<unsigned long long>(point.cost),
                  point.fraction_above);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
