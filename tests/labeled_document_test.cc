#include "doc/labeled_document.h"

#include <memory>
#include <string>

#include "core/bbox/bbox.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace boxes {
namespace {

using testing::TestDb;

struct FacadeParam {
  const char* name;
  std::unique_ptr<LabelingScheme> (*make)(PageCache*);
};

std::unique_ptr<LabelingScheme> MakeWBox(PageCache* cache) {
  WBoxOptions options;
  options.pair_mode = true;
  return std::make_unique<WBox>(cache, options);
}
std::unique_ptr<LabelingScheme> MakeBBox(PageCache* cache) {
  return std::make_unique<BBox>(cache);
}

class LabeledDocumentTest : public ::testing::TestWithParam<FacadeParam> {};

TEST_P(LabeledDocumentTest, BuildEditAndSerialize) {
  TestDb db(1024);
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  LabeledDocument doc(scheme.get());

  ASSERT_OK_AND_ASSIGN(const auto site, doc.CreateRoot("site"));
  ASSERT_OK_AND_ASSIGN(const auto regions, doc.AppendChild(site, "regions"));
  ASSERT_OK_AND_ASSIGN(const auto people, doc.AppendChild(site, "people"));
  ASSERT_OK_AND_ASSIGN(const auto asia, doc.AppendChild(regions, "asia"));
  ASSERT_OK_AND_ASSIGN(const auto africa,
                       doc.InsertBefore(asia, "africa"));
  ASSERT_OK_AND_ASSIGN(const auto item, doc.AppendChild(africa, "item"));
  EXPECT_EQ(doc.element_count(), 6u);

  ASSERT_OK_AND_ASSIGN(bool ancestor, doc.IsAncestorOf(regions, item));
  EXPECT_TRUE(ancestor);
  ASSERT_OK_AND_ASSIGN(ancestor, doc.IsAncestorOf(people, item));
  EXPECT_FALSE(ancestor);
  ASSERT_OK_AND_ASSIGN(const int cmp, doc.CompareOrder(africa, asia));
  EXPECT_LT(cmp, 0);

  ASSERT_OK_AND_ASSIGN(const std::string xml, doc.ToXml(false));
  EXPECT_EQ(xml,
            "<site><regions><africa><item/></africa><asia/></regions>"
            "<people/></site>");
  ASSERT_OK(doc.CheckConsistency());
}

TEST_P(LabeledDocumentTest, XmlRoundTrip) {
  TestDb db(1024);
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  LabeledDocument doc(scheme.get());
  const char* kXml =
      "<a><b><c/><d><e/></d></b><f/><g><h/><h/><h/></g></a>";
  ASSERT_OK(doc.LoadXml(kXml).status());
  ASSERT_OK_AND_ASSIGN(const std::string out, doc.ToXml(false));
  EXPECT_EQ(out, kXml);
  ASSERT_OK(doc.CheckConsistency());
}

TEST_P(LabeledDocumentTest, EraseSplicesChildren) {
  TestDb db(1024);
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  LabeledDocument doc(scheme.get());
  ASSERT_OK(doc.LoadXml("<r><x><y/><z/></x><w/></r>").status());
  ASSERT_OK_AND_ASSIGN(const auto handles, doc.HandlesInDocumentOrder());
  // handles: r, x, y, z, w
  ASSERT_EQ(doc.tag(handles[1]), "x");
  ASSERT_OK(doc.Erase(handles[1]));
  ASSERT_OK_AND_ASSIGN(const std::string out, doc.ToXml(false));
  EXPECT_EQ(out, "<r><y/><z/><w/></r>");  // x's children moved up
  ASSERT_OK(doc.CheckConsistency());
}

TEST_P(LabeledDocumentTest, EraseSubtreeRemovesDescendants) {
  TestDb db(1024);
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  LabeledDocument doc(scheme.get());
  ASSERT_OK(doc.LoadXml("<r><x><y/><z/></x><w/></r>").status());
  ASSERT_OK_AND_ASSIGN(const auto handles, doc.HandlesInDocumentOrder());
  ASSERT_EQ(doc.tag(handles[1]), "x");
  ASSERT_OK(doc.EraseSubtree(handles[1]));
  EXPECT_FALSE(doc.alive(handles[2]));  // y
  EXPECT_FALSE(doc.alive(handles[3]));  // z
  ASSERT_OK_AND_ASSIGN(const std::string out, doc.ToXml(false));
  EXPECT_EQ(out, "<r><w/></r>");
  ASSERT_OK(doc.CheckConsistency());
  EXPECT_EQ(doc.element_count(), 2u);
}

TEST_P(LabeledDocumentTest, PasteFragmentBulk) {
  TestDb db(1024);
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  LabeledDocument doc(scheme.get());
  ASSERT_OK(doc.LoadXml("<r><a/><b/></r>").status());
  ASSERT_OK_AND_ASSIGN(const auto handles, doc.HandlesInDocumentOrder());
  const auto a = handles[1];
  ASSERT_OK_AND_ASSIGN(const xml::Document fragment,
                       xml::ParseDocument("<frag><p/><q><s/></q></frag>"));
  ASSERT_OK_AND_ASSIGN(const auto frag_root,
                       doc.PasteFragment(a, fragment));
  EXPECT_EQ(doc.tag(frag_root), "frag");
  ASSERT_OK_AND_ASSIGN(const std::string out, doc.ToXml(false));
  EXPECT_EQ(out, "<r><a><frag><p/><q><s/></q></frag></a><b/></r>");
  ASSERT_OK(doc.CheckConsistency());
}

TEST_P(LabeledDocumentTest, RandomEditSessionStaysConsistent) {
  TestDb db(1024);
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  LabeledDocument doc(scheme.get());
  ASSERT_OK(doc.CreateRoot("root").status());
  Random rng(77);
  std::vector<LabeledDocument::ElementHandle> pool{0};
  for (int step = 0; step < 400; ++step) {
    const uint64_t dice = rng.Uniform(100);
    // Pick a live element.
    LabeledDocument::ElementHandle target;
    do {
      target = pool[rng.Uniform(pool.size())];
    } while (!doc.alive(target));
    if (dice < 55 || doc.element_count() < 3) {
      StatusOr<LabeledDocument::ElementHandle> fresh =
          dice % 2 == 0 ? doc.AppendChild(target, "e")
                        : (target == 0 ? doc.AppendChild(target, "e")
                                       : doc.InsertBefore(target, "e"));
      ASSERT_OK(fresh.status());
      pool.push_back(*fresh);
    } else if (dice < 75) {
      if (target != 0) {
        ASSERT_OK(doc.Erase(target));
      }
    } else if (dice < 90) {
      if (target != 0) {
        ASSERT_OK(doc.EraseSubtree(target));
      }
    } else {
      const xml::Document fragment = xml::MakeBalancedDocument(
          1 + rng.Uniform(12), 3);
      ASSERT_OK(doc.PasteFragment(target, fragment).status());
      // New handles are found via document order when needed.
    }
    if (step % 80 == 79) {
      ASSERT_OK(doc.CheckConsistency());
    }
  }
  ASSERT_OK(doc.CheckConsistency());
  // Round-trip: serialize and reload into a fresh facade.
  ASSERT_OK_AND_ASSIGN(const std::string xml, doc.ToXml(true));
  TestDb db2(1024);
  std::unique_ptr<LabelingScheme> scheme2 = GetParam().make(&db2.cache);
  LabeledDocument doc2(scheme2.get());
  ASSERT_OK(doc2.LoadXml(xml).status());
  ASSERT_OK_AND_ASSIGN(const std::string xml2, doc2.ToXml(true));
  EXPECT_EQ(xml, xml2);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, LabeledDocumentTest,
    ::testing::Values(FacadeParam{"wboxo", MakeWBox},
                      FacadeParam{"bbox", MakeBBox}),
    [](const ::testing::TestParamInfo<FacadeParam>& info) {
      return std::string(info.param.name);
    });

TEST(LabeledDocumentErrorsTest, GuardsInvalidUse) {
  TestDb db(1024);
  WBox wbox(&db.cache);
  LabeledDocument doc(&wbox);
  EXPECT_FALSE(doc.AppendChild(0, "x").ok());  // nothing alive yet
  ASSERT_OK(doc.CreateRoot("r").status());
  EXPECT_EQ(doc.CreateRoot("again").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(doc.Erase(42).ok());
  ASSERT_OK(doc.Erase(0));
  EXPECT_EQ(doc.element_count(), 0u);
}

}  // namespace
}  // namespace boxes
