#include "core/cachelog/indexed_log.h"

#include <algorithm>

#include "util/status.h"

namespace boxes {

namespace {

size_t NextPowerOfTwo(size_t value) {
  size_t result = 1;
  while (result < value) {
    result <<= 1;
  }
  return result;
}

/// Applies `delta` to the label's last component; false if the shift would
/// wrap (same staleness rule as ModificationLog::Replay).
bool ApplyDelta(Label* label, int64_t delta) {
  std::vector<uint64_t> components = label->components();
  BOXES_CHECK(!components.empty());
  if (!CheckedShift(&components.back(), delta)) {
    return false;
  }
  *label = Label::FromComponents(std::move(components));
  return true;
}

}  // namespace

IndexedModificationLog::IndexedModificationLog(size_t capacity)
    : capacity_(capacity),
      ring_size_(NextPowerOfTwo(std::max<size_t>(capacity, 1))),
      slots_(ring_size_),
      ordinal_nodes_(2 * ring_size_) {}

void IndexedModificationLog::Append(LogEntry entry) {
  entry.timestamp = ++clock_;
  if (capacity_ == 0) {
    return;  // basic caching: only the clock is kept
  }
  const size_t slot = entry.timestamp % ring_size_;
  if (entry.kind == LogEntry::Kind::kOrdinalShift) {
    slots_[slot] = std::move(entry);
    UpdateOrdinalPath(slot);
  } else {
    ValueEntry value;
    value.lo = entry.lo;
    value.hi = entry.hi;
    value.timestamp = entry.timestamp;
    value.invalidate = entry.kind == LogEntry::Kind::kInvalidate;
    tail_.push_back(std::move(value));
    slots_[slot] = std::move(entry);
    UpdateOrdinalPath(slot);  // overwrites any evicted ordinal aggregate
  }
  if (++appends_since_rebuild_ >= kTailLimit) {
    RebuildValueIndex();
  }
}

void IndexedModificationLog::RebuildValueIndex() {
  const uint64_t window_start = WindowStart();
  sorted_.clear();
  for (uint64_t ts = window_start; ts <= clock_; ++ts) {
    const LogEntry& entry = slots_[ts % ring_size_];
    if (entry.timestamp != ts ||
        entry.kind == LogEntry::Kind::kOrdinalShift) {
      continue;
    }
    ValueEntry value;
    value.lo = entry.lo;
    value.hi = entry.hi;
    value.timestamp = entry.timestamp;
    value.invalidate = entry.kind == LogEntry::Kind::kInvalidate;
    sorted_.push_back(std::move(value));
  }
  std::sort(sorted_.begin(), sorted_.end(),
            [](const ValueEntry& a, const ValueEntry& b) {
              return a.lo < b.lo;
            });
  max_hi_.assign(4 * std::max<size_t>(sorted_.size(), 1), Label());
  if (!sorted_.empty()) {
    ComputeMaxHi(1, 0, sorted_.size());
  }
  tail_.clear();
  appends_since_rebuild_ = 0;
}

void IndexedModificationLog::ComputeMaxHi(size_t node, size_t lo,
                                          size_t hi) {
  if (hi - lo == 1) {
    max_hi_[node] = sorted_[lo].hi;
    return;
  }
  const size_t mid = lo + (hi - lo) / 2;
  ComputeMaxHi(2 * node, lo, mid);
  ComputeMaxHi(2 * node + 1, mid, hi);
  max_hi_[node] = max_hi_[2 * node] < max_hi_[2 * node + 1]
                      ? max_hi_[2 * node + 1]
                      : max_hi_[2 * node];
}

void IndexedModificationLog::Stab(size_t node, size_t lo, size_t hi,
                                  uint64_t after_ts, const Label& label,
                                  const ValueEntry** best) const {
  if (lo >= hi || max_hi_[node] < label) {
    return;  // no range in this subtree reaches the label
  }
  if (hi - lo == 1) {
    const ValueEntry& entry = sorted_[lo];
    if (entry.lo <= label && label <= entry.hi &&
        entry.timestamp > after_ts && entry.timestamp >= WindowStart() &&
        (*best == nullptr || entry.timestamp < (*best)->timestamp)) {
      *best = &entry;
    }
    return;
  }
  const size_t mid = lo + (hi - lo) / 2;
  // Left half always has the smaller range starts; descend it, and skip
  // the right half entirely when its starts already exceed the label.
  Stab(2 * node, lo, mid, after_ts, label, best);
  if (sorted_[mid].lo <= label) {
    Stab(2 * node + 1, mid, hi, after_ts, label, best);
  }
}

const IndexedModificationLog::ValueEntry*
IndexedModificationLog::FindNextValue(uint64_t after_ts,
                                      const Label& label) const {
  const ValueEntry* best = nullptr;
  if (!sorted_.empty()) {
    Stab(1, 0, sorted_.size(), after_ts, label, &best);
  }
  for (const ValueEntry& entry : tail_) {
    if (entry.lo <= label && label <= entry.hi &&
        entry.timestamp > after_ts &&
        (best == nullptr || entry.timestamp < best->timestamp)) {
      best = &entry;
    }
  }
  return best;
}

ReplayResult IndexedModificationLog::Replay(uint64_t last_cached,
                                            Label* label) const {
  if (!CoversSince(last_cached)) {
    return ReplayResult::kStale;
  }
  uint64_t cursor = last_cached;
  for (;;) {
    const ValueEntry* entry = FindNextValue(cursor, *label);
    if (entry == nullptr) {
      return ReplayResult::kUsable;
    }
    if (entry->invalidate) {
      return ReplayResult::kStale;
    }
    if (!ApplyDelta(label, EntryDelta(entry->timestamp))) {
      return ReplayResult::kStale;
    }
    cursor = entry->timestamp;
  }
}

// ---------------------------------------------------------------------------
// Ordinal path: timestamp-ordered ring segment tree with min-from pruning.

void IndexedModificationLog::UpdateOrdinalPath(size_t slot) {
  size_t node = ring_size_ + slot;
  const LogEntry& entry = slots_[slot];
  OrdinalAggregate leaf;
  if (entry.timestamp != 0 &&
      entry.kind == LogEntry::Kind::kOrdinalShift) {
    leaf.has_ordinal = true;
    leaf.min_from = entry.ordinal_from;
  }
  ordinal_nodes_[node] = leaf;
  for (node /= 2; node >= 1; node /= 2) {
    const OrdinalAggregate& left = ordinal_nodes_[2 * node];
    const OrdinalAggregate& right = ordinal_nodes_[2 * node + 1];
    OrdinalAggregate merged;
    merged.has_ordinal = left.has_ordinal || right.has_ordinal;
    merged.min_from =
        left.has_ordinal
            ? (right.has_ordinal ? std::min(left.min_from, right.min_from)
                                 : left.min_from)
            : right.min_from;
    ordinal_nodes_[node] = merged;
    if (node == 1) {
      break;
    }
  }
}

uint64_t IndexedModificationLog::DescendOrdinal(size_t node, size_t node_lo,
                                                size_t node_hi, size_t lo,
                                                size_t hi, uint64_t after_ts,
                                                uint64_t ordinal) const {
  if (hi <= node_lo || node_hi <= lo) {
    return 0;
  }
  const OrdinalAggregate& aggregate = ordinal_nodes_[node];
  if (!aggregate.has_ordinal || ordinal < aggregate.min_from) {
    return 0;
  }
  if (node_hi - node_lo == 1) {
    const LogEntry& entry = slots_[node_lo];
    if (entry.timestamp > after_ts && entry.timestamp <= clock_ &&
        entry.kind == LogEntry::Kind::kOrdinalShift &&
        ordinal >= entry.ordinal_from) {
      return entry.timestamp;
    }
    return 0;
  }
  const size_t mid = node_lo + (node_hi - node_lo) / 2;
  const uint64_t left = DescendOrdinal(2 * node, node_lo, mid, lo, hi,
                                       after_ts, ordinal);
  if (left != 0) {
    return left;
  }
  return DescendOrdinal(2 * node + 1, mid, node_hi, lo, hi, after_ts,
                        ordinal);
}

uint64_t IndexedModificationLog::FindNextOrdinal(uint64_t after_ts,
                                                 uint64_t ordinal) const {
  if (after_ts >= clock_) {
    return 0;
  }
  const uint64_t first_ts = after_ts + 1;
  const size_t first_slot = first_ts % ring_size_;
  const size_t last_slot = clock_ % ring_size_;
  if (clock_ - first_ts + 1 >= ring_size_) {
    const uint64_t found = DescendOrdinal(1, 0, ring_size_, first_slot,
                                          ring_size_, after_ts, ordinal);
    if (found != 0) {
      return found;
    }
    return DescendOrdinal(1, 0, ring_size_, 0, first_slot, after_ts,
                          ordinal);
  }
  if (first_slot <= last_slot) {
    return DescendOrdinal(1, 0, ring_size_, first_slot, last_slot + 1,
                          after_ts, ordinal);
  }
  const uint64_t found = DescendOrdinal(1, 0, ring_size_, first_slot,
                                        ring_size_, after_ts, ordinal);
  if (found != 0) {
    return found;
  }
  return DescendOrdinal(1, 0, ring_size_, 0, last_slot + 1, after_ts,
                        ordinal);
}

ReplayResult IndexedModificationLog::ReplayOrdinal(uint64_t last_cached,
                                                   uint64_t* ordinal) const {
  if (!CoversSince(last_cached)) {
    return ReplayResult::kStale;
  }
  uint64_t cursor = last_cached;
  for (;;) {
    const uint64_t ts = FindNextOrdinal(cursor, *ordinal);
    if (ts == 0) {
      return ReplayResult::kUsable;
    }
    if (!CheckedShift(ordinal, EntryDelta(ts))) {
      return ReplayResult::kStale;
    }
    cursor = ts;
  }
}

}  // namespace boxes
