#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/status.h"

namespace boxes {

Histogram::Histogram(const Histogram& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  buckets_ = other.buckets_;
  count_ = other.count_;
  sum_ = other.sum_;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) {
    return *this;
  }
  std::scoped_lock lock(mu_, other.mu_);
  buckets_ = other.buckets_;
  count_ = other.count_;
  sum_ = other.sum_;
  return *this;
}

void Histogram::Add(uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[value];
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (this == &other) {
    // Self-merge: doubling every bucket without aliasing the iteration.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [value, n] : buckets_) {
      (void)value;
      n *= 2;
    }
    count_ *= 2;
    sum_ *= 2;
    return;
  }
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [value, n] : other.buckets_) {
    buckets_[value] += n;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

uint64_t Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.empty() ? 0 : buckets_.begin()->first;
}

uint64_t Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

double Histogram::MeanLocked() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return MeanLocked();
}

uint64_t Histogram::PercentileLocked(double fraction) const {
  BOXES_CHECK(fraction > 0.0 && fraction <= 1.0);
  if (count_ == 0) {
    return 0;
  }
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (const auto& [value, n] : buckets_) {
    seen += n;
    if (seen >= target) {
      return value;
    }
  }
  return buckets_.rbegin()->first;
}

uint64_t Histogram::Percentile(double fraction) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PercentileLocked(fraction);
}

double Histogram::FractionAbove(uint64_t value) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    return 0.0;
  }
  uint64_t above = 0;
  for (auto it = buckets_.upper_bound(value); it != buckets_.end(); ++it) {
    above += it->second;
  }
  return static_cast<double>(above) / static_cast<double>(count_);
}

std::vector<Histogram::CcdfPoint> Histogram::Ccdf(size_t max_points) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CcdfPoint> points;
  if (count_ == 0) {
    return points;
  }
  std::vector<uint64_t> costs;
  if (max_points <= 1 || buckets_.size() == 1) {
    // Degenerate sampling budget (or a single distinct cost): the only
    // meaningful point is the maximum, whose CCDF value is 0.
    costs.push_back(buckets_.rbegin()->first);
  } else if (buckets_.size() <= max_points) {
    for (const auto& [value, n] : buckets_) {
      (void)n;
      costs.push_back(value);
    }
  } else {
    // Log-spaced sample costs from 1 to max. The rounded samples may all
    // fall short of the true maximum, so the max bucket is always appended:
    // without it the final CCDF point would sit above zero and the plotted
    // tail would be cut off.
    const uint64_t max_cost = buckets_.rbegin()->first;
    const double lo = 0.0;
    const double hi =
        std::log10(static_cast<double>(std::max<uint64_t>(2, max_cost)));
    uint64_t prev = 0;
    for (size_t i = 0; i + 1 < max_points; ++i) {
      const double exp_val =
          lo + (hi - lo) * static_cast<double>(i) /
                   static_cast<double>(max_points - 1);
      const uint64_t cost = static_cast<uint64_t>(std::pow(10.0, exp_val));
      if (cost != prev && cost < max_cost) {
        costs.push_back(cost);
        prev = cost;
      }
    }
    costs.push_back(max_cost);
  }
  // Single reverse sweep to compute all "fraction above" values.
  uint64_t above = 0;
  auto bucket_it = buckets_.rbegin();
  for (auto cost_it = costs.rbegin(); cost_it != costs.rend(); ++cost_it) {
    while (bucket_it != buckets_.rend() && bucket_it->first > *cost_it) {
      above += bucket_it->second;
      ++bucket_it;
    }
    points.push_back(
        {*cost_it, static_cast<double>(above) / static_cast<double>(count_)});
  }
  std::reverse(points.begin(), points.end());
  return points;
}

std::string Histogram::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  char line[256];
  std::snprintf(line, sizeof(line),
                "count=%llu mean=%.3f min=%llu median=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), MeanLocked(),
                static_cast<unsigned long long>(
                    buckets_.empty() ? 0 : buckets_.begin()->first),
                static_cast<unsigned long long>(
                    count_ == 0 ? 0 : PercentileLocked(0.5)),
                static_cast<unsigned long long>(
                    count_ == 0 ? 0 : PercentileLocked(0.99)),
                static_cast<unsigned long long>(
                    buckets_.empty() ? 0 : buckets_.rbegin()->first));
  return line;
}

}  // namespace boxes
