#ifndef BOXES_REPLICATION_TRANSPORT_H_
#define BOXES_REPLICATION_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include "util/status.h"

namespace boxes::replication {

/// Fault model of one unidirectional primary→standby link. All faults are
/// seeded and deterministic, same discipline as FaultInjectionPageStore:
/// a failing sweep seed reproduces exactly.
struct LinkFaultOptions {
  /// Frame silently lost in flight.
  double drop_probability = 0.0;
  /// Frame delivered twice.
  double duplicate_probability = 0.0;
  /// Frame delivered after the frame sent next (pairwise swap).
  double reorder_probability = 0.0;
  /// Frame delivered truncated/scribbled; the receiver's CRCs catch it.
  double tear_probability = 0.0;
  uint64_t seed = 1;
};

/// An in-process unreliable datagram link. Send() enqueues a frame toward
/// the receiver subject to the configured faults; Receive() pops delivered
/// frames. Deliberately UDP-shaped: a fault-free Send still returns OK
/// whether or not the frame survives the link — the shipping protocol's
/// reliability lives entirely on the receive side (gap detection +
/// catch-up, standby_applier.h), so the transport never has to be trusted.
///
/// The one observable failure is a downed link (SetDown — a network
/// partition or a dead standby): Send returns Unavailable so the shipper
/// can count unreachable ships, and the frame is lost like any drop.
///
/// Single-threaded by design, like the harnesses that drive it; the
/// deterministic fault sequence IS the point, and a lock-free MPSC queue
/// would buy nothing here.
class FaultyLink {
 public:
  explicit FaultyLink(LinkFaultOptions options = {});

  FaultyLink(const FaultyLink&) = delete;
  FaultyLink& operator=(const FaultyLink&) = delete;

  /// Ships one encoded frame. Unavailable while the link is down.
  Status Send(std::vector<uint8_t> frame);

  /// Pops the next delivered frame into `out`; false when the link is
  /// drained. Down links still drain what was delivered before the cut.
  bool Receive(std::vector<uint8_t>* out);

  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

  /// True when nothing is queued for delivery.
  bool drained() const { return queue_.empty(); }

  uint64_t sent() const { return sent_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t reordered() const { return reordered_; }
  uint64_t torn() const { return torn_; }
  uint64_t delivered() const { return delivered_; }

 private:
  bool Roll(double probability);

  const LinkFaultOptions options_;
  std::mt19937_64 rng_;
  std::deque<std::vector<uint8_t>> queue_;
  bool down_ = false;
  uint64_t sent_ = 0;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t reordered_ = 0;
  uint64_t torn_ = 0;
  uint64_t delivered_ = 0;
};

}  // namespace boxes::replication

#endif  // BOXES_REPLICATION_TRANSPORT_H_
