#include "util/biguint.h"

#include <cstdint>

#include "gtest/gtest.h"
#include "util/random.h"

namespace boxes {
namespace {

TEST(BigUintTest, ZeroProperties) {
  BigUint zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToDecimalString(), "0");
  EXPECT_EQ(zero.ToUint64Truncated(), 0u);
}

TEST(BigUintTest, SmallValues) {
  BigUint v(12345);
  EXPECT_FALSE(v.IsZero());
  EXPECT_EQ(v.BitLength(), 14u);
  EXPECT_EQ(v.ToDecimalString(), "12345");
  EXPECT_EQ(v.ToUint64Truncated(), 12345u);
}

TEST(BigUintTest, AdditionWithCarry) {
  BigUint a(UINT64_MAX);
  BigUint sum = a.Add(BigUint(1));
  EXPECT_EQ(sum.BitLength(), 65u);
  EXPECT_EQ(sum.ToDecimalString(), "18446744073709551616");
  EXPECT_FALSE(sum.FitsUint64());
}

TEST(BigUintTest, SubtractionWithBorrow) {
  BigUint big = BigUint::PowerOfTwo(64);
  BigUint diff = big.Sub(BigUint(1));
  EXPECT_EQ(diff, BigUint(UINT64_MAX));
}

TEST(BigUintTest, PowerOfTwo) {
  EXPECT_EQ(BigUint::PowerOfTwo(0), BigUint(1));
  EXPECT_EQ(BigUint::PowerOfTwo(10), BigUint(1024));
  EXPECT_EQ(BigUint::PowerOfTwo(200).BitLength(), 201u);
}

TEST(BigUintTest, ShiftRoundTrip) {
  BigUint v(0x123456789abcdef0ULL);
  for (uint32_t shift : {1u, 7u, 63u, 64u, 65u, 130u}) {
    EXPECT_EQ(v.ShiftLeft(shift).ShiftRight(shift), v) << "shift=" << shift;
  }
}

TEST(BigUintTest, ShiftRightDropsLowBits) {
  BigUint v(0b1011);
  EXPECT_EQ(v.ShiftRight(1), BigUint(0b101));
  EXPECT_EQ(v.ShiftRight(4), BigUint(0));
}

TEST(BigUintTest, Halves) {
  EXPECT_EQ(BigUint(10).Half(), BigUint(5));
  EXPECT_EQ(BigUint(11).Half(), BigUint(5));
  EXPECT_EQ(BigUint(11).CeilHalf(), BigUint(6));
  EXPECT_EQ(BigUint(10).CeilHalf(), BigUint(5));
}

TEST(BigUintTest, MulU64) {
  BigUint v(UINT64_MAX);
  BigUint product = v.MulU64(UINT64_MAX);
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  const BigUint expected = BigUint::PowerOfTwo(128)
                               .Sub(BigUint::PowerOfTwo(65))
                               .Add(BigUint(1));
  EXPECT_EQ(product, expected);
  EXPECT_EQ(v.MulU64(0), BigUint(0));
}

TEST(BigUintTest, CompareOrdersNumerically) {
  BigUint small(100);
  BigUint large = BigUint::PowerOfTwo(100);
  EXPECT_TRUE(small < large);
  EXPECT_TRUE(large > small);
  EXPECT_TRUE(small == BigUint(100));
  EXPECT_TRUE(BigUint(0) < small);
}

TEST(BigUintTest, SerializeRoundTrip) {
  BigUint v = BigUint::PowerOfTwo(150).Add(BigUint(987654321));
  uint8_t buf[4 * 8];
  v.Serialize(buf, 4);
  EXPECT_EQ(BigUint::Deserialize(buf, 4), v);
}

TEST(BigUintTest, SerializeZeroPads) {
  BigUint v(7);
  uint8_t buf[3 * 8];
  v.Serialize(buf, 3);
  for (size_t i = 8; i < sizeof(buf); ++i) {
    EXPECT_EQ(buf[i], 0) << i;
  }
  EXPECT_EQ(BigUint::Deserialize(buf, 3), v);
}

TEST(BigUintTest, DecimalStringMultipleChunks) {
  // 10^9 boundary cases exercise the chunked conversion.
  EXPECT_EQ(BigUint(1000000000ULL).ToDecimalString(), "1000000000");
  EXPECT_EQ(BigUint(999999999ULL).ToDecimalString(), "999999999");
  EXPECT_EQ(BigUint(1000000001ULL).ToDecimalString(), "1000000001");
  EXPECT_EQ(BigUint(UINT64_MAX).ToDecimalString(), "18446744073709551615");
}

// Property: BigUint arithmetic on values that fit in 128 bits agrees with
// native __int128 arithmetic.
TEST(BigUintPropertyTest, AgreesWithNativeArithmetic) {
  Random rng(20260708);
  for (int iter = 0; iter < 2000; ++iter) {
    const uint64_t a_lo = rng.Next();
    const uint64_t a_hi = rng.Next() >> 1;  // keep sums within 128 bits
    const uint64_t b_lo = rng.Next();
    const uint64_t b_hi = rng.Next() >> 1;
    const unsigned __int128 a =
        (static_cast<unsigned __int128>(a_hi) << 64) | a_lo;
    const unsigned __int128 b =
        (static_cast<unsigned __int128>(b_hi) << 64) | b_lo;
    const BigUint ba = BigUint(a_hi).ShiftLeft(64).Add(BigUint(a_lo));
    const BigUint bb = BigUint(b_hi).ShiftLeft(64).Add(BigUint(b_lo));

    // Addition.
    const unsigned __int128 sum = a + b;
    const BigUint bsum = ba.Add(bb);
    EXPECT_EQ(bsum.ToUint64Truncated(), static_cast<uint64_t>(sum));
    EXPECT_EQ(bsum.ShiftRight(64).ToUint64Truncated(),
              static_cast<uint64_t>(sum >> 64));

    // Subtraction (larger minus smaller).
    const BigUint& hi = a >= b ? ba : bb;
    const BigUint& lo = a >= b ? bb : ba;
    const unsigned __int128 diff = a >= b ? a - b : b - a;
    const BigUint bdiff = hi.Sub(lo);
    EXPECT_EQ(bdiff.ToUint64Truncated(), static_cast<uint64_t>(diff));
    EXPECT_EQ(bdiff.ShiftRight(64).ToUint64Truncated(),
              static_cast<uint64_t>(diff >> 64));

    // Comparison.
    EXPECT_EQ(ba < bb, a < b);
    EXPECT_EQ(ba == bb, a == b);
  }
}

}  // namespace
}  // namespace boxes
