#ifndef BOXES_CORE_BBOX_BBOX_H_
#define BOXES_CORE_BBOX_BBOX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/bbox/bbox_node.h"
#include "core/common/labeling_scheme.h"
#include "lidf/lidf.h"
#include "storage/page_cache.h"
#include "util/status.h"

namespace boxes {

/// Configuration of a B-BOX instance.
struct BBoxOptions {
  /// B-BOX-O: maintain size fields in internal entries so ordinal labels
  /// can be computed (paper §5, "Ordinal labeling support"). Halves the
  /// internal fan-out and makes every update walk to the root.
  bool ordinal = false;

  /// Minimum-fill divisor: nodes keep >= capacity/divisor entries.
  /// 2 = the standard B-tree bound (recommended for insert-mostly
  /// workloads); 4 = the relaxed bound that gives O(1) amortized updates
  /// under mixed insertions and deletions (paper §5).
  uint32_t min_fill_divisor = 2;

  /// Fraction of capacity filled by bulk loading.
  double bulk_fill_fraction = 0.75;
};

/// B-BOX: Back-linked B-tree for Ordering XML (paper §5).
///
/// A keyless B-tree over the label records. No label values are stored
/// anywhere; the label of a record is the vector of child ordinals along
/// the root-to-leaf path, reconstructed on demand by walking the
/// child-to-parent back-links. Updates therefore never relabel anything —
/// they are plain B-tree maintenance.
///
/// Costs: lookup O(log_B N) (+1 LIDF I/O), insert/delete O(1) amortized and
/// O(B log_B N) worst case.
class BBox : public LabelingScheme {
 public:
  explicit BBox(PageCache* cache, BBoxOptions options = {});
  ~BBox() override;

  BBox(const BBox&) = delete;
  BBox& operator=(const BBox&) = delete;

  std::string name() const override {
    return options_.ordinal ? "B-BOX-O" : "B-BOX";
  }

  StatusOr<Label> Lookup(Lid lid) override;
  StatusOr<NewElement> InsertElementBefore(Lid lid) override;
  StatusOr<NewElement> InsertFirstElement() override;
  Status Delete(Lid lid) override;
  Status BulkLoad(const xml::Document& doc,
                  std::vector<NewElement>* lids_out) override;
  Status InsertSubtreeBefore(Lid before, const xml::Document& subtree,
                             std::vector<NewElement>* lids_out) override;
  Status DeleteSubtree(Lid root_start, Lid root_end) override;
  StatusOr<int> Compare(Lid a, Lid b) override;
  bool SupportsOrdinal() const override { return options_.ordinal; }
  StatusOr<uint64_t> OrdinalLookup(Lid lid) override;
  StatusOr<SchemeStats> GetStats() override;
  Status CheckInvariants() override;

  /// Persists all in-memory metadata into a metadata chain (see
  /// WBox::Checkpoint).
  StatusOr<PageId> Checkpoint() override;

  /// Restores a checkpoint into this freshly constructed instance.
  Status Restore(PageId checkpoint_head) override;

  const BBoxParams& params() const { return params_; }
  const BBoxOptions& options() const { return options_; }
  Lidf* lidf() override { return &lidf_; }
  /// Height in levels (single leaf = 1); 0 when empty.
  uint32_t height() const { return height_; }
  uint64_t live_labels() const { return live_labels_; }
  /// Structural reorganization counters (for benches and tests).
  uint64_t split_count() const { return split_count_; }
  uint64_t merge_count() const { return merge_count_; }

 protected:
  /// Batch ops sort by the leaf holding the anchor's record: B-BOX never
  /// relabels, so the only batch win is block locality, and the back-link
  /// pointer in the LIDF is exactly that block.
  uint64_t BatchLocalityKey(const BatchOp& op) override;

 private:
  /// A (lid -> leaf page, slot) resolution.
  Status LocateLid(Lid lid, PageId* leaf_page, int* slot);

  /// The label-component prefix contributed by the path root -> `page`
  /// (empty when `page` is the root). Walks back-links upward.
  Status PathComponents(PageId page, std::vector<uint64_t>* components);

  /// Label of the record at (leaf_page, slot).
  StatusOr<Label> LabelOfSlot(PageId leaf_page, int slot);

  /// Low-level insert-before.
  Status InsertBefore(Lid lid_new, Lid lid_old);

  /// Splits `page` (which is full), growing the root if needed. The upper
  /// half moves to a new right sibling; back-links / LIDF pointers of
  /// moved entries are updated (the paper's O(B) split cost).
  Status SplitNode(PageId page);

  /// Ensures `page` can take one more entry, splitting preemptively.
  Status EnsureRoom(PageId page);

  /// Creates a new root above the current one.
  Status GrowRoot();

  /// Walks from `leaf_page` to the root adding `delta` to the size field
  /// of each entry on the path; with `ordinal_out`, also accumulates the
  /// ordinal position of (leaf slot `slot`). Sizes are only written in
  /// ordinal mode, but the ordinal accumulation needs them, so callers
  /// must pass ordinal_out = nullptr unless options_.ordinal.
  Status AdjustPathSizes(PageId leaf_page, int slot, int64_t delta,
                         uint64_t* ordinal_out);

  /// Restores minimum-fill along the path from `page` upward after a
  /// deletion (borrow from a sibling, else merge; paper §5).
  Status RebalanceUpward(PageId page);

  /// Handles an underfull root: collapses single-child internal roots.
  /// Freed root pages are appended to `freed_out` when provided.
  Status CollapseRootIfNeeded(std::vector<PageId>* freed_out = nullptr);

  /// Merges or redistributes `left`/`right` (adjacent children of `parent`
  /// at entries `left_idx`, `left_idx`+1). Sets *merged when the right
  /// node was absorbed; `*freed_page` (optional) receives its page id.
  Status MergeOrRedistribute(PageId parent, uint16_t left_idx, bool* merged,
                             PageId* freed_page = nullptr);

  /// Updates LIDF pointers (leaf) or child back-links (internal) for the
  /// `moved` entries now living in `new_page`.
  Status FixMovedEntries(PageId new_page, bool is_leaf,
                         const std::vector<uint64_t>& moved);

  // --- bulk machinery (bbox_bulk.cc) ---

  struct FlatRecord {
    Lid lid = kInvalidLid;
  };

  struct LevelNode {
    PageId page = kInvalidPageId;
    uint64_t size = 0;  // records below
  };

  /// Allocates LIDs for `doc` and flattens its tags into label order.
  Status FlattenDocument(const xml::Document& doc,
                         std::vector<FlatRecord>* records,
                         std::vector<NewElement>* lids_out);

  /// Builds packed leaves for `records`; appends to `leaves`.
  Status BuildLeaves(const std::vector<FlatRecord>& records,
                     std::vector<LevelNode>* leaves);

  /// Builds internal levels above `nodes` (at `level`) until one node
  /// remains; sets back-links and sizes. Returns the top node and height.
  Status BuildTree(std::vector<LevelNode> nodes, uint32_t level,
                   PageId* top, uint32_t* top_height);

  /// Frees all pages of the subtree rooted at `page` and optionally frees
  /// the LIDs of the records below it.
  Status FreeSubtree(PageId page, bool free_lids, uint64_t* freed_records);

  // --- subtree ops (bbox_subtree.cc) ---

  /// Result of ripping the tree open before a record (paper §5).
  struct RipResult {
    /// The node at level `levels`-1 that starts the right half; the
    /// grafted subtree's root is inserted immediately before it in its
    /// parent.
    PageId right_top = kInvalidPageId;
    /// Every node split or created by the rip, bottom-up; repair
    /// candidates.
    std::vector<PageId> touched;
  };

  /// "Rips" the tree along the boundary immediately before
  /// (leaf_page, slot), splitting `levels` levels starting at the leaf.
  /// Requires height() > levels.
  Status RipAt(PageId leaf_page, int slot, uint32_t levels,
               RipResult* result);

  /// Restores minimum fill for each candidate page (skipping ones freed by
  /// earlier repairs), merging upward as needed, then collapses the root.
  Status RepairCandidates(const std::vector<PageId>& candidates);

  /// Recomputes the size field of every entry along the path from `page`
  /// (inclusive) to the root. Ordinal mode only.
  Status RecomputeSizesUpward(PageId page);

  void EmitLeafShift(const std::vector<uint64_t>& leaf_prefix, uint64_t from,
                     uint64_t to, int64_t delta);
  Status EmitTopmostInvalidation();
  void NoteReorganization(PageId parent, uint16_t index, uint32_t level);

  PageCache* cache_;  // not owned
  const BBoxOptions options_;
  const BBoxParams params_;
  Lidf lidf_;

  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t live_labels_ = 0;
  uint64_t split_count_ = 0;
  uint64_t merge_count_ = 0;

  /// Topmost structural reorganization in the current operation, for §6
  /// invalidation logging.
  struct Reorganization {
    bool any = false;
    bool whole_tree = false;
    PageId parent = kInvalidPageId;
    uint16_t index = 0;
    uint32_t level = 0;
  };
  Reorganization op_reorg_;
};

}  // namespace boxes

#endif  // BOXES_CORE_BBOX_BBOX_H_
