file(REMOVE_RECURSE
  "CMakeFiles/cached_queries.dir/cached_queries.cpp.o"
  "CMakeFiles/cached_queries.dir/cached_queries.cpp.o.d"
  "cached_queries"
  "cached_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
