// Wall-clock microbenchmarks (google-benchmark) of the primitive
// operations: Lookup, InsertElementBefore, Compare — plus the group-commit
// write pipeline (BM_BatchedInsert), which runs against a real file store
// so its sync_calls_per_op counter reflects actual fdatasync barriers. The
// paper's metric is block I/Os (see the fig* benches); this binary
// complements it with CPU time of the in-memory simulation, useful for
// regression tracking.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/common/update_buffer.h"
#include "storage/metadata_io.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

constexpr uint64_t kElements = 20000;

struct Fixture {
  explicit Fixture(const std::string& scheme_name) : unit(kDefaultPageSize) {
    CheckOkOrDie(MakeScheme(scheme_name, &unit), "MakeScheme");
    unit.scheme->SetMetrics(&GlobalMetrics());
    const xml::Document doc = xml::MakeRandomDocument(kElements, 7, 13);
    CheckOkOrDie(unit.scheme->BulkLoad(doc, &lids), "BulkLoad");
    // Flush here so pages dirtied by the benchmark loop are attributed to
    // the phase that re-dirties them (search/relabel/rebalance/...), not to
    // the lingering bulk_load dirty state.
    CheckOkOrDie(unit.cache->FlushAll(), "FlushAll");
  }

  ~Fixture() {
    // Flush so dirty pages are charged (to the phase that dirtied them),
    // then fold this scheme's attribution into the global registry for
    // --metrics_json.
    CheckOkOrDie(unit.cache->FlushAll(), "FlushAll");
    FoldPhaseIoIntoGlobalMetrics(unit);
  }

  SchemeUnderTest unit;
  std::vector<NewElement> lids;
};

void BM_Lookup(benchmark::State& state, const std::string& scheme_name) {
  Fixture fixture(scheme_name);
  Random rng(1);
  for (auto _ : state) {
    const NewElement& element = fixture.lids[rng.Uniform(kElements)];
    StatusOr<Label> label = fixture.unit.scheme->Lookup(element.start);
    if (!label.ok()) {
      state.SkipWithError(label.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(label);
  }
}

void BM_Insert(benchmark::State& state, const std::string& scheme_name) {
  Fixture fixture(scheme_name);
  Random rng(2);
  for (auto _ : state) {
    const NewElement& anchor = fixture.lids[1 + rng.Uniform(kElements - 1)];
    StatusOr<NewElement> inserted =
        fixture.unit.scheme->InsertElementBefore(anchor.start);
    if (!inserted.ok()) {
      state.SkipWithError(inserted.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(inserted);
  }
}

void BM_Compare(benchmark::State& state, const std::string& scheme_name) {
  Fixture fixture(scheme_name);
  Random rng(3);
  for (auto _ : state) {
    const NewElement& a = fixture.lids[rng.Uniform(kElements)];
    const NewElement& b = fixture.lids[rng.Uniform(kElements)];
    StatusOr<int> cmp = fixture.unit.scheme->Compare(a.start, b.start);
    if (!cmp.ok()) {
      state.SkipWithError(cmp.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(cmp);
  }
}

BENCHMARK_CAPTURE(BM_Lookup, wbox, std::string("wbox"));
BENCHMARK_CAPTURE(BM_Lookup, wbox_o, std::string("wbox-o"));
BENCHMARK_CAPTURE(BM_Lookup, bbox, std::string("bbox"));
BENCHMARK_CAPTURE(BM_Lookup, bbox_o, std::string("bbox-o"));
BENCHMARK_CAPTURE(BM_Lookup, naive_16, std::string("naive-16"));
BENCHMARK_CAPTURE(BM_Insert, wbox, std::string("wbox"));
BENCHMARK_CAPTURE(BM_Insert, wbox_o, std::string("wbox-o"));
BENCHMARK_CAPTURE(BM_Insert, bbox, std::string("bbox"));
BENCHMARK_CAPTURE(BM_Insert, bbox_o, std::string("bbox-o"));
BENCHMARK_CAPTURE(BM_Insert, naive_16, std::string("naive-16"));
BENCHMARK_CAPTURE(BM_Compare, wbox, std::string("wbox"));
BENCHMARK_CAPTURE(BM_Compare, bbox, std::string("bbox"));
BENCHMARK_CAPTURE(BM_Compare, naive_16, std::string("naive-16"));

// Insert throughput through the UpdateBuffer at a given batch size, on a
// real FilePageStore with one durable checkpoint commit per flush. Each
// iteration enqueues one insert; flushes fire at the batch threshold. The
// sync_calls_per_op counter is the amortization headline: it must strictly
// decrease as the batch grows (one commit = two fdatasyncs, paid once per
// batch instead of once per op).
void BM_BatchedInsert(benchmark::State& state,
                      const std::string& scheme_name, size_t batch) {
  const std::string path = "/tmp/boxes_bench_batch_" + scheme_name + "_" +
                           std::to_string(batch) + ".db";
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  FilePageStore store(path, kDefaultPageSize);
  CheckOkOrDie(store.status(), "FilePageStore");
  PageCache cache(&store);
  CheckOkOrDie(InitializeSuperblock(&cache), "InitializeSuperblock");
  std::unique_ptr<LabelingScheme> scheme;
  CheckOkOrDie(MakeSchemeOnCache(scheme_name, &cache, &scheme),
               "MakeScheme");
  scheme->SetMetrics(&GlobalMetrics());

  UpdateBuffer buffer(scheme.get(),
                      {.flush_threshold = batch, .auto_flush = true});
  buffer.SetCommitHook([&]() -> Status {
    BOXES_ASSIGN_OR_RETURN(const PageId head, scheme->Checkpoint());
    return CommitCheckpoint(&cache, head);
  });

  StatusOr<UpdateBuffer::Ticket> root_ticket = buffer.InsertFirstElement();
  CheckOkOrDie(root_ticket.status(), "InsertFirstElement");
  CheckOkOrDie(buffer.Flush(), "bootstrap flush");
  StatusOr<NewElement> root = buffer.Result(*root_ticket);
  CheckOkOrDie(root.status(), "bootstrap result");

  const uint64_t syncs_before = store.counters().sync_calls;
  uint64_t ops = 0;
  for (auto _ : state) {
    // Same anchor every op: root.end is live at every batch start and
    // never itself targeted, so the batch contract holds at any size.
    StatusOr<UpdateBuffer::Ticket> ticket =
        buffer.InsertElementBefore(root->end);
    if (!ticket.ok()) {
      state.SkipWithError(ticket.status().ToString().c_str());
      return;
    }
    ++ops;
  }
  CheckOkOrDie(buffer.Flush(), "final flush");
  const double syncs =
      static_cast<double>(store.counters().sync_calls - syncs_before);
  state.counters["sync_calls_per_op"] =
      benchmark::Counter(ops > 0 ? syncs / static_cast<double>(ops) : 0.0);
  state.counters["batch"] =
      benchmark::Counter(static_cast<double>(batch));
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
}

BENCHMARK_CAPTURE(BM_BatchedInsert, wbox_b1, std::string("wbox"), 1);
BENCHMARK_CAPTURE(BM_BatchedInsert, wbox_b64, std::string("wbox"), 64);
BENCHMARK_CAPTURE(BM_BatchedInsert, wbox_b4096, std::string("wbox"), 4096);
BENCHMARK_CAPTURE(BM_BatchedInsert, bbox_b1, std::string("bbox"), 1);
BENCHMARK_CAPTURE(BM_BatchedInsert, bbox_b64, std::string("bbox"), 64);
BENCHMARK_CAPTURE(BM_BatchedInsert, bbox_b4096, std::string("bbox"), 4096);
BENCHMARK_CAPTURE(BM_BatchedInsert, naive_16_b1, std::string("naive-16"), 1);
BENCHMARK_CAPTURE(BM_BatchedInsert, naive_16_b64, std::string("naive-16"),
                  64);
BENCHMARK_CAPTURE(BM_BatchedInsert, naive_16_b4096, std::string("naive-16"),
                  4096);

}  // namespace
}  // namespace boxes::bench

// Hand-rolled BENCHMARK_MAIN(): --metrics_json and --smoke are stripped
// before benchmark::Initialize because ReportUnrecognizedArguments would
// reject them. --smoke maps onto a short --benchmark_min_time, the
// google-benchmark equivalent of the FlagParser benches' SmokeCap.
int main(int argc, char** argv) {
  const std::string metrics_path =
      boxes::bench::ExtractMetricsJsonFlag(&argc, argv);
  const bool smoke = boxes::bench::ExtractSmokeFlag(&argc, argv);
  std::vector<char*> args(argv, argv + argc);
  char min_time_flag[] = "--benchmark_min_time=0.02";
  if (smoke) {
    args.push_back(min_time_flag);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  boxes::bench::MaybeWriteMetricsJson(metrics_path);
  return 0;
}
