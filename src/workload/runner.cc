#include "workload/runner.h"

namespace boxes::workload {

Status MeasureOp(PageCache* cache, const std::function<Status()>& op,
                 RunStats* stats) {
  const IoStats before = cache->stats();
  cache->BeginOp();
  const Status status = op();
  BOXES_RETURN_IF_ERROR(cache->EndOp());
  BOXES_RETURN_IF_ERROR(status);
  const IoStats delta = cache->stats().Delta(before);
  stats->per_op_cost.Add(delta.total());
  stats->totals.reads += delta.reads;
  stats->totals.writes += delta.writes;
  return Status::OK();
}

Status UnmeasuredOp(PageCache* cache, const std::function<Status()>& op) {
  cache->BeginOp();
  const Status status = op();
  BOXES_RETURN_IF_ERROR(cache->EndOp());
  return status;
}

}  // namespace boxes::workload
