// Robustness of the XML parser: arbitrary garbage, truncations, and
// adversarial nesting must produce error Statuses, never crashes or
// invalid documents.

#include <string>

#include "gtest/gtest.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace boxes::xml {
namespace {

TEST(ParserRobustnessTest, RandomBytesNeverCrash) {
  Random rng(31337);
  const char alphabet[] = "<>/= \"'ab?!-[]";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    const uint64_t len = rng.Uniform(60);
    for (uint64_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    StatusOr<Document> doc = ParseDocument(input);
    if (doc.ok()) {
      EXPECT_OK(doc->Validate());
    }
  }
}

TEST(ParserRobustnessTest, TruncationsOfValidDocumentFailCleanly) {
  const Document generated = MakeRandomDocument(100, 5, 77);
  const std::string text = WriteDocument(generated, true);
  for (size_t cut = 0; cut < text.size(); cut += 7) {
    StatusOr<Document> doc = ParseDocument(text.substr(0, cut));
    if (doc.ok()) {
      EXPECT_OK(doc->Validate());
    }
  }
  // The full text parses.
  ASSERT_OK(ParseDocument(text).status());
}

TEST(ParserRobustnessTest, DeepNestingParses) {
  std::string input;
  constexpr int kDepth = 5000;
  for (int i = 0; i < kDepth; ++i) {
    input += "<d>";
  }
  for (int i = 0; i < kDepth; ++i) {
    input += "</d>";
  }
  ASSERT_OK_AND_ASSIGN(const Document doc, ParseDocument(input));
  EXPECT_EQ(doc.element_count(), static_cast<uint64_t>(kDepth));
  EXPECT_EQ(doc.Depth(), static_cast<uint64_t>(kDepth));
}

TEST(ParserRobustnessTest, ErrorsCarryLineNumbers) {
  const Status status =
      ParseDocument("<a>\n<b>\n</mismatch>\n</a>").status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.ToString();
}

TEST(ParserRobustnessTest, MutatedDocumentsNeverYieldInvalidTrees) {
  const Document generated = MakeRandomDocument(60, 4, 5);
  const std::string text = WriteDocument(generated, false);
  Random rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = text;
    const int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(32 + rng.Uniform(95));
    }
    StatusOr<Document> doc = ParseDocument(mutated);
    if (doc.ok()) {
      EXPECT_OK(doc->Validate());
    }
  }
}

}  // namespace
}  // namespace boxes::xml
