#include "lidf/lidf.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"

namespace boxes {

Lidf::Lidf(PageCache* cache, size_t payload_size)
    : cache_(cache),
      payload_size_(payload_size),
      records_per_page_(cache->page_size() / payload_size) {
  BOXES_CHECK(payload_size_ >= 8);
  BOXES_CHECK(records_per_page_ >= 1);
}

StatusOr<Lid> Lidf::Allocate() {
  ScopedPhase phase(cache_, IoPhase::kLidfDeref);
  Lid lid;
  if (!free_list_.empty()) {
    lid = free_list_.back();
    free_list_.pop_back();
  } else {
    BOXES_RETURN_IF_ERROR(EnsureTailSlots(1));
    lid = next_unused_++;
  }
  if (lid >= live_.size()) {
    live_.resize(lid + 1, false);
  }
  live_[lid] = true;
  ++live_count_;
  StatusOr<uint8_t*> slot = SlotForWrite(lid);
  if (!slot.ok()) {
    return slot.status();
  }
  std::memset(*slot, 0, payload_size_);
  return lid;
}

StatusOr<std::pair<Lid, Lid>> Lidf::AllocatePair() {
  ScopedPhase phase(cache_, IoPhase::kLidfDeref);
  if (records_per_page_ < 2) {
    // Same-page adjacency is impossible with one record per page; fall
    // back to two singles. (Callers that rely on lid+1 pairing — W-BOX-O —
    // always have multi-record pages.)
    BOXES_ASSIGN_OR_RETURN(const Lid first, Allocate());
    BOXES_ASSIGN_OR_RETURN(const Lid second, Allocate());
    return std::make_pair(first, second);
  }
  // Always take two fresh same-page slots from the tail. Slots skipped at a
  // page boundary are recycled through the free list for single Allocate().
  const uint64_t used_on_tail = next_unused_ % records_per_page_;
  if (used_on_tail != 0 && records_per_page_ - used_on_tail < 2) {
    free_list_.push_back(next_unused_);
    ++next_unused_;
    if (next_unused_ > live_.size()) {
      live_.resize(next_unused_, false);
    }
  }
  BOXES_RETURN_IF_ERROR(EnsureTailSlots(2));
  const Lid first = next_unused_;
  const Lid second = next_unused_ + 1;
  next_unused_ += 2;
  if (second >= live_.size()) {
    live_.resize(second + 1, false);
  }
  live_[first] = true;
  live_[second] = true;
  live_count_ += 2;
  StatusOr<uint8_t*> slot1 = SlotForWrite(first);
  if (!slot1.ok()) {
    return slot1.status();
  }
  std::memset(*slot1, 0, payload_size_);
  StatusOr<uint8_t*> slot2 = SlotForWrite(second);
  if (!slot2.ok()) {
    return slot2.status();
  }
  std::memset(*slot2, 0, payload_size_);
  return std::make_pair(first, second);
}

Status Lidf::Free(Lid lid) {
  BOXES_RETURN_IF_ERROR(CheckLive(lid));
  live_[lid] = false;
  --live_count_;
  free_list_.push_back(lid);
  return Status::OK();
}

bool Lidf::IsLive(Lid lid) const { return lid < live_.size() && live_[lid]; }

Status Lidf::Read(Lid lid, uint8_t* payload) const {
  ScopedPhase phase(cache_, IoPhase::kLidfDeref);
  BOXES_RETURN_IF_ERROR(CheckLive(lid));
  const PageId page = pages_[lid / records_per_page_];
  StatusOr<uint8_t*> data = cache_->GetPage(page);
  if (!data.ok()) {
    return data.status();
  }
  std::memcpy(payload, *data + (lid % records_per_page_) * payload_size_,
              payload_size_);
  return Status::OK();
}

Status Lidf::Write(Lid lid, const uint8_t* payload) {
  ScopedPhase phase(cache_, IoPhase::kLidfDeref);
  BOXES_RETURN_IF_ERROR(CheckLive(lid));
  StatusOr<uint8_t*> slot = SlotForWrite(lid);
  if (!slot.ok()) {
    return slot.status();
  }
  std::memcpy(*slot, payload, payload_size_);
  return Status::OK();
}

StatusOr<PageId> Lidf::ReadBlockPtr(Lid lid) const {
  ScopedPhase phase(cache_, IoPhase::kLidfDeref);
  BOXES_RETURN_IF_ERROR(CheckLive(lid));
  const PageId page = pages_[lid / records_per_page_];
  StatusOr<uint8_t*> data = cache_->GetPage(page);
  if (!data.ok()) {
    return data.status();
  }
  return PageId{
      DecodeFixed64(*data + (lid % records_per_page_) * payload_size_)};
}

Status Lidf::WriteBlockPtr(Lid lid, PageId block) {
  ScopedPhase phase(cache_, IoPhase::kLidfDeref);
  BOXES_RETURN_IF_ERROR(CheckLive(lid));
  StatusOr<uint8_t*> slot = SlotForWrite(lid);
  if (!slot.ok()) {
    return slot.status();
  }
  EncodeFixed64(*slot, block);
  return Status::OK();
}

Status Lidf::ForEachLive(
    const std::function<Status(Lid, const uint8_t*)>& fn) const {
  for (size_t page_index = 0; page_index < pages_.size(); ++page_index) {
    const Lid first = page_index * records_per_page_;
    const Lid last =
        std::min<uint64_t>(first + records_per_page_, next_unused_);
    bool any_live = false;
    for (Lid lid = first; lid < last; ++lid) {
      if (live_[lid]) {
        any_live = true;
        break;
      }
    }
    if (!any_live) {
      continue;
    }
    StatusOr<uint8_t*> data = cache_->GetPage(pages_[page_index]);
    if (!data.ok()) {
      return data.status();
    }
    for (Lid lid = first; lid < last; ++lid) {
      if (live_[lid]) {
        BOXES_RETURN_IF_ERROR(
            fn(lid, *data + (lid - first) * payload_size_));
      }
    }
  }
  return Status::OK();
}

Status Lidf::ForEachLiveMutable(
    const std::function<Status(Lid, uint8_t*)>& fn) {
  for (size_t page_index = 0; page_index < pages_.size(); ++page_index) {
    const Lid first = page_index * records_per_page_;
    const Lid last =
        std::min<uint64_t>(first + records_per_page_, next_unused_);
    bool any_live = false;
    for (Lid lid = first; lid < last; ++lid) {
      if (live_[lid]) {
        any_live = true;
        break;
      }
    }
    if (!any_live) {
      continue;
    }
    StatusOr<uint8_t*> data = cache_->GetPageForWrite(pages_[page_index]);
    if (!data.ok()) {
      return data.status();
    }
    for (Lid lid = first; lid < last; ++lid) {
      if (live_[lid]) {
        BOXES_RETURN_IF_ERROR(fn(lid, *data + (lid - first) * payload_size_));
      }
    }
  }
  return Status::OK();
}

StatusOr<PageId> Lidf::PageOf(Lid lid) const {
  BOXES_RETURN_IF_ERROR(CheckLive(lid));
  return pages_[lid / records_per_page_];
}

void Lidf::SaveState(MetadataWriter* writer) const {
  writer->PutU64(payload_size_);
  writer->PutU64(next_unused_);
  writer->PutU64(pages_.size());
  for (PageId page : pages_) {
    writer->PutU64(page);
  }
  // Liveness bitmap over [0, next_unused_), packed 8 lids per byte.
  std::vector<uint8_t> bitmap((next_unused_ + 7) / 8, 0);
  for (Lid lid = 0; lid < next_unused_; ++lid) {
    if (lid < live_.size() && live_[lid]) {
      bitmap[lid / 8] |= static_cast<uint8_t>(1u << (lid % 8));
    }
  }
  writer->PutBytes(bitmap.data(), bitmap.size());
  // The free list in allocation order. The bitmap already determines its
  // *membership* (dead lids below the cursor are exactly the reusable
  // ones), but Allocate() pops LIFO — so reproducing the original LID
  // assignment after a restore (op-log replay must hand out the same LIDs
  // the pre-crash run acknowledged) requires the order too.
  writer->PutU64(free_list_.size());
  for (Lid lid : free_list_) {
    writer->PutU64(lid);
  }
}

Status Lidf::LoadState(MetadataReader* reader) {
  BOXES_ASSIGN_OR_RETURN(const uint64_t payload_size, reader->GetU64());
  if (payload_size != payload_size_) {
    return Status::InvalidArgument(
        "checkpoint payload size does not match this LIDF");
  }
  BOXES_ASSIGN_OR_RETURN(next_unused_, reader->GetU64());
  BOXES_ASSIGN_OR_RETURN(const uint64_t page_count, reader->GetU64());
  // Validate before sizing any allocation from these fields: a corrupt
  // cursor or page count must fail cleanly, not request terabytes.
  const uint64_t device_pages = cache_->store()->total_pages();
  if (page_count > device_pages) {
    next_unused_ = 0;
    return Status::Corruption("LIDF directory larger than the device");
  }
  if (next_unused_ > page_count * records_per_page_) {
    next_unused_ = 0;
    return Status::Corruption("LIDF directory smaller than its cursor");
  }
  pages_.assign(page_count, kInvalidPageId);
  for (uint64_t i = 0; i < page_count; ++i) {
    BOXES_ASSIGN_OR_RETURN(pages_[i], reader->GetU64());
    if (pages_[i] >= device_pages) {
      return Status::Corruption("LIDF directory links page " +
                                std::to_string(pages_[i]) +
                                " beyond the device");
    }
  }
  std::vector<uint8_t> bitmap((next_unused_ + 7) / 8, 0);
  BOXES_RETURN_IF_ERROR(reader->GetBytes(bitmap.data(), bitmap.size()));
  live_.assign(next_unused_, false);
  free_list_.clear();
  live_count_ = 0;
  uint64_t dead = 0;
  for (Lid lid = 0; lid < next_unused_; ++lid) {
    if ((bitmap[lid / 8] >> (lid % 8)) & 1u) {
      live_[lid] = true;
      ++live_count_;
    } else {
      ++dead;
    }
  }
  // The ordered free list follows; it must agree with the bitmap exactly
  // (same membership, no duplicates) or the checkpoint is corrupt.
  BOXES_ASSIGN_OR_RETURN(const uint64_t free_count, reader->GetU64());
  if (free_count != dead) {
    next_unused_ = 0;
    return Status::Corruption("LIDF free list disagrees with the bitmap");
  }
  free_list_.reserve(free_count);
  std::vector<bool> seen(next_unused_, false);
  for (uint64_t i = 0; i < free_count; ++i) {
    BOXES_ASSIGN_OR_RETURN(const Lid lid, reader->GetU64());
    if (lid >= next_unused_ || live_[lid] || seen[lid]) {
      next_unused_ = 0;
      free_list_.clear();
      return Status::Corruption("LIDF free list entry " +
                                std::to_string(lid) +
                                " is live, duplicate, or out of range");
    }
    seen[lid] = true;
    free_list_.push_back(lid);
  }
  return Status::OK();
}

Status Lidf::CheckLive(Lid lid) const {
  if (!IsLive(lid)) {
    return Status::NotFound("LID " + std::to_string(lid) + " is not live");
  }
  return Status::OK();
}

Status Lidf::EnsureTailSlots(size_t needed) {
  while (next_unused_ + needed > pages_.size() * records_per_page_) {
    uint8_t* data = nullptr;
    StatusOr<PageId> page = cache_->AllocatePage(&data);
    if (!page.ok()) {
      return page.status();
    }
    pages_.push_back(*page);
  }
  return Status::OK();
}

StatusOr<uint8_t*> Lidf::SlotForWrite(Lid lid) {
  const PageId page = pages_[lid / records_per_page_];
  StatusOr<uint8_t*> data = cache_->GetPageForWrite(page);
  if (!data.ok()) {
    return data.status();
  }
  return *data + (lid % records_per_page_) * payload_size_;
}

}  // namespace boxes
