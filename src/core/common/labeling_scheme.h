#ifndef BOXES_CORE_COMMON_LABELING_SCHEME_H_
#define BOXES_CORE_COMMON_LABELING_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/common/epoch_guard.h"
#include "core/common/label.h"
#include "core/common/read_only_labeling.h"
#include "lidf/lidf.h"
#include "util/metrics.h"
#include "util/status.h"
#include "xml/document.h"

namespace boxes {

/// LIDs assigned to a newly inserted element's start and end labels.
struct NewElement {
  Lid start = kInvalidLid;
  Lid end = kInvalidLid;
};

/// Structure statistics reported by GetStats(), used by the benchmark
/// harness (tree heights, label lengths, storage).
struct SchemeStats {
  /// Tree height in levels (leaves = 1); 0 for flat schemes (naive-k).
  uint64_t height = 0;
  /// Pages used by the index structure (excluding the LIDF).
  uint64_t index_pages = 0;
  /// Pages used by the LIDF.
  uint64_t lidf_pages = 0;
  /// Live labels currently maintained.
  uint64_t live_labels = 0;
  /// Maximum bits any current label needs under this scheme's encoding.
  uint32_t max_label_bits = 0;
};

/// Observer of label-changing effects, the hook the §6 caching + logging
/// layer attaches to a scheme. Every mutation that changes existing label
/// values reports its effect through exactly one of these callbacks.
class UpdateListener {
 public:
  virtual ~UpdateListener() = default;

  /// Labels in [lo, hi] (inclusive, lexicographic) changed by `delta`.
  /// With `last_component_only`, only the final component shifts (B-BOX
  /// leaf-local effects); otherwise the label shifts as an integer.
  virtual void OnRangeShift(const Label& lo, const Label& hi, int64_t delta,
                            bool last_component_only) = 0;

  /// Labels in [lo, hi] changed in a way not describable as a shift;
  /// cached values in the range must be discarded.
  virtual void OnInvalidateRange(const Label& lo, const Label& hi) = 0;

  /// Ordinal labels >= `from` changed by `delta` (ordinal-mode logging).
  virtual void OnOrdinalShift(uint64_t from, int64_t delta) = 0;
};

/// A label observed under a read ticket: the value plus the epoch (number
/// of committed writes) it was read at. Concurrent readers use the epoch to
/// order their observations against the writer's history.
struct VersionedLabel {
  Label label;
  uint64_t epoch = 0;
};

/// Ordinal variant of VersionedLabel.
struct VersionedOrdinal {
  uint64_t ordinal = 0;
  uint64_t epoch = 0;
};

/// One buffered mutation, queued by UpdateBuffer and applied by
/// LabelingScheme::ApplyBatch. Anchors are LIDs, which are immutable, so a
/// buffered op stays valid no matter how many relabels earlier ops in the
/// same batch trigger — the whole point of addressing the batch by LID
/// instead of by label value. Anchors must name labels that are live when
/// the batch starts; an op whose anchor is freed by an *earlier op of the
/// same batch* has unspecified behavior (the LID may have been reused).
struct BatchOp {
  enum class Kind {
    kInsertElementBefore,  // anchor = the before-lid
    kInsertFirstElement,   // no anchor (bootstrap; also a sort barrier)
    kDelete,               // anchor = the lid to delete
    kInsertSubtreeBefore,  // anchor = the before-lid, subtree = the document
    kDeleteSubtree,        // anchor = root start lid, anchor_end = root end
  };

  Kind kind = Kind::kInsertElementBefore;
  Lid anchor = kInvalidLid;
  Lid anchor_end = kInvalidLid;
  /// Not owned; must outlive the batch (kInsertSubtreeBefore only).
  const xml::Document* subtree = nullptr;
  /// Optional output for kInsertSubtreeBefore (per-element LIDs, indexed by
  /// ElementId); not owned, must outlive the batch.
  std::vector<NewElement>* subtree_lids = nullptr;

  /// Opaque caller cookie. ApplyBatch never reads it, but the locality sort
  /// moves it with the op, so callers that correlate ops with out-of-band
  /// state (the UpdateBuffer's result tickets) must read it back from the
  /// post-sort op rather than rely on enqueue positions.
  uint64_t user_tag = 0;

  /// Filled by ApplyBatch for the insert kinds.
  NewElement result;
};

/// Per-batch accounting filled by ApplyBatch.
struct BatchStats {
  /// Ops applied (== the batch size on success).
  uint64_t applied = 0;
  /// Ops the locality sort moved away from their enqueue position.
  uint64_t reordered = 0;
  /// Scheme-specific: relabel passes that would have fired op-by-op but
  /// were merged into one preemptive pass (naive-k's RelabelAll).
  uint64_t coalesced_relabels = 0;
};

/// Common interface of all dynamic order-based labeling schemes (W-BOX,
/// B-BOX, naive-k): maintains one label per tag of a dynamic XML document,
/// addressed by immutable LIDs (paper §3, "Supported operations").
///
/// Concurrency (DESIGN.md §4g): every scheme carries an EpochGuard. Mutating
/// operations (insert/delete/relabel/bulk load) must run under
/// EpochWriteLock(&scheme->epoch_guard()) — one writer at a time. The
/// read-only paths (Lookup, OrdinalLookup, Compare, and lookups routed
/// through CachingLabelStore) may then run from any number of reader
/// threads under EpochReadLock; LookupShared/OrdinalLookupShared package
/// that pattern. Single-threaded callers may ignore the guard entirely —
/// the plain virtuals are unsynchronized, exactly as before.
/// The read-only half of the interface (name/Lookup/LookupElement/Compare/
/// OrdinalLookup) lives in ReadOnlyLabeling, shared with static label
/// stores such as the snapshot tier's SnapshotReader.
class LabelingScheme : public ReadOnlyLabeling {
 public:
  /// Inserts a new element so that it immediately precedes the tag whose
  /// label is identified by `lid`; returns the new element's LIDs.
  /// If `lid` names an element's start label the new element becomes its
  /// previous sibling; if it names an end label the new element becomes
  /// that element's last child.
  virtual StatusOr<NewElement> InsertElementBefore(Lid lid) = 0;

  /// Inserts the first element into an empty structure (there is no
  /// existing tag to insert before). Returns its LIDs.
  virtual StatusOr<NewElement> InsertFirstElement();

  /// Removes the label identified by `lid` and frees the LID. Removing an
  /// element means calling this for both of its labels.
  virtual Status Delete(Lid lid) = 0;

  /// Loads `doc` into an empty scheme. `lids_out`, if non-null, receives
  /// one entry per element, indexed by ElementId.
  virtual Status BulkLoad(const xml::Document& doc,
                          std::vector<NewElement>* lids_out) = 0;

  /// Inserts an entire subtree (the whole document `subtree`) immediately
  /// before the tag identified by `before`. `lids_out` as in BulkLoad.
  /// The default implementation inserts element-at-a-time; W-BOX and B-BOX
  /// override it with their bulk algorithms.
  virtual Status InsertSubtreeBefore(Lid before, const xml::Document& subtree,
                                     std::vector<NewElement>* lids_out);

  /// Deletes an element and its entire subtree, identified by the
  /// element's start and end label LIDs (every label between them is
  /// removed and its LID freed). The default works on any scheme that
  /// exposes its LIDF: it snapshots the victim set *by LID* before the
  /// first deletion (labels may shift mid-loop; LIDs cannot), then deletes
  /// label-at-a-time. Schemes without a LIDF get Unimplemented; W-BOX and
  /// B-BOX override this with their bulk algorithms.
  virtual Status DeleteSubtree(Lid root_start, Lid root_end);

  /// Applies a whole batch of buffered mutations. The default driver sorts
  /// the batch into label-locality order — a stable sort on
  /// BatchLocalityKey within runs of element-granularity ops; subtree ops
  /// and bootstrap inserts are barriers that never move — and then applies
  /// op-at-a-time through the virtuals above. Results land in each op's
  /// `result` / `subtree_lids`; the batch stops at the first error (ops
  /// already applied stay applied — atomicity against readers comes from
  /// the caller holding one EpochWriteLock around the whole call, and
  /// durability atomicity from the one checkpoint commit per batch).
  ///
  /// The stable sort plus the per-LID key mean ops sharing an anchor are
  /// never reordered relative to each other, which is what makes batched
  /// and unbatched application of one history converge to the same tree.
  /// Schemes override this to add batch-wide optimizations (W-BOX defers
  /// its global-rebuild check to the end of the batch; naive-k coalesces
  /// the batch's relabel passes into one preemptive RelabelAll).
  virtual Status ApplyBatch(std::vector<BatchOp>* ops, BatchStats* stats);

  /// ApplyBatch minus the locality sort: applies `ops` exactly in the
  /// given order. This is the op-log replay hook — WAL records are written
  /// in post-sort apply order, and recovery must reproduce that order
  /// bit-for-bit (re-sorting at replay would key on page ids that differ
  /// after a crash, permuting the batch and handing out different LIDs
  /// than the pre-crash run acknowledged). Scheme batch-wide optimizations
  /// live here, not in ApplyBatch, so replayed batches get the identical
  /// treatment (W-BOX's deferred rebuild check, naive-k's preemptive
  /// relabel coalescing — both are order-insensitive, so the sorted live
  /// path and the pre-sorted replay path stay state-equivalent).
  virtual Status ReplayBatch(std::vector<BatchOp>* ops, BatchStats* stats);

  /// The locality sort on its own (see ApplyBatch): public so the write
  /// pipeline can fix the apply order *before* logging the batch, then let
  /// ApplyBatch's second (stable, equal-keyed) sort act as the identity.
  void SortBatchByLocality(std::vector<BatchOp>* ops, BatchStats* stats);

  /// The scheme's LIDF, or nullptr for schemes that do not maintain one.
  /// Lets generic code (the default DeleteSubtree, the batch drivers)
  /// reason about record placement without knowing the concrete scheme.
  virtual Lidf* lidf() { return nullptr; }

  /// Writes the scheme's durable metadata as a checkpoint chain and returns
  /// its head page. Builds the chain only — no sync barriers; durability is
  /// CommitCheckpoint's job (one commit per group-commit batch). Schemes
  /// without durable metadata get Unimplemented.
  virtual StatusOr<PageId> Checkpoint();

  /// Rebuilds in-memory state from a checkpoint chain written by
  /// Checkpoint() on an equivalently configured instance.
  virtual Status Restore(PageId checkpoint_head);

  virtual StatusOr<SchemeStats> GetStats() = 0;

  /// Verifies every structural invariant; used heavily by tests.
  virtual Status CheckInvariants() { return Status::OK(); }

  /// Lookup under the scheme's epoch guard: acquires a read ticket
  /// (retrying on writer conflict), performs the lookup, and returns the
  /// value stamped with the epoch it was observed at. Thread-safe against
  /// one concurrent writer holding EpochWriteLock.
  StatusOr<VersionedLabel> LookupShared(Lid lid);

  /// Ordinal variant of LookupShared. Requires SupportsOrdinal().
  StatusOr<VersionedOrdinal> OrdinalLookupShared(Lid lid);

  /// The single-writer/multi-reader gate for this scheme (see class doc).
  EpochGuard& epoch_guard() { return epoch_guard_; }

  /// Attaches (or detaches, with nullptr) the caching/logging observer.
  void SetUpdateListener(UpdateListener* listener) { listener_ = listener; }
  UpdateListener* update_listener() const { return listener_; }

  /// Attaches (or detaches, with nullptr) a metrics registry. When set, the
  /// scheme records per-operation latency samples under
  /// "<name()>.<op>.us"; when null, instrumentation is a no-op.
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  MetricsRegistry* metrics() const { return metrics_; }

 protected:
  /// Locality key of one batch op for the batch sort: ops with smaller
  /// keys apply first within their run. The key must depend only on the
  /// op's anchor LID (equal anchors => equal keys), so the stable sort
  /// preserves enqueue order among same-anchor ops. The default (0) keeps
  /// the whole batch in enqueue order; W-BOX/B-BOX key by the BOX block
  /// the anchor's record lives in, naive-k by the anchor's LIDF page.
  virtual uint64_t BatchLocalityKey(const BatchOp& op);

  /// Dispatches one batch op to the virtuals; the unit step of the default
  /// ReplayBatch, reusable by scheme overrides.
  Status ApplyBatchOp(BatchOp* op);

  UpdateListener* listener_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;

 private:
  EpochGuard epoch_guard_;
};

}  // namespace boxes

#endif  // BOXES_CORE_COMMON_LABELING_SCHEME_H_
