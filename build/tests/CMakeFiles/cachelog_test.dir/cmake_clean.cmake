file(REMOVE_RECURSE
  "CMakeFiles/cachelog_test.dir/cachelog_test.cc.o"
  "CMakeFiles/cachelog_test.dir/cachelog_test.cc.o.d"
  "cachelog_test"
  "cachelog_test.pdb"
  "cachelog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachelog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
