file(REMOVE_RECURSE
  "CMakeFiles/bench_cachelog.dir/bench_cachelog.cc.o"
  "CMakeFiles/bench_cachelog.dir/bench_cachelog.cc.o.d"
  "bench_cachelog"
  "bench_cachelog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cachelog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
