// Reproduces the "Other findings" label-length analysis of §7 and the
// analytic bounds of Theorems 4.4 and 5.1: measured maximum label bits per
// scheme after the concentrated workload, against each scheme's bound and
// the 32-bit machine-word line the paper uses as its practicality test.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "workload/sequences.h"

namespace boxes::bench {
namespace {

/// Thm 4.4: a W-BOX label needs no more than
/// log N + 1 + ceil(log(2+4/a)·log_a(N/k) + log b) bits.
double WBoxBound(const WBoxParams& params, uint64_t labels) {
  const double n = static_cast<double>(labels);
  const double a = static_cast<double>(params.a);
  const double k = static_cast<double>(params.k);
  const double b = static_cast<double>(params.b);
  return std::log2(n) + 1 +
         std::ceil(std::log2(2 + 4 / a) * (std::log2(n / k) / std::log2(a)) +
                   std::log2(b));
}

/// Thm 5.1: a B-BOX label needs no more than
/// log N + 1 + floor((log N - 1)/(log B - 1)) bits.
double BBoxBound(const BBoxParams& params, uint64_t labels) {
  const double n = static_cast<double>(labels);
  const double b = static_cast<double>(params.leaf_capacity);
  return std::log2(n) + 1 +
         std::floor((std::log2(n) - 1) / (std::log2(b) - 1));
}

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* base = flags.AddInt64("base", 10000, "base document elements");
  int64_t* inserts =
      flags.AddInt64("inserts", 2500, "elements inserted concentrated");
  std::string* schemes = flags.AddString(
      "schemes",
      "wbox,wbox-o,bbox,bbox-o,naive-1,naive-16,naive-64,naive-256,ordpath",
      "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, base, 2000);
  SmokeCap(smoke, inserts, 500);

  const uint64_t labels =
      2 * (static_cast<uint64_t>(*base) + static_cast<uint64_t>(*inserts));
  std::printf(
      "TAB-BITS: label length after the concentrated workload (N=%llu\n"
      "labels). The paper: labels fit a 32-bit word for the BOXes; naive-k\n"
      "needs log N + k bits, exceeding the machine word for k >= 32.\n\n",
      static_cast<unsigned long long>(labels));
  std::printf("%-12s %14s %14s %12s\n", "scheme", "measured bits",
              "analytic bound", "fits 32-bit");

  for (const std::string& name : SplitSchemes(*schemes)) {
    SchemeUnderTest unit(static_cast<size_t>(*page_size));
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    workload::RunStats stats;
    CheckOkOrDie(
        workload::RunConcentratedInsertion(unit.scheme.get(),
                                           unit.cache.get(),
                                           static_cast<uint64_t>(*base),
                                           static_cast<uint64_t>(*inserts),
                                           &stats),
        "concentrated run");
    StatusOr<SchemeStats> scheme_stats = unit.scheme->GetStats();
    CheckOkOrDie(scheme_stats.status(), "GetStats");

    char bound_text[32];
    if (name == "ordpath") {
      // Immutable labels: Cohen et al.'s lower bound says Omega(N) bits
      // for adversarial sequences; no finite formula applies.
      std::snprintf(bound_text, sizeof(bound_text), "%14s", "Omega(N)");
    } else if (name.rfind("wbox", 0) == 0) {
      const auto* wbox = static_cast<const WBox*>(unit.scheme.get());
      std::snprintf(bound_text, sizeof(bound_text), "%14.0f",
                    WBoxBound(wbox->params(), labels));
    } else if (name.rfind("bbox", 0) == 0) {
      const auto* bbox = static_cast<const BBox*>(unit.scheme.get());
      std::snprintf(bound_text, sizeof(bound_text), "%14.0f",
                    BBoxBound(bbox->params(), labels));
    } else {
      // naive-k: log2(N) + k bits by construction.
      const auto* naive =
          static_cast<const NaiveScheme*>(unit.scheme.get());
      std::snprintf(bound_text, sizeof(bound_text), "%14.0f",
                    std::log2(static_cast<double>(labels)) +
                        naive->options().gap_bits + 1);
    }
    std::printf("%-12s %14u %s %12s\n", name.c_str(),
                scheme_stats->max_label_bits, bound_text,
                scheme_stats->max_label_bits <= 32 ? "yes" : "NO");
    if (name.rfind("naive", 0) == 0 || name == "ordpath") {
      continue;
    }
    // Sanity: the measured length must respect the theorem.
    if (static_cast<double>(scheme_stats->max_label_bits) >
        (name.rfind("wbox", 0) == 0
             ? WBoxBound(static_cast<const WBox*>(unit.scheme.get())
                             ->params(),
                         labels)
             : BBoxBound(static_cast<const BBox*>(unit.scheme.get())
                             ->params(),
                         labels))) {
      std::fprintf(stderr, "BOUND VIOLATION for %s\n", name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
