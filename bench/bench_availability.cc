// Availability benchmark: goodput, latency, and staleness versus fault
// probability for W-BOX, B-BOX, and naive-k behind the runtime
// fault-resilience layer (retrying store + online scrubber + degraded
// reads; DESIGN.md §4f).
//
// Two regimes per scheme:
//   * Transient storms — every page operation independently fails with
//     probability p; the RetryingPageStore's bounded backoff absorbs the
//     faults. Reported: goodput (exact answers), retries, give-ups, mean
//     operation latency, and accumulated (virtual) backoff.
//   * A permanent episode — a sample of live pages is poisoned (reads
//     return Corruption). Lookups over cached references degrade to
//     possibly-stale answers instead of erroring, the scrubber
//     quarantines the bad pages, and healing + rescrubbing empties the
//     quarantine. Reported: exact vs possibly-stale vs error counts and
//     quarantine sizes.

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/cachelog/caching_store.h"
#include "storage/retrying_store.h"
#include "storage/scrubber.h"
#include "util/flags.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

/// A scheme stacked on the full resilience sandwich:
/// memory store -> fault injector -> retrying store -> page cache.
struct ResilientUnit {
  ResilientUnit(size_t page_size, uint64_t retry_seed)
      : base(page_size),
        faulty(&base),
        retrying(&faulty, [&] {
          RetryingStoreOptions options;
          options.seed = retry_seed;
          return options;
        }()),
        cache(&retrying) {}

  MemoryPageStore base;
  FaultInjectionPageStore faulty;
  RetryingPageStore retrying;
  PageCache cache;
  std::unique_ptr<LabelingScheme> scheme;
};

Status MakeResilientScheme(const std::string& name, ResilientUnit* unit) {
  PageCache* cache = &unit->cache;
  if (name == "wbox") {
    unit->scheme = std::make_unique<WBox>(cache);
  } else if (name == "bbox") {
    unit->scheme = std::make_unique<BBox>(cache);
  } else if (name.rfind("naive-", 0) == 0) {
    NaiveOptions options;
    options.gap_bits = static_cast<uint32_t>(std::stoul(name.substr(6)));
    unit->scheme = std::make_unique<NaiveScheme>(cache, options);
  } else {
    return Status::InvalidArgument("unknown scheme '" + name + "'");
  }
  return Status::OK();
}

struct StormResult {
  uint64_t lookups = 0;
  uint64_t inserts = 0;
  uint64_t exact = 0;
  uint64_t stale = 0;
  uint64_t hard_errors = 0;
  double op_us_sum = 0;
};

void RunScheme(const std::string& name, int64_t elements, int64_t ops,
               int64_t log_capacity, size_t page_size,
               const std::vector<double>& fail_probabilities,
               int64_t poisoned_pages) {
  for (const double p : fail_probabilities) {
    ResilientUnit unit(page_size, /*retry_seed=*/0xa11ced);
    CheckOkOrDie(MakeResilientScheme(name, &unit), "making scheme");
    unit.retrying.SetMetrics(&GlobalMetrics());
    unit.retrying.SetPhaseProbe(
        [cache = &unit.cache] { return cache->current_phase(); });
    unit.scheme->SetMetrics(&GlobalMetrics());
    CachingLabelStore store(unit.scheme.get(),
                            static_cast<size_t>(log_capacity));
    Scrubber scrubber(&unit.faulty);
    scrubber.SetMetrics(&GlobalMetrics());
    scrubber.AddStructuralCheck(
        name, [scheme = unit.scheme.get()] {
          return scheme->CheckInvariants();
        });

    // Build and warm with faults off: every reference starts cached.
    const xml::Document doc =
        xml::MakeTwoLevelDocument(static_cast<uint64_t>(elements));
    std::vector<NewElement> lids;
    CheckOkOrDie(unit.scheme->BulkLoad(doc, &lids), "bulk load");
    CheckOkOrDie(unit.cache.FlushAll(), "flush");
    std::vector<CachedLabelRef> refs;
    refs.reserve(lids.size());
    for (const NewElement& element : lids) {
      refs.push_back(store.MakeRef(element.start));
      CheckOkOrDie(store.Lookup(&refs.back()).status(), "warm lookup");
    }
    CheckOkOrDie(unit.cache.FlushAll(), "flush");

    unit.faulty.SetSeed(0x5707 + static_cast<uint64_t>(p * 10000));
    unit.faulty.SetFailProbability(p, /*transient=*/true);
    Random rng(0xbeef);
    StormResult result;
    for (int64_t op = 0; op < ops; ++op) {
      const auto start = std::chrono::steady_clock::now();
      if (rng.Bernoulli(0.2)) {
        ++result.inserts;
        IoScope scope(&unit.cache);
        const Lid target = lids[rng.Uniform(lids.size())].start;
        Status status =
            unit.scheme->InsertElementBefore(target).status();
        const Status flush = scope.End();
        if (status.ok()) {
          status = flush;
        }
        if (status.ok()) {
          ++result.exact;
        } else {
          ++result.hard_errors;
        }
      } else {
        ++result.lookups;
        IoScope scope(&unit.cache);
        CachedLabelRef* ref = &refs[rng.Uniform(refs.size())];
        StatusOr<ResilientLabel> label = store.LookupResilient(ref);
        (void)scope.End();
        if (!label.ok()) {
          ++result.hard_errors;
        } else if (label->possibly_stale) {
          ++result.stale;
        } else {
          ++result.exact;
        }
      }
      result.op_us_sum += std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      // The scrubber advances between foreground operations.
      if (op % 32 == 31) {
        CheckOkOrDie(scrubber.Step(), "scrub step");
      }
    }

    const RetryingPageStore::Counters& retry = unit.retrying.counters();
    std::printf(
        "%-9s p=%.3f | ops %lld (%llu lookups, %llu inserts) | goodput "
        "%.2f%% stale %.2f%% hard errors %llu | retries %llu recovered "
        "%llu gave up %llu | backoff %.1f ms | scrubbed %llu pages | mean "
        "op %.1f us\n",
        name.c_str(), p, static_cast<long long>(ops),
        static_cast<unsigned long long>(result.lookups),
        static_cast<unsigned long long>(result.inserts),
        100.0 * static_cast<double>(result.exact) /
            static_cast<double>(ops),
        100.0 * static_cast<double>(result.stale) /
            static_cast<double>(ops),
        static_cast<unsigned long long>(result.hard_errors),
        static_cast<unsigned long long>(retry.retries),
        static_cast<unsigned long long>(retry.recovered),
        static_cast<unsigned long long>(retry.gave_up),
        static_cast<double>(retry.backoff_us) / 1000.0,
        static_cast<unsigned long long>(
            scrubber.counters().pages_scanned),
        result.op_us_sum / static_cast<double>(ops));
    GlobalMetrics().IncrementCounter(
        "availability." + name + ".hard_errors", result.hard_errors);
    GlobalMetrics().IncrementCounter("availability." + name + ".stale",
                                     result.stale);

    // Permanent episode at the highest sweep point only (it is
    // probability-independent).
    if (p != fail_probabilities.back() || poisoned_pages <= 0) {
      continue;
    }
    unit.faulty.SetFailProbability(0.0);
    // Age every reference past the mod log's replay window first —
    // fresh/replay hits are exact by construction and would mask the
    // poisoned pages entirely. Concentrated inserts exhaust the local gap,
    // so even gap-based schemes (naive-k) emit shifts and advance the log.
    for (int64_t i = 0; i <= log_capacity; ++i) {
      IoScope scope(&unit.cache);
      const Lid target = lids[lids.size() / 2].start;
      CheckOkOrDie(unit.scheme->InsertElementBefore(target).status(),
                   "aging insert");
      CheckOkOrDie(scope.End(), "aging flush");
    }
    uint64_t total = 0;
    std::vector<PageId> free_pages;
    unit.base.SnapshotAllocator(&total, &free_pages);
    const std::set<PageId> free_set(free_pages.begin(), free_pages.end());
    std::vector<PageId> allocated;
    for (PageId id = 0; id < total; ++id) {
      if (free_set.count(id) == 0) {
        allocated.push_back(id);
      }
    }
    for (int64_t i = 0; i < poisoned_pages && !allocated.empty(); ++i) {
      unit.faulty.PoisonPage(allocated[rng.Uniform(allocated.size())]);
    }
    uint64_t exact = 0;
    uint64_t stale = 0;
    uint64_t errors = 0;
    for (CachedLabelRef& ref : refs) {
      IoScope scope(&unit.cache);
      StatusOr<ResilientLabel> label = store.LookupResilient(&ref);
      (void)scope.End();
      if (!label.ok()) {
        ++errors;
      } else if (label->possibly_stale) {
        ++stale;
      } else {
        ++exact;
      }
    }
    CheckOkOrDie(scrubber.ScrubPass(), "scrub pass");
    const uint64_t quarantined = scrubber.quarantined().size();
    unit.faulty.Heal();
    CheckOkOrDie(scrubber.ScrubPass(), "rescrub pass");
    std::printf(
        "%-9s permanent | %lld pages poisoned | exact %llu stale %llu "
        "errors %llu | quarantined %llu, empty after heal+rescrub: %s\n",
        name.c_str(), static_cast<long long>(poisoned_pages),
        static_cast<unsigned long long>(exact),
        static_cast<unsigned long long>(stale),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(quarantined),
        scrubber.quarantined().empty() ? "yes" : "NO");
    GlobalMetrics().IncrementCounter(
        "availability." + name + ".quarantined", quarantined);
  }
}

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 4000, "document elements");
  int64_t* ops = flags.AddInt64("ops", 6000, "storm operations per point");
  int64_t* log_capacity =
      flags.AddInt64("log_capacity", 512, "mod log entries (k)");
  int64_t* poisoned =
      flags.AddInt64("poisoned_pages", 8, "pages poisoned permanently");
  int64_t* page_size = flags.AddInt64("page_size", 2048, "block size");
  std::string* schemes = flags.AddString("schemes", "wbox,bbox,naive-16",
                                         "comma-separated schemes");
  std::string* metrics_json =
      flags.AddString("metrics_json", "", "write metrics JSON here");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 800);
  SmokeCap(smoke, ops, 800);

  std::vector<double> probabilities = {0.0, 0.01, 0.02, 0.05};
  if (smoke) {
    probabilities = {0.0, 0.05};
  }
  std::printf("AVAILABILITY: goodput/latency/staleness vs fault "
              "probability (retry + scrub + degraded reads)\n\n");
  for (const std::string& name : SplitSchemes(*schemes)) {
    RunScheme(name, *elements, *ops, *log_capacity,
              static_cast<size_t>(*page_size), probabilities, *poisoned);
    std::printf("\n");
  }
  MaybeWriteMetricsJson(*metrics_json);
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
