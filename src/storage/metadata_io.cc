#include "storage/metadata_io.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"

namespace boxes {

namespace {

constexpr size_t kPageHeaderSize = 16;
constexpr uint64_t kSuperblockMagic = 0x31424453'45584f42ULL;  // "BOXESDB1"

}  // namespace

void MetadataWriter::PutU32(uint32_t value) {
  uint8_t raw[4];
  EncodeFixed32(raw, value);
  buffer_.insert(buffer_.end(), raw, raw + sizeof(raw));
}

void MetadataWriter::PutU64(uint64_t value) {
  uint8_t raw[8];
  EncodeFixed64(raw, value);
  buffer_.insert(buffer_.end(), raw, raw + sizeof(raw));
}

void MetadataWriter::PutBytes(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

void MetadataWriter::PutString(const std::string& text) {
  PutU32(static_cast<uint32_t>(text.size()));
  PutBytes(reinterpret_cast<const uint8_t*>(text.data()), text.size());
}

StatusOr<PageId> MetadataWriter::Finish(PageCache* cache) const {
  const size_t payload_per_page = cache->page_size() - kPageHeaderSize;
  PageId head = kInvalidPageId;
  uint8_t* previous_page = nullptr;
  size_t offset = 0;
  do {
    uint8_t* data = nullptr;
    BOXES_ASSIGN_OR_RETURN(const PageId page, cache->AllocatePage(&data));
    if (previous_page != nullptr) {
      EncodeFixed64(previous_page, page);  // link from the previous page
    } else {
      head = page;
    }
    const size_t chunk =
        std::min(payload_per_page, buffer_.size() - offset);
    EncodeFixed64(data, kInvalidPageId);
    EncodeFixed32(data + 8, static_cast<uint32_t>(chunk));
    std::memcpy(data + kPageHeaderSize, buffer_.data() + offset, chunk);
    offset += chunk;
    previous_page = data;
  } while (offset < buffer_.size());
  return head;
}

StatusOr<MetadataReader> MetadataReader::Load(PageCache* cache, PageId head) {
  MetadataReader reader;
  PageId page = head;
  uint64_t guard = 0;
  while (page != kInvalidPageId) {
    if (++guard > (1u << 24)) {
      return Status::Corruption("metadata chain does not terminate");
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache->GetPage(page));
    const PageId next = DecodeFixed64(data);
    const uint32_t used = DecodeFixed32(data + 8);
    if (used > cache->page_size() - kPageHeaderSize) {
      return Status::Corruption("metadata page overflows its frame");
    }
    reader.buffer_.insert(reader.buffer_.end(), data + kPageHeaderSize,
                          data + kPageHeaderSize + used);
    page = next;
  }
  return reader;
}

StatusOr<uint32_t> MetadataReader::GetU32() {
  if (position_ + 4 > buffer_.size()) {
    return Status::OutOfRange("metadata stream truncated");
  }
  const uint32_t value = DecodeFixed32(buffer_.data() + position_);
  position_ += 4;
  return value;
}

StatusOr<uint64_t> MetadataReader::GetU64() {
  if (position_ + 8 > buffer_.size()) {
    return Status::OutOfRange("metadata stream truncated");
  }
  const uint64_t value = DecodeFixed64(buffer_.data() + position_);
  position_ += 8;
  return value;
}

Status MetadataReader::GetBytes(uint8_t* out, size_t size) {
  if (position_ + size > buffer_.size()) {
    return Status::OutOfRange("metadata stream truncated");
  }
  std::memcpy(out, buffer_.data() + position_, size);
  position_ += size;
  return Status::OK();
}

StatusOr<std::string> MetadataReader::GetString() {
  BOXES_ASSIGN_OR_RETURN(const uint32_t size, GetU32());
  if (position_ + size > buffer_.size()) {
    return Status::OutOfRange("metadata stream truncated");
  }
  std::string text(reinterpret_cast<const char*>(buffer_.data() + position_),
                   size);
  position_ += size;
  return text;
}

Status FreeMetadataChain(PageCache* cache, PageId head) {
  PageId page = head;
  uint64_t guard = 0;
  while (page != kInvalidPageId) {
    if (++guard > (1u << 24)) {
      return Status::Corruption("metadata chain does not terminate");
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache->GetPage(page));
    const PageId next = DecodeFixed64(data);
    BOXES_RETURN_IF_ERROR(cache->FreePage(page));
    page = next;
  }
  return Status::OK();
}

Status InitializeSuperblock(PageCache* cache) {
  uint8_t* data = nullptr;
  BOXES_ASSIGN_OR_RETURN(const PageId page, cache->AllocatePage(&data));
  if (page != 0) {
    return Status::FailedPrecondition(
        "the superblock must be the first allocated page");
  }
  EncodeFixed64(data, kSuperblockMagic);
  EncodeFixed64(data + 8, kInvalidPageId);
  return Status::OK();
}

Status StoreCheckpointHead(PageCache* cache, PageId head) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache->GetPageForWrite(0));
  if (DecodeFixed64(data) != kSuperblockMagic) {
    return Status::Corruption("superblock magic mismatch");
  }
  EncodeFixed64(data + 8, head);
  return Status::OK();
}

StatusOr<PageId> LoadCheckpointHead(PageCache* cache) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache->GetPage(0));
  if (DecodeFixed64(data) != kSuperblockMagic) {
    return Status::Corruption("superblock magic mismatch");
  }
  const PageId head = DecodeFixed64(data + 8);
  if (head == kInvalidPageId) {
    return Status::NotFound("no checkpoint recorded");
  }
  return head;
}

}  // namespace boxes
