#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "gtest/gtest.h"
#include "model_tree.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::ModelTree;
using testing::TestDb;

struct BBoxPropertyParam {
  bool ordinal;
  uint32_t min_fill_divisor;
  uint64_t seed;
  size_t page_size;
};

class BBoxPropertyTest : public ::testing::TestWithParam<BBoxPropertyParam> {
};

/// Drives a B-BOX and an in-memory reference model through a random mix of
/// element inserts, deletes, subtree inserts, and subtree deletes.
TEST_P(BBoxPropertyTest, RandomOpsAgreeWithModel) {
  const BBoxPropertyParam param = GetParam();
  TestDb db(param.page_size);
  BBoxOptions options;
  options.ordinal = param.ordinal;
  options.min_fill_divisor = param.min_fill_divisor;
  BBox bbox(&db.cache, options);
  Random rng(param.seed);
  ModelTree model;

  ASSERT_OK_AND_ASSIGN(const NewElement root, bbox.InsertFirstElement());
  model.SetRoot(root);

  constexpr int kSteps = 1200;
  int subtree_seed = 0;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t dice = rng.Uniform(100);
    if (model.empty()) {
      break;
    }
    if (dice < 50) {
      const int target = model.RandomElement(&rng, /*exclude_root=*/false);
      const bool before_start = rng.Bernoulli(0.5) && target != 0;
      const Lid anchor = before_start ? model.node(target).lids.start
                                      : model.node(target).lids.end;
      ASSERT_OK_AND_ASSIGN(const NewElement e,
                           bbox.InsertElementBefore(anchor));
      if (before_start) {
        model.InsertBeforeStart(target, e);
      } else {
        model.InsertAsLastChild(target, e);
      }
    } else if (dice < 80) {
      if (model.element_count() <= 1) {
        continue;
      }
      const int target = model.RandomElement(&rng, /*exclude_root=*/true);
      ASSERT_OK(bbox.Delete(model.node(target).lids.start));
      ASSERT_OK(bbox.Delete(model.node(target).lids.end));
      model.DeleteElement(target);
    } else if (dice < 92) {
      const int target = model.RandomElement(&rng, /*exclude_root=*/false);
      const bool before_start = rng.Bernoulli(0.5) && target != 0;
      const Lid anchor = before_start ? model.node(target).lids.start
                                      : model.node(target).lids.end;
      const xml::Document subtree = xml::MakeRandomDocument(
          1 + rng.Uniform(80), 4, 5000 + subtree_seed++);
      std::vector<NewElement> lids;
      ASSERT_OK(bbox.InsertSubtreeBefore(anchor, subtree, &lids));
      if (before_start) {
        model.GraftBeforeStart(target, subtree, lids);
      } else {
        model.GraftAsLastChild(target, subtree, lids);
      }
    } else {
      if (model.element_count() <= 1) {
        continue;
      }
      const int target = model.RandomElement(&rng, /*exclude_root=*/true);
      const NewElement lids = model.node(target).lids;
      ASSERT_OK(bbox.DeleteSubtree(lids.start, lids.end));
      model.DeleteSubtree(target);
    }

    if (step % 100 == 99) {
      ASSERT_OK(bbox.CheckInvariants());
      ASSERT_TRUE(LabelsStrictlyIncreasing(&bbox, model.TagOrder()))
          << "step " << step;
    }
  }

  ASSERT_OK(bbox.CheckInvariants());
  const std::vector<Lid> order = model.TagOrder();
  ASSERT_TRUE(LabelsStrictlyIncreasing(&bbox, order));
  EXPECT_EQ(bbox.live_labels(), order.size());

  if (param.ordinal) {
    for (size_t i = 0; i < order.size(); i += 17) {
      ASSERT_OK_AND_ASSIGN(const uint64_t ordinal,
                           bbox.OrdinalLookup(order[i]));
      EXPECT_EQ(ordinal, i) << "lid " << order[i];
    }
  }

  // Compare() must agree with label order on a sample of pairs.
  for (size_t i = 0; i + 23 < order.size(); i += 71) {
    ASSERT_OK_AND_ASSIGN(const int cmp,
                         bbox.Compare(order[i], order[i + 23]));
    EXPECT_LT(cmp, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, BBoxPropertyTest,
    ::testing::Values(BBoxPropertyParam{false, 2, 1, 512},
                      BBoxPropertyParam{false, 2, 2, 512},
                      BBoxPropertyParam{false, 2, 3, 8192},
                      BBoxPropertyParam{false, 4, 4, 512},
                      BBoxPropertyParam{false, 4, 5, 512},
                      BBoxPropertyParam{true, 2, 6, 512},
                      BBoxPropertyParam{true, 2, 7, 512},
                      BBoxPropertyParam{true, 4, 8, 512},
                      BBoxPropertyParam{true, 4, 9, 1024},
                      BBoxPropertyParam{true, 2, 10, 8192},
                      BBoxPropertyParam{false, 2, 11, 1024},
                      BBoxPropertyParam{false, 4, 12, 2048},
                      BBoxPropertyParam{true, 2, 13, 2048},
                      BBoxPropertyParam{false, 2, 14, 4096},
                      BBoxPropertyParam{true, 4, 15, 512},
                      BBoxPropertyParam{false, 4, 16, 512}),
    [](const ::testing::TestParamInfo<BBoxPropertyParam>& info) {
      std::string name = info.param.ordinal ? "ordinal" : "basic";
      name += "_div" + std::to_string(info.param.min_fill_divisor);
      name += "_seed" + std::to_string(info.param.seed);
      name += "_page" + std::to_string(info.param.page_size);
      return name;
    });

/// Alternating insert/delete at one spot must not thrash with divisor 4
/// (the paper's argument for the relaxed minimum fill).
TEST(BBoxChurnTest, AlternatingInsertDeleteAtOneSpot) {
  TestDb db(512);
  BBoxOptions options;
  options.min_fill_divisor = 4;
  BBox bbox(&db.cache, options);
  const xml::Document doc = xml::MakeTwoLevelDocument(1000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  constexpr int kRounds = 300;
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_OK_AND_ASSIGN(const NewElement e,
                         bbox.InsertElementBefore(lids[500].start));
    ASSERT_OK(bbox.Delete(e.start));
    ASSERT_OK(bbox.Delete(e.end));
  }
  ASSERT_OK(bbox.CheckInvariants());
  // ~3 page touches per label operation; no split/merge thrashing.
  EXPECT_LT(db.cache.stats().total(), 12u * kRounds);
}

}  // namespace
}  // namespace boxes
