// Reproduces the "Other findings" bulk-insert comparison of §7: inserting
// the concentrated test's subtree element-at-a-time versus with the bulk
// subtree-insert methods.
//
// Paper totals at full scale (2M base + 500k subtree): W-BOX 5,401,885 vs
// 11,374 I/Os; B-BOX 2,000,448 vs 492 I/Os — a 100-1000x improvement whose
// shape this bench reproduces at any scale.

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "workload/sequences.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

uint64_t RunElementwise(const std::string& name, uint64_t base,
                        uint64_t inserts, size_t page_size) {
  SchemeUnderTest unit(page_size);
  CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
  workload::RunStats stats;
  CheckOkOrDie(workload::RunConcentratedInsertion(unit.scheme.get(),
                                                  unit.cache.get(), base,
                                                  inserts, &stats),
               "element-at-a-time run");
  return stats.totals.total();
}

uint64_t RunBulk(const std::string& name, uint64_t base, uint64_t inserts,
                 size_t page_size) {
  SchemeUnderTest unit(page_size);
  CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
  const xml::Document doc = xml::MakeTwoLevelDocument(base - 1);
  std::vector<NewElement> lids;
  CheckOkOrDie(workload::UnmeasuredOp(
                   unit.cache.get(),
                   [&] { return unit.scheme->BulkLoad(doc, &lids); }),
               "BulkLoad");
  const xml::Document subtree = xml::MakeTwoLevelDocument(inserts - 1);
  workload::RunStats stats;
  CheckOkOrDie(
      workload::MeasureOp(
          unit.cache.get(),
          [&] {
            return unit.scheme->InsertSubtreeBefore(lids[doc.root()].end,
                                                    subtree, nullptr);
          },
          &stats),
      "subtree insert");
  CheckOkOrDie(unit.scheme->CheckInvariants(), "CheckInvariants");
  return stats.totals.total();
}

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* base = flags.AddInt64("base", 10000, "base document elements");
  int64_t* inserts = flags.AddInt64("inserts", 4000, "subtree elements");
  std::string* schemes =
      flags.AddString("schemes", "wbox,bbox", "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, base, 2000);
  SmokeCap(smoke, inserts, 800);

  std::printf(
      "TAB-BULK: element-at-a-time vs bulk subtree insertion of the\n"
      "concentrated test's subtree (base=%lld, subtree=%lld; paper at\n"
      "2000000/500000: W-BOX 5401885 -> 11374, B-BOX 2000448 -> 492)\n\n",
      static_cast<long long>(*base), static_cast<long long>(*inserts));
  std::printf("%-12s %18s %14s %10s\n", "scheme", "element-at-a-time",
              "bulk insert", "speedup");
  for (const std::string& name : SplitSchemes(*schemes)) {
    const uint64_t elementwise =
        RunElementwise(name, static_cast<uint64_t>(*base),
                       static_cast<uint64_t>(*inserts),
                       static_cast<size_t>(*page_size));
    const uint64_t bulk =
        RunBulk(name, static_cast<uint64_t>(*base),
                static_cast<uint64_t>(*inserts),
                static_cast<size_t>(*page_size));
    std::printf("%-12s %18llu %14llu %9.1fx\n", name.c_str(),
                static_cast<unsigned long long>(elementwise),
                static_cast<unsigned long long>(bulk),
                bulk == 0 ? 0.0
                          : static_cast<double>(elementwise) /
                                static_cast<double>(bulk));
  }
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
