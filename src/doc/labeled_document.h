#ifndef BOXES_DOC_LABELED_DOCUMENT_H_
#define BOXES_DOC_LABELED_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "storage/metadata_io.h"
#include "util/status.h"
#include "xml/document.h"

namespace boxes {

/// High-level, handle-based facade over any LabelingScheme: a live XML
/// document whose structure is maintained purely as order-based labels.
///
/// Each element gets a stable ElementHandle; the facade keeps only
/// (tag, LID pair) per element — parent/child/sibling structure exists
/// *only* in the labels and is reconstructed on demand (ToTree/ToXml),
/// which is exactly the deployment model the paper argues for: labels as
/// the structural index, LIDs as the immutable references.
class LabeledDocument {
 public:
  using ElementHandle = uint64_t;

  static constexpr ElementHandle kInvalidHandle = UINT64_MAX;

  /// The scheme must outlive this object; it may be empty or already
  /// restored from a checkpoint (then call AdoptTree to register handles).
  explicit LabeledDocument(LabelingScheme* scheme);

  LabeledDocument(const LabeledDocument&) = delete;
  LabeledDocument& operator=(const LabeledDocument&) = delete;

  LabelingScheme* scheme() const { return scheme_; }

  /// Parses XML text and bulk loads it into the (empty) scheme. Returns
  /// the root handle.
  StatusOr<ElementHandle> LoadXml(std::string_view xml_text);

  /// Bulk loads an element tree into the (empty) scheme.
  StatusOr<ElementHandle> LoadTree(const xml::Document& doc);

  /// Creates the root element of an empty document.
  StatusOr<ElementHandle> CreateRoot(std::string tag);

  /// Appends a new last child under `parent`.
  StatusOr<ElementHandle> AppendChild(ElementHandle parent, std::string tag);

  /// Inserts a new previous sibling of `sibling`.
  StatusOr<ElementHandle> InsertBefore(ElementHandle sibling,
                                       std::string tag);

  /// Pastes a whole fragment as the last child of `parent` using the
  /// scheme's bulk subtree insertion. Returns the fragment root's handle;
  /// every fragment element gets a handle.
  StatusOr<ElementHandle> PasteFragment(ElementHandle parent,
                                        const xml::Document& fragment);

  /// Registers an element that was created *outside* the facade — op-log
  /// replay re-applies inserts at the scheme level and hands their LIDs
  /// back through the replay observer; adopting them here is what keeps
  /// the handle registry covering every scheme label after recovery
  /// (CheckConsistency demands exactly that). The caller owns the claim
  /// that `lids` really is a live start/end pair.
  ElementHandle AdoptElement(std::string tag, const NewElement& lids) {
    return Register(std::move(tag), lids);
  }

  /// Removes one element; its children become children of its parent.
  Status Erase(ElementHandle handle);

  /// Removes an element and its whole subtree.
  Status EraseSubtree(ElementHandle handle);

  /// Structural predicates straight off the labels.
  StatusOr<bool> IsAncestorOf(ElementHandle ancestor,
                              ElementHandle descendant);
  /// -1 / 0 / +1 by document order of start tags.
  StatusOr<int> CompareOrder(ElementHandle a, ElementHandle b);

  bool alive(ElementHandle handle) const {
    return handle < elements_.size() && elements_[handle].alive;
  }
  const std::string& tag(ElementHandle handle) const {
    return elements_[handle].tag;
  }
  const NewElement& lids(ElementHandle handle) const {
    return elements_[handle].lids;
  }
  uint64_t element_count() const { return alive_count_; }

  /// All live handles in document order (sorted by start label).
  StatusOr<std::vector<ElementHandle>> HandlesInDocumentOrder();

  /// Reconstructs the current tree purely from the labels (stack-based
  /// nesting of the sorted intervals). `handle_of_element`, if non-null,
  /// maps the returned document's ElementIds back to handles.
  StatusOr<xml::Document> ToTree(
      std::vector<ElementHandle>* handle_of_element = nullptr);

  /// Serializes the current document to XML text.
  StatusOr<std::string> ToXml(bool pretty = true);

  /// Full self-audit: scheme invariants, label well-formedness (proper
  /// nesting, single root), and handle bookkeeping.
  Status CheckConsistency();

  /// Serializes the handle registry (tags + LID pairs) into `writer`.
  /// Combined with the scheme's own Checkpoint(), this makes a facade
  /// session fully durable.
  void SaveState(MetadataWriter* writer) const;

  /// Restores a registry saved by SaveState into this (empty) facade; the
  /// scheme must already be restored to the matching checkpoint.
  Status LoadState(MetadataReader* reader);

 private:
  struct Entry {
    std::string tag;
    NewElement lids;
    bool alive = false;
  };

  ElementHandle Register(std::string tag, const NewElement& lids);
  Status RequireAlive(ElementHandle handle) const;

  LabelingScheme* scheme_;  // not owned
  std::vector<Entry> elements_;
  uint64_t alive_count_ = 0;
};

}  // namespace boxes

#endif  // BOXES_DOC_LABELED_DOCUMENT_H_
