# Empty dependencies file for bench_fig9_xmark_distribution.
# This may be replaced when dependencies are built.
