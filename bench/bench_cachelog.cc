// Evaluates the §6 caching + logging techniques (the paper describes them
// but defers measurement; this bench fills that gap as an ablation).
//
// Workload: a read-heavy mix over a loaded document — `reads_per_update`
// cached lookups per element insertion — swept over the modification-log
// length k (0 = the basic single-timestamp caching approach, "none" = no
// caching at all). Reported: average block I/Os per lookup and how lookups
// were served (fresh cache hit / log replay / full lookup).

#include <cstdio>

#include <chrono>

#include "bench_common.h"
#include "core/cachelog/caching_store.h"
#include "util/flags.h"
#include "util/random.h"
#include "workload/sequences.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 20000, "document elements");
  int64_t* updates = flags.AddInt64("updates", 500, "element insertions");
  int64_t* reads_per_update =
      flags.AddInt64("reads_per_update", 20, "cached lookups per update");
  std::string* schemes =
      flags.AddString("schemes", "wbox,bbox", "comma-separated schemes");
  std::string* log_sizes = flags.AddString(
      "log_sizes", "0,8,64,512,4096", "log capacities k to sweep");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 4000);
  SmokeCap(smoke, updates, 100);

  std::printf(
      "CACHELOG: read-heavy workload, %lld updates x %lld reads each\n"
      "(paper §6: a log of k modifications gives ~k-fold better cache\n"
      "effectiveness than the single last-modified timestamp)\n\n",
      static_cast<long long>(*updates),
      static_cast<long long>(*reads_per_update));
  std::printf("%-12s %8s %14s %10s %10s %10s\n", "scheme", "log k",
              "avg I/Os/read", "fresh", "replayed", "full");

  for (const std::string& name : SplitSchemes(*schemes)) {
    // Baseline: uncached lookups.
    {
      SchemeUnderTest unit(static_cast<size_t>(*page_size));
      CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
      const xml::Document doc =
          xml::MakeTwoLevelDocument(static_cast<uint64_t>(*elements));
      std::vector<NewElement> lids;
      CheckOkOrDie(workload::UnmeasuredOp(
                       unit.cache.get(),
                       [&] { return unit.scheme->BulkLoad(doc, &lids); }),
                   "BulkLoad");
      Random rng(3);
      workload::RunStats stats;
      for (int64_t u = 0; u < *updates; ++u) {
        CheckOkOrDie(
            workload::UnmeasuredOp(
                unit.cache.get(),
                [&] {
                  return unit.scheme
                      ->InsertElementBefore(
                          lids[1 + rng.Uniform(lids.size() - 1)].start)
                      .status();
                }),
            "update");
        for (int64_t r = 0; r < *reads_per_update; ++r) {
          const NewElement& element = lids[rng.Uniform(lids.size())];
          CheckOkOrDie(workload::MeasureOp(
                           unit.cache.get(),
                           [&] {
                             return unit.scheme->Lookup(element.start)
                                 .status();
                           },
                           &stats),
                       "read");
        }
      }
      std::printf("%-12s %8s %14.2f %10s %10s %10s\n", name.c_str(), "none",
                  stats.MeanCost(), "-", "-", "-");
    }

    for (const std::string& k_text : SplitSchemes(*log_sizes)) {
      const size_t k = static_cast<size_t>(std::stoull(k_text));
      SchemeUnderTest unit(static_cast<size_t>(*page_size));
      CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
      CachingLabelStore store(unit.scheme.get(), k);
      const xml::Document doc =
          xml::MakeTwoLevelDocument(static_cast<uint64_t>(*elements));
      std::vector<NewElement> lids;
      CheckOkOrDie(workload::UnmeasuredOp(
                       unit.cache.get(),
                       [&] { return unit.scheme->BulkLoad(doc, &lids); }),
                   "BulkLoad");
      std::vector<CachedLabelRef> refs;
      refs.reserve(lids.size());
      for (const NewElement& element : lids) {
        refs.push_back(store.MakeRef(element.start));
      }
      // Warm every reference once (unmeasured).
      for (CachedLabelRef& ref : refs) {
        CheckOkOrDie(workload::UnmeasuredOp(
                         unit.cache.get(),
                         [&] { return store.Lookup(&ref).status(); }),
                     "warm");
      }
      store.ResetServeStats();
      Random rng(3);
      workload::RunStats stats;
      for (int64_t u = 0; u < *updates; ++u) {
        CheckOkOrDie(
            workload::UnmeasuredOp(
                unit.cache.get(),
                [&] {
                  return unit.scheme
                      ->InsertElementBefore(
                          lids[1 + rng.Uniform(lids.size() - 1)].start)
                      .status();
                }),
            "update");
        for (int64_t r = 0; r < *reads_per_update; ++r) {
          CachedLabelRef& ref = refs[rng.Uniform(refs.size())];
          CheckOkOrDie(
              workload::MeasureOp(
                  unit.cache.get(),
                  [&] { return store.Lookup(&ref).status(); }, &stats),
              "cached read");
        }
      }
      std::printf("%-12s %8zu %14.2f %10llu %10llu %10llu\n", name.c_str(),
                  k, stats.MeanCost(),
                  static_cast<unsigned long long>(store.served_fresh()),
                  static_cast<unsigned long long>(store.served_replayed()),
                  static_cast<unsigned long long>(store.served_full()));
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: avg I/Os per read drop from the scheme's full\n"
      "lookup cost (no caching) toward ~0 as the log grows; k=0 only helps\n"
      "while no update intervenes between reads.\n\n");

  // Ablation of the paper's §8 future work: replay CPU cost of the plain
  // FIFO log vs the indexed log at a large k where almost no entry is
  // relevant to any given lookup.
  const size_t big_k = 8192;
  std::printf(
      "LOG IMPLEMENTATION (paper §8 future work): replay CPU time at\n"
      "k=%zu with scattered updates (I/O results are identical).\n"
      "'dense' = many logged updates per leaf range (stabbing sets are\n"
      "large, the plain scan competes); 'sparse' = updates spread thin\n"
      "(stabbing sets are tiny, the index wins by orders of magnitude).\n",
      big_k);
  std::printf("%-8s %-10s %16s %12s\n", "regime", "log impl",
              "time per read", "replays");
  for (int run = 0; run < 4; ++run) {
    const bool sparse = run >= 2;
    const int impl = run % 2;
    const uint64_t doc_elements =
        static_cast<uint64_t>(*elements) * (sparse ? 10 : 1);
    SchemeUnderTest unit(static_cast<size_t>(*page_size));
    CheckOkOrDie(MakeScheme("wbox", &unit), "MakeScheme");
    CachingLabelStore store(unit.scheme.get(), big_k,
                            impl == 0
                                ? CachingLabelStore::LogImpl::kLinear
                                : CachingLabelStore::LogImpl::kIndexed);
    const xml::Document doc = xml::MakeTwoLevelDocument(doc_elements);
    std::vector<NewElement> lids;
    CheckOkOrDie(workload::UnmeasuredOp(
                     unit.cache.get(),
                     [&] { return unit.scheme->BulkLoad(doc, &lids); }),
                 "BulkLoad");
    std::vector<CachedLabelRef> refs;
    refs.reserve(lids.size());
    for (const NewElement& element : lids) {
      refs.push_back(store.MakeRef(element.start));
    }
    Random rng(5);
    // Warm all refs, then fill the log with big_k/2 scattered updates so
    // every subsequent cached read replays a long window.
    for (CachedLabelRef& ref : refs) {
      CheckOkOrDie(store.Lookup(&ref).status(), "warm");
    }
    for (size_t u = 0; u < big_k / 2; ++u) {
      CheckOkOrDie(
          unit.scheme
              ->InsertElementBefore(
                  lids[1 + rng.Uniform(lids.size() - 1)].start)
              .status(),
          "update");
    }
    store.ResetServeStats();
    const auto start_time = std::chrono::steady_clock::now();
    constexpr int kReads = 4000;
    for (int r = 0; r < kReads; ++r) {
      CachedLabelRef& ref = refs[rng.Uniform(refs.size())];
      CheckOkOrDie(store.Lookup(&ref).status(), "read");
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start_time)
                             .count();
    std::printf("%-8s %-10s %13lld ns %12llu\n",
                sparse ? "sparse" : "dense",
                impl == 0 ? "linear" : "indexed",
                static_cast<long long>(elapsed / kReads),
                static_cast<unsigned long long>(store.served_replayed()));
  }
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
