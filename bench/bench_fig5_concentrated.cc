// Reproduces Figure 5: amortized update cost under the concentrated
// insertion sequence (paper §7). A two-level base document is bulk loaded;
// a two-level subtree is then inserted one element at a time, each pair
// squeezed into the center of the growing sibling list.
//
// Paper scale: --base=2000000 --inserts=500000. The default is laptop
// scale; the *shape* (B-BOX < B-BOX-O < W-BOX < W-BOX-O << naive-k, with
// naive getting worse as k shrinks) is scale-insensitive.

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "workload/sequences.h"

namespace boxes::bench {
namespace {

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* base = flags.AddInt64("base", 10000, "base document elements");
  int64_t* inserts =
      flags.AddInt64("inserts", 2500, "elements inserted concentrated");
  std::string* schemes = flags.AddString(
      "schemes",
      "wbox,wbox-o,bbox,bbox-o,naive-1,naive-4,naive-16,naive-64,"
      "naive-256,ordpath",
      "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  std::string* metrics_json = flags.AddString(
      "metrics_json", "",
      "write counters, latency histograms and per-phase I/O as JSON here");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, base, 2000);
  SmokeCap(smoke, inserts, 500);

  std::printf(
      "FIG5: amortized update cost, concentrated insertion sequence\n"
      "base=%lld elements, inserts=%lld elements, page=%lld B "
      "(paper: base=2000000, inserts=500000, page=8192)\n\n",
      static_cast<long long>(*base), static_cast<long long>(*inserts),
      static_cast<long long>(*page_size));
  std::printf("%-12s %14s %14s %10s %8s\n", "scheme", "avg I/Os/elem",
              "total I/Os", "p99 I/Os", "height");

  for (const std::string& name : SplitSchemes(*schemes)) {
    SchemeUnderTest unit(static_cast<size_t>(*page_size));
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    if (!metrics_json->empty()) {
      unit.scheme->SetMetrics(&GlobalMetrics());
    }
    workload::RunStats stats;
    CheckOkOrDie(
        workload::RunConcentratedInsertion(unit.scheme.get(),
                                           unit.cache.get(),
                                           static_cast<uint64_t>(*base),
                                           static_cast<uint64_t>(*inserts),
                                           &stats),
        "concentrated run");
    StatusOr<SchemeStats> scheme_stats = unit.scheme->GetStats();
    CheckOkOrDie(scheme_stats.status(), "GetStats");
    std::printf("%-12s %14.2f %14llu %10llu %8llu\n", name.c_str(),
                stats.MeanCost(),
                static_cast<unsigned long long>(stats.totals.total()),
                static_cast<unsigned long long>(
                    stats.per_op_cost.Percentile(0.99)),
                static_cast<unsigned long long>(scheme_stats->height));
    workload::ExportRunStats("fig5." + name, stats, &GlobalMetrics());
  }
  MaybeWriteMetricsJson(*metrics_json);
  std::printf(
      "\nExpected shape (paper Fig. 5): B-BOX lowest, then B-BOX-O, W-BOX,\n"
      "W-BOX-O; every naive-k orders of magnitude worse, degrading as k\n"
      "shrinks (naive-1 relabels the file on almost every insertion).\n");
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
