#ifndef BOXES_CORE_COMMON_LABEL_H_
#define BOXES_CORE_COMMON_LABEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/biguint.h"

namespace boxes {

/// A label value returned by Lookup().
///
/// Different schemes produce different shapes — W-BOX and naive-k produce a
/// single integer (possibly wider than 64 bits for naive-k), B-BOX produces
/// the vector of child ordinals along the root→leaf path — but all of them
/// compare consistently with document order *within one scheme at one point
/// in time*. Label normalizes them to a component vector whose
/// lexicographic order equals document order:
///   * scalars become a single component;
///   * wide integers become fixed-width big-endian component vectors;
///   * B-BOX paths are used as-is (all root→leaf paths share one length).
///
/// Labels are transient values: the paper's point is precisely that stored
/// copies go stale, which is what LIDs + the caching/logging layer address.
class Label {
 public:
  Label() = default;

  static Label FromScalar(uint64_t value);
  /// Encodes `value` as exactly `width_limbs` big-endian components.
  static Label FromBigUint(const BigUint& value, size_t width_limbs);
  static Label FromComponents(std::vector<uint64_t> components);

  const std::vector<uint64_t>& components() const { return components_; }

  /// The scalar value; requires a single-component label.
  uint64_t scalar() const;

  /// Reassembles a BigUint from the big-endian components.
  BigUint ToBigUint() const;

  /// Lexicographic comparison; equal prefixes order the shorter first.
  /// Returns <0, 0, >0.
  int Compare(const Label& other) const;

  /// Bits needed to encode this label with fixed-width components: number
  /// of components times the bit width of the largest component (minimum 1
  /// bit per component).
  uint32_t BitLength() const;

  /// "(c1,c2,...)" for multi-component labels, plain number for scalars.
  std::string ToString() const;

  friend bool operator==(const Label& a, const Label& b) {
    return a.components_ == b.components_;
  }
  friend bool operator<(const Label& a, const Label& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator<=(const Label& a, const Label& b) {
    return a.Compare(b) <= 0;
  }
  friend bool operator>(const Label& a, const Label& b) {
    return a.Compare(b) > 0;
  }
  friend bool operator>=(const Label& a, const Label& b) {
    return a.Compare(b) >= 0;
  }

 private:
  std::vector<uint64_t> components_;
};

/// The start/end label pair of one element.
struct ElementLabels {
  Label start;
  Label end;
};

/// True iff the element labeled `ancestor` is a proper ancestor of the one
/// labeled `descendant` (paper §3: l<(a) < l<(d) and l>(d) < l>(a)).
bool IsAncestor(const ElementLabels& ancestor, const ElementLabels& descendant);

/// True iff `a` precedes `b` in document order of start tags.
bool PrecedesInDocumentOrder(const ElementLabels& a, const ElementLabels& b);

}  // namespace boxes

#endif  // BOXES_CORE_COMMON_LABEL_H_
