#include "util/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace boxes {

namespace {

/// Escapes a metric name for use as a JSON string. Names are plain
/// identifiers in practice; this keeps the output valid even if one is not.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendU64(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

void AppendHistogramJson(std::string* out, const Histogram& h) {
  *out += "{\"count\": ";
  AppendU64(out, h.count());
  *out += ", \"sum\": ";
  AppendU64(out, h.sum());
  *out += ", \"mean\": ";
  AppendDouble(out, h.Mean());
  *out += ", \"min\": ";
  AppendU64(out, h.min());
  *out += ", \"p50\": ";
  AppendU64(out, h.count() == 0 ? 0 : h.Percentile(0.5));
  *out += ", \"p90\": ";
  AppendU64(out, h.count() == 0 ? 0 : h.Percentile(0.9));
  *out += ", \"p99\": ";
  AppendU64(out, h.count() == 0 ? 0 : h.Percentile(0.99));
  *out += ", \"max\": ";
  AppendU64(out, h.max());
  *out += "}";
}

void AppendIoStatsJson(std::string* out, const IoStats& stats) {
  *out += "{\"reads\": ";
  AppendU64(out, stats.reads);
  *out += ", \"writes\": ";
  AppendU64(out, stats.writes);
  *out += "}";
}

}  // namespace

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       uint64_t delta) {
  {
    // Fast path: the counter exists; bump it under the shared lock (the
    // atomic makes the increment itself race-free and exact).
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second.fetch_add(delta, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  counters_[name].fetch_add(delta, std::memory_order_relaxed);
}

MetricsRegistry::Counter* MetricsRegistry::GetCounter(
    const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      return &it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return &counters_[name];
}

void MetricsRegistry::SetGauge(const std::string& name, uint64_t value) {
  GetCounter(name)->store(value, std::memory_order_relaxed);
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0
                               : it->second.load(std::memory_order_relaxed);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      return &it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return &histograms_[name];
}

void MetricsRegistry::RecordValue(const std::string& name, uint64_t value) {
  GetHistogram(name)->Add(value);
}

void MetricsRegistry::MergePhaseIo(const std::string& source,
                                   const PhaseIoTable& table) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  PhaseIoTable& into = phase_io_[source];
  for (size_t i = 0; i < kNumIoPhases; ++i) {
    into[i].reads += table[i].reads;
    into[i].writes += table[i].writes;
  }
}

PhaseIoTable MetricsRegistry::PhaseIoFor(const std::string& source) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = phase_io_.find(source);
  return it == phase_io_.end() ? PhaseIoTable{} : it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": ";
    AppendU64(&out, value.load(std::memory_order_relaxed));
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": ";
    AppendHistogramJson(&out, histogram);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"phases\": {";
  first = true;
  for (const auto& [source, table] : phase_io_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(source) + "\": {";
    for (size_t i = 0; i < kNumIoPhases; ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "      \"";
      out += IoPhaseName(static_cast<IoPhase>(i));
      out += "\": ";
      AppendIoStatsJson(&out, table[i]);
    }
    out += "\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open metrics file '" + path + "'");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  if (std::fclose(file) != 0 || written != json.size() || !newline_ok) {
    return Status::IoError("short write to metrics file '" + path + "'");
  }
  return Status::OK();
}

void MetricsRegistry::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
  phase_io_.clear();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace boxes
