#ifndef BOXES_WORKLOAD_ADMISSION_H_
#define BOXES_WORKLOAD_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/metrics.h"
#include "util/status.h"

namespace boxes {

/// Configuration of AdmissionController.
struct AdmissionOptions {
  /// Concurrent admitted requests across all documents. 0 = unlimited.
  uint32_t global_limit = 64;
  /// Concurrent admitted requests per document. 0 = unlimited.
  uint32_t per_doc_limit = 8;
  /// Requests allowed to wait for a token before newcomers are shed
  /// outright. 0 disables queueing: a request either gets a token
  /// immediately or is shed.
  uint32_t max_queue_depth = 16;
  /// Longest a queued request waits for a token before being shed
  /// (microseconds of real time). Kept short on purpose: a deep or
  /// long-waiting queue just converts overload into latency for everyone
  /// behind it.
  uint64_t max_queue_wait_us = 2'000;
};

/// Front door of the serving stack (DESIGN.md §4j): bounds how many
/// requests are *in* the system, per document and overall, and sheds the
/// excess instead of queueing it. Admission tokens are concurrency slots —
/// the classic load-shedding observation is that beyond the concurrency
/// the stack can actually execute, additional in-flight requests only add
/// queueing delay, so the cheapest place to fail is before any work
/// happens.
///
/// A request calls Admit() before touching any scheme; on OK it holds one
/// global and one per-document token until Release(). When tokens are
/// exhausted the request briefly queues (bounded both in depth and in
/// wait time); queue-full and wait-timeout shed with kResourceExhausted —
/// retryable by a *client*, and data-unavailable so a degraded serve
/// layered above can still answer. A bound RequestContext caps the queue
/// wait at the request's remaining budget, and a request whose budget is
/// already spent is rejected with kDeadlineExceeded without queueing.
///
/// Thread-safe; Admit blocks only while queued. Use AdmissionTicket for
/// RAII release.
class AdmissionController {
 public:
  /// Admission outcome counters (mirrored into an attached MetricsRegistry
  /// under "admission.*").
  struct Counters {
    std::atomic<uint64_t> admitted{0};         // tokens granted
    std::atomic<uint64_t> queued{0};           // grants that had to wait first
    std::atomic<uint64_t> shed_queue_full{0};  // rejected: queue at depth cap
    std::atomic<uint64_t> shed_timeout{0};     // rejected: token wait timed out
    std::atomic<uint64_t> deadline_rejects{0};  // rejected: request budget spent
  };

  AdmissionController(size_t num_docs, AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Acquires one global + one per-document token, queueing briefly if
  /// needed. `doc` indexes [0, num_docs). OK means the caller MUST
  /// Release(doc) when done.
  Status Admit(size_t doc);
  void Release(size_t doc);

  /// Currently admitted requests (for tests).
  uint32_t global_active() const;
  uint32_t doc_active(size_t doc) const;
  /// Currently queued requests (for tests).
  uint32_t waiting() const;

  const Counters& counters() const { return counters_; }
  const AdmissionOptions& options() const { return options_; }

  /// Attaches (or detaches, with nullptr) a metrics registry; outcomes are
  /// counted there under "admission.*". Resolve-once handles — call at
  /// setup, not during traffic.
  void SetMetrics(MetricsRegistry* metrics);

 private:
  struct MetricHandles {
    MetricsRegistry::Counter* admitted = nullptr;
    MetricsRegistry::Counter* queued = nullptr;
    MetricsRegistry::Counter* shed_queue_full = nullptr;
    MetricsRegistry::Counter* shed_timeout = nullptr;
    MetricsRegistry::Counter* deadline_rejects = nullptr;
  };

  bool GrantableLocked(size_t doc) const;
  void Count(std::atomic<uint64_t> Counters::*field,
             MetricsRegistry::Counter* handle);

  const AdmissionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint32_t global_active_ = 0;
  std::vector<uint32_t> doc_active_;
  uint32_t waiting_ = 0;

  Counters counters_;
  MetricHandles handles_;
};

/// RAII admission token: admits on construction, releases on destruction
/// when admission succeeded. Check status() before doing work.
class AdmissionTicket {
 public:
  AdmissionTicket(AdmissionController* controller, size_t doc)
      : controller_(controller), doc_(doc), status_(controller->Admit(doc)) {}
  ~AdmissionTicket() {
    if (status_.ok()) {
      controller_->Release(doc_);
    }
  }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  const Status& status() const { return status_; }
  bool admitted() const { return status_.ok(); }

 private:
  AdmissionController* controller_;
  size_t doc_;
  Status status_;
};

}  // namespace boxes

#endif  // BOXES_WORKLOAD_ADMISSION_H_
