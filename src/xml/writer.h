#ifndef BOXES_XML_WRITER_H_
#define BOXES_XML_WRITER_H_

#include <string>

#include "xml/document.h"

namespace boxes::xml {

/// Serializes a document to XML text. With `pretty` each element starts on
/// its own indented line; otherwise the output is a single line.
std::string WriteDocument(const Document& doc, bool pretty = true);

}  // namespace boxes::xml

#endif  // BOXES_XML_WRITER_H_
