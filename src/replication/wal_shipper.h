#ifndef BOXES_REPLICATION_WAL_SHIPPER_H_
#define BOXES_REPLICATION_WAL_SHIPPER_H_

#include <cstdint>
#include <vector>

#include "replication/transport.h"
#include "storage/wal.h"
#include "util/metrics.h"

namespace boxes::replication {

/// Primary-side half of WAL shipping (DESIGN.md §4k): taps WalPipeline's
/// ship hook and streams every durably appended batch onto the link as a
/// ShipFrame. Shipping is strictly an observer of the primary's own
/// durability path — a dropped, torn, or unreachable ship NEVER fails the
/// flush that triggered it; the standby detects the hole by batch-id gap
/// and asks for ReShipFrom, which replays history out of the primary's
/// own on-device log.
class WalShipper {
 public:
  WalShipper(WalPipeline* pipeline, PageCache* cache, FaultyLink* link,
             MetricsRegistry* metrics = nullptr);

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Installs this shipper as `pipeline`'s ship hook. The shipper must
  /// outlive the pipeline or the hook must be cleared first.
  void Attach();

  /// Ships one batch (called by the hook; public for catch-up paths and
  /// tests). Failures are counted, not returned — see class comment.
  void Ship(uint64_t generation, uint64_t batch_id,
            const std::vector<BatchOp>& ops);

  /// Catch-up: re-scans the primary's own op log and re-ships every batch
  /// with id >= `from_batch`, in id order, choosing the last complete
  /// attempt of each id (the acknowledged copy). FailedPrecondition when
  /// any id in [from_batch, next unassigned) has no complete copy left —
  /// its pages were recycled by truncation — in which case the standby is
  /// too far behind the log and must re-bootstrap from a backup byte copy.
  Status ReShipFrom(uint64_t from_batch);

  uint64_t shipped_batches() const { return shipped_batches_; }
  /// Ships the link refused (down) or that never left this node.
  uint64_t ship_failures() const { return ship_failures_; }
  /// Batches re-shipped by catch-up ("repl.ship_retries").
  uint64_t ship_retries() const { return ship_retries_; }

 private:
  void ShipStream(uint64_t generation, uint64_t batch_id, uint32_t op_count,
                  std::vector<uint8_t> stream);

  WalPipeline* pipeline_;  // not owned
  PageCache* cache_;       // not owned
  FaultyLink* link_;       // not owned
  MetricsRegistry* metrics_ = nullptr;  // not owned
  uint64_t shipped_batches_ = 0;
  uint64_t ship_failures_ = 0;
  uint64_t ship_retries_ = 0;
};

}  // namespace boxes::replication

#endif  // BOXES_REPLICATION_WAL_SHIPPER_H_
