#include "util/request_context.h"

#include <chrono>
#include <string>

namespace boxes {

namespace {

thread_local RequestContext* tls_request_context = nullptr;

}  // namespace

uint64_t SteadyNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

RequestContext RequestContext::WithTimeout(
    uint64_t timeout_us, std::function<uint64_t()> now_fn) {
  RequestContext context;
  context.now_fn_ = std::move(now_fn);
  context.deadline_us_ = context.now_us() + timeout_us;
  return context;
}

uint64_t RequestContext::remaining_us() const {
  if (!has_deadline()) {
    return kNoDeadline;
  }
  const uint64_t now = now_us();
  return now >= deadline_us_ ? 0 : deadline_us_ - now;
}

Status RequestContext::Check(const char* where) const {
  if (expired()) {
    return Status::DeadlineExceeded(std::string("request deadline exceeded (") +
                                    where + ")");
  }
  if (ios_charged_ >= io_budget_) {
    return Status::DeadlineExceeded(
        std::string("request I/O budget exhausted (") + where + ", " +
        std::to_string(ios_charged_) + " I/Os charged)");
  }
  return Status::OK();
}

Status RequestContext::ChargeIo(const char* where) {
  BOXES_RETURN_IF_ERROR(Check(where));
  ++ios_charged_;
  return Status::OK();
}

RequestContext* RequestContext::Current() { return tls_request_context; }

uint64_t RequestContext::CurrentRemainingUs() {
  const RequestContext* context = tls_request_context;
  return context == nullptr ? kNoDeadline : context->remaining_us();
}

ScopedRequestContext::ScopedRequestContext(RequestContext* context)
    : previous_(tls_request_context) {
  tls_request_context = context;
}

ScopedRequestContext::~ScopedRequestContext() {
  tls_request_context = previous_;
}

}  // namespace boxes
