#include "core/bbox/bbox_node.h"

#include <cstring>

#include "util/coding.h"

namespace boxes {

BBoxParams BBoxParams::Derive(size_t page_size, bool ordinal,
                              uint32_t min_fill_divisor) {
  BOXES_CHECK(min_fill_divisor == 2 || min_fill_divisor == 4);
  BBoxParams p;
  p.page_size = page_size;
  p.ordinal = ordinal;
  p.min_fill_divisor = min_fill_divisor;
  p.leaf_capacity = (page_size - BBoxNodeHeader::kHeaderSize) / 8;
  p.internal_entry_size = ordinal ? 16 : 8;
  p.internal_capacity =
      (page_size - BBoxNodeHeader::kHeaderSize) / p.internal_entry_size;
  BOXES_CHECK(p.leaf_capacity >= 8);
  BOXES_CHECK(p.internal_capacity >= 8);
  return p;
}

// ---------------------------------------------------------------------------
// BBoxNodeHeader

void BBoxNodeHeader::InitHeader(uint8_t type, uint8_t level) {
  std::memset(data_, 0, kHeaderSize);
  data_[0] = type;
  data_[1] = level;
  EncodeFixed64(data_ + 8, kInvalidPageId);
}

uint16_t BBoxNodeHeader::count() const { return DecodeFixed16(data_ + 2); }
void BBoxNodeHeader::set_count(uint16_t count) {
  EncodeFixed16(data_ + 2, count);
}
PageId BBoxNodeHeader::parent() const { return DecodeFixed64(data_ + 8); }
void BBoxNodeHeader::set_parent(PageId parent) {
  EncodeFixed64(data_ + 8, parent);
}

// ---------------------------------------------------------------------------
// BBoxLeafView

Lid BBoxLeafView::lid(uint16_t index) const {
  return DecodeFixed64(data_ + kHeaderSize + index * 8);
}
void BBoxLeafView::set_lid(uint16_t index, Lid lid) {
  EncodeFixed64(data_ + kHeaderSize + index * 8, lid);
}

int BBoxLeafView::Find(Lid target) const {
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; ++i) {
    if (lid(i) == target) {
      return i;
    }
  }
  return -1;
}

void BBoxLeafView::InsertAt(uint16_t index, Lid lid_value) {
  const uint16_t n = count();
  BOXES_CHECK(n < params_->leaf_capacity);
  BOXES_CHECK(index <= n);
  uint8_t* base = data_ + kHeaderSize;
  std::memmove(base + (index + 1) * 8, base + index * 8, (n - index) * 8);
  EncodeFixed64(base + index * 8, lid_value);
  set_count(n + 1);
}

void BBoxLeafView::RemoveAt(uint16_t index) { RemoveRange(index, index); }

void BBoxLeafView::RemoveRange(uint16_t first, uint16_t last) {
  const uint16_t n = count();
  BOXES_CHECK(first <= last && last < n);
  uint8_t* base = data_ + kHeaderSize;
  std::memmove(base + first * 8, base + (last + 1) * 8,
               (n - last - 1) * 8);
  set_count(n - (last - first + 1));
}

void BBoxLeafView::MoveSuffixTo(uint16_t from, BBoxLeafView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(from <= n);
  const uint16_t moving = n - from;
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + moving <= params_->leaf_capacity);
  std::memcpy(dst->data_ + kHeaderSize + dst_n * 8,
              data_ + kHeaderSize + from * 8, moving * 8);
  dst->set_count(dst_n + moving);
  set_count(from);
}

void BBoxLeafView::MoveSuffixToFront(uint16_t from, BBoxLeafView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(from <= n);
  const uint16_t moving = n - from;
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + moving <= params_->leaf_capacity);
  uint8_t* dst_base = dst->data_ + kHeaderSize;
  std::memmove(dst_base + moving * 8, dst_base, dst_n * 8);
  std::memcpy(dst_base, data_ + kHeaderSize + from * 8, moving * 8);
  dst->set_count(dst_n + moving);
  set_count(from);
}

void BBoxLeafView::MovePrefixTo(uint16_t n_moving, BBoxLeafView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(n_moving <= n);
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + n_moving <= params_->leaf_capacity);
  std::memcpy(dst->data_ + kHeaderSize + dst_n * 8, data_ + kHeaderSize,
              n_moving * 8);
  std::memmove(data_ + kHeaderSize, data_ + kHeaderSize + n_moving * 8,
               (n - n_moving) * 8);
  dst->set_count(dst_n + n_moving);
  set_count(n - n_moving);
}

// ---------------------------------------------------------------------------
// BBoxInternalView

uint8_t* BBoxInternalView::entry_ptr(uint16_t index) {
  return data_ + kHeaderSize + index * params_->internal_entry_size;
}
const uint8_t* BBoxInternalView::entry_ptr(uint16_t index) const {
  return data_ + kHeaderSize + index * params_->internal_entry_size;
}

PageId BBoxInternalView::child(uint16_t index) const {
  return DecodeFixed64(entry_ptr(index));
}
void BBoxInternalView::set_child(uint16_t index, PageId page) {
  EncodeFixed64(entry_ptr(index), page);
}
uint64_t BBoxInternalView::size(uint16_t index) const {
  if (!params_->ordinal) {
    return 0;
  }
  return DecodeFixed64(entry_ptr(index) + 8);
}
void BBoxInternalView::set_size(uint16_t index, uint64_t size) {
  if (params_->ordinal) {
    EncodeFixed64(entry_ptr(index) + 8, size);
  }
}

int BBoxInternalView::FindChild(PageId page) const {
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; ++i) {
    if (child(i) == page) {
      return i;
    }
  }
  return -1;
}

void BBoxInternalView::InsertAt(uint16_t index, PageId child_page,
                                uint64_t size_value) {
  const uint16_t n = count();
  BOXES_CHECK(n < params_->internal_capacity);
  BOXES_CHECK(index <= n);
  const size_t es = params_->internal_entry_size;
  std::memmove(entry_ptr(index) + es, entry_ptr(index), (n - index) * es);
  set_count(n + 1);
  set_child(index, child_page);
  if (params_->ordinal) {
    set_size(index, size_value);
  }
}

void BBoxInternalView::RemoveAt(uint16_t index) { RemoveRange(index, index); }

void BBoxInternalView::RemoveRange(uint16_t first, uint16_t last) {
  const uint16_t n = count();
  BOXES_CHECK(first <= last && last < n);
  const size_t es = params_->internal_entry_size;
  std::memmove(entry_ptr(first), entry_ptr(last + 1), (n - last - 1) * es);
  set_count(n - (last - first + 1));
}

void BBoxInternalView::MoveSuffixTo(uint16_t from, BBoxInternalView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(from <= n);
  const uint16_t moving = n - from;
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + moving <= params_->internal_capacity);
  const size_t es = params_->internal_entry_size;
  std::memcpy(dst->entry_ptr(dst_n), entry_ptr(from), moving * es);
  dst->set_count(dst_n + moving);
  set_count(from);
}

void BBoxInternalView::MoveSuffixToFront(uint16_t from,
                                         BBoxInternalView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(from <= n);
  const uint16_t moving = n - from;
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + moving <= params_->internal_capacity);
  const size_t es = params_->internal_entry_size;
  std::memmove(dst->entry_ptr(static_cast<uint16_t>(moving)),
               dst->entry_ptr(0), dst_n * es);
  std::memcpy(dst->entry_ptr(0), entry_ptr(from), moving * es);
  dst->set_count(dst_n + moving);
  set_count(from);
}

void BBoxInternalView::MovePrefixTo(uint16_t n_moving, BBoxInternalView* dst) {
  const uint16_t n = count();
  BOXES_CHECK(n_moving <= n);
  const uint16_t dst_n = dst->count();
  BOXES_CHECK(dst_n + n_moving <= params_->internal_capacity);
  const size_t es = params_->internal_entry_size;
  std::memcpy(dst->entry_ptr(dst_n), entry_ptr(0), n_moving * es);
  std::memmove(entry_ptr(0), entry_ptr(n_moving), (n - n_moving) * es);
  dst->set_count(dst_n + n_moving);
  set_count(n - n_moving);
}

uint64_t BBoxInternalView::SizeSum() const {
  uint64_t sum = 0;
  const uint16_t n = count();
  for (uint16_t i = 0; i < n; ++i) {
    sum += size(i);
  }
  return sum;
}

}  // namespace boxes
