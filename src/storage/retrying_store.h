#ifndef BOXES_STORAGE_RETRYING_STORE_H_
#define BOXES_STORAGE_RETRYING_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page_store.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"

namespace boxes {

/// Configuration of RetryingPageStore's backoff and budget machinery.
struct RetryingStoreOptions {
  /// Attempts per operation, including the first one. 1 disables retry.
  uint32_t max_attempts = 6;
  /// Backoff before the first retry, in microseconds (of virtual or real
  /// time, see `sleep`).
  uint64_t initial_backoff_us = 100;
  /// Each further retry multiplies the backoff by this factor...
  double backoff_multiplier = 2.0;
  /// ...capped at this ceiling.
  uint64_t max_backoff_us = 20'000;
  /// Per-operation backoff budget: once the accumulated backoff of the
  /// current operation would exceed this deadline, the store gives up and
  /// surfaces the last error even if attempts remain.
  uint64_t op_deadline_us = 200'000;
  /// Seed for the jitter PRNG. Jitter is deterministic given the seed and
  /// the operation sequence, so fault-storm tests replay exactly.
  uint64_t seed = 0x7e77;
  /// Sleep function invoked with each backoff interval. The default (null)
  /// only *accounts* the backoff (virtual time) — tests and benches measure
  /// retry schedules without real delays. Pass e.g. usleep for production.
  std::function<void(uint64_t backoff_us)> sleep = nullptr;
};

/// Decorator that makes any PageStore resilient to transient faults
/// (DESIGN.md §4f): operations failing with a retryable status (see
/// IsRetryableCode) are reissued under bounded exponential backoff with
/// deterministic seeded jitter, until they succeed, attempts run out, the
/// per-operation deadline is exhausted, or a permanent error (e.g.
/// Corruption) surfaces. Page reads and writes are idempotent, which is
/// what makes blind reissue safe.
///
/// The store also honors the calling request's own budget (DESIGN.md §4j):
/// when a RequestContext is bound to the thread and its remaining time
/// cannot cover the next backoff interval, the store gives up immediately
/// with kDeadlineExceeded instead of sleeping past the caller's deadline.
/// The drawn backoff is never slept in that case, so a request with 1ms
/// left is refused a 20ms sleep rather than returning 19ms late.
///
/// WriteTorn is deliberately NOT retried: it is the fault-injection hook
/// itself, and "retrying a torn write" has no physical meaning.
///
/// Thread-safe to the extent the base store is: counters are atomic and the
/// jitter PRNG is mutex-guarded, so concurrent readers may share one
/// decorator.
class RetryingPageStore : public PageStore {
 public:
  /// Retry activity counters (mirrored into an attached MetricsRegistry
  /// under "retry.*"). Atomic so concurrent reader threads sharing one
  /// store count exactly; read fields through the implicit load.
  struct Counters {
    std::atomic<uint64_t> ops{0};               // operations issued
    std::atomic<uint64_t> attempts{0};          // attempts incl. first tries
    std::atomic<uint64_t> retries{0};           // reissues after a retryable error
    std::atomic<uint64_t> recovered{0};         // ops that succeeded after >=1 retry
    std::atomic<uint64_t> gave_up{0};           // ops that exhausted their budget
    std::atomic<uint64_t> deadline_gave_up{0};  // ops cut short by the request deadline
    std::atomic<uint64_t> permanent_errors{0};  // non-retryable first-attempt errors
    std::atomic<uint64_t> backoff_us{0};        // total (virtual) backoff time
  };

  RetryingPageStore(PageStore* base, RetryingStoreOptions options = {});

  RetryingPageStore(const RetryingPageStore&) = delete;
  RetryingPageStore& operator=(const RetryingPageStore&) = delete;

  size_t page_size() const override { return base_->page_size(); }
  StatusOr<PageId> Allocate() override;
  Status Free(PageId id) override;
  Status Read(PageId id, uint8_t* buf) override;
  Status Write(PageId id, const uint8_t* buf) override;
  Status WriteUnjournaled(PageId id, const uint8_t* buf) override;
  PageId unjournaled_floor() const override {
    return base_->unjournaled_floor();
  }
  Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix) override;
  Status Sync() override;
  Status CommitEpoch(uint64_t epoch) override;
  uint64_t allocated_pages() const override {
    return base_->allocated_pages();
  }
  uint64_t total_pages() const override { return base_->total_pages(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override {
    base_->SnapshotAllocator(total, free_pages);
  }
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override {
    return base_->RestoreAllocator(total, free_pages);
  }

  const Counters& counters() const { return counters_; }
  const RetryingStoreOptions& options() const { return options_; }

  /// Attaches (or detaches, with nullptr) a metrics registry; retry
  /// counters are incremented there under "retry.*", and per-operation
  /// accumulated backoff is sampled into the "retry.backoff_ms" histogram
  /// (operations that never backed off contribute no sample). Counter and
  /// histogram handles are resolved here, once, so the per-attempt hot path
  /// touches only pre-resolved atomics — call at setup, not while
  /// concurrent traffic is running through the store.
  void SetMetrics(MetricsRegistry* metrics);

  /// Attaches a phase probe (typically bound to PageCache::current_phase of
  /// the cache stacked on top of this store). When set, retries and
  /// give-ups are additionally attributed per phase, under
  /// "retry.<phase>.retries" / "retry.<phase>.gave_up" — the same phase
  /// tags the I/O attribution tables use.
  void SetPhaseProbe(std::function<IoPhase()> probe) {
    phase_probe_ = std::move(probe);
  }

 private:
  /// Pre-resolved registry handles for the per-attempt hot path (see
  /// SetMetrics). All null when no registry is attached.
  struct MetricHandles {
    MetricsRegistry::Counter* ops = nullptr;
    MetricsRegistry::Counter* attempts = nullptr;
    MetricsRegistry::Counter* retries = nullptr;
    MetricsRegistry::Counter* recovered = nullptr;
    MetricsRegistry::Counter* gave_up = nullptr;
    MetricsRegistry::Counter* deadline_gave_up = nullptr;
    MetricsRegistry::Counter* permanent_errors = nullptr;
    MetricsRegistry::Counter* backoff_us = nullptr;
    Histogram* backoff_ms = nullptr;
  };

  /// Runs `op` under the retry policy. `op` must be safely repeatable.
  Status RunWithRetry(const std::function<Status()>& op);
  void Count(std::atomic<uint64_t> Counters::*field,
             MetricsRegistry::Counter* handle, uint64_t delta = 1);
  void CountPhase(const char* event);
  void RecordOpBackoff(uint64_t backoff_spent_us);

  PageStore* base_;  // not owned
  const RetryingStoreOptions options_;
  std::mutex rng_mu_;  // jitter draws from concurrent threads stay exact
  Random rng_;
  Counters counters_;
  MetricsRegistry* metrics_ = nullptr;  // not owned
  MetricHandles handles_;
  std::function<IoPhase()> phase_probe_;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_RETRYING_STORE_H_
