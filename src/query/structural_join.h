#ifndef BOXES_QUERY_STRUCTURAL_JOIN_H_
#define BOXES_QUERY_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/common/label.h"
#include "core/common/labeling_scheme.h"
#include "util/status.h"
#include "xml/document.h"

namespace boxes::query {

/// One element's label interval plus a caller-chosen handle; the currency
/// of the join operators.
struct Interval {
  uint64_t handle = 0;
  Label start;
  Label end;
};

/// Sorts intervals by start label (document order).
void SortByStart(std::vector<Interval>* intervals);

/// Collects the label intervals of every element of `doc` whose tag equals
/// `tag`, looking labels up through `scheme` (handles = ElementIds),
/// returned in document order.
StatusOr<std::vector<Interval>> CollectIntervals(
    LabelingScheme* scheme, const xml::Document& doc,
    const std::vector<NewElement>& lids, const std::string& tag);

/// Stack-based sort-merge structural join (the containment join of
/// Zhang et al., SIGMOD'01, that order-based labels exist to serve):
/// emits every (ancestor, descendant) pair where the ancestor interval
/// properly contains the descendant interval. Inputs must be sorted by
/// start label (use SortByStart). Runs in O(|A| + |D| + output).
void StructuralJoin(
    const std::vector<Interval>& ancestors,
    const std::vector<Interval>& descendants,
    const std::function<void(const Interval& ancestor,
                             const Interval& descendant)>& emit);

/// Convenience: number of (ancestor, descendant) pairs.
uint64_t CountStructuralJoin(const std::vector<Interval>& ancestors,
                             const std::vector<Interval>& descendants);

}  // namespace boxes::query

#endif  // BOXES_QUERY_STRUCTURAL_JOIN_H_
