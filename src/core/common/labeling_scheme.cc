#include "core/common/labeling_scheme.h"

namespace boxes {

StatusOr<ElementLabels> LabelingScheme::LookupElement(Lid start_lid,
                                                      Lid end_lid) {
  StatusOr<Label> start = Lookup(start_lid);
  if (!start.ok()) {
    return start.status();
  }
  StatusOr<Label> end = Lookup(end_lid);
  if (!end.ok()) {
    return end.status();
  }
  return ElementLabels{std::move(*start), std::move(*end)};
}

namespace {

/// Inserts `element` (and recursively its subtree) immediately before the
/// tag identified by `before`, element-at-a-time.
Status InsertTreeElementwise(LabelingScheme* scheme, const xml::Document& doc,
                             xml::ElementId element, Lid before,
                             std::vector<NewElement>* lids_out) {
  StatusOr<NewElement> lids = scheme->InsertElementBefore(before);
  if (!lids.ok()) {
    return lids.status();
  }
  if (lids_out != nullptr) {
    (*lids_out)[element] = *lids;
  }
  // Children are appended in document order just before this element's end
  // label, making each the current last child.
  for (xml::ElementId child : doc.element(element).children) {
    BOXES_RETURN_IF_ERROR(
        InsertTreeElementwise(scheme, doc, child, lids->end, lids_out));
  }
  return Status::OK();
}

}  // namespace

Status LabelingScheme::InsertSubtreeBefore(Lid before,
                                           const xml::Document& subtree,
                                           std::vector<NewElement>* lids_out) {
  if (subtree.empty()) {
    return Status::OK();
  }
  if (lids_out != nullptr) {
    lids_out->assign(subtree.element_count(), NewElement{});
  }
  return InsertTreeElementwise(this, subtree, subtree.root(), before,
                               lids_out);
}

StatusOr<NewElement> LabelingScheme::InsertFirstElement() {
  return Status::Unimplemented(name() +
                               " does not support bootstrap insertion");
}

Status LabelingScheme::DeleteSubtree(Lid /*root_start*/, Lid /*root_end*/) {
  return Status::Unimplemented(name() + " does not support subtree deletion");
}

StatusOr<int> LabelingScheme::Compare(Lid a, Lid b) {
  StatusOr<Label> label_a = Lookup(a);
  if (!label_a.ok()) {
    return label_a.status();
  }
  StatusOr<Label> label_b = Lookup(b);
  if (!label_b.ok()) {
    return label_b.status();
  }
  return label_a->Compare(*label_b);
}

StatusOr<uint64_t> LabelingScheme::OrdinalLookup(Lid /*lid*/) {
  return Status::Unimplemented(name() + " does not maintain ordinal labels");
}

StatusOr<VersionedLabel> LabelingScheme::LookupShared(Lid lid) {
  EpochReadLock lock(&epoch_guard_);
  StatusOr<Label> label = Lookup(lid);
  if (!label.ok()) {
    return label.status();
  }
  return VersionedLabel{std::move(*label), lock.epoch()};
}

StatusOr<VersionedOrdinal> LabelingScheme::OrdinalLookupShared(Lid lid) {
  EpochReadLock lock(&epoch_guard_);
  StatusOr<uint64_t> ordinal = OrdinalLookup(lid);
  if (!ordinal.ok()) {
    return ordinal.status();
  }
  return VersionedOrdinal{*ordinal, lock.epoch()};
}

}  // namespace boxes
