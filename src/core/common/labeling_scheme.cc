#include "core/common/labeling_scheme.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "util/request_context.h"

namespace boxes {

namespace {

/// Inserts `element` (and recursively its subtree) immediately before the
/// tag identified by `before`, element-at-a-time.
Status InsertTreeElementwise(LabelingScheme* scheme, const xml::Document& doc,
                             xml::ElementId element, Lid before,
                             std::vector<NewElement>* lids_out) {
  StatusOr<NewElement> lids = scheme->InsertElementBefore(before);
  if (!lids.ok()) {
    return lids.status();
  }
  if (lids_out != nullptr) {
    (*lids_out)[element] = *lids;
  }
  // Children are appended in document order just before this element's end
  // label, making each the current last child.
  for (xml::ElementId child : doc.element(element).children) {
    BOXES_RETURN_IF_ERROR(
        InsertTreeElementwise(scheme, doc, child, lids->end, lids_out));
  }
  return Status::OK();
}

}  // namespace

Status LabelingScheme::InsertSubtreeBefore(Lid before,
                                           const xml::Document& subtree,
                                           std::vector<NewElement>* lids_out) {
  if (subtree.empty()) {
    return Status::OK();
  }
  if (lids_out != nullptr) {
    lids_out->assign(subtree.element_count(), NewElement{});
  }
  return InsertTreeElementwise(this, subtree, subtree.root(), before,
                               lids_out);
}

StatusOr<NewElement> LabelingScheme::InsertFirstElement() {
  return Status::Unimplemented(name() +
                               " does not support bootstrap insertion");
}

Status LabelingScheme::DeleteSubtree(Lid root_start, Lid root_end) {
  Lidf* records = lidf();
  if (records == nullptr) {
    return Status::Unimplemented(name() +
                                 " does not support subtree deletion");
  }
  BOXES_ASSIGN_OR_RETURN(const Label lo, Lookup(root_start));
  BOXES_ASSIGN_OR_RETURN(const Label hi, Lookup(root_end));
  if (hi < lo) {
    return Status::InvalidArgument(
        "DeleteSubtree end label precedes its start label");
  }
  // Snapshot the victim set by LID *before* the first deletion. Deleting
  // label-at-a-time may relabel or relocate survivors (tombstone rebuilds,
  // gap maintenance), so label values captured now could go stale mid-loop
  // — but LIDs are immutable, and membership of the closed label range
  // [lo, hi] is decided once, against the pre-deletion state.
  std::vector<Lid> live;
  BOXES_RETURN_IF_ERROR(records->ForEachLive(
      [&](Lid lid, const uint8_t* /*payload*/) {
        live.push_back(lid);
        return Status::OK();
      }));
  std::vector<Lid> victims;
  for (const Lid lid : live) {
    BOXES_ASSIGN_OR_RETURN(const Label label, Lookup(lid));
    if (lo <= label && label <= hi) {
      victims.push_back(lid);
    }
  }
  for (const Lid lid : victims) {
    BOXES_RETURN_IF_ERROR(Delete(lid));
  }
  return Status::OK();
}

StatusOr<PageId> LabelingScheme::Checkpoint() {
  return Status::Unimplemented(name() + " does not support checkpointing");
}

Status LabelingScheme::Restore(PageId /*checkpoint_head*/) {
  return Status::Unimplemented(name() + " does not support checkpointing");
}

uint64_t LabelingScheme::BatchLocalityKey(const BatchOp& /*op*/) { return 0; }

namespace {

/// Subtree ops touch label *ranges* (containment the per-LID key cannot
/// express), and bootstrap inserts must stay first; none of them may move
/// relative to surrounding ops.
bool IsBatchBarrier(const BatchOp& op) {
  return op.kind == BatchOp::Kind::kInsertSubtreeBefore ||
         op.kind == BatchOp::Kind::kDeleteSubtree ||
         op.kind == BatchOp::Kind::kInsertFirstElement;
}

}  // namespace

void LabelingScheme::SortBatchByLocality(std::vector<BatchOp>* ops,
                                         BatchStats* stats) {
  // Keys are computed once, up front, against one consistent pre-batch
  // state: the key is a pure function of the anchor LID, so two ops on the
  // same anchor always get equal keys and the stable sort keeps their
  // enqueue order — the property that makes reordering semantics-free.
  std::vector<uint64_t> keys(ops->size(), 0);
  for (size_t i = 0; i < ops->size(); ++i) {
    const BatchOp& op = (*ops)[i];
    if (!IsBatchBarrier(op)) {
      keys[i] = BatchLocalityKey(op);
    }
  }
  size_t run_start = 0;
  std::vector<size_t> order;
  for (size_t i = 0; i <= ops->size(); ++i) {
    if (i < ops->size() && !IsBatchBarrier((*ops)[i])) {
      continue;
    }
    // Sort the barrier-free run [run_start, i).
    if (i > run_start + 1) {
      order.resize(i - run_start);
      std::iota(order.begin(), order.end(), run_start);
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) { return keys[a] < keys[b]; });
      std::vector<BatchOp> sorted;
      sorted.reserve(order.size());
      for (size_t j = 0; j < order.size(); ++j) {
        if (stats != nullptr && order[j] != run_start + j) {
          ++stats->reordered;
        }
        sorted.push_back(std::move((*ops)[order[j]]));
      }
      std::move(sorted.begin(), sorted.end(), ops->begin() + run_start);
    }
    run_start = i + 1;
  }
}

Status LabelingScheme::ApplyBatchOp(BatchOp* op) {
  switch (op->kind) {
    case BatchOp::Kind::kInsertElementBefore: {
      BOXES_ASSIGN_OR_RETURN(op->result, InsertElementBefore(op->anchor));
      return Status::OK();
    }
    case BatchOp::Kind::kInsertFirstElement: {
      BOXES_ASSIGN_OR_RETURN(op->result, InsertFirstElement());
      return Status::OK();
    }
    case BatchOp::Kind::kDelete:
      return Delete(op->anchor);
    case BatchOp::Kind::kInsertSubtreeBefore:
      if (op->subtree == nullptr) {
        return Status::InvalidArgument(
            "kInsertSubtreeBefore op carries no document");
      }
      return InsertSubtreeBefore(op->anchor, *op->subtree, op->subtree_lids);
    case BatchOp::Kind::kDeleteSubtree:
      return DeleteSubtree(op->anchor, op->anchor_end);
  }
  return Status::InvalidArgument("unknown batch op kind");
}

Status LabelingScheme::ApplyBatch(std::vector<BatchOp>* ops,
                                  BatchStats* stats) {
  SortBatchByLocality(ops, stats);
  return ReplayBatch(ops, stats);
}

Status LabelingScheme::ReplayBatch(std::vector<BatchOp>* ops,
                                   BatchStats* stats) {
  for (BatchOp& op : *ops) {
    BOXES_RETURN_IF_ERROR(ApplyBatchOp(&op));
    if (stats != nullptr) {
      ++stats->applied;
    }
  }
  return Status::OK();
}

StatusOr<VersionedLabel> LabelingScheme::LookupShared(Lid lid) {
  // An already-expired request is refused before taking the read lock: no
  // epoch slot is consumed and no B-BOX path walk starts on behalf of a
  // caller whose budget is spent. Mid-walk expiry is caught at the next
  // page-cache miss (the next point that would cost real I/O).
  if (RequestContext* context = RequestContext::Current()) {
    BOXES_RETURN_IF_ERROR(context->Check("LookupShared entry"));
  }
  EpochReadLock lock(&epoch_guard_);
  StatusOr<Label> label = Lookup(lid);
  if (!label.ok()) {
    return label.status();
  }
  return VersionedLabel{std::move(*label), lock.epoch()};
}

StatusOr<VersionedOrdinal> LabelingScheme::OrdinalLookupShared(Lid lid) {
  if (RequestContext* context = RequestContext::Current()) {
    BOXES_RETURN_IF_ERROR(context->Check("OrdinalLookupShared entry"));
  }
  EpochReadLock lock(&epoch_guard_);
  StatusOr<uint64_t> ordinal = OrdinalLookup(lid);
  if (!ordinal.ok()) {
    return ordinal.status();
  }
  return VersionedOrdinal{*ordinal, lock.epoch()};
}

}  // namespace boxes
