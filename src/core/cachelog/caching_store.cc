#include "core/cachelog/caching_store.h"

namespace boxes {

CachingLabelStore::CachingLabelStore(LabelingScheme* scheme,
                                     size_t log_capacity, LogImpl impl)
    : scheme_(scheme) {
  if (impl == LogImpl::kIndexed) {
    log_ = std::make_unique<IndexedModificationLog>(log_capacity);
  } else {
    log_ = std::make_unique<ModificationLog>(log_capacity);
  }
  scheme_->SetUpdateListener(this);
}

CachingLabelStore::~CachingLabelStore() {
  if (scheme_->update_listener() == this) {
    scheme_->SetUpdateListener(nullptr);
  }
}

CachedLabelRef CachingLabelStore::MakeRef(Lid lid) const {
  CachedLabelRef ref;
  ref.lid = lid;
  return ref;
}

namespace {

/// Relaxed increment through a possibly-null pre-resolved counter handle.
inline void Bump(MetricsRegistry::Counter* counter) {
  if (counter != nullptr) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

const CachingLabelStore::ServeMetricHandles* CachingLabelStore::Handles(
    MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return nullptr;
  }
  if (handles_registry_.load(std::memory_order_acquire) == metrics) {
    return &handles_;
  }
  std::lock_guard<std::mutex> lock(handles_mu_);
  if (handles_registry_.load(std::memory_order_relaxed) != metrics) {
    handles_.served_fresh = metrics->GetCounter("cachelog.served_fresh");
    handles_.served_replayed =
        metrics->GetCounter("cachelog.served_replayed");
    handles_.served_full = metrics->GetCounter("cachelog.served_full");
    handles_.served_degraded =
        metrics->GetCounter("cachelog.served_degraded");
    handles_.degraded_misses =
        metrics->GetCounter("cachelog.degraded_misses");
    handles_.lookup_us = metrics->GetHistogram("cachelog.lookup.us");
    handles_.ordinal_lookup_us =
        metrics->GetHistogram("cachelog.ordinal_lookup.us");
    // Publish last: a reader whose acquire load sees `metrics` also sees
    // every handle written above.
    handles_registry_.store(metrics, std::memory_order_release);
  }
  return &handles_;
}

StatusOr<Label> CachingLabelStore::LookupImpl(CachedLabelRef* ref,
                                              bool* stale_out) {
  const ServeMetricHandles* handles = Handles(scheme_->metrics());
  HistogramTimer timer(handles != nullptr ? handles->lookup_us : nullptr);
  if (ref->has_value) {
    if (ref->last_cached == log_->now()) {
      ++served_fresh_;
      if (handles != nullptr) {
        Bump(handles->served_fresh);
      }
      return ref->cached;
    }
    Label replayed = ref->cached;
    if (log_->Replay(ref->last_cached, &replayed) ==
        ModificationLog::ReplayResult::kUsable) {
      ++served_replayed_;
      if (handles != nullptr) {
        Bump(handles->served_replayed);
      }
      ref->cached = replayed;
      ref->last_cached = log_->now();
      return replayed;
    }
  }
  // Full lookup, then refresh the reference.
  StatusOr<Label> label = scheme_->Lookup(ref->lid);
  if (!label.ok()) {
    if (stale_out != nullptr && ref->has_value &&
        IsDataUnavailableCode(label.status().code())) {
      // Degraded read: the authoritative value is unreachable, but the
      // reference still carries one. The mod log no longer covers it (the
      // replay above would have repaired it otherwise), so it is served
      // with an explicit staleness marker — and the reference is left
      // untouched so a later lookup retries the scheme.
      ++served_degraded_;
      if (handles != nullptr) {
        Bump(handles->served_degraded);
      }
      *stale_out = true;
      return ref->cached;
    }
    if (stale_out != nullptr) {
      ++degraded_misses_;
      if (handles != nullptr) {
        Bump(handles->degraded_misses);
      }
    }
    return label.status();
  }
  ++served_full_;
  if (handles != nullptr) {
    Bump(handles->served_full);
  }
  ref->cached = *label;
  ref->last_cached = log_->now();
  ref->has_value = true;
  return *label;
}

StatusOr<Label> CachingLabelStore::Lookup(CachedLabelRef* ref) {
  return LookupImpl(ref, nullptr);
}

StatusOr<ResilientLabel> CachingLabelStore::LookupResilient(
    CachedLabelRef* ref) {
  ResilientLabel result;
  BOXES_ASSIGN_OR_RETURN(result.label,
                         LookupImpl(ref, &result.possibly_stale));
  return result;
}

StatusOr<uint64_t> CachingLabelStore::OrdinalLookupImpl(CachedOrdinalRef* ref,
                                                        bool* stale_out) {
  const ServeMetricHandles* handles = Handles(scheme_->metrics());
  HistogramTimer timer(handles != nullptr ? handles->ordinal_lookup_us
                                          : nullptr);
  if (ref->has_value) {
    if (ref->last_cached == log_->now()) {
      ++served_fresh_;
      if (handles != nullptr) {
        Bump(handles->served_fresh);
      }
      return ref->cached;
    }
    uint64_t replayed = ref->cached;
    if (log_->ReplayOrdinal(ref->last_cached, &replayed) ==
        ModificationLog::ReplayResult::kUsable) {
      ++served_replayed_;
      if (handles != nullptr) {
        Bump(handles->served_replayed);
      }
      ref->cached = replayed;
      ref->last_cached = log_->now();
      return replayed;
    }
  }
  StatusOr<uint64_t> ordinal = scheme_->OrdinalLookup(ref->lid);
  if (!ordinal.ok()) {
    if (stale_out != nullptr && ref->has_value &&
        IsDataUnavailableCode(ordinal.status().code())) {
      ++served_degraded_;
      if (handles != nullptr) {
        Bump(handles->served_degraded);
      }
      *stale_out = true;
      return ref->cached;
    }
    if (stale_out != nullptr) {
      ++degraded_misses_;
      if (handles != nullptr) {
        Bump(handles->degraded_misses);
      }
    }
    return ordinal.status();
  }
  ++served_full_;
  if (handles != nullptr) {
    Bump(handles->served_full);
  }
  ref->cached = *ordinal;
  ref->last_cached = log_->now();
  ref->has_value = true;
  return *ordinal;
}

StatusOr<uint64_t> CachingLabelStore::OrdinalLookup(CachedOrdinalRef* ref) {
  return OrdinalLookupImpl(ref, nullptr);
}

StatusOr<ResilientOrdinal> CachingLabelStore::OrdinalLookupResilient(
    CachedOrdinalRef* ref) {
  ResilientOrdinal result;
  BOXES_ASSIGN_OR_RETURN(result.ordinal,
                         OrdinalLookupImpl(ref, &result.possibly_stale));
  return result;
}

void CachingLabelStore::ResetServeStats() {
  served_fresh_ = 0;
  served_replayed_ = 0;
  served_full_ = 0;
  served_degraded_ = 0;
  degraded_misses_ = 0;
}

void CachingLabelStore::OnRangeShift(const Label& lo, const Label& hi,
                                     int64_t delta,
                                     bool last_component_only) {
  (void)last_component_only;  // shifts always apply to the last component
  log_->AppendShift(lo, hi, delta);
}

void CachingLabelStore::OnInvalidateRange(const Label& lo, const Label& hi) {
  log_->AppendInvalidate(lo, hi);
}

void CachingLabelStore::OnOrdinalShift(uint64_t from, int64_t delta) {
  log_->AppendOrdinalShift(from, delta);
}

}  // namespace boxes
