// Crash sweep over the snapshot publish protocol (DESIGN.md §4l): kill
// Recompile() at every file operation — temp-file create, each chunked
// write, fsync, rename, directory fsync — and require that reopening the
// snapshot path always serves a complete, validating image: either the old
// compile or the new one (never torn), with the invalidation GUID saying
// which. A subsequent un-faulted Recompile() must always recover, even
// over leftover temp files. The sweep is self-calibrating: the history is
// fixed, so the budget climbs until the publish completes cleanly, which
// proves every earlier op was an injection point that got exercised.

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/common/overlay.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "storage/page_cache.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/random.h"

namespace boxes::testing {
namespace {

constexpr uint64_t kSeed = 0xc7a54ULL;
constexpr uint64_t kBudgetCap = 4096;  // runaway guard, far above any real count

// Applies deterministic mutations through `overlay` (inserts as last child
// of random elements, occasional deletes of previously inserted).
void Mutate(OverlayedScheme* overlay, std::vector<NewElement>* elements,
            Random* rng, int ops) {
  for (int i = 0; i < ops; ++i) {
    if (elements->size() > 8 && rng->Bernoulli(0.25)) {
      const size_t victim = 1 + rng->Uniform(elements->size() - 1);
      const NewElement lids = (*elements)[victim];
      ASSERT_OK(overlay->Delete(lids.start));
      ASSERT_OK(overlay->Delete(lids.end));
      elements->erase(elements->begin() + static_cast<ptrdiff_t>(victim));
    } else {
      const size_t target = rng->Uniform(elements->size());
      ASSERT_OK_AND_ASSIGN(
          const NewElement fresh,
          overlay->InsertElementBefore((*elements)[target].end));
      elements->push_back(fresh);
    }
  }
}

// Image entries must be exactly the authority's live LID set, each with
// the authority's current label.
void ExpectImageMatchesAuthority(const SnapshotReader* reader,
                                 WBox* authority) {
  uint64_t live = 0;
  ASSERT_OK(authority->lidf()->ForEachLive(
      [&](Lid lid, const uint8_t*) {
        ++live;
        const size_t index = reader->FindIndex(lid);
        EXPECT_NE(index, SnapshotReader::kNotFound) << "lid " << lid;
        if (index != SnapshotReader::kNotFound) {
          StatusOr<Label> expected = authority->Lookup(lid);
          EXPECT_OK(expected.status());
          if (expected.ok()) {
            EXPECT_EQ(*expected, reader->LabelAt(index)) << "lid " << lid;
          }
        }
        return Status::OK();
      }));
  EXPECT_EQ(reader->entry_count(), live);
}

TEST(SnapshotCrashSweepTest, EveryPublishCrashPointServesOldOrNewImage) {
  const std::string dir = ::testing::TempDir();
  bool completed_cleanly = false;
  uint64_t budget = 0;
  for (; budget <= kBudgetCap && !completed_cleanly; ++budget) {
    SCOPED_TRACE("crash budget " + std::to_string(budget));
    const std::string path = dir + "boxes_snapcrash_" +
                             std::to_string(::getpid()) + ".silo";
    ::unlink(path.c_str());
    ::unlink((path + ".tmp").c_str());

    TestDb db;
    WBox wbox(&db.cache);

    // Generation 1: bootstrap + clean compile. The history is identical
    // for every budget, so the faulted publish below performs the same op
    // sequence each time and the budget enumerates its crash points.
    std::vector<NewElement> elements;
    SnapshotGuid old_guid;
    uint64_t old_entries = 0;
    {
      OverlayOptions options;
      options.snapshot_path = path;
      options.recompile_write_chunk_bytes = 4096;  // many write crash points
      OverlayedScheme overlay(&wbox, options);
      ASSERT_OK_AND_ASSIGN(const NewElement root,
                           overlay.InsertFirstElement());
      elements.push_back(root);
      Random rng(kSeed);
      Mutate(&overlay, &elements, &rng, 400);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      ASSERT_OK(overlay.Recompile());
      ASSERT_NE(overlay.reader(), nullptr);
      old_guid = overlay.reader()->guid();
      old_entries = overlay.reader()->entry_count();

      // Generation 2: more mutations, then the faulted publish.
      Random rng2(~kSeed);
      Mutate(&overlay, &elements, &rng2, 150);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }

    OverlayOptions crash_options;
    crash_options.snapshot_path = path;
    crash_options.recompile_fail_after_file_ops = budget;
    crash_options.recompile_write_chunk_bytes = 4096;
    OverlayedScheme crashing(&wbox, crash_options);
    const Status crashed = crashing.Recompile();
    completed_cleanly = crashed.ok();

    // "Reboot": open whatever is on disk, as a fresh process would. It
    // must validate — never torn — and be exactly one of the two compiles.
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<SnapshotReader> reopened,
                         SnapshotReader::Open(path));
    if (reopened->guid() == old_guid) {
      EXPECT_EQ(reopened->entry_count(), old_entries);
      EXPECT_FALSE(crashed.ok())
          << "publish claimed success but the old image is still served";
    } else {
      ExpectImageMatchesAuthority(reopened.get(), &wbox);
    }

    // Recovery: a clean recompile over the leftover state (partial .tmp,
    // old or new image) must succeed and serve the current state.
    OverlayOptions recover_options;
    recover_options.snapshot_path = path;
    OverlayedScheme recovered(&wbox, recover_options);
    ASSERT_OK(recovered.Recompile());
    ASSERT_NE(recovered.reader(), nullptr);
    EXPECT_NE(recovered.reader()->guid(), old_guid);
    ExpectImageMatchesAuthority(recovered.reader(), &wbox);

    // Every element lookup after recovery matches the live authority.
    for (const NewElement& element : elements) {
      for (const Lid lid : {element.start, element.end}) {
        ASSERT_OK_AND_ASSIGN(const Label expected, wbox.Lookup(lid));
        ASSERT_OK_AND_ASSIGN(const Label got, recovered.Lookup(lid));
        ASSERT_EQ(expected, got) << "lid " << lid;
      }
    }

    ::unlink(path.c_str());
    ::unlink((path + ".tmp").c_str());
  }
  ASSERT_TRUE(completed_cleanly)
      << "publish never completed within " << kBudgetCap << " file ops";
  // The sweep covered create/writes/fsync/rename/dirsync at minimum.
  EXPECT_GT(budget, 5u) << "suspiciously few crash points swept";
}

}  // namespace
}  // namespace boxes::testing
