#ifndef BOXES_CORE_COMMON_READ_ONLY_LABELING_H_
#define BOXES_CORE_COMMON_READ_ONLY_LABELING_H_

#include <cstdint>
#include <string>

#include "core/common/label.h"
#include "lidf/lidf.h"
#include "util/status.h"

namespace boxes {

/// The query half of a labeling scheme: everything a reader needs to
/// resolve LIDs to labels and order document positions, and nothing that
/// implies the labels can change (ROADMAP item 3's refactor note).
///
/// Dynamic schemes (LabelingScheme) extend this with the relabel path;
/// static label stores — the mmap-able snapshot image, and any future
/// compact ancestry scheme without an update algorithm — implement only
/// this, so serving-tier code can hold a ReadOnlyLabeling* and never see
/// an insert method it must stub out with Unimplemented.
class ReadOnlyLabeling {
 public:
  virtual ~ReadOnlyLabeling() = default;

  /// Human-readable name ("W-BOX", "silo", ...).
  virtual std::string name() const = 0;

  /// Returns the current value of the label identified by `lid`.
  virtual StatusOr<Label> Lookup(Lid lid) = 0;

  /// Returns the start and end labels of one element. The default issues
  /// two Lookups; W-BOX-O overrides this with its single-record fast path.
  virtual StatusOr<ElementLabels> LookupElement(Lid start_lid, Lid end_lid);

  /// Document-order comparison of two labels: <0, 0, >0. The default
  /// compares Lookup() results; B-BOX overrides with its bottom-up
  /// lowest-common-ancestor walk.
  virtual StatusOr<int> Compare(Lid a, Lid b);

  /// True if this instance maintains ordinal labels (size fields).
  virtual bool SupportsOrdinal() const { return false; }

  /// The 0-based ordinal position of the tag within the document.
  /// Requires SupportsOrdinal().
  virtual StatusOr<uint64_t> OrdinalLookup(Lid lid);
};

}  // namespace boxes

#endif  // BOXES_CORE_COMMON_READ_ONLY_LABELING_H_
