#ifndef BOXES_TESTS_TEST_UTIL_H_
#define BOXES_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "core/common/label.h"
#include "core/common/labeling_scheme.h"
#include "gtest/gtest.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"

namespace boxes::testing {

/// A store + cache bundle for tests.
struct TestDb {
  explicit TestDb(size_t page_size = kDefaultPageSize,
                  PageCacheOptions cache_options = {})
      : store(page_size), cache(&store, cache_options) {}

  MemoryPageStore store;
  PageCache cache;
};

/// Verifies that the labels of `lids` (expected document order of tags) are
/// strictly increasing under `scheme`.
inline ::testing::AssertionResult LabelsStrictlyIncreasing(
    LabelingScheme* scheme, const std::vector<Lid>& lids) {
  Label prev;
  bool have_prev = false;
  for (size_t i = 0; i < lids.size(); ++i) {
    StatusOr<Label> label = scheme->Lookup(lids[i]);
    if (!label.ok()) {
      return ::testing::AssertionFailure()
             << "Lookup(" << lids[i] << ") failed: "
             << label.status().ToString();
    }
    if (have_prev && !(prev < *label)) {
      return ::testing::AssertionFailure()
             << "label order violated at position " << i << ": "
             << prev.ToString() << " !< " << label->ToString();
    }
    prev = *label;
    have_prev = true;
  }
  return ::testing::AssertionSuccess();
}

/// Expands a document's element LIDs into tag order (start/end interleaved
/// by document structure).
inline std::vector<Lid> TagOrderLids(const xml::Document& doc,
                                     const std::vector<NewElement>& lids) {
  std::vector<Lid> out;
  out.reserve(doc.tag_count());
  doc.ForEachTag([&](xml::ElementId id, bool is_start) {
    out.push_back(is_start ? lids[id].start : lids[id].end);
  });
  return out;
}

#define ASSERT_OK(expr)                                     \
  do {                                                      \
    const ::boxes::Status assert_ok_status_ = (expr);       \
    ASSERT_TRUE(assert_ok_status_.ok())                     \
        << assert_ok_status_.ToString();                    \
  } while (0)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    const ::boxes::Status expect_ok_status_ = (expr);       \
    EXPECT_TRUE(expect_ok_status_.ok())                     \
        << expect_ok_status_.ToString();                    \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                     \
  BOXES_STATUS_CONCAT_(auto assert_statusor_, __LINE__) = (expr); \
  ASSERT_TRUE(BOXES_STATUS_CONCAT_(assert_statusor_, __LINE__).ok())  \
      << BOXES_STATUS_CONCAT_(assert_statusor_, __LINE__).status()    \
             .ToString();                                   \
  lhs = std::move(BOXES_STATUS_CONCAT_(assert_statusor_, __LINE__)).value()

}  // namespace boxes::testing

#endif  // BOXES_TESTS_TEST_UTIL_H_
