// Concurrent lookup throughput (DESIGN.md §4g, EXPERIMENTS.md): aggregate
// LookupShared/sec as the reader thread count grows, for each scheme, with
// one writer thread mutating the structure and periodically dropping the
// page cache under its EpochWriteLock.
//
// The store is wrapped in a LatencyPageStore so every cache miss blocks for
// a simulated device seek. That is what the added threads overlap: on a
// cold-ish cache the run is I/O-bound, and N readers keep N simulated seeks
// in flight — so throughput scales with threads even on a single core,
// exactly as it would against a real disk. With zero latency and a warm
// cache the run is CPU-bound and a single core shows no scaling.
//
//   bench_concurrent_lookup --schemes=wbox,bbox,naive-16 --threads=1,2,4,8
//       [--lookups=N] [--read_latency_us=U] [--smoke] [--metrics_json=PATH]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "workload/concurrent_runner.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

/// Scheme + storage stack for one run: base memory store, latency
/// decorator, sharded cache.
struct ConcurrentUnit {
  ConcurrentUnit(size_t page_size, uint64_t read_latency_us)
      : base(page_size),
        latency(&base,
                [&] {
                  LatencyPageStoreOptions options;
                  options.read_latency_us = 0;  // free until bulk load ends
                  options.write_latency_us = 0;
                  return options;
                }()),
        cache(&latency) {
    configured_read_latency_us = read_latency_us;
  }

  /// Called once the structure is built: cache misses start paying.
  void StartCharging() { latency.set_read_latency_us(configured_read_latency_us); }

  MemoryPageStore base;
  LatencyPageStore latency;
  PageCache cache;
  std::unique_ptr<LabelingScheme> scheme;
  uint64_t configured_read_latency_us = 0;
};

void RunScheme(const std::string& name, int64_t elements, int64_t lookups,
               const std::vector<int64_t>& thread_counts, int64_t page_size,
               int64_t read_latency_us, int64_t drop_cache_every,
               int64_t writer_pause_us) {
  std::printf("%s:\n", name.c_str());
  double baseline = 0;
  for (const int64_t threads : thread_counts) {
    ConcurrentUnit unit(static_cast<size_t>(page_size),
                        static_cast<uint64_t>(read_latency_us));
    CheckOkOrDie(MakeSchemeOnCache(name, &unit.cache, &unit.scheme),
                 "making scheme");

    const xml::Document doc =
        xml::MakeTwoLevelDocument(static_cast<uint64_t>(elements));
    std::vector<NewElement> loaded;
    CheckOkOrDie(unit.scheme->BulkLoad(doc, &loaded), "bulk load");
    CheckOkOrDie(unit.cache.FlushAll(), "flush after load");
    unit.StartCharging();

    std::vector<Lid> probes;
    probes.reserve(loaded.size());
    for (const NewElement& element : loaded) {
      probes.push_back(element.start);
    }

    workload::ConcurrentOptions options;
    options.reader_threads = static_cast<size_t>(threads);
    // Per-thread (not total) quota: every point then runs long enough for
    // the writer's drop cadence to pace it, and aggregate lookups/sec
    // stays comparable across thread counts.
    options.lookups_per_thread = static_cast<uint64_t>(lookups);
    options.writer_ops =
        static_cast<uint64_t>(lookups) * static_cast<uint64_t>(threads);
    options.writer_stops_with_readers = true;
    options.drop_cache_every = static_cast<uint64_t>(drop_cache_every);
    // Readers aggregate progress ~linearly with the thread count; shrink
    // the writer's think time to match so each point sees a comparable
    // number of cold-cache cycles per lookup.
    options.writer_pause_us = static_cast<uint64_t>(
        writer_pause_us / (threads > 0 ? threads : 1));

    StatusOr<workload::ConcurrentStats> result =
        workload::RunConcurrent(unit.scheme.get(), &unit.cache, probes,
                                options);
    CheckOkOrDie(result.status(), "concurrent run");
    const workload::ConcurrentStats& stats = *result;
    if (threads == thread_counts.front()) {
      baseline = stats.lookups_per_sec;
    }

    std::printf(
        "  threads %2lld | %9.0f lookups/s (%.2fx) | %llu lookups %llu "
        "writer ops %llu drops | retries %llu contention %llu | %.2f s\n",
        static_cast<long long>(threads), stats.lookups_per_sec,
        baseline > 0 ? stats.lookups_per_sec / baseline : 0.0,
        static_cast<unsigned long long>(stats.lookups),
        static_cast<unsigned long long>(stats.writer_ops),
        static_cast<unsigned long long>(stats.cache_drops),
        static_cast<unsigned long long>(stats.reader_retries),
        static_cast<unsigned long long>(stats.shard_contention),
        stats.elapsed_s);

    workload::ExportConcurrentStats(
        "concurrent." + name + ".t" + std::to_string(threads), stats,
        &GlobalMetrics());
  }
}

int Main(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);

  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 4000, "document elements");
  int64_t* lookups =
      flags.AddInt64("lookups", 10000, "lookups per reader thread");
  int64_t* page_size = flags.AddInt64("page_size", 2048, "block size");
  int64_t* read_latency_us = flags.AddInt64(
      "read_latency_us", 50, "simulated device read latency (us)");
  int64_t* drop_cache_every = flags.AddInt64(
      "drop_cache_every", 1, "writer drops the cache every N mutations");
  int64_t* writer_pause_us = flags.AddInt64(
      "writer_pause_us", 500, "writer think time between mutations (us)");
  std::string* threads_flag =
      flags.AddString("threads", "1,2,4,8", "reader thread counts");
  std::string* schemes = flags.AddString("schemes", "wbox,bbox,naive-16",
                                         "comma-separated scheme list");
  std::string* metrics_json =
      flags.AddString("metrics_json", "", "write metrics JSON here");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 800);
  SmokeCap(smoke, lookups, 2000);

  std::vector<int64_t> thread_counts;
  for (const std::string& item : SplitSchemes(*threads_flag)) {
    thread_counts.push_back(std::stoll(item));
  }
  if (thread_counts.empty()) {
    std::fprintf(stderr, "--threads must name at least one count\n");
    return 1;
  }

  for (const std::string& name : SplitSchemes(*schemes)) {
    RunScheme(name, *elements, *lookups, thread_counts, *page_size,
              *read_latency_us, *drop_cache_every, *writer_pause_us);
  }
  MaybeWriteMetricsJson(*metrics_json);
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Main(argc, argv); }
