// Fleet SLO benchmark: a sharded multi-tenant fleet (N tenant documents
// over M shared page-store devices) driven by worker threads through the
// full request-lifecycle stack — per-request deadlines, admission control,
// circuit breakers, bounded retry, degraded reads (DESIGN.md §4j).
//
// Three regimes:
//   * Transient storm — every device op independently fails with
//     probability p; retry absorbs the faults. The SLO gate: zero hard
//     (non-shed, non-degraded, non-deadline) errors across the fleet.
//   * Permanent poison episode — pages on every device are poisoned
//     (reads return Corruption) and tenant caches dropped; the breakers
//     open, warm lookups degrade to possibly-stale answers, cold opens
//     are fast-failed instead of hammering the sick devices.
//   * Recovery — devices healed; breaker probes close the circuits and
//     exact service resumes.
//
// The whole sequence runs twice, with and without the circuit breakers,
// on otherwise identical fleets (same seed => identical per-tenant op
// mix); the comparison shows the breaker's point: the breakerless fleet
// burns measurably more retry attempts against dead devices.

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/flags.h"
#include "util/random.h"
#include "workload/failover_drill.h"
#include "workload/fleet_runner.h"

namespace boxes::bench {
namespace {

using workload::FleetOptions;
using workload::FleetPhaseOptions;
using workload::FleetPhaseStats;
using workload::FleetRunner;
using workload::TenantPhaseStats;

struct FleetOutcome {
  FleetPhaseStats storm;
  FleetPhaseStats poison;
  FleetPhaseStats recovery;
  uint64_t retry_attempts = 0;  // fleet-lifetime, summed over devices
  uint64_t retries = 0;
  uint64_t breaker_fast_fails = 0;
  uint64_t breaker_opened = 0;
};

double Pct(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(whole);
}

void PrintPhase(const char* title, const FleetRunner& fleet,
                const FleetPhaseStats& stats) {
  std::printf(
      "  %-9s | ops %8llu | exact %6.2f%% degraded %5.2f%% shed %5.2f%% "
      "deadline %5.2f%% unavail %llu hard %llu | %.0f ops/s\n",
      title, static_cast<unsigned long long>(stats.ops),
      Pct(stats.exact, stats.ops), Pct(stats.degraded, stats.ops),
      Pct(stats.shed, stats.ops), Pct(stats.deadline_expired, stats.ops),
      static_cast<unsigned long long>(stats.unavailable),
      static_cast<unsigned long long>(stats.hard_errors),
      stats.ops_per_sec);
  std::printf(
      "    tenant dev |      ops lkup open  ins twig | exact%% degr%% "
      "shed%% |   p50   p99  p999   max (us)\n");
  for (size_t t = 0; t < stats.tenants.size(); ++t) {
    const TenantPhaseStats& row = stats.tenants[t];
    std::printf(
        "    %6zu %3zu | %8llu %4llu %4llu %4llu %4llu | %6.2f %5.2f "
        "%5.2f | %5llu %5llu %5llu %5llu\n",
        t, fleet.device_of(t), static_cast<unsigned long long>(row.ops),
        static_cast<unsigned long long>(row.lookups),
        static_cast<unsigned long long>(row.opens),
        static_cast<unsigned long long>(row.inserts),
        static_cast<unsigned long long>(row.twigs),
        Pct(row.exact, row.ops), Pct(row.degraded, row.ops),
        Pct(row.shed, row.ops),
        static_cast<unsigned long long>(row.lat_p50_us),
        static_cast<unsigned long long>(row.lat_p99_us),
        static_cast<unsigned long long>(row.lat_p999_us),
        static_cast<unsigned long long>(row.lat_max_us));
  }
}

/// Poisons `count` allocated pages on every device of the fleet,
/// deterministically in `seed`.
void PoisonDevices(FleetRunner* fleet, int64_t count, uint64_t seed) {
  Random rng(seed);
  for (size_t d = 0; d < fleet->num_devices(); ++d) {
    uint64_t total = 0;
    std::vector<PageId> free_pages;
    fleet->device_base(d)->SnapshotAllocator(&total, &free_pages);
    const std::set<PageId> free_set(free_pages.begin(), free_pages.end());
    std::vector<PageId> allocated;
    for (PageId id = 0; id < total; ++id) {
      if (free_set.count(id) == 0) {
        allocated.push_back(id);
      }
    }
    for (int64_t i = 0; i < count && !allocated.empty(); ++i) {
      fleet->device_fault(d)->PoisonPage(
          allocated[rng.Uniform(allocated.size())]);
    }
  }
}

const char* BreakerStateName(CircuitBreakerPageStore* breaker) {
  if (breaker == nullptr) {
    return "none";
  }
  switch (breaker->state()) {
    case CircuitBreakerPageStore::State::kClosed:
      return "closed";
    case CircuitBreakerPageStore::State::kOpen:
      return "open";
    case CircuitBreakerPageStore::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

FleetOutcome RunFleet(const FleetOptions& options, double fail_probability,
                      int64_t ops_per_worker, int64_t poisoned_pages) {
  std::printf("fleet: %zu tenants on %zu devices, %zu workers, scheme %s, "
              "breaker %s\n",
              options.num_tenants, options.num_devices, options.workers,
              options.scheme.c_str(), options.use_breaker ? "ON" : "OFF");
  FleetRunner fleet(options);
  CheckOkOrDie(fleet.Setup(), "fleet setup");

  FleetOutcome outcome;
  FleetPhaseOptions mixed;
  mixed.ops_per_worker = static_cast<uint64_t>(ops_per_worker);
  mixed.lookup_fraction = 0.60;
  mixed.insert_fraction = 0.15;
  mixed.twig_fraction = 0.05;

  // Transient storm: every device op fails with probability p.
  for (size_t d = 0; d < fleet.num_devices(); ++d) {
    fleet.device_fault(d)->SetSeed(0x57a6 + d);
    fleet.device_fault(d)->SetFailProbability(fail_probability,
                                              /*transient=*/true);
  }
  {
    StatusOr<FleetPhaseStats> stats = fleet.RunPhase(mixed);
    CheckOkOrDie(stats.status(), "storm phase");
    outcome.storm = *stats;
    PrintPhase("storm", fleet, outcome.storm);
  }

  // Permanent episode: poison pages on every device, drop the tenant
  // caches so reads go back to the devices, and serve read-only traffic.
  // Mutations are off: a poisoned device sheds writes mid-mutation, and a
  // serving fleet would fail tenant writes over rather than half-apply
  // them.
  for (size_t d = 0; d < fleet.num_devices(); ++d) {
    fleet.device_fault(d)->SetFailProbability(0.0);
  }
  PoisonDevices(&fleet, poisoned_pages, options.seed + 0xbad);
  CheckOkOrDie(fleet.DropCaches(), "cache drop");
  FleetPhaseOptions read_only = mixed;
  read_only.lookup_fraction = 0.85;
  read_only.insert_fraction = 0.0;
  read_only.twig_fraction = 0.05;
  {
    StatusOr<FleetPhaseStats> stats = fleet.RunPhase(read_only);
    CheckOkOrDie(stats.status(), "poison phase");
    outcome.poison = *stats;
    // A scrub pass over the poisoned devices: the quarantine level is the
    // fleet's poisoned-page pressure, reported next to the outcome mix.
    StatusOr<uint64_t> quarantined = fleet.ScrubDevices();
    CheckOkOrDie(quarantined.status(), "device scrub");
    outcome.poison.quarantined_pages = *quarantined;
    PrintPhase("poison", fleet, outcome.poison);
    std::printf("    scrub: %llu page(s) quarantined across %zu devices\n",
                static_cast<unsigned long long>(*quarantined),
                fleet.num_devices());
    for (size_t d = 0; d < fleet.num_devices(); ++d) {
      std::printf("    device %zu: breaker %s\n", d,
                  BreakerStateName(fleet.device_breaker(d)));
    }
  }

  // Recovery: heal the devices and let the breakers' cooldown elapse, so
  // the phase measures probe-led reclosing rather than the tail of the
  // open period.
  for (size_t d = 0; d < fleet.num_devices(); ++d) {
    fleet.device_fault(d)->Heal();
  }
  std::this_thread::sleep_for(
      std::chrono::microseconds(options.breaker.open_cooldown_us + 10'000));
  {
    StatusOr<FleetPhaseStats> stats = fleet.RunPhase(mixed);
    CheckOkOrDie(stats.status(), "recovery phase");
    outcome.recovery = *stats;
    PrintPhase("recovery", fleet, outcome.recovery);
    for (size_t d = 0; d < fleet.num_devices(); ++d) {
      std::printf("    device %zu: breaker %s\n", d,
                  BreakerStateName(fleet.device_breaker(d)));
    }
  }

  for (size_t d = 0; d < fleet.num_devices(); ++d) {
    const RetryingPageStore::Counters& retry =
        fleet.device_retry(d)->counters();
    outcome.retry_attempts += retry.attempts.load();
    outcome.retries += retry.retries.load();
    if (fleet.device_breaker(d) != nullptr) {
      const CircuitBreakerPageStore::Counters& breaker =
          fleet.device_breaker(d)->counters();
      outcome.breaker_fast_fails += breaker.fast_fails.load();
      outcome.breaker_opened += breaker.opened.load();
    }
  }
  std::printf(
      "  devices: %llu attempts, %llu retries, %llu breaker fast-fails, "
      "%llu breaker opens\n\n",
      static_cast<unsigned long long>(outcome.retry_attempts),
      static_cast<unsigned long long>(outcome.retries),
      static_cast<unsigned long long>(outcome.breaker_fast_fails),
      static_cast<unsigned long long>(outcome.breaker_opened));
  return outcome;
}

/// The failover drill (DESIGN.md §4k): a primary on a fault-injected file
/// store dies permanently under a transient storm; the drill fails over —
/// warm (promote the WAL-shipped standby under a bumped fencing token) and
/// cold (recover the crash image) — and gates on zero acknowledged-write
/// loss in both modes. Returns the number of gate failures.
int RunFailoverDrills(const std::string& db_path, double storm_probability,
                      uint64_t seed, MetricsRegistry* metrics) {
  std::printf("\nFAILOVER DRILL: primary device killed mid-storm "
              "(p=%.2f), acked writes audited on the survivor\n",
              storm_probability);
  int failures = 0;
  uint64_t unavailability_us[2] = {0, 0};
  for (const bool warm : {true, false}) {
    workload::FailoverDrillOptions drill;
    drill.db_path = db_path;
    drill.warm_standby = warm;
    drill.storm_probability = storm_probability;
    drill.seed = seed;
    drill.metrics = metrics;
    const StatusOr<workload::FailoverDrillResult> result =
        RunFailoverDrill(drill);
    CheckOkOrDie(result.status(),
                 warm ? "warm failover drill" : "cold failover drill");
    unavailability_us[warm ? 0 : 1] = result->unavailability_us;
    std::printf(
        "  %-5s | acked %4llu lost %llu | shipped %3llu reships %llu "
        "fenced %llu | flush retries %llu | token %llu | down %.1f ms\n",
        warm ? "warm" : "cold",
        static_cast<unsigned long long>(result->acked_ops),
        static_cast<unsigned long long>(result->lost_acked_ops),
        static_cast<unsigned long long>(result->shipped_batches),
        static_cast<unsigned long long>(result->ship_retries),
        static_cast<unsigned long long>(result->fenced_rejects),
        static_cast<unsigned long long>(result->flush_retries),
        static_cast<unsigned long long>(result->fencing_token),
        result->unavailability_us / 1000.0);
    if (result->lost_acked_ops != 0 ||
        result->survivor_live_labels != 2 * result->acked_ops) {
      std::fprintf(
          stderr,
          "SLO FAIL: %s failover lost %llu acked op(s) "
          "(%llu live labels on the survivor, expected %llu)\n",
          warm ? "warm" : "cold",
          static_cast<unsigned long long>(result->lost_acked_ops),
          static_cast<unsigned long long>(result->survivor_live_labels),
          static_cast<unsigned long long>(2 * result->acked_ops));
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("SLO PASS: zero acked-write loss in both failover modes "
                "(warm down %.1f ms vs cold %.1f ms)\n",
                unavailability_us[0] / 1000.0, unavailability_us[1] / 1000.0);
  }
  return failures;
}

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* tenants = flags.AddInt64("tenants", 8, "tenant documents");
  int64_t* devices = flags.AddInt64("devices", 2, "shared page stores");
  int64_t* workers = flags.AddInt64("workers", 4, "worker threads");
  int64_t* elements = flags.AddInt64("elements", 600, "elements per tenant");
  int64_t* ops = flags.AddInt64("ops_per_worker", 3000,
                                "operations per worker per phase");
  // Small enough that a hot tenant's storm inserts overflow the replay
  // window, so the poison phase exercises genuinely degraded (possibly
  // stale) serves rather than replay-exact ones only.
  int64_t* log_capacity =
      flags.AddInt64("log_capacity", 64, "mod log entries (k)");
  int64_t* poisoned =
      flags.AddInt64("poisoned_pages", 6, "pages poisoned per device");
  int64_t* page_size = flags.AddInt64("page_size", 2048, "block size");
  int64_t* timeout_us =
      flags.AddInt64("timeout_us", 100000, "per-request deadline (us)");
  double* fail_probability = flags.AddDouble(
      "fail_probability", 0.05, "transient fault probability per device op");
  double* theta =
      flags.AddDouble("zipf_theta", 0.8, "tenant popularity skew");
  std::string* scheme =
      flags.AddString("scheme", "wbox", "tenant scheme: wbox | bbox");
  std::string* metrics_json =
      flags.AddString("metrics_json", "", "write metrics JSON here");
  std::string* drill_db = flags.AddString(
      "drill_db", "/tmp/boxes_failover_drill.db",
      "primary database file for the failover drill (recreated)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 200);
  SmokeCap(smoke, ops, 400);

  std::printf("FLEET: per-tenant SLOs under fault injection "
              "(deadline + admission + breaker + retry + degraded reads)\n\n");

  FleetOptions options;
  options.num_tenants = static_cast<size_t>(*tenants);
  options.num_devices = static_cast<size_t>(*devices);
  options.workers = static_cast<size_t>(*workers);
  options.elements_per_doc = static_cast<uint64_t>(*elements);
  options.page_size = static_cast<size_t>(*page_size);
  options.log_capacity = static_cast<size_t>(*log_capacity);
  options.zipf_theta = *theta;
  options.request_timeout_us = static_cast<uint64_t>(*timeout_us);
  options.scheme = *scheme;
  options.use_breaker = true;
  options.metrics = &GlobalMetrics();
  const FleetOutcome with_breaker =
      RunFleet(options, *fail_probability, *ops, *poisoned);
  workload::ExportFleetStats("fleet.storm", with_breaker.storm,
                             &GlobalMetrics());
  workload::ExportFleetStats("fleet.poison", with_breaker.poison,
                             &GlobalMetrics());
  workload::ExportFleetStats("fleet.recovery", with_breaker.recovery,
                             &GlobalMetrics());

  options.use_breaker = false;
  options.metrics = nullptr;  // keep the comparison run out of the JSON
  const FleetOutcome without_breaker =
      RunFleet(options, *fail_probability, *ops, *poisoned);

  std::printf(
      "breaker comparison: %llu device attempts with breaker vs %llu "
      "without (%+.1f%%); fast-fails took over %llu device calls\n",
      static_cast<unsigned long long>(with_breaker.retry_attempts),
      static_cast<unsigned long long>(without_breaker.retry_attempts),
      with_breaker.retry_attempts == 0
          ? 0.0
          : 100.0 * (static_cast<double>(without_breaker.retry_attempts) /
                         static_cast<double>(with_breaker.retry_attempts) -
                     1.0),
      static_cast<unsigned long long>(with_breaker.breaker_fast_fails));

  // The SLO gate (ISSUE 8 acceptance): under a transient-only storm the
  // full stack must deliver zero hard errors — every op either succeeds
  // exactly, degrades, or is shed/deadlined on purpose.
  if (with_breaker.storm.hard_errors != 0) {
    std::fprintf(stderr, "SLO FAIL: %llu hard errors in the storm phase\n",
                 static_cast<unsigned long long>(
                     with_breaker.storm.hard_errors));
    return 1;
  }
  std::printf("SLO PASS: zero hard errors across %llu storm ops\n",
              static_cast<unsigned long long>(with_breaker.storm.ops));

  // The replication SLO gate (ISSUE 9 acceptance): kill the primary under
  // the same storm probability and fail over warm and cold; an
  // acknowledged write may NEVER disappear.
  const int drill_failures = RunFailoverDrills(
      *drill_db, *fail_probability, options.seed + 0xfa11, &GlobalMetrics());
  MaybeWriteMetricsJson(*metrics_json);
  return drill_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
