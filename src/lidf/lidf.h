#ifndef BOXES_LIDF_LIDF_H_
#define BOXES_LIDF_LIDF_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "util/status.h"

namespace boxes {

/// Immutable label ID: the record number of a LIDF record. Once assigned to
/// a label it never changes, so LIDs can be duplicated freely in indexes
/// and used as element IDs (paper §3).
using Lid = uint64_t;

inline constexpr Lid kInvalidLid = UINT64_MAX;

/// Immutable Label ID File (paper §3, Figure 2).
///
/// A heap file of fixed-size records addressed by record number (the LID).
/// The payload is scheme-defined:
///   * BOXes store the PageId of the block containing the BOX record,
///   * naive-k stores the label value and gap directly.
///
/// Freed records are reclaimed so the file stays compact. Records never
/// straddle pages; a LID maps to (page index, slot) arithmetically.
/// Directory and free-list metadata are kept in memory (a real system would
/// persist them in a superblock; they are O(N/B) and irrelevant to the
/// paper's per-operation I/O accounting).
class Lidf {
 public:
  /// `payload_size` is the fixed record size in bytes (>= 8).
  Lidf(PageCache* cache, size_t payload_size);

  Lidf(const Lidf&) = delete;
  Lidf& operator=(const Lidf&) = delete;

  size_t payload_size() const { return payload_size_; }
  size_t records_per_page() const { return records_per_page_; }
  /// Number of live records.
  uint64_t live_records() const { return live_count_; }
  /// Number of pages the file occupies.
  uint64_t page_count() const { return pages_.size(); }

  /// Allocates one record with zeroed payload.
  StatusOr<Lid> Allocate();

  /// Allocates two records guaranteed to live on the same page, so that a
  /// single I/O retrieves both (the paper's start/end adjacency
  /// optimization). Returns {start_lid, end_lid}.
  StatusOr<std::pair<Lid, Lid>> AllocatePair();

  /// Frees a record for reuse.
  Status Free(Lid lid);

  /// True iff `lid` designates a live record.
  bool IsLive(Lid lid) const;

  /// Copies the record payload into `payload` (payload_size() bytes).
  Status Read(Lid lid, uint8_t* payload) const;

  /// Overwrites the record payload from `payload`.
  Status Write(Lid lid, const uint8_t* payload);

  /// Convenience accessors for the common 8-byte block-pointer payload used
  /// by W-BOX and B-BOX: the page id of the block holding the BOX record.
  StatusOr<PageId> ReadBlockPtr(Lid lid) const;
  Status WriteBlockPtr(Lid lid, PageId block);

  /// Invokes `fn(lid, payload)` for every live record, in LID order,
  /// touching each LIDF page exactly once. Used by naive-k relabeling and
  /// by the W-BOX global rebuild.
  Status ForEachLive(
      const std::function<Status(Lid, const uint8_t*)>& fn) const;

  /// Like ForEachLive but with writable payloads; every visited page is
  /// marked dirty. Used by naive-k relabeling to rewrite the whole file
  /// with one page access per page.
  Status ForEachLiveMutable(const std::function<Status(Lid, uint8_t*)>& fn);

  /// The page id of the LIDF page holding `lid` (for tests / diagnostics).
  StatusOr<PageId> PageOf(Lid lid) const;

  /// Serializes the directory, allocation cursor, and liveness bitmap into
  /// `writer` (checkpoint support).
  void SaveState(MetadataWriter* writer) const;

  /// Restores state saved by SaveState into this (freshly constructed)
  /// instance; the payload size must match.
  Status LoadState(MetadataReader* reader);

 private:
  Status CheckLive(Lid lid) const;
  Status EnsureTailSlots(size_t needed);
  StatusOr<uint8_t*> SlotForWrite(Lid lid);

  PageCache* cache_;  // not owned
  const size_t payload_size_;
  const size_t records_per_page_;
  std::vector<PageId> pages_;    // directory: page index -> PageId
  std::vector<bool> live_;       // liveness bitmap, indexed by LID
  std::vector<Lid> free_list_;   // reusable record numbers
  uint64_t next_unused_ = 0;     // first never-allocated LID
  uint64_t live_count_ = 0;
};

}  // namespace boxes

#endif  // BOXES_LIDF_LIDF_H_
