#include "storage/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <utility>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace boxes {

namespace {

constexpr char kSnapshotMagic[8] = {'B', 'X', 'S', 'I', 'L', 'O', '1', '\n'};

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

}  // namespace

std::string SnapshotGuidToString(const SnapshotGuid& guid) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const uint8_t byte : guid) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

SnapshotGuid GenerateSnapshotGuid() {
  SnapshotGuid guid;
  std::random_device device;
  uint64_t mix = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  for (size_t i = 0; i < guid.size(); i += 4) {
    mix = mix * 0x9e3779b97f4a7c15ULL + device();
    EncodeFixed32(guid.data() + i, static_cast<uint32_t>(mix >> 16));
  }
  return guid;
}

SnapshotWriter::SnapshotWriter(SnapshotWriterOptions options)
    : options_(std::move(options)) {
  const SnapshotGuid zero = {};
  if (options_.guid == zero) {
    options_.guid = GenerateSnapshotGuid();
  }
}

StatusOr<std::string> SnapshotWriter::BuildImage(LabelingScheme* scheme) {
  Lidf* records = scheme->lidf();
  if (records == nullptr) {
    return Status::FailedPrecondition(
        scheme->name() + " exposes no LIDF; cannot compile a snapshot");
  }
  std::vector<Lid> lids;
  lids.reserve(records->live_records());
  BOXES_RETURN_IF_ERROR(
      records->ForEachLive([&](Lid lid, const uint8_t* /*payload*/) {
        lids.push_back(lid);  // ForEachLive visits in LID order: pre-sorted.
        return Status::OK();
      }));

  const bool ordinals = scheme->SupportsOrdinal();
  const uint64_t n = lids.size();
  std::vector<uint64_t> offsets;
  offsets.reserve(n + 1);
  std::vector<uint64_t> pool;
  pool.reserve(n);
  std::vector<uint64_t> ordinal_values;
  if (ordinals) {
    ordinal_values.reserve(n);
  }
  offsets.push_back(0);
  for (const Lid lid : lids) {
    BOXES_ASSIGN_OR_RETURN(const Label label, scheme->Lookup(lid));
    pool.insert(pool.end(), label.components().begin(),
                label.components().end());
    offsets.push_back(pool.size());
    if (ordinals) {
      BOXES_ASSIGN_OR_RETURN(const uint64_t ordinal,
                             scheme->OrdinalLookup(lid));
      ordinal_values.push_back(ordinal);
    }
  }

  const uint64_t body_words =
      n + (n + 1) + (ordinals ? n : 0) + pool.size();
  const uint64_t total = kSnapshotHeaderSize + 8 * body_words;
  std::string image(total, '\0');
  uint8_t* out = reinterpret_cast<uint8_t*>(image.data());

  uint8_t* cursor = out + kSnapshotHeaderSize;
  auto put_words = [&cursor](const uint64_t* words, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      EncodeFixed64(cursor, words[i]);
      cursor += 8;
    }
  };
  put_words(lids.data(), lids.size());
  put_words(offsets.data(), offsets.size());
  if (ordinals) {
    put_words(ordinal_values.data(), ordinal_values.size());
  }
  put_words(pool.data(), pool.size());

  std::memcpy(out, kSnapshotMagic, sizeof(kSnapshotMagic));
  EncodeFixed32(out + 8, kSnapshotVersion);
  EncodeFixed32(out + 12, static_cast<uint32_t>(kSnapshotHeaderSize));
  EncodeFixed64(out + 16, total);
  EncodeFixed32(out + 24,
                Crc32c(out + kSnapshotHeaderSize, total - kSnapshotHeaderSize));
  EncodeFixed32(out + 28, ordinals ? kSnapshotFlagOrdinals : 0);
  EncodeFixed64(out + 32, options_.source_epoch);
  std::memcpy(out + 40, options_.guid.data(), options_.guid.size());
  EncodeFixed64(out + 56, n);
  return image;
}

Status SnapshotWriter::ChargeFileOp(const char* what) {
  if (file_ops_ >= options_.fail_after_file_ops) {
    return Status::IoError(std::string("injected crash before snapshot ") +
                           what);
  }
  ++file_ops_;
  return Status::OK();
}

Status SnapshotWriter::Publish(const std::string& image,
                               const std::string& path) {
  const std::string tmp = path + ".tmp";

  BOXES_RETURN_IF_ERROR(ChargeFileOp("temp-file create"));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + tmp + ": " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < image.size()) {
    const size_t chunk =
        std::min(options_.write_chunk_bytes, image.size() - written);
    Status budget = ChargeFileOp("chunk write");
    if (!budget.ok()) {
      ::close(fd);  // a crash drops the descriptor; the partial file stays
      return budget;
    }
    const ssize_t got = ::write(fd, image.data() + written, chunk);
    if (got < 0 || static_cast<size_t>(got) != chunk) {
      const Status status =
          Status::IoError("write " + tmp + ": " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    written += chunk;
  }
  Status budget = ChargeFileOp("fsync");
  if (!budget.ok()) {
    ::close(fd);
    return budget;
  }
  if (::fsync(fd) != 0) {
    const Status status =
        Status::IoError("fsync " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);

  BOXES_RETURN_IF_ERROR(ChargeFileOp("rename"));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }

  // Make the rename itself durable: fsync the containing directory.
  BOXES_RETURN_IF_ERROR(ChargeFileOp("directory fsync"));
  const int dir_fd = ::open(DirnameOf(path).c_str(), O_RDONLY);
  if (dir_fd < 0) {
    return Status::IoError("open dir of " + path + ": " +
                           std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    const Status status =
        Status::IoError("fsync dir of " + path + ": " + std::strerror(errno));
    ::close(dir_fd);
    return status;
  }
  ::close(dir_fd);
  return Status::OK();
}

StatusOr<SnapshotCompileStats> SnapshotWriter::CompileToFile(
    LabelingScheme* scheme, const std::string& path) {
  BOXES_ASSIGN_OR_RETURN(const std::string image, BuildImage(scheme));
  BOXES_RETURN_IF_ERROR(Publish(image, path));
  SnapshotCompileStats stats;
  stats.entries = DecodeFixed64(
      reinterpret_cast<const uint8_t*>(image.data()) + 56);
  stats.image_bytes = image.size();
  stats.file_ops = file_ops_;
  stats.guid = options_.guid;
  return stats;
}

SnapshotReader::~SnapshotReader() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

StatusOr<std::unique_ptr<SnapshotReader>> SnapshotReader::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status =
        Status::IoError("fstat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::Corruption("snapshot " + path + " is empty");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IoError("mmap " + path + ": " + std::strerror(errno));
  }
  std::unique_ptr<SnapshotReader> reader(new SnapshotReader());
  reader->data_ = static_cast<const uint8_t*>(map);
  reader->size_ = size;
  reader->mapped_ = true;
  BOXES_RETURN_IF_ERROR(reader->Validate());
  return reader;
}

StatusOr<std::unique_ptr<SnapshotReader>> SnapshotReader::OpenFromBuffer(
    std::string image) {
  std::unique_ptr<SnapshotReader> reader(new SnapshotReader());
  reader->owned_ = std::move(image);
  reader->data_ = reinterpret_cast<const uint8_t*>(reader->owned_.data());
  reader->size_ = reader->owned_.size();
  BOXES_RETURN_IF_ERROR(reader->Validate());
  return reader;
}

Status SnapshotReader::Validate() {
  // Every field is distrusted until checked: the image may be truncated,
  // bit-flipped, or an outright forgery (snapshot_fuzz_test sweeps all
  // three). Nothing below this function performs a bounds check, so
  // nothing here may be skipped.
  if (size_ < kSnapshotHeaderSize) {
    return Status::Corruption("snapshot smaller than its header");
  }
  if (std::memcmp(data_, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::FailedPrecondition("not a snapshot image (bad magic)");
  }
  const uint32_t version = DecodeFixed32(data_ + 8);
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition("unsupported snapshot version " +
                                      std::to_string(version));
  }
  const uint32_t header_size = DecodeFixed32(data_ + 12);
  if (header_size != kSnapshotHeaderSize) {
    return Status::Corruption("snapshot header size mismatch");
  }
  // The libxmlb defence: the header states the exact file size, so a
  // truncated (or padded) image is rejected before any section pointer is
  // formed — offsets would otherwise read past the mapping.
  const uint64_t expected_size = DecodeFixed64(data_ + 16);
  if (expected_size != size_) {
    return Status::Corruption(
        "snapshot truncated or padded: header expects " +
        std::to_string(expected_size) + " bytes, file has " +
        std::to_string(size_));
  }
  const uint32_t flags = DecodeFixed32(data_ + 28);
  if ((flags & ~kSnapshotFlagOrdinals) != 0) {
    return Status::Corruption("snapshot carries unknown flags");
  }
  has_ordinals_ = (flags & kSnapshotFlagOrdinals) != 0;
  source_epoch_ = DecodeFixed64(data_ + 32);
  std::memcpy(guid_.data(), data_ + 40, guid_.size());
  entry_count_ = DecodeFixed64(data_ + 56);

  // Section arithmetic in 128 bits: a forged entry_count near 2^64 must
  // not wrap into a "fits" verdict.
  const unsigned __int128 fixed_words =
      static_cast<unsigned __int128>(entry_count_) * (has_ordinals_ ? 3 : 2) +
      1;
  const unsigned __int128 fixed_bytes = fixed_words * 8;
  const uint64_t body_bytes = size_ - kSnapshotHeaderSize;
  if (fixed_bytes > body_bytes) {
    return Status::Corruption("snapshot entry count exceeds image size");
  }
  const uint64_t pool_bytes = body_bytes - static_cast<uint64_t>(fixed_bytes);
  if (pool_bytes % 8 != 0) {
    return Status::Corruption("snapshot body is not word-aligned");
  }
  const uint64_t pool_words = pool_bytes / 8;

  const uint32_t crc =
      Crc32c(data_ + kSnapshotHeaderSize, body_bytes);
  if (crc != DecodeFixed32(data_ + 24)) {
    return Status::Corruption("snapshot body CRC mismatch");
  }

  lids_ = reinterpret_cast<const uint64_t*>(data_ + kSnapshotHeaderSize);
  offsets_ = lids_ + entry_count_;
  const uint64_t* after_offsets = offsets_ + entry_count_ + 1;
  if (has_ordinals_) {
    ordinals_ = after_offsets;
    pool_ = after_offsets + entry_count_;
  } else {
    ordinals_ = nullptr;
    pool_ = after_offsets;
  }

  for (uint64_t i = 0; i + 1 < entry_count_; ++i) {
    if (lids_[i] >= lids_[i + 1]) {
      return Status::Corruption("snapshot lids not strictly increasing");
    }
  }
  if (entry_count_ > 0 && lids_[entry_count_ - 1] == kInvalidLid) {
    return Status::Corruption("snapshot contains the invalid lid");
  }
  if (offsets_[0] != 0 || offsets_[entry_count_] != pool_words) {
    return Status::Corruption("snapshot label offsets do not span the pool");
  }
  for (uint64_t i = 0; i < entry_count_; ++i) {
    // Every label needs at least one component; monotonicity bounds each
    // slice inside the pool.
    if (offsets_[i] >= offsets_[i + 1]) {
      return Status::Corruption("snapshot label offsets not increasing");
    }
  }
  return Status::OK();
}

size_t SnapshotReader::FindIndex(Lid lid) const {
  // Branch-free lower bound: the comparison compiles to a conditional
  // move, so the search runs at a predictable ~log2(n) dependent loads
  // with no branch mispredictions.
  const uint64_t* base = lids_;
  size_t n = entry_count_;
  while (n > 1) {
    const size_t half = n / 2;
    base = (base[half] <= lid) ? base + half : base;
    n -= half;
  }
  if (entry_count_ == 0 || *base != lid) {
    return kNotFound;
  }
  return static_cast<size_t>(base - lids_);
}

Label SnapshotReader::LabelAt(size_t index) const {
  const uint64_t begin = offsets_[index];
  const uint64_t end = offsets_[index + 1];
  return Label::FromComponents(
      std::vector<uint64_t>(pool_ + begin, pool_ + end));
}

StatusOr<Label> SnapshotReader::Lookup(Lid lid) {
  const size_t index = FindIndex(lid);
  if (index == kNotFound) {
    return Status::NotFound("lid " + std::to_string(lid) +
                            " not in snapshot");
  }
  return LabelAt(index);
}

StatusOr<uint64_t> SnapshotReader::OrdinalLookup(Lid lid) {
  if (!has_ordinals_) {
    return Status::Unimplemented("snapshot carries no ordinal labels");
  }
  const size_t index = FindIndex(lid);
  if (index == kNotFound) {
    return Status::NotFound("lid " + std::to_string(lid) +
                            " not in snapshot");
  }
  return OrdinalAt(index);
}

}  // namespace boxes
