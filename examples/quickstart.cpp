// Quickstart: load an XML document into a W-BOX, use labels for
// ancestor/descendant tests, and watch the labels stay consistent through
// updates.
//
//   ./quickstart

#include <cstdio>

#include "core/common/label.h"
#include "core/wbox/wbox.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

void DieOnError(const boxes::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace boxes;  // NOLINT: example brevity

  // 1. Storage: an in-memory "disk" of 8 KB blocks, fronted by the
  //    I/O-accounting page cache. Swap in FilePageStore for a real file.
  MemoryPageStore store;
  PageCache cache(&store);

  // 2. Parse a document (Figure 1 of the paper, roughly).
  const char* kXml = R"(
    <site>
      <regions>
        <africa><item/><item/></africa>
        <asia><item/></asia>
      </regions>
      <people>
        <person/><person/>
      </people>
    </site>)";
  StatusOr<xml::Document> doc = xml::ParseDocument(kXml);
  DieOnError(doc.status(), "parse");
  std::printf("parsed %llu elements, depth %llu\n\n",
              static_cast<unsigned long long>(doc->element_count()),
              static_cast<unsigned long long>(doc->Depth()));

  // 3. Bulk load into a W-BOX. Each element gets a pair of immutable LIDs;
  //    the labels behind them change freely as the document evolves.
  WBox wbox(&cache);
  std::vector<NewElement> lids;
  {
    IoScope scope(&cache);  // brackets one logical operation for I/O counts
    DieOnError(wbox.BulkLoad(*doc, &lids), "bulk load");
  }

  auto element_labels = [&](xml::ElementId id) {
    IoScope scope(&cache);
    StatusOr<ElementLabels> labels =
        wbox.LookupElement(lids[id].start, lids[id].end);
    DieOnError(labels.status(), "lookup");
    return *labels;
  };

  // 4. Structural predicates via label comparison — no tree traversal.
  const xml::ElementId site = doc->root();
  const xml::ElementId regions = doc->element(site).children[0];
  const xml::ElementId africa = doc->element(regions).children[0];
  const xml::ElementId item = doc->element(africa).children[0];
  const xml::ElementId people = doc->element(site).children[1];

  std::printf("labels: site=[%s,%s] africa=[%s,%s] item=[%s,%s]\n",
              element_labels(site).start.ToString().c_str(),
              element_labels(site).end.ToString().c_str(),
              element_labels(africa).start.ToString().c_str(),
              element_labels(africa).end.ToString().c_str(),
              element_labels(item).start.ToString().c_str(),
              element_labels(item).end.ToString().c_str());
  std::printf("africa ancestor-of item?   %s\n",
              IsAncestor(element_labels(africa), element_labels(item))
                  ? "yes"
                  : "no");
  std::printf("people ancestor-of item?   %s\n",
              IsAncestor(element_labels(people), element_labels(item))
                  ? "yes"
                  : "no");

  // 5. Update the document: a new element squeezed in as the previous
  //    sibling of <asia>'s item... all LIDs stay valid.
  const xml::ElementId asia = doc->element(regions).children[1];
  const xml::ElementId asia_item = doc->element(asia).children[0];
  StatusOr<NewElement> fresh = [&] {
    IoScope scope(&cache);
    return wbox.InsertElementBefore(lids[asia_item].start);
  }();
  DieOnError(fresh.status(), "insert");
  StatusOr<ElementLabels> fresh_labels =
      wbox.LookupElement(fresh->start, fresh->end);
  DieOnError(fresh_labels.status(), "lookup");
  std::printf("\ninserted element labels: [%s,%s]\n",
              fresh_labels->start.ToString().c_str(),
              fresh_labels->end.ToString().c_str());
  std::printf("asia ancestor-of new elem? %s\n",
              IsAncestor(element_labels(asia), *fresh_labels) ? "yes" : "no");

  // 6. The structure audits itself.
  DieOnError(wbox.CheckInvariants(), "invariants");
  std::printf("\nall invariants hold; total block I/Os so far: %s\n",
              cache.stats().ToString().c_str());
  return 0;
}
