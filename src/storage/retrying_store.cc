#include "storage/retrying_store.h"

#include <algorithm>
#include <string>

#include "util/request_context.h"

namespace boxes {

RetryingPageStore::RetryingPageStore(PageStore* base,
                                     RetryingStoreOptions options)
    : base_(base), options_(options), rng_(options.seed) {
  BOXES_CHECK(options_.max_attempts >= 1);
  BOXES_CHECK(options_.backoff_multiplier >= 1.0);
}

void RetryingPageStore::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    handles_ = MetricHandles{};
    return;
  }
  handles_.ops = metrics->GetCounter("retry.ops");
  handles_.attempts = metrics->GetCounter("retry.attempts");
  handles_.retries = metrics->GetCounter("retry.retries");
  handles_.recovered = metrics->GetCounter("retry.recovered");
  handles_.gave_up = metrics->GetCounter("retry.gave_up");
  handles_.deadline_gave_up = metrics->GetCounter("retry.deadline_gave_up");
  handles_.permanent_errors = metrics->GetCounter("retry.permanent_errors");
  handles_.backoff_us = metrics->GetCounter("retry.backoff_us");
  handles_.backoff_ms = metrics->GetHistogram("retry.backoff_ms");
}

void RetryingPageStore::Count(std::atomic<uint64_t> Counters::*field,
                              MetricsRegistry::Counter* handle,
                              uint64_t delta) {
  (counters_.*field).fetch_add(delta, std::memory_order_relaxed);
  if (handle != nullptr) {
    handle->fetch_add(delta, std::memory_order_relaxed);
  }
}

void RetryingPageStore::RecordOpBackoff(uint64_t backoff_spent_us) {
  if (backoff_spent_us > 0 && handles_.backoff_ms != nullptr) {
    handles_.backoff_ms->Add((backoff_spent_us + 500) / 1000);
  }
}

void RetryingPageStore::CountPhase(const char* event) {
  if (metrics_ == nullptr || !phase_probe_) {
    return;
  }
  metrics_->IncrementCounter(std::string("retry.") +
                             IoPhaseName(phase_probe_()) + "." + event);
}

Status RetryingPageStore::RunWithRetry(const std::function<Status()>& op) {
  Count(&Counters::ops, handles_.ops);
  uint64_t backoff_us = options_.initial_backoff_us;
  uint64_t backoff_spent_us = 0;
  for (uint32_t attempt = 1;; ++attempt) {
    Count(&Counters::attempts, handles_.attempts);
    const Status status = op();
    if (status.ok()) {
      if (attempt > 1) {
        Count(&Counters::recovered, handles_.recovered);
      }
      RecordOpBackoff(backoff_spent_us);
      return status;
    }
    if (!IsRetryableCode(status.code())) {
      Count(&Counters::permanent_errors, handles_.permanent_errors);
      RecordOpBackoff(backoff_spent_us);
      return status;
    }
    // Jitter: a uniform draw from [backoff/2, backoff], seeded and thus
    // replayable (single-threaded runs; under concurrency the draw order —
    // and nothing else — depends on thread interleaving).
    uint64_t jittered;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      jittered = backoff_us / 2 + rng_.Uniform(backoff_us / 2 + 1);
    }
    if (attempt >= options_.max_attempts ||
        backoff_spent_us + jittered > options_.op_deadline_us) {
      Count(&Counters::gave_up, handles_.gave_up);
      CountPhase("gave_up");
      RecordOpBackoff(backoff_spent_us);
      return status;
    }
    // The caller's remaining budget must cover the sleep we are about to
    // take; otherwise the answer would arrive after the request's deadline
    // no matter what the device does. kDeadlineExceeded here (rather than
    // the device's last error) keeps the circuit breaker stacked above from
    // charging the caller's impatience against the device's health.
    if (RequestContext::CurrentRemainingUs() < jittered) {
      Count(&Counters::gave_up, handles_.gave_up);
      Count(&Counters::deadline_gave_up, handles_.deadline_gave_up);
      CountPhase("gave_up");
      RecordOpBackoff(backoff_spent_us);
      return Status::DeadlineExceeded(
          "retry abandoned: remaining request budget cannot cover the next "
          "backoff (last error: " +
          status.ToString() + ")");
    }
    Count(&Counters::retries, handles_.retries);
    CountPhase("retries");
    Count(&Counters::backoff_us, handles_.backoff_us, jittered);
    backoff_spent_us += jittered;
    if (options_.sleep) {
      options_.sleep(jittered);
    }
    backoff_us = std::min<uint64_t>(
        options_.max_backoff_us,
        static_cast<uint64_t>(static_cast<double>(backoff_us) *
                              options_.backoff_multiplier));
  }
}

StatusOr<PageId> RetryingPageStore::Allocate() {
  PageId id = kInvalidPageId;
  BOXES_RETURN_IF_ERROR(RunWithRetry([&]() -> Status {
    BOXES_ASSIGN_OR_RETURN(id, base_->Allocate());
    return Status::OK();
  }));
  return id;
}

Status RetryingPageStore::Free(PageId id) {
  return RunWithRetry([&] { return base_->Free(id); });
}

Status RetryingPageStore::Read(PageId id, uint8_t* buf) {
  return RunWithRetry([&] { return base_->Read(id, buf); });
}

Status RetryingPageStore::Write(PageId id, const uint8_t* buf) {
  return RunWithRetry([&] { return base_->Write(id, buf); });
}

Status RetryingPageStore::WriteUnjournaled(PageId id, const uint8_t* buf) {
  return RunWithRetry([&] { return base_->WriteUnjournaled(id, buf); });
}

Status RetryingPageStore::WriteTorn(PageId id, const uint8_t* buf,
                                    size_t prefix) {
  return base_->WriteTorn(id, buf, prefix);
}

Status RetryingPageStore::Sync() {
  return RunWithRetry([&] { return base_->Sync(); });
}

Status RetryingPageStore::CommitEpoch(uint64_t epoch) {
  return RunWithRetry([&] { return base_->CommitEpoch(epoch); });
}

}  // namespace boxes
