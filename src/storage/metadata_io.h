#ifndef BOXES_STORAGE_METADATA_IO_H_
#define BOXES_STORAGE_METADATA_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page_cache.h"
#include "util/status.h"

namespace boxes {

/// Serializes structure metadata (roots, counters, the LIDF directory and
/// liveness bitmap, ...) into a chain of pages, giving the otherwise
/// in-memory bookkeeping a durable home so file-backed databases can be
/// closed and reopened.
///
/// Page layout: [0..7] next page id (kInvalidPageId at the tail),
/// [8..11] payload bytes used, [16..] payload.
class MetadataWriter {
 public:
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutBytes(const uint8_t* data, size_t size);
  void PutString(const std::string& text);

  /// Writes the accumulated buffer into freshly allocated pages of `cache`
  /// and returns the head page id.
  StatusOr<PageId> Finish(PageCache* cache) const;

 private:
  std::vector<uint8_t> buffer_;
};

/// Reads back a metadata chain written by MetadataWriter. All Get* calls
/// are bounds-checked; reading past the end yields OutOfRange.
class MetadataReader {
 public:
  /// Loads the whole chain starting at `head`.
  static StatusOr<MetadataReader> Load(PageCache* cache, PageId head);

  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  Status GetBytes(uint8_t* out, size_t size);
  StatusOr<std::string> GetString();

  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return position_ == buffer_.size(); }

  /// Empty reader (required by StatusOr); use Load() to obtain real ones.
  MetadataReader() = default;

 private:
  std::vector<uint8_t> buffer_;
  size_t position_ = 0;
};

/// Frees the pages of a metadata chain (e.g. a superseded checkpoint).
Status FreeMetadataChain(PageCache* cache, PageId head);

/// Superblock conventions: checkpoint-enabled databases reserve page 0
/// before any structure allocates pages. The superblock stores a magic and
/// the current checkpoint's metadata-chain head.

/// Allocates and formats page 0; must be the very first allocation on a
/// fresh store.
Status InitializeSuperblock(PageCache* cache);

/// Points the superblock at a new checkpoint chain head.
Status StoreCheckpointHead(PageCache* cache, PageId head);

/// Reads the checkpoint chain head from the superblock; NotFound if the
/// database holds no checkpoint.
StatusOr<PageId> LoadCheckpointHead(PageCache* cache);

}  // namespace boxes

#endif  // BOXES_STORAGE_METADATA_IO_H_
