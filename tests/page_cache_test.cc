#include "storage/page_cache.h"

#include <cstring>

#include "gtest/gtest.h"
#include "test_util.h"

namespace boxes {
namespace {

TEST(PageCacheTest, FirstTouchCostsOneRead) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  uint8_t* data = nullptr;
  ASSERT_OK_AND_ASSIGN(const PageId page, cache.AllocatePage(&data));
  ASSERT_OK(cache.FlushAll());
  cache.ResetStats();

  cache.BeginOp();
  ASSERT_OK_AND_ASSIGN(uint8_t* p1, cache.GetPage(page));
  ASSERT_OK_AND_ASSIGN(uint8_t* p2, cache.GetPage(page));
  EXPECT_EQ(p1, p2);
  ASSERT_OK(cache.EndOp());
  EXPECT_EQ(cache.stats().reads, 1u);
  EXPECT_EQ(cache.stats().writes, 0u);
}

TEST(PageCacheTest, DirtyPageCostsOneWriteAtOpEnd) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  uint8_t* data = nullptr;
  ASSERT_OK_AND_ASSIGN(const PageId page, cache.AllocatePage(&data));
  ASSERT_OK(cache.FlushAll());
  cache.ResetStats();

  cache.BeginOp();
  ASSERT_OK_AND_ASSIGN(uint8_t* p, cache.GetPageForWrite(page));
  p[0] = 0x5a;
  ASSERT_OK_AND_ASSIGN(uint8_t* q, cache.GetPageForWrite(page));
  q[1] = 0x5b;
  ASSERT_OK(cache.EndOp());
  EXPECT_EQ(cache.stats().reads, 1u);
  EXPECT_EQ(cache.stats().writes, 1u);

  // Data survived the flush + working-set drop.
  cache.BeginOp();
  ASSERT_OK_AND_ASSIGN(uint8_t* r, cache.GetPage(page));
  EXPECT_EQ(r[0], 0x5a);
  EXPECT_EQ(r[1], 0x5b);
  ASSERT_OK(cache.EndOp());
}

TEST(PageCacheTest, WorkingSetDroppedBetweenOps) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  uint8_t* data = nullptr;
  ASSERT_OK_AND_ASSIGN(const PageId page, cache.AllocatePage(&data));
  ASSERT_OK(cache.FlushAll());
  cache.ResetStats();

  for (int i = 0; i < 3; ++i) {
    cache.BeginOp();
    ASSERT_OK(cache.GetPage(page).status());
    ASSERT_OK(cache.EndOp());
  }
  // Without retention, every operation re-reads the page.
  EXPECT_EQ(cache.stats().reads, 3u);
  EXPECT_EQ(cache.resident_pages(), 0u);
}

TEST(PageCacheTest, RetainedModeAvoidsRereads) {
  MemoryPageStore store(512);
  PageCacheOptions options;
  options.retain_across_ops = true;
  options.capacity_pages = 16;
  PageCache cache(&store, options);
  uint8_t* data = nullptr;
  ASSERT_OK_AND_ASSIGN(const PageId page, cache.AllocatePage(&data));
  ASSERT_OK(cache.FlushAll());
  cache.ResetStats();

  for (int i = 0; i < 3; ++i) {
    cache.BeginOp();
    ASSERT_OK(cache.GetPage(page).status());
    ASSERT_OK(cache.EndOp());
  }
  // The freshly allocated frame stays resident across operations, so no
  // re-reads happen at all.
  EXPECT_EQ(cache.stats().reads, 0u);
}

TEST(PageCacheTest, RetainedModeEvictsLru) {
  MemoryPageStore store(512);
  PageCacheOptions options;
  options.retain_across_ops = true;
  options.capacity_pages = 4;
  PageCache cache(&store, options);
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) {
    uint8_t* data = nullptr;
    ASSERT_OK_AND_ASSIGN(const PageId page, cache.AllocatePage(&data));
    data[0] = static_cast<uint8_t>(i + 1);
    pages.push_back(page);
  }
  ASSERT_OK(cache.FlushAll());
  EXPECT_LE(cache.resident_pages(), 8u);
  // All contents must remain correct regardless of eviction.
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(uint8_t* p, cache.GetPage(pages[i]));
    EXPECT_EQ(p[0], static_cast<uint8_t>(i + 1));
  }
}

TEST(PageCacheTest, AllocateChargesNoRead) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  cache.BeginOp();
  uint8_t* data = nullptr;
  ASSERT_OK(cache.AllocatePage(&data).status());
  ASSERT_OK(cache.EndOp());
  EXPECT_EQ(cache.stats().reads, 0u);
  EXPECT_EQ(cache.stats().writes, 1u);
}

TEST(PageCacheTest, FreedPageIsNotFlushed) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  cache.BeginOp();
  uint8_t* data = nullptr;
  ASSERT_OK_AND_ASSIGN(const PageId page, cache.AllocatePage(&data));
  ASSERT_OK(cache.FreePage(page));
  ASSERT_OK(cache.EndOp());
  EXPECT_EQ(cache.stats().writes, 0u);
  EXPECT_EQ(store.allocated_pages(), 0u);
}

TEST(PageCacheTest, ReadErrorPropagates) {
  MemoryPageStore base(512);
  FaultInjectionPageStore faulty(&base);
  PageCache cache(&faulty);
  ASSERT_OK_AND_ASSIGN(const PageId page, base.Allocate());
  faulty.FailAfter(0);
  cache.BeginOp();
  EXPECT_EQ(cache.GetPage(page).status().code(), StatusCode::kIoError);
  faulty.Heal();
  ASSERT_OK(cache.EndOp());
}

TEST(PageCacheTest, IoScopeBracketsAnOperation) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  uint8_t* data = nullptr;
  ASSERT_OK_AND_ASSIGN(const PageId page, cache.AllocatePage(&data));
  ASSERT_OK(cache.FlushAll());
  cache.ResetStats();
  {
    IoScope scope(&cache);
    EXPECT_TRUE(cache.op_active());
    ASSERT_OK(cache.GetPage(page).status());
  }
  EXPECT_FALSE(cache.op_active());
  EXPECT_EQ(cache.stats().reads, 1u);
}

TEST(PageCacheTest, RetainedModeKeepsFullCapacityAcrossOps) {
  // Regression: eviction used `>= capacity_pages`, so every BeginOp
  // trimmed the retained set to capacity - 1, silently shrinking the
  // effective cache by one page forever.
  MemoryPageStore store(512);
  PageCacheOptions options;
  options.retain_across_ops = true;
  options.capacity_pages = 4;
  PageCache cache(&store, options);
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) {
    uint8_t* data = nullptr;
    ASSERT_OK_AND_ASSIGN(const PageId page, cache.AllocatePage(&data));
    pages.push_back(page);
  }
  ASSERT_OK(cache.FlushAll());

  for (int round = 0; round < 3; ++round) {
    cache.BeginOp();
    // Touch the most recently used page: a hit in both the buggy and the
    // fixed cache, so resident_pages() isolates the trim behaviour.
    ASSERT_OK(cache.GetPage(pages.back()).status());
    ASSERT_OK(cache.EndOp());
    EXPECT_EQ(cache.resident_pages(), options.capacity_pages)
        << "round " << round;
  }
}

TEST(PageCacheTest, ScopedPhaseAttributesReadsAndWrites) {
  MemoryPageStore store(512);
  PageCache cache(&store);
  PageId page = kInvalidPageId;
  {
    uint8_t* data = nullptr;
    ScopedPhase phase(&cache, IoPhase::kBulkLoad);
    ASSERT_OK_AND_ASSIGN(page, cache.AllocatePage(&data));
  }
  // The allocation was dirtied under kBulkLoad; the flush happens later
  // (no phase active) but is still charged to the dirtying phase.
  ASSERT_OK(cache.FlushAll());
  EXPECT_EQ(cache.phase_stats(IoPhase::kBulkLoad).writes, 1u);
  cache.ResetStats();

  cache.BeginOp();
  {
    ScopedPhase phase(&cache, IoPhase::kSearch);
    ASSERT_OK(cache.GetPage(page).status());
  }
  {
    ScopedPhase outer(&cache, IoPhase::kSearch);
    ScopedPhase inner(&cache, IoPhase::kRebalance);  // innermost wins
    ASSERT_OK(cache.GetPageForWrite(page).status());
  }
  EXPECT_EQ(cache.current_phase(), IoPhase::kOther);  // guards restored
  ASSERT_OK(cache.EndOp());

  EXPECT_EQ(cache.phase_stats(IoPhase::kSearch).reads, 1u);
  EXPECT_EQ(cache.phase_stats(IoPhase::kRebalance).writes, 1u);
  EXPECT_EQ(cache.phase_stats(IoPhase::kOther).reads, 0u);
  // Per-phase counters partition the totals.
  uint64_t reads = 0;
  uint64_t writes = 0;
  for (const IoStats& phase : cache.phase_stats()) {
    reads += phase.reads;
    writes += phase.writes;
  }
  EXPECT_EQ(reads, cache.stats().reads);
  EXPECT_EQ(writes, cache.stats().writes);
}

TEST(IoStatsTest, DeltaSubtracts) {
  IoStats a{10, 4};
  IoStats b{7, 1};
  const IoStats d = a.Delta(b);
  EXPECT_EQ(d.reads, 3u);
  EXPECT_EQ(d.writes, 3u);
  EXPECT_EQ(d.total(), 6u);
}

}  // namespace
}  // namespace boxes
