file(REMOVE_RECURSE
  "CMakeFiles/wbox_property_test.dir/wbox_property_test.cc.o"
  "CMakeFiles/wbox_property_test.dir/wbox_property_test.cc.o.d"
  "wbox_property_test"
  "wbox_property_test.pdb"
  "wbox_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbox_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
