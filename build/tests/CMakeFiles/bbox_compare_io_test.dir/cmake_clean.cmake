file(REMOVE_RECURSE
  "CMakeFiles/bbox_compare_io_test.dir/bbox_compare_io_test.cc.o"
  "CMakeFiles/bbox_compare_io_test.dir/bbox_compare_io_test.cc.o.d"
  "bbox_compare_io_test"
  "bbox_compare_io_test.pdb"
  "bbox_compare_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbox_compare_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
