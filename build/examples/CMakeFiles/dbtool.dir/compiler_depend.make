# Empty compiler generated dependencies file for dbtool.
# This may be replaced when dependencies are built.
