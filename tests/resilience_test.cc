// Runtime fault resilience (DESIGN.md §4f): the RetryingPageStore's
// backoff/budget machinery, and the end-to-end survival contract — under a
// seeded transient fault storm the full stack (retry + cache + scheme +
// caching store) serves every operation with zero hard errors, and under
// permanent page faults it degrades to explicitly-marked possibly-stale
// answers while unaffected ranges keep serving exactly.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/cachelog/caching_store.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "storage/retrying_store.h"
#include "storage/scrubber.h"
#include "test_util.h"
#include "xml/generators.h"

namespace boxes {
namespace {

// ---------------------------------------------------------------------------
// RetryingPageStore unit tests

/// Fails the next `fail_next` operations with a configurable status, then
/// behaves like its MemoryPageStore base — the controllable "transient
/// glitch" FaultInjectionPageStore's probability mode cannot express
/// exactly.
class FlakyStore : public PageStore {
 public:
  explicit FlakyStore(size_t page_size) : base_(page_size) {}

  void FailNext(uint64_t n, Status error) {
    fail_next_ = n;
    error_ = std::move(error);
  }

  size_t page_size() const override { return base_.page_size(); }
  StatusOr<PageId> Allocate() override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Allocate();
  }
  Status Free(PageId id) override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Free(id);
  }
  Status Read(PageId id, uint8_t* buf) override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Read(id, buf);
  }
  Status Write(PageId id, const uint8_t* buf) override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Write(id, buf);
  }
  Status WriteTorn(PageId id, const uint8_t* buf, size_t prefix) override {
    ++torn_writes_;
    return base_.WriteTorn(id, buf, prefix);
  }
  Status Sync() override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.Sync();
  }
  Status CommitEpoch(uint64_t epoch) override {
    BOXES_RETURN_IF_ERROR(MaybeFail());
    return base_.CommitEpoch(epoch);
  }
  uint64_t allocated_pages() const override {
    return base_.allocated_pages();
  }
  uint64_t total_pages() const override { return base_.total_pages(); }
  void SnapshotAllocator(uint64_t* total,
                         std::vector<PageId>* free_pages) const override {
    base_.SnapshotAllocator(total, free_pages);
  }
  Status RestoreAllocator(uint64_t total,
                          const std::vector<PageId>& free_pages) override {
    return base_.RestoreAllocator(total, free_pages);
  }

  uint64_t torn_writes() const { return torn_writes_; }

 private:
  Status MaybeFail() {
    if (fail_next_ > 0) {
      --fail_next_;
      return error_;
    }
    return Status::OK();
  }

  MemoryPageStore base_;
  uint64_t fail_next_ = 0;
  uint64_t torn_writes_ = 0;
  Status error_ = Status::IoError("flaky");
};

TEST(RetryingStoreTest, RecoversAfterTransientFailures) {
  FlakyStore flaky(256);
  RetryingPageStore retrying(&flaky);
  ASSERT_OK_AND_ASSIGN(const PageId id, retrying.Allocate());
  std::vector<uint8_t> buf(256, 0xab);
  ASSERT_OK(retrying.Write(id, buf.data()));

  flaky.FailNext(2, Status::IoError("glitch"));
  std::vector<uint8_t> out(256, 0);
  ASSERT_OK(retrying.Read(id, out.data()));
  EXPECT_EQ(out, buf);

  const RetryingPageStore::Counters& c = retrying.counters();
  EXPECT_EQ(c.ops, 3u);  // Allocate, Write, Read
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.recovered, 1u);
  EXPECT_EQ(c.gave_up, 0u);
  EXPECT_EQ(c.permanent_errors, 0u);
  // Backoffs: jittered halves of 100us then 200us.
  EXPECT_GE(c.backoff_us, 150u);
  EXPECT_LE(c.backoff_us, 300u);
}

TEST(RetryingStoreTest, GivesUpAfterMaxAttempts) {
  FlakyStore flaky(256);
  RetryingStoreOptions options;
  options.max_attempts = 3;
  RetryingPageStore retrying(&flaky, options);
  ASSERT_OK_AND_ASSIGN(const PageId id, retrying.Allocate());

  flaky.FailNext(1000, Status::IoError("down"));
  std::vector<uint8_t> out(256, 0);
  EXPECT_EQ(retrying.Read(id, out.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(retrying.counters().gave_up, 1u);
  EXPECT_EQ(retrying.counters().retries, 2u);  // attempts 2 and 3
  // Later operations are unaffected once the fault clears.
  flaky.FailNext(0, Status::OK());
  EXPECT_OK(retrying.Read(id, out.data()));
}

TEST(RetryingStoreTest, BackoffDeadlineBoundsAnOperation) {
  FlakyStore flaky(256);
  RetryingStoreOptions options;
  options.max_attempts = 100;
  options.initial_backoff_us = 1000;
  options.backoff_multiplier = 1.0;
  options.op_deadline_us = 2500;  // admits at most 2-3 jittered 1ms waits
  RetryingPageStore retrying(&flaky, options);
  ASSERT_OK_AND_ASSIGN(const PageId id, retrying.Allocate());

  flaky.FailNext(1000, Status::IoError("down"));
  std::vector<uint8_t> out(256, 0);
  EXPECT_EQ(retrying.Read(id, out.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(retrying.counters().gave_up, 1u);
  EXPECT_LT(retrying.counters().retries, 6u);
  EXPECT_LE(retrying.counters().backoff_us, options.op_deadline_us);
}

TEST(RetryingStoreTest, PermanentErrorsAreNotRetried) {
  FlakyStore flaky(256);
  RetryingPageStore retrying(&flaky);
  ASSERT_OK_AND_ASSIGN(const PageId id, retrying.Allocate());

  flaky.FailNext(1, Status::Corruption("rot"));
  std::vector<uint8_t> out(256, 0);
  EXPECT_EQ(retrying.Read(id, out.data()).code(), StatusCode::kCorruption);
  EXPECT_EQ(retrying.counters().retries, 0u);
  EXPECT_EQ(retrying.counters().permanent_errors, 1u);
  EXPECT_EQ(retrying.counters().gave_up, 0u);
}

TEST(RetryingStoreTest, JitterIsDeterministicUnderASeed) {
  uint64_t backoffs[2];
  for (int round = 0; round < 2; ++round) {
    FlakyStore flaky(256);
    RetryingStoreOptions options;
    options.seed = 0xfeed;
    RetryingPageStore retrying(&flaky, options);
    ASSERT_OK_AND_ASSIGN(const PageId id, retrying.Allocate());
    flaky.FailNext(3, Status::IoError("glitch"));
    std::vector<uint8_t> out(256, 0);
    ASSERT_OK(retrying.Read(id, out.data()));
    backoffs[round] = retrying.counters().backoff_us;
  }
  EXPECT_EQ(backoffs[0], backoffs[1]);
  EXPECT_GT(backoffs[0], 0u);
}

TEST(RetryingStoreTest, SleepHookReceivesEveryBackoff) {
  FlakyStore flaky(256);
  uint64_t slept_us = 0;
  RetryingStoreOptions options;
  options.sleep = [&slept_us](uint64_t us) { slept_us += us; };
  RetryingPageStore retrying(&flaky, options);
  ASSERT_OK_AND_ASSIGN(const PageId id, retrying.Allocate());
  flaky.FailNext(2, Status::IoError("glitch"));
  std::vector<uint8_t> out(256, 0);
  ASSERT_OK(retrying.Read(id, out.data()));
  EXPECT_EQ(slept_us, retrying.counters().backoff_us);
}

TEST(RetryingStoreTest, MirrorsCountersIntoMetrics) {
  FlakyStore flaky(256);
  RetryingPageStore retrying(&flaky);
  MetricsRegistry metrics;
  retrying.SetMetrics(&metrics);
  ASSERT_OK_AND_ASSIGN(const PageId id, retrying.Allocate());
  flaky.FailNext(1, Status::IoError("glitch"));
  std::vector<uint8_t> out(256, 0);
  ASSERT_OK(retrying.Read(id, out.data()));
  EXPECT_EQ(metrics.CounterValue("retry.retries"), 1u);
  EXPECT_EQ(metrics.CounterValue("retry.recovered"), 1u);
  EXPECT_GT(metrics.CounterValue("retry.backoff_us"), 0u);
}

TEST(RetryingStoreTest, TornWritesPassThroughUnretried) {
  FlakyStore flaky(256);
  RetryingPageStore retrying(&flaky);
  ASSERT_OK_AND_ASSIGN(const PageId id, retrying.Allocate());
  std::vector<uint8_t> buf(256, 0x5a);
  ASSERT_OK(retrying.WriteTorn(id, buf.data(), 17));
  EXPECT_EQ(flaky.torn_writes(), 1u);
  EXPECT_EQ(retrying.counters().ops, 1u);  // Allocate only
}

// ---------------------------------------------------------------------------
// End-to-end survival: transient storms and permanent faults

/// The full resilience stack of DESIGN.md §4f:
/// memory -> fault injector -> retrying store -> page cache -> scheme.
struct ResilienceRig {
  ResilienceRig() : base(1024), faulty(&base), retrying(&faulty),
                    cache(&retrying) {}

  std::unique_ptr<LabelingScheme> MakeScheme(const std::string& name) {
    if (name == "wbox") {
      return std::make_unique<WBox>(&cache);
    }
    if (name == "bbox") {
      return std::make_unique<BBox>(&cache);
    }
    NaiveOptions options;
    options.gap_bits = 16;
    return std::make_unique<NaiveScheme>(&cache, options);
  }

  MemoryPageStore base;
  FaultInjectionPageStore faulty;
  RetryingPageStore retrying;
  PageCache cache;
};

class ResilienceStormTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ResilienceStormTest, SurvivesTransientStormWithZeroHardErrors) {
  // A seeded 5% transient fault storm over a mixed insert/lookup workload:
  // the ISSUE's survival bar is zero hard errors and bounded staleness
  // (exact answers only — nothing in this storm makes a cached value
  // unrecoverable), with the retry counters actually moving.
  ResilienceRig rig;
  MetricsRegistry metrics;
  rig.retrying.SetMetrics(&metrics);
  rig.retrying.SetPhaseProbe(
      [cache = &rig.cache] { return cache->current_phase(); });
  std::unique_ptr<LabelingScheme> scheme = rig.MakeScheme(GetParam());
  CachingLabelStore store(scheme.get(), /*log_capacity=*/256);

  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(scheme->BulkLoad(doc, &lids));
  ASSERT_OK(rig.cache.FlushAll());
  std::vector<CachedLabelRef> refs;
  refs.reserve(lids.size());
  for (const NewElement& element : lids) {
    refs.push_back(store.MakeRef(element.start));
    ASSERT_OK(store.Lookup(&refs.back()).status());
  }
  ASSERT_OK(rig.cache.FlushAll());

  rig.faulty.SetSeed(0x57012);
  rig.faulty.SetFailProbability(0.05, /*transient=*/true);
  Random rng(0x40b);
  uint64_t exact = 0;
  uint64_t stale = 0;
  for (int op = 0; op < 600; ++op) {
    if (rng.Bernoulli(0.2)) {
      IoScope scope(&rig.cache);
      const Lid target = lids[rng.Uniform(lids.size())].start;
      ASSERT_OK(scheme->InsertElementBefore(target).status());
      ASSERT_OK(scope.End());
      ++exact;
    } else {
      IoScope scope(&rig.cache);
      CachedLabelRef* ref = &refs[rng.Uniform(refs.size())];
      ASSERT_OK_AND_ASSIGN(const ResilientLabel label,
                           store.LookupResilient(ref));
      (void)scope.End();
      label.possibly_stale ? ++stale : ++exact;
    }
  }
  EXPECT_EQ(exact + stale, 600u);
  EXPECT_EQ(stale, 0u);  // transient faults never strand a reference

  // The storm actually exercised the retry machinery, and nothing gave up.
  EXPECT_GT(rig.retrying.counters().retries, 0u);
  EXPECT_GT(rig.retrying.counters().recovered, 0u);
  EXPECT_EQ(rig.retrying.counters().gave_up, 0u);
  EXPECT_GT(metrics.CounterValue("retry.retries"), 0u);

  // After the storm the structure is pristine and every cached reference
  // agrees with a direct lookup.
  rig.faulty.Heal();
  ASSERT_OK(scheme->CheckInvariants());
  for (CachedLabelRef& ref : refs) {
    ASSERT_OK_AND_ASSIGN(const Label direct, scheme->Lookup(ref.lid));
    ASSERT_OK_AND_ASSIGN(const Label cached, store.Lookup(&ref));
    EXPECT_EQ(cached, direct);
  }
}

TEST_P(ResilienceStormTest, PermanentFaultsDegradeToMarkedStaleReads) {
  ResilienceRig rig;
  std::unique_ptr<LabelingScheme> scheme = rig.MakeScheme(GetParam());
  MetricsRegistry metrics;
  scheme->SetMetrics(&metrics);
  CachingLabelStore store(scheme.get(), /*log_capacity=*/4);

  const xml::Document doc = xml::MakeTwoLevelDocument(300);
  std::vector<NewElement> lids;
  ASSERT_OK(scheme->BulkLoad(doc, &lids));
  std::vector<CachedLabelRef> refs;
  refs.reserve(lids.size());
  for (const NewElement& element : lids) {
    refs.push_back(store.MakeRef(element.start));
    ASSERT_OK(store.Lookup(&refs.back()).status());
  }
  std::vector<Label> cached_labels;
  cached_labels.reserve(refs.size());
  for (const CachedLabelRef& ref : refs) {
    cached_labels.push_back(ref.cached);
  }

  // Age every reference beyond the tiny replay window: concentrated
  // inserts exhaust the local gap, so even naive-k emits shifts. Each
  // insert runs as a bracketed operation so the page cache's working set
  // is dropped and later lookups really touch the (poisoned) store.
  for (int i = 0; i < 40; ++i) {
    IoScope scope(&rig.cache);
    ASSERT_OK(
        scheme->InsertElementBefore(lids[lids.size() / 2].start).status());
    ASSERT_OK(scope.End());
  }

  // Kill the whole device (every read fails permanently). References that
  // hold a value degrade to possibly-stale; the contract is explicit
  // marking, never a silently wrong "exact" answer.
  uint64_t total = 0;
  std::vector<PageId> free_pages;
  rig.base.SnapshotAllocator(&total, &free_pages);
  for (PageId id = 0; id < total; ++id) {
    rig.faulty.PoisonPage(id);
  }
  uint64_t degraded = 0;
  for (size_t i = 0; i < refs.size(); ++i) {
    IoScope scope(&rig.cache);
    StatusOr<ResilientLabel> label = store.LookupResilient(&refs[i]);
    (void)scope.End();
    if (!label.ok()) {
      // Replay-covered refs can still be exact; uncovered ones must have
      // degraded rather than erroring, since they hold a cached value.
      ADD_FAILURE() << "ref " << i << " hard-errored: "
                    << label.status().ToString();
      continue;
    }
    if (label->possibly_stale) {
      ++degraded;
      EXPECT_EQ(label->label, cached_labels[i]);
    }
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(store.served_degraded(), degraded);
  EXPECT_EQ(metrics.CounterValue("cachelog.served_degraded"), degraded);

  // The plain (non-resilient) API keeps strict semantics: same reference,
  // hard error. And a reference with no cached value cannot degrade.
  {
    IoScope scope(&rig.cache);
    CachedLabelRef fresh = store.MakeRef(lids[0].start);
    EXPECT_FALSE(store.LookupResilient(&fresh).ok());
    (void)scope.End();
  }
  EXPECT_GT(store.degraded_misses(), 0u);

  // Healing restores exact service automatically — degraded serving never
  // refreshed the references, so the next lookup retries the scheme.
  rig.faulty.Heal();
  for (CachedLabelRef& ref : refs) {
    IoScope scope(&rig.cache);
    ASSERT_OK_AND_ASSIGN(const ResilientLabel label,
                         store.LookupResilient(&ref));
    (void)scope.End();
    EXPECT_FALSE(label.possibly_stale);
  }
}

TEST_P(ResilienceStormTest, SinglePoisonedPageKeepsUnaffectedRangesExact) {
  // One rotted page must not take down the document: lookups that never
  // touch it stay exact, lookups that do are degraded-or-repaired, and the
  // scrubber quarantines exactly the poisoned page.
  ResilienceRig rig;
  std::unique_ptr<LabelingScheme> scheme = rig.MakeScheme(GetParam());
  CachingLabelStore store(scheme.get(), /*log_capacity=*/4);
  Scrubber scrubber(&rig.faulty);

  const xml::Document doc = xml::MakeTwoLevelDocument(300);
  std::vector<NewElement> lids;
  ASSERT_OK(scheme->BulkLoad(doc, &lids));
  std::vector<CachedLabelRef> refs;
  refs.reserve(lids.size());
  for (const NewElement& element : lids) {
    refs.push_back(store.MakeRef(element.start));
    ASSERT_OK(store.Lookup(&refs.back()).status());
  }
  for (int i = 0; i < 40; ++i) {
    IoScope scope(&rig.cache);
    ASSERT_OK(
        scheme->InsertElementBefore(lids[lids.size() / 2].start).status());
    ASSERT_OK(scope.End());
  }

  // Poison one allocated page.
  uint64_t total = 0;
  std::vector<PageId> free_pages;
  rig.base.SnapshotAllocator(&total, &free_pages);
  const std::set<PageId> free_set(free_pages.begin(), free_pages.end());
  PageId victim = kInvalidPageId;
  for (PageId id = total; id-- > 0;) {
    if (free_set.count(id) == 0) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidPageId);
  rig.faulty.PoisonPage(victim);

  uint64_t exact = 0;
  uint64_t stale = 0;
  for (CachedLabelRef& ref : refs) {
    IoScope scope(&rig.cache);
    ASSERT_OK_AND_ASSIGN(const ResilientLabel label,
                         store.LookupResilient(&ref));
    (void)scope.End();
    label.possibly_stale ? ++stale : ++exact;
  }
  EXPECT_GT(exact, 0u);  // unaffected ranges keep serving exactly

  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.quarantined(), std::set<PageId>{victim});
  rig.faulty.HealPage(victim);
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_TRUE(scrubber.quarantined().empty());
  EXPECT_EQ(scrubber.counters().pages_recovered, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ResilienceStormTest,
                         ::testing::Values("wbox", "bbox", "naive-16"));

}  // namespace
}  // namespace boxes
