#include "storage/io_stats.h"

#include <cstdio>

namespace boxes {

std::string IoStats::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "reads=%llu writes=%llu total=%llu",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(total()));
  return buf;
}

}  // namespace boxes
