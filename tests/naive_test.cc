#include "core/naive/naive.h"

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::TagOrderLids;
using testing::TestDb;

TEST(NaiveTest, FirstElementAndLookup) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 4, .count_bits = 20});
  ASSERT_OK_AND_ASSIGN(const NewElement root, naive.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const Label start, naive.Lookup(root.start));
  ASSERT_OK_AND_ASSIGN(const Label end, naive.Lookup(root.end));
  EXPECT_TRUE(start < end);
  ASSERT_OK(naive.CheckInvariants());
}

TEST(NaiveTest, BulkLoadLeavesEqualGaps) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 8, .count_bits = 20});
  const xml::Document doc = xml::MakeRandomDocument(300, 5, 3);
  std::vector<NewElement> lids;
  ASSERT_OK(naive.BulkLoad(doc, &lids));
  const std::vector<Lid> order = TagOrderLids(doc, lids);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&naive, order));
  // Labels are exactly (i+1) << 8.
  for (size_t i = 0; i < order.size(); i += 17) {
    ASSERT_OK_AND_ASSIGN(const Label label, naive.Lookup(order[i]));
    EXPECT_EQ(label.ToBigUint(), BigUint(i + 1).ShiftLeft(8));
  }
  ASSERT_OK(naive.CheckInvariants());
}

TEST(NaiveTest, ScatteredInsertionsAvoidRelabeling) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 8, .count_bits = 20});
  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(naive.BulkLoad(doc, &lids));
  // One insertion per gap: gaps of 2^8 absorb them trivially.
  for (size_t i = 1; i < lids.size(); ++i) {
    ASSERT_OK(naive.InsertElementBefore(lids[i].start).status());
  }
  EXPECT_EQ(naive.relabel_count(), 0u);
  ASSERT_OK(naive.CheckInvariants());
}

TEST(NaiveTest, ConcentratedInsertionsForceRelabeling) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 4, .count_bits = 20});
  ASSERT_OK_AND_ASSIGN(const NewElement root, naive.InsertFirstElement());
  NewElement target = root;
  // Repeatedly inserting into the same gap exhausts 2^4 in ~5 steps
  // (each element insertion splits the gap twice).
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK_AND_ASSIGN(target, naive.InsertElementBefore(target.start));
  }
  EXPECT_GT(naive.relabel_count(), 4u);
  ASSERT_OK(naive.CheckInvariants());
}

TEST(NaiveTest, OrderPreservedThroughRelabels) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 2, .count_bits = 20});
  ASSERT_OK_AND_ASSIGN(const NewElement root, naive.InsertFirstElement());
  std::vector<Lid> order{root.start};
  std::vector<Lid> tail{root.end};
  NewElement target = root;
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK_AND_ASSIGN(target, naive.InsertElementBefore(target.end));
    order.push_back(target.start);
    tail.insert(tail.begin(), target.end);
  }
  order.insert(order.end(), tail.begin(), tail.end());
  EXPECT_TRUE(LabelsStrictlyIncreasing(&naive, order));
  EXPECT_GT(naive.relabel_count(), 0u);
  ASSERT_OK(naive.CheckInvariants());
}

TEST(NaiveTest, LargeGapBitsUseBigLabels) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 256, .count_bits = 40});
  const xml::Document doc = xml::MakeTwoLevelDocument(50);
  std::vector<NewElement> lids;
  ASSERT_OK(naive.BulkLoad(doc, &lids));
  ASSERT_OK_AND_ASSIGN(const SchemeStats stats, naive.GetStats());
  // 102 labels at gap 2^256: top label needs > 256 bits — far beyond a
  // machine word (the paper's point).
  EXPECT_GT(stats.max_label_bits, 256u);
  EXPECT_TRUE(LabelsStrictlyIncreasing(&naive, TagOrderLids(doc, lids)));
}

TEST(NaiveTest, DeleteFreesLidAndKeepsOrder) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 8, .count_bits = 20});
  const xml::Document doc = xml::MakeTwoLevelDocument(50);
  std::vector<NewElement> lids;
  ASSERT_OK(naive.BulkLoad(doc, &lids));
  ASSERT_OK(naive.Delete(lids[10].start));
  ASSERT_OK(naive.Delete(lids[10].end));
  EXPECT_FALSE(naive.Lookup(lids[10].start).ok());
  EXPECT_TRUE(LabelsStrictlyIncreasing(
      &naive, {lids[9].start, lids[9].end, lids[11].start, lids[11].end}));
  ASSERT_OK(naive.CheckInvariants());
  // Insertion into the stale gap next to the deleted label still works.
  ASSERT_OK(naive.InsertElementBefore(lids[11].start).status());
  ASSERT_OK(naive.CheckInvariants());
}

TEST(NaiveTest, LookupCostsOneIo) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 16, .count_bits = 30});
  const xml::Document doc = xml::MakeTwoLevelDocument(2000);
  std::vector<NewElement> lids;
  ASSERT_OK(naive.BulkLoad(doc, &lids));
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  constexpr int kLookups = 40;
  for (int i = 0; i < kLookups; ++i) {
    IoScope scope(&db.cache);
    ASSERT_OK(naive.Lookup(lids[(i * 53) % lids.size()].start).status());
  }
  // The label lives directly in the LIDF record: 1 I/O.
  EXPECT_EQ(db.cache.stats().reads, 1u * kLookups);
}

TEST(NaiveTest, RelabelCostScalesWithFileSize) {
  TestDb db;
  NaiveScheme naive(&db.cache, {.gap_bits = 1, .count_bits = 20});
  const xml::Document doc = xml::MakeTwoLevelDocument(2000);
  std::vector<NewElement> lids;
  ASSERT_OK(naive.BulkLoad(doc, &lids));
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  // gap_bits=1: the second insertion into the same gap must relabel.
  {
    IoScope scope(&db.cache);
    ASSERT_OK(naive.InsertElementBefore(lids[1000].start).status());
  }
  const uint64_t first_cost = db.cache.stats().total();
  db.cache.ResetStats();
  {
    IoScope scope(&db.cache);
    ASSERT_OK(naive.InsertElementBefore(lids[1000].start).status());
  }
  const uint64_t second_cost = db.cache.stats().total();
  EXPECT_GE(naive.relabel_count(), 1u);
  // The relabeling insert touches (reads + writes) every LIDF page.
  EXPECT_GE(second_cost + first_cost, naive.lidf()->page_count());
  ASSERT_OK(naive.CheckInvariants());
}

}  // namespace
}  // namespace boxes
