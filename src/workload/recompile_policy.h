#ifndef BOXES_WORKLOAD_RECOMPILE_POLICY_H_
#define BOXES_WORKLOAD_RECOMPILE_POLICY_H_

#include <cstddef>
#include <cstdint>

#include "core/common/overlay.h"

namespace boxes {

/// When should a serving tier pay a recompile? The overlay degrades
/// gracefully as deltas accumulate — more lookups route to the live
/// authority, fewer ride the zero-I/O mmap path — so the policy question
/// is purely economic: trade one compile (O(N) extraction + write) against
/// the growing per-lookup cost of overlay routing. This mirrors LSM
/// compaction triggers: size-based (delta count vs. image size) plus a
/// staleness backstop (the serve mix itself).
struct RecompilePolicyOptions {
  /// Recompile when the delta map exceeds this fraction of the served
  /// image's entries (0.1 = 10% churn since compile).
  double max_delta_fraction = 0.10;
  /// ... but never before this many deltas accumulate (avoids recompiling
  /// a large image over a handful of edits).
  size_t min_deltas = 256;
  /// Staleness backstop: recompile when the fraction of lookups since the
  /// last compile answered by fallback (invalidated / log overflow)
  /// exceeds this.
  double max_fallback_fraction = 0.25;
};

class RecompilePolicy {
 public:
  explicit RecompilePolicy(RecompilePolicyOptions options = {})
      : options_(options) {}

  /// True when `overlay`'s current delta pressure or serve mix warrants a
  /// recompile. Never fires before the first compile (no image to refresh;
  /// callers bootstrap with an explicit Recompile()).
  bool ShouldRecompile(const OverlayedScheme& overlay) const;

  /// Resets the serve-mix baseline; call right after a recompile so the
  /// fallback fraction measures the new image, not history.
  void OnRecompiled(const OverlayedScheme& overlay);

  const RecompilePolicyOptions& options() const { return options_; }

 private:
  RecompilePolicyOptions options_;
  /// Serve-mix baseline at the last compile.
  uint64_t baseline_lookups_ = 0;
  uint64_t baseline_fallback_ = 0;
};

}  // namespace boxes

#endif  // BOXES_WORKLOAD_RECOMPILE_POLICY_H_
