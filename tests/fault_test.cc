// Failure injection: every labeling operation must surface storage errors
// as Status (never crash, never loop), and the structures must keep
// working once the fault heals — provided no mutation was torn.

#include <memory>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/generators.h"

namespace boxes {
namespace {

struct FaultRig {
  FaultRig() : base(1024), faulty(&base), cache(&faulty) {}

  MemoryPageStore base;
  FaultInjectionPageStore faulty;
  PageCache cache;
};

TEST(FaultTest, LookupErrorsPropagate) {
  FaultRig rig;
  WBox wbox(&rig.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK(rig.cache.FlushAll());

  rig.faulty.FailAfter(0);
  EXPECT_EQ(wbox.Lookup(lids[100].start).status().code(),
            StatusCode::kIoError);
  rig.faulty.Heal();
  EXPECT_TRUE(wbox.Lookup(lids[100].start).ok());
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(FaultTest, BBoxLookupWalkSurvivesMidPathFault) {
  FaultRig rig;
  BBox bbox(&rig.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(2000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  ASSERT_OK(rig.cache.FlushAll());
  ASSERT_GE(bbox.height(), 2u);

  // Fail on the second page access: the LIDF deref succeeds, the upward
  // walk fails.
  rig.faulty.FailAfter(1);
  EXPECT_EQ(bbox.Lookup(lids[1500].start).status().code(),
            StatusCode::kIoError);
  rig.faulty.Heal();
  EXPECT_TRUE(bbox.Lookup(lids[1500].start).ok());
}

TEST(FaultTest, ReadOnlyFaultsNeverCorrupt) {
  // Faults injected only while performing reads (lookups) must leave the
  // structure bit-identical: verify invariants after healing.
  FaultRig rig;
  WBoxOptions options;
  options.pair_mode = true;
  WBox wbox(&rig.cache, options);
  const xml::Document doc = xml::MakeRandomDocument(1000, 5, 3);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK(rig.cache.FlushAll());

  for (uint64_t budget = 0; budget < 4; ++budget) {
    rig.faulty.FailAfter(budget);
    (void)wbox.LookupElement(lids[500].start, lids[500].end);
    (void)wbox.Compare(lids[10].start, lids[900].end);
    rig.faulty.Heal();
  }
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_TRUE(testing::LabelsStrictlyIncreasing(
      &wbox, testing::TagOrderLids(doc, lids)));
}

TEST(FaultTest, BulkLoadFailsCleanly) {
  FaultRig rig;
  rig.faulty.FailAfter(5);
  BBox bbox(&rig.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(5000);
  // Bulk loading itself only allocates fresh frames; the injected write
  // faults surface at flush time.
  rig.cache.BeginOp();
  const Status load = bbox.BulkLoad(doc, nullptr);
  const Status flush = rig.cache.EndOp();
  EXPECT_TRUE(!load.ok() || !flush.ok());
  EXPECT_EQ((!load.ok() ? load : flush).code(), StatusCode::kIoError);
}

TEST(FaultTest, MutationErrorsPropagateAcrossSchemes) {
  // Every scheme must return (not crash) when writes start failing at an
  // arbitrary point during mutations. Consistency after a torn write is
  // NOT guaranteed (no WAL in this design); only error propagation is.
  for (int scheme_kind = 0; scheme_kind < 3; ++scheme_kind) {
    for (uint64_t budget : {0ull, 1ull, 3ull, 7ull, 15ull}) {
      FaultRig rig;
      std::unique_ptr<LabelingScheme> scheme;
      switch (scheme_kind) {
        case 0:
          scheme = std::make_unique<WBox>(&rig.cache);
          break;
        case 1:
          scheme = std::make_unique<BBox>(&rig.cache);
          break;
        default:
          scheme = std::make_unique<NaiveScheme>(
              &rig.cache, NaiveOptions{.gap_bits = 4, .count_bits = 20});
          break;
      }
      const xml::Document doc = xml::MakeTwoLevelDocument(300);
      std::vector<NewElement> lids;
      ASSERT_OK(scheme->BulkLoad(doc, &lids));
      ASSERT_OK(rig.cache.FlushAll());

      rig.faulty.FailAfter(budget);
      Status status = Status::OK();
      // Hammer one spot until the injected fault hits; operation brackets
      // force real page traffic every iteration.
      for (int i = 0; i < 50 && status.ok(); ++i) {
        rig.cache.BeginOp();
        status = scheme->InsertElementBefore(lids[150].start).status();
        const Status flush = rig.cache.EndOp();
        if (status.ok()) {
          status = flush;
        }
      }
      EXPECT_EQ(status.code(), StatusCode::kIoError)
          << "scheme " << scheme->name() << " budget " << budget;
    }
  }
}

TEST(FaultTest, DeleteErrorsPropagateAcrossSchemes) {
  // Deletions touch the LIDF, leaf pages, and (via underflow handling)
  // ancestors; a write fault anywhere along that path must come back as a
  // clean IoError for every scheme.
  for (int scheme_kind = 0; scheme_kind < 3; ++scheme_kind) {
    for (uint64_t budget : {0ull, 1ull, 3ull, 7ull}) {
      FaultRig rig;
      std::unique_ptr<LabelingScheme> scheme;
      switch (scheme_kind) {
        case 0:
          scheme = std::make_unique<WBox>(&rig.cache);
          break;
        case 1:
          scheme = std::make_unique<BBox>(&rig.cache);
          break;
        default:
          scheme = std::make_unique<NaiveScheme>(
              &rig.cache, NaiveOptions{.gap_bits = 4, .count_bits = 20});
          break;
      }
      const xml::Document doc = xml::MakeTwoLevelDocument(300);
      std::vector<NewElement> lids;
      ASSERT_OK(scheme->BulkLoad(doc, &lids));
      ASSERT_OK(rig.cache.FlushAll());

      rig.faulty.FailAfter(budget);
      Status status = Status::OK();
      for (size_t i = 1; i < lids.size() && status.ok(); ++i) {
        rig.cache.BeginOp();
        status = scheme->Delete(lids[i].start);
        if (status.ok()) {
          status = scheme->Delete(lids[i].end);
        }
        const Status flush = rig.cache.EndOp();
        if (status.ok()) {
          status = flush;
        }
      }
      if (scheme_kind == 2) {
        // Naive-k deletion is pure bookkeeping (Lidf::Free touches no
        // pages), so there is no I/O for the injector to fail: the whole
        // run must complete cleanly instead.
        EXPECT_OK(status);
      } else {
        EXPECT_EQ(status.code(), StatusCode::kIoError)
            << "scheme " << scheme->name() << " budget " << budget;
      }
      // The structure must stay answerable after healing: accessors return
      // Status instead of crashing, even if the torn mutation left damage.
      rig.faulty.Heal();
      (void)scheme->Lookup(lids[0].start);
      (void)scheme->CheckInvariants();
    }
  }
}

TEST(FaultTest, NaiveRelabelFaultSurfacesCleanly) {
  // gap_bits=2 exhausts insertion gaps almost immediately, so the
  // insertion loop is guaranteed to enter naive-k's relabel path; a fault
  // budget that lands mid-relabel must surface as IoError, not a crash.
  for (uint64_t budget : {0ull, 2ull, 5ull, 11ull, 23ull}) {
    FaultRig rig;
    NaiveScheme naive(&rig.cache,
                      NaiveOptions{.gap_bits = 2, .count_bits = 24});
    const xml::Document doc = xml::MakeTwoLevelDocument(200);
    std::vector<NewElement> lids;
    ASSERT_OK(naive.BulkLoad(doc, &lids));
    ASSERT_OK(rig.cache.FlushAll());

    rig.faulty.FailAfter(budget);
    Status status = Status::OK();
    for (int i = 0; i < 80 && status.ok(); ++i) {
      rig.cache.BeginOp();
      status = naive.InsertElementBefore(lids[100].start).status();
      const Status flush = rig.cache.EndOp();
      if (status.ok()) {
        status = flush;
      }
    }
    EXPECT_EQ(status.code(), StatusCode::kIoError) << "budget " << budget;
    rig.faulty.Heal();
    (void)naive.CheckInvariants();
  }
}

TEST(FaultTest, RebalanceFaultsSurfaceCleanly) {
  // Concentrated inserts force leaf splits and weight rebalances in both
  // box schemes; sweep fault budgets so failures land in the rebalance
  // machinery itself (parent updates, sibling redistribution), not just
  // the initial leaf write.
  for (int scheme_kind = 0; scheme_kind < 2; ++scheme_kind) {
    for (uint64_t budget = 0; budget < 24; budget += 3) {
      FaultRig rig;
      std::unique_ptr<LabelingScheme> scheme;
      if (scheme_kind == 0) {
        scheme = std::make_unique<WBox>(&rig.cache);
      } else {
        scheme = std::make_unique<BBox>(&rig.cache);
      }
      const xml::Document doc = xml::MakeTwoLevelDocument(400);
      std::vector<NewElement> lids;
      ASSERT_OK(scheme->BulkLoad(doc, &lids));
      ASSERT_OK(rig.cache.FlushAll());

      rig.faulty.FailAfter(budget);
      Status status = Status::OK();
      Lid target = lids[200].start;
      for (int i = 0; i < 120 && status.ok(); ++i) {
        rig.cache.BeginOp();
        StatusOr<NewElement> fresh = scheme->InsertElementBefore(target);
        status = fresh.status();
        const Status flush = rig.cache.EndOp();
        if (status.ok()) {
          status = flush;
          target = fresh->start;  // keep hammering the same leaf region
        }
      }
      EXPECT_EQ(status.code(), StatusCode::kIoError)
          << "scheme " << scheme->name() << " budget " << budget;
      rig.faulty.Heal();
      (void)scheme->CheckInvariants();
    }
  }
}

TEST(FaultTest, LidfDerefFaultsPropagateAcrossSchemes) {
  // With op brackets, the working set is dropped at EndOp, so the next
  // lookup's first page touch is the LIDF dereference itself. FailAfter(0)
  // therefore fails exactly that read — and a read-only fault must leave
  // the structure undamaged once healed.
  for (int scheme_kind = 0; scheme_kind < 3; ++scheme_kind) {
    FaultRig rig;
    std::unique_ptr<LabelingScheme> scheme;
    switch (scheme_kind) {
      case 0:
        scheme = std::make_unique<WBox>(&rig.cache);
        break;
      case 1:
        scheme = std::make_unique<BBox>(&rig.cache);
        break;
      default:
        scheme = std::make_unique<NaiveScheme>(
            &rig.cache, NaiveOptions{.gap_bits = 4, .count_bits = 20});
        break;
    }
    const xml::Document doc = xml::MakeTwoLevelDocument(500);
    std::vector<NewElement> lids;
    ASSERT_OK(scheme->BulkLoad(doc, &lids));
    ASSERT_OK(rig.cache.FlushAll());
    {
      // Drop the resident working set so the faulted lookup starts cold.
      rig.cache.BeginOp();
      ASSERT_OK(rig.cache.EndOp());
    }

    rig.faulty.FailAfter(0);
    rig.cache.BeginOp();
    const Status lookup = scheme->Lookup(lids[250].start).status();
    (void)rig.cache.EndOp();
    EXPECT_EQ(lookup.code(), StatusCode::kIoError)
        << "scheme " << scheme->name();

    rig.faulty.Heal();
    rig.cache.BeginOp();
    EXPECT_TRUE(scheme->Lookup(lids[250].start).ok())
        << "scheme " << scheme->name();
    ASSERT_OK(rig.cache.EndOp());
    SCOPED_TRACE(scheme->name());
    ASSERT_OK(scheme->CheckInvariants());
  }
}

TEST(FaultTest, TransientProbabilisticReadFaultsLeaveStructureIntact) {
  // Seeded Bernoulli faults during a read-only query storm: individual
  // lookups fail with IoError and later ones succeed again (transient
  // faults do not latch), and after the storm the structure is pristine.
  FaultRig rig;
  BBox bbox(&rig.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(2000);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  ASSERT_OK(rig.cache.FlushAll());

  rig.faulty.SetSeed(0x5eed);
  rig.faulty.SetFailProbability(0.15, /*transient=*/true);
  int failures = 0;
  int successes = 0;
  for (size_t i = 0; i < lids.size(); i += 7) {
    rig.cache.BeginOp();
    const Status lookup = bbox.Lookup(lids[i].start).status();
    (void)rig.cache.EndOp();
    if (lookup.ok()) {
      ++successes;
    } else {
      EXPECT_EQ(lookup.code(), StatusCode::kIoError);
      ++failures;
    }
  }
  EXPECT_GT(failures, 10);   // the injector actually fired...
  EXPECT_GT(successes, 10);  // ...and kept recovering in between

  rig.faulty.SetFailProbability(0.0);
  ASSERT_OK(bbox.CheckInvariants());
  EXPECT_GT(rig.faulty.faults_injected(), 0u);
}

TEST(FaultTest, IoScopeUnwindRecordsFlushErrorWithoutAborting) {
  // Regression: ~IoScope ran BOXES_CHECK_OK on the implicit EndOp, so a
  // flush failure during scope exit (e.g. while unwinding an
  // already-failing operation) aborted the whole process.
  FaultRig rig;
  PageId page = kInvalidPageId;
  {
    uint8_t* data = nullptr;
    ASSERT_OK_AND_ASSIGN(page, rig.cache.AllocatePage(&data));
  }
  ASSERT_OK(rig.cache.FlushAll());
  EXPECT_OK(rig.cache.last_unwind_error());

  {
    IoScope scope(&rig.cache);
    ASSERT_OK_AND_ASSIGN(uint8_t* data, rig.cache.GetPageForWrite(page));
    data[0] = 0x5a;
    rig.faulty.FailAfter(0);  // the implicit flush at scope exit fails
  }
  // Execution continues; the swallowed error is sticky and queryable.
  EXPECT_FALSE(rig.cache.op_active());
  EXPECT_EQ(rig.cache.last_unwind_error().code(), StatusCode::kIoError);

  // A later unwind error does not overwrite the first one...
  const Status first = rig.cache.last_unwind_error();
  {
    IoScope scope(&rig.cache);
    ASSERT_OK_AND_ASSIGN(uint8_t* data, rig.cache.GetPageForWrite(page));
    data[1] = 0x5b;
  }
  EXPECT_EQ(rig.cache.last_unwind_error().ToString(), first.ToString());

  // ...and the cache recovers once the fault heals.
  rig.faulty.Heal();
  rig.cache.ClearUnwindError();
  EXPECT_OK(rig.cache.last_unwind_error());
  {
    IoScope scope(&rig.cache);
    ASSERT_OK_AND_ASSIGN(uint8_t* data, rig.cache.GetPageForWrite(page));
    data[0] = 0x5c;
  }
  EXPECT_OK(rig.cache.last_unwind_error());
}

TEST(FaultTest, IoScopeEndPropagatesFlushErrors) {
  // End() remains the error-propagating path for callers that check.
  FaultRig rig;
  PageId page = kInvalidPageId;
  {
    uint8_t* data = nullptr;
    ASSERT_OK_AND_ASSIGN(page, rig.cache.AllocatePage(&data));
  }
  ASSERT_OK(rig.cache.FlushAll());

  IoScope scope(&rig.cache);
  ASSERT_OK_AND_ASSIGN(uint8_t* data, rig.cache.GetPageForWrite(page));
  data[0] = 1;
  rig.faulty.FailAfter(0);
  EXPECT_EQ(scope.End().code(), StatusCode::kIoError);
  rig.faulty.Heal();
  // The destructor must not re-run EndOp after an explicit End().
}

// ---------------------------------------------------------------------------
// Crash-point / probabilistic-fault precedence (the composition contract
// documented on SetFailProbability).

TEST(FaultTest, CrashCountdownCountsOnlyCommittedWrites) {
  // With a 50% write-eating storm armed, the crash must still land after
  // exactly N *committed* writes — a write the storm ate never reached the
  // device, so it must not advance the countdown.
  MemoryPageStore base(256);
  FaultInjectionPageStore faulty(&base);
  std::vector<PageId> ids;
  std::vector<uint8_t> buf(256, 0x11);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(const PageId id, faulty.Allocate());
    ASSERT_OK(faulty.Write(id, buf.data()));
    ids.push_back(id);
  }

  faulty.SetSeed(0xc4a5);
  faulty.SetFailProbability(0.5, /*transient=*/true);
  faulty.CrashAfterWrites(5);
  uint64_t attempts = 0;
  while (!faulty.crashed()) {
    ASSERT_LT(attempts, 1000u) << "crash point never triggered";
    (void)faulty.Write(ids[attempts % ids.size()], buf.data());
    ++attempts;
  }
  EXPECT_EQ(faulty.writes_committed(), 4u + 5u);
  // The storm actually ate writes along the way: strictly more attempts
  // than the 5 that committed plus the crash-frontier one.
  EXPECT_GT(attempts, 6u);
}

TEST(FaultTest, ProbabilisticFaultsNeverMutateTheFrozenImage) {
  // After the crash point triggers, the post-crash disk image is what
  // recovery will examine; a still-armed probabilistic storm (even with
  // torn writes enabled) must fail operations without touching it.
  MemoryPageStore base(256);
  FaultInjectionPageStore faulty(&base);
  ASSERT_OK_AND_ASSIGN(const PageId id, faulty.Allocate());
  std::vector<uint8_t> before(256, 0x77);
  ASSERT_OK(faulty.Write(id, before.data()));

  faulty.SetSeed(0xf2ee);
  faulty.SetFailProbability(0.5, /*transient=*/true);
  faulty.SetTornWrites(true);
  faulty.CrashAfterWrites(0);  // the very next committed write crashes
  std::vector<uint8_t> after(256, 0x88);
  while (!faulty.crashed()) {
    (void)faulty.Write(id, after.data());
  }

  // Freeze the image, then hammer it: every operation fails, nothing
  // changes. (Reads go around the injector to inspect the base.)
  std::vector<uint8_t> frozen(256);
  ASSERT_OK(base.Read(id, frozen.data()));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(faulty.Write(id, after.data()).code(), StatusCode::kIoError);
    EXPECT_FALSE(faulty.Allocate().ok());
  }
  std::vector<uint8_t> now(256);
  ASSERT_OK(base.Read(id, now.data()));
  EXPECT_EQ(now, frozen);
  EXPECT_EQ(faulty.writes_committed(), 1u);  // only the pre-crash setup write

  // Heal() disarms everything, including the triggered crash point.
  faulty.Heal();
  ASSERT_OK(faulty.Write(id, after.data()));
  ASSERT_OK(faulty.Read(id, now.data()));
  EXPECT_EQ(now, after);
}

TEST(FaultTest, CrashPointWinsOverPermanentLatch) {
  // A permanent (latching) fault that fires before the crash point freezes
  // the device just like a crash would — but without consuming the crash
  // point; a torn write at the frontier must not occur once latched.
  MemoryPageStore base(256);
  FaultInjectionPageStore faulty(&base);
  ASSERT_OK_AND_ASSIGN(const PageId id, faulty.Allocate());
  std::vector<uint8_t> buf(256, 0x3c);
  ASSERT_OK(faulty.Write(id, buf.data()));

  faulty.SetSeed(0xdead);
  faulty.SetFailProbability(1.0, /*transient=*/false);  // latches at once
  faulty.CrashAfterWrites(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(faulty.Write(id, buf.data()).code(), StatusCode::kIoError);
  }
  // The latched fault ate every write, so the countdown never advanced and
  // the crash point never triggered.
  EXPECT_FALSE(faulty.crashed());
  EXPECT_EQ(faulty.writes_committed(), 1u);
}

TEST(FaultTest, PoisonedPageFailsReadsWithCorruptionUntilHealed) {
  MemoryPageStore base(256);
  FaultInjectionPageStore faulty(&base);
  ASSERT_OK_AND_ASSIGN(const PageId a, faulty.Allocate());
  ASSERT_OK_AND_ASSIGN(const PageId b, faulty.Allocate());
  std::vector<uint8_t> buf(256, 0x61);
  ASSERT_OK(faulty.Write(a, buf.data()));
  ASSERT_OK(faulty.Write(b, buf.data()));

  faulty.PoisonPage(a);
  std::vector<uint8_t> out(256);
  EXPECT_EQ(faulty.Read(a, out.data()).code(), StatusCode::kCorruption);
  EXPECT_OK(faulty.Read(b, out.data()));       // page-scoped, not device-wide
  EXPECT_OK(faulty.Write(a, buf.data()));      // writes are unaffected...
  EXPECT_EQ(faulty.Read(a, out.data()).code(),
            StatusCode::kCorruption);           // ...and do not heal
  faulty.HealPage(a);
  EXPECT_OK(faulty.Read(a, out.data()));
}

}  // namespace
}  // namespace boxes
