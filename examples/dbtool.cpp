// dbtool — a small database utility over a file-backed, checkpointed BOX
// store, exercising the full stack: FilePageStore + superblock +
// checkpoint/restore + the LabeledDocument facade + twig queries.
//
//   ./dbtool create   --db=doc.boxdb --xml=input.xml    (or --elements=N
//                                                        for a generated
//                                                        XMark document)
//   ./dbtool inspect  --db=doc.boxdb
//   ./dbtool verify   --db=doc.boxdb
//   ./dbtool scrub    --db=doc.boxdb [--step_pages=N]
//   ./dbtool query    --db=doc.boxdb --twig="item[//mailbox]//text"
//   ./dbtool export   --db=doc.boxdb --out=roundtrip.xml
//   ./dbtool mutate   --db=doc.boxdb --ops=N [--flush_every=K]
//                     [--checkpoint_interval=C] [--crash_after_flushes=F]
//                     [--seal] [--seed=S]
//   ./dbtool backup   --db=doc.boxdb --out=copy.boxdb
//   ./dbtool restore  --db=doc.boxdb [--to_epoch=E]
//   ./dbtool wal-dump --db=doc.boxdb [--since_batch=B] [--to_batch=B]
//   ./dbtool promote  --db=copy.boxdb
//   ./dbtool compile  --db=doc.boxdb --snapshot=doc.silo
//   ./dbtool snapshot-verify --snapshot=doc.silo [--against=doc.boxdb]
//
// The checkpoint layout is [W-BOX metadata chain head][facade registry],
// stored behind the page-0 superblock. `mutate` writes through the durable
// op log (storage/wal.h): every flush is acknowledged only after its
// records are synced, so a crash — simulated by --crash_after_flushes,
// which kills the process without any shutdown — loses nothing that was
// acknowledged. Every open replays the log; `restore --to_epoch` bounds
// the replay for point-in-time recovery and seals the result as a new
// checkpoint; `backup` snapshots the database file (plus its rollback
// journal) without quiescing writers, because any byte-level moment of
// the pair is a recoverable crash image.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/common/update_buffer.h"
#include "core/wbox/wbox.h"
#include "doc/labeled_document.h"
#include "query/structural_join.h"
#include "query/twig.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "storage/scrubber.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/flags.h"
#include "util/random.h"
#include "xml/writer.h"
#include "xml/xmark.h"

namespace {

using namespace boxes;  // NOLINT: example brevity

void DieOnError(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

struct Db {
  std::unique_ptr<FilePageStore> store;
  std::unique_ptr<PageCache> cache;
  std::unique_ptr<WBox> wbox;
  std::unique_ptr<LabeledDocument> doc;
  /// What RecoverWithWal found at open time (OpenDb only).
  WalRecoveryResult recovered;
};

/// Elements created by `mutate` (and re-created by replay) all carry this
/// tag: the op log records structure, not tag text, so replay adoption
/// could not recover a per-element tag anyway.
constexpr char kMutatedTag[] = "m";

/// Builds the [scheme head][registry] checkpoint chain — the layout
/// OpenDb restores. Used both by SaveDb and as the WalPipeline's
/// checkpoint builder. (Like SaveDb, the superseded *scheme* chain is
/// left behind — scrub-visible garbage pages, not corruption.)
StatusOr<PageId> BuildDbCheckpoint(Db* db) {
  BOXES_ASSIGN_OR_RETURN(const PageId scheme_head, db->wbox->Checkpoint());
  MetadataWriter writer;
  writer.PutU64(scheme_head);
  db->doc->SaveState(&writer);
  return writer.Finish(db->cache.get());
}

/// Restores scheme + registry from a checkpoint chain head.
Status RestoreDbCheckpoint(Db* db, PageId head) {
  BOXES_ASSIGN_OR_RETURN(MetadataReader reader,
                         MetadataReader::Load(db->cache.get(), head));
  BOXES_ASSIGN_OR_RETURN(const uint64_t scheme_head, reader.GetU64());
  BOXES_RETURN_IF_ERROR(db->wbox->Restore(scheme_head));
  return db->doc->LoadState(&reader);
}

Status SaveDb(Db* db) {
  // Persist scheme + registry, durably commit the new checkpoint, and only
  // then reclaim the superseded chain — a crash mid-save keeps the old
  // checkpoint loadable.
  StatusOr<PageId> old_head = LoadCheckpointHead(db->cache.get());
  BOXES_ASSIGN_OR_RETURN(const PageId head, BuildDbCheckpoint(db));
  BOXES_RETURN_IF_ERROR(CommitCheckpoint(db->cache.get(), head));
  if (old_head.ok()) {
    BOXES_RETURN_IF_ERROR(FreeMetadataChain(db->cache.get(), *old_head));
  }
  return db->cache->FlushAll();
}

/// Every open is a recovery: journal rollback (inside Mode::kOpen), last
/// committed checkpoint, then op-log replay of the acknowledged batches.
/// `to_batch` bounds the replay for point-in-time restores.
Db OpenDb(const std::string& path, uint64_t to_batch = UINT64_MAX) {
  Db db;
  db.store = std::make_unique<FilePageStore>(path, kDefaultPageSize,
                                             FilePageStore::Mode::kOpen);
  DieOnError(db.store->status(), "open");
  db.cache = std::make_unique<PageCache>(db.store.get());
  db.wbox = std::make_unique<WBox>(db.cache.get());
  db.doc = std::make_unique<LabeledDocument>(db.wbox.get());
  WalReplayOptions bounds;
  bounds.to_batch = to_batch;
  Db* dbp = &db;
  StatusOr<WalRecoveryResult> recovered = RecoverWithWal(
      db.cache.get(), db.wbox.get(),
      [dbp](PageId head) { return RestoreDbCheckpoint(dbp, head); }, bounds,
      nullptr, [dbp](const BatchOp& op) {
        // Adopt what replay re-created, so the registry keeps covering
        // every scheme label. dbtool mutate logs element inserts only.
        if (op.kind == BatchOp::Kind::kInsertElementBefore ||
            op.kind == BatchOp::Kind::kInsertFirstElement) {
          dbp->doc->AdoptElement(kMutatedTag, op.result);
        }
      });
  DieOnError(recovered.status(), "recover");
  db.recovered = std::move(recovered).value();
  if (db.recovered.replay.batches_replayed > 0 ||
      db.recovered.replay.torn_tail) {
    std::printf(
        "recovery      : replayed %llu batch(es) / %llu op(s)%s\n",
        static_cast<unsigned long long>(db.recovered.replay.batches_replayed),
        static_cast<unsigned long long>(db.recovered.replay.ops_replayed),
        db.recovered.replay.torn_tail ? ", torn tail discarded" : "");
  }
  return db;
}

int CmdCreate(const std::string& path, const std::string& xml_path,
              int64_t elements) {
  Db db;
  db.store = std::make_unique<FilePageStore>(path, kDefaultPageSize,
                                             FilePageStore::Mode::kTruncate);
  DieOnError(db.store->status(), "create");
  db.cache = std::make_unique<PageCache>(db.store.get());
  DieOnError(InitializeSuperblock(db.cache.get()), "superblock");
  db.wbox = std::make_unique<WBox>(db.cache.get());
  db.doc = std::make_unique<LabeledDocument>(db.wbox.get());
  if (!xml_path.empty()) {
    std::ifstream in(xml_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", xml_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    DieOnError(db.doc->LoadXml(buffer.str()).status(), "load xml");
  } else {
    DieOnError(db.doc
                   ->LoadTree(xml::MakeXmarkDocument(
                       static_cast<uint64_t>(elements), 7))
                   .status(),
               "generate");
  }
  DieOnError(SaveDb(&db), "checkpoint");
  std::printf("created %s: %llu elements, %llu pages (%.1f MB)\n",
              path.c_str(),
              static_cast<unsigned long long>(db.doc->element_count()),
              static_cast<unsigned long long>(db.store->total_pages()),
              static_cast<double>(db.store->total_pages()) *
                  kDefaultPageSize / (1024.0 * 1024.0));
  return 0;
}

int CmdInspect(const std::string& path) {
  Db db = OpenDb(path);
  StatusOr<SchemeStats> stats = db.wbox->GetStats();
  DieOnError(stats.status(), "stats");
  std::printf("scheme        : %s\n", db.wbox->name().c_str());
  std::printf("elements      : %llu\n",
              static_cast<unsigned long long>(db.doc->element_count()));
  std::printf("live labels   : %llu\n",
              static_cast<unsigned long long>(stats->live_labels));
  std::printf("tombstones    : %llu\n",
              static_cast<unsigned long long>(db.wbox->tombstones()));
  std::printf("tree height   : %llu\n",
              static_cast<unsigned long long>(stats->height));
  std::printf("index pages   : %llu\n",
              static_cast<unsigned long long>(stats->index_pages));
  std::printf("LIDF pages    : %llu\n",
              static_cast<unsigned long long>(stats->lidf_pages));
  std::printf("max label bits: %u\n", stats->max_label_bits);
  std::printf("device pages  : %llu\n",
              static_cast<unsigned long long>(db.store->total_pages()));
  return 0;
}

int CmdVerify(const std::string& path) {
  Db db = OpenDb(path);
  DieOnError(db.doc->CheckConsistency(), "consistency");
  std::printf("OK: scheme invariants, label nesting, and the registry all "
              "check out (%llu elements)\n",
              static_cast<unsigned long long>(db.doc->element_count()));
  return 0;
}

int CmdScrub(const std::string& path, int64_t step_pages) {
  // Phase 1 — media scrub: walk every live page through the store's own
  // CRC32C verification, without requiring the checkpoint to be loadable
  // (a damaged database should still be scrubbable).
  FilePageStore store(path, kDefaultPageSize, FilePageStore::Mode::kOpen);
  DieOnError(store.status(), "open");
  ScrubberOptions options;
  options.pages_per_step =
      step_pages > 0 ? static_cast<uint64_t>(step_pages) : 16;
  Scrubber scrubber(&store, options);
  DieOnError(scrubber.ScrubPass(), "scrub");
  const Scrubber::Counters& counters = scrubber.counters();
  std::printf("media scrub   : %llu pages verified, %llu corrupt, %llu "
              "read errors\n",
              static_cast<unsigned long long>(counters.pages_scanned),
              static_cast<unsigned long long>(counters.corrupt_pages),
              static_cast<unsigned long long>(counters.read_errors));
  for (const PageId id : scrubber.quarantined()) {
    std::printf("  quarantined page %llu\n",
                static_cast<unsigned long long>(id));
  }

  // Phase 2 — structural scrub: restore the checkpoint and run the scheme
  // and registry invariant checks (wbox_check + label nesting) on top of
  // the verified media.
  PageCache cache(&store);
  WBox wbox(&cache);
  LabeledDocument doc(&wbox);
  Status structural = Status::OK();
  do {
    StatusOr<PageId> head = LoadCheckpointHead(&cache);
    if (!head.ok()) {
      structural = head.status();
      break;
    }
    StatusOr<MetadataReader> reader = MetadataReader::Load(&cache, *head);
    if (!reader.ok()) {
      structural = reader.status();
      break;
    }
    StatusOr<uint64_t> scheme_head = reader->GetU64();
    if (!scheme_head.ok()) {
      structural = scheme_head.status();
      break;
    }
    structural = wbox.Restore(*scheme_head);
    if (structural.ok()) {
      structural = doc.LoadState(&*reader);
    }
    if (structural.ok()) {
      structural = doc.CheckConsistency();
    }
  } while (false);
  if (structural.ok()) {
    std::printf("structural    : OK (%llu elements)\n",
                static_cast<unsigned long long>(doc.element_count()));
  } else {
    std::printf("structural    : %s\n", structural.ToString().c_str());
  }

  const bool healthy = scrubber.quarantined().empty() && structural.ok();
  std::printf("%s\n", healthy ? "SCRUB OK" : "SCRUB FOUND PROBLEMS");
  return healthy ? 0 : 2;
}

int CmdQuery(const std::string& path, const std::string& twig_text) {
  Db db = OpenDb(path);
  StatusOr<query::TwigPattern> pattern = query::ParseTwigPattern(twig_text);
  DieOnError(pattern.status(), "parse twig");
  std::vector<LabeledDocument::ElementHandle> handles;
  StatusOr<xml::Document> tree = db.doc->ToTree(&handles);
  DieOnError(tree.status(), "reconstruct tree");
  std::vector<NewElement> lids(tree->element_count());
  for (xml::ElementId id = 0; id < tree->element_count(); ++id) {
    lids[id] = db.doc->lids(handles[id]);
  }
  StatusOr<std::vector<query::Interval>> roots =
      query::MatchTwig(*pattern, db.wbox.get(), *tree, lids);
  DieOnError(roots.status(), "match");
  std::printf("twig %s: %zu match roots\n", twig_text.c_str(),
              roots->size());
  for (size_t i = 0; i < roots->size() && i < 10; ++i) {
    const query::Interval& interval = (*roots)[i];
    std::printf("  <%s> at labels [%s, %s]\n",
                tree->element((*roots)[i].handle).tag.c_str(),
                interval.start.ToString().c_str(),
                interval.end.ToString().c_str());
  }
  if (roots->size() > 10) {
    std::printf("  ... and %zu more\n", roots->size() - 10);
  }
  return 0;
}

int CmdExport(const std::string& path, const std::string& out_path) {
  Db db = OpenDb(path);
  StatusOr<std::string> xml = db.doc->ToXml(true);
  DieOnError(xml.status(), "serialize");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << *xml;
  std::printf("exported %llu elements to %s (%zu bytes)\n",
              static_cast<unsigned long long>(db.doc->element_count()),
              out_path.c_str(), xml->size());
  return 0;
}

int CmdMutate(const std::string& path, int64_t ops, int64_t seed,
              int64_t flush_every, int64_t checkpoint_interval,
              int64_t crash_after_flushes, bool seal) {
  Db db = OpenDb(path);
  WalPipelineOptions wal_options;
  wal_options.checkpoint_interval =
      checkpoint_interval > 0 ? static_cast<uint64_t>(checkpoint_interval)
                              : 0;
  WalPipeline pipeline(db.cache.get(), db.wbox.get(), wal_options);
  Db* dbp = &db;

  UpdateBufferOptions buffer_options;
  buffer_options.auto_flush = false;
  UpdateBuffer buffer(db.wbox.get(), buffer_options);

  StatusOr<std::vector<LabeledDocument::ElementHandle>> handles =
      db.doc->HandlesInDocumentOrder();
  DieOnError(handles.status(), "handles");
  std::vector<LabeledDocument::ElementHandle> live = std::move(*handles);

  Random rng(static_cast<uint64_t>(seed));
  const size_t batch_size =
      flush_every > 0 ? static_cast<size_t>(flush_every) : 16;
  uint64_t flushes = 0;
  uint64_t acked = 0;
  std::vector<UpdateBuffer::Ticket> tickets;

  // Registers the just-flushed batch's elements with the handle registry.
  // Idempotent per batch (tickets are consumed).
  auto adopt_flushed = [&]() {
    for (const UpdateBuffer::Ticket ticket : tickets) {
      StatusOr<NewElement> result = buffer.Result(ticket);
      DieOnError(result.status(), "result");
      live.push_back(db.doc->AdoptElement(kMutatedTag, *result));
    }
    tickets.clear();
  };
  pipeline.SetCheckpointBuilder([&, dbp] {
    // An interval checkpoint fires inside Flush(), after the batch's
    // results are published but before the flush loop below has adopted
    // them. Adopt first: the serialized registry must cover every element
    // the serialized scheme holds, including the current batch.
    adopt_flushed();
    return BuildDbCheckpoint(dbp);
  });
  DieOnError(pipeline.InitFromRecovery(db.recovered), "wal init");
  pipeline.Attach(&buffer);

  auto flush_now = [&]() {
    const uint64_t batch_ops = tickets.size();
    DieOnError(buffer.Flush(), "flush");
    // Flush returned OK: the batch is in the synced log AND applied —
    // this is the acknowledgement point the no-loss contract protects.
    ++flushes;
    acked += batch_ops;
    std::printf("flush %llu: acked_ops=%llu\n",
                static_cast<unsigned long long>(flushes),
                static_cast<unsigned long long>(acked));
    if (crash_after_flushes > 0 &&
        flushes >= static_cast<uint64_t>(crash_after_flushes)) {
      std::fprintf(stderr,
                   "simulated crash after flush %llu (no shutdown, no "
                   "checkpoint)\n",
                   static_cast<unsigned long long>(flushes));
      std::fflush(stdout);
      // Die like a power cut: no destructors, no cache flush, no
      // checkpoint. Everything acknowledged above must survive.
      std::_Exit(3);
    }
    adopt_flushed();
  };

  for (int64_t i = 0; i < ops; ++i) {
    if (live.empty()) {
      // Bootstrap flushes alone: later ops need a live anchor LID, which
      // only exists once the first element's batch has applied.
      StatusOr<UpdateBuffer::Ticket> first = buffer.InsertFirstElement();
      DieOnError(first.status(), "enqueue");
      tickets.push_back(*first);
      flush_now();
      continue;
    }
    // Insert a new last child under a random live element (inserting
    // before an end label makes the new element that element's last
    // child). Anchors are always already-flushed elements.
    const LabeledDocument::ElementHandle parent =
        live[rng.Uniform(live.size())];
    StatusOr<UpdateBuffer::Ticket> ticket =
        buffer.InsertElementBefore(db.doc->lids(parent).end);
    DieOnError(ticket.status(), "enqueue");
    tickets.push_back(*ticket);
    if (tickets.size() >= batch_size || i + 1 == ops) {
      flush_now();
    }
  }
  if (seal) {
    DieOnError(pipeline.CheckpointNow(), "seal checkpoint");
  }
  std::printf(
      "mutated %s: %llu op(s) in %llu flush(es), %llu elements now; %s\n",
      path.c_str(), static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(flushes),
      static_cast<unsigned long long>(db.doc->element_count()),
      seal ? "sealed by a checkpoint"
           : "tail lives in the op log (next open replays it)");
  return 0;
}

bool CopyWholeFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary | std::ios::ate);
  if (!in) {
    return false;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  if (size > 0) {
    // Guarded: inserting an empty streambuf sets failbit even though an
    // empty source (e.g. a just-truncated journal) is a valid copy.
    out << in.rdbuf();
  }
  return out.good();
}

int CmdBackup(const std::string& path, const std::string& out_path) {
  // A backup is a crash image: database file + rollback journal, copied
  // byte-for-byte at an arbitrary moment, no quiescing. Opening the copy
  // runs the exact crash-recovery path — journal rollback to the
  // committed checkpoint, then op-log replay of every acknowledged
  // batch — which the crash sweep proves lossless at every write
  // boundary; a mid-copy torn batch is dropped cleanly like any torn
  // tail.
  if (!CopyWholeFile(path, out_path)) {
    std::fprintf(stderr, "cannot copy %s to %s\n", path.c_str(),
                 out_path.c_str());
    return 1;
  }
  const std::string journal = path + ".journal";
  const std::string out_journal = out_path + ".journal";
  // A stale journal from an older copy would roll the fresh copy back to
  // the wrong state; drop it before deciding whether the source has one.
  std::remove(out_journal.c_str());
  std::ifstream journal_in(journal, std::ios::binary);
  if (journal_in) {
    journal_in.close();
    if (!CopyWholeFile(journal, out_journal)) {
      std::fprintf(stderr, "cannot copy %s to %s\n", journal.c_str(),
                   out_journal.c_str());
      return 1;
    }
  }
  // Verify the copy end-to-end by recovering it (read-only: nothing is
  // checkpointed, so the copy stays restorable as taken).
  Db db = OpenDb(out_path);
  DieOnError(db.doc->CheckConsistency(), "verify backup");
  std::printf(
      "backup %s -> %s: verified, %llu elements after recovery "
      "(%llu batch(es) replayed)\n",
      path.c_str(), out_path.c_str(),
      static_cast<unsigned long long>(db.doc->element_count()),
      static_cast<unsigned long long>(db.recovered.replay.batches_replayed));
  return 0;
}

int CmdRestore(const std::string& path, int64_t to_epoch) {
  const uint64_t to_batch =
      to_epoch >= 0 ? static_cast<uint64_t>(to_epoch) : UINT64_MAX;
  Db db = OpenDb(path, to_batch);
  // Seal the restored state as the new checkpoint and truncate the log.
  // Mandatory after a bounded restore: the batches beyond the bound are
  // still on disk, and without a new checkpoint covering (and burning)
  // their ids, the next open would replay them right back in.
  WalPipeline pipeline(db.cache.get(), db.wbox.get(), WalPipelineOptions{});
  Db* dbp = &db;
  pipeline.SetCheckpointBuilder([dbp] { return BuildDbCheckpoint(dbp); });
  DieOnError(pipeline.InitFromRecovery(db.recovered), "wal init");
  DieOnError(pipeline.CheckpointNow(), "seal checkpoint");
  DieOnError(db.doc->CheckConsistency(), "verify");
  const WalReplayStats& replay = db.recovered.replay;
  std::printf(
      "restored %s%s: %llu elements, replayed %llu batch(es), "
      "%llu beyond the bound discarded%s\n",
      path.c_str(),
      to_epoch >= 0 ? (" to epoch " + std::to_string(to_epoch)).c_str() : "",
      static_cast<unsigned long long>(db.doc->element_count()),
      static_cast<unsigned long long>(replay.batches_replayed),
      static_cast<unsigned long long>(replay.batches_beyond_bound),
      replay.torn_tail ? " (torn tail dropped)" : "");
  return 0;
}

const char* OpKindName(BatchOp::Kind kind) {
  switch (kind) {
    case BatchOp::Kind::kInsertFirstElement:
      return "insert-first";
    case BatchOp::Kind::kInsertElementBefore:
      return "insert-element";
    case BatchOp::Kind::kDelete:
      return "delete";
    case BatchOp::Kind::kInsertSubtreeBefore:
      return "insert-subtree";
    case BatchOp::Kind::kDeleteSubtree:
      return "delete-subtree";
  }
  return "?";
}

int CmdWalDump(const std::string& path, int64_t since_batch,
               int64_t to_batch) {
  FilePageStore store(path, kDefaultPageSize, FilePageStore::Mode::kOpen);
  DieOnError(store.status(), "open");
  PageCache cache(&store);
  StatusOr<SuperblockInfo> info = LoadSuperblock(&cache);
  DieOnError(info.status(), "superblock");
  std::printf("superblock    : sequence=%llu wal_mark=%llu fencing_token=%llu "
              "checkpoint=%s\n",
              static_cast<unsigned long long>(info->sequence),
              static_cast<unsigned long long>(info->wal_mark),
              static_cast<unsigned long long>(info->fencing_token),
              info->head == kInvalidPageId ? "none" : "present");
  StatusOr<WalScan> scan = ScanWal(&store);
  DieOnError(scan.status(), "scan");
  std::printf("op log        : %llu page(s) in %llu scanned "
              "(%llu unreadable)\n",
              static_cast<unsigned long long>(scan->wal_pages),
              static_cast<unsigned long long>(scan->scanned_pages),
              static_cast<unsigned long long>(scan->unreadable_pages));
  const uint64_t since =
      since_batch >= 0 ? static_cast<uint64_t>(since_batch) : 0;
  const uint64_t to =
      to_batch >= 0 ? static_cast<uint64_t>(to_batch) : UINT64_MAX;
  size_t shown = 0;
  for (const WalBatch& batch : scan->batches) {
    if (batch.batch_id < since || batch.batch_id > to) {
      continue;
    }
    ++shown;
    const char* verdict = batch.generation < info->sequence ? "stale"
                          : batch.complete                  ? "replayable"
                                                            : "torn";
    std::printf("  batch %llu attempt %u gen %llu: %zu op(s) in %zu "
                "page(s) [%s]\n",
                static_cast<unsigned long long>(batch.batch_id),
                batch.attempt,
                static_cast<unsigned long long>(batch.generation),
                batch.records.size(), batch.pages.size(), verdict);
    for (size_t i = 0; i < batch.records.size(); ++i) {
      const WalRecord& record = batch.records[i];
      if (record.kind == BatchOp::Kind::kDeleteSubtree) {
        std::printf("    op %zu: %s start=%llu end=%llu tag=%llu\n", i,
                    OpKindName(record.kind),
                    static_cast<unsigned long long>(record.anchor),
                    static_cast<unsigned long long>(record.anchor_end),
                    static_cast<unsigned long long>(record.user_tag));
      } else if (record.kind == BatchOp::Kind::kInsertSubtreeBefore) {
        std::printf("    op %zu: %s anchor=%llu tag=%llu (subtree %zu "
                    "bytes)\n",
                    i, OpKindName(record.kind),
                    static_cast<unsigned long long>(record.anchor),
                    static_cast<unsigned long long>(record.user_tag),
                    record.subtree_xml.size());
      } else {
        std::printf("    op %zu: %s anchor=%llu tag=%llu\n", i,
                    OpKindName(record.kind),
                    static_cast<unsigned long long>(record.anchor),
                    static_cast<unsigned long long>(record.user_tag));
      }
    }
  }
  if (shown == 0) {
    std::printf("  (no batches%s)\n",
                scan->batches.empty() ? "" : " in the requested id window");
  }
  return 0;
}

/// Fenced promotion of a standby built from a backup byte copy: recovers
/// the image (checkpoint + local log tail), bumps the fencing token, and
/// seals both in a fresh checkpoint. After this, the copy takes writes as
/// a primary and every late ship from the deposed one bounces off the
/// token (replication/standby_applier.h).
int CmdPromote(const std::string& path) {
  Db db = OpenDb(path, UINT64_MAX);
  WalPipeline pipeline(db.cache.get(), db.wbox.get(), WalPipelineOptions{});
  Db* dbp = &db;
  pipeline.SetCheckpointBuilder([dbp] { return BuildDbCheckpoint(dbp); });
  DieOnError(pipeline.InitFromRecovery(db.recovered), "wal init");
  const uint64_t old_token = pipeline.fencing_token();
  pipeline.SetFencingToken(old_token + 1);
  DieOnError(pipeline.CheckpointNow(), "seal promotion");
  DieOnError(db.doc->CheckConsistency(), "verify");
  std::printf("promoted %s: fencing token %llu -> %llu, %llu elements, "
              "next batch %llu\n",
              path.c_str(), static_cast<unsigned long long>(old_token),
              static_cast<unsigned long long>(old_token + 1),
              static_cast<unsigned long long>(db.doc->element_count()),
              static_cast<unsigned long long>(
                  pipeline.writer().next_batch_id()));
  return 0;
}

int CmdCompile(const std::string& db_path, const std::string& snapshot_path) {
  Db db = OpenDb(db_path);
  SnapshotWriter writer;
  StatusOr<SnapshotCompileStats> stats =
      writer.CompileToFile(db.wbox.get(), snapshot_path);
  DieOnError(stats.status(), "compile");
  std::printf("compiled %s -> %s\n", db_path.c_str(), snapshot_path.c_str());
  std::printf("entries      : %llu\n",
              static_cast<unsigned long long>(stats->entries));
  std::printf("image bytes  : %llu\n",
              static_cast<unsigned long long>(stats->image_bytes));
  std::printf("guid         : %s\n",
              SnapshotGuidToString(stats->guid).c_str());
  std::printf("source epoch : %llu\n",
              static_cast<unsigned long long>(db.wbox->epoch_guard().epoch()));
  return 0;
}

int CmdSnapshotVerify(const std::string& snapshot_path,
                      const std::string& db_path) {
  StatusOr<std::unique_ptr<SnapshotReader>> reader =
      SnapshotReader::Open(snapshot_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "snapshot %s failed validation: %s\n",
                 snapshot_path.c_str(), reader.status().ToString().c_str());
    return 2;
  }
  std::printf("snapshot     : %s\n", snapshot_path.c_str());
  std::printf("entries      : %llu\n",
              static_cast<unsigned long long>((*reader)->entry_count()));
  std::printf("image bytes  : %llu\n",
              static_cast<unsigned long long>((*reader)->image_bytes()));
  std::printf("source epoch : %llu\n",
              static_cast<unsigned long long>((*reader)->source_epoch()));
  std::printf("guid         : %s\n",
              SnapshotGuidToString((*reader)->guid()).c_str());
  std::printf("ordinals     : %s\n", (*reader)->has_ordinals() ? "yes" : "no");
  if (db_path.empty()) {
    std::printf("OK: header, sections, and body checksum all check out\n");
    return 0;
  }
  // Cross-check: every image entry must carry the database's current label
  // for that LID, and the image must cover exactly the live LID set.
  Db db = OpenDb(db_path);
  uint64_t live = 0;
  uint64_t mismatches = 0;
  DieOnError(db.wbox->lidf()->ForEachLive([&](Lid lid, const uint8_t*) {
    ++live;
    const size_t index = (*reader)->FindIndex(lid);
    if (index == SnapshotReader::kNotFound) {
      ++mismatches;
      return Status::OK();
    }
    StatusOr<Label> expected = db.wbox->Lookup(lid);
    if (!expected.ok() || *expected != (*reader)->LabelAt(index)) {
      ++mismatches;
    }
    return Status::OK();
  }),
             "lid walk");
  if (mismatches != 0 || live != (*reader)->entry_count()) {
    std::fprintf(stderr,
                 "STALE: %llu of %llu live lids disagree with the image "
                 "(image holds %llu entries)\n",
                 static_cast<unsigned long long>(mismatches),
                 static_cast<unsigned long long>(live),
                 static_cast<unsigned long long>((*reader)->entry_count()));
    return 2;
  }
  std::printf("OK: image matches the live database (%llu lids)\n",
              static_cast<unsigned long long>(live));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dbtool <create|inspect|verify|scrub|query|export|"
                 "mutate|backup|restore|wal-dump|promote|compile|"
                 "snapshot-verify> [flags]\n");
    return 1;
  }
  const std::string command = argv[1];
  FlagParser flags;
  std::string* db_path = flags.AddString("db", "boxes.db", "database file");
  std::string* xml_path = flags.AddString("xml", "", "input XML file");
  std::string* twig =
      flags.AddString("twig", "item[//mailbox]//text", "twig pattern");
  std::string* out = flags.AddString("out", "out.xml", "output file");
  int64_t* elements =
      flags.AddInt64("elements", 20000, "generated document size");
  int64_t* step_pages =
      flags.AddInt64("step_pages", 64, "pages verified per scrub step");
  int64_t* ops = flags.AddInt64("ops", 1000, "mutate: ops to apply");
  int64_t* seed = flags.AddInt64("seed", 42, "mutate: RNG seed");
  int64_t* flush_every =
      flags.AddInt64("flush_every", 16, "mutate: ops per flush (batch)");
  int64_t* checkpoint_interval = flags.AddInt64(
      "checkpoint_interval", 64,
      "mutate: flushes per checkpoint+truncation (0 = never)");
  int64_t* crash_after_flushes = flags.AddInt64(
      "crash_after_flushes", 0,
      "mutate: _Exit(3) right after this many acknowledged flushes");
  bool* seal = flags.AddBool(
      "seal", false, "mutate: checkpoint+truncate at exit");
  int64_t* to_epoch = flags.AddInt64(
      "to_epoch", -1,
      "restore: replay only flushes 1..E (point in time); -1 = all");
  int64_t* since_batch = flags.AddInt64(
      "since_batch", -1, "wal-dump: first batch id to show; -1 = from start");
  int64_t* to_batch = flags.AddInt64(
      "to_batch", -1, "wal-dump: last batch id to show; -1 = to end");
  std::string* snapshot_path = flags.AddString(
      "snapshot", "doc.silo",
      "compile/snapshot-verify: snapshot image file");
  std::string* against_db = flags.AddString(
      "against", "",
      "snapshot-verify: cross-check the image against this database");
  if (!flags.Parse(argc - 1, argv + 1)) {
    return 1;
  }
  if (command == "create") {
    return CmdCreate(*db_path, *xml_path, *elements);
  }
  if (command == "inspect") {
    return CmdInspect(*db_path);
  }
  if (command == "verify") {
    return CmdVerify(*db_path);
  }
  if (command == "scrub") {
    return CmdScrub(*db_path, *step_pages);
  }
  if (command == "query") {
    return CmdQuery(*db_path, *twig);
  }
  if (command == "export") {
    return CmdExport(*db_path, *out);
  }
  if (command == "mutate") {
    return CmdMutate(*db_path, *ops, *seed, *flush_every,
                     *checkpoint_interval, *crash_after_flushes, *seal);
  }
  if (command == "backup") {
    return CmdBackup(*db_path, *out);
  }
  if (command == "restore") {
    return CmdRestore(*db_path, *to_epoch);
  }
  if (command == "wal-dump") {
    return CmdWalDump(*db_path, *since_batch, *to_batch);
  }
  if (command == "promote") {
    return CmdPromote(*db_path);
  }
  if (command == "compile") {
    return CmdCompile(*db_path, *snapshot_path);
  }
  if (command == "snapshot-verify") {
    return CmdSnapshotVerify(*snapshot_path, *against_db);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
