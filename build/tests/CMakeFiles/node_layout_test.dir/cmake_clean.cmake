file(REMOVE_RECURSE
  "CMakeFiles/node_layout_test.dir/node_layout_test.cc.o"
  "CMakeFiles/node_layout_test.dir/node_layout_test.cc.o.d"
  "node_layout_test"
  "node_layout_test.pdb"
  "node_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
