#ifndef BOXES_REPLICATION_STANDBY_APPLIER_H_
#define BOXES_REPLICATION_STANDBY_APPLIER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "replication/digest.h"
#include "replication/frame.h"
#include "replication/transport.h"
#include "storage/wal.h"
#include "util/metrics.h"

namespace boxes::replication {

struct StandbyApplierOptions {
  /// Applied batches between standby checkpoints (persisting the apply
  /// horizon in the superblock's WAL mark, so a restarted standby resumes
  /// catch-up from where it stopped instead of from its bootstrap). 0 =
  /// never checkpoint automatically; the harness drives CheckpointNow.
  uint64_t checkpoint_interval = 0;
};

/// Standby-side half of WAL shipping (DESIGN.md §4k): drains ShipFrames
/// off the link and replays them through LabelingScheme::ReplayBatch under
/// the standby's own EpochGuard. The protocol is pull-shaped reliability
/// over an unreliable link:
///
///   * idempotent — a frame below the apply horizon is a duplicate and is
///     dropped (batch ids are globally monotonic, so id comparison is a
///     complete dedup);
///   * gap-detecting — an above-horizon frame waits in a reorder buffer;
///     when the link drains with the buffer blocked, the hole can only be
///     a dropped/torn frame, and the harness asks the primary for
///     ReShipFrom(next_expected());
///   * fenced — a frame stamped with a fencing token below the standby's
///     is a deposed primary's late ship and is rejected; a higher token
///     (the standby missed a promotion) is adopted.
///
/// Apply equals recovery replay exactly: same decode, same ReplayBatch,
/// same I/O phase — which is why standby≡primary digest equality is the
/// correctness bar and not just a heuristic.
class StandbyApplier {
 public:
  StandbyApplier(PageCache* cache, LabelingScheme* scheme, FaultyLink* link,
                 MetricsRegistry* metrics = nullptr,
                 StandbyApplierOptions options = {});

  StandbyApplier(const StandbyApplier&) = delete;
  StandbyApplier& operator=(const StandbyApplier&) = delete;

  /// Fresh standby (empty store with an initialized superblock, or an
  /// idle byte copy): the apply horizon starts at the superblock's WAL
  /// mark and the fencing token is adopted from the slot.
  Status Init();

  /// Standby bootstrapped from an online-backup byte copy that went
  /// through RecoverWithWal: resumes after the last batch the local log
  /// replayed (the copy's WAL tail), falling back to the checkpoint's
  /// mark when nothing replayed.
  Status InitFromRecovery(const WalRecoveryResult& recovered);

  /// Drains every deliverable frame: applies in-order batches, buffers
  /// reordered ones, drops duplicates/torn frames/fenced ships. Errors
  /// are hard failures (replay or checkpoint faults), never link noise.
  Status Pump();

  /// Id the next applied batch must carry.
  uint64_t next_expected() const { return next_expected_; }

  /// True when progress is blocked on a hole: the link has drained and
  /// buffered frames wait beyond next_expected(). The harness then
  /// requests WalShipper::ReShipFrom(next_expected()).
  bool HasGap() const;

  /// Highest batch id observed in any intact frame (the standby's view of
  /// the primary's log horizon); feeds the repl.lag_batches gauge.
  uint64_t primary_horizon() const { return primary_horizon_; }
  uint64_t lag_batches() const;

  uint64_t applied_batches() const { return applied_batches_; }
  uint64_t duplicate_frames() const { return duplicate_frames_; }
  uint64_t torn_frames() const { return torn_frames_; }
  uint64_t fenced_rejects() const { return fenced_rejects_; }
  uint64_t fencing_token() const { return fencing_token_; }

  /// Serving gate for reads against this standby: Unavailable while the
  /// standby lags its view of the primary's horizon or sits on a gap —
  /// distinct from a kResourceExhausted shed (the node is healthy; its
  /// data is behind). OK once caught up.
  Status ReadGate() const;

  /// Persists the apply horizon (superblock WAL mark := next_expected())
  /// and the fencing token via the dual-slot checkpoint commit.
  Status CheckpointNow();

  /// Fenced promotion: bumps the fencing token and persists it with the
  /// final apply horizon. After this returns, (1) a WalPipeline::Init on
  /// this store continues batch ids exactly at next_expected() under the
  /// new token, and (2) every frame the deposed primary ships under the
  /// old token is rejected here and on any peer that saw the promotion.
  /// The caller seals the old primary's UpdateBuffer (DiscardPending) and
  /// flips this node writable.
  Status Promote();

  /// Divergence check against a digest computed on the primary at the
  /// same batch horizon; Corruption on mismatch (hard fail by contract).
  Status CheckDivergence(const ReplicationDigest& primary_digest);

 private:
  Status ApplyFrame(const ShipFrame& frame);
  void UpdateLagGauges(uint64_t newest_ship_micros);

  PageCache* cache_;        // not owned
  LabelingScheme* scheme_;  // not owned
  FaultyLink* link_;        // not owned
  MetricsRegistry* metrics_ = nullptr;  // not owned
  const StandbyApplierOptions options_;
  uint64_t next_expected_ = 1;
  uint64_t fencing_token_ = 0;
  uint64_t primary_horizon_ = 0;
  uint64_t applied_batches_ = 0;
  uint64_t applied_since_checkpoint_ = 0;
  uint64_t duplicate_frames_ = 0;
  uint64_t torn_frames_ = 0;
  uint64_t fenced_rejects_ = 0;
  /// Reorder buffer: intact frames beyond the apply horizon, by batch id.
  std::map<uint64_t, ShipFrame> pending_;
};

}  // namespace boxes::replication

#endif  // BOXES_REPLICATION_STANDBY_APPLIER_H_
